// lfuzz — coverage-guided differential fuzzer for the Liquid node.
//
// Random SPARC V8 programs run through three independently written legs
// (functional IntegerUnit, timed LeonPipeline, the full boot-load-run
// LiquidSystem); any architectural or memory disagreement is a failure,
// automatically shrunk to a minimal .s repro by delta debugging.
//
//   lfuzz --budget-secs 60                  timed campaign (CI smoke)
//   lfuzz --iterations 200 --seed 7         deterministic campaign
//   lfuzz --corpus dir/                     persist + reuse the corpus
//   lfuzz --replay fail.s                   re-run a saved repro
//   lfuzz --inject-bug --iterations 50      self-check: a deliberate SUBX
//                                           fault must be caught+minimized
//   lfuzz --faults --budget-secs 60         fault-injection campaign: every
//                                           injected fault must be masked,
//                                           detected, or latent — a run
//                                           that "succeeds" with silently
//                                           wrong memory is the failure
//
// Exit codes: 0 no divergence, 1 divergence found (or replay diverges),
// 2 usage error.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "ctrl/client.hpp"
#include "fuzz/fault_campaign.hpp"
#include "fuzz/fuzzer.hpp"
#include "gate/frame.hpp"
#include "gate/jobwire.hpp"
#include "sasm/assembler.hpp"

namespace {

using namespace la;

int usage() {
  std::fprintf(
      stderr,
      "usage: lfuzz [options]\n"
      "  --budget-secs N   wall-clock budget (default 10 when no\n"
      "                    --iterations given)\n"
      "  --iterations N    iteration budget (0 = unlimited under a\n"
      "                    time budget)\n"
      "  --seed N          campaign seed (default 1)\n"
      "  --corpus DIR      load and persist corpus entries here\n"
      "  --out DIR         failing repro directory (default lfuzz-out)\n"
      "  --chunks N        body chunks per fresh program (default 120)\n"
      "  --no-system       skip the full-system leg\n"
      "  --no-minimize     keep failing programs unshrunk\n"
      "  --keep-going      collect every divergence instead of stopping\n"
      "                    at the first\n"
      "  --inject-bug      enable the deliberate SUBX carry fault\n"
      "                    (fuzzer self-check; must end with exit 1)\n"
      "  --no-fast-paths   force the host fast paths off everywhere\n"
      "                    (predecode cache, batched run loop, block\n"
      "                    engine) for A/B comparison against a default\n"
      "                    campaign\n"
      "  --no-block-engine force the block translation engine off on every\n"
      "                    rotation entry (other fast paths stay on)\n"
      "  --replay FILE     differentially execute one .s repro and exit\n"
      "  --faults          run the fault-injection campaign instead of the\n"
      "                    differential fuzzer (exit 1 on any silent\n"
      "                    divergence)\n"
      "  --frames          fuzz the gateway wire codec instead: random\n"
      "                    bytes, mutated frames, and structured round\n"
      "                    trips must never crash the parser, and anything\n"
      "                    accepted must re-serialize identically (exit 1\n"
      "                    on any violation)\n"
      "  --watchdog-budget N  watchdog cycle budget per started program\n"
      "                    in --faults mode (default 2000000)\n"
      "  --metrics-json F  write campaign counters (or, with --replay, the\n"
      "                    replayed node's registry snapshot) to F in the\n"
      "                    bench egress format\n"
      "  --perf-trace F    with --replay on a system-mode program: rerun\n"
      "                    it instrumented and write a Chrome trace to F\n"
      "  --quiet           suppress progress lines\n"
      "\n"
      "configuration rotation (one entry per iteration, round-robin):\n"
      "  entry      icache  dcache     wbuf  nwin  fast-paths  block-eng\n"
      "  default    1K/32   1K/32 WT   1     8     on          on\n"
      "  tiny       128/16  128/16 WT  1     8     on          on\n"
      "  nocache    off     off        0     8     on          on\n"
      "  wback      1K/32   1K/32 WB   1     8     on          on\n"
      "  fewwin     1K/32   1K/32 WT   1     3     on          on\n"
      "  slow       1K/32   1K/32 WT   1     8     off         off\n"
      "  noblock    1K/32   1K/32 WT   1     8     on          off\n"
      "--no-fast-paths forces the fast-paths and block-eng columns off on\n"
      "every entry; --no-block-engine forces only block-eng off.\n");
  return 2;
}

/// Campaign-level metrics egress: the printed stats line, machine-readable
/// through the same {benchmark, runs} document the benches write.
int write_campaign_metrics(const std::string& path, const char* label,
                           const std::map<std::string, double>& values) {
  bench::BenchIo io("lfuzz", path, "");
  metrics::Snapshot snap;
  snap.values = values;
  io.add_run(label, std::move(snap));
  return io.finish() ? 0 : 2;
}

int run_faults(const fuzz::FuzzConfig& base, u64 watchdog_budget,
               const std::string& metrics_json) {
  fuzz::FaultCampaignConfig fc;
  fc.seed = base.seed;
  fc.budget_secs = base.budget_secs;
  fc.max_iterations = base.max_iterations;
  fc.stop_on_silent = base.stop_on_divergence;
  fc.minimize_failures = base.minimize_failures;
  fc.out_dir = base.out_dir;
  fc.verbose = base.verbose;
  if (base.program_chunks > 0 && base.program_chunks != 120) {
    fc.program_chunks = base.program_chunks;  // explicitly overridden
  }
  if (watchdog_budget) fc.watchdog_budget = watchdog_budget;

  fuzz::FaultCampaign campaign(fc);
  const int rc = campaign.run();

  const fuzz::FaultCampaignStats& st = campaign.stats();
  std::printf(
      "lfuzz --faults: %llu iterations, %llu faults injected; "
      "%llu masked, %llu detected, %llu latent, %llu SILENT, "
      "%llu skipped\n",
      static_cast<unsigned long long>(st.iterations),
      static_cast<unsigned long long>(st.faults_injected),
      static_cast<unsigned long long>(st.masked),
      static_cast<unsigned long long>(st.detected),
      static_cast<unsigned long long>(st.latent),
      static_cast<unsigned long long>(st.silent),
      static_cast<unsigned long long>(st.skipped));
  for (const fuzz::FaultFailure& f : campaign.failures()) {
    std::printf("  SILENT divergence: %s\n    repro: %s\n    plan:\n%s",
                f.detail.c_str(),
                f.minimized_path.empty() ? f.repro_path.c_str()
                                         : f.minimized_path.c_str(),
                f.plan.to_string().c_str());
  }
  if (!metrics_json.empty()) {
    const int mrc = write_campaign_metrics(
        metrics_json, "faults",
        {{"lfuzz.faults.iterations", static_cast<double>(st.iterations)},
         {"lfuzz.faults.injected", static_cast<double>(st.faults_injected)},
         {"lfuzz.faults.masked", static_cast<double>(st.masked)},
         {"lfuzz.faults.detected", static_cast<double>(st.detected)},
         {"lfuzz.faults.latent", static_cast<double>(st.latent)},
         {"lfuzz.faults.silent", static_cast<double>(st.silent)},
         {"lfuzz.faults.skipped", static_cast<double>(st.skipped)}});
    if (mrc != 0) return mrc;
  }
  return rc;
}

int replay(const std::string& path, const fuzz::FuzzConfig& cfg,
           const std::string& metrics_json, const std::string& perf_trace) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    std::fprintf(stderr, "lfuzz: cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string source = buf.str();

  // A system-mode program's epilogue jumps back to the boot ROM polling
  // loop; that jump is the mode marker.
  const bool system_mode = source.find("jmp 0x40") != std::string::npos;

  fuzz::DiffOptions opt;
  opt.with_system = cfg.with_system && system_mode;
  opt.inject_subx_bug = cfg.inject_subx_bug;
  if (cfg.disable_fast_paths) {
    opt.pipeline.host_fast_paths = false;
    opt.pipeline.cpu.host_decode_cache = false;
    opt.pipeline.cpu.host_block_engine = false;
  }
  if (cfg.disable_block_engine) {
    opt.pipeline.cpu.host_block_engine = false;
  }
  fuzz::DifferentialRunner runner(opt);
  const fuzz::DiffOutcome out = runner.run_source(
      source,
      system_mode ? fuzz::ProgramMode::kSystem : fuzz::ProgramMode::kCore);

  if (!out.asm_ok) {
    std::fprintf(stderr, "lfuzz: %s\n", out.detail.c_str());
    return 2;
  }
  if (out.diverged) {
    std::printf("DIVERGENCE (%s leg): %s\n", out.leg.c_str(),
                out.detail.c_str());
    if (!out.flight_dump.empty()) {
      std::printf("flight-recorder post-mortem:\n%s\n",
                  out.flight_dump.c_str());
    }
    return 1;
  }
  std::printf("ok: %s program, %llu instructions, no divergence%s\n",
              system_mode ? "system-mode" : "core-mode",
              static_cast<unsigned long long>(out.steps),
              out.completed ? "" : " (step budget exhausted)");

  // Observability egress: rerun the program once on an instrumented node
  // and write the requested files (system-mode only — a core-mode program
  // has no defined behaviour under the boot ROM).
  if (!metrics_json.empty() || !perf_trace.empty()) {
    if (!system_mode) {
      std::fprintf(stderr,
                   "lfuzz: --metrics-json/--perf-trace need a system-mode "
                   "repro (core-mode programs never run on the node)\n");
      return 2;
    }
    sasm::Assembler as;
    const sasm::AsmResult ar = as.assemble(source);
    if (!ar.ok) return 2;  // already executed above, cannot happen
    bench::BenchIo io("lfuzz_replay", metrics_json, perf_trace);
    sim::LiquidSystem node;
    io.attach_perf(node);
    node.run(300);
    ctrl::LiquidClient client(node);
    if (!client.run_program(ar.image, opt.system_max_steps)) {
      std::fprintf(stderr, "lfuzz: instrumented rerun failed\n");
      return 2;
    }
    io.add_run("replay", node);
    if (!io.finish()) return 2;
  }
  return 0;
}

/// Gateway wire-codec campaign: the frame parser's total-function contract
/// under three input regimes per iteration — structured round trips,
/// uniformly random bytes, and bit-flipped valid frames.  Violations are
/// (a) a round trip that loses information, (b) an accepted input whose
/// re-serialization differs (parse would not be a partial identity), and
/// (c) a genuinely mutated frame slipping past the checksum.  Crashes and
/// overreads surface as sanitizer aborts in CI's sanitizer lanes.
int run_frames(u64 seed, u64 iterations, int budget_secs, bool verbose,
               const std::string& metrics_json) {
  using gate::GateFrame;
  static constexpr gate::GateKind kKinds[] = {
      gate::GateKind::kHello,      gate::GateKind::kSubmit,
      gate::GateKind::kPoll,       gate::GateKind::kGateStats,
      gate::GateKind::kBye,        gate::GateKind::kHelloOk,
      gate::GateKind::kAccepted,   gate::GateKind::kResult,
      gate::GateKind::kStatsJson,  gate::GateKind::kByeOk,
      gate::GateKind::kRetryAfter, gate::GateKind::kGateError,
  };
  Rng rng(seed ^ 0xf4a3e5ull);
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + std::chrono::seconds(budget_secs);
  u64 iters = 0;
  u64 junk_accepted = 0;
  u64 mutants_refused = 0;
  u64 violations = 0;

  auto fill = [&](Bytes& b) {
    for (auto& x : b) x = static_cast<u8>(rng.below(256));
  };

  while (iterations != 0 ? iters < iterations
                         : std::chrono::steady_clock::now() < deadline) {
    ++iters;
    // 1. Structured round trip: serialize . parse = identity.
    GateFrame f;
    f.kind = kKinds[rng.below(sizeof(kKinds) / sizeof(kKinds[0]))];
    f.token = rng.next_u64();
    f.request_id = rng.next_u64();
    f.trace_id = rng.next_u64();
    f.span_id = rng.next_u64();
    f.payload.resize(rng.below(300));
    fill(f.payload);
    const Bytes wire = f.serialize();
    const auto back = GateFrame::parse(wire);
    if (!back || back->kind != f.kind || back->token != f.token ||
        back->request_id != f.request_id || back->trace_id != f.trace_id ||
        back->span_id != f.span_id || back->payload != f.payload) {
      ++violations;
      std::fprintf(stderr, "lfuzz --frames: round trip lost (iter %llu)\n",
                   static_cast<unsigned long long>(iters));
    }
    // 2. Random bytes: never crash; anything accepted re-serializes
    //    identically.
    Bytes junk(rng.below(static_cast<u32>(wire.size() + 64)), 0);
    fill(junk);
    if (const auto j = GateFrame::parse(junk)) {
      ++junk_accepted;
      if (j->serialize() != junk) {
        ++violations;
        std::fprintf(stderr,
                     "lfuzz --frames: junk accepted but not identical "
                     "(iter %llu)\n",
                     static_cast<unsigned long long>(iters));
      }
    }
    // Random bytes through the payload decoders too (same total-parse
    // contract, no checksum shielding them).
    (void)gate::JobWire::parse(junk);
    (void)gate::ResultWire::parse(junk);
    (void)gate::HelloOkWire::parse(junk);
    (void)gate::RetryAfterWire::parse(junk);
    // 3. Bit-flipped frames: the checksum must catch real mutations.
    Bytes m = wire;
    const unsigned flips = 1 + rng.below(4);
    for (unsigned k = 0; k < flips; ++k) {
      m[rng.below(static_cast<u32>(m.size()))] ^=
          static_cast<u8>(1u << rng.below(8));
    }
    const auto mf = GateFrame::parse(m);
    if (!mf) {
      ++mutants_refused;
    } else if (m != wire) {  // cancelled flips legitimately re-accept
      ++violations;
      std::fprintf(stderr,
                   "lfuzz --frames: mutated frame accepted (iter %llu)\n",
                   static_cast<unsigned long long>(iters));
    }
    if (verbose && iters % 50000 == 0) {
      std::printf("lfuzz --frames: %llu iterations...\n",
                  static_cast<unsigned long long>(iters));
    }
  }

  std::printf(
      "lfuzz --frames: %llu iterations, %llu junk accepts, "
      "%llu mutants refused, %llu violations\n",
      static_cast<unsigned long long>(iters),
      static_cast<unsigned long long>(junk_accepted),
      static_cast<unsigned long long>(mutants_refused),
      static_cast<unsigned long long>(violations));
  if (!metrics_json.empty()) {
    const int mrc = write_campaign_metrics(
        metrics_json, "frames",
        {{"lfuzz.frames.iterations", static_cast<double>(iters)},
         {"lfuzz.frames.junk_accepted", static_cast<double>(junk_accepted)},
         {"lfuzz.frames.mutants_refused",
          static_cast<double>(mutants_refused)},
         {"lfuzz.frames.violations", static_cast<double>(violations)}});
    if (mrc != 0) return mrc;
  }
  return violations == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  fuzz::FuzzConfig cfg;
  cfg.verbose = true;
  std::string replay_path;
  std::string metrics_json;
  std::string perf_trace;
  bool have_secs = false;
  bool have_iters = false;
  bool faults_mode = false;
  bool frames_mode = false;
  u64 watchdog_budget = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--budget-secs") {
      const char* v = value();
      if (!v) return usage();
      cfg.budget_secs = std::atoi(v);
      have_secs = true;
    } else if (arg == "--iterations") {
      const char* v = value();
      if (!v) return usage();
      cfg.max_iterations = std::strtoull(v, nullptr, 10);
      have_iters = true;
    } else if (arg == "--seed") {
      const char* v = value();
      if (!v) return usage();
      cfg.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--corpus") {
      const char* v = value();
      if (!v) return usage();
      cfg.corpus_dir = v;
    } else if (arg == "--out") {
      const char* v = value();
      if (!v) return usage();
      cfg.out_dir = v;
    } else if (arg == "--chunks") {
      const char* v = value();
      if (!v) return usage();
      cfg.program_chunks = std::atoi(v);
      if (cfg.program_chunks <= 0) return usage();
    } else if (arg == "--no-system") {
      cfg.with_system = false;
    } else if (arg == "--no-minimize") {
      cfg.minimize_failures = false;
    } else if (arg == "--keep-going") {
      cfg.stop_on_divergence = false;
    } else if (arg == "--inject-bug") {
      cfg.inject_subx_bug = true;
    } else if (arg == "--no-fast-paths") {
      cfg.disable_fast_paths = true;
    } else if (arg == "--no-block-engine") {
      cfg.disable_block_engine = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--replay") {
      const char* v = value();
      if (!v) return usage();
      replay_path = v;
    } else if (arg == "--faults") {
      faults_mode = true;
    } else if (arg == "--frames") {
      frames_mode = true;
    } else if (arg == "--watchdog-budget") {
      const char* v = value();
      if (!v) return usage();
      watchdog_budget = std::strtoull(v, nullptr, 10);
    } else if (arg == "--metrics-json") {
      const char* v = value();
      if (!v) return usage();
      metrics_json = v;
    } else if (arg == "--perf-trace") {
      const char* v = value();
      if (!v) return usage();
      perf_trace = v;
    } else if (arg == "--quiet") {
      cfg.verbose = false;
    } else {
      std::fprintf(stderr, "lfuzz: unknown option %s\n", arg.c_str());
      return usage();
    }
  }

  if (!replay_path.empty()) {
    return replay(replay_path, cfg, metrics_json, perf_trace);
  }

  if (!perf_trace.empty()) {
    std::fprintf(stderr, "lfuzz: --perf-trace applies to --replay only\n");
    return usage();
  }

  if (!have_secs && !have_iters) cfg.budget_secs = 10;

  if (frames_mode) {
    return run_frames(cfg.seed, cfg.max_iterations, cfg.budget_secs,
                      cfg.verbose, metrics_json);
  }

  if (faults_mode) {
    // The faults campaign defaults its own out dir unless one was given.
    if (cfg.out_dir == "lfuzz-out") cfg.out_dir = "lfuzz-faults-out";
    return run_faults(cfg, watchdog_budget, metrics_json);
  }

  fuzz::Fuzzer fuzzer(cfg);
  const int rc = fuzzer.run();

  const fuzz::FuzzStats& st = fuzzer.stats();
  std::printf(
      "lfuzz: %llu iterations, %llu executions (%llu fresh, %llu mutated, "
      "%llu rejected), corpus %zu, coverage %zu features, "
      "%llu divergences\n",
      static_cast<unsigned long long>(st.iterations),
      static_cast<unsigned long long>(st.executions),
      static_cast<unsigned long long>(st.fresh_inputs),
      static_cast<unsigned long long>(st.mutated_inputs),
      static_cast<unsigned long long>(st.rejected_mutants),
      fuzzer.corpus().size(), fuzzer.coverage().feature_count(),
      static_cast<unsigned long long>(st.divergences));
  for (const fuzz::FuzzFailure& f : fuzzer.failures()) {
    std::printf("  failure (%s leg): %s\n    repro: %s\n",
                f.outcome.leg.c_str(), f.outcome.detail.c_str(),
                f.minimized_path.empty() ? f.repro_path.c_str()
                                         : f.minimized_path.c_str());
  }
  if (!metrics_json.empty()) {
    const int mrc = write_campaign_metrics(
        metrics_json, "fuzz",
        {{"lfuzz.iterations", static_cast<double>(st.iterations)},
         {"lfuzz.executions", static_cast<double>(st.executions)},
         {"lfuzz.fresh_inputs", static_cast<double>(st.fresh_inputs)},
         {"lfuzz.mutated_inputs", static_cast<double>(st.mutated_inputs)},
         {"lfuzz.rejected_mutants", static_cast<double>(st.rejected_mutants)},
         {"lfuzz.corpus", static_cast<double>(fuzzer.corpus().size())},
         {"lfuzz.coverage_features",
          static_cast<double>(fuzzer.coverage().feature_count())},
         {"lfuzz.divergences", static_cast<double>(st.divergences)}});
    if (mrc != 0) return mrc;
  }
  return rc;
}
