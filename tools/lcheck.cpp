// lcheck — schema checks for the observability artifacts the tools emit.
//
// CI wants "the trace is valid JSON with the lanes we promised" as an exit
// code, without pulling a JSON library into the build.  This is a small
// recursive-descent JSON parser plus one checker per artifact kind:
//
//   lcheck --json FILE             well-formed JSON document
//   lcheck --chrome-trace FILE     Chrome trace_event file: traceEvents
//                                  array, every event has ph/pid/tid, 'X'
//                                  events carry name/ts/dur
//   lcheck --min-pids N            with --chrome-trace: at least N distinct
//                                  pids (an N-node merged trace has one
//                                  process lane per node)
//   lcheck --spans FILE            span JSONL: every line an object with a
//                                  nonzero trace_id/span_id, a name, and
//                                  start_us/dur_us numbers
//   lcheck --flight FILE           flight-recorder dump: reason, cycle,
//                                  events[] each with cycle and kind
//   lcheck --prom FILE             Prometheus text exposition: every
//                                  non-comment line is `name[{labels}]
//                                  value` with a legal metric name
//   lcheck --bench-sim FILE        BENCH_sim.json trajectory rows: known
//                                  model names, boolean fast_paths/
//                                  block_engine, positive host_mips, and
//                                  complete fast on/off (+ block on/off)
//                                  pairings
//
// Exit codes: 0 all checks pass, 1 a check failed, 2 usage/IO error.
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---- a minimal JSON document model + parser ------------------------------

struct JsonValue;
using JsonObject = std::map<std::string, std::shared_ptr<JsonValue>>;
using JsonArray = std::vector<std::shared_ptr<JsonValue>>;

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  JsonArray array;
  JsonObject object;

  const JsonValue* get(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : it->second.get();
  }
  bool is(Kind k) const { return kind == k; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  /// Parse one complete document; nullptr (with error()) on any violation,
  /// including trailing garbage.
  std::shared_ptr<JsonValue> parse() {
    auto v = value();
    if (v == nullptr) return nullptr;
    skip_ws();
    if (pos_ != s_.size()) {
      fail("trailing characters after the document");
      return nullptr;
    }
    return v;
  }

  const std::string& error() const { return err_; }
  std::size_t error_pos() const { return err_pos_; }

 private:
  void fail(const std::string& why) {
    if (err_.empty()) {
      err_ = why;
      err_pos_ = pos_;
    }
  }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (s_.compare(pos_, n, word) != 0) {
      fail(std::string("expected '") + word + "'");
      return false;
    }
    pos_ += n;
    return true;
  }

  std::shared_ptr<JsonValue> value() {
    skip_ws();
    if (pos_ >= s_.size()) {
      fail("unexpected end of input");
      return nullptr;
    }
    const char c = s_[pos_];
    auto v = std::make_shared<JsonValue>();
    switch (c) {
      case '{': return object(std::move(v));
      case '[': return array(std::move(v));
      case '"':
        v->kind = JsonValue::kString;
        return string_into(v->string) ? v : nullptr;
      case 't':
        v->kind = JsonValue::kBool;
        v->boolean = true;
        return literal("true") ? v : nullptr;
      case 'f':
        v->kind = JsonValue::kBool;
        return literal("false") ? v : nullptr;
      case 'n': return literal("null") ? v : nullptr;
      default: return number(std::move(v));
    }
  }

  std::shared_ptr<JsonValue> object(std::shared_ptr<JsonValue> v) {
    v->kind = JsonValue::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != '"') {
        fail("expected object key");
        return nullptr;
      }
      std::string key;
      if (!string_into(key)) return nullptr;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') {
        fail("expected ':' after object key");
        return nullptr;
      }
      ++pos_;
      auto member = value();
      if (member == nullptr) return nullptr;
      v->object[key] = std::move(member);
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}' in object");
      return nullptr;
    }
  }

  std::shared_ptr<JsonValue> array(std::shared_ptr<JsonValue> v) {
    v->kind = JsonValue::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      auto elem = value();
      if (elem == nullptr) return nullptr;
      v->array.push_back(std::move(elem));
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']' in array");
      return nullptr;
    }
  }

  bool string_into(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
        return false;
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      if (++pos_ >= s_.size()) break;
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) {
            fail("truncated \\u escape");
            return false;
          }
          for (int i = 0; i < 4; ++i) {
            if (std::isxdigit(static_cast<unsigned char>(s_[pos_ + i])) ==
                0) {
              fail("bad \\u escape");
              return false;
            }
          }
          // The checkers only care about validity, not the code point.
          out += '?';
          pos_ += 4;
          break;
        }
        default: fail("bad escape character"); return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  std::shared_ptr<JsonValue> number(std::shared_ptr<JsonValue> v) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && s_[start] == '-')) {
      fail("expected a value");
      return nullptr;
    }
    v->kind = JsonValue::kNumber;
    v->number = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string err_;
  std::size_t err_pos_ = 0;
};

// ---- checkers ------------------------------------------------------------

int complain(const std::string& file, const std::string& why) {
  std::fprintf(stderr, "lcheck: %s: %s\n", file.c_str(), why.c_str());
  return 1;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::ostringstream buf;
  buf << is.rdbuf();
  out = buf.str();
  return true;
}

std::shared_ptr<JsonValue> parse_or_complain(const std::string& file,
                                             const std::string& text,
                                             int& rc) {
  JsonParser p(text);
  auto doc = p.parse();
  if (doc == nullptr) {
    rc = complain(file, "invalid JSON at byte " +
                            std::to_string(p.error_pos()) + ": " + p.error());
  }
  return doc;
}

int check_json(const std::string& file, const std::string& text) {
  int rc = 0;
  parse_or_complain(file, text, rc);
  return rc;
}

int check_chrome_trace(const std::string& file, const std::string& text,
                       long min_pids) {
  int rc = 0;
  auto doc = parse_or_complain(file, text, rc);
  if (doc == nullptr) return rc;
  if (!doc->is(JsonValue::kObject)) {
    return complain(file, "top level is not an object");
  }
  const JsonValue* events = doc->get("traceEvents");
  if (events == nullptr || !events->is(JsonValue::kArray)) {
    return complain(file, "missing traceEvents array");
  }
  std::set<double> pids;
  std::size_t index = 0;
  for (const auto& ev : events->array) {
    const std::string at = "traceEvents[" + std::to_string(index++) + "]";
    if (!ev->is(JsonValue::kObject)) return complain(file, at + " not an object");
    const JsonValue* ph = ev->get("ph");
    if (ph == nullptr || !ph->is(JsonValue::kString)) {
      return complain(file, at + " has no ph");
    }
    const JsonValue* pid = ev->get("pid");
    const JsonValue* tid = ev->get("tid");
    if (pid == nullptr || !pid->is(JsonValue::kNumber) || tid == nullptr ||
        !tid->is(JsonValue::kNumber)) {
      return complain(file, at + " has no numeric pid/tid");
    }
    pids.insert(pid->number);
    if (ph->string == "X") {
      const JsonValue* name = ev->get("name");
      const JsonValue* ts = ev->get("ts");
      const JsonValue* dur = ev->get("dur");
      if (name == nullptr || !name->is(JsonValue::kString) || ts == nullptr ||
          !ts->is(JsonValue::kNumber) || dur == nullptr ||
          !dur->is(JsonValue::kNumber)) {
        return complain(file, at + " ('X') lacks name/ts/dur");
      }
    }
  }
  if (min_pids > 0 && static_cast<long>(pids.size()) < min_pids) {
    return complain(file, "expected at least " + std::to_string(min_pids) +
                              " distinct pids, saw " +
                              std::to_string(pids.size()));
  }
  std::printf("lcheck: %s: %zu trace events, %zu process lane(s)\n",
              file.c_str(), events->array.size(), pids.size());
  return 0;
}

int check_spans(const std::string& file, const std::string& text) {
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;
  std::size_t spans = 0;
  std::set<std::string> traces;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    int rc = 0;
    auto doc =
        parse_or_complain(file + ":" + std::to_string(lineno), line, rc);
    if (doc == nullptr) return rc;
    const std::string at = "line " + std::to_string(lineno);
    if (!doc->is(JsonValue::kObject)) return complain(file, at + " not an object");
    const JsonValue* trace_id = doc->get("trace_id");
    const JsonValue* span_id = doc->get("span_id");
    const JsonValue* name = doc->get("name");
    const JsonValue* start = doc->get("start_us");
    const JsonValue* dur = doc->get("dur_us");
    if (trace_id == nullptr || !trace_id->is(JsonValue::kString) ||
        trace_id->string.empty() ||
        trace_id->string.find_first_not_of('0') == std::string::npos) {
      return complain(file, at + " has no nonzero trace_id");
    }
    if (span_id == nullptr || !span_id->is(JsonValue::kString)) {
      return complain(file, at + " has no span_id");
    }
    if (name == nullptr || !name->is(JsonValue::kString) ||
        name->string.empty()) {
      return complain(file, at + " has no name");
    }
    if (start == nullptr || !start->is(JsonValue::kNumber) || dur == nullptr ||
        !dur->is(JsonValue::kNumber) || dur->number < 0) {
      return complain(file, at + " lacks start_us/dur_us");
    }
    traces.insert(trace_id->string);
    ++spans;
  }
  if (spans == 0) return complain(file, "no spans");
  std::printf("lcheck: %s: %zu span(s), %zu trace(s)\n", file.c_str(), spans,
              traces.size());
  return 0;
}

int check_flight(const std::string& file, const std::string& text) {
  int rc = 0;
  auto doc = parse_or_complain(file, text, rc);
  if (doc == nullptr) return rc;
  if (!doc->is(JsonValue::kObject)) {
    return complain(file, "top level is not an object");
  }
  const JsonValue* reason = doc->get("reason");
  const JsonValue* cycle = doc->get("cycle");
  const JsonValue* events = doc->get("events");
  if (reason == nullptr || !reason->is(JsonValue::kString) ||
      reason->string.empty()) {
    return complain(file, "missing reason");
  }
  if (cycle == nullptr || !cycle->is(JsonValue::kNumber)) {
    return complain(file, "missing cycle");
  }
  if (events == nullptr || !events->is(JsonValue::kArray)) {
    return complain(file, "missing events array");
  }
  std::size_t index = 0;
  for (const auto& ev : events->array) {
    const std::string at = "events[" + std::to_string(index++) + "]";
    if (!ev->is(JsonValue::kObject)) return complain(file, at + " not an object");
    const JsonValue* ec = ev->get("cycle");
    const JsonValue* kind = ev->get("kind");
    if (ec == nullptr || !ec->is(JsonValue::kNumber) || kind == nullptr ||
        !kind->is(JsonValue::kString) || kind->string.empty()) {
      return complain(file, at + " lacks cycle/kind");
    }
  }
  std::printf("lcheck: %s: flight dump '%s', %zu event(s)\n", file.c_str(),
              reason->string.c_str(), events->array.size());
  return 0;
}

int check_prom(const std::string& file, const std::string& text) {
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;
  std::size_t samples = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::string at = "line " + std::to_string(lineno);
    if (line.empty() || line[0] == '#') continue;
    // name[{labels}] value
    std::size_t i = 0;
    auto name_char = [&](char c, bool first) {
      const bool alpha = std::isalpha(static_cast<unsigned char>(c)) != 0 ||
                         c == '_' || c == ':';
      return first ? alpha
                   : alpha || std::isdigit(static_cast<unsigned char>(c)) != 0;
    };
    if (i >= line.size() || !name_char(line[i], true)) {
      return complain(file, at + ": bad metric name");
    }
    while (i < line.size() && name_char(line[i], false)) ++i;
    if (i < line.size() && line[i] == '{') {
      // Labels: scan to the matching closing brace, honouring quotes.
      bool in_string = false;
      bool closed = false;
      for (++i; i < line.size(); ++i) {
        const char c = line[i];
        if (in_string) {
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            in_string = false;
          }
        } else if (c == '"') {
          in_string = true;
        } else if (c == '}') {
          closed = true;
          ++i;
          break;
        }
      }
      if (!closed) return complain(file, at + ": unterminated label set");
    }
    if (i >= line.size() || line[i] != ' ') {
      return complain(file, at + ": expected ' value'");
    }
    const std::string value = line.substr(i + 1);
    if (value.empty()) return complain(file, at + ": empty value");
    if (value != "NaN" && value != "+Inf" && value != "-Inf") {
      char* end = nullptr;
      std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return complain(file, at + ": bad sample value '" + value + "'");
      }
    }
    ++samples;
  }
  if (samples == 0) return complain(file, "no samples");
  std::printf("lcheck: %s: %zu sample(s)\n", file.c_str(), samples);
  return 0;
}

int check_bench_ctrl(const std::string& file, const std::string& text) {
  int rc = 0;
  auto doc = parse_or_complain(file, text, rc);
  if (doc == nullptr) return rc;
  if (!doc->is(JsonValue::kArray)) {
    return complain(file, "top level is not an array of phase rows");
  }
  if (doc->array.empty()) return complain(file, "no phase rows");
  std::size_t index = 0;
  std::size_t audits_ok = 0;
  for (const auto& row : doc->array) {
    const std::string at = "row[" + std::to_string(index++) + "]";
    if (!row->is(JsonValue::kObject)) {
      return complain(file, at + " not an object");
    }
    for (const char* key : {"wan", "mode"}) {
      const JsonValue* v = row->get(key);
      if (v == nullptr || !v->is(JsonValue::kString) || v->string.empty()) {
        return complain(file, at + " lacks string '" + key + "'");
      }
    }
    const JsonValue* mode = row->get("mode");
    if (mode->string != "open" && mode->string != "closed") {
      return complain(file, at + " mode '" + mode->string +
                                "' is neither open nor closed");
    }
    for (const char* key : {"tenants", "nodes", "jobs", "completed", "rps",
                            "p50_ms", "p95_ms", "p99_ms"}) {
      const JsonValue* v = row->get(key);
      if (v == nullptr || !v->is(JsonValue::kNumber) || v->number < 0) {
        return complain(file,
                        at + " lacks non-negative number '" + key + "'");
      }
    }
    // Percentiles of one latency distribution cannot cross.
    const double p50 = row->get("p50_ms")->number;
    const double p95 = row->get("p95_ms")->number;
    const double p99 = row->get("p99_ms")->number;
    if (p50 > p95 || p95 > p99) {
      return complain(file, at + " percentiles not monotone (p50 " +
                                std::to_string(p50) + ", p95 " +
                                std::to_string(p95) + ", p99 " +
                                std::to_string(p99) + ")");
    }
    if (row->get("completed")->number > row->get("jobs")->number) {
      return complain(file, at + " completed exceeds jobs offered");
    }
    const JsonValue* audit = row->get("audit_ok");
    if (audit == nullptr || !audit->is(JsonValue::kBool)) {
      return complain(file, at + " lacks boolean 'audit_ok'");
    }
    if (audit->boolean) ++audits_ok;
  }
  std::printf("lcheck: %s: %zu phase row(s), %zu audit(s) ok\n", file.c_str(),
              doc->array.size(), audits_ok);
  if (audits_ok != doc->array.size()) {
    return complain(file, "a row carries audit_ok=false");
  }
  return 0;
}

int check_bench_sim(const std::string& file, const std::string& text) {
  int rc = 0;
  auto doc = parse_or_complain(file, text, rc);
  if (doc == nullptr) return rc;
  if (!doc->is(JsonValue::kArray)) {
    return complain(file, "top level is not an array of measurement rows");
  }
  if (doc->array.empty()) return complain(file, "no measurement rows");

  static const std::set<std::string> kModels = {
      "integer_unit", "leon_pipeline", "liquid_system",
      "liquid_system_flight"};
  // (model, fast_paths, block_engine) triples seen, for pairing checks.
  std::set<std::string> seen;
  std::size_t index = 0;
  for (const auto& row : doc->array) {
    const std::string at = "row[" + std::to_string(index++) + "]";
    if (!row->is(JsonValue::kObject)) {
      return complain(file, at + " not an object");
    }
    const JsonValue* model = row->get("model");
    if (model == nullptr || !model->is(JsonValue::kString)) {
      return complain(file, at + " lacks string 'model'");
    }
    if (kModels.count(model->string) == 0) {
      return complain(file, at + " unknown model '" + model->string + "'");
    }
    const JsonValue* fast = row->get("fast_paths");
    const JsonValue* block = row->get("block_engine");
    if (fast == nullptr || !fast->is(JsonValue::kBool) || block == nullptr ||
        !block->is(JsonValue::kBool)) {
      return complain(file,
                      at + " lacks boolean 'fast_paths'/'block_engine'");
    }
    if (block->boolean && model->string != "integer_unit") {
      return complain(file, at + " block_engine=true on '" + model->string +
                                "' (only the functional model has that tier)");
    }
    for (const char* key : {"host_mips", "cycles_per_sec", "secs"}) {
      const JsonValue* v = row->get(key);
      if (v == nullptr || !v->is(JsonValue::kNumber) || v->number <= 0) {
        return complain(file, at + " lacks positive number '" + key + "'");
      }
    }
    const JsonValue* instr = row->get("instructions");
    if (instr == nullptr || !instr->is(JsonValue::kNumber) ||
        instr->number < 0) {
      return complain(file,
                      at + " lacks non-negative number 'instructions'");
    }
    const std::string key = model->string +
                            (fast->boolean ? "/fast" : "/slow") +
                            (block->boolean ? "/block" : "");
    if (!seen.insert(key).second) {
      return complain(file, at + " duplicates " + key);
    }
  }

  // Pairing: every model measured with the host fast paths both on and
  // off, and the functional model's block tier paired with its block-off
  // fast row.  (The flight-recorder variant exists only as a fast-path
  // overhead row.)
  for (const char* m : {"integer_unit", "leon_pipeline", "liquid_system"}) {
    for (const char* leg : {"/slow", "/fast"}) {
      if (seen.count(std::string(m) + leg) == 0) {
        return complain(file, std::string("missing ") + m + leg + " row");
      }
    }
  }
  if (seen.count("integer_unit/fast/block") == 0) {
    return complain(file, "missing integer_unit block_engine=true row");
  }
  std::printf("lcheck: %s: %zu measurement row(s), pairings complete\n",
              file.c_str(), doc->array.size());
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: lcheck [--min-pids N] MODE FILE [MODE FILE ...]\n"
               "  modes: --json --chrome-trace --spans --flight --prom\n"
               "         --bench-ctrl --bench-sim\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  long min_pids = 0;
  int rc = 0;
  bool checked = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto file_arg = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--min-pids") {
      const char* v = file_arg();
      if (v == nullptr) return usage();
      min_pids = std::strtol(v, nullptr, 10);
    } else if (a == "--json" || a == "--chrome-trace" || a == "--spans" ||
               a == "--flight" || a == "--prom" || a == "--bench-ctrl" ||
               a == "--bench-sim") {
      const char* f = file_arg();
      if (f == nullptr) return usage();
      std::string text;
      if (!read_file(f, text)) {
        std::fprintf(stderr, "lcheck: cannot read %s\n", f);
        return 2;
      }
      checked = true;
      int one = 0;
      if (a == "--json") one = check_json(f, text);
      else if (a == "--chrome-trace") one = check_chrome_trace(f, text, min_pids);
      else if (a == "--spans") one = check_spans(f, text);
      else if (a == "--flight") one = check_flight(f, text);
      else if (a == "--bench-ctrl") one = check_bench_ctrl(f, text);
      else if (a == "--bench-sim") one = check_bench_sim(f, text);
      else one = check_prom(f, text);
      if (one != 0) rc = one;
    } else if (a == "--help" || a == "-h") {
      return usage();
    } else {
      std::fprintf(stderr, "lcheck: unknown argument '%s'\n", a.c_str());
      return usage();
    }
  }
  if (!checked) return usage();
  return rc;
}
