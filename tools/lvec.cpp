// lvec — the conformance-corpus tool.
//
// The corpus under tests/vectors/ is generated, committed, and then treated
// as ground truth: CI replays it against every CPU model and regenerates it
// to prove the checked-in files still match the generator (the drift gate).
// lvec is the one tool for all of that:
//
//   lvec gen --out DIR [--seed N] [--cases N] [--only KEY]
//       (re)write the per-mnemonic corpus files
//   lvec verify --dir DIR
//       regenerate each file with its recorded header parameters and fail
//       on any byte difference (drift gate)
//   lvec replay (--dir DIR | --file F) [--leg L | --legs L1,L2,...]
//               [--case NAME]
//       run every vector on all five legs (or the named subset of
//       iu-slow/iu-fast/iu-block/pipe-slow/pipe-fast), report divergences
//   lvec coverage --dir DIR
//       fail unless every implemented mnemonic has a parseable file with
//       at least one vector
//   lvec diff FILE_A FILE_B
//       first per-case difference between two corpus files
//
// Exit codes: 0 all good, 1 a check failed, 2 usage/IO error.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "conform/generator.hpp"
#include "conform/replay.hpp"
#include "conform/vector.hpp"

namespace {

using namespace la;
using namespace la::conform;

int usage() {
  std::fprintf(
      stderr,
      "usage: lvec gen --out DIR [--seed N] [--cases N] [--only KEY]\n"
      "       lvec verify --dir DIR\n"
      "       lvec replay (--dir DIR | --file F) [--leg L | --legs "
      "L1,L2,...] [--case NAME]\n"
      "                   legs: iu-slow iu-fast iu-block pipe-slow "
      "pipe-fast\n"
      "       lvec coverage --dir DIR\n"
      "       lvec diff FILE_A FILE_B\n");
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << text;
  return out.good();
}

std::string corpus_path(const std::string& dir, const std::string& key) {
  return dir + "/" + key + ".json";
}

bool load_corpus(const std::string& path, CorpusFile& f) {
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "lvec: cannot read %s\n", path.c_str());
    return false;
  }
  std::string err;
  if (!parse_corpus_file(text, f, err)) {
    std::fprintf(stderr, "lvec: %s: %s\n", path.c_str(), err.c_str());
    return false;
  }
  return true;
}

struct Options {
  std::string dir;
  std::string only;       // corpus key filter (gen)
  std::string file;       // single corpus file (replay)
  std::string leg;        // leg name filter (replay)
  std::string legs;       // comma-separated leg subset (replay)
  std::string case_name;  // case name filter (replay)
  u64 seed = kDefaultSeed;
  int cases = kDefaultCases;
};

bool parse_options(int argc, char** argv, int first, Options& o) {
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&](std::string& slot) {
      if (i + 1 >= argc) return false;
      slot = argv[++i];
      return true;
    };
    std::string v;
    if (a == "--out" || a == "--dir") {
      if (!value(o.dir)) return false;
    } else if (a == "--only") {
      if (!value(o.only)) return false;
    } else if (a == "--file") {
      if (!value(o.file)) return false;
    } else if (a == "--leg") {
      if (!value(o.leg)) return false;
    } else if (a == "--legs") {
      if (!value(o.legs)) return false;
    } else if (a == "--case") {
      if (!value(o.case_name)) return false;
    } else if (a == "--seed") {
      if (!value(v)) return false;
      o.seed = std::strtoull(v.c_str(), nullptr, 0);
    } else if (a == "--cases") {
      if (!value(v)) return false;
      o.cases = static_cast<int>(std::strtol(v.c_str(), nullptr, 0));
      if (o.cases < 1) return false;
    } else {
      std::fprintf(stderr, "lvec: unknown option %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

// ---- gen ----------------------------------------------------------------

int cmd_gen(const Options& o) {
  if (o.dir.empty()) return usage();
  std::error_code ec;
  std::filesystem::create_directories(o.dir, ec);
  if (ec) {
    std::fprintf(stderr, "lvec: cannot create %s: %s\n", o.dir.c_str(),
                 ec.message().c_str());
    return 2;
  }
  int written = 0;
  for (const isa::Mnemonic mn : corpus_mnemonics()) {
    const std::string key = corpus_key(mn);
    if (!o.only.empty() && key != o.only) continue;
    const CorpusFile f = generate_corpus(mn, o.seed, o.cases);
    const std::string path = corpus_path(o.dir, key);
    if (!write_file(path, to_json(f))) {
      std::fprintf(stderr, "lvec: cannot write %s\n", path.c_str());
      return 2;
    }
    ++written;
  }
  if (written == 0) {
    std::fprintf(stderr, "lvec: no mnemonic matches --only %s\n",
                 o.only.c_str());
    return 2;
  }
  std::printf("lvec: wrote %d corpus files to %s\n", written, o.dir.c_str());
  return 0;
}

// ---- verify (drift gate) ------------------------------------------------

int cmd_verify(const Options& o) {
  if (o.dir.empty()) return usage();
  int drifted = 0;
  for (const isa::Mnemonic mn : corpus_mnemonics()) {
    const std::string key = corpus_key(mn);
    const std::string path = corpus_path(o.dir, key);
    std::string committed;
    if (!read_file(path, committed)) {
      std::fprintf(stderr, "lvec: missing corpus file %s\n", path.c_str());
      ++drifted;
      continue;
    }
    CorpusFile f;
    std::string err;
    if (!parse_corpus_file(committed, f, err)) {
      std::fprintf(stderr, "lvec: %s: %s\n", path.c_str(), err.c_str());
      ++drifted;
      continue;
    }
    const CorpusFile regen = generate_corpus(mn, f.seed, f.cases);
    const std::string fresh = to_json(regen);
    if (fresh != committed) {
      // Point at the first differing case for a usable report.
      std::string detail = "file bytes differ";
      const size_t n = std::min(f.vectors.size(), regen.vectors.size());
      for (size_t i = 0; i < n; ++i) {
        if (auto d = diff_vectors(regen.vectors[i], f.vectors[i]);
            !d.empty()) {
          detail = d;
          break;
        }
      }
      if (detail == "file bytes differ" &&
          f.vectors.size() != regen.vectors.size()) {
        detail = "case count " + std::to_string(regen.vectors.size()) +
                 " vs " + std::to_string(f.vectors.size());
      }
      std::fprintf(stderr, "lvec: drift in %s: %s\n", path.c_str(),
                   detail.c_str());
      ++drifted;
    }
  }
  if (drifted) {
    std::fprintf(stderr,
                 "lvec: %d corpus file(s) drifted — regenerate with "
                 "`lvec gen` and commit\n",
                 drifted);
    return 1;
  }
  std::printf("lvec: corpus matches its generator (no drift)\n");
  return 0;
}

// ---- replay -------------------------------------------------------------

// Resolve --leg / --legs into the leg set to run (all five by default).
int select_legs(const Options& o, std::vector<Leg>& out) {
  if (!o.leg.empty() && !o.legs.empty()) {
    std::fprintf(stderr, "lvec: --leg and --legs are mutually exclusive\n");
    return 2;
  }
  std::vector<std::string> names;
  if (!o.leg.empty()) names.push_back(o.leg);
  std::size_t pos = 0;
  while (pos < o.legs.size()) {
    const std::size_t comma = o.legs.find(',', pos);
    const std::size_t end = comma == std::string::npos ? o.legs.size() : comma;
    if (end > pos) names.push_back(o.legs.substr(pos, end - pos));
    pos = end + 1;
  }
  if (names.empty()) {
    out.assign(std::begin(kAllLegs), std::end(kAllLegs));
    return 0;
  }
  for (const std::string& name : names) {
    Leg l = Leg::kIuSlow;
    if (!leg_from_name(name, l)) {
      std::fprintf(stderr, "lvec: unknown leg %s\n", name.c_str());
      return 2;
    }
    out.push_back(l);
  }
  return 0;
}

void replay_corpus(const CorpusFile& f, const Options& o,
                   const std::vector<Leg>& legs, int& ran, int& failed) {
  for (const TestVector& v : f.vectors) {
    if (!o.case_name.empty() && v.name != o.case_name) continue;
    ++ran;
    for (const Leg leg : legs) {
      if (const std::string d = replay_vector(v, leg); !d.empty()) {
        std::fprintf(stderr, "FAIL %s\n", d.c_str());
        ++failed;
        break;  // first failing leg's report wins, as replay_vector_all
      }
    }
  }
}

int cmd_replay(const Options& o) {
  if (o.dir.empty() == o.file.empty()) return usage();  // exactly one
  std::vector<Leg> legs;
  if (int rc = select_legs(o, legs)) return rc;
  int ran = 0, failed = 0;
  if (!o.file.empty()) {
    CorpusFile f;
    if (!load_corpus(o.file, f)) return 2;
    replay_corpus(f, o, legs, ran, failed);
  } else {
    for (const isa::Mnemonic mn : corpus_mnemonics()) {
      const std::string path = corpus_path(o.dir, corpus_key(mn));
      CorpusFile f;
      if (!load_corpus(path, f)) return 2;
      replay_corpus(f, o, legs, ran, failed);
    }
  }
  if (ran == 0) {
    std::fprintf(stderr, "lvec: no case matched\n");
    return 2;
  }
  std::printf("lvec: replayed %d case(s) on %zu leg(s), %d failure(s)\n",
              ran, legs.size(), failed);
  return failed ? 1 : 0;
}

// ---- coverage -----------------------------------------------------------

int cmd_coverage(const Options& o) {
  if (o.dir.empty()) return usage();
  int missing = 0, total = 0;
  for (const isa::Mnemonic mn : corpus_mnemonics()) {
    ++total;
    const std::string key = corpus_key(mn);
    CorpusFile f;
    std::string text;
    std::string err;
    const std::string path = corpus_path(o.dir, key);
    if (!read_file(path, text) || !parse_corpus_file(text, f, err) ||
        f.vectors.empty() || f.mnemonic != key) {
      std::fprintf(stderr, "lvec: mnemonic %s not covered (%s)\n", key.c_str(),
                   path.c_str());
      ++missing;
    }
  }
  if (missing) {
    std::fprintf(stderr, "lvec: %d of %d mnemonics uncovered\n", missing,
                 total);
    return 1;
  }
  std::printf("lvec: all %d mnemonics covered\n", total);
  return 0;
}

// ---- diff ---------------------------------------------------------------

int cmd_diff(const std::string& pa, const std::string& pb) {
  CorpusFile a, b;
  if (!load_corpus(pa, a) || !load_corpus(pb, b)) return 2;
  std::map<std::string, const TestVector*> bv;
  for (const TestVector& v : b.vectors) bv[v.name] = &v;
  int diffs = 0;
  std::set<std::string> seen;
  for (const TestVector& v : a.vectors) {
    seen.insert(v.name);
    const auto it = bv.find(v.name);
    if (it == bv.end()) {
      std::printf("only in %s: %s\n", pa.c_str(), v.name.c_str());
      ++diffs;
      continue;
    }
    if (auto d = diff_vectors(v, *it->second); !d.empty()) {
      std::printf("%s\n", d.c_str());
      ++diffs;
    }
  }
  for (const TestVector& v : b.vectors) {
    if (!seen.count(v.name)) {
      std::printf("only in %s: %s\n", pb.c_str(), v.name.c_str());
      ++diffs;
    }
  }
  if (diffs) {
    std::printf("lvec: %d difference(s)\n", diffs);
    return 1;
  }
  std::printf("lvec: corpora identical\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "diff") {
    if (argc != 4) return usage();
    return cmd_diff(argv[2], argv[3]);
  }
  Options o;
  if (!parse_options(argc, argv, 2, o)) return usage();
  if (cmd == "gen") return cmd_gen(o);
  if (cmd == "verify") return cmd_verify(o);
  if (cmd == "replay") return cmd_replay(o);
  if (cmd == "coverage") return cmd_coverage(o);
  return usage();
}
