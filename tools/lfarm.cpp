// lfarm: drive a Liquid Farm with a seeded closed-loop workload and
// verify it end to end.
//
// The tool is both a demo and a checker: it generates a reproducible
// stream of jobs (mixed owners, Zipf-skewed configuration popularity),
// submits them against admission-control backpressure, and audits every
// outcome — each admitted job must complete exactly once, its program's
// result word must read back with the host-predicted value, and each
// owner's results must arrive in submission order.  Any lost, duplicated,
// failed, out-of-order, or corrupted job makes the exit code nonzero,
// which is what CI's farm-smoke job keys on.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/prometheus.hpp"
#include "common/rng.hpp"
#include "farm/farm.hpp"
#include "farm/workload.hpp"
#include "fault/injector.hpp"

namespace {

using namespace la;

struct Options {
  std::size_t nodes = 4;
  u64 jobs = 200;  // 0 = unlimited (requires --budget-secs)
  u64 seed = 1;
  farm::FarmPolicy policy = farm::FarmPolicy::kAffinity;
  // Enough distinct owners to keep every node of a wide fleet fed: per-
  // owner FIFO serializes each owner, so the runnable set (and with it
  // both parallelism and affinity's choices) is capped by owner count.
  unsigned owners = 24;
  unsigned configs = 8;
  std::size_t window = 16;
  std::size_t queue = 256;
  u32 max_skips = 8;
  double budget_secs = 0.0;  // stop submitting after this much host time
  bool cold = false;         // skip pre-synthesizing the catalog
  std::string report_json;
  std::string metrics_json;  // fleet snapshot via the bench egress
  std::string perf_trace;    // merged multi-node Chrome trace
  std::string trace_out;     // causal job spans, Chrome trace_event
  std::string spans_out;     // causal job spans, JSONL
  std::string prom;          // fleet snapshot, Prometheus exposition
  bool flight_recorder = false;
  bool quiet = false;
  /// Chaos mode: wedge this many distinct nodes (seeded pick, seeded
  /// trigger cycle) and require the self-healing machinery to deliver
  /// every job anyway — with at least one migration and one warm start.
  std::size_t fault_nodes = 0;
};

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: lfarm [options]\n"
               "  --nodes N        fleet size (default 4)\n"
               "  --jobs N         jobs to run; 0 = until budget "
               "(default 200)\n"
               "  --seed S         workload seed (default 1)\n"
               "  --policy P       affinity | fifo (default affinity)\n"
               "  --owners N       distinct job owners (default 24)\n"
               "  --configs N      configuration catalog size (default 8)\n"
               "  --window N       affinity look-ahead window (default 16)\n"
               "  --queue N        admission-control capacity (default 256)\n"
               "  --budget-secs S  stop submitting after S host seconds\n"
               "  --cold           start with an empty bitfile cache\n"
               "  --report-json F  write the fleet metrics snapshot to F\n"
               "  --metrics-json F write the fleet snapshot via the bench\n"
               "                   egress format ({benchmark, runs})\n"
               "  --perf-trace F   per-node cycle tracers, merged into one\n"
               "                   multi-process Chrome trace (slower:\n"
               "                   forces the per-step run path)\n"
               "  --trace-out F    causal job tracing: every job's phases\n"
               "                   as a Chrome trace_event file, one\n"
               "                   process lane per node\n"
               "  --spans-out F    causal job tracing as JSONL, one span\n"
               "                   object per line\n"
               "  --prom F         write the fleet snapshot as Prometheus\n"
               "                   text exposition\n"
               "  --flight-recorder  arm each node's black-box recorder;\n"
               "                   failed jobs deliver a post-mortem dump\n"
               "  --fault-nodes K  chaos: wedge K distinct nodes (seeded)\n"
               "                   mid-run; the audit then also requires\n"
               "                   retries, >=1 migration and >=1 warm\n"
               "                   start on top of exactly-once delivery\n"
               "  --quiet          suppress the report text\n");
}

bool parse(int argc, char** argv, Options& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "lfarm: %s needs a value\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (a == "--nodes") {
      const char* v = next("--nodes");
      if (v == nullptr) return false;
      o.nodes = std::strtoull(v, nullptr, 10);
    } else if (a == "--jobs") {
      const char* v = next("--jobs");
      if (v == nullptr) return false;
      o.jobs = std::strtoull(v, nullptr, 10);
    } else if (a == "--seed") {
      const char* v = next("--seed");
      if (v == nullptr) return false;
      o.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--policy") {
      const char* v = next("--policy");
      if (v == nullptr) return false;
      if (std::strcmp(v, "affinity") == 0) {
        o.policy = farm::FarmPolicy::kAffinity;
      } else if (std::strcmp(v, "fifo") == 0) {
        o.policy = farm::FarmPolicy::kFifo;
      } else {
        std::fprintf(stderr, "lfarm: unknown policy '%s'\n", v);
        return false;
      }
    } else if (a == "--owners") {
      const char* v = next("--owners");
      if (v == nullptr) return false;
      o.owners = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (a == "--configs") {
      const char* v = next("--configs");
      if (v == nullptr) return false;
      o.configs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (a == "--window") {
      const char* v = next("--window");
      if (v == nullptr) return false;
      o.window = std::strtoull(v, nullptr, 10);
    } else if (a == "--queue") {
      const char* v = next("--queue");
      if (v == nullptr) return false;
      o.queue = std::strtoull(v, nullptr, 10);
    } else if (a == "--budget-secs") {
      const char* v = next("--budget-secs");
      if (v == nullptr) return false;
      o.budget_secs = std::strtod(v, nullptr);
    } else if (a == "--cold") {
      o.cold = true;
    } else if (a == "--report-json") {
      const char* v = next("--report-json");
      if (v == nullptr) return false;
      o.report_json = v;
    } else if (a == "--metrics-json") {
      const char* v = next("--metrics-json");
      if (v == nullptr) return false;
      o.metrics_json = v;
    } else if (a == "--perf-trace") {
      const char* v = next("--perf-trace");
      if (v == nullptr) return false;
      o.perf_trace = v;
    } else if (a == "--trace-out") {
      const char* v = next("--trace-out");
      if (v == nullptr) return false;
      o.trace_out = v;
    } else if (a == "--spans-out") {
      const char* v = next("--spans-out");
      if (v == nullptr) return false;
      o.spans_out = v;
    } else if (a == "--prom") {
      const char* v = next("--prom");
      if (v == nullptr) return false;
      o.prom = v;
    } else if (a == "--fault-nodes") {
      const char* v = next("--fault-nodes");
      if (v == nullptr) return false;
      o.fault_nodes = std::strtoull(v, nullptr, 10);
    } else if (a == "--flight-recorder") {
      o.flight_recorder = true;
    } else if (a == "--quiet") {
      o.quiet = true;
    } else if (a == "--help" || a == "-h") {
      usage(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "lfarm: unknown argument '%s'\n", a.c_str());
      usage(stderr);
      return false;
    }
  }
  if (o.jobs == 0 && o.budget_secs <= 0.0) {
    std::fprintf(stderr, "lfarm: --jobs 0 requires --budget-secs\n");
    return false;
  }
  if (o.owners == 0) {
    std::fprintf(stderr, "lfarm: --owners must be at least 1\n");
    return false;
  }
  if (o.fault_nodes >= o.nodes && o.fault_nodes != 0) {
    // At least one never-faulted node must exist or a migration target
    // cannot be guaranteed.
    std::fprintf(stderr, "lfarm: --fault-nodes must be < --nodes\n");
    return false;
  }
  return true;
}

/// Everything the auditor remembers about one admitted job.
struct Expectation {
  std::string owner;
  u32 expected = 0;
  u32 completions = 0;
};

struct Audit {
  std::map<u64, Expectation> admitted;
  std::map<std::string, u64> last_id_by_owner;
  u64 completed = 0;
  u64 duplicated = 0;
  u64 failed = 0;
  u64 corrupted = 0;
  u64 reordered = 0;
  u64 bad_history = 0;

  void record(const farm::FarmJobOutcome& out) {
    // Retry bookkeeping must audit clean on every outcome, healed or not:
    // one node per execution, final entry naming the delivering node.
    if (out.node_history.size() != out.attempts || out.attempts == 0 ||
        out.node_history.back() != out.node) {
      ++bad_history;
      std::fprintf(stderr, "lfarm: job %llu has a broken audit trail\n",
                   static_cast<unsigned long long>(out.id));
    }
    const auto it = admitted.find(out.id);
    if (it == admitted.end() || ++it->second.completions > 1) {
      ++duplicated;
      return;
    }
    ++completed;
    if (!out.result.ok) {
      ++failed;
      std::fprintf(stderr, "lfarm: job %llu failed: %s\n",
                   static_cast<unsigned long long>(out.id),
                   out.result.error.c_str());
      if (!out.flight_dump.empty()) {
        std::fprintf(stderr,
                     "lfarm: flight-recorder post-mortem for job %llu:\n%s\n",
                     static_cast<unsigned long long>(out.id),
                     out.flight_dump.c_str());
      }
      return;
    }
    if (out.result.readback.empty() ||
        out.result.readback[0] != it->second.expected) {
      ++corrupted;
      std::fprintf(stderr,
                   "lfarm: job %llu read back 0x%08x, expected 0x%08x\n",
                   static_cast<unsigned long long>(out.id),
                   out.result.readback.empty() ? 0u : out.result.readback[0],
                   it->second.expected);
    }
    // Per-owner FIFO: ids are assigned in submission order, so an owner's
    // outcomes must arrive with strictly increasing ids.
    u64& last = last_id_by_owner[out.owner];
    if (out.id <= last) ++reordered;
    last = out.id;
  }
};

bool write_file(const char* tool, const std::string& path,
                const std::string& text) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "%s: cannot write %s\n", tool, path.c_str());
    return false;
  }
  const bool ok = std::fwrite(text.data(), 1, text.size(), out) == text.size();
  return std::fclose(out) == 0 && ok;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) return 2;

  farm::FarmConfig fc;
  fc.nodes = opt.nodes;
  fc.scheduler.policy = opt.policy;
  fc.scheduler.queue_capacity = opt.queue;
  fc.scheduler.affinity_window = opt.window;
  fc.scheduler.max_skips = opt.max_skips;
  fc.tracing = !opt.trace_out.empty() || !opt.spans_out.empty();
  fc.perf_trace = !opt.perf_trace.empty();
  fc.node_template.flight_recorder = opt.flight_recorder;
  if (opt.fault_nodes > 0) {
    // Hold the workers at their gate so injectors can be armed safely,
    // and keep fault detection fast: a wedged CPU should trip the node
    // watchdog, not the client's 10M-step deadline.
    fc.autostart = false;
    fc.node_template.watchdog_budget = 20'000;
  }
  farm::LiquidFarm f(fc);

  // Chaos: pick K distinct victims and wedge each one permanently (until
  // reset) at a seeded cycle early in its run.  Only drain-on-fault,
  // retry and migration can then deliver a clean audit.
  std::vector<std::unique_ptr<fault::FaultInjector>> injectors;
  if (opt.fault_nodes > 0) {
    Rng pick_rng(opt.seed * 0x9e3779b97f4a7c15ull + 1);
    std::set<std::size_t> victims;
    while (victims.size() < opt.fault_nodes) {
      victims.insert(static_cast<std::size_t>(
          pick_rng.below(static_cast<u32>(opt.nodes))));
    }
    for (const std::size_t v : victims) {
      // A single wedge can evaporate without tripping anything: an FPGA
      // reprogram (warm or cold) legitimately replaces the whole CPU
      // state, wedge included, so a wedge landing in a harmless phase
      // just before an architecture switch heals silently.  Wedge the
      // victim repeatedly so one lands across a run phase and the
      // watchdog + drain machinery actually engage.
      fault::FaultPlan plan;
      const u64 first = 2'000 + pick_rng.below(10'000);
      for (u64 shot = 0; shot < 6; ++shot) {
        plan.events.push_back(
            {{fault::TriggerKind::kCycle, first + shot * 25'000},
             {fault::FaultSite::kCpuWedge, 0, 1, 1, 0}});
      }
      injectors.push_back(std::make_unique<fault::FaultInjector>(
          f.node_for_setup(v), plan));
      if (!opt.quiet) {
        std::printf("chaos: node %zu wedges from cycle %llu\n", v,
                    static_cast<unsigned long long>(first));
      }
    }
    f.start();
  }

  farm::WorkloadConfig wc;
  wc.seed = opt.seed;
  wc.owners = opt.owners;
  wc.configs = opt.configs;
  farm::WorkloadGenerator gen(wc);

  if (!opt.cold) {
    // The paper's offline pass: pre-synthesize the catalog once so the
    // run measures scheduling and reconfiguration, not synthesis hours.
    liquid::ConfigSpace space;
    space.dcache_sizes.clear();
    space.mul_latencies.clear();
    for (const liquid::ArchConfig& c : gen.catalog()) {
      space.dcache_sizes.push_back(c.dcache_bytes);
      space.mul_latencies.push_back(c.mul_latency);
    }
    f.pregenerate(space);
  }

  Audit audit;
  u64 rejected = 0;
  const auto t0 = std::chrono::steady_clock::now();
  auto budget_left = [&] {
    if (opt.budget_secs <= 0.0) return true;
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    return dt.count() < opt.budget_secs;
  };

  // Closed loop: submit until the queue pushes back, then absorb a result
  // before trying again — the generator never outruns admission control.
  u64 submitted = 0;
  while ((opt.jobs == 0 || submitted < opt.jobs) && budget_left()) {
    farm::GeneratedJob g = gen.next();
    const std::string owner = g.job.owner;
    for (;;) {
      farm::Result<u64> id = f.submit(g.job);
      if (id) {
        audit.admitted[*id] = {owner, g.expected, 0};
        ++submitted;
        break;
      }
      if (id.error().kind != farm::FarmErrorKind::kSaturated) {
        std::fprintf(stderr, "lfarm: submit failed: %s\n",
                     id.error().to_string().c_str());
        return 2;
      }
      ++rejected;
      if (auto out = f.pop_result()) audit.record(*out);
    }
  }

  f.drain();
  while (auto out = f.try_pop_result()) audit.record(*out);

  farm::FarmReport rep = f.report();
  const farm::FarmScheduler::Stats ss = f.scheduler_stats();

  const u64 lost = submitted - audit.completed;
  if (!opt.quiet) {
    std::fputs(rep.text().c_str(), stdout);
    std::printf(
        "scheduler: %llu picks, %llu affinity hits, %llu aged, "
        "%llu submissions bounced\n",
        static_cast<unsigned long long>(ss.picks),
        static_cast<unsigned long long>(ss.affinity_hits),
        static_cast<unsigned long long>(ss.aged_picks),
        static_cast<unsigned long long>(rejected));
  }
  if (!opt.report_json.empty() &&
      !write_file("lfarm", opt.report_json, rep.to_json())) {
    return 2;
  }
  if (!opt.metrics_json.empty()) {
    // Same egress shape as the benches and lsim, so downstream tooling
    // reads one format everywhere.
    bench::BenchIo io("lfarm", opt.metrics_json, "");
    io.add_run("fleet", rep.fleet);
    if (!io.finish()) return 2;
  }
  if (!opt.perf_trace.empty() &&
      !write_file("lfarm", opt.perf_trace, f.merged_perf_trace())) {
    return 2;
  }
  if (!opt.trace_out.empty() &&
      !f.span_log().write_chrome_json(opt.trace_out)) {
    std::fprintf(stderr, "lfarm: cannot write %s\n", opt.trace_out.c_str());
    return 2;
  }
  if (!opt.spans_out.empty() && !f.span_log().write_jsonl(opt.spans_out)) {
    std::fprintf(stderr, "lfarm: cannot write %s\n", opt.spans_out.c_str());
    return 2;
  }
  if (!opt.prom.empty() &&
      !write_file("lfarm", opt.prom,
                  metrics::to_prometheus(rep.fleet, "liquid_"))) {
    return 2;
  }

  std::printf("verify: %llu submitted, %llu completed, %llu lost, "
              "%llu duplicated, %llu failed, %llu corrupted, %llu reordered, "
              "%llu bad history\n",
              static_cast<unsigned long long>(submitted),
              static_cast<unsigned long long>(audit.completed),
              static_cast<unsigned long long>(lost),
              static_cast<unsigned long long>(audit.duplicated),
              static_cast<unsigned long long>(audit.failed),
              static_cast<unsigned long long>(audit.corrupted),
              static_cast<unsigned long long>(audit.reordered),
              static_cast<unsigned long long>(audit.bad_history));
  bool ok = lost == 0 && audit.duplicated == 0 && audit.failed == 0 &&
            audit.corrupted == 0 && audit.reordered == 0 &&
            audit.bad_history == 0;
  if (opt.fault_nodes > 0) {
    // Chaos runs must also show the self-healing machinery actually
    // engaged: clean-because-nothing-happened is a test bug, not a pass.
    std::printf("chaos: %llu retries, %llu migrations, %llu warm starts\n",
                static_cast<unsigned long long>(rep.retries),
                static_cast<unsigned long long>(rep.migrations),
                static_cast<unsigned long long>(rep.warm_starts));
    if (rep.retries == 0 || rep.migrations == 0 || rep.warm_starts == 0) {
      std::fprintf(stderr,
                   "lfarm: chaos run did not exercise retry + migration + "
                   "warm start\n");
      ok = false;
    }
  }
  std::printf("RESULT: %s\n", ok ? "OK" : "FAIL");
  return ok ? 0 : 1;
}
