// lload: seeded open-traffic load generator for the UDP gateway.
//
// Where lfarm audits the farm in-process, lload audits it *over the
// wire*: it stands up a loopback fleet behind a real Gateway, then drives
// thousands of tenants through one multiplexed UDP socket — every frame
// crossing the kernel and, when a WAN profile says so, a seeded
// impairment channel that drops, duplicates, reorders, corrupts, and
// delays datagrams on both directions.
//
// Traffic shape is the open-systems classic: tenants are Zipf-popular (a
// few hot tenants, a long tail), and in open-loop mode job arrivals are a
// Poisson process at a fixed rate, queued per tenant and submitted in
// per-tenant FIFO order (arrival never waits for completion — pressure is
// real).  Closed-loop mode instead keeps every tenant in a
// submit-await-repeat cycle.  Either way each tenant retries every
// operation under a stable request id and honors RETRY_AFTER backoffs, so
// the run doubles as a protocol conformance test.
//
// The audit is end-to-end and unforgiving: every job's result word must
// match the host-predicted value, arrive exactly once, and carry a dense,
// in-submission-order per-tenant completion_seq — over a wire that
// actively tried to break all three.  Any violation (or any job that
// never finishes inside the deadline) makes the exit code nonzero; the
// CI gateway-smoke job keys on that.
//
// Each --wan profile runs as its own phase (fresh fleet, fresh gateway)
// and contributes one row to the --out BENCH_ctrl.json: sustained
// completed requests/sec plus p50/p95/p99 command latency (submit ->
// admission) and end-to-end latency (arrival -> result).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "farm/farm.hpp"
#include "farm/workload.hpp"
#include "gate/client.hpp"
#include "gate/gateway.hpp"

namespace {

using namespace la;

struct Options {
  std::size_t nodes = 4;
  u32 tenants = 32;
  u32 jobs_per_tenant = 4;
  bool open_loop = false;
  double rate = 300.0;  // open-loop arrivals/sec across all tenants
  double zipf_s = 1.1;
  u64 seed = 1;
  unsigned configs = 8;
  std::size_t queue = 512;
  std::size_t per_owner_cap = 0;
  double max_secs = 120.0;  // hard wall deadline per phase
  std::string wans = "lan";
  std::string out;
  bool quiet = false;
};

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: lload [options]\n"
               "  --nodes N        fleet size behind the gateway "
               "(default 4)\n"
               "  --tenants N      concurrent tenants (default 32)\n"
               "  --jobs N         jobs per tenant (default 4)\n"
               "  --open           open-loop mode: Poisson arrivals at "
               "--rate,\n"
               "                   Zipf-distributed across tenants "
               "(default: closed loop)\n"
               "  --rate R         open-loop arrivals/sec (default 300)\n"
               "  --zipf S         tenant popularity skew (default 1.1)\n"
               "  --seed S         traffic + workload seed (default 1)\n"
               "  --configs N      configuration catalog size (default 8)\n"
               "  --queue N        farm admission queue capacity "
               "(default 512)\n"
               "  --owner-cap N    farm per-owner outstanding cap "
               "(default 0 = off)\n"
               "  --max-secs S     per-phase wall deadline (default 120)\n"
               "  --wan LIST       comma list of WAN profiles to phase "
               "through\n"
               "                   (lan wan lossy; default lan)\n"
               "  --out FILE       write/append BENCH_ctrl.json rows\n"
               "  --quiet          suppress per-phase progress\n");
}

bool parse(int argc, char** argv, Options& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "lload: %s needs a value\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (a == "--nodes") {
      if ((v = next("--nodes")) == nullptr) return false;
      o.nodes = std::strtoull(v, nullptr, 10);
    } else if (a == "--tenants") {
      if ((v = next("--tenants")) == nullptr) return false;
      o.tenants = static_cast<u32>(std::strtoul(v, nullptr, 10));
    } else if (a == "--jobs") {
      if ((v = next("--jobs")) == nullptr) return false;
      o.jobs_per_tenant = static_cast<u32>(std::strtoul(v, nullptr, 10));
    } else if (a == "--open") {
      o.open_loop = true;
    } else if (a == "--rate") {
      if ((v = next("--rate")) == nullptr) return false;
      o.rate = std::strtod(v, nullptr);
    } else if (a == "--zipf") {
      if ((v = next("--zipf")) == nullptr) return false;
      o.zipf_s = std::strtod(v, nullptr);
    } else if (a == "--seed") {
      if ((v = next("--seed")) == nullptr) return false;
      o.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--configs") {
      if ((v = next("--configs")) == nullptr) return false;
      o.configs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (a == "--queue") {
      if ((v = next("--queue")) == nullptr) return false;
      o.queue = std::strtoull(v, nullptr, 10);
    } else if (a == "--owner-cap") {
      if ((v = next("--owner-cap")) == nullptr) return false;
      o.per_owner_cap = std::strtoull(v, nullptr, 10);
    } else if (a == "--max-secs") {
      if ((v = next("--max-secs")) == nullptr) return false;
      o.max_secs = std::strtod(v, nullptr);
    } else if (a == "--wan") {
      if ((v = next("--wan")) == nullptr) return false;
      o.wans = v;
    } else if (a == "--out") {
      if ((v = next("--out")) == nullptr) return false;
      o.out = v;
    } else if (a == "--quiet") {
      o.quiet = true;
    } else if (a == "--help" || a == "-h") {
      usage(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "lload: unknown argument '%s'\n", a.c_str());
      usage(stderr);
      return false;
    }
  }
  return true;
}

/// One queued-or-in-flight submission of a tenant.
struct PendingSubmit {
  u64 request_id = 0;
  Bytes frame;          // serialized kSubmit, resent verbatim on retries
  u32 expected = 0;     // host-predicted result word
  u32 index = 0;        // per-tenant submission number (audit key)
  double arrival_ms = 0;
  double first_send_ms = 0;  // 0 = not sent yet
};

/// An accepted submission awaiting its result.
struct Outstanding {
  u32 expected = 0;
  u32 index = 0;
  double arrival_ms = 0;
};

struct TenantState {
  u64 token = 0;
  bool hello_ok = false;
  double resend_at = 0;       // next (re)send time for the current step
  double backoff_until = 0;   // RETRY_AFTER hold on the head submit
  std::deque<PendingSubmit> queue;  // per-tenant FIFO; head may be in flight
  std::unordered_map<u64, Outstanding> outstanding;
  u32 submitted = 0;  // submissions created (arrival side)
  u32 completed = 0;  // results audited
  double next_poll_ms = 0;  // recovery polls for lost result pushes
};

struct PhaseRow {
  std::string wan;
  std::string mode;
  u32 tenants = 0;
  std::size_t nodes = 0;
  u64 jobs = 0;
  u64 completed = 0;
  u64 failed = 0;
  u64 backoffs = 0;       // RETRY_AFTER frames honored
  u64 dup_results = 0;    // duplicate result frames absorbed (wire dups)
  u64 violations = 0;
  double duration_s = 0;
  double rps = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;        // submit -> accepted
  double e2e_p50_ms = 0, e2e_p99_ms = 0;            // arrival -> result
  bool audit_ok = false;
  bool finished = false;  // every job completed inside the deadline

  std::string to_json() const {
    char buf[768];
    std::snprintf(
        buf, sizeof buf,
        "{\"wan\": \"%s\", \"mode\": \"%s\", \"tenants\": %u, "
        "\"nodes\": %zu, \"jobs\": %llu, \"completed\": %llu, "
        "\"failed\": %llu, \"backoffs\": %llu, \"dup_results\": %llu, "
        "\"violations\": %llu, \"duration_s\": %.3f, \"rps\": %.2f, "
        "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, "
        "\"e2e_p50_ms\": %.3f, \"e2e_p99_ms\": %.3f, "
        "\"audit_ok\": %s, \"finished\": %s}",
        wan.c_str(), mode.c_str(), tenants, nodes,
        static_cast<unsigned long long>(jobs),
        static_cast<unsigned long long>(completed),
        static_cast<unsigned long long>(failed),
        static_cast<unsigned long long>(backoffs),
        static_cast<unsigned long long>(dup_results),
        static_cast<unsigned long long>(violations), duration_s, rps, p50_ms,
        p95_ms, p99_ms, e2e_p50_ms, e2e_p99_ms, audit_ok ? "true" : "false",
        finished ? "true" : "false");
    return buf;
  }
};

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t i = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(i, v.size() - 1)];
}

/// Zipf CDF over tenant indices (rank 0 most popular) — same shape the
/// farm workload uses for configuration popularity.
std::vector<double> zipf_cdf(u32 n, double s) {
  std::vector<double> cum(n);
  double total = 0;
  for (u32 i = 0; i < n; ++i) total += 1.0 / std::pow(i + 1.0, s);
  double acc = 0;
  for (u32 i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(i + 1.0, s) / total;
    cum[i] = acc;
  }
  cum[n - 1] = 1.0;
  return cum;
}

u32 pick_zipf(const std::vector<double>& cdf, double u) {
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return static_cast<u32>(it - cdf.begin());
}

struct AuditLog {
  u64 violations = 0;
  bool quiet = false;

  void fail(const char* what, const std::string& tenant, u64 request_id,
            const std::string& detail) {
    ++violations;
    if (violations <= 20) {  // enough to diagnose, bounded to stay readable
      std::fprintf(stderr, "lload: AUDIT %s tenant=%s req=%llu %s\n", what,
                   tenant.c_str(), static_cast<unsigned long long>(request_id),
                   detail.c_str());
    }
  }
};

/// Run one phase (one WAN profile) against a fresh fleet + gateway.
PhaseRow run_phase(const Options& opt, const net::WanProfile& profile) {
  PhaseRow row;
  row.wan = profile.name;
  row.mode = opt.open_loop ? "open" : "closed";
  row.tenants = opt.tenants;
  row.nodes = opt.nodes;
  row.jobs = static_cast<u64>(opt.tenants) * opt.jobs_per_tenant;

  farm::FarmConfig fc;
  fc.nodes = opt.nodes;
  fc.scheduler.queue_capacity = opt.queue;
  fc.scheduler.per_owner_cap = opt.per_owner_cap;
  farm::LiquidFarm farm(fc);

  gate::GateConfig gc;
  gc.tenants = opt.tenants;
  gc.secret_seed = opt.seed ^ 0x9e3779b97f4a7c15ull;
  gate::Gateway gw(farm, gc);
  if (!gw.start()) {
    std::fprintf(stderr, "lload: gateway failed to bind\n");
    return row;
  }

  // One socket, one impaired link, every tenant multiplexed over it —
  // a thousand tenants must not need a thousand file descriptors.
  gate::UdpSocket sock;
  if (!sock.open()) {
    std::fprintf(stderr, "lload: client socket failed\n");
    return row;
  }
  gate::WanLink link(sock, gw.addr(), profile.with_seed(opt.seed + 17));

  farm::WorkloadConfig wc;
  wc.seed = opt.seed;
  wc.configs = opt.configs;
  farm::WorkloadGenerator gen(wc);
  Rng traffic_rng(opt.seed ^ 0x10ad10adull);

  std::vector<TenantState> tenants(opt.tenants);
  std::unordered_map<u64, u32> by_token;
  for (u32 i = 0; i < opt.tenants; ++i) {
    tenants[i].token = gw.tenants().token_of(i);
    by_token.emplace(tenants[i].token, i);
  }

  const std::vector<double> cdf = zipf_cdf(opt.tenants, opt.zipf_s);
  AuditLog audit;
  audit.quiet = opt.quiet;
  std::vector<double> accept_ms, e2e_ms;
  accept_ms.reserve(row.jobs);
  e2e_ms.reserve(row.jobs);

  const double resend_ms = 40.0;  // per-step retransmit interval
  const double t0 = gate::steady_now_ms();
  const double deadline = t0 + opt.max_secs * 1000.0;

  // Arrival plan.  Closed loop: every tenant has its full job budget
  // queued up front (its FIFO discipline then paces submission).  Open
  // loop: arrivals fire on a Poisson clock, each assigned to a
  // Zipf-picked tenant that still has budget.
  auto make_submit = [&](TenantState& t, u32 tenant_idx,
                         double now) -> void {
    farm::GeneratedJob g = gen.next();
    gate::JobWire wire;
    wire.config = g.job.config;
    wire.program = g.job.program;
    wire.result_addr = g.job.result_addr;
    wire.result_words = g.job.result_words;
    PendingSubmit p;
    p.index = t.submitted;
    // Request ids are globally unique and never collide with the HELLO
    // id (1): high half names the tenant, low half the submission.
    p.request_id = (static_cast<u64>(tenant_idx) << 32) | (p.index + 2);
    p.expected = g.expected;
    p.arrival_ms = now;
    p.frame = gate::make_request(gate::GateKind::kSubmit, t.token,
                                 p.request_id, wire.serialize())
                  .serialize();
    t.queue.push_back(std::move(p));
    ++t.submitted;
  };

  u64 arrivals_left = 0;
  double next_arrival = t0;
  if (opt.open_loop) {
    arrivals_left = row.jobs;
  } else {
    for (u32 i = 0; i < opt.tenants; ++i) {
      for (u32 j = 0; j < opt.jobs_per_tenant; ++j) {
        make_submit(tenants[i], i, t0);
      }
    }
  }

  u64 completed = 0, failed = 0, backoffs = 0, dup_results = 0;
  const u64 want = row.jobs;

  auto handle_frame = [&](const gate::GateFrame& f) {
    const auto bit = by_token.find(f.token);
    if (bit == by_token.end()) return;  // stats echo or stray
    const u32 ti = bit->second;
    TenantState& t = tenants[ti];
    const double now = gate::steady_now_ms();
    switch (f.kind) {
      case gate::GateKind::kHelloOk:
        t.hello_ok = true;
        t.resend_at = now;  // release the first submit immediately
        return;
      case gate::GateKind::kRetryAfter: {
        // Explicit backpressure on the head submit: hold it for the
        // hinted interval (capped — a wild hint must not park a tenant).
        if (t.queue.empty() || t.queue.front().request_id != f.request_id) {
          return;  // stale: answers a submit that already got accepted
        }
        u32 wait = 5;
        if (const auto ra = gate::RetryAfterWire::parse(f.payload)) {
          wait = std::min(ra->retry_after_ms, 250u);
        }
        ++backoffs;
        t.backoff_until = now + wait;
        t.resend_at = t.backoff_until;
        return;
      }
      case gate::GateKind::kAccepted: {
        if (t.queue.empty() || t.queue.front().request_id != f.request_id) {
          return;  // duplicate admission of an already-advanced head
        }
        PendingSubmit head = std::move(t.queue.front());
        t.queue.pop_front();
        accept_ms.push_back(now - head.first_send_ms);
        t.outstanding.emplace(
            head.request_id,
            Outstanding{head.expected, head.index, head.arrival_ms});
        t.backoff_until = 0;
        t.resend_at = now;  // next queued submit may go immediately
        t.next_poll_ms = now + 4 * resend_ms;
        return;
      }
      case gate::GateKind::kResult: {
        const auto r = gate::ResultWire::parse(f.payload);
        if (!r) {
          audit.fail("bad-result-payload", "t" + std::to_string(ti),
                     f.request_id, "unparseable ResultWire");
          return;
        }
        if (r->status == gate::ResultWire::kPending) return;
        // A result can answer the head submit directly when the
        // kAccepted died on the wire and the job finished meanwhile.
        if (!t.queue.empty() && t.queue.front().request_id == f.request_id) {
          PendingSubmit head = std::move(t.queue.front());
          t.queue.pop_front();
          accept_ms.push_back(now - head.first_send_ms);
          t.outstanding.emplace(
              head.request_id,
              Outstanding{head.expected, head.index, head.arrival_ms});
          t.backoff_until = 0;
          t.resend_at = now;
        }
        const auto oit = t.outstanding.find(f.request_id);
        if (oit == t.outstanding.end()) {
          // Exactly-once check: a result for a request we already
          // reaped is a wire duplicate (same frame, same seq) — benign
          // and counted.  A result for a request we never made would be
          // a gateway bug.
          if ((f.request_id >> 32) == ti &&
              (f.request_id & 0xffffffffu) < t.submitted + 2) {
            ++dup_results;
          } else {
            audit.fail("phantom-result", "t" + std::to_string(ti),
                       f.request_id, "result for a request never made");
          }
          return;
        }
        const Outstanding o = oit->second;
        t.outstanding.erase(oit);
        // Per-owner order: the gateway stamps each tenant's completions
        // with a dense seq in farm-delivery order, so seq == submission
        // index is the farm's FIFO promise audited across the socket,
        // the gateway, and the fleet.  (Arrival order at this client is
        // NOT the invariant — the downlink legitimately reorders pushes;
        // the seq is exactly what lets us see through that.)
        if (r->completion_seq != o.index) {
          audit.fail("order", "t" + std::to_string(ti), f.request_id,
                     "completion_seq " + std::to_string(r->completion_seq) +
                         " != submission index " + std::to_string(o.index));
        }
        if (r->status != gate::ResultWire::kDone) {
          ++failed;
          audit.fail("job-failed", "t" + std::to_string(ti), f.request_id,
                     r->error);
        } else if (r->words.empty() || r->words[0] != o.expected) {
          audit.fail("corrupt", "t" + std::to_string(ti), f.request_id,
                     "word " +
                         (r->words.empty()
                              ? std::string("<none>")
                              : std::to_string(r->words[0])) +
                         " want " + std::to_string(o.expected));
        }
        e2e_ms.push_back(now - o.arrival_ms);
        ++t.completed;
        ++completed;
        return;
      }
      default:
        return;  // kGateError etc: terminal refusals fail via timeout
    }
  };

  while (completed < want) {
    const double now = gate::steady_now_ms();
    if (now >= deadline) break;

    // 1. Drain the (impaired) downlink.
    bool got = false;
    while (auto bytes = link.poll_recv()) {
      if (const auto f = gate::GateFrame::parse(*bytes)) {
        handle_frame(*f);
        got = true;
      }
    }

    // 2. Open-loop arrivals that have come due.
    while (opt.open_loop && arrivals_left > 0 && next_arrival <= now) {
      u32 ti = pick_zipf(cdf, traffic_rng.unit());
      // The picked tenant may have spent its budget; walk to the next
      // one that hasn't (keeps total job count exact).
      for (u32 step = 0; step < opt.tenants; ++step) {
        const u32 cand = (ti + step) % opt.tenants;
        if (tenants[cand].submitted < opt.jobs_per_tenant) {
          ti = cand;
          break;
        }
      }
      make_submit(tenants[ti], ti, next_arrival);
      --arrivals_left;
      next_arrival += -std::log(1.0 - traffic_rng.unit()) * 1000.0 /
                      std::max(opt.rate, 1e-6);
    }

    // 3. Advance every tenant's state machine: hello, head submit
    // (re)sends, recovery polls.
    for (u32 ti = 0; ti < opt.tenants; ++ti) {
      TenantState& t = tenants[ti];
      if (!t.hello_ok) {
        if (now >= t.resend_at) {
          link.send(gate::make_request(gate::GateKind::kHello, t.token, 1)
                        .serialize());
          t.resend_at = now + resend_ms;
        }
        continue;
      }
      if (!t.queue.empty() && now >= t.resend_at && now >= t.backoff_until) {
        PendingSubmit& head = t.queue.front();
        if (head.first_send_ms == 0) head.first_send_ms = now;
        link.send(head.frame);
        t.resend_at = now + resend_ms;
      }
      if (!t.outstanding.empty() && now >= t.next_poll_ms) {
        // Lost result pushes are recovered by polling the oldest
        // outstanding request (one per tick keeps poll traffic bounded).
        u64 oldest = 0;
        u32 oldest_index = ~0u;
        for (const auto& [rid, o] : t.outstanding) {
          if (o.index < oldest_index) {
            oldest_index = o.index;
            oldest = rid;
          }
        }
        link.send(gate::make_request(gate::GateKind::kPoll, t.token, oldest)
                      .serialize());
        t.next_poll_ms = now + 4 * resend_ms;
      }
    }

    if (!got) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const double t1 = gate::steady_now_ms();
  gw.stop();
  farm.shutdown();

  row.completed = completed;
  row.failed = failed;
  row.backoffs = backoffs;
  row.dup_results = dup_results;
  row.violations = audit.violations;
  row.duration_s = (t1 - t0) / 1000.0;
  row.rps = row.duration_s > 0 ? completed / row.duration_s : 0.0;
  row.p50_ms = percentile(accept_ms, 0.50);
  row.p95_ms = percentile(accept_ms, 0.95);
  row.p99_ms = percentile(accept_ms, 0.99);
  row.e2e_p50_ms = percentile(e2e_ms, 0.50);
  row.e2e_p99_ms = percentile(e2e_ms, 0.99);
  row.finished = completed == want;
  row.audit_ok = row.finished && audit.violations == 0 && failed == 0;
  return row;
}

bool write_file(const std::string& path, const std::string& text) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "lload: cannot write %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(text.data(), 1, text.size(), out) == text.size();
  return std::fclose(out) == 0 && ok;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) return 1;
  if (opt.tenants == 0 || opt.jobs_per_tenant == 0) {
    std::fprintf(stderr, "lload: need at least one tenant and one job\n");
    return 1;
  }

  // Phase list: one independent run per WAN profile.
  std::vector<net::WanProfile> phases;
  std::string rest = opt.wans;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string name = rest.substr(0, comma);
    rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    const auto p = net::wan_profile_by_name(name);
    if (!p) {
      std::fprintf(stderr, "lload: unknown WAN profile '%s' (have: %s)\n",
                   name.c_str(), net::wan_profile_names());
      return 1;
    }
    phases.push_back(*p);
  }

  bool all_ok = true;
  std::string json = "[\n";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (!opt.quiet) {
      std::fprintf(stderr, "lload: phase %s: %u tenants x %u jobs, %zu "
                           "nodes, %s loop\n",
                   phases[i].name.c_str(), opt.tenants, opt.jobs_per_tenant,
                   opt.nodes, opt.open_loop ? "open" : "closed");
    }
    const PhaseRow row = run_phase(opt, phases[i]);
    all_ok &= row.audit_ok;
    std::printf("%s\n", row.to_json().c_str());
    json += "  " + row.to_json();
    json += i + 1 < phases.size() ? ",\n" : "\n";
    if (!opt.quiet) {
      std::fprintf(stderr,
                   "lload: phase %s: %llu/%llu jobs, %.1f req/s, "
                   "p99 %.2f ms, audit %s\n",
                   phases[i].name.c_str(),
                   static_cast<unsigned long long>(row.completed),
                   static_cast<unsigned long long>(row.jobs), row.rps,
                   row.p99_ms, row.audit_ok ? "clean" : "VIOLATED");
    }
  }
  json += "]\n";
  if (!opt.out.empty() && !write_file(opt.out, json)) return 2;
  return all_ok ? 0 : 2;
}
