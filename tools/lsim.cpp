// lsim — command-line driver for the Liquid Architecture simulator.
//
// The "User Interface" box of Fig 1: assemble a SPARC V8 source file, load
// it into the simulated FPX node over the control network, run it under a
// chosen architecture image, and report what happened.
//
//   lsim prog.s                         run with the paper's baseline
//   lsim --dcache 4096 prog.s           pick a cache geometry
//   lsim --sweep prog.s                 run across the Fig 8 image space
//   lsim --trace prog.s                 profile + print the trace report
//   lsim --recommend prog.s             let the analyzer pick an image
//   lsim --read symbol prog.s           read a result word back by symbol
//   lsim --disasm prog.s                print the assembled listing, exit
//   lsim --report prog.s                full system statistics afterwards
#include <cstdio>
#include <iostream>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_util.hpp"
#include "common/prometheus.hpp"
#include "ctrl/client.hpp"
#include "isa/disasm.hpp"
#include "liquid/adaptation.hpp"
#include "liquid/job_queue.hpp"
#include "sasm/assembler.hpp"
#include "sasm/runtime.hpp"
#include "sasm/srec.hpp"
#include "sim/debug_shell.hpp"
#include "sim/report.hpp"

namespace {

using namespace la;

struct Options {
  std::string source_path;
  u32 dcache = 1024;
  u32 icache = 1024;
  u32 line = 32;
  u32 ways = 1;
  bool sweep = false;
  bool trace = false;
  bool recommend = false;
  bool disasm = false;
  bool report = false;
  bool emit_srec = false;
  bool debug = false;
  bool with_runtime = false;
  std::string read_symbol;
  std::string metrics_json;  // --metrics-json FILE
  std::string perf_trace;    // --perf-trace FILE
  std::string prom;          // --prom FILE
  u64 max_steps = 50'000'000;
};

int usage() {
  std::fprintf(stderr,
               "usage: lsim [options] program.s\n"
               "  --dcache N     data cache bytes (default 1024)\n"
               "  --icache N     instruction cache bytes (default 1024)\n"
               "  --line N       cache line bytes (default 32)\n"
               "  --ways N       cache associativity (default 1)\n"
               "  --sweep        run across the 1..16KB image space\n"
               "  --trace        stream + print the execution profile\n"
               "  --recommend    print the analyzer's image choice\n"
               "  --read SYM     read one result word at symbol SYM\n"
               "  --disasm       print the assembled listing and exit\n"
               "  --report       print full system statistics\n"
               "  --srec         print the image as S-records and exit\n"
               "  --debug        interactive debugger (b/c/s/regs/x/...)\n"
               "  --runtime      link the runtime (trap table, window\n"
               "                 handlers, rt_init) into the program\n"
               "  --metrics-json F  write the metrics-registry snapshot(s)\n"
               "                 of the run(s) to F as JSON\n"
               "  --perf-trace F write a cycle-stamped Chrome trace_event\n"
               "                 file of the run(s) to F\n"
               "  --prom F       write the run(s)' metrics as Prometheus\n"
               "                 text exposition to F (textfile collector)\n"
               "  (a .srec input file is loaded instead of assembled)\n");
  return 2;
}

liquid::ArchConfig config_of(const Options& o) {
  liquid::ArchConfig c;
  c.dcache_bytes = o.dcache;
  c.icache_bytes = o.icache;
  c.icache_line = c.dcache_line = o.line;
  c.icache_ways = c.dcache_ways = o.ways;
  return c;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
  return static_cast<bool>(out);
}

int run_one(const Options& opt, const sasm::Image& img) {
  liquid::SynthesisModel syn;
  liquid::ReconfigurationCache cache;
  sim::LiquidSystem node;
  if (!opt.perf_trace.empty()) node.enable_perf_trace();
  node.run(100);
  liquid::ServerConfig scfg;
  scfg.stream_traces = opt.trace || opt.recommend;
  liquid::ReconfigurationServer server(node, cache, syn, scfg);

  const liquid::ArchConfig cfg = config_of(opt);
  if (!cfg.valid()) {
    std::fprintf(stderr, "invalid cache configuration\n");
    return 2;
  }

  Addr read_addr = 0;
  u16 read_words = 0;
  if (!opt.read_symbol.empty()) {
    try {
      read_addr = img.symbol(opt.read_symbol);
      read_words = 1;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }

  liquid::TraceAnalyzer analyzer;
  const liquid::JobResult r = server.run_job(
      cfg, img, read_addr, read_words,
      (opt.trace || opt.recommend) ? &analyzer : nullptr);
  if (!r.ok) {
    std::fprintf(stderr, "run failed: %s\n", r.error.c_str());
    return 1;
  }

  const double fmax = syn.estimate(cfg).fmax_mhz;
  std::printf("image %s\n", cfg.key().c_str());
  std::printf("ran in %llu cycles (%.1f us at %.0f MHz)\n",
              static_cast<unsigned long long>(r.cycles),
              static_cast<double>(r.cycles) / fmax, fmax);
  if (read_words > 0) {
    std::printf("%s = 0x%08x (%u)\n", opt.read_symbol.c_str(),
                r.readback.at(0), r.readback.at(0));
  }

  if (opt.trace || opt.recommend) {
    const liquid::TraceReport t = analyzer.report();
    std::printf(
        "\nprofile: %llu instructions, %llu loads, %llu stores, "
        "%llu multiplies\n",
        static_cast<unsigned long long>(t.instructions),
        static_cast<unsigned long long>(t.loads),
        static_cast<unsigned long long>(t.stores),
        static_cast<unsigned long long>(t.multiplies));
    std::printf("data working set %llu B, code footprint %llu B, "
                "dominant stride %lld\n",
                static_cast<unsigned long long>(t.data_working_set_bytes),
                static_cast<unsigned long long>(t.code_footprint_bytes),
                static_cast<long long>(t.dominant_stride));
    if (!t.hot_pcs.empty()) {
      std::printf("hottest pc 0x%08x (%llu executions)\n",
                  t.hot_pcs[0].first,
                  static_cast<unsigned long long>(t.hot_pcs[0].second));
    }
    if (opt.recommend) {
      const auto rec = analyzer.recommend(liquid::ConfigSpace{});
      std::printf("\nrecommended image: %s\n", rec.key().c_str());
    }
  }

  if (opt.report) std::printf("\n%s", sim::system_report(node).c_str());

  if (!opt.metrics_json.empty() &&
      !write_text_file(opt.metrics_json, sim::system_report_json(node))) {
    std::fprintf(stderr, "cannot write %s\n", opt.metrics_json.c_str());
    return 1;
  }
  if (!opt.perf_trace.empty() &&
      !node.perf_tracer()->write_chrome_json(opt.perf_trace)) {
    std::fprintf(stderr, "cannot write %s\n", opt.perf_trace.c_str());
    return 1;
  }
  if (!opt.prom.empty() &&
      !write_text_file(opt.prom, metrics::to_prometheus(
                                     node.metrics_snapshot(), "liquid_"))) {
    std::fprintf(stderr, "cannot write %s\n", opt.prom.c_str());
    return 1;
  }
  return 0;
}

int run_debug([[maybe_unused]] const Options& opt, const sasm::Image& img) {
  sim::LiquidSystem node;
  node.run(100);
  // Load and arm the program without running it: the shell owns execution.
  {
    ctrl::LiquidClient client(node);
    if (!client.load_program(img)) {
      std::fprintf(stderr, "load failed\n");
      return 1;
    }
    net::UdpDatagram d;
    d.src_ip = net::make_ip(10, 0, 0, 9);
    d.src_port = 9;
    d.dst_ip = node.config().node_ip;
    d.dst_port = node.config().node_port;
    d.payload = net::StartCmd{img.entry}.serialize();
    node.ingress_frame(net::build_udp_packet(d));
  }
  std::printf("program armed at 0x%08x; type 'help' for commands\n",
              img.entry);
  sim::DebugShell shell(node, &img);
  std::string line;
  std::printf("(lsim) ");
  std::fflush(stdout);
  while (!shell.quit_requested() && std::getline(std::cin, line)) {
    std::fputs(shell.execute(line).c_str(), stdout);
    if (shell.quit_requested()) break;
    std::printf("(lsim) ");
    std::fflush(stdout);
  }
  return 0;
}

int run_sweep(const Options& opt, const sasm::Image& img) {
  liquid::SynthesisModel syn;
  liquid::ReconfigurationCache cache;
  cache.pregenerate(liquid::ConfigSpace{}, syn);

  Addr read_addr = 0;
  u16 read_words = 0;
  if (!opt.read_symbol.empty()) {
    try {
      read_addr = img.symbol(opt.read_symbol);
      read_words = 1;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }

  bench::BenchIo io("lsim_sweep", opt.metrics_json, opt.perf_trace);
  std::vector<std::pair<std::string, metrics::Snapshot>> prom_runs;
  std::printf("%-8s %12s %12s\n", "dcache", "cycles", "readback");
  for (const auto& cfg : liquid::ConfigSpace{}.enumerate()) {
    sim::LiquidSystem node;
    io.attach_perf(node);
    node.run(100);
    liquid::ReconfigurationServer server(node, cache, syn);
    const auto r = server.run_job(cfg, img, read_addr, read_words);
    if (!r.ok) {
      std::printf("%4uKB   FAILED: %s\n", cfg.dcache_bytes / 1024,
                  r.error.c_str());
      continue;
    }
    const std::string readback =
        read_words ? std::to_string(r.readback.at(0)) : std::string("-");
    std::printf("%4uKB   %12llu %12s\n", cfg.dcache_bytes / 1024,
                static_cast<unsigned long long>(r.cycles),
                readback.c_str());
    io.add_run(cfg.key(), node);
    if (!opt.prom.empty()) {
      prom_runs.emplace_back(cfg.key(), node.metrics_snapshot());
    }
  }
  if (!opt.prom.empty()) {
    // One exposition, every image's run distinguished by an image label.
    std::vector<metrics::LabelledSnapshot> labelled;
    labelled.reserve(prom_runs.size());
    for (const auto& [key, snap] : prom_runs) {
      labelled.push_back({&snap, {{"image", key}}});
    }
    if (!write_text_file(opt.prom,
                         metrics::to_prometheus(labelled, "liquid_"))) {
      std::fprintf(stderr, "cannot write %s\n", opt.prom.c_str());
      return 1;
    }
  }
  return io.finish() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (a == "--dcache") { const char* v = next(); if (!v) return usage(); opt.dcache = static_cast<u32>(std::atoi(v)); }
    else if (a == "--icache") { const char* v = next(); if (!v) return usage(); opt.icache = static_cast<u32>(std::atoi(v)); }
    else if (a == "--line") { const char* v = next(); if (!v) return usage(); opt.line = static_cast<u32>(std::atoi(v)); }
    else if (a == "--ways") { const char* v = next(); if (!v) return usage(); opt.ways = static_cast<u32>(std::atoi(v)); }
    else if (a == "--read") { const char* v = next(); if (!v) return usage(); opt.read_symbol = v; }
    else if (a == "--metrics-json") { const char* v = next(); if (!v) return usage(); opt.metrics_json = v; }
    else if (a == "--perf-trace") { const char* v = next(); if (!v) return usage(); opt.perf_trace = v; }
    else if (a == "--prom") { const char* v = next(); if (!v) return usage(); opt.prom = v; }
    else if (a == "--sweep") opt.sweep = true;
    else if (a == "--trace") opt.trace = true;
    else if (a == "--recommend") opt.recommend = true;
    else if (a == "--disasm") opt.disasm = true;
    else if (a == "--report") opt.report = true;
    else if (a == "--srec") opt.emit_srec = true;
    else if (a == "--debug") opt.debug = true;
    else if (a == "--runtime") opt.with_runtime = true;
    else if (a == "--help" || a == "-h") return usage();
    else if (!a.empty() && a[0] == '-') return usage();
    else opt.source_path = a;
  }
  if (opt.source_path.empty()) return usage();

  std::ifstream in(opt.source_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", opt.source_path.c_str());
    return 2;
  }
  std::stringstream ss;
  ss << in.rdbuf();

  la::sasm::Image img;
  const bool is_srec =
      opt.source_path.size() > 5 &&
      opt.source_path.substr(opt.source_path.size() - 5) == ".srec";
  if (is_srec) {
    const la::sasm::SrecResult res = la::sasm::from_srec(ss.str());
    if (!res.ok) {
      std::fprintf(stderr, "%s: %s\n", opt.source_path.c_str(),
                   res.error.c_str());
      return 1;
    }
    img = res.image;
    std::fprintf(stderr, "loaded %zu bytes at 0x%08x (entry 0x%08x)\n",
                 img.data.size(), img.base, img.entry);
  } else {
    la::sasm::Assembler as;
    std::string source = ss.str();
    if (opt.with_runtime) source += la::sasm::rt::runtime_source();
    la::sasm::AsmResult res = as.assemble(source);
    if (!res.ok && !opt.with_runtime) {
      // Programs calling rt_* only assemble with the runtime linked in;
      // retry once with it before surfacing the original error.
      la::sasm::Assembler retry_as;
      la::sasm::AsmResult retry =
          retry_as.assemble(ss.str() + la::sasm::rt::runtime_source());
      if (retry.ok) {
        std::fprintf(stderr,
                     "note: linked runtime library (program did not "
                     "assemble standalone)\n");
        res = std::move(retry);
      }
    }
    if (!res.ok) {
      std::fprintf(stderr, "%s: assembly failed\n%s",
                   opt.source_path.c_str(), res.error_text().c_str());
      return 1;
    }
    img = std::move(res.image);
    std::fprintf(stderr, "assembled %zu bytes at 0x%08x (entry 0x%08x)\n",
                 img.data.size(), img.base, img.entry);
  }

  if (opt.emit_srec) {
    std::printf("%s", la::sasm::to_srec(img).c_str());
    return 0;
  }

  if (opt.disasm) {
    for (la::Addr a = img.base; a + 4 <= img.end(); a += 4) {
      std::printf("%08x: %08x  %s\n", a, img.word_at(a),
                  la::isa::disassemble_word(img.word_at(a), a).c_str());
    }
    return 0;
  }

  if (opt.debug) return run_debug(opt, img);
  return opt.sweep ? run_sweep(opt, img) : run_one(opt, img);
}
