// Black-box flight recorder: the node's last moments, post-mortem.
//
// The paper's §4.1 error path tells the operator *that* a node died (the
// 0xff/0x50 watchdog packet) but not *what it was doing*.  This recorder
// keeps a fixed-size ring of compact events — retired PCs, traps, bus
// errors, leon_ctrl state transitions, injected-fault firings — written
// with a handful of stores per event and no allocation, so it can stay on
// while the node runs at full speed.  When something trips (watchdog, a
// fault campaign classifying a detection, the fuzzer finding a
// divergence), the ring is frozen into a JSON dump whose tail shows the
// wedge PC and the error transition.
//
// Retired-PC events are sampled (every Nth retirement, default 64) so a
// ring of a few thousand entries still covers hundreds of thousands of
// cycles of history; traps, errors, and state changes always record.
//
// Threading: single-writer, same contract as the metrics registry — only
// the thread stepping the node may record; dumps happen after the node is
// quiescent.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace la::sim {

enum class FlightEventKind : u8 {
  kRetire = 0,     // a = PC, b = instruction word (sampled)
  kTrap = 1,       // a = PC, b = trap type
  kBusError = 2,   // a = address, b = 0
  kCtrlState = 3,  // a = old state, b = new state
  kWatchdog = 4,   // a = PC at trip, b = budget
  kFaultFired = 5, // a = site, b = detail (address / bit)
  kNote = 6,       // a, b free-form (markers from tools/tests)
};

const char* flight_event_kind_name(FlightEventKind k);

struct FlightEvent {
  u64 cycle = 0;
  FlightEventKind kind = FlightEventKind::kRetire;
  u64 a = 0;
  u64 b = 0;
};

class FlightRecorder {
 public:
  /// `capacity` rounds up to a power of two (minimum 16).  `pc_sample`
  /// records every Nth retired instruction (0 disables retire sampling
  /// entirely; traps and errors still record).
  explicit FlightRecorder(std::size_t capacity = 4096, u32 pc_sample = 64);

  void record(u64 cycle, FlightEventKind kind, u64 a, u64 b) {
    FlightEvent& e = ring_[head_ & mask_];
    e.cycle = cycle;
    e.kind = kind;
    e.a = a;
    e.b = b;
    ++head_;
  }

  /// The retire fast path: counts every call, records every `pc_sample`th.
  /// One decrement and a predictable branch when not sampling.
  void record_retire(u64 cycle, u64 pc, u64 insn) {
    if (pc_sample_ == 0) return;
    if (--retire_countdown_ != 0) return;
    retire_countdown_ = pc_sample_;
    record(cycle, FlightEventKind::kRetire, pc, insn);
  }

  std::size_t capacity() const { return ring_.size(); }
  u64 total_recorded() const { return head_; }
  u32 pc_sample() const { return pc_sample_; }

  /// Events oldest-first (at most `capacity()` of them).
  std::vector<FlightEvent> events() const;

  /// JSON dump: {"reason": ..., "cycle": N, "dropped": N, "events": [...]}
  /// with each event {"cycle","kind","a","b"} (kind by name, a/b hex).
  /// `reason` names the trigger (watchdog, divergence, detection, manual).
  std::string to_json(const std::string& reason, u64 cycle,
                      int indent = 2) const;
  bool write_json(const std::string& path, const std::string& reason,
                  u64 cycle) const;

  void clear();

 private:
  std::vector<FlightEvent> ring_;
  std::size_t mask_ = 0;
  u64 head_ = 0;  // total events ever recorded; ring index = head_ & mask_
  u32 pc_sample_ = 64;
  u32 retire_countdown_ = 64;
};

}  // namespace la::sim
