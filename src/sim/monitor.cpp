#include "sim/monitor.hpp"

#include <cstdio>

#include "common/hex.hpp"
#include "isa/disasm.hpp"
#include "isa/registers.hpp"

namespace la::sim {

void Monitor::record(const cpu::StepResult& r) {
  trail_.push_back(r);
  if (trail_.size() > kHistory) trail_.pop_front();
}

bool Monitor::watches_hit(const cpu::StepResult& r, Addr& which) const {
  if (!r.mem_access) return false;
  for (const Watchpoint& w : watchpoints_) {
    if (r.mem_addr < w.lo || r.mem_addr > w.hi) continue;
    const bool want_write = w.kind != Watch::kRead;
    const bool want_read = w.kind != Watch::kWrite;
    if ((r.mem_write && want_write) || (!r.mem_write && want_read)) {
      which = r.mem_addr;
      return true;
    }
  }
  return false;
}

cpu::StepResult Monitor::step_one() {
  const cpu::StepResult r = sys_.step();
  record(r);
  return r;
}

Monitor::Stop Monitor::cont(u64 max_steps) {
  Stop stop;
  for (u64 n = 0; n < max_steps; ++n) {
    if (sys_.cpu().state().error_mode) {
      stop.reason = StopReason::kErrorMode;
      stop.pc = sys_.cpu().state().pc;
      stop.steps = n;
      return stop;
    }
    const Addr next = sys_.cpu().state().pc;
    if (n > 0 && breakpoints_.count(next)) {
      stop.reason = StopReason::kBreakpoint;
      stop.pc = next;
      stop.steps = n;
      return stop;
    }
    const cpu::StepResult r = step_one();
    Addr which = 0;
    if (watches_hit(r, which)) {
      stop.reason = StopReason::kWatchpoint;
      stop.pc = sys_.cpu().state().pc;
      stop.access = which;
      stop.steps = n + 1;
      return stop;
    }
  }
  stop.reason = StopReason::kStepLimit;
  stop.pc = sys_.cpu().state().pc;
  stop.steps = max_steps;
  return stop;
}

std::optional<u32> Monitor::read_word(Addr addr) const {
  u64 v = 0;
  if (!sys_.ahb().debug_read(addr, 4, v)) return std::nullopt;
  return static_cast<u32>(v);
}

std::string Monitor::disassemble_around(Addr pc, unsigned before,
                                        unsigned after) const {
  std::string out;
  const Addr lo = pc - 4u * before;
  for (Addr a = lo; a <= pc + 4u * after; a += 4) {
    const auto w = read_word(a);
    out += (a == pc) ? "=> " : "   ";
    out += hex32(a).substr(2) + ": ";
    if (w) {
      out += hex32(*w).substr(2) + "  " + isa::disassemble_word(*w, a);
    } else {
      out += "<unmapped>";
    }
    out += "\n";
  }
  return out;
}

std::string Monitor::registers() const {
  const cpu::CpuState& st = sys_.cpu().state();
  std::string out;
  char buf[96];
  for (unsigned g = 0; g < 8; ++g) {
    std::snprintf(buf, sizeof(buf), "%%g%u=%08x %%o%u=%08x %%l%u=%08x "
                  "%%i%u=%08x\n",
                  g, st.reg(static_cast<u8>(g)), g,
                  st.reg(static_cast<u8>(8 + g)), g,
                  st.reg(static_cast<u8>(16 + g)), g,
                  st.reg(static_cast<u8>(24 + g)));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "pc=%08x npc=%08x psr=%08x y=%08x wim=%08x tbr=%08x\n",
                st.pc, st.npc, st.psr.pack(), st.y, st.wim, st.tbr);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "cwp=%u et=%d s=%d pil=%u icc[n=%d z=%d v=%d c=%d]%s\n",
                st.psr.cwp, st.psr.et, st.psr.s, st.psr.pil, st.psr.n,
                st.psr.z, st.psr.v, st.psr.c,
                st.error_mode ? " ERROR-MODE" : "");
  out += buf;
  return out;
}

std::vector<std::pair<Addr, std::string>> Monitor::history(
    std::size_t n) const {
  std::vector<std::pair<Addr, std::string>> out;
  const std::size_t start = trail_.size() > n ? trail_.size() - n : 0;
  for (std::size_t i = start; i < trail_.size(); ++i) {
    const cpu::StepResult& r = trail_[i];
    std::string text = isa::disassemble(r.ins, r.pc);
    if (r.annulled) text += "  [annulled]";
    if (r.trapped) text += "  [trap tt=" + hex8(r.tt) + "]";
    out.emplace_back(r.pc, std::move(text));
  }
  return out;
}

}  // namespace la::sim
