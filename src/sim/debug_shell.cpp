#include "sim/debug_shell.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>
#include <vector>

#include "common/hex.hpp"
#include "isa/disasm.hpp"

namespace la::sim {
namespace {

std::vector<std::string> split(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> toks;
  std::string t;
  while (is >> t) toks.push_back(t);
  return toks;
}

const char* kHelp =
    "s [n]        step            c [n]     continue\n"
    "b A  / d A   break/delete    w A [len] watch writes\n"
    "rw A [len]   watch reads     regs      register dump\n"
    "x A [n]      examine words   dis [A]   disassemble\n"
    "hist [n]     history         report    statistics\n"
    "sym NAME     resolve symbol  q         quit\n";

std::string stop_text(const Monitor::Stop& st) {
  std::string out;
  switch (st.reason) {
    case Monitor::StopReason::kBreakpoint:
      out = "breakpoint at " + hex32(st.pc);
      break;
    case Monitor::StopReason::kWatchpoint:
      out = "watchpoint hit: access to " + hex32(st.access) + ", pc now " +
            hex32(st.pc);
      break;
    case Monitor::StopReason::kStepLimit:
      out = "step limit reached, pc " + hex32(st.pc);
      break;
    case Monitor::StopReason::kErrorMode:
      out = "CPU in ERROR MODE at " + hex32(st.pc);
      break;
  }
  out += " (" + std::to_string(st.steps) + " steps)\n";
  return out;
}

}  // namespace

std::optional<Addr> DebugShell::parse_addr(const std::string& tok) const {
  if (!tok.empty() && (std::isdigit(static_cast<unsigned char>(tok[0])))) {
    try {
      return static_cast<Addr>(std::stoull(tok, nullptr, 0));
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  if (image_ != nullptr) {
    const auto it = image_->symbols.find(tok);
    if (it != image_->symbols.end()) return it->second;
  }
  return std::nullopt;
}

std::string DebugShell::execute(const std::string& line) {
  const auto toks = split(line);
  if (toks.empty()) return "";
  const std::string& cmd = toks[0];
  const auto arg_addr = [&](std::size_t i) -> std::optional<Addr> {
    return i < toks.size() ? parse_addr(toks[i]) : std::nullopt;
  };
  const auto arg_num = [&](std::size_t i, u64 dflt) -> u64 {
    if (i >= toks.size()) return dflt;
    try {
      return std::stoull(toks[i], nullptr, 0);
    } catch (const std::exception&) {
      return dflt;
    }
  };

  if (cmd == "help" || cmd == "h" || cmd == "?") return kHelp;
  if (cmd == "q" || cmd == "quit") {
    quit_ = true;
    return "bye\n";
  }
  if (cmd == "s" || cmd == "step") {
    const u64 n = arg_num(1, 1);
    cpu::StepResult last;
    for (u64 i = 0; i < n; ++i) last = mon_.step_one();
    return hex32(last.pc).substr(2) + ": " +
           isa::disassemble(last.ins, last.pc) +
           (last.annulled ? "  [annulled]" : "") +
           (last.trapped ? "  [trap]" : "") + "\n";
  }
  if (cmd == "c" || cmd == "cont") {
    return stop_text(mon_.cont(arg_num(1, 1'000'000)));
  }
  if (cmd == "b" || cmd == "break") {
    const auto a = arg_addr(1);
    if (!a) return "b: bad or missing address\n";
    mon_.add_breakpoint(*a);
    return "breakpoint at " + hex32(*a) + "\n";
  }
  if (cmd == "d" || cmd == "delete") {
    const auto a = arg_addr(1);
    if (!a) return "d: bad or missing address\n";
    mon_.remove_breakpoint(*a);
    return "deleted " + hex32(*a) + "\n";
  }
  if (cmd == "w" || cmd == "rw") {
    const auto a = arg_addr(1);
    if (!a) return cmd + ": bad or missing address\n";
    const u64 len = arg_num(2, 4);
    mon_.add_watchpoint(*a, *a + static_cast<Addr>(len) - 1,
                        cmd == "w" ? Monitor::Watch::kWrite
                                   : Monitor::Watch::kRead);
    return "watching " + hex32(*a) + " +" + std::to_string(len) + " (" +
           (cmd == "w" ? "writes" : "reads") + ")\n";
  }
  if (cmd == "regs") return mon_.registers();
  if (cmd == "x") {
    const auto a = arg_addr(1);
    if (!a) return "x: bad or missing address\n";
    const u64 n = arg_num(2, 4);
    std::string out;
    for (u64 i = 0; i < n; ++i) {
      const Addr addr = *a + static_cast<Addr>(4 * i);
      const auto w = mon_.read_word(addr);
      out += hex32(addr).substr(2) + ": " +
             (w ? hex32(*w) : std::string("<unmapped>")) + "\n";
    }
    return out;
  }
  if (cmd == "dis") {
    const Addr at = arg_addr(1).value_or(sys_.cpu().state().pc);
    return mon_.disassemble_around(at);
  }
  if (cmd == "hist") {
    std::string out;
    for (const auto& [pc, text] : mon_.history(arg_num(1, 8))) {
      out += hex32(pc).substr(2) + ": " + text + "\n";
    }
    return out.empty() ? "no history yet\n" : out;
  }
  if (cmd == "report") return system_report(sys_);
  if (cmd == "sym") {
    if (toks.size() < 2 || image_ == nullptr) return "sym: no symbols\n";
    const auto it = image_->symbols.find(toks[1]);
    if (it == image_->symbols.end()) return "sym: not found\n";
    return toks[1] + " = " + hex32(it->second) + "\n";
  }
  return "unknown command '" + cmd + "' (try help)\n";
}

}  // namespace la::sim
