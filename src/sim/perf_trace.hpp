// Cycle-stamped performance tracer for the Liquid node.
//
// The paper instruments the node with a hardware cycle counter (§5) and
// streams execution traces out for analysis (Fig 1).  This tracer is the
// coarse-grained sibling of that path: it records begin/end spans around
// node-level episodes (reconfiguration, program load, measured runs),
// instant markers, and counter samples — all stamped with the node clock —
// and exports Chrome trace_event JSON, so a run opens directly in
// chrome://tracing or https://ui.perfetto.dev.
#pragma once

#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/types.hpp"

namespace la::sim {

class PerfTracer {
 public:
  /// `clock` is the node's cycle counter (may be null: everything stamps
  /// at 0, which keeps unit tests free of a LiquidSystem).
  explicit PerfTracer(const Cycles* clock = nullptr) : clock_(clock) {}

  struct Event {
    char phase = 'i';  // 'B' begin, 'E' end, 'i' instant, 'C' counter
    std::string name;
    Cycles ts = 0;
    double value = 0.0;  // counter events only
  };

  /// Place this tracer's events on a specific Chrome process/thread lane
  /// (default 1/1).  A farm gives each node a stable pid (node index + 1)
  /// and each worker a tid, so merged multi-node traces do not collide.
  void set_lane(u32 pid, u32 tid);
  /// Name the lane: emitted as `process_name`/`thread_name` metadata
  /// records, which is how perfetto labels the lanes.
  void set_names(std::string process, std::string thread = "");
  u32 pid() const { return pid_; }
  u32 tid() const { return tid_; }

  void begin(std::string name);
  void end(std::string name);
  void instant(std::string name);
  void counter(std::string name, double value);

  /// One counter event per scalar metric in `snap` whose name starts with
  /// `prefix` (empty = all) — a registry poll becomes a dashboard row.
  void sample(const metrics::Snapshot& snap, const std::string& prefix = "");

  const std::vector<Event>& events() const { return events_; }
  std::size_t open_spans() const { return open_.size(); }

  /// Emit a matching 'E' (stamped now) for every still-open span, deepest
  /// first — exporters call this so every 'B' pairs with an 'E'.
  void close_open_spans();

  /// Chrome trace_event format: {"traceEvents":[...]}.  Timestamps are
  /// cycles reported in the `ts` microsecond field (1 cycle = 1 us on the
  /// timeline; the absolute unit is irrelevant for span analysis).
  std::string to_chrome_json();

  /// Write to_chrome_json() to `path`; false on I/O failure.
  bool write_chrome_json(const std::string& path);

  /// RAII span: begin on construction, end on destruction.  A null tracer
  /// makes the guard a no-op, so call sites stay branch-free.
  class Span {
   public:
    Span(PerfTracer* t, std::string name) : t_(t), name_(std::move(name)) {
      if (t_) t_->begin(name_);
    }
    ~Span() {
      if (t_) t_->end(name_);
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

   private:
    PerfTracer* t_;
    std::string name_;
  };

 private:
  Cycles now() const { return clock_ ? *clock_ : 0; }
  void push(char phase, std::string name, double value = 0.0);

  const Cycles* clock_;
  std::vector<Event> events_;
  std::vector<std::string> open_;  // LIFO of begun span names
  u32 pid_ = 1;
  u32 tid_ = 1;
  std::string process_name_;
  std::string thread_name_;
};

/// Merge several already-exported Chrome traces (to_chrome_json() output)
/// into one file: the traceEvents arrays are concatenated verbatim, so
/// each input keeps its own pid/tid lanes.  Inputs that are not of this
/// exact shape are skipped.
std::string merge_chrome_traces(const std::vector<std::string>& traces);

}  // namespace la::sim
