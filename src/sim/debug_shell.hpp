// Command-driven debug shell over the Monitor: the interactive front end
// of `lsim --debug`, factored as a pure text-in/text-out engine so it can
// be unit-tested (and scripted).
//
// Commands:
//   s [n]            step n instructions (default 1), show the last
//   c [n]            continue (up to n steps, default 1e6)
//   b ADDR|SYM       set breakpoint        d ADDR|SYM   delete breakpoint
//   w ADDR [LEN]     watch writes          rw ADDR [LEN] watch reads
//   regs             register dump
//   x ADDR [N]       examine N words       dis [ADDR]   disassemble window
//   hist [N]         recent instructions   report       system statistics
//   sym NAME         resolve a program symbol
//   help             command list          q            quit
#pragma once

#include <map>
#include <string>

#include "sasm/image.hpp"
#include "sim/monitor.hpp"
#include "sim/report.hpp"

namespace la::sim {

class DebugShell {
 public:
  /// `image` supplies the symbol table for address arguments (optional).
  DebugShell(LiquidSystem& sys, const sasm::Image* image = nullptr)
      : sys_(sys), mon_(sys), image_(image) {}

  /// Execute one command line; returns the text to display.
  /// Sets quit() once `q` is seen.
  std::string execute(const std::string& line);

  bool quit_requested() const { return quit_; }
  Monitor& monitor() { return mon_; }

 private:
  /// Parse "0x40000100", "1234", or a program symbol.
  std::optional<Addr> parse_addr(const std::string& tok) const;

  LiquidSystem& sys_;
  Monitor mon_;
  const sasm::Image* image_;
  bool quit_ = false;
};

}  // namespace la::sim
