// SystemSnapshot serialization and LiquidSystem::snapshot()/restore().
//
// Layout (all little-endian, see common/snapio.hpp):
//   "LASN" magic, u32 version
//   "CFG " platform section   — memory sizes/timings, adapter, boot flavor
//   "PCF " pipeline config    — architectural knobs only (host knobs are
//                               per-system and never serialized)
//   "SYS " system section     — clock, watchdog mirror, egress queue
//   component sections        — pipeline+caches, SRAM, SDRAM device+ctrl,
//                               adapter, disconnect, AHB, UART, timer, IRQ,
//                               GPIO, cycle counter, watchdog, wrappers,
//                               packet generator, leon_ctrl, CPP
//   u64 FNV-1a checksum over everything before it
#include "sim/snapshot.hpp"

#include <utility>

#include "mem/memory_map.hpp"
#include "sim/liquid_system.hpp"

namespace la::sim {

namespace {

constexpr u32 kCfgTag = snap_tag("CFG ");
constexpr u32 kPipeCfgTag = snap_tag("PCF ");
constexpr u32 kSysTag = snap_tag("SYS ");

void fail(std::string* err, const char* what) {
  if (err != nullptr) *err = what;
}

void save_platform_config(SnapWriter& w, const SystemConfig& cfg) {
  w.tag(kCfgTag);
  w.u32v(cfg.sram_size);
  w.u32v(cfg.sdram_size);
  w.u64v(static_cast<u64>(cfg.sram_timing.read_wait));
  w.u64v(static_cast<u64>(cfg.sram_timing.write_wait));
  w.u64v(static_cast<u64>(cfg.sdram_timing.trcd));
  w.u64v(static_cast<u64>(cfg.sdram_timing.trp));
  w.u64v(static_cast<u64>(cfg.sdram_timing.cas));
  w.u32v(cfg.sdram_timing.banks);
  w.u32v(cfg.sdram_timing.row_bytes);
  w.u32v(cfg.adapter.read_burst_words64);
  w.b(cfg.adapter.always_short_burst);
  w.b(cfg.adapter.rmw_writes);
  w.u8v(cfg.timer_irq_level);
  w.u64v(cfg.watchdog_budget);
  w.b(cfg.use_original_boot);
}

/// True when the restoring system's platform matches the capture's.  The
/// node identity (IP/port) is deliberately NOT compared: restoring another
/// node's snapshot is exactly the migration/warm-start use case.
bool platform_matches(SnapReader& r, const SystemConfig& cfg) {
  if (!r.expect(kCfgTag)) return false;
  const bool ok =
      r.u32v() == cfg.sram_size && r.u32v() == cfg.sdram_size &&
      r.u64v() == static_cast<u64>(cfg.sram_timing.read_wait) &&
      r.u64v() == static_cast<u64>(cfg.sram_timing.write_wait) &&
      r.u64v() == static_cast<u64>(cfg.sdram_timing.trcd) &&
      r.u64v() == static_cast<u64>(cfg.sdram_timing.trp) &&
      r.u64v() == static_cast<u64>(cfg.sdram_timing.cas) &&
      r.u32v() == cfg.sdram_timing.banks &&
      r.u32v() == cfg.sdram_timing.row_bytes &&
      r.u32v() == cfg.adapter.read_burst_words64 &&
      r.b() == cfg.adapter.always_short_burst &&
      r.b() == cfg.adapter.rmw_writes && r.u8v() == cfg.timer_irq_level &&
      (static_cast<void>(r.u64v()),  // watchdog budget is advisory, not
       true) &&                      // identity — nodes may differ
      r.b() == cfg.use_original_boot;
  return ok && r.ok();
}

void save_cache_config(SnapWriter& w, const cache::CacheConfig& c) {
  w.u32v(c.size_bytes);
  w.u32v(c.line_bytes);
  w.u32v(c.ways);
  w.u8v(static_cast<u8>(c.replacement));
  w.u8v(static_cast<u8>(c.write_policy));
}

cache::CacheConfig load_cache_config(SnapReader& r) {
  cache::CacheConfig c;
  c.size_bytes = r.u32v();
  c.line_bytes = r.u32v();
  c.ways = r.u32v();
  c.replacement = static_cast<cache::Replacement>(r.u8v());
  c.write_policy = static_cast<cache::WritePolicy>(r.u8v());
  return c;
}

void save_pipeline_config(SnapWriter& w, const cpu::PipelineConfig& p) {
  w.tag(kPipeCfgTag);
  w.u32v(p.cpu.nwindows);
  w.b(p.cpu.has_mul);
  w.b(p.cpu.has_div);
  w.u64v(static_cast<u64>(p.cpu.mul_latency));
  w.u64v(static_cast<u64>(p.cpu.div_latency));
  w.u64v(static_cast<u64>(p.cpu.load_extra));
  w.u64v(static_cast<u64>(p.cpu.load_double_extra));
  w.u64v(static_cast<u64>(p.cpu.store_extra));
  w.u64v(static_cast<u64>(p.cpu.store_double_extra));
  w.u64v(static_cast<u64>(p.cpu.cti_extra));
  w.u64v(static_cast<u64>(p.cpu.trap_latency));
  w.b(p.cpu.quirk_subx_no_carry);
  save_cache_config(w, p.icache);
  save_cache_config(w, p.dcache);
  w.b(p.icache_enabled);
  w.b(p.dcache_enabled);
  w.u32v(p.write_buffer_depth);
}

/// Architectural pipeline config from the stream; host knobs (fast paths,
/// decode cache) are copied from `host` — they belong to the restoring
/// system, not the snapshot.
cpu::PipelineConfig load_pipeline_config(SnapReader& r,
                                         const cpu::PipelineConfig& host) {
  cpu::PipelineConfig p;
  if (!r.expect(kPipeCfgTag)) return p;
  p.cpu.nwindows = r.u32v();
  p.cpu.has_mul = r.b();
  p.cpu.has_div = r.b();
  p.cpu.mul_latency = static_cast<Cycles>(r.u64v());
  p.cpu.div_latency = static_cast<Cycles>(r.u64v());
  p.cpu.load_extra = static_cast<Cycles>(r.u64v());
  p.cpu.load_double_extra = static_cast<Cycles>(r.u64v());
  p.cpu.store_extra = static_cast<Cycles>(r.u64v());
  p.cpu.store_double_extra = static_cast<Cycles>(r.u64v());
  p.cpu.cti_extra = static_cast<Cycles>(r.u64v());
  p.cpu.trap_latency = static_cast<Cycles>(r.u64v());
  p.cpu.quirk_subx_no_carry = r.b();
  p.icache = load_cache_config(r);
  p.dcache = load_cache_config(r);
  p.icache_enabled = r.b();
  p.dcache_enabled = r.b();
  p.write_buffer_depth = r.u32v();
  p.cpu.host_decode_cache = host.cpu.host_decode_cache;
  p.host_fast_paths = host.host_fast_paths;
  return p;
}

bool cache_config_equal(const cache::CacheConfig& a,
                        const cache::CacheConfig& b) {
  return a.size_bytes == b.size_bytes && a.line_bytes == b.line_bytes &&
         a.ways == b.ways && a.replacement == b.replacement &&
         a.write_policy == b.write_policy;
}

/// Architectural equality (host knobs excluded): decides whether a restore
/// can load into the existing pipeline or must rebuild it.
bool arch_equal(const cpu::PipelineConfig& a, const cpu::PipelineConfig& b) {
  return a.cpu.nwindows == b.cpu.nwindows && a.cpu.has_mul == b.cpu.has_mul &&
         a.cpu.has_div == b.cpu.has_div &&
         a.cpu.mul_latency == b.cpu.mul_latency &&
         a.cpu.div_latency == b.cpu.div_latency &&
         a.cpu.load_extra == b.cpu.load_extra &&
         a.cpu.load_double_extra == b.cpu.load_double_extra &&
         a.cpu.store_extra == b.cpu.store_extra &&
         a.cpu.store_double_extra == b.cpu.store_double_extra &&
         a.cpu.cti_extra == b.cpu.cti_extra &&
         a.cpu.trap_latency == b.cpu.trap_latency &&
         a.cpu.quirk_subx_no_carry == b.cpu.quirk_subx_no_carry &&
         cache_config_equal(a.icache, b.icache) &&
         cache_config_equal(a.dcache, b.dcache) &&
         a.icache_enabled == b.icache_enabled &&
         a.dcache_enabled == b.dcache_enabled &&
         a.write_buffer_depth == b.write_buffer_depth;
}

}  // namespace

bool SystemSnapshot::validate(const Bytes& blob, std::string* err) {
  if (blob.size() < 16) {
    fail(err, "snapshot too short");
    return false;
  }
  SnapReader r(blob);
  if (r.u32v() != kMagic) {
    fail(err, "bad snapshot magic");
    return false;
  }
  const u32 version = r.u32v();
  if (version != kVersion) {
    fail(err, "unsupported snapshot version");
    return false;
  }
  const std::size_t body = blob.size() - 8;
  u64 stored = 0;
  for (int i = 7; i >= 0; --i) stored = (stored << 8) | blob[body + i];
  if (snap_fnv1a(blob.data(), body) != stored) {
    fail(err, "snapshot checksum mismatch");
    return false;
  }
  return true;
}

std::optional<SystemSnapshot> SystemSnapshot::deserialize(Bytes blob,
                                                          std::string* err) {
  if (!validate(blob, err)) return std::nullopt;
  SystemSnapshot s;
  s.data = std::move(blob);
  return s;
}

SystemSnapshot LiquidSystem::snapshot() const {
  SnapWriter w;
  w.tag(SystemSnapshot::kMagic);
  w.u32v(SystemSnapshot::kVersion);
  save_platform_config(w, cfg_);
  save_pipeline_config(w, pipe_->config());

  w.tag(kSysTag);
  w.u64v(static_cast<u64>(clock_));
  w.u64v(static_cast<u64>(periph_synced_at_));
  w.u8v(static_cast<u8>(wdog_state_));
  w.u64v(seen_wdog_trips_);
  w.u64v(egress_.size());
  for (const Bytes& frame : egress_) w.bytes(frame);

  pipe_->save_state(w);
  sram_.save_state(w);
  sdram_->save_state(w);
  sdram_ctrl_->save_state(w);
  adapter_->save_state(w);
  switch_->save_state(w);
  bus_.save_state(w);
  uart_.save_state(w);
  timer_.save_state(w);
  irqctrl_->save_state(w);
  gpio_.save_state(w);
  cyc_->save_state(w);
  wdog_.save_state(w);
  wrappers_.save_state(w);
  pktgen_->save_state(w);
  ctrl_->save_state(w);
  cpp_->save_state(w);

  SystemSnapshot s;
  s.data = w.take();
  const u64 sum = snap_fnv1a(s.data.data(), s.data.size());
  for (int i = 0; i < 8; ++i) {
    s.data.push_back(static_cast<u8>(sum >> (8 * i)));
  }
  return s;
}

bool LiquidSystem::restore(const SystemSnapshot& snap, std::string* err) {
  if (!SystemSnapshot::validate(snap.data, err)) return false;
  SnapReader r(snap.data);
  r.u32v();  // magic (validated)
  r.u32v();  // version (validated)
  if (!platform_matches(r, cfg_)) {
    fail(err, "snapshot platform config does not match this system");
    return false;
  }
  const cpu::PipelineConfig pcfg = load_pipeline_config(r, cfg_.pipeline);
  if (!r.ok()) {
    fail(err, "truncated pipeline config");
    return false;
  }
  // A restore is also a reconfiguration: adopt the snapshot's
  // micro-architecture, rebuilding the pipeline when it differs.  Unlike
  // reconfigure() this neither resets the CPU (load_state overwrites the
  // full state anyway) nor counts toward sim.reconfigurations — the warm
  // start's whole point is that no reprogramming happened here.
  if (!arch_equal(pcfg, pipe_->config())) {
    cfg_.pipeline = pcfg;
    pipe_ = std::make_unique<cpu::LeonPipeline>(pcfg, bus_, &clock_,
                                                &mem::map::cacheable);
    if (tracer_) pipe_->set_observer(tracer_.get());
  }

  if (!r.expect(kSysTag)) {
    fail(err, "missing system section");
    return false;
  }
  clock_ = static_cast<Cycles>(r.u64v());
  periph_synced_at_ = static_cast<Cycles>(r.u64v());
  wdog_state_ = static_cast<net::LeonState>(r.u8v());
  seen_wdog_trips_ = r.u64v();
  egress_.clear();
  for (u64 i = 0, n = r.u64v(); i < n && r.ok(); ++i) {
    egress_.push_back(r.bytes());
  }

  const bool components_ok =
      pipe_->load_state(r) && sram_.load_state(r) && sdram_->load_state(r) &&
      sdram_ctrl_->load_state(r) && adapter_->load_state(r) &&
      switch_->load_state(r) && bus_.load_state(r) && uart_.load_state(r) &&
      timer_.load_state(r) && irqctrl_->load_state(r) &&
      gpio_.load_state(r) && cyc_->load_state(r) && wdog_.load_state(r) &&
      wrappers_.load_state(r) && pktgen_->load_state(r) &&
      ctrl_->load_state(r) && cpp_->load_state(r);
  if (!components_ok || !r.ok()) {
    fail(err, "corrupt or incompatible snapshot component section");
    return false;
  }
  // Any precomputed batch boundary is stale now.
  periph_dirty_ = false;
  return true;
}

}  // namespace la::sim
