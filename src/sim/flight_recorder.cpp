#include "sim/flight_recorder.hpp"

#include <cstdio>

#include "common/metrics.hpp"

namespace la::sim {

const char* flight_event_kind_name(FlightEventKind k) {
  switch (k) {
    case FlightEventKind::kRetire: return "retire";
    case FlightEventKind::kTrap: return "trap";
    case FlightEventKind::kBusError: return "bus_error";
    case FlightEventKind::kCtrlState: return "ctrl_state";
    case FlightEventKind::kWatchdog: return "watchdog";
    case FlightEventKind::kFaultFired: return "fault_fired";
    case FlightEventKind::kNote: return "note";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity, u32 pc_sample)
    : pc_sample_(pc_sample), retire_countdown_(pc_sample ? pc_sample : 1) {
  std::size_t cap = 16;
  while (cap < capacity) cap <<= 1;
  ring_.resize(cap);
  mask_ = cap - 1;
}

std::vector<FlightEvent> FlightRecorder::events() const {
  std::vector<FlightEvent> out;
  const u64 n = head_ < ring_.size() ? head_ : ring_.size();
  out.reserve(static_cast<std::size_t>(n));
  for (u64 i = head_ - n; i != head_; ++i) {
    out.push_back(ring_[i & mask_]);
  }
  return out;
}

std::string FlightRecorder::to_json(const std::string& reason, u64 cycle,
                                    int indent) const {
  const std::vector<FlightEvent> evs = events();
  const std::string nl = indent > 0 ? "\n" : "";
  const std::string pad(indent > 0 ? static_cast<std::size_t>(indent) : 0,
                        ' ');
  const std::string pad2 = pad + pad;

  std::string out = "{" + nl;
  out += pad + "\"reason\":";
  metrics::append_json_string(out, reason);
  out += "," + nl + pad + "\"cycle\":";
  metrics::append_json_number(out, static_cast<double>(cycle));
  out += "," + nl + pad + "\"capacity\":";
  metrics::append_json_number(out, static_cast<double>(ring_.size()));
  out += "," + nl + pad + "\"total_recorded\":";
  metrics::append_json_number(out, static_cast<double>(head_));
  const u64 dropped = head_ > ring_.size() ? head_ - ring_.size() : 0;
  out += "," + nl + pad + "\"dropped\":";
  metrics::append_json_number(out, static_cast<double>(dropped));
  out += "," + nl + pad + "\"events\":[" + nl;
  char buf[32];
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const FlightEvent& e = evs[i];
    out += pad2 + "{\"cycle\":";
    metrics::append_json_number(out, static_cast<double>(e.cycle));
    out += ",\"kind\":\"";
    out += flight_event_kind_name(e.kind);
    out += "\",\"a\":\"0x";
    std::snprintf(buf, sizeof(buf), "%llx",
                  static_cast<unsigned long long>(e.a));
    out += buf;
    out += "\",\"b\":\"0x";
    std::snprintf(buf, sizeof(buf), "%llx",
                  static_cast<unsigned long long>(e.b));
    out += buf;
    out += "\"}";
    if (i + 1 != evs.size()) out += ",";
    out += nl;
  }
  out += pad + "]" + nl + "}" + nl;
  return out;
}

bool FlightRecorder::write_json(const std::string& path,
                                const std::string& reason, u64 cycle) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = to_json(reason, cycle);
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

void FlightRecorder::clear() {
  head_ = 0;
  retire_countdown_ = pc_sample_ ? pc_sample_ : 1;
}

}  // namespace la::sim
