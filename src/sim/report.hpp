// Statistics reports for a Liquid system run, both rendered from the same
// node-wide metrics registry snapshot: a human-readable indented text
// block (caches, bus masters, SDRAM controller, wrappers, leon_ctrl) and
// a machine-readable JSON form for benches and remote tooling.
#pragma once

#include <string>

#include "common/metrics.hpp"
#include "sim/liquid_system.hpp"

namespace la::sim {

/// Full statistics snapshot, formatted as an indented text block.
std::string system_report(LiquidSystem& sys);

/// Render the text block from an already-taken snapshot (delta reports:
/// pass a `Snapshot::diff_since` result to report one window).
std::string system_report_text(const metrics::Snapshot& snap);

/// The same snapshot as pretty-printed JSON (see metrics::Snapshot).
std::string system_report_json(LiquidSystem& sys);

}  // namespace la::sim
