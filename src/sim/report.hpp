// Human-readable statistics report for a Liquid system run: caches, bus
// masters, SDRAM controller, wrappers, leon_ctrl — one call for examples,
// benches, and post-mortems.
#pragma once

#include <string>

#include "sim/liquid_system.hpp"

namespace la::sim {

/// Full statistics snapshot, formatted as an indented text block.
std::string system_report(LiquidSystem& sys);

}  // namespace la::sim
