#include "sim/report.hpp"

#include <cstdio>

#include "common/stats.hpp"

namespace la::sim {
namespace {

void line(std::string& out, const char* fmt, auto... args) {
  char buf[200];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  out += buf;
  out += '\n';
}

/// Snapshot accessor in the u64 shape the printf formats expect.
struct Get {
  const metrics::Snapshot& snap;
  unsigned long long operator()(const std::string& name) const {
    return static_cast<unsigned long long>(snap.value_u64(name));
  }
};

void cache_block(std::string& out, const Get& g, const char* name,
                 const std::string& prefix) {
  line(out, "  %s: %uB line=%u ways=%u", name,
       static_cast<unsigned>(g(prefix + ".size_bytes")),
       static_cast<unsigned>(g(prefix + ".line_bytes")),
       static_cast<unsigned>(g(prefix + ".ways")));
  const unsigned long long reads =
      g(prefix + ".read_hits") + g(prefix + ".read_misses");
  const unsigned long long writes =
      g(prefix + ".write_hits") + g(prefix + ".write_misses");
  const unsigned long long misses =
      g(prefix + ".read_misses") + g(prefix + ".write_misses");
  line(out,
       "    reads %llu (%llu miss)  writes %llu (%llu miss)  "
       "missrate %.2f%%  evictions %llu",
       reads, g(prefix + ".read_misses"), writes,
       g(prefix + ".write_misses"),
       100.0 * safe_ratio(misses, reads + writes), g(prefix + ".evictions"));
}

}  // namespace

std::string system_report_text(const metrics::Snapshot& snap) {
  const Get g{snap};
  std::string out;
  line(out, "=== liquid system report @ cycle %llu ===",
       static_cast<unsigned long long>(snap.cycle));

  line(out,
       "cpu: %llu instructions, %llu annulled, %llu traps, %llu cycles "
       "(CPI %.2f)",
       g("cpu.instructions"), g("cpu.annulled"), g("cpu.traps"),
       g("cpu.cycles"), safe_ratio(g("cpu.cycles"), g("cpu.instructions")));
  line(out, "  stalls: icache %llu, dcache %llu, store-buffer %llu cycles",
       g("pipeline.stalls.icache"), g("pipeline.stalls.dcache"),
       g("pipeline.stalls.store_buffer"));
  line(out,
       "  mix: %llu loads, %llu stores, %llu branches (%llu taken), "
       "%llu calls, %llu mul/div",
       g("cpu.mix.loads"), g("cpu.mix.stores"), g("cpu.mix.branches"),
       g("cpu.mix.taken_branches"), g("cpu.mix.calls"),
       g("cpu.mix.muldiv"));

  cache_block(out, g, "icache", "cache.i");
  cache_block(out, g, "dcache", "cache.d");

  line(out, "ahb: instr %llu transfers, data %llu transfers, %llu unmapped",
       g("ahb.instr.transfers"), g("ahb.data.transfers"), g("ahb.unmapped"));

  line(out, "sdram-ctrl: %llu handshakes (%llu words64), %llu wait cycles",
       g("sdram.handshakes"), g("sdram.words64"), g("sdram.wait_cycles"));
  line(out,
       "  adapter: %llu read hs, %llu write hs, %llu rmw reads, "
       "%llu wasted words",
       g("sdram.adapter.read_handshakes"),
       g("sdram.adapter.write_handshakes"), g("sdram.adapter.rmw_reads"),
       g("sdram.adapter.wasted_words64"));

  line(out,
       "wrappers: %llu datagrams in / %llu out, %llu bad IP, "
       "%llu wrong-addr",
       g("wrappers.datagrams_in"), g("wrappers.datagrams_out"),
       g("wrappers.ip_bad"), g("wrappers.ip_wrong_addr"));

  line(out,
       "leon_ctrl: %llu commands (%llu bad), %llu chunks "
       "(%llu dup), %llu runs (%llu completed), last run %llu cycles",
       g("leon_ctrl.commands"), g("leon_ctrl.bad_commands"),
       g("leon_ctrl.chunks_loaded"), g("leon_ctrl.duplicate_chunks"),
       g("leon_ctrl.programs_started"), g("leon_ctrl.programs_completed"),
       g("leon_ctrl.last_run_cycles"));
  return out;
}

std::string system_report(LiquidSystem& sys) {
  return system_report_text(sys.metrics_snapshot());
}

std::string system_report_json(LiquidSystem& sys) {
  return sys.metrics_snapshot().to_json();
}

}  // namespace la::sim
