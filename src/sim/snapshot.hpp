// Versioned deep snapshot/restore of a full LiquidSystem (the robustness
// layer under warm-start pools, drain-on-fault job retry, and the fuzzer's
// O(1) deep replay).
//
// A SystemSnapshot is one self-describing binary blob:
//
//   magic "LASN" | format version | architectural-config section |
//   dynamic-state sections (system, pipeline+caches, memories, bus,
//   peripherals, watchdog, wrappers, controller) | FNV-1a checksum
//
// The capture is *complete* for everything architecturally observable: CPU
// windows/PSR/WIM/Y/ASRs, wedge and error flags, pipeline latches, both
// caches (tags, LRU, parity, line data, replacement RNG), SRAM/SDRAM
// contents with parity shadows, open-row registers, peripheral registers,
// the watchdog deadline, the leon_ctrl state machine, queued responses,
// and the cycle counter — so `run(N)` is bit-identical to `run(k);
// snapshot; restore; run(N-k)` on any system built from a compatible
// SystemConfig (the snapshot-identity property test enforces exactly
// this across the fast-path and flight-recorder grid).
//
// Host-side accelerator state (decode caches, predecoded I-line mirrors,
// AHB decode memo) is deliberately NOT captured: it is rebuilt on demand
// and a snapshot taken with host fast paths on restores bit-identically
// into a system running with them off, and vice versa.  The flight
// recorder ring is also host-side observability and stays with the
// restoring system.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/snapio.hpp"
#include "common/types.hpp"

namespace la::sim {

struct SystemSnapshot {
  static constexpr u32 kMagic = snap_tag("LASN");
  static constexpr u32 kVersion = 1;

  /// The complete serialized stream (header + payload + checksum).  This
  /// IS the cross-process wire format: write data to a file, read it back,
  /// deserialize(), restore().
  Bytes data;

  bool empty() const { return data.empty(); }
  std::size_t size_bytes() const { return data.size(); }

  const Bytes& serialize() const { return data; }

  /// Header/checksum validation without a full parse.  `err` (optional)
  /// receives a one-line reason on failure.
  static bool validate(const Bytes& blob, std::string* err = nullptr);

  /// Adopt a serialized blob (validates first).
  static std::optional<SystemSnapshot> deserialize(Bytes blob,
                                                   std::string* err = nullptr);
};

/// Shared warm-start pool: snapshot per key ("boot|<arch>" for post-boot
/// images, "prog|<arch>|<digest>" for post-load images), first writer wins.
/// Thread-safe; snapshots are immutable once published, so readers share
/// them by shared_ptr without copying the (multi-MB) blob.
class SnapshotPool {
 public:
  struct Stats {
    u64 hits = 0;
    u64 misses = 0;
    u64 inserts = 0;
  };

  /// Snapshot for `key`, or null (counts a hit/miss).
  std::shared_ptr<const SystemSnapshot> get(const std::string& key) {
    std::lock_guard lk(mu_);
    auto it = pool_.find(key);
    if (it == pool_.end()) {
      ++stats_.misses;
      return nullptr;
    }
    ++stats_.hits;
    return it->second;
  }

  /// Publish a snapshot for `key`.  An existing entry wins (the first
  /// capture is as good as any later one and racing writers must agree).
  void put(const std::string& key, SystemSnapshot snap) {
    auto sp = std::make_shared<const SystemSnapshot>(std::move(snap));
    std::lock_guard lk(mu_);
    if (pool_.emplace(key, std::move(sp)).second) ++stats_.inserts;
  }

  bool contains(const std::string& key) const {
    std::lock_guard lk(mu_);
    return pool_.count(key) != 0;
  }

  std::size_t size() const {
    std::lock_guard lk(mu_);
    return pool_.size();
  }

  /// Total serialized bytes held (capacity telemetry).
  std::size_t bytes() const {
    std::lock_guard lk(mu_);
    std::size_t n = 0;
    for (const auto& [k, v] : pool_) n += v->size_bytes();
    return n;
  }

  Stats stats() const {
    std::lock_guard lk(mu_);
    return stats_;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const SystemSnapshot>> pool_;
  Stats stats_;
};

}  // namespace la::sim
