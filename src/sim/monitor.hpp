// Debug monitor for the Liquid system: breakpoints, data watchpoints,
// single-step, execution history, and human-readable inspection.  The
// paper's debugging story is error-state packets (§4.1); this is the
// interactive complement a developer wants when a program dies on the
// remote node — and what the examples use to show what the CPU is doing.
#pragma once

#include <deque>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "sim/liquid_system.hpp"

namespace la::sim {

class Monitor {
 public:
  explicit Monitor(LiquidSystem& sys) : sys_(sys) {}

  // ---- breakpoints ----
  void add_breakpoint(Addr pc) { breakpoints_.insert(pc); }
  void remove_breakpoint(Addr pc) { breakpoints_.erase(pc); }
  bool has_breakpoint(Addr pc) const { return breakpoints_.count(pc) != 0; }

  // ---- watchpoints ----
  enum class Watch : u8 { kRead, kWrite, kAccess };
  struct Watchpoint {
    Addr lo;
    Addr hi;  // inclusive
    Watch kind;
  };
  void add_watchpoint(Addr lo, Addr hi, Watch kind) {
    watchpoints_.push_back({lo, hi, kind});
  }
  void clear_watchpoints() { watchpoints_.clear(); }

  // ---- run control ----
  enum class StopReason : u8 {
    kBreakpoint,   // about to execute a breakpointed instruction
    kWatchpoint,   // the last step touched a watched range
    kStepLimit,    // max_steps elapsed
    kErrorMode,    // the CPU halted in error mode
  };
  struct Stop {
    StopReason reason;
    Addr pc = 0;         // where execution is stopped (next instruction)
    Addr access = 0;     // faulting/watched data address if relevant
    u64 steps = 0;       // instructions executed during this cont()
  };

  /// Execute one instruction regardless of breakpoints.
  cpu::StepResult step_one();

  /// Run until a breakpoint/watchpoint/error or `max_steps`.
  Stop cont(u64 max_steps = 1'000'000);

  // ---- inspection ----
  /// "40000100: 82102007  or %g0, 7, %g1" lines around `pc`.
  std::string disassemble_around(Addr pc, unsigned before = 2,
                                 unsigned after = 4) const;
  /// Formatted dump of the current window's registers and control state.
  std::string registers() const;
  /// Word read through the debug port (no timing side effects).
  std::optional<u32> read_word(Addr addr) const;

  /// The last `n` executed (pc, disassembly) pairs, oldest first.
  std::vector<std::pair<Addr, std::string>> history(std::size_t n = 16) const;

 private:
  void record(const cpu::StepResult& r);
  bool watches_hit(const cpu::StepResult& r, Addr& which) const;

  static constexpr std::size_t kHistory = 64;

  LiquidSystem& sys_;
  std::set<Addr> breakpoints_;
  std::vector<Watchpoint> watchpoints_;
  std::deque<cpu::StepResult> trail_;
};

}  // namespace la::sim
