#include "sim/perf_trace.hpp"

#include <algorithm>
#include <cstdio>

namespace la::sim {

void PerfTracer::push(char phase, std::string name, double value) {
  Event e;
  e.phase = phase;
  e.name = std::move(name);
  e.ts = now();
  e.value = value;
  events_.push_back(std::move(e));
}

void PerfTracer::set_lane(u32 pid, u32 tid) {
  pid_ = pid;
  tid_ = tid;
}

void PerfTracer::set_names(std::string process, std::string thread) {
  process_name_ = std::move(process);
  thread_name_ = std::move(thread);
}

void PerfTracer::begin(std::string name) {
  open_.push_back(name);
  push('B', std::move(name));
}

void PerfTracer::end(std::string name) {
  // Close the matching open span (normally the innermost).  An end with
  // no matching begin is dropped: every emitted 'E' must pair with a 'B'
  // or the exported trace is malformed.
  const auto it = std::find(open_.rbegin(), open_.rend(), name);
  if (it == open_.rend()) return;
  open_.erase(std::next(it).base());
  push('E', std::move(name));
}

void PerfTracer::instant(std::string name) { push('i', std::move(name)); }

void PerfTracer::counter(std::string name, double value) {
  push('C', std::move(name), value);
}

void PerfTracer::sample(const metrics::Snapshot& snap,
                        const std::string& prefix) {
  for (const auto& [name, v] : snap.values) {
    if (!prefix.empty() && name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    counter(name, v);
  }
}

void PerfTracer::close_open_spans() {
  while (!open_.empty()) {
    std::string name = open_.back();
    open_.pop_back();
    push('E', std::move(name));
  }
}

std::string PerfTracer::to_chrome_json() {
  close_open_spans();
  // The clock never runs backwards, so events_ is already time-ordered;
  // a stable sort guards against any future out-of-band insertion.
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) { return a.ts < b.ts; });

  const std::string lane = ",\"pid\":" + std::to_string(pid_) +
                           ",\"tid\":" + std::to_string(tid_);

  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  if (!process_name_.empty()) {
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(pid_);
    out += ",\"tid\":0,\"args\":{\"name\":";
    metrics::append_json_string(out, process_name_);
    out += "}}";
    first = false;
  }
  if (!thread_name_.empty()) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\"";
    out += lane;
    out += ",\"args\":{\"name\":";
    metrics::append_json_string(out, thread_name_);
    out += "}}";
  }
  for (const Event& e : events_) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":";
    metrics::append_json_string(out, e.name);
    out += ",\"cat\":\"liquid\",\"ph\":\"";
    out += e.phase;
    out += "\",\"ts\":";
    metrics::append_json_number(out, static_cast<double>(e.ts));
    out += lane;
    if (e.phase == 'C') {
      out += ",\"args\":{\"value\":";
      metrics::append_json_number(out, e.value);
      out += '}';
    } else if (e.phase == 'i') {
      out += ",\"s\":\"t\"";  // thread-scoped instant marker
    }
    out += '}';
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool PerfTracer::write_chrome_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_chrome_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

std::string merge_chrome_traces(const std::vector<std::string>& traces) {
  // Every exporter in this repo emits exactly
  //   {"traceEvents":[\n ... \n],"displayTimeUnit":"ms"}\n
  // so merging is substring surgery on that fixed frame, not JSON parsing.
  static constexpr const char* kHead = "{\"traceEvents\":[\n";
  static constexpr const char* kTail = "\n],\"displayTimeUnit\":\"ms\"}";

  std::string out = kHead;
  bool first = true;
  for (const std::string& t : traces) {
    const std::size_t head = t.find(kHead);
    if (head != 0) continue;
    const std::size_t tail = t.rfind(kTail);
    if (tail == std::string::npos || tail < std::char_traits<char>::length(kHead)) {
      continue;
    }
    const std::size_t begin = std::char_traits<char>::length(kHead);
    std::string body = t.substr(begin, tail - begin);
    if (body.empty()) continue;
    if (!first) out += ",\n";
    first = false;
    out += body;
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

}  // namespace la::sim
