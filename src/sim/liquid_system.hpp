// The complete Liquid processor node (Fig 3): LEON pipeline + caches on
// AHB, boot ROM, SRAM behind the disconnect switch, SDRAM behind the
// FPX controller/adapter, APB peripherals, layered protocol wrappers,
// control packet processor, leon_ctrl, and packet generator — one clocked
// system with a network ingress/egress on the outside.
#pragma once

#include <memory>
#include <optional>

#include "bus/apb.hpp"
#include "bus/peripherals.hpp"
#include "bus/watchdog.hpp"
#include "common/metrics.hpp"
#include "cpu/leon_pipeline.hpp"
#include "mem/ahb_sdram_adapter.hpp"
#include "mem/boot_rom.hpp"
#include "mem/disconnect.hpp"
#include "mem/memory_map.hpp"
#include "mem/sdram.hpp"
#include "mem/sram.hpp"
#include "net/channel.hpp"
#include "net/leon_ctrl.hpp"
#include "net/trace_stream.hpp"
#include "net/wrappers.hpp"
#include "sim/flight_recorder.hpp"
#include "sim/perf_trace.hpp"

namespace la::sim {

struct SystemSnapshot;  // sim/snapshot.hpp

struct SystemConfig {
  cpu::PipelineConfig pipeline;
  net::Ipv4Addr node_ip = net::make_ip(192, 168, 100, 10);
  u16 node_port = net::kLeonControlPort;
  mem::SramTiming sram_timing;
  mem::SdramTiming sdram_timing;
  mem::AdapterConfig adapter;
  u32 sram_size = mem::map::kSramSize;
  u32 sdram_size = 1u << 22;  // 4 MiB simulated module (64 MiB is legal
                              // but pointlessly large for the workloads)
  u8 timer_irq_level = 8;
  /// Cycle budget the watchdog grants a started program; it is armed on
  /// Start and disarmed on completion, and trips the §4.1 error path when
  /// the budget runs out first.  0 disables the watchdog entirely.
  u64 watchdog_budget = 0;
  /// Boot the *original* LEON ROM (waits for a UART event, Fig 5 left)
  /// instead of the paper's modified mailbox-polling ROM.  Remote program
  /// start does not work in this mode — that is the point of Fig 5.
  bool use_original_boot = false;
  /// Host-performance knob (no effect on simulated cycles or state): run()
  /// and run_until() batch steps between peripheral events instead of
  /// advancing the timer/watchdog every step, falling back to the per-step
  /// path whenever a step hook, perf tracer, or trace stream is armed.
  /// An APB access from the program drains peripherals to the current
  /// cycle first, so mid-batch register reads observe per-step state.
  bool fast_run_loop = true;
  /// Arm the black-box flight recorder at construction (equivalent to
  /// calling enable_flight_recorder()).  Cheap enough to leave on: the
  /// fast run loop keeps batching, each event is a few stores.
  bool flight_recorder = false;
  std::size_t flight_capacity = 4096;  // ring entries (rounds to 2^n)
  u32 flight_pc_sample = 64;           // record every Nth retired PC
};

class LiquidSystem {
 public:
  explicit LiquidSystem(const SystemConfig& cfg = {});

  // ---- network side ----
  /// Deliver one IP frame from the wire into the wrappers.
  void ingress_frame(std::span<const u8> frame);
  /// Take one outbound IP frame, if any response is queued.
  std::optional<Bytes> egress_frame();

  // ---- time ----
  /// One processor step; advances peripherals and drains responses.
  cpu::StepResult step();
  /// Run up to `max_steps` instructions.
  void run(u64 max_steps);
  /// Run until leon_ctrl reaches `state` (true) or `max_steps` elapse.
  bool run_until(net::LeonState state, u64 max_steps);

  Cycles now() const { return clock_; }

  /// Hot-swap the processor micro-architecture: the paper's runtime
  /// reconfiguration.  Memory contents survive (they live off-chip); the
  /// processor restarts from the boot ROM.  Returns the configuration
  /// actually installed.
  void reconfigure(const cpu::PipelineConfig& pcfg);

  /// Reset the CPU to the boot ROM entry (leon_ctrl Restart path).
  void reset_cpu();

  // ---- snapshot/restore (sim/snapshot.cpp) ----
  /// Deep capture of the full architectural state: CPU windows/PSR/WIM/Y,
  /// wedge flag, pipeline latches, both caches (tags/LRU/parity/data/RNG),
  /// SRAM/SDRAM with parity shadows, bus + peripheral + watchdog state,
  /// the leon_ctrl state machine, queued egress, and the cycle counter.
  /// The result is a versioned binary blob that round-trips across
  /// processes (SystemSnapshot::serialize/deserialize).
  SystemSnapshot snapshot() const;
  /// Restore from a snapshot.  The coarse platform config (memory sizes,
  /// timings, boot ROM flavor) must match this system's; the *pipeline*
  /// configuration is adopted from the snapshot (rebuilding the pipeline
  /// if it differs — a restore is also a reconfiguration), while host-only
  /// knobs (fast paths, decode cache, run-loop batching) keep this
  /// system's settings, so snapshots cross fast/slow configurations
  /// bit-identically.  On failure returns false, sets *err when given,
  /// and leaves the system in an unspecified but safe-to-reset state.
  bool restore(const SystemSnapshot& snap, std::string* err = nullptr);
  /// Jump the clock forward to `to` without executing anything; no-op when
  /// `to` is in the past.  Restoring a snapshot rewinds the clock to the
  /// capture moment, which is right for replay but wrong for a long-lived
  /// node adopting a pooled state (warm start): local time must stay
  /// monotonic or cycle-based accounting and cycle-triggered machinery
  /// run backwards.  The skipped span never happened — the timer and
  /// watchdog are not charged for it.
  void warp_clock_forward(Cycles to) {
    if (to <= clock_) return;
    clock_ = to;
    periph_synced_at_ = clock_;
  }

  /// Stream instrumented execution traces to `dst` as UDP datagrams (the
  /// paper's trace path to the Trace Analyzer).  Claims the pipeline's
  /// observer slot.  `batch` = records per datagram.
  void enable_trace_stream(net::Ipv4Addr dst_ip, u16 dst_port,
                           std::size_t batch = 100);
  /// Force out a partial trace batch (end of a measurement window).
  void flush_trace_stream();
  void disable_trace_stream();
  const net::TraceStreamer* trace_streamer() const { return tracer_.get(); }

  // ---- observability ----
  /// The node-wide metrics registry.  Every component counter is bridged
  /// in at construction under a hierarchical name (`cache.d.read_misses`,
  /// `sdram.wait_cycles`, ...); external subsystems (reconfiguration
  /// cache/server) attach and detach their own.
  metrics::MetricsRegistry& metrics() { return metrics_; }
  const metrics::MetricsRegistry& metrics() const { return metrics_; }
  /// Registry snapshot stamped with the node clock.
  metrics::Snapshot metrics_snapshot() const {
    return metrics_.snapshot(clock_);
  }

  /// Attach a cycle-stamped perf tracer.  The system records spans for
  /// reconfigurations and leon_ctrl episodes (program.load, program.run)
  /// and samples key counters at run boundaries; callers add their own
  /// spans via the returned tracer.  Idempotent.
  PerfTracer& enable_perf_trace();
  PerfTracer* perf_tracer() { return perf_.get(); }

  /// Arm the black-box flight recorder: sampled retired PCs, traps,
  /// leon_ctrl transitions, watchdog trips, injected-fault firings land in
  /// a fixed ring.  Unlike the perf tracer it does NOT force the per-step
  /// run path — recording is a pointer test plus a few stores, so it can
  /// stay on in production.  Idempotent.
  FlightRecorder& enable_flight_recorder();
  FlightRecorder* flight_recorder() { return flight_.get(); }

  /// Freeze the ring into a JSON dump ("" when no recorder is armed).
  std::string take_flight_dump(const std::string& reason) const;
  /// The automatic dump captured when leon_ctrl last entered kError
  /// (watchdog trip or forced error); empty until that happens.
  const std::string& last_flight_dump() const { return last_flight_dump_; }

  // ---- component access ----
  cpu::LeonPipeline& cpu() { return *pipe_; }
  const cpu::LeonPipeline& cpu() const { return *pipe_; }
  net::LeonController& controller() { return *ctrl_; }
  net::ControlPacketProcessor& cpp() { return *cpp_; }
  net::LayeredWrappers& wrappers() { return wrappers_; }
  mem::DisconnectSwitch& disconnect() { return *switch_; }
  mem::Sram& sram() { return sram_; }
  mem::SdramDevice& sdram_device() { return *sdram_; }
  mem::FpxSdramController& sdram_controller() { return *sdram_ctrl_; }
  mem::AhbSdramAdapter& sdram_adapter() { return *adapter_; }
  bus::AhbBus& ahb() { return bus_; }
  bus::Uart& uart() { return uart_; }
  bus::LeonTimer& timer() { return timer_; }
  bus::IrqController& irq() { return *irqctrl_; }
  bus::GpioPort& gpio() { return gpio_; }
  bus::CycleCounter& cycle_counter() { return *cyc_; }
  bus::Watchdog& watchdog() { return wdog_; }
  net::PacketGenerator& packet_generator() { return *pktgen_; }
  const SystemConfig& config() const { return cfg_; }

  // ---- fault-injection hooks ----
  /// Called after every step() with the step's result (clock already
  /// advanced, control state already observed).  The fault engine uses it
  /// for cycle/PC triggers.
  using StepHook = std::function<void(const cpu::StepResult&)>;
  void set_step_hook(StepHook h) {
    step_hook_ = std::move(h);
    // Cached armed flag: the per-step check is one predictable bool test
    // instead of a std::function emptiness probe, and the batched run
    // loop keys its slow-path fallback off it.
    step_hook_armed_ = static_cast<bool>(step_hook_);
  }
  /// Called at the end of every ingress_frame() (packet-count triggers).
  using IngressHook = std::function<void()>;
  void set_ingress_hook(IngressHook h) { ingress_hook_ = std::move(h); }

  /// Address user programs jump to when finished (the polling loop).
  Addr check_ready_addr() const {
    return mem::map::kRomBase + mem::kCheckReadyOffset;
  }

 private:
  /// Bridge every component's counters into the registry (constructor).
  void register_metrics();
  /// Emit perf-trace spans when the leon_ctrl state machine moves.
  void observe_ctrl_state();
  /// leon_ctrl state observer: record the transition in the flight
  /// recorder and auto-dump on entry to kError (§4.1 post-mortem).
  void on_ctrl_transition(net::LeonState prev, net::LeonState next);
  /// Arm/disarm the watchdog as the leon_ctrl state machine moves (called
  /// from both step() and ingress_frame() — Start arrives on the network
  /// path, completion on the step path).
  void sync_watchdog();
  /// Catch the timer and watchdog up to `clock_` (batched run loops defer
  /// their advance; the per-step path keeps the backlog at zero, making
  /// this a no-op there).  Applies the same per-step ordering the slow
  /// path uses: timer, watchdog sync, watchdog charge.
  void drain_peripherals();
  /// Batched core shared by run()/run_until(); `until` null = run to the
  /// step budget.  Returns whether `until` was reached.
  bool run_batched(u64 max_steps, const net::LeonState* until);
  bool slow_run_path() const {
    return !cfg_.fast_run_loop || step_hook_armed_ || perf_ != nullptr ||
           tracer_ != nullptr;
  }

  SystemConfig cfg_;
  Cycles clock_ = 0;

  bus::AhbBus bus_;
  mem::Sram sram_;
  std::unique_ptr<mem::DisconnectSwitch> switch_;
  std::unique_ptr<mem::SdramDevice> sdram_;
  std::unique_ptr<mem::FpxSdramController> sdram_ctrl_;
  std::unique_ptr<mem::AhbSdramAdapter> adapter_;
  std::unique_ptr<mem::BootRom> rom_;

  bus::ApbBridge bridge_;
  bus::Uart uart_;
  bus::LeonTimer timer_;
  std::unique_ptr<bus::IrqController> irqctrl_;
  bus::GpioPort gpio_;
  std::unique_ptr<bus::CycleCounter> cyc_;
  bus::Watchdog wdog_;

  std::unique_ptr<cpu::LeonPipeline> pipe_;

  net::LayeredWrappers wrappers_;
  std::unique_ptr<net::TraceStreamer> tracer_;
  std::unique_ptr<net::PacketGenerator> pktgen_;
  std::unique_ptr<net::LeonController> ctrl_;
  std::unique_ptr<net::ControlPacketProcessor> cpp_;
  std::deque<Bytes> egress_;

  metrics::MetricsRegistry metrics_;
  std::unique_ptr<PerfTracer> perf_;
  std::unique_ptr<FlightRecorder> flight_;
  std::string last_flight_dump_;
  /// Watchdog-trip count already attributed to a recorded kWatchdog event
  /// (distinguishes a trip-driven kError from a forced one).
  u64 seen_wdog_trips_ = 0;
  /// Previous-window snapshot for the STATS_STREAM delta provider.
  metrics::Snapshot stream_prev_;
  net::LeonState traced_ctrl_state_ = net::LeonState::kIdle;
  net::LeonState wdog_state_ = net::LeonState::kIdle;
  StepHook step_hook_;
  bool step_hook_armed_ = false;
  IngressHook ingress_hook_;
  /// Cycle the timer/watchdog have been advanced to (== clock_ outside a
  /// batch; lags it inside one until drain_peripherals catches up).
  Cycles periph_synced_at_ = 0;
  /// Set by the APB access hook: a peripheral register was touched, so the
  /// current batch's precomputed next-event cycle may be stale.
  bool periph_dirty_ = false;
};

}  // namespace la::sim
