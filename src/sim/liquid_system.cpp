#include "sim/liquid_system.hpp"

#include <algorithm>
#include <type_traits>

#include "sasm/assembler.hpp"

namespace la::sim {

namespace map = mem::map;

LiquidSystem::LiquidSystem(const SystemConfig& cfg)
    : cfg_(cfg),
      sram_(map::kSramBase, cfg.sram_size, cfg.sram_timing),
      bridge_(map::kApbBase),
      timer_(cfg.timer_irq_level,
             [this](u8 level) { irqctrl_->raise(level); }),
      wrappers_(cfg.node_ip) {
  // ---- memory stack ----
  switch_ = std::make_unique<mem::DisconnectSwitch>(sram_);
  sdram_ = std::make_unique<mem::SdramDevice>(cfg.sdram_size,
                                              cfg.sdram_timing);
  sdram_ctrl_ = std::make_unique<mem::FpxSdramController>(*sdram_);
  adapter_ = std::make_unique<mem::AhbSdramAdapter>(
      *sdram_ctrl_, map::kSdramBase, cfg.sdram_size, &clock_, cfg.adapter);

  const auto boot = sasm::assemble_or_throw(
      cfg.use_original_boot
          ? mem::original_boot_source(
                map::kRomBase,
                map::kApbBase + map::kUartOffset + bus::reg::kUartStatus)
          : mem::modified_boot_source(map::kRomBase,
                                      map::kProgAddrMailbox));
  rom_ = std::make_unique<mem::BootRom>(map::kRomBase, map::kRomSize,
                                        boot.data);

  // ---- peripherals ----
  cyc_ = std::make_unique<bus::CycleCounter>([this] { return clock_; });
  irqctrl_ = std::make_unique<bus::IrqController>(
      [this](u8 level) { if (pipe_) pipe_->set_irq(level); });
  bridge_.attach(map::kUartOffset, map::kDeviceSize, &uart_);
  bridge_.attach(map::kTimerOffset, map::kDeviceSize, &timer_);
  bridge_.attach(map::kIrqOffset, map::kDeviceSize, irqctrl_.get());
  bridge_.attach(map::kGpioOffset, map::kDeviceSize, &gpio_);
  bridge_.attach(map::kCycleCounterOffset, map::kDeviceSize, cyc_.get());
  bridge_.attach(map::kWatchdogOffset, map::kDeviceSize, &wdog_);
  wdog_.set_on_trip([this] { ctrl_->watchdog_trip(); });
  // Batched runs defer timer/watchdog advance to computed event cycles; a
  // program access to peripheral space must observe per-step state, so
  // catch up right before the access lands and flag the batch to
  // recompute its next event (the access may have reprogrammed a device).
  // Outside a batch the backlog is zero and this is a no-op.
  bridge_.set_access_hook([this] {
    drain_peripherals();
    periph_dirty_ = true;
  });

  // ---- AHB map ----
  bus_.attach(map::kRomBase, map::kRomSize, rom_.get());
  bus_.attach(map::kSramBase, cfg.sram_size, switch_.get());
  bus_.attach(map::kSdramBase, cfg.sdram_size, adapter_.get());
  bus_.attach(map::kApbBase, map::kApbSize, &bridge_);

  // ---- processor ----
  pipe_ = std::make_unique<cpu::LeonPipeline>(cfg.pipeline, bus_, &clock_,
                                              &map::cacheable);
  pipe_->reset(map::kRomBase);

  // ---- network / control ----
  pktgen_ = std::make_unique<net::PacketGenerator>(cfg.node_ip,
                                                   cfg.node_port);
  net::LeonCtrlConfig lcfg;
  lcfg.mailbox = map::kProgAddrMailbox;
  lcfg.check_ready = check_ready_addr();
  lcfg.load_min = map::kSramBase + 4;
  lcfg.load_max = map::kSramBase + cfg.sram_size - 1;
  lcfg.user_code_min = map::kSramBase;
  ctrl_ = std::make_unique<net::LeonController>(
      lcfg, *switch_, *pktgen_, [this] { reset_cpu(); },
      [this] { return clock_; });
  cpp_ = std::make_unique<net::ControlPacketProcessor>(*ctrl_);

  // ---- observability ----
  register_metrics();
  // Remote clients poll the registry over UDP (STATS_SNAPSHOT) exactly
  // like the paper's control path; the wire form is compact JSON.
  ctrl_->set_stats_provider([this] {
    const std::string json = metrics_.snapshot(clock_).to_json(0);
    return Bytes(json.begin(), json.end());
  });
  // STATS_STREAM: each poll returns the delta window since the previous
  // poll (first poll: everything since boot, the empty baseline).
  ctrl_->set_delta_provider([this] {
    metrics::Snapshot now = metrics_.snapshot(clock_);
    const std::string json = now.diff_since(stream_prev_).to_json(0);
    stream_prev_ = std::move(now);
    return Bytes(json.begin(), json.end());
  });
  // FLIGHT_DUMP: freeze the ring on demand (error 0x42 when not armed —
  // the provider is only wired once the recorder exists).
  ctrl_->set_state_observer([this](net::LeonState prev, net::LeonState next) {
    on_ctrl_transition(prev, next);
  });
  if (cfg_.flight_recorder) enable_flight_recorder();
}

void LiquidSystem::register_metrics() {
  auto fn = [this](const char* name, auto getter) {
    metrics_.register_fn(name, [this, getter] {
      return static_cast<double>(getter(*this));
    });
  };
  using Sys = const LiquidSystem&;

  // -- processor --
  fn("cpu.instructions", [](Sys s) { return s.pipe_->stats().instructions; });
  fn("cpu.annulled", [](Sys s) { return s.pipe_->stats().annulled; });
  fn("cpu.traps", [](Sys s) { return s.pipe_->stats().traps; });
  fn("cpu.cycles", [](Sys s) { return s.pipe_->stats().cycles; });
  fn("pipeline.stalls.icache",
     [](Sys s) { return s.pipe_->stats().icache_stall; });
  fn("pipeline.stalls.dcache",
     [](Sys s) { return s.pipe_->stats().dcache_stall; });
  fn("pipeline.stalls.store_buffer",
     [](Sys s) { return s.pipe_->stats().store_stall; });
  fn("cpu.mix.loads", [](Sys s) { return s.pipe_->stats().loads; });
  fn("cpu.mix.stores", [](Sys s) { return s.pipe_->stats().stores; });
  fn("cpu.mix.branches", [](Sys s) { return s.pipe_->stats().branches; });
  fn("cpu.mix.taken_branches",
     [](Sys s) { return s.pipe_->stats().taken_branches; });
  fn("cpu.mix.calls", [](Sys s) { return s.pipe_->stats().calls; });
  fn("cpu.mix.muldiv", [](Sys s) { return s.pipe_->stats().muldiv; });

  // -- caches (config gauges ride along so a snapshot names its image) --
  const auto cache_metrics = [&](const char* prefix, bool icache) {
    const std::string p = prefix;
    auto c = [this, icache]() -> const cache::Cache& {
      return icache ? pipe_->icache() : pipe_->dcache();
    };
    metrics_.register_fn(p + ".size_bytes", [c] {
      return static_cast<double>(c().config().size_bytes);
    });
    metrics_.register_fn(p + ".line_bytes", [c] {
      return static_cast<double>(c().config().line_bytes);
    });
    metrics_.register_fn(p + ".ways", [c] {
      return static_cast<double>(c().config().ways);
    });
    metrics_.register_fn(p + ".read_hits", [c] {
      return static_cast<double>(c().stats().read_hits);
    });
    metrics_.register_fn(p + ".read_misses", [c] {
      return static_cast<double>(c().stats().read_misses);
    });
    metrics_.register_fn(p + ".write_hits", [c] {
      return static_cast<double>(c().stats().write_hits);
    });
    metrics_.register_fn(p + ".write_misses", [c] {
      return static_cast<double>(c().stats().write_misses);
    });
    metrics_.register_fn(p + ".evictions", [c] {
      return static_cast<double>(c().stats().evictions);
    });
    metrics_.register_fn(p + ".writebacks", [c] {
      return static_cast<double>(c().stats().writebacks);
    });
    metrics_.register_fn(p + ".flushes", [c] {
      return static_cast<double>(c().stats().flushes);
    });
    metrics_.register_fn(p + ".parity_recoveries", [c] {
      return static_cast<double>(c().stats().parity_recoveries);
    });
    metrics_.register_fn(p + ".parity_discards", [c] {
      return static_cast<double>(c().stats().parity_discards);
    });
  };
  cache_metrics("cache.i", true);
  cache_metrics("cache.d", false);

  // -- AHB --
  const auto ahb_master = [&](const char* prefix, bus::Master m) {
    const std::string p = prefix;
    metrics_.register_fn(p + ".transfers", [this, m] {
      return static_cast<double>(bus_.stats().of(m).transfers);
    });
    metrics_.register_fn(p + ".beats", [this, m] {
      return static_cast<double>(bus_.stats().of(m).beats);
    });
    metrics_.register_fn(p + ".cycles", [this, m] {
      return static_cast<double>(bus_.stats().of(m).cycles);
    });
    metrics_.register_fn(p + ".errors", [this, m] {
      return static_cast<double>(bus_.stats().of(m).errors);
    });
  };
  ahb_master("ahb.instr", bus::Master::kCpuInstr);
  ahb_master("ahb.data", bus::Master::kCpuData);
  ahb_master("ahb.dma", bus::Master::kDma);
  fn("ahb.unmapped", [](Sys s) { return s.bus_.stats().unmapped; });
  fn("ahb.injected_errors",
     [](Sys s) { return s.bus_.stats().injected_errors; });

  // -- memory fault detection --
  fn("sram.parity_errors",
     [](Sys s) { return s.sram_.stats().parity_errors; });
  fn("sram.words_corrupted",
     [](Sys s) { return s.sram_.stats().words_corrupted; });
  fn("sdram.parity_errors",
     [](Sys s) { return s.sdram_->stats().parity_errors; });
  fn("sdram.words_corrupted",
     [](Sys s) { return s.sdram_->stats().words_corrupted; });
  fn("sdram.adapter.parity_errors",
     [](Sys s) { return s.adapter_->stats().parity_errors; });

  // -- watchdog --
  fn("watchdog.trips", [](Sys s) { return s.wdog_.stats().trips; });
  fn("watchdog.kicks", [](Sys s) { return s.wdog_.stats().kicks; });

  // -- SDRAM controller / device / adapter --
  fn("sdram.handshakes",
     [](Sys s) { return s.sdram_ctrl_->stats().total_handshakes(); });
  fn("sdram.words64", [](Sys s) {
    const auto& st = s.sdram_ctrl_->stats();
    return st.words[0] + st.words[1] + st.words[2];
  });
  fn("sdram.wait_cycles",
     [](Sys s) { return s.sdram_ctrl_->stats().wait_cycles; });
  fn("sdram.row_hits", [](Sys s) { return s.sdram_->stats().row_hits; });
  fn("sdram.row_misses", [](Sys s) { return s.sdram_->stats().row_misses; });
  fn("sdram.row_conflicts",
     [](Sys s) { return s.sdram_->stats().row_conflicts; });
  fn("sdram.reads", [](Sys s) { return s.sdram_->stats().reads; });
  fn("sdram.writes", [](Sys s) { return s.sdram_->stats().writes; });
  fn("sdram.adapter.read_handshakes",
     [](Sys s) { return s.adapter_->stats().read_handshakes; });
  fn("sdram.adapter.write_handshakes",
     [](Sys s) { return s.adapter_->stats().write_handshakes; });
  fn("sdram.adapter.rmw_reads",
     [](Sys s) { return s.adapter_->stats().rmw_reads; });
  fn("sdram.adapter.wasted_words64",
     [](Sys s) { return s.adapter_->stats().wasted_words64; });

  // -- layered wrappers --
  fn("wrappers.cells_in", [](Sys s) { return s.wrappers_.stats().cells_in; });
  fn("wrappers.cells_out",
     [](Sys s) { return s.wrappers_.stats().cells_out; });
  fn("wrappers.frames_in",
     [](Sys s) { return s.wrappers_.stats().frames_in; });
  fn("wrappers.frames_out",
     [](Sys s) { return s.wrappers_.stats().frames_out; });
  fn("wrappers.ip_bad", [](Sys s) { return s.wrappers_.stats().ip_bad; });
  fn("wrappers.ip_wrong_addr",
     [](Sys s) { return s.wrappers_.stats().ip_wrong_addr; });
  fn("wrappers.udp_bad", [](Sys s) { return s.wrappers_.stats().udp_bad; });
  fn("wrappers.datagrams_in",
     [](Sys s) { return s.wrappers_.stats().datagrams_in; });
  fn("wrappers.datagrams_out",
     [](Sys s) { return s.wrappers_.stats().datagrams_out; });

  // -- control path --
  fn("leon_ctrl.commands", [](Sys s) { return s.ctrl_->stats().commands; });
  fn("leon_ctrl.bad_commands",
     [](Sys s) { return s.ctrl_->stats().bad_commands; });
  fn("leon_ctrl.chunks_loaded",
     [](Sys s) { return s.ctrl_->stats().chunks_loaded; });
  fn("leon_ctrl.duplicate_chunks",
     [](Sys s) { return s.ctrl_->stats().duplicate_chunks; });
  fn("leon_ctrl.programs_started",
     [](Sys s) { return s.ctrl_->stats().programs_started; });
  fn("leon_ctrl.programs_completed",
     [](Sys s) { return s.ctrl_->stats().programs_completed; });
  fn("leon_ctrl.watchdog_trips",
     [](Sys s) { return s.ctrl_->stats().watchdog_trips; });
  fn("leon_ctrl.parity_read_errors",
     [](Sys s) { return s.ctrl_->stats().parity_read_errors; });
  fn("leon_ctrl.last_run_cycles",
     [](Sys s) { return s.ctrl_->last_run_cycles(); });
  fn("leon_ctrl.state",
     [](Sys s) { return static_cast<u64>(s.ctrl_->state()); });
  fn("cpp.control_packets",
     [](Sys s) { return s.cpp_->control_packets(); });
  fn("cpp.passthrough_packets",
     [](Sys s) { return s.cpp_->passthrough_packets(); });
  fn("pktgen.emitted", [](Sys s) { return s.pktgen_->emitted(); });
  fn("pktgen.responses_dropped",
     [](Sys s) { return s.pktgen_->responses_dropped(); });
}

void LiquidSystem::ingress_frame(std::span<const u8> frame) {
  if (auto d = wrappers_.ingress_frame(frame)) {
    cpp_->ingress(*d);
    sync_watchdog();  // a Start command arms the budget from here
    // Control commands can complete without any CPU involvement (status,
    // read memory): drain the generator immediately.
    while (auto resp = pktgen_->pop()) {
      egress_.push_back(wrappers_.egress_frame(*resp));
    }
    observe_ctrl_state();
  }
  if (ingress_hook_) ingress_hook_();
}

std::optional<Bytes> LiquidSystem::egress_frame() {
  if (egress_.empty()) return std::nullopt;
  Bytes f = std::move(egress_.front());
  egress_.pop_front();
  return f;
}

cpu::StepResult LiquidSystem::step() {
  const Cycles before = clock_;
  const cpu::StepResult r = pipe_->step();
  if (pipe_->state().error_mode && clock_ == before) {
    // A halted core (trap with ET=0) stops retiring but its clock tree
    // keeps running — the watchdog and timers must still see time pass.
    clock_ += 1;
  }
  if (flight_) {
    if (r.trapped) {
      flight_->record(clock_, FlightEventKind::kTrap, r.pc, r.tt);
    } else {
      flight_->record_retire(clock_, r.pc, r.raw);
    }
  }
  ctrl_->on_cpu_pc(r.pc);
  timer_.advance(clock_ - before);
  sync_watchdog();  // completion disarms before the budget is charged
  wdog_.advance(clock_ - before);
  periph_synced_at_ = clock_;  // per-step path leaves no backlog
  if (step_hook_armed_) step_hook_(r);
  while (auto resp = pktgen_->pop()) {
    egress_.push_back(wrappers_.egress_frame(*resp));
  }
  if (perf_) observe_ctrl_state();
  return r;
}

void LiquidSystem::drain_peripherals() {
  const Cycles delta = clock_ - periph_synced_at_;
  if (delta == 0) return;
  timer_.advance(delta);
  sync_watchdog();  // same ordering as the per-step path
  wdog_.advance(delta);
  periph_synced_at_ = clock_;
}

bool LiquidSystem::run_batched(u64 max_steps, const net::LeonState* until) {
  constexpr Cycles kNoEvent = ~Cycles{0};
  cpu::StepResult r;
  u64 i = 0;
  // The flight recorder must not tax the disabled configuration: the
  // inner loop is specialized at compile time on whether it records, so
  // recorder-off code is identical to a build without the recorder.
  FlightRecorder* const fr = flight_.get();
  while (i < max_steps) {
    if (until != nullptr && ctrl_->state() == *until) return true;
    if (pipe_->state().error_mode && !wdog_.armed()) break;

    // Next cycle at which a peripheral does something observable; until
    // then, per-step advance calls are provably no-ops and are skipped.
    periph_dirty_ = false;
    Cycles next_event = kNoEvent;
    Cycles delta = 0;
    if (timer_.next_event(delta)) next_event = periph_synced_at_ + delta;
    if (wdog_.armed()) {
      next_event = std::min(next_event, periph_synced_at_ + wdog_.remaining());
    }
    const net::LeonState s0 = ctrl_->state();
    // leon_ctrl only inspects the PC while a program is Running; in every
    // other state on_cpu_pc is a no-op and the control state cannot move
    // until a peripheral event or network ingress (never mid-run), so the
    // whole call is hoisted out of the batch.
    const bool track_pc = s0 == net::LeonState::kRunning;

    const auto inner = [&](auto with_flight) {
      while (i < max_steps) {
        if (pipe_->state().error_mode && !wdog_.armed()) break;
        const Cycles before = clock_;
        // The only per-step result this loop consumes is the stepped
        // instruction's PC, which is the architectural PC *before* the
        // step — so the result materialization itself can be skipped.
        const Addr pc = pipe_->state().pc;
        pipe_->step_into_hot(r);
        ++i;
        if (pipe_->state().error_mode && clock_ == before) clock_ += 1;
        // step_into_hot may skip materializing the result, so only the PC
        // is trustworthy here; traps come from the per-step path.
        if constexpr (with_flight.value) fr->record_retire(clock_, pc, 0);
        if (track_pc) {
          ctrl_->on_cpu_pc(pc);
          if (ctrl_->state() != s0) break;  // completion: drain + resync
        }
        if (clock_ >= next_event) break;  // timer/watchdog event due
        if (periph_dirty_) break;  // APB access: next event may be stale
      }
    };
    if (fr != nullptr) {
      inner(std::bool_constant<true>{});
    } else {
      inner(std::bool_constant<false>{});
    }

    // Batch boundary: everything the per-step path does after a step, in
    // the same order, over the accumulated delta.
    drain_peripherals();
    while (auto resp = pktgen_->pop()) {
      egress_.push_back(wrappers_.egress_frame(*resp));
    }
  }
  return until != nullptr && ctrl_->state() == *until;
}

void LiquidSystem::run(u64 max_steps) {
  // A CPU in error mode normally ends the run, but while the watchdog is
  // armed time must keep flowing so the trip (and its error packet) can
  // happen — that is the §4.1 recovery story.
  if (!slow_run_path()) {
    run_batched(max_steps, nullptr);
    return;
  }
  for (u64 i = 0; i < max_steps; ++i) {
    if (pipe_->state().error_mode && !wdog_.armed()) break;
    step();
  }
}

bool LiquidSystem::run_until(net::LeonState state, u64 max_steps) {
  if (!slow_run_path()) return run_batched(max_steps, &state);
  for (u64 i = 0; i < max_steps; ++i) {
    if (ctrl_->state() == state) return true;
    if (pipe_->state().error_mode && !wdog_.armed()) return false;
    step();
  }
  return ctrl_->state() == state;
}

void LiquidSystem::reconfigure(const cpu::PipelineConfig& pcfg) {
  if (perf_) perf_->begin("reconfigure");
  metrics_.counter("sim.reconfigurations").inc();
  cfg_.pipeline = pcfg;
  pipe_ = std::make_unique<cpu::LeonPipeline>(pcfg, bus_, &clock_,
                                              &map::cacheable);
  pipe_->reset(map::kRomBase);
  // An active trace stream survives the new image.
  if (tracer_) pipe_->set_observer(tracer_.get());
  if (perf_) perf_->end("reconfigure");
}

void LiquidSystem::reset_cpu() {
  pipe_->reset(map::kRomBase);
}

void LiquidSystem::enable_trace_stream(net::Ipv4Addr dst_ip, u16 dst_port,
                                       std::size_t batch) {
  tracer_ = std::make_unique<net::TraceStreamer>(
      [this, dst_ip, dst_port](Bytes payload) {
        net::UdpDatagram d;
        d.src_ip = cfg_.node_ip;
        d.src_port = net::kTracePort;
        d.dst_ip = dst_ip;
        d.dst_port = dst_port;
        d.payload = std::move(payload);
        egress_.push_back(wrappers_.egress_frame(d));
      },
      batch);
  pipe_->set_observer(tracer_.get());
}

void LiquidSystem::flush_trace_stream() {
  if (tracer_) tracer_->flush();
}

void LiquidSystem::disable_trace_stream() {
  if (tracer_) {
    tracer_->flush();
    pipe_->set_observer(nullptr);
    tracer_.reset();
  }
}

PerfTracer& LiquidSystem::enable_perf_trace() {
  if (!perf_) {
    perf_ = std::make_unique<PerfTracer>(&clock_);
    traced_ctrl_state_ = ctrl_->state();
  }
  return *perf_;
}

FlightRecorder& LiquidSystem::enable_flight_recorder() {
  if (!flight_) {
    flight_ = std::make_unique<FlightRecorder>(cfg_.flight_capacity,
                                               cfg_.flight_pc_sample);
    ctrl_->set_flight_provider([this] {
      const std::string json = flight_->to_json("remote_dump", clock_, 0);
      return Bytes(json.begin(), json.end());
    });
  }
  return *flight_;
}

std::string LiquidSystem::take_flight_dump(const std::string& reason) const {
  if (!flight_) return {};
  return flight_->to_json(reason, clock_);
}

void LiquidSystem::on_ctrl_transition(net::LeonState prev,
                                      net::LeonState next) {
  if (!flight_) return;
  flight_->record(clock_, FlightEventKind::kCtrlState,
                  static_cast<u64>(prev), static_cast<u64>(next));
  if (next != net::LeonState::kError) return;
  // Post-mortem: the error transition just landed in the ring, the PC the
  // processor is wedged at is its current architectural PC.  A trip-driven
  // error gets a kWatchdog event; a forced error only the transition.
  const u64 trips = ctrl_->stats().watchdog_trips;
  const bool tripped = trips != seen_wdog_trips_;
  seen_wdog_trips_ = trips;
  if (tripped) {
    flight_->record(clock_, FlightEventKind::kWatchdog, pipe_->state().pc,
                    cfg_.watchdog_budget);
  }
  last_flight_dump_ =
      flight_->to_json(tripped ? "watchdog" : "ctrl_error", clock_);
}

void LiquidSystem::sync_watchdog() {
  if (cfg_.watchdog_budget == 0) return;
  const net::LeonState s = ctrl_->state();
  if (s == wdog_state_) return;
  if (s == net::LeonState::kRunning) {
    wdog_.arm(cfg_.watchdog_budget);
  } else {
    wdog_.disarm();
  }
  wdog_state_ = s;
}

void LiquidSystem::observe_ctrl_state() {
  if (!perf_) return;
  const net::LeonState s = ctrl_->state();
  if (s == traced_ctrl_state_) return;
  // Span edges follow the leon_ctrl state machine: LOADING brackets the
  // user-port program download, RUNNING brackets the measured execution
  // window (Start -> return to the polling loop, the §4 measurement).
  if (traced_ctrl_state_ == net::LeonState::kLoading) {
    perf_->end("program.load");
  }
  if (traced_ctrl_state_ == net::LeonState::kRunning) {
    perf_->end("program.run");
    // Sample the registry at the run boundary: each measured window gets
    // a counter row on the timeline.
    perf_->sample(metrics_snapshot(), "cpu.");
    perf_->sample(metrics_snapshot(), "cache.");
  }
  switch (s) {
    case net::LeonState::kLoading: perf_->begin("program.load"); break;
    case net::LeonState::kRunning: perf_->begin("program.run"); break;
    case net::LeonState::kError: perf_->instant("leon_ctrl.error"); break;
    default: break;
  }
  traced_ctrl_state_ = s;
}

}  // namespace la::sim
