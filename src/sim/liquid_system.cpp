#include "sim/liquid_system.hpp"

#include "sasm/assembler.hpp"

namespace la::sim {

namespace map = mem::map;

LiquidSystem::LiquidSystem(const SystemConfig& cfg)
    : cfg_(cfg),
      sram_(map::kSramBase, cfg.sram_size, cfg.sram_timing),
      bridge_(map::kApbBase),
      timer_(cfg.timer_irq_level,
             [this](u8 level) { irqctrl_->raise(level); }),
      wrappers_(cfg.node_ip) {
  // ---- memory stack ----
  switch_ = std::make_unique<mem::DisconnectSwitch>(sram_);
  sdram_ = std::make_unique<mem::SdramDevice>(cfg.sdram_size,
                                              cfg.sdram_timing);
  sdram_ctrl_ = std::make_unique<mem::FpxSdramController>(*sdram_);
  adapter_ = std::make_unique<mem::AhbSdramAdapter>(
      *sdram_ctrl_, map::kSdramBase, cfg.sdram_size, &clock_, cfg.adapter);

  const auto boot = sasm::assemble_or_throw(
      cfg.use_original_boot
          ? mem::original_boot_source(
                map::kRomBase,
                map::kApbBase + map::kUartOffset + bus::reg::kUartStatus)
          : mem::modified_boot_source(map::kRomBase,
                                      map::kProgAddrMailbox));
  rom_ = std::make_unique<mem::BootRom>(map::kRomBase, map::kRomSize,
                                        boot.data);

  // ---- peripherals ----
  cyc_ = std::make_unique<bus::CycleCounter>([this] { return clock_; });
  irqctrl_ = std::make_unique<bus::IrqController>(
      [this](u8 level) { if (pipe_) pipe_->set_irq(level); });
  bridge_.attach(map::kUartOffset, map::kDeviceSize, &uart_);
  bridge_.attach(map::kTimerOffset, map::kDeviceSize, &timer_);
  bridge_.attach(map::kIrqOffset, map::kDeviceSize, irqctrl_.get());
  bridge_.attach(map::kGpioOffset, map::kDeviceSize, &gpio_);
  bridge_.attach(map::kCycleCounterOffset, map::kDeviceSize, cyc_.get());

  // ---- AHB map ----
  bus_.attach(map::kRomBase, map::kRomSize, rom_.get());
  bus_.attach(map::kSramBase, cfg.sram_size, switch_.get());
  bus_.attach(map::kSdramBase, cfg.sdram_size, adapter_.get());
  bus_.attach(map::kApbBase, map::kApbSize, &bridge_);

  // ---- processor ----
  pipe_ = std::make_unique<cpu::LeonPipeline>(cfg.pipeline, bus_, &clock_,
                                              &map::cacheable);
  pipe_->reset(map::kRomBase);

  // ---- network / control ----
  pktgen_ = std::make_unique<net::PacketGenerator>(cfg.node_ip,
                                                   cfg.node_port);
  net::LeonCtrlConfig lcfg;
  lcfg.mailbox = map::kProgAddrMailbox;
  lcfg.check_ready = check_ready_addr();
  lcfg.load_min = map::kSramBase + 4;
  lcfg.load_max = map::kSramBase + cfg.sram_size - 1;
  lcfg.user_code_min = map::kSramBase;
  ctrl_ = std::make_unique<net::LeonController>(
      lcfg, *switch_, *pktgen_, [this] { reset_cpu(); },
      [this] { return clock_; });
  cpp_ = std::make_unique<net::ControlPacketProcessor>(*ctrl_);
}

void LiquidSystem::ingress_frame(std::span<const u8> frame) {
  if (auto d = wrappers_.ingress_frame(frame)) {
    cpp_->ingress(*d);
    // Control commands can complete without any CPU involvement (status,
    // read memory): drain the generator immediately.
    while (auto resp = pktgen_->pop()) {
      egress_.push_back(wrappers_.egress_frame(*resp));
    }
  }
}

std::optional<Bytes> LiquidSystem::egress_frame() {
  if (egress_.empty()) return std::nullopt;
  Bytes f = std::move(egress_.front());
  egress_.pop_front();
  return f;
}

cpu::StepResult LiquidSystem::step() {
  const Cycles before = clock_;
  const cpu::StepResult r = pipe_->step();
  ctrl_->on_cpu_pc(r.pc);
  timer_.advance(clock_ - before);
  while (auto resp = pktgen_->pop()) {
    egress_.push_back(wrappers_.egress_frame(*resp));
  }
  return r;
}

void LiquidSystem::run(u64 max_steps) {
  for (u64 i = 0; i < max_steps && !pipe_->state().error_mode; ++i) step();
}

bool LiquidSystem::run_until(net::LeonState state, u64 max_steps) {
  for (u64 i = 0; i < max_steps; ++i) {
    if (ctrl_->state() == state) return true;
    if (pipe_->state().error_mode) return false;
    step();
  }
  return ctrl_->state() == state;
}

void LiquidSystem::reconfigure(const cpu::PipelineConfig& pcfg) {
  cfg_.pipeline = pcfg;
  pipe_ = std::make_unique<cpu::LeonPipeline>(pcfg, bus_, &clock_,
                                              &map::cacheable);
  pipe_->reset(map::kRomBase);
  // An active trace stream survives the new image.
  if (tracer_) pipe_->set_observer(tracer_.get());
}

void LiquidSystem::reset_cpu() {
  pipe_->reset(map::kRomBase);
}

void LiquidSystem::enable_trace_stream(net::Ipv4Addr dst_ip, u16 dst_port,
                                       std::size_t batch) {
  tracer_ = std::make_unique<net::TraceStreamer>(
      [this, dst_ip, dst_port](Bytes payload) {
        net::UdpDatagram d;
        d.src_ip = cfg_.node_ip;
        d.src_port = net::kTracePort;
        d.dst_ip = dst_ip;
        d.dst_port = dst_port;
        d.payload = std::move(payload);
        egress_.push_back(wrappers_.egress_frame(d));
      },
      batch);
  pipe_->set_observer(tracer_.get());
}

void LiquidSystem::flush_trace_stream() {
  if (tracer_) tracer_->flush();
}

void LiquidSystem::disable_trace_stream() {
  if (tracer_) {
    tracer_->flush();
    pipe_->set_observer(nullptr);
    tracer_.reset();
  }
}

}  // namespace la::sim
