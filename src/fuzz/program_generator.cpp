#include "fuzz/program_generator.hpp"

#include <array>
#include <sstream>

namespace la::fuzz {
namespace {

/// Constants the kSystem prologue plants in the register file: a private
/// rng stream derived from the program seed, so re-rendering a mutated
/// spec reproduces the exact same prologue.
u64 prologue_stream(u64 seed) {
  u64 s = seed ^ 0x5eedf00dcafe1234ull;
  return splitmix64(s);
}

}  // namespace

std::string render_prologue(const GenOptions& opts) {
  std::ostringstream os;
  if (opts.mode == ProgramMode::kSystem) {
    // The boot ROM leaves WIM=2, TBR=ROM, PSR residue and a register file
    // full of leftovers; the bare models reset to zeroed state.  Normalize
    // everything architectural the body can observe so all three models
    // agree from the first body instruction on.
    os << "    wr %g0, 0, %wim          ! all windows valid (silent wrap)\n";
    os << "    wr %g0, 0x80, %psr       ! S=1, ET=0, CWP=0, icc clear\n";
    os << "    wr %g0, 0, %y\n";
    Rng rng(prologue_stream(opts.seed));
    static constexpr const char* kWindowRegs[] = {
        "%l0", "%l1", "%l2", "%l3", "%l4", "%l5", "%l6", "%l7",
        "%o0", "%o1", "%o2", "%o3", "%o4", "%o5", "%o6", "%o7"};
    for (unsigned w = 0; w < opts.nwindows; ++w) {
      // Locals and outs of every window; the ins of window w alias the
      // outs of window w+1, so a full walk covers the whole file.
      for (const char* r : kWindowRegs) {
        os << "    set 0x" << std::hex << rng.next_u32() << std::dec << ", "
           << r << "\n";
      }
      os << "    save\n";
    }
    for (int g = 1; g <= 6; ++g) {
      os << "    set 0x" << std::hex << rng.next_u32() << std::dec << ", %g"
         << g << "\n";
    }
  }
  os << "    set data, %g7\n";  // reserved data base pointer
  return os.str();
}

std::string render_epilogue(ProgramMode mode) {
  std::ostringstream os;
  os << kDoneSymbol << ":\n";
  if (mode == ProgramMode::kSystem) {
    // Back to the boot ROM polling loop: leon_ctrl sees the PC land on
    // check_ready and reports the program done (the paper's Fig 5 flow).
    os << "    jmp 0x" << std::hex << kCheckReadyAddr << std::dec << "\n";
    os << "    nop\n";
  } else {
    os << "    ba " << kDoneSymbol << "\n";
    os << "    nop\n";
  }
  return os.str();
}

std::string ProgramSpec::render() const {
  std::ostringstream os;
  os << "    .org 0x" << std::hex << kProgramBase << std::dec << "\n";
  os << "_start:\n";
  os << render_prologue(opts);
  for (const std::string& c : chunks) os << c;
  os << render_epilogue(opts.mode);
  os << "    .align 8\ndata:\n    .skip " << kDataBytes << "\n";
  return os.str();
}

int ProgramSpec::body_instructions() const {
  int n = 0;
  for (const std::string& c : chunks) {
    std::istringstream is(c);
    std::string line;
    while (std::getline(is, line)) {
      const auto first = line.find_first_not_of(" \t");
      if (first == std::string::npos) continue;
      const auto last = line.find_last_not_of(" \t");
      if (line[last] == ':') continue;  // label-only line
      ++n;
    }
  }
  return n;
}

ProgramSpec ProgramGenerator::generate(GenOptions opts) {
  opts.seed = seed_;
  ProgramSpec spec;
  spec.opts = opts;
  spec.chunks.reserve(static_cast<std::size_t>(opts.instructions));
  for (int i = 0; i < opts.instructions; ++i) {
    spec.chunks.push_back(emit_chunk(opts, i));
  }
  return spec;
}

std::string ProgramGenerator::reg() {
  // Any register except %g0 (pointless) and %g7 (reserved base).
  static constexpr const char* pool[] = {
      "%g1", "%g2", "%g3", "%g4", "%g5", "%g6", "%o0", "%o1", "%o2",
      "%o3", "%o4", "%o5", "%l0", "%l1", "%l2", "%l3", "%l4", "%l5",
      "%l6", "%l7", "%i0", "%i1", "%i2", "%i3", "%i4", "%i5"};
  return pool[rng_.below(std::size(pool))];
}

std::string ProgramGenerator::even_reg() {
  static constexpr const char* pool[] = {"%g2", "%g4", "%o0", "%o2",
                                         "%l0", "%l2", "%l4", "%i0"};
  return pool[rng_.below(std::size(pool))];
}

std::string ProgramGenerator::op2() {
  if (rng_.chance(0.5)) return reg();
  return std::to_string(static_cast<i32>(rng_.below(8192)) - 4096);
}

std::string ProgramGenerator::emit_chunk(const GenOptions& opts, int idx) {
  std::ostringstream os;
  switch (rng_.below(15)) {
    case 0: {  // plain ALU
      static constexpr const char* ops[] = {
          "add", "sub", "and", "or", "xor", "andn", "orn", "xnor",
          "addx", "subx"};
      os << "    " << ops[rng_.below(std::size(ops))] << " " << reg()
         << ", " << op2() << ", " << reg() << "\n";
      break;
    }
    case 1: {  // cc-setting ALU
      static constexpr const char* ops[] = {"addcc", "subcc", "andcc",
                                            "orcc",  "xorcc", "addxcc",
                                            "subxcc", "taddcc", "tsubcc"};
      os << "    " << ops[rng_.below(std::size(ops))] << " " << reg()
         << ", " << op2() << ", " << reg() << "\n";
      break;
    }
    case 2: {  // shifts
      static constexpr const char* ops[] = {"sll", "srl", "sra"};
      os << "    " << ops[rng_.below(3)] << " " << reg() << ", "
         << rng_.below(32) << ", " << reg() << "\n";
      break;
    }
    case 3:  // constants
      os << "    set 0x" << std::hex << rng_.next_u32() << std::dec << ", "
         << reg() << "\n";
      break;
    case 4: {  // loads
      const u32 off = rng_.below(kDataBytes - 8);
      static constexpr const char* ops[] = {"ld", "ldub", "lduh", "ldsb",
                                            "ldsh"};
      const char* op = ops[rng_.below(std::size(ops))];
      u32 aligned = off;
      if (op[2] == '\0') aligned &= ~3u;        // ld
      else if (op[2] == 'u' || op[2] == 's') {  // ldu?/lds?
        if (op[3] == 'h') aligned &= ~1u;
      }
      os << "    " << op << " [%g7 + " << aligned << "], " << reg() << "\n";
      break;
    }
    case 5: {  // stores
      const u32 off = rng_.below(kDataBytes - 8);
      const int k = static_cast<int>(rng_.below(3));
      if (k == 0) {
        os << "    st " << reg() << ", [%g7 + " << (off & ~3u) << "]\n";
      } else if (k == 1) {
        os << "    stb " << reg() << ", [%g7 + " << off << "]\n";
      } else {
        os << "    sth " << reg() << ", [%g7 + " << (off & ~1u) << "]\n";
      }
      break;
    }
    case 6: {  // doubleword
      const u32 off = rng_.below(kDataBytes - 8) & ~7u;
      if (rng_.chance(0.5)) {
        os << "    ldd [%g7 + " << off << "], " << even_reg() << "\n";
      } else {
        os << "    std " << even_reg() << ", [%g7 + " << off << "]\n";
      }
      break;
    }
    case 7: {  // atomics
      const u32 off = rng_.below(kDataBytes - 8);
      if (rng_.chance(0.5)) {
        os << "    ldstub [%g7 + " << off << "], " << reg() << "\n";
      } else {
        os << "    swap [%g7 + " << (off & ~3u) << "], " << reg() << "\n";
      }
      break;
    }
    case 8: {  // alternate-space atomics (rr addressing, ASI 0x0b)
      // The a-variants only take register+register addresses; stage the
      // offset into a scratch register first.  ASI 0x0b is supervisor
      // data — plain memory semantics in both CPU models.
      const std::string rt = reg();
      const u32 off = rng_.below(kDataBytes - 8);
      if (rng_.chance(0.5)) {
        os << "    set " << off << ", " << rt << "\n";
        os << "    ldstuba [%g7 + " << rt << "] 0xb, " << reg() << "\n";
      } else {
        os << "    set " << (off & ~3u) << ", " << rt << "\n";
        os << "    swapa [%g7 + " << rt << "] 0xb, " << reg() << "\n";
      }
      break;
    }
    case 9: {  // short forward conditional branch (+ optional annul)
      static constexpr const char* cc[] = {"e",  "ne", "g",  "le",
                                           "ge", "l",  "gu", "leu",
                                           "cc", "cs", "pos", "neg"};
      const bool annul = rng_.chance(0.3);
      os << "    cmp " << reg() << ", " << op2() << "\n";
      os << "    b" << cc[rng_.below(std::size(cc))]
         << (annul ? ",a" : "") << " fwd" << idx << "\n";
      if (rng_.chance(0.25)) {
        // mulscc in the delay slot: one step of the iterative multiply
        // (reads Y and icc, writes both) in the annullable position.
        os << "    mulscc " << reg() << ", " << op2() << ", " << reg()
           << "\n";
      } else {
        os << "    add %g1, 1, %g1\n";  // delay slot
      }
      os << "    sub %g2, 1, %g2\n";  // maybe skipped
      os << "    xor %g3, 5, %g3\n";
      os << "fwd" << idx << ":\n";
      break;
    }
    case 10: {  // multiply / divide
      static constexpr const char* ops[] = {"umul",   "smul", "umulcc",
                                            "smulcc", "udiv", "sdiv",
                                            "udivcc", "sdivcc", "mulscc"};
      const char* op = ops[rng_.below(std::size(ops))];
      const bool is_div = op[1] == 'd';
      if (op[0] == 'u' || op[0] == 's') {
        if (is_div || op[1] == 'm') {
          // Seed Y for divides to keep dividends tame half the time.
          if (rng_.chance(0.5)) os << "    wr %g0, 0, %y\n";
        }
      }
      if (is_div && !opts.allow_traps()) {
        // Trap-free mode: a non-zero immediate divisor cannot raise
        // division_by_zero.
        os << "    " << op << " " << reg() << ", "
           << (1 + rng_.below(4094)) << ", " << reg() << "\n";
      } else {
        os << "    " << op << " " << reg() << ", " << op2() << ", "
           << reg() << "\n";
      }
      break;
    }
    case 11: {  // mulscc chain: consecutive multiply steps through Y/icc
      if (rng_.chance(0.5)) {
        os << "    wr " << reg() << ", 0, %y\n";
      }
      const unsigned n = 2 + rng_.below(4);
      const std::string acc = reg();
      for (unsigned i = 0; i < n; ++i) {
        os << "    mulscc " << acc << ", " << op2() << ", " << acc << "\n";
      }
      break;
    }
    case 12: {  // window traffic (WIM=0 -> silent wraparound)
      if (rng_.chance(0.5)) {
        os << "    save %g0, " << rng_.below(64) << ", " << reg() << "\n";
      } else {
        os << "    restore %g0, " << rng_.below(64) << ", " << reg()
           << "\n";
      }
      break;
    }
    case 13: {  // carry chain: cc-setting op feeding addx/subx directly
      // Exercises the carry-in path with a freshly defined C bit — plain
      // ALU chunks reach addx/subx too rarely to pin down carry semantics.
      static constexpr const char* setters[] = {"addcc", "subcc", "addxcc",
                                                "subxcc"};
      static constexpr const char* users[] = {"addx", "subx", "addxcc",
                                              "subxcc"};
      os << "    " << setters[rng_.below(std::size(setters))] << " " << reg()
         << ", " << op2() << ", " << reg() << "\n";
      os << "    " << users[rng_.below(std::size(users))] << " " << reg()
         << ", " << op2() << ", " << reg() << "\n";
      break;
    }
    default: {  // Y register traffic
      if (rng_.chance(0.5)) {
        os << "    wr " << reg() << ", " << op2() << ", %y\n";
      } else {
        os << "    rd %y, " << reg() << "\n";
      }
      break;
    }
  }
  return os.str();
}

}  // namespace la::fuzz
