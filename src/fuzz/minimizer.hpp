// Delta-debugging minimizer: shrink a failing program to a minimal body
// that still fails the differential check.
//
// Two passes: classic ddmin over whole chunks (a branch block and its
// label travel as one unit, so intermediate candidates stay assemblable),
// then a line-level sweep inside the surviving chunks.  The predicate
// re-runs the differential each probe; candidates that fail to assemble
// simply report "not failing" and are rejected, so no special casing is
// needed here.
#pragma once

#include <functional>

#include "fuzz/program_generator.hpp"

namespace la::fuzz {

/// Returns true when the candidate still reproduces the failure.
using FailPredicate = std::function<bool(const ProgramSpec&)>;

struct MinimizeStats {
  std::size_t probes = 0;          // predicate evaluations
  std::size_t initial_chunks = 0;
  std::size_t final_chunks = 0;
  int final_instructions = 0;      // body instruction count of the result
};

/// Precondition: still_fails(failing) is true (checked; returns `failing`
/// unchanged with zeroed stats when not, rather than "minimizing" a
/// passing input to nothing).
ProgramSpec minimize(const ProgramSpec& failing,
                     const FailPredicate& still_fails,
                     MinimizeStats* stats = nullptr);

}  // namespace la::fuzz
