// Chunk-level program mutation.
//
// Mutants stay structurally valid by construction where cheap (labels are
// renamed on duplication, fresh material comes from the shared generator)
// and are otherwise validated by assembling — the fuzzer discards any
// mutant the assembler rejects, so the mutator is free to be aggressive.
#pragma once

#include "common/rng.hpp"
#include "fuzz/program_generator.hpp"

namespace la::fuzz {

class Mutator {
 public:
  explicit Mutator(u64 seed) : rng_(seed), gen_(splitmix_of(seed)) {}

  /// One mutated copy of `in` (1-3 stacked mutation operators).
  ProgramSpec mutate(const ProgramSpec& in);

  /// Crossover: leading chunks of `a` spliced to trailing chunks of `b`.
  /// The result inherits a's options (mode, nwindows, prologue seed).
  ProgramSpec crossover(const ProgramSpec& a, const ProgramSpec& b);

 private:
  static u64 splitmix_of(u64 seed) {
    u64 s = seed ^ 0x6d75746174655f31ull;  // "mutate_1"
    return splitmix64(s);
  }

  void op_drop(ProgramSpec& s);
  void op_duplicate(ProgramSpec& s);
  void op_swap(ProgramSpec& s);
  void op_insert_fresh(ProgramSpec& s);
  void op_tweak_immediate(ProgramSpec& s);

  /// Rename every `fwd<digits>` label token in `chunk` so a duplicated
  /// branch block does not redefine its target.
  std::string rename_labels(const std::string& chunk);

  Rng rng_;
  ProgramGenerator gen_;
  u64 fresh_idx_ = 0;  // uniquifies labels of inserted/renamed chunks
};

}  // namespace la::fuzz
