// Three-way differential execution of one generated program:
//
//   leg A  cpu::IntegerUnit    functional reference on flat memory
//   leg B  cpu::LeonPipeline   timed pipeline + caches on a bare AHB/SRAM
//   leg C  sim::LiquidSystem   the full node, driven exactly like the
//                              paper's control software: boot ROM, UDP
//                              chunked program load, mailbox start, run
//                              to completion, memory readback
//
// A and B are compared field-for-field (every window register, PSR, Y,
// WIM, TBR, error mode, the data region).  C booted through real firmware,
// so its PC/nPC sit in the ROM polling loop afterwards and the loop
// clobbers %l0/%l1/icc of the final window; compare_system() masks exactly
// that residue and nothing else — kSystem-mode programs normalize every
// other piece of state in their prologue.
//
// The runner also collects the coverage sample (mnemonic/trap bitmaps from
// leg A, metric buckets from leg B's bridged registry and leg C's node
// registry) that drives corpus admission.
#pragma once

#include <memory>
#include <string>

#include "cpu/leon_pipeline.hpp"
#include "fuzz/coverage.hpp"
#include "fuzz/program_generator.hpp"
#include "sim/liquid_system.hpp"
#include "sim/snapshot.hpp"

namespace la::fuzz {

struct DiffOptions {
  cpu::PipelineConfig pipeline;
  /// Run leg C for kSystem-mode programs.  Ignored for kCore programs
  /// (their trap behaviour is undefined under the boot ROM's trap table).
  bool with_system = true;
  /// Instruction budget for the bare legs; 0 derives one from the body
  /// size.  A program that exhausts it is reported as incomplete, not as
  /// a divergence (both legs get the same budget).
  u64 max_steps = 0;
  /// Node instruction budget for the boot-load-run leg.
  u64 system_max_steps = 4'000'000;
  /// Deliberate semantic fault in leg A (CpuConfig::quirk_subx_no_carry):
  /// the fuzzer's own end-to-end self-check.  See docs/TESTING.md.
  bool inject_subx_bug = false;
  /// Arm leg C's flight recorder so a system-leg divergence comes with a
  /// post-mortem (recent retired PCs, traps, ctrl transitions) in
  /// DiffOutcome::flight_dump.  Costs a sampled ring write per retire.
  bool flight_recorder = true;
};

struct DiffOutcome {
  bool asm_ok = false;
  bool completed = false;  // reference model reached `done` (or halted
                           // identically in error mode)
  bool diverged = false;
  std::string leg;     // which comparison failed: "pipeline" / "system"
  std::string detail;  // assembler errors, or the first mismatch
  CoverageSample coverage;
  u64 steps = 0;  // instructions the reference model retired
  /// Flight-recorder JSON from leg C, captured when that leg diverged and
  /// DiffOptions::flight_recorder was on; empty otherwise.
  std::string flight_dump;
};

class DifferentialRunner {
 public:
  explicit DifferentialRunner(const DiffOptions& opt) : opt_(opt) {}

  DiffOutcome run(const ProgramSpec& spec);
  /// Raw-source entry point (lfuzz --replay of an .s file).
  DiffOutcome run_source(const std::string& source, ProgramMode mode);

  const DiffOptions& options() const { return opt_; }

 private:
  DiffOptions opt_;
  /// Leg C keeps one node alive across run() calls: the first kSystem
  /// program boots it and captures a post-boot snapshot; every later
  /// program — including each ddmin probe of a shrinking reproducer —
  /// deep-replays by restoring that snapshot in O(memcpy) instead of
  /// reconstructing and re-booting a fresh LiquidSystem.
  std::unique_ptr<sim::LiquidSystem> sys_;
  sim::SystemSnapshot post_boot_;
};

/// First architectural difference between two complete states, or "" when
/// equal.  Compares PC/nPC, PSR, Y, WIM, TBR, error mode, every window.
std::string compare_full(const cpu::CpuState& a, const cpu::CpuState& b);

/// Post-boot-ROM comparison (leg C): skips PC/nPC, masks the icc bits of
/// PSR, and skips %l0-%l2 of the final window — the ROM polling loop owns
/// those after the program's final jump.
std::string compare_system(const cpu::CpuState& a, const cpu::CpuState& c);

}  // namespace la::fuzz
