// The fuzzer's corpus: programs that contributed coverage, kept both in
// memory (mutation pool) and on disk (campaign persistence + replay).
//
// Disk layout (one directory):
//   entry-<fnv64 of source>.lprog   structured spec (options + chunks)
//   entry-<fnv64 of source>.s       rendered source, for humans and for
//                                   `lfuzz --replay`
//
// The .lprog form is what load() reads back — it preserves chunk
// boundaries so a reloaded corpus mutates and minimizes exactly like the
// session that saved it.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fuzz/program_generator.hpp"

namespace la::fuzz {

struct CorpusEntry {
  ProgramSpec spec;
  std::size_t novelty = 0;  // features this entry added when admitted
};

/// Stable content hash used for corpus file names (FNV-1a 64).
u64 fnv1a64(const std::string& s);

/// Text serialization of a spec (the .lprog format).
std::string serialize_spec(const ProgramSpec& spec);
std::optional<ProgramSpec> parse_spec(const std::string& text);

class Corpus {
 public:
  void add(ProgramSpec spec, std::size_t novelty);

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  const CorpusEntry& at(std::size_t i) const { return entries_.at(i); }

  /// Uniform random pick for mutation.
  const CorpusEntry& pick(Rng& rng) const;

  /// Write every entry to `dir` (created if missing); returns the number
  /// of files written (existing same-hash entries are left alone).
  std::size_t save(const std::string& dir) const;
  /// Load every .lprog under `dir`; returns how many parsed.  Unparsable
  /// files are skipped, not fatal — a corpus survives format drift.
  std::size_t load(const std::string& dir);

 private:
  std::vector<CorpusEntry> entries_;
};

}  // namespace la::fuzz
