// The fault-injection campaign behind `lfuzz --faults`.
//
// Each iteration: generate a clean-completing kSystem program, compute its
// expected data region on the functional reference, then boot-load-run it
// on a full node over lossy channels while a seeded FaultPlan damages the
// node mid-flight.  Every injected fault must end the run in one of three
// defensible states:
//
//   masked    the run completed, the data region matches, and no injected
//             damage survives (overwritten, refetched, or absorbed by a
//             protocol retry)
//   detected  the client failed *loudly* — a structured ClientError
//             (watchdog trip, parity refusal, deadline) — or the readback
//             refused parity-bad words
//   latent    the run completed correctly but damage is still sitting in
//             memory with bad parity (injected, never consumed; any future
//             read traps)
//
// Anything else — the run "succeeded" yet the data region silently
// disagrees with the reference — is a SILENT divergence: the campaign's
// exit-1 condition, recorded and delta-minimized like a fuzz divergence.
#pragma once

#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "fuzz/minimizer.hpp"
#include "fuzz/program_generator.hpp"

namespace la::fuzz {

struct FaultCampaignConfig {
  u64 seed = 1;
  /// Stop conditions; 0 disables each.  At least one must be set.
  int budget_secs = 0;
  u64 max_iterations = 0;
  bool stop_on_silent = true;
  bool minimize_failures = true;
  /// Watchdog cycle budget granted to each started program; must exceed
  /// any honest program's runtime so only wedges/traps trip it.
  u64 watchdog_budget = 2'000'000;
  /// Node step deadline per client command and per run.
  u64 run_max_steps = 3'000'000;
  /// Events per generated plan are drawn from [1, max_faults_per_run].
  unsigned max_faults_per_run = 3;
  /// Background channel loss under the injected faults (the client must
  /// survive both at once).  Probabilities, 0..1.
  double channel_drop = 0.05;
  double channel_corrupt = 0.03;
  int program_chunks = 60;
  std::string out_dir = "lfuzz-faults-out";
  bool verbose = false;
  /// Arm each node's flight recorder; detections and silent divergences
  /// then come with a post-mortem JSON (FaultRunResult::flight_dump, and a
  /// .flight.json next to each silent repro).
  bool flight_recorder = true;
};

enum class FaultVerdict : u8 {
  kSkipped = 0,   // program unusable for the campaign (no clean baseline)
  kMasked = 1,
  kDetected = 2,
  kLatent = 3,
  kSilent = 4,    // the failure the campaign exists to find
};

const char* verdict_name(FaultVerdict v);

struct FaultRunResult {
  FaultVerdict verdict = FaultVerdict::kSkipped;
  std::string detail;
  u64 faults_fired = 0;
  u64 faults_landed = 0;
  /// Flight-recorder JSON captured for detected/silent verdicts when
  /// FaultCampaignConfig::flight_recorder is on; empty otherwise.
  std::string flight_dump;
};

struct FaultCampaignStats {
  u64 iterations = 0;
  u64 executions = 0;  // injection runs, minimization probes included
  u64 skipped = 0;
  u64 masked = 0;
  u64 detected = 0;
  u64 latent = 0;
  u64 silent = 0;
  u64 faults_injected = 0;
};

struct FaultFailure {
  ProgramSpec spec;
  ProgramSpec minimized;
  fault::FaultPlan plan;
  std::string detail;
  std::string flight_dump;  // node post-mortem at the silent divergence
  MinimizeStats min_stats;
  std::string repro_path;      // written .s (+ .plan.txt alongside)
  std::string minimized_path;
};

class FaultCampaign {
 public:
  explicit FaultCampaign(const FaultCampaignConfig& cfg);

  /// Run the campaign.  Returns 0 when every fault was masked, detected,
  /// or latent; 1 when any run diverged silently (the lfuzz exit code).
  int run();

  /// One injection run of `spec` under `plan`.  Exposed for tests and the
  /// minimizer predicate.
  FaultRunResult run_one(const ProgramSpec& spec,
                         const fault::FaultPlan& plan);

  /// A random plan targeting the footprint of `spec`'s assembled image.
  /// Deterministic in `seed`.  Campaign-safe sites only: register flips
  /// are inherently silent at the hardware level (no parity) and belong
  /// to the unit tests, not the detected-or-masked guarantee.
  fault::FaultPlan random_plan(u64 seed, Addr img_base, Addr img_end);

  const FaultCampaignStats& stats() const { return stats_; }
  const std::vector<FaultFailure>& failures() const { return failures_; }

 private:
  void handle_silent(const ProgramSpec& spec, const fault::FaultPlan& plan,
                     const std::string& detail,
                     const std::string& flight_dump);
  std::string finish_line() const;
  void note(const std::string& line) const;

  FaultCampaignConfig cfg_;
  Rng rng_;
  FaultCampaignStats stats_;
  std::vector<FaultFailure> failures_;
  u64 fresh_seed_state_ = 0;
};

}  // namespace la::fuzz
