#include "fuzz/fault_campaign.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "cpu/flat_memory.hpp"
#include "cpu/integer_unit.hpp"
#include "ctrl/client.hpp"
#include "fault/injector.hpp"
#include "fuzz/corpus.hpp"
#include "mem/memory_map.hpp"
#include "sasm/assembler.hpp"
#include "sim/liquid_system.hpp"

namespace la::fuzz {
namespace {

namespace fs = std::filesystem;

constexpr Addr kMemBase = 0x40000000;
constexpr u32 kMemSize = 1u << 20;

std::string write_text(const fs::path& path, const std::string& text) {
  std::ofstream os(path, std::ios::binary);
  os << text;
  return path.string();
}

std::string hex32(u32 v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", v);
  return buf;
}

}  // namespace

const char* verdict_name(FaultVerdict v) {
  switch (v) {
    case FaultVerdict::kSkipped: return "skipped";
    case FaultVerdict::kMasked: return "masked";
    case FaultVerdict::kDetected: return "detected";
    case FaultVerdict::kLatent: return "latent";
    case FaultVerdict::kSilent: return "SILENT";
  }
  return "?";
}

FaultCampaign::FaultCampaign(const FaultCampaignConfig& cfg)
    : cfg_(cfg),
      rng_(cfg.seed ^ 0x6661756c745f3141ull),  // "fault_1A"
      fresh_seed_state_(cfg.seed) {}

fault::FaultPlan FaultCampaign::random_plan(u64 seed, Addr img_base,
                                            Addr img_end) {
  fault::FaultPlan plan;
  plan.seed = seed;
  Rng rng(seed);
  const u32 words =
      std::max<u32>(1, static_cast<u32>((img_end - img_base) / 4));
  const unsigned n = rng.between(1, cfg_.max_faults_per_run);
  for (unsigned i = 0; i < n; ++i) {
    fault::FaultEvent e;
    // Trigger: mostly a cycle somewhere between boot and a typical run's
    // end; sometimes the arrival of the Nth control packet (mid-load).
    if (rng.chance(0.75)) {
      e.trigger = {fault::TriggerKind::kCycle, 400 + rng.below(30'000)};
    } else {
      e.trigger = {fault::TriggerKind::kPacketCount, 1 + rng.below(10)};
    }
    // Campaign-safe site mix.  Memory words dominate: they exercise the
    // whole parity pipeline (detect on read, scrub on write, latent when
    // untouched).
    const u32 pick = rng.below(100);
    if (pick < 35) {
      e.action.site = fault::FaultSite::kSramWord;
      e.action.addr = img_base + 4ull * rng.below(words);
      e.action.mask = u64{1} << rng.below(32);
      if (rng.chance(0.3)) e.action.mask |= u64{1} << rng.below(32);
    } else if (pick < 45) {
      e.action.site = fault::FaultSite::kSdramWord;
      e.action.addr = mem::map::kSdramBase + 8ull * rng.below(4096);
      e.action.mask = u64{1} << rng.below(64);
    } else if (pick < 55) {
      e.action.site = rng.chance(0.5) ? fault::FaultSite::kICacheLine
                                      : fault::FaultSite::kDCacheLine;
      e.action.addr = img_base + 4ull * rng.below(words);
      e.action.arg = rng.below(4);      // byte within the word
      e.action.mask = rng.below(8);     // bit within the byte
    } else if (pick < 65) {
      e.action.site = fault::FaultSite::kAhbErrorPulse;
      e.action.arg = rng.between(1, 3);
    } else if (pick < 80) {
      e.action.site = fault::FaultSite::kCpuWedge;
      // Half the wedges release on their own (the watchdog must NOT have
      // tripped by then for the run to complete); half are permanent and
      // only the watchdog can turn them into a loud failure.
      e.action.arg = rng.chance(0.5) ? 0 : rng.between(1'000, 50'000);
    } else {
      const u32 c = rng.below(3);
      e.action.site = c == 0   ? fault::FaultSite::kChannelCorrupt
                      : c == 1 ? fault::FaultSite::kChannelTruncate
                               : fault::FaultSite::kChannelDelay;
      e.action.on_downlink = rng.chance(0.5);
      e.action.arg = rng.between(1, 4);  // delay rounds (others ignore it)
    }
    plan.events.push_back(e);
  }
  return plan;
}

FaultRunResult FaultCampaign::run_one(const ProgramSpec& spec,
                                      const fault::FaultPlan& plan) {
  FaultRunResult res;
  ++stats_.executions;

  sasm::Assembler as;
  sasm::AsmResult ar = as.assemble(spec.render());
  if (!ar.ok) {
    res.detail = "assembly failed";
    return res;
  }
  const sasm::Image& img = ar.image;
  Addr done = 0;
  Addr data = img.base;
  try {
    done = img.symbol(kDoneSymbol);
    data = img.symbol("data");
  } catch (const std::exception&) {
    res.detail = "missing done/data symbol";
    return res;
  }

  // ---- baseline: the functional reference, fault-free ------------------
  const u64 budget = 4096 + 16u * (img.data.size() / 4);
  cpu::FlatMemory flat(kMemSize, kMemBase);
  flat.load(img.base, img.data);
  cpu::IntegerUnit iu(cpu::CpuConfig{}, flat);
  iu.reset(img.entry);
  iu.run(budget, done);
  if (iu.state().pc != done || iu.state().error_mode) {
    res.detail = "program does not complete cleanly on the reference";
    return res;
  }

  // ---- the faulty leg: full node, lossy channels, injected plan --------
  sim::SystemConfig scfg;
  // Write-through data cache: the campaign's detected-or-masked guarantee
  // covers memory parity, and a poisoned *dirty* line discards a write
  // (detected via trap, but the lost store makes the baseline comparison
  // meaningless).  The write-back path is covered by unit tests.
  scfg.pipeline.dcache.write_policy =
      cache::WritePolicy::kWriteThroughNoAllocate;
  scfg.watchdog_budget = cfg_.watchdog_budget;
  scfg.flight_recorder = cfg_.flight_recorder;
  sim::LiquidSystem node(scfg);
  node.run(300);  // boot ROM to its polling loop

  ctrl::ClientConfig ccfg;
  ccfg.deadline_steps = cfg_.run_max_steps;
  ccfg.uplink.drop = cfg_.channel_drop;
  ccfg.uplink.corrupt = cfg_.channel_corrupt;
  ccfg.uplink.seed = plan.seed ^ 0x75706c696e6bull;    // "uplink"
  ccfg.downlink.drop = cfg_.channel_drop;
  ccfg.downlink.corrupt = cfg_.channel_corrupt;
  ccfg.downlink.seed = plan.seed ^ 0x646f776e6cull;    // "downl"
  ctrl::LiquidClient client(node, ccfg);

  fault::FaultInjector inj(node, plan, &client.uplink_mut(),
                           &client.downlink_mut());

  const ctrl::Status run = client.run_program(img, cfg_.run_max_steps);
  res.faults_fired = inj.stats().injected;
  res.faults_landed = inj.stats().landed;
  stats_.faults_injected += inj.stats().injected;

  // Post-mortem for any classified failure: prefer the dump the node took
  // itself at the moment of the trip/error (tightest window around the
  // wedge PC); fall back to whatever the ring holds now.
  const auto black_box = [&](const char* reason) {
    if (node.flight_recorder() == nullptr) return;
    res.flight_dump = node.last_flight_dump();
    if (res.flight_dump.empty()) res.flight_dump = node.take_flight_dump(reason);
  };

  if (!run) {
    res.verdict = FaultVerdict::kDetected;
    res.detail = run.error().to_string();
    black_box("detected");
    return res;
  }

  // The run reported success: the data region must MATCH the reference,
  // except where injected damage is still parity-flagged (latent — any
  // future read of those words traps/refuses, so nothing can consume the
  // wrong bits silently).
  bool latent = false;
  const Addr cmp_end = std::min<Addr>(data + kDataBytes, img.end());
  for (Addr addr = data; addr + 4 <= cmp_end; addr += 4) {
    u64 got = 0;
    if (!node.sram().debug_read(addr, 4, got)) {
      res.verdict = FaultVerdict::kSilent;
      res.detail = "data region unreadable at " + hex32(addr);
      black_box("silent_divergence");
      return res;
    }
    if (flat.word_at(addr) == static_cast<u32>(got)) continue;
    if (!node.sram().parity_ok(addr, 4)) {
      latent = true;
      continue;
    }
    res.verdict = FaultVerdict::kSilent;
    res.detail = "memory at data+" + std::to_string(addr - data) + ": " +
                 hex32(flat.word_at(addr)) + " vs " +
                 hex32(static_cast<u32>(got)) + " (parity clean)";
    black_box("silent_divergence");
    return res;
  }
  // Damage outside the data region that never got consumed is latent too
  // (program text shadowed by the icache, SDRAM words nothing read, ...).
  for (const fault::FiredRecord& f : inj.fired()) {
    if (f.landed && inj.parity_still_bad(f.event_index)) latent = true;
  }

  res.verdict = latent ? FaultVerdict::kLatent : FaultVerdict::kMasked;
  return res;
}

int FaultCampaign::run() {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const bool timed = cfg_.budget_secs > 0;
  const u64 max_iters =
      cfg_.max_iterations ? cfg_.max_iterations : (timed ? ~0ull : 32);

  for (u64 iter = 0; iter < max_iters; ++iter) {
    if (timed) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
          Clock::now() - start);
      if (elapsed.count() >= cfg_.budget_secs) break;
    }
    ++stats_.iterations;

    GenOptions opts;
    opts.mode = ProgramMode::kSystem;
    opts.instructions = cfg_.program_chunks;
    opts.seed = splitmix64(fresh_seed_state_);
    ProgramGenerator gen(opts.seed);
    ProgramSpec spec = gen.generate(opts);

    // The plan needs the image footprint to aim at.
    sasm::Assembler as;
    sasm::AsmResult ar = as.assemble(spec.render());
    if (!ar.ok) {
      note("generator produced unassemblable program (seed " +
           std::to_string(opts.seed) + ")");
      ++stats_.skipped;
      continue;
    }
    const fault::FaultPlan plan = random_plan(splitmix64(fresh_seed_state_),
                                              ar.image.base, ar.image.end());

    const FaultRunResult r = run_one(spec, plan);
    switch (r.verdict) {
      case FaultVerdict::kSkipped: ++stats_.skipped; break;
      case FaultVerdict::kMasked: ++stats_.masked; break;
      case FaultVerdict::kDetected: ++stats_.detected; break;
      case FaultVerdict::kLatent: ++stats_.latent; break;
      case FaultVerdict::kSilent:
        ++stats_.silent;
        handle_silent(spec, plan, r.detail, r.flight_dump);
        if (cfg_.stop_on_silent) {
          note(finish_line());
          return 1;
        }
        break;
    }
    if (cfg_.verbose && r.verdict != FaultVerdict::kSkipped) {
      note("iter " + std::to_string(stats_.iterations) + ": " +
           verdict_name(r.verdict) +
           (r.detail.empty() ? "" : " (" + r.detail + ")") + ", " +
           std::to_string(r.faults_fired) + " fault(s) fired");
    }
  }

  note(finish_line());
  return failures_.empty() ? 0 : 1;
}

void FaultCampaign::handle_silent(const ProgramSpec& spec,
                                  const fault::FaultPlan& plan,
                                  const std::string& detail,
                                  const std::string& flight_dump) {
  note("SILENT divergence: " + detail);
  FaultFailure fail;
  fail.spec = spec;
  fail.minimized = spec;
  fail.plan = plan;
  fail.detail = detail;
  fail.flight_dump = flight_dump;

  if (cfg_.minimize_failures) {
    const auto still_fails = [&](const ProgramSpec& cand) {
      return run_one(cand, plan).verdict == FaultVerdict::kSilent;
    };
    fail.minimized = minimize(spec, still_fails, &fail.min_stats);
    note("minimized " + std::to_string(fail.min_stats.initial_chunks) +
         " -> " + std::to_string(fail.min_stats.final_chunks) + " chunks (" +
         std::to_string(fail.min_stats.probes) + " probes)");
  }

  if (!cfg_.out_dir.empty()) {
    std::error_code ec;
    fs::create_directories(cfg_.out_dir, ec);
    const std::string tag =
        "fault-" + std::to_string(failures_.size()) + "-" +
        std::to_string(fnv1a64(fail.spec.render()) & 0xffffffull);
    const fs::path base = fs::path(cfg_.out_dir) / tag;
    fail.repro_path = write_text(base.string() + ".s", fail.spec.render());
    write_text(base.string() + ".plan.txt",
               fail.plan.to_string() + "# " + fail.detail + "\n");
    if (!fail.flight_dump.empty()) {
      write_text(base.string() + ".flight.json", fail.flight_dump);
    }
    if (cfg_.minimize_failures) {
      fail.minimized_path =
          write_text(base.string() + ".min.s", fail.minimized.render());
    }
    note("repro written to " + fail.repro_path);
  }

  failures_.push_back(std::move(fail));
}

std::string FaultCampaign::finish_line() const {
  return "done: " + std::to_string(stats_.iterations) + " iterations, " +
         std::to_string(stats_.faults_injected) + " faults injected; " +
         std::to_string(stats_.masked) + " masked, " +
         std::to_string(stats_.detected) + " detected, " +
         std::to_string(stats_.latent) + " latent, " +
         std::to_string(stats_.silent) + " SILENT, " +
         std::to_string(stats_.skipped) + " skipped";
}

void FaultCampaign::note(const std::string& line) const {
  if (cfg_.verbose) std::cerr << "[lfuzz:faults] " << line << "\n";
}

}  // namespace la::fuzz
