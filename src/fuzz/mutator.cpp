#include "fuzz/mutator.hpp"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>
#include <string>

namespace la::fuzz {
namespace {

/// Parse a fully-decimal (optionally negative) token; nullopt otherwise.
std::optional<i64> parse_int_token(const std::string& tok) {
  if (tok.empty()) return std::nullopt;
  std::size_t i = tok[0] == '-' ? 1 : 0;
  if (i == tok.size()) return std::nullopt;
  for (std::size_t k = i; k < tok.size(); ++k) {
    if (!std::isdigit(static_cast<unsigned char>(tok[k]))) {
      return std::nullopt;
    }
  }
  return std::stoll(tok);
}

}  // namespace

ProgramSpec Mutator::mutate(const ProgramSpec& in) {
  ProgramSpec out = in;
  const unsigned ops = 1 + rng_.below(3);
  for (unsigned i = 0; i < ops; ++i) {
    switch (rng_.below(5)) {
      case 0: op_drop(out); break;
      case 1: op_duplicate(out); break;
      case 2: op_swap(out); break;
      case 3: op_insert_fresh(out); break;
      default: op_tweak_immediate(out); break;
    }
  }
  return out;
}

ProgramSpec Mutator::crossover(const ProgramSpec& a, const ProgramSpec& b) {
  ProgramSpec out = a;
  if (a.chunks.empty() || b.chunks.empty()) return out;
  const std::size_t cut_a = rng_.below(static_cast<u32>(a.chunks.size()));
  const std::size_t cut_b = rng_.below(static_cast<u32>(b.chunks.size()));
  out.chunks.assign(a.chunks.begin(),
                    a.chunks.begin() + static_cast<long>(cut_a));
  // The b-side chunks may carry labels that collide with a's: rename.
  for (std::size_t i = cut_b; i < b.chunks.size(); ++i) {
    out.chunks.push_back(rename_labels(b.chunks[i]));
  }
  if (out.chunks.empty()) out.chunks.push_back(a.chunks.front());
  return out;
}

void Mutator::op_drop(ProgramSpec& s) {
  if (s.chunks.size() <= 1) return;
  s.chunks.erase(s.chunks.begin() +
                 rng_.below(static_cast<u32>(s.chunks.size())));
}

void Mutator::op_duplicate(ProgramSpec& s) {
  if (s.chunks.empty()) return;
  const std::size_t i = rng_.below(static_cast<u32>(s.chunks.size()));
  const std::size_t j = rng_.below(static_cast<u32>(s.chunks.size() + 1));
  s.chunks.insert(s.chunks.begin() + static_cast<long>(j),
                  rename_labels(s.chunks[i]));
}

void Mutator::op_swap(ProgramSpec& s) {
  if (s.chunks.size() < 2) return;
  const std::size_t i = rng_.below(static_cast<u32>(s.chunks.size()));
  const std::size_t j = rng_.below(static_cast<u32>(s.chunks.size()));
  std::swap(s.chunks[i], s.chunks[j]);
}

void Mutator::op_insert_fresh(ProgramSpec& s) {
  const std::size_t j = rng_.below(static_cast<u32>(s.chunks.size() + 1));
  // Label indices far above any generate()-produced chunk's.
  const int idx = static_cast<int>(500000 + fresh_idx_++);
  s.chunks.insert(s.chunks.begin() + static_cast<long>(j),
                  gen_.emit_chunk(s.opts, idx));
}

void Mutator::op_tweak_immediate(ProgramSpec& s) {
  if (s.chunks.empty()) return;
  std::string& chunk =
      s.chunks[rng_.below(static_cast<u32>(s.chunks.size()))];
  // Memory operands stay untouched: offsets into the data region carry
  // range and alignment invariants the mutator should not break.
  if (chunk.find('[') != std::string::npos) return;

  std::istringstream is(chunk);
  std::ostringstream os;
  std::string line;
  bool tweaked = false;
  while (std::getline(is, line)) {
    if (!tweaked) {
      // Split on commas; rewrite the first operand that is a bare integer.
      std::size_t start = 0;
      while (start < line.size()) {
        std::size_t comma = line.find(',', start);
        if (comma == std::string::npos) comma = line.size();
        std::string tok = line.substr(start, comma - start);
        const std::size_t l = tok.find_first_not_of(' ');
        const std::size_t r = tok.find_last_not_of(' ');
        if (l != std::string::npos) {
          if (const auto v = parse_int_token(tok.substr(l, r - l + 1))) {
            static constexpr i64 kChoices[] = {0, 1, -1, 4095, -4096};
            i64 nv;
            switch (rng_.below(4)) {
              case 0: nv = kChoices[rng_.below(std::size(kChoices))]; break;
              case 1: nv = *v + 1; break;
              case 2: nv = *v * 2; break;
              default:
                nv = static_cast<i64>(rng_.below(8192)) - 4096;
                break;
            }
            nv = std::clamp<i64>(nv, -4096, 4095);
            line = line.substr(0, start) + tok.substr(0, l) +
                   std::to_string(nv) + line.substr(comma);
            tweaked = true;
            break;
          }
        }
        start = comma + 1;
      }
    }
    os << line << "\n";
  }
  if (tweaked) chunk = os.str();
}

std::string Mutator::rename_labels(const std::string& chunk) {
  if (chunk.find("fwd") == std::string::npos) return chunk;
  const std::string suffix = "_d" + std::to_string(fresh_idx_++);
  std::string out;
  out.reserve(chunk.size() + 16);
  std::size_t i = 0;
  while (i < chunk.size()) {
    if (chunk.compare(i, 3, "fwd") == 0) {
      std::size_t j = i + 3;
      while (j < chunk.size() &&
             std::isdigit(static_cast<unsigned char>(chunk[j]))) {
        ++j;
      }
      if (j > i + 3) {  // fwd<digits>: rename
        out.append(chunk, i, j - i);
        out += suffix;
        i = j;
        continue;
      }
    }
    out += chunk[i++];
  }
  return out;
}

}  // namespace la::fuzz
