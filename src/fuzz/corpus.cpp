#include "fuzz/corpus.hpp"

#include <algorithm>
#include <cassert>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace la::fuzz {
namespace fs = std::filesystem;

u64 fnv1a64(const std::string& s) {
  u64 h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string serialize_spec(const ProgramSpec& spec) {
  std::ostringstream os;
  os << "lfuzz-program v1\n";
  os << "mode " << (spec.opts.mode == ProgramMode::kSystem ? "system"
                                                           : "core")
     << "\n";
  os << "instructions " << spec.opts.instructions << "\n";
  os << "nwindows " << spec.opts.nwindows << "\n";
  os << "seed " << spec.opts.seed << "\n";
  os << "%%\n";
  for (const std::string& c : spec.chunks) {
    os << c;
    if (!c.empty() && c.back() != '\n') os << "\n";
    os << "%%\n";
  }
  return os.str();
}

std::optional<ProgramSpec> parse_spec(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != "lfuzz-program v1") {
    return std::nullopt;
  }
  ProgramSpec spec;
  while (std::getline(is, line) && line != "%%") {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "mode") {
      std::string m;
      ls >> m;
      if (m == "system") spec.opts.mode = ProgramMode::kSystem;
      else if (m == "core") spec.opts.mode = ProgramMode::kCore;
      else return std::nullopt;
    } else if (key == "instructions") {
      ls >> spec.opts.instructions;
    } else if (key == "nwindows") {
      ls >> spec.opts.nwindows;
    } else if (key == "seed") {
      ls >> spec.opts.seed;
    } else if (!key.empty()) {
      return std::nullopt;  // unknown header key: not ours
    }
  }
  std::string chunk;
  while (std::getline(is, line)) {
    if (line == "%%") {
      spec.chunks.push_back(chunk);
      chunk.clear();
    } else {
      chunk += line;
      chunk += '\n';
    }
  }
  if (!chunk.empty()) return std::nullopt;  // truncated final chunk
  return spec;
}

void Corpus::add(ProgramSpec spec, std::size_t novelty) {
  entries_.push_back(CorpusEntry{std::move(spec), novelty});
}

const CorpusEntry& Corpus::pick(Rng& rng) const {
  assert(!entries_.empty());
  return entries_[rng.below(static_cast<u32>(entries_.size()))];
}

std::size_t Corpus::save(const std::string& dir) const {
  fs::create_directories(dir);
  std::size_t written = 0;
  for (const CorpusEntry& e : entries_) {
    const std::string source = e.spec.render();
    char name[32];
    std::snprintf(name, sizeof(name), "entry-%016llx",
                  static_cast<unsigned long long>(fnv1a64(source)));
    const fs::path base = fs::path(dir) / name;
    const fs::path lprog = base.string() + ".lprog";
    if (fs::exists(lprog)) continue;
    std::ofstream(lprog) << serialize_spec(e.spec);
    std::ofstream(base.string() + ".s") << source;
    ++written;
  }
  return written;
}

std::size_t Corpus::load(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return 0;
  std::size_t loaded = 0;
  std::vector<fs::path> files;
  for (const auto& de : fs::directory_iterator(dir, ec)) {
    if (de.path().extension() == ".lprog") files.push_back(de.path());
  }
  std::sort(files.begin(), files.end());  // deterministic order
  for (const fs::path& p : files) {
    std::ifstream in(p);
    std::stringstream ss;
    ss << in.rdbuf();
    if (auto spec = parse_spec(ss.str())) {
      add(std::move(*spec), 0);
      ++loaded;
    }
  }
  return loaded;
}

}  // namespace la::fuzz
