#include "fuzz/minimizer.hpp"

#include <algorithm>
#include <sstream>

namespace la::fuzz {
namespace {

ProgramSpec with_chunks(const ProgramSpec& base,
                        std::vector<std::string> chunks) {
  ProgramSpec s = base;
  s.chunks = std::move(chunks);
  return s;
}

/// One ddmin round: try to reduce `chunks` by testing subsets and their
/// complements at the current granularity.  Returns true if a reduction
/// was found (and applied).
bool ddmin_pass(const ProgramSpec& base, std::vector<std::string>& chunks,
                std::size_t& n, const FailPredicate& fails,
                std::size_t& probes) {
  const std::size_t len = chunks.size();
  const std::size_t part = std::max<std::size_t>(1, len / n);
  for (std::size_t start = 0; start < len; start += part) {
    const std::size_t end = std::min(len, start + part);
    // Complement: everything except [start, end).
    std::vector<std::string> complement;
    complement.reserve(len - (end - start));
    complement.insert(complement.end(), chunks.begin(),
                      chunks.begin() + static_cast<long>(start));
    complement.insert(complement.end(),
                      chunks.begin() + static_cast<long>(end),
                      chunks.end());
    if (complement.empty()) continue;
    ++probes;
    if (fails(with_chunks(base, complement))) {
      chunks = std::move(complement);
      n = std::max<std::size_t>(2, n - 1);
      return true;
    }
  }
  return false;
}

}  // namespace

ProgramSpec minimize(const ProgramSpec& failing,
                     const FailPredicate& still_fails,
                     MinimizeStats* stats) {
  MinimizeStats local;
  MinimizeStats& st = stats ? *stats : local;
  st.probes = 1;
  st.initial_chunks = failing.chunks.size();
  if (!still_fails(failing)) {
    st.final_chunks = failing.chunks.size();
    st.final_instructions = failing.body_instructions();
    return failing;
  }

  ProgramSpec spec = failing;
  // Pass 1: ddmin over chunks.
  std::size_t n = 2;
  while (spec.chunks.size() >= 2) {
    if (ddmin_pass(failing, spec.chunks, n, still_fails, st.probes)) {
      continue;  // reduced: retry at the (lowered) granularity
    }
    if (n >= spec.chunks.size()) break;  // single-chunk granularity done
    n = std::min(spec.chunks.size(), n * 2);
  }

  // Pass 2: drop individual lines inside the surviving chunks (branch
  // blocks carry filler the failure usually does not need).  Label lines
  // whose branch survives make the candidate unassemblable, which the
  // predicate reports as "not failing" — they stay put automatically.
  for (std::size_t c = 0; c < spec.chunks.size(); ++c) {
    std::vector<std::string> lines;
    std::istringstream is(spec.chunks[c]);
    for (std::string l; std::getline(is, l);) lines.push_back(l + "\n");
    if (lines.size() <= 1) continue;
    for (std::size_t i = lines.size(); i-- > 0;) {
      if (lines.size() == 1) break;
      std::vector<std::string> fewer = lines;
      fewer.erase(fewer.begin() + static_cast<long>(i));
      ProgramSpec cand = spec;
      std::string joined;
      for (const std::string& l : fewer) joined += l;
      cand.chunks[c] = joined;
      ++st.probes;
      if (still_fails(cand)) {
        spec = std::move(cand);
        lines = std::move(fewer);
      }
    }
  }

  st.final_chunks = spec.chunks.size();
  st.final_instructions = spec.body_instructions();
  return spec;
}

}  // namespace la::fuzz
