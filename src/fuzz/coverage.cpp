#include "fuzz/coverage.hpp"

#include <bit>
#include <cmath>
#include <sstream>

namespace la::fuzz {

u32 metric_bucket_bit(double value) {
  if (!(value > 0.0)) return 0;  // zero/negative/NaN: no signal
  const int b = 1 + static_cast<int>(std::floor(std::log2(value)));
  return 1u << (b > 31 ? 31 : b);
}

void add_metric_features(CoverageSample& sample, const std::string& prefix,
                         const metrics::Snapshot& snap) {
  for (const auto& [name, value] : snap.values) {
    const u32 bit = metric_bucket_bit(value);
    if (bit) sample.metric_buckets[prefix + name] |= bit;
  }
}

void CoverageObserver::on_step(const cpu::StepResult& r) {
  if (r.annulled) {
    sample_.annulled_seen = true;
    return;
  }
  if (r.trapped) sample_.traps.set(r.tt);
  if (r.ins.valid()) {
    sample_.mnemonics.set(static_cast<std::size_t>(r.ins.mn));
  }
}

std::size_t CoverageMap::count_new(const CoverageSample& sample,
                                   bool commit) {
  std::size_t fresh = 0;
  fresh += (sample.mnemonics & ~seen_.mnemonics).count();
  fresh += (sample.traps & ~seen_.traps).count();
  if (sample.annulled_seen && !seen_.annulled_seen) ++fresh;
  for (const auto& [name, mask] : sample.metric_buckets) {
    const auto it = seen_.metric_buckets.find(name);
    const u32 old = it == seen_.metric_buckets.end() ? 0u : it->second;
    fresh += static_cast<std::size_t>(std::popcount(mask & ~old));
  }
  if (commit) {
    seen_.mnemonics |= sample.mnemonics;
    seen_.traps |= sample.traps;
    seen_.annulled_seen = seen_.annulled_seen || sample.annulled_seen;
    for (const auto& [name, mask] : sample.metric_buckets) {
      seen_.metric_buckets[name] |= mask;
    }
    features_ += fresh;
  }
  return fresh;
}

std::size_t CoverageMap::merge(const CoverageSample& sample) {
  return count_new(sample, true);
}

std::size_t CoverageMap::novelty(const CoverageSample& sample) const {
  // count_new(commit=false) does not mutate; cast away const locally.
  return const_cast<CoverageMap*>(this)->count_new(sample, false);
}

std::string CoverageMap::summary() const {
  std::ostringstream os;
  os << features_ << " features (" << seen_.mnemonics.count()
     << " mnemonics, " << seen_.traps.count() << " trap types, "
     << seen_.metric_buckets.size() << " metrics)";
  return os.str();
}

}  // namespace la::fuzz
