// Coverage feedback for the differential fuzzer.
//
// Two feature families:
//   * architectural bitmaps — which mnemonics retired, which trap types
//     were taken, whether an annulled delay slot was observed.  Collected
//     by CoverageObserver riding the functional model's observer slot.
//   * metric buckets — every counter of a PR-1 MetricsRegistry snapshot,
//     bucketed by power of two (the Histogram convention).  A program
//     that pushes `cache.d.write_misses` from the 8-bucket into the
//     64-bucket found new machine behaviour even if it retired the same
//     instruction set.
//
// CoverageMap accumulates features across the whole campaign; merge()
// returns how many features an input contributed, which is the corpus
// admission signal.
#pragma once

#include <bitset>
#include <cstddef>
#include <map>
#include <string>

#include "common/metrics.hpp"
#include "cpu/integer_unit.hpp"
#include "isa/isa.hpp"

namespace la::fuzz {

/// Features observed during one differential execution.
struct CoverageSample {
  std::bitset<static_cast<std::size_t>(isa::Mnemonic::kCount)> mnemonics;
  std::bitset<256> traps;
  bool annulled_seen = false;
  /// Metric name -> bitmask of log2 buckets the value landed in.
  std::map<std::string, u32> metric_buckets;
};

/// Log2 bucket of a sampled counter value; 0 values carry no signal and
/// return 0 (no bit).  Value v > 0 maps to bit (1 + floor(log2(v))),
/// clamped to bit 31.
u32 metric_bucket_bit(double value);

/// Fold every scalar of a registry snapshot into the sample, with `prefix`
/// namespacing the source (bare pipeline vs. full system runs count as
/// different feature spaces).
void add_metric_features(CoverageSample& sample, const std::string& prefix,
                         const metrics::Snapshot& snap);

/// ExecObserver that fills the architectural bitmaps of a sample.
class CoverageObserver final : public cpu::ExecObserver {
 public:
  explicit CoverageObserver(CoverageSample& sample) : sample_(sample) {}
  void on_step(const cpu::StepResult& r) override;

 private:
  CoverageSample& sample_;
};

/// Campaign-wide accumulated coverage.
class CoverageMap {
 public:
  /// Fold a sample in; returns the number of features not seen before.
  std::size_t merge(const CoverageSample& sample);
  /// Would merge() report anything new, without folding it in?
  std::size_t novelty(const CoverageSample& sample) const;

  std::size_t feature_count() const { return features_; }
  std::size_t mnemonic_count() const { return seen_.mnemonics.count(); }
  std::size_t trap_count() const { return seen_.traps.count(); }

  /// One-line human summary for fuzzer progress output.
  std::string summary() const;

 private:
  std::size_t count_new(const CoverageSample& sample, bool commit);

  CoverageSample seen_;
  std::size_t features_ = 0;
};

}  // namespace la::fuzz
