#include "fuzz/fuzzer.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

namespace la::fuzz {
namespace {

namespace fs = std::filesystem;

std::string write_text(const fs::path& path, const std::string& text) {
  std::ofstream os(path, std::ios::binary);
  os << text;
  return path.string();
}

}  // namespace

Fuzzer::Fuzzer(const FuzzConfig& cfg)
    : cfg_(cfg),
      rng_(cfg.seed ^ 0x6c66757a7a5f3141ull),  // "lfuzz_1A"
      mutator_(cfg.seed),
      fresh_seed_state_(cfg.seed) {}

std::vector<cpu::PipelineConfig> Fuzzer::config_rotation() {
  std::vector<cpu::PipelineConfig> cfgs;
  cfgs.emplace_back();  // default caches, 8 windows

  cpu::PipelineConfig tiny;
  tiny.icache.size_bytes = 128;
  tiny.icache.line_bytes = 16;
  tiny.dcache.size_bytes = 128;
  tiny.dcache.line_bytes = 16;
  cfgs.push_back(tiny);

  cpu::PipelineConfig nocache;
  nocache.icache_enabled = false;
  nocache.dcache_enabled = false;
  nocache.write_buffer_depth = 0;
  cfgs.push_back(nocache);

  cpu::PipelineConfig wback;
  wback.dcache.write_policy = cache::WritePolicy::kWriteBackAllocate;
  cfgs.push_back(wback);

  cpu::PipelineConfig few;
  few.cpu.nwindows = 3;
  cfgs.push_back(few);

  // Host fast paths off (default geometry): every campaign continuously
  // cross-checks the perf layer against the plain decode/per-step code.
  // With the block engine off too this is exactly the pre-perf-work
  // interpreter.
  cpu::PipelineConfig slow;
  slow.host_fast_paths = false;
  slow.cpu.host_decode_cache = false;
  slow.cpu.host_block_engine = false;
  cfgs.push_back(slow);

  // Block translation engine off, fast paths otherwise on: isolates the
  // block tier as a rotation axis of its own.
  cpu::PipelineConfig noblock;
  noblock.cpu.host_block_engine = false;
  cfgs.push_back(noblock);

  return cfgs;
}

ProgramSpec Fuzzer::next_input(const cpu::PipelineConfig& pcfg,
                               ProgramMode mode) {
  // Mutate/crossover corpus material most of the time once any exists;
  // keep a steady stream of fresh programs so coverage is not hostage to
  // the first few corpus entries.
  if (!corpus_.empty() && rng_.chance(0.6)) {
    ++stats_.mutated_inputs;
    last_was_mutant_ = true;
    const ProgramSpec& a = corpus_.pick(rng_).spec;
    if (corpus_.size() >= 2 && rng_.chance(0.25)) {
      const ProgramSpec& b = corpus_.pick(rng_).spec;
      if (b.opts.mode == a.opts.mode) {
        return mutator_.mutate(mutator_.crossover(a, b));
      }
    }
    return mutator_.mutate(a);
  }

  ++stats_.fresh_inputs;
  last_was_mutant_ = false;
  GenOptions opts;
  opts.mode = mode;
  opts.instructions = cfg_.program_chunks;
  // Prologue must initialize at least as many windows as the deepest
  // configuration in the rotation uses.
  opts.nwindows = std::max(8u, pcfg.cpu.nwindows);
  opts.seed = splitmix64(fresh_seed_state_);
  ProgramGenerator gen(opts.seed);
  return gen.generate(opts);
}

int Fuzzer::run() {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const bool timed = cfg_.budget_secs > 0;
  // No budget at all would loop forever; fall back to a short burst.
  const u64 max_iters =
      cfg_.max_iterations ? cfg_.max_iterations : (timed ? ~0ull : 64);

  if (!cfg_.corpus_dir.empty()) {
    const std::size_t loaded = corpus_.load(cfg_.corpus_dir);
    if (loaded) {
      note("loaded " + std::to_string(loaded) + " corpus entries from " +
           cfg_.corpus_dir);
      // Seed campaign coverage from the loaded entries so novelty is
      // measured against what the corpus already explored.
      for (std::size_t i = 0; i < corpus_.size(); ++i) {
        DiffOptions opt;
        opt.pipeline = config_rotation().front();
        if (cfg_.disable_fast_paths) {
          opt.pipeline.host_fast_paths = false;
          opt.pipeline.cpu.host_decode_cache = false;
          opt.pipeline.cpu.host_block_engine = false;
        }
        if (cfg_.disable_block_engine) {
          opt.pipeline.cpu.host_block_engine = false;
        }
        opt.with_system = cfg_.with_system;
        opt.inject_subx_bug = cfg_.inject_subx_bug;
        DifferentialRunner runner(opt);
        DiffOutcome o = runner.run(corpus_.at(i).spec);
        ++stats_.executions;
        if (o.diverged) {
          handle_divergence(corpus_.at(i).spec, o, opt);
          if (cfg_.stop_on_divergence) return finish();
        } else {
          coverage_.merge(o.coverage);
        }
      }
    }
  }

  std::vector<cpu::PipelineConfig> rotation = config_rotation();
  if (cfg_.disable_fast_paths) {
    for (cpu::PipelineConfig& c : rotation) {
      c.host_fast_paths = false;
      c.cpu.host_decode_cache = false;
      c.cpu.host_block_engine = false;
    }
  }
  if (cfg_.disable_block_engine) {
    for (cpu::PipelineConfig& c : rotation) c.cpu.host_block_engine = false;
  }
  for (u64 iter = 0; iter < max_iters; ++iter) {
    if (timed) {
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::seconds>(Clock::now() -
                                                           start);
      if (elapsed.count() >= cfg_.budget_secs) break;
    }
    ++stats_.iterations;

    const cpu::PipelineConfig& pcfg = rotation[iter % rotation.size()];
    const bool system_turn = cfg_.with_system && cfg_.system_every != 0 &&
                             (iter % cfg_.system_every) ==
                                 (cfg_.system_every - 1);
    const ProgramMode mode =
        system_turn ? ProgramMode::kSystem : ProgramMode::kCore;

    ProgramSpec spec = next_input(pcfg, mode);

    DiffOptions opt;
    opt.pipeline = pcfg;
    opt.with_system = cfg_.with_system;
    opt.inject_subx_bug = cfg_.inject_subx_bug;
    DifferentialRunner runner(opt);
    DiffOutcome outcome = runner.run(spec);
    ++stats_.executions;

    if (!outcome.asm_ok) {
      // Only mutants can fail to assemble; fresh programs doing so is a
      // generator bug worth surfacing loudly.
      if (last_was_mutant_) {
        ++stats_.rejected_mutants;
      } else {
        note("generator produced unassemblable program (seed " +
             std::to_string(spec.opts.seed) + "): " + outcome.detail);
      }
      continue;
    }

    if (outcome.diverged) {
      handle_divergence(spec, std::move(outcome), opt);
      if (cfg_.stop_on_divergence) break;
      continue;
    }

    if (!outcome.completed) ++stats_.incomplete_runs;
    const std::size_t novelty = coverage_.merge(outcome.coverage);
    if (novelty > 0) {
      corpus_.add(std::move(spec), novelty);
      ++stats_.corpus_admitted;
    }

    if (cfg_.verbose && stats_.iterations % 25 == 0) {
      note("iter " + std::to_string(stats_.iterations) + ": corpus " +
           std::to_string(corpus_.size()) + ", " + coverage_.summary());
    }
  }

  return finish();
}

int Fuzzer::finish() {
  if (!cfg_.corpus_dir.empty()) {
    const std::size_t written = corpus_.save(cfg_.corpus_dir);
    if (written) {
      note("saved " + std::to_string(written) + " new corpus files to " +
           cfg_.corpus_dir);
    }
  }
  note("done: " + std::to_string(stats_.iterations) + " iterations, " +
       std::to_string(stats_.executions) + " executions, corpus " +
       std::to_string(corpus_.size()) + ", " +
       std::to_string(stats_.divergences) + " divergences; " +
       coverage_.summary());
  return failures_.empty() ? 0 : 1;
}

void Fuzzer::handle_divergence(const ProgramSpec& spec, DiffOutcome outcome,
                               const DiffOptions& opt) {
  ++stats_.divergences;
  note("DIVERGENCE (" + outcome.leg + " leg): " + outcome.detail);

  FuzzFailure fail;
  fail.spec = spec;
  fail.minimized = spec;
  fail.outcome = std::move(outcome);

  if (cfg_.minimize_failures) {
    const std::string want_leg = fail.outcome.leg;
    const auto still_fails = [&](const ProgramSpec& cand) {
      DifferentialRunner runner(opt);
      DiffOutcome o = runner.run(cand);
      ++stats_.executions;
      return o.asm_ok && o.diverged && o.leg == want_leg;
    };
    fail.minimized = minimize(spec, still_fails, &fail.min_stats);
    note("minimized " + std::to_string(fail.min_stats.initial_chunks) +
         " -> " + std::to_string(fail.min_stats.final_chunks) +
         " chunks (" + std::to_string(fail.min_stats.final_instructions) +
         " body instructions, " + std::to_string(fail.min_stats.probes) +
         " probes)");
  }

  if (!cfg_.out_dir.empty()) {
    std::error_code ec;
    fs::create_directories(cfg_.out_dir, ec);
    const std::string tag =
        "fail-" + std::to_string(failures_.size()) + "-" +
        std::to_string(fnv1a64(fail.spec.render()) & 0xffffffull);
    const fs::path base = fs::path(cfg_.out_dir) / tag;
    fail.repro_path = write_text(base.string() + ".s", fail.spec.render());
    write_text(base.string() + ".lprog", serialize_spec(fail.spec));
    if (!fail.outcome.flight_dump.empty()) {
      write_text(base.string() + ".flight.json", fail.outcome.flight_dump);
    }
    if (cfg_.minimize_failures) {
      fail.minimized_path =
          write_text(base.string() + ".min.s", fail.minimized.render());
      write_text(base.string() + ".min.lprog",
                 serialize_spec(fail.minimized));
    }
    note("repro written to " + fail.repro_path);
  }

  failures_.push_back(std::move(fail));
}

void Fuzzer::note(const std::string& line) const {
  if (cfg_.verbose) std::cerr << "[lfuzz] " << line << "\n";
}

}  // namespace la::fuzz
