// Random SPARC V8 program generation for differential testing.
//
// Extracted from tests/property/cpu_equivalence_test.cpp so the property
// suite, the lfuzz coverage-guided fuzzer, the mutator, and the minimizer
// all share ONE generator instead of drifting copies.
//
// A generated program is kept structured (a ProgramSpec) rather than flat
// text: the prologue/epilogue are derived from the options and the body is
// a list of independent *chunks* (one emit decision each, possibly
// multi-line — a branch and its local label travel together).  Mutation
// and delta-debugging operate on chunks; render() turns a spec back into
// assemblable source.
//
// Two modes:
//   * kCore   — the classic equivalence workload: traps are allowed
//               (div-zero, window wrap with WIM=0) and the program ends in
//               a self-branch.  Runs on the bare models only.
//   * kSystem — a program safe to boot-load-run on the full LiquidSystem:
//               a prologue normalizes PSR/WIM/Y and writes every register
//               of every window (the boot ROM leaves residue the bare
//               models' reset state does not have), the body is trap-free
//               (guarded divides, aligned accesses), and the epilogue
//               jumps back to the boot ROM polling loop so leon_ctrl
//               detects completion.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace la::fuzz {

/// Where generated programs live: the canonical user-program load address
/// (mem::map::kUserProgramBase) so the same image runs on the bare models
/// and on the full system.
inline constexpr Addr kProgramBase = 0x40000100;
/// Size of the scratch data region every program addresses through %g7.
inline constexpr u32 kDataBytes = 512;
/// The boot ROM polling loop a finished system-mode program jumps to.
inline constexpr Addr kCheckReadyAddr = 0x40;

enum class ProgramMode : u8 {
  kCore = 0,    // bare-model differential (traps allowed)
  kSystem = 1,  // full-system differential (trap-free, normalized entry)
};

struct GenOptions {
  ProgramMode mode = ProgramMode::kCore;
  /// Number of body chunks to emit (one random decision each).
  int instructions = 300;
  /// Windows the kSystem prologue walk initializes; must be >= the
  /// nwindows of every configuration the program will run under.
  unsigned nwindows = 8;
  u64 seed = 1;

  bool allow_traps() const { return mode == ProgramMode::kCore; }
};

/// A structured generated program: options + body chunks.
struct ProgramSpec {
  GenOptions opts;
  std::vector<std::string> chunks;

  /// Full assemblable source (prologue + chunks + epilogue + data).
  std::string render() const;
  /// Instruction lines in the body chunks (labels/blank lines excluded).
  int body_instructions() const;
};

/// Label marking the end of the body.  Bare-model runs halt here; in
/// kSystem mode the instruction at this label jumps to the boot ROM.
inline constexpr const char* kDoneSymbol = "done";

class ProgramGenerator {
 public:
  explicit ProgramGenerator(u64 seed) : rng_(seed), seed_(seed) {}

  /// Generate a fresh program.  `opts.seed` is overwritten with this
  /// generator's seed so the spec is self-describing.
  ProgramSpec generate(GenOptions opts);

  /// One random body chunk under `opts` — also used by the mutator to
  /// splice fresh material into an existing spec.  `idx` uniquifies any
  /// local labels the chunk defines.
  std::string emit_chunk(const GenOptions& opts, int idx);

 private:
  std::string reg();
  std::string even_reg();
  std::string op2();

  Rng rng_;
  u64 seed_;
};

/// Render helpers shared with the corpus loader (which re-renders specs
/// parsed from disk).
std::string render_prologue(const GenOptions& opts);
std::string render_epilogue(ProgramMode mode);

}  // namespace la::fuzz
