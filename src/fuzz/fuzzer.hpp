// The coverage-guided differential fuzzing loop behind the lfuzz CLI.
//
// Each iteration: pick a pipeline configuration from a rotation, pick an
// input (fresh generation, corpus mutation, or corpus crossover), run the
// three-way differential, and either (a) record + minimize a divergence,
// or (b) admit the input to the corpus when it contributed coverage.
//
// Deterministic for a given (seed, budget in iterations); wall-clock
// budgets trade that determinism for steady CI smoke runs.
#pragma once

#include <string>
#include <vector>

#include "fuzz/corpus.hpp"
#include "fuzz/differential.hpp"
#include "fuzz/minimizer.hpp"
#include "fuzz/mutator.hpp"

namespace la::fuzz {

struct FuzzConfig {
  u64 seed = 1;
  /// Stop conditions; 0 disables each.  At least one must be set.
  int budget_secs = 0;
  u64 max_iterations = 0;
  /// Stop at the first divergence (lfuzz default; a soak run may prefer
  /// to keep going and collect several).
  bool stop_on_divergence = true;
  bool minimize_failures = true;
  bool with_system = true;
  /// Generate a kSystem-mode program every Nth iteration (the full-node
  /// leg costs ~10x a bare run); 0 disables system-mode programs.
  unsigned system_every = 4;
  int program_chunks = 120;
  /// Load/save corpus here when non-empty.
  std::string corpus_dir;
  /// Failing repros (original + minimized .s) land here.
  std::string out_dir = "lfuzz-out";
  /// Self-check fault injection (see DiffOptions::inject_subx_bug).
  bool inject_subx_bug = false;
  /// Force every rotation entry to run with the host fast paths off
  /// (predecode cache, cache-hit probes, batched system run loop).  The
  /// default rotation already includes one fast-off configuration; this
  /// turns the whole campaign into a slow-path baseline for A/B runs.
  bool disable_fast_paths = false;
  /// Force every rotation entry to run with the block translation engine
  /// off.  The default rotation already includes one block-off
  /// configuration (the slow entry); this pins the whole campaign to the
  /// per-step interpreter for A/B runs against the block tier.
  bool disable_block_engine = false;
  /// Progress lines to stderr.
  bool verbose = false;
};

struct FuzzFailure {
  ProgramSpec spec;       // as found
  ProgramSpec minimized;  // == spec when minimization is off
  DiffOutcome outcome;
  MinimizeStats min_stats;
  std::string repro_path;      // written .s, empty if out_dir disabled
  std::string minimized_path;
};

struct FuzzStats {
  u64 iterations = 0;
  u64 executions = 0;        // differential runs, minimization included
  u64 fresh_inputs = 0;
  u64 mutated_inputs = 0;
  u64 rejected_mutants = 0;  // did not assemble
  u64 incomplete_runs = 0;   // step-budget exhaustion (not divergence)
  u64 corpus_admitted = 0;
  u64 divergences = 0;
};

class Fuzzer {
 public:
  explicit Fuzzer(const FuzzConfig& cfg);

  /// Run the campaign.  Returns 0 when no divergence was found, 1
  /// otherwise (the lfuzz exit code).
  int run();

  const FuzzStats& stats() const { return stats_; }
  const CoverageMap& coverage() const { return coverage_; }
  const Corpus& corpus() const { return corpus_; }
  const std::vector<FuzzFailure>& failures() const { return failures_; }

  /// The pipeline-configuration rotation every campaign cycles through
  /// (the equivalence property test's cache/window configurations, plus
  /// host-fast-paths-off and block-engine-off entries).
  static std::vector<cpu::PipelineConfig> config_rotation();

 private:
  ProgramSpec next_input(const cpu::PipelineConfig& pcfg, ProgramMode mode);
  void handle_divergence(const ProgramSpec& spec, DiffOutcome outcome,
                         const DiffOptions& opt);
  int finish();
  void note(const std::string& line) const;

  FuzzConfig cfg_;
  Rng rng_;
  Mutator mutator_;
  Corpus corpus_;
  CoverageMap coverage_;
  FuzzStats stats_;
  std::vector<FuzzFailure> failures_;
  u64 fresh_seed_state_ = 0;  // initialized from cfg_.seed in the ctor
  bool last_was_mutant_ = false;
};

}  // namespace la::fuzz
