#include "fuzz/differential.hpp"

#include <memory>
#include <sstream>

#include "bus/ahb.hpp"
#include "common/metrics.hpp"
#include "cpu/flat_memory.hpp"
#include "cpu/integer_unit.hpp"
#include "ctrl/client.hpp"
#include "isa/registers.hpp"
#include "mem/sram.hpp"
#include "sasm/assembler.hpp"
#include "sim/liquid_system.hpp"

namespace la::fuzz {
namespace {

constexpr Addr kMemBase = 0x40000000;
constexpr u32 kMemSize = 1u << 20;

bool all_cacheable(Addr) { return true; }

std::string hex32(u32 v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", v);
  return buf;
}

/// Bridge the bare pipeline's counters into a registry under the same
/// names LiquidSystem::register_metrics uses, so coverage features line
/// up across bare and full-system runs.
void bridge_pipeline_metrics(metrics::MetricsRegistry& reg,
                             cpu::LeonPipeline& pipe) {
  const auto fn = [&reg](const std::string& name, auto getter) {
    reg.register_fn(name,
                    [getter] { return static_cast<double>(getter()); });
  };
  const cpu::PipelineStats& st = pipe.stats();
  fn("cpu.instructions", [&st] { return st.instructions; });
  fn("cpu.annulled", [&st] { return st.annulled; });
  fn("cpu.traps", [&st] { return st.traps; });
  fn("cpu.cycles", [&st] { return st.cycles; });
  fn("pipeline.stalls.icache", [&st] { return st.icache_stall; });
  fn("pipeline.stalls.dcache", [&st] { return st.dcache_stall; });
  fn("pipeline.stalls.store_buffer", [&st] { return st.store_stall; });
  fn("cpu.mix.loads", [&st] { return st.loads; });
  fn("cpu.mix.stores", [&st] { return st.stores; });
  fn("cpu.mix.branches", [&st] { return st.branches; });
  fn("cpu.mix.taken_branches", [&st] { return st.taken_branches; });
  fn("cpu.mix.calls", [&st] { return st.calls; });
  fn("cpu.mix.muldiv", [&st] { return st.muldiv; });
  const auto cache_fns = [&fn](const std::string& p, const cache::Cache& c) {
    const auto& cs = c.stats();
    fn(p + ".read_hits", [&cs] { return cs.read_hits; });
    fn(p + ".read_misses", [&cs] { return cs.read_misses; });
    fn(p + ".write_hits", [&cs] { return cs.write_hits; });
    fn(p + ".write_misses", [&cs] { return cs.write_misses; });
    fn(p + ".evictions", [&cs] { return cs.evictions; });
    fn(p + ".writebacks", [&cs] { return cs.writebacks; });
  };
  cache_fns("cache.i", pipe.icache());
  cache_fns("cache.d", pipe.dcache());
}

std::string diff_regs(const cpu::CpuState& a, const cpu::CpuState& b,
                      unsigned skip_window, bool skip_poll_locals) {
  for (unsigned w = 0; w < a.regs.nwindows(); ++w) {
    for (u8 r = 0; r < 32; ++r) {
      if (skip_poll_locals && w == skip_window && r >= 16 && r <= 18) {
        continue;  // %l0-%l2: ROM poll loop scratch
      }
      const u32 av = a.regs.get(w, r);
      const u32 bv = b.regs.get(w, r);
      if (av != bv) {
        std::ostringstream os;
        os << "window " << w << " " << isa::reg_name(r) << ": "
           << hex32(av) << " vs " << hex32(bv);
        return os.str();
      }
    }
  }
  return "";
}

}  // namespace

std::string compare_full(const cpu::CpuState& a, const cpu::CpuState& b) {
  if (a.error_mode != b.error_mode) {
    return std::string("error_mode: ") + (a.error_mode ? "yes" : "no") +
           " vs " + (b.error_mode ? "yes" : "no");
  }
  if (a.pc != b.pc) return "pc: " + hex32(a.pc) + " vs " + hex32(b.pc);
  if (a.npc != b.npc) return "npc: " + hex32(a.npc) + " vs " + hex32(b.npc);
  if (a.psr.pack() != b.psr.pack()) {
    return "psr: " + hex32(a.psr.pack()) + " vs " + hex32(b.psr.pack());
  }
  if (a.y != b.y) return "y: " + hex32(a.y) + " vs " + hex32(b.y);
  if (a.wim != b.wim) return "wim: " + hex32(a.wim) + " vs " + hex32(b.wim);
  if (a.tbr != b.tbr) return "tbr: " + hex32(a.tbr) + " vs " + hex32(b.tbr);
  return diff_regs(a, b, 0, false);
}

std::string compare_system(const cpu::CpuState& a, const cpu::CpuState& c) {
  if (c.error_mode) {
    return "system leg in error mode (tt=" +
           std::string(isa::trap_name(c.tbr_tt())) + ")";
  }
  // icc (bits 23:20) belongs to the polling loop's cmp after completion.
  constexpr u32 kIccMask = 0xfu << 20;
  if ((a.psr.pack() & ~kIccMask) != (c.psr.pack() & ~kIccMask)) {
    return "psr (icc masked): " + hex32(a.psr.pack() & ~kIccMask) + " vs " +
           hex32(c.psr.pack() & ~kIccMask);
  }
  if (a.y != c.y) return "y: " + hex32(a.y) + " vs " + hex32(c.y);
  if (a.wim != c.wim) return "wim: " + hex32(a.wim) + " vs " + hex32(c.wim);
  if (a.tbr != c.tbr) return "tbr: " + hex32(a.tbr) + " vs " + hex32(c.tbr);
  return diff_regs(a, c, a.psr.cwp, true);
}

DiffOutcome DifferentialRunner::run(const ProgramSpec& spec) {
  return run_source(spec.render(), spec.opts.mode);
}

DiffOutcome DifferentialRunner::run_source(const std::string& source,
                                           ProgramMode mode) {
  DiffOutcome out;

  sasm::Assembler as;
  sasm::AsmResult ar = as.assemble(source);
  if (!ar.ok) {
    out.detail = "assembly failed: " + ar.error_text();
    return out;
  }
  out.asm_ok = true;
  const sasm::Image& img = ar.image;

  Addr done = 0;
  try {
    done = img.symbol(kDoneSymbol);
  } catch (const std::exception&) {
    out.detail = "program has no 'done' symbol";
    return out;
  }
  Addr data = img.base;
  try {
    data = img.symbol("data");
  } catch (const std::exception&) {
    // Replayed hand-written repro without a data region: compare the
    // whole image footprint instead.
  }

  const u64 budget = opt_.max_steps
                         ? opt_.max_steps
                         : 4096 + 16u * (img.data.size() / 4);

  // ---- leg A: functional reference --------------------------------------
  cpu::CpuConfig acfg = opt_.pipeline.cpu;
  acfg.quirk_subx_no_carry = opt_.inject_subx_bug;
  cpu::FlatMemory flat(kMemSize, kMemBase);
  flat.load(img.base, img.data);
  cpu::IntegerUnit iu(acfg, flat);
  CoverageObserver obs(out.coverage);
  iu.set_observer(&obs);
  iu.reset(img.entry);
  out.steps = iu.run(budget, done);
  const cpu::CpuState& a = iu.state();

  const bool halted = a.pc == done || a.error_mode;
  if (!halted) {
    out.detail = "reference model exhausted the step budget";
    return out;
  }
  out.completed = true;
  if (a.error_mode) out.coverage.traps.set(a.tbr_tt());

  const Addr cmp_end = std::min<Addr>(data + kDataBytes, img.end());

  // ---- leg A': functional model through the block translation engine ----
  // Leg A carries the coverage observer, which forces the per-step path;
  // this leg reruns the identical config observerless so run() engages
  // the block engine, and must match leg A bit-for-bit (state, memory,
  // step and cycle counts).
  if (opt_.pipeline.cpu.host_block_engine) {
    cpu::FlatMemory bflat(kMemSize, kMemBase);
    bflat.load(img.base, img.data);
    cpu::IntegerUnit biu(acfg, bflat);
    biu.reset(img.entry);
    const u64 bsteps = biu.run(budget, done);
    const auto fail = [&out](std::string detail) {
      out.diverged = true;
      out.leg = "iu-block";
      out.detail = std::move(detail);
    };
    if (bsteps != out.steps) {
      fail("step counts: " + std::to_string(out.steps) + " vs " +
           std::to_string(bsteps));
      return out;
    }
    if (biu.cycle_count() != iu.cycle_count()) {
      fail("cycles: " + std::to_string(iu.cycle_count()) + " vs " +
           std::to_string(biu.cycle_count()));
      return out;
    }
    if (std::string d = compare_full(a, biu.state()); !d.empty()) {
      fail(std::move(d));
      return out;
    }
    for (Addr addr = data; addr + 4 <= cmp_end; addr += 4) {
      if (flat.word_at(addr) != bflat.word_at(addr)) {
        fail("memory at data+" + std::to_string(addr - data) + ": " +
             hex32(flat.word_at(addr)) + " vs " + hex32(bflat.word_at(addr)));
        return out;
      }
    }
  }

  // ---- leg B: timed pipeline on a bare bus ------------------------------
  Cycles clock = 0;
  mem::Sram sram(kMemBase, kMemSize);
  sram.backdoor_write(img.base, img.data);
  bus::AhbBus bus;
  bus.attach(kMemBase, kMemSize, &sram);
  cpu::LeonPipeline pipe(opt_.pipeline, bus, &clock, &all_cacheable);
  pipe.reset(img.entry);
  pipe.run(budget, done);
  // Write-back configurations: memory lags the cache; flush first so the
  // data-region comparison below sees the architectural contents.
  pipe.flush_caches();
  const cpu::CpuState& b = pipe.state();

  if (b.pc != done && !b.error_mode) {
    out.diverged = true;
    out.leg = "pipeline";
    out.detail = "pipeline leg exhausted the step budget at pc " +
                 hex32(b.pc) + " while the reference halted";
    return out;
  }
  if (std::string d = compare_full(a, b); !d.empty()) {
    out.diverged = true;
    out.leg = "pipeline";
    out.detail = d;
    return out;
  }
  for (Addr addr = data; addr + 4 <= cmp_end; addr += 4) {
    u64 bv = 0;
    if (!sram.debug_read(addr, 4, bv) ||
        flat.word_at(addr) != static_cast<u32>(bv)) {
      out.diverged = true;
      out.leg = "pipeline";
      out.detail = "memory at data+" + std::to_string(addr - data) + ": " +
                   hex32(flat.word_at(addr)) + " vs " +
                   hex32(static_cast<u32>(bv));
      return out;
    }
  }

  metrics::MetricsRegistry breg;
  bridge_pipeline_metrics(breg, pipe);
  add_metric_features(out.coverage, "pipe.", breg.snapshot());

  // ---- leg C: the full node, boot-load-run over the control network ----
  if (mode == ProgramMode::kSystem && opt_.with_system && !a.error_mode) {
    if (!sys_) {
      sim::SystemConfig scfg;
      scfg.pipeline = opt_.pipeline;
      // Slow-path rotation entries exercise the per-step system loop too.
      scfg.fast_run_loop = opt_.pipeline.host_fast_paths;
      // The disconnect switch drops CPU writes once leon_ctrl flags the
      // run done, so a write-back data cache could lose dirty lines to a
      // post-completion eviction; the system leg always runs
      // write-through.
      scfg.pipeline.dcache.write_policy =
          cache::WritePolicy::kWriteThroughNoAllocate;
      scfg.flight_recorder = opt_.flight_recorder;
      sys_ = std::make_unique<sim::LiquidSystem>(scfg);
      sys_->run(300);  // let the boot ROM reach its polling loop
      post_boot_ = sys_->snapshot();
    } else {
      // Deep replay: every program starts from the identical post-boot
      // state the first one saw, without paying construction + boot again.
      const bool restored = sys_->restore(post_boot_);
      (void)restored;  // same config by construction; cannot mismatch
      if (auto* fr = sys_->flight_recorder()) {
        fr->clear();  // host-side ring is not snapshot state; no stale
                      // events from the previous program in a post-mortem
      }
    }
    sim::LiquidSystem& node = *sys_;
    // A divergence report is only as good as its post-mortem: attach the
    // node's recent history whenever this leg is the one that failed.
    const auto black_box = [&](DiffOutcome& o) {
      if (node.flight_recorder() != nullptr) {
        o.flight_dump = node.take_flight_dump("divergence");
      }
    };
    ctrl::LiquidClient client(node);
    if (!client.run_program(img, opt_.system_max_steps)) {
      out.diverged = true;
      out.leg = "system";
      out.detail = node.cpu().state().error_mode
                       ? "system leg entered error mode (tt=" +
                             std::string(isa::trap_name(
                                 node.cpu().state().tbr_tt())) +
                             ")"
                       : "system leg never reported the program done";
      black_box(out);
      return out;
    }
    // Completion disconnected the CPU; reconnect so a cache flush can
    // land before the architectural memory comparison.
    node.disconnect().set_connected(true);
    node.cpu().flush_caches();

    if (std::string d = compare_system(a, node.cpu().state()); !d.empty()) {
      out.diverged = true;
      out.leg = "system";
      out.detail = d;
      black_box(out);
      return out;
    }
    for (Addr addr = data; addr + 4 <= cmp_end; addr += 4) {
      u64 cv = 0;
      if (!node.sram().debug_read(addr, 4, cv) ||
          flat.word_at(addr) != static_cast<u32>(cv)) {
        out.diverged = true;
        out.leg = "system";
        out.detail = "memory at data+" + std::to_string(addr - data) +
                     ": " + hex32(flat.word_at(addr)) + " vs " +
                     hex32(static_cast<u32>(cv));
        black_box(out);
        return out;
      }
    }
    // Spot-check the protocol read path too: divergence here means the
    // readback/loader layers disagree with the memory they front.
    if (data + 64 <= cmp_end) {
      const auto words = client.read_memory(data, 16);
      if (!words) {
        out.diverged = true;
        out.leg = "system";
        out.detail = "read_memory over the control network failed";
        black_box(out);
        return out;
      }
      for (u16 i = 0; i < 16; ++i) {
        if ((*words)[i] != flat.word_at(data + 4u * i)) {
          out.diverged = true;
          out.leg = "system";
          out.detail = "protocol readback at data+" + std::to_string(4 * i) +
                       ": " + hex32(flat.word_at(data + 4u * i)) + " vs " +
                       hex32((*words)[i]);
          black_box(out);
          return out;
        }
      }
    }
    add_metric_features(out.coverage, "sys.", node.metrics_snapshot());
  }

  return out;
}

}  // namespace la::fuzz
