// Wire form of a farm job: the payload of a kSubmit frame.
//
// A remote tenant describes the architecture point it wants (the paper's
// algorithm-on-demand request), ships the program image, and names the
// result window to read back.  The gateway lowers this onto a FarmJob;
// everything else on the job (owner, ids, trace) comes from the session
// and the frame header, never from the tenant-controlled payload.
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "liquid/arch_config.hpp"
#include "sasm/image.hpp"

namespace la::gate {

/// Program images above this refuse to parse (tenants don't get to make
/// the gateway buffer megabytes; SRAM is 1 MB and real jobs are kilobytes).
inline constexpr std::size_t kMaxJobImageBytes = 24 * 1024;

struct JobWire {
  liquid::ArchConfig config;
  sasm::Image program;  // base, entry, data (symbols do not travel)
  Addr result_addr = 0;
  u16 result_words = 0;

  Bytes serialize() const;

  /// Total parse with the same guarantee as GateFrame::parse: any byte
  /// string yields a value or nullopt, no throws, no overreads.  Enum
  /// fields and the image size are range-checked; ArchConfig validity is
  /// the gateway's call (it rejects with the farm's typed error).
  static std::optional<JobWire> parse(std::span<const u8> payload);
};

}  // namespace la::gate
