// The UDP front door: one non-blocking socket, one epoll loop, and the
// multi-tenant control plane between remote clients and a LiquidFarm.
//
// This is Fig 1's "remote users" arrow made real: tenants reach the fleet
// over actual datagrams instead of in-process calls.  The gateway thread
// owns everything — socket, sessions, metrics — and alternates between
// draining the socket (admitting work) and draining the farm's result
// queue (pushing kResult frames back to wherever the tenant last spoke
// from).  Admission control is layered, cheapest check first:
//
//   auth token -> request-id dedup -> token bucket (rate) -> in-flight
//   cap -> lifetime quota -> the farm's own typed admission (queue
//   bound, per-owner cap)
//
// and every refusal is explicit: a kRetryAfter with a reason and a
// backoff hint for transient pressure, a kGateError code for terminal
// ones.  Nothing is ever silently dropped by the gateway itself — only
// the wire loses frames, and the client's retry loop (same request id)
// plus the dedup tables make that loss invisible: duplicate submits
// re-answer from cache instead of re-running, so jobs execute exactly
// once no matter how the datagrams fared.
//
// Exactly-once + ordering audit: each tenant's finished jobs get a dense
// completion_seq in farm delivery order.  The farm's per-owner FIFO makes
// that submission order, so a client that tracks its own submit order can
// assert end to end — over a lossy wire — that results are exactly-once
// and in order.  tools/lload does exactly that at fleet scale.
#pragma once

#include <atomic>
#include <thread>
#include <unordered_map>

#include "common/metrics.hpp"
#include "farm/farm.hpp"
#include "gate/tenant.hpp"
#include "gate/udp.hpp"

namespace la::gate {

struct GateConfig {
  std::string bind_ip = "127.0.0.1";
  u16 port = 0;  // 0 = kernel-assigned; read it back from addr()
  /// Pre-shared secret the tenant token table derives from.
  u64 secret_seed = 0x11ced'a11ce;
  /// Tenants minted into the directory (t0000..tNNNN).
  u32 tenants = 16;
  TenantQuota quota;
  /// Floor for farm-saturation retry hints (the farm's own estimate is
  /// taken when larger).
  u32 retry_floor_ms = 5;
  /// Sessions silent this long are garbage-collected; their in-flight
  /// results become orphans (counted, dropped).
  double session_idle_ms = 120'000;
  /// epoll wait per loop iteration: bounds result-push latency when the
  /// socket is quiet.
  int tick_ms = 1;
};

class Gateway {
 public:
  /// The farm must outlive the gateway.  Call start() to go live.
  Gateway(farm::LiquidFarm& farm, GateConfig cfg = {});
  ~Gateway();
  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Bind the socket and launch the loop thread; false when the bind
  /// fails (port taken, bad ip).
  bool start();

  /// Stop accepting, join the loop thread.  Idempotent.
  void stop();

  bool running() const { return running_; }
  /// The bound address (valid after start()).
  SockAddr addr() const { return addr_; }
  const TenantDirectory& tenants() const { return dir_; }

  /// The gate.* metrics, frozen.  Only meaningful after stop() — while
  /// the loop runs, the registry belongs to the gateway thread alone
  /// (live numbers travel the wire via kGateStats instead).
  metrics::Snapshot final_metrics() const { return metrics_.snapshot(); }

 private:
  struct PendingJob {
    u64 token = 0;       // session the result belongs to
    u64 request_id = 0;  // client's id, echoed on the kResult push
    u64 trace_id = 0;
    u64 span_id = 0;
    double accepted_ms = 0;  // gate.job_ms measures from here
  };

  void run_();
  void handle_datagram_(const SockAddr& from, const Bytes& data);
  void handle_hello_(const SockAddr& from, const GateFrame& f);
  void handle_submit_(const SockAddr& from, const GateFrame& f,
                      Session& session);
  void handle_poll_(const SockAddr& from, const GateFrame& f,
                    Session& session);
  void handle_stats_(const SockAddr& from, const GateFrame& f);
  void handle_bye_(const SockAddr& from, const GateFrame& f,
                   Session& session);
  void drain_farm_();
  void gc_sessions_(double now_ms);

  void send_(const SockAddr& to, GateKind kind, const GateFrame& req,
             Bytes payload);
  void send_error_(const SockAddr& to, const GateFrame& req, u8 code);
  void send_retry_(const SockAddr& to, const GateFrame& req, u8 reason,
                   u32 after_ms);

  farm::LiquidFarm& farm_;
  GateConfig cfg_;
  TenantDirectory dir_;
  UdpSocket sock_;
  Epoll epoll_;
  SockAddr addr_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};

  // Everything below is owned by the loop thread once start() returns.
  std::unordered_map<u64, Session> sessions_;  // token -> session
  std::unordered_map<u64, PendingJob> jobs_;   // farm job id -> origin
  u64 span_counter_ = 0;  // gateway-minted span ids for traced jobs
  metrics::MetricsRegistry metrics_;
};

}  // namespace la::gate
