// Thin RAII layer over the real sockets API: a non-blocking UDP socket,
// an epoll instance, and a WAN-emulated link that runs every datagram
// through the seeded net::Channel impairments before it touches the wire.
//
// This is the first place in the repo where bytes cross an actual kernel
// socket.  Everything stays loopback-friendly: bind to an ephemeral port,
// never block, surface EAGAIN as "nothing right now".
#pragma once

#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "net/wan_profile.hpp"

namespace la::gate {

/// Host-order socket address (ip as in net::make_ip).
struct SockAddr {
  u32 ip = 0;
  u16 port = 0;

  bool operator==(const SockAddr&) const = default;
  std::string to_string() const;
};

/// A non-blocking IPv4 UDP socket.  Move-only; closes on destruction.
class UdpSocket {
 public:
  UdpSocket() = default;
  ~UdpSocket();
  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// Create + bind (port 0 = kernel-assigned); false on any failure with
  /// errno preserved.  `ip` is dotted-quad ("127.0.0.1").
  bool bind(const std::string& ip, u16 port);

  /// Create without binding (client side; the kernel binds on first send).
  bool open();

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// The locally bound address (after bind()).
  SockAddr local_addr() const;

  /// Best-effort send; false only on hard errors (EAGAIN counts as sent-
  /// and-lost — this is UDP, the caller's retry logic owns reliability).
  bool send_to(const SockAddr& dst, std::span<const u8> data);

  /// One datagram if the kernel has one; nullopt on EAGAIN.
  std::optional<Bytes> recv_from(SockAddr* src = nullptr);

  void close();

 private:
  int fd_ = -1;
};

/// A level-triggered epoll wrapper over one or more fds.
class Epoll {
 public:
  Epoll();
  ~Epoll();
  Epoll(const Epoll&) = delete;
  Epoll& operator=(const Epoll&) = delete;

  bool valid() const { return fd_ >= 0; }
  bool add_read(int fd);
  /// True when at least one registered fd is readable within timeout_ms.
  bool wait_readable(int timeout_ms);

 private:
  int fd_ = -1;
};

/// One endpoint of an emulated wide-area path to a single peer: frames
/// pass through a seeded uplink Channel before sendto() and through a
/// downlink Channel after recvfrom(), so the exact impairment engine the
/// in-process tests use (drop/dup/reorder/corrupt/truncate/delay) applies
/// to real socket traffic.  Channel delays age by pump rounds: each
/// pump() / poll_recv() call is one round, so a caller that keeps polling
/// always makes progress.
class WanLink {
 public:
  WanLink(UdpSocket& sock, SockAddr peer, const net::WanProfile& profile)
      : sock_(sock), peer_(peer), up_(profile.uplink), down_(profile.downlink) {}

  /// Offer a frame to the (impaired) uplink and flush what's deliverable.
  void send(Bytes frame);

  /// Next frame off the (impaired) downlink, pumping the socket first.
  std::optional<Bytes> poll_recv();

  /// Age both directions one round and flush deliverable uplink frames.
  void pump();

  const net::Channel& uplink() const { return up_; }
  const net::Channel& downlink() const { return down_; }
  const SockAddr& peer() const { return peer_; }

 private:
  void drain_socket_();
  void flush_uplink_();

  UdpSocket& sock_;
  SockAddr peer_;
  net::Channel up_;
  net::Channel down_;
};

/// Milliseconds on the host monotonic clock (the gateway's time base for
/// token buckets and retry-after hints).
double steady_now_ms();

}  // namespace la::gate
