#include "gate/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace la::gate {

GateFrame make_request(GateKind kind, u64 token, u64 request_id,
                       Bytes payload, u64 trace_id, u64 span_id) {
  GateFrame f;
  f.kind = kind;
  f.token = token;
  f.request_id = request_id;
  f.trace_id = trace_id;
  f.span_id = span_id;
  f.payload = std::move(payload);
  return f;
}

GateClient::GateClient(ClientConfig cfg)
    : cfg_(std::move(cfg)), link_(sock_, cfg_.gateway, cfg_.wan) {
  sock_.open();
}

void GateClient::pump_(double wait_ms) {
  const double deadline = steady_now_ms() + wait_ms;
  for (;;) {
    bool got = false;
    while (auto bytes = link_.poll_recv()) {
      if (auto f = GateFrame::parse(*bytes)) {
        inbox_[f->request_id] = std::move(*f);
        got = true;
      }
    }
    if (got || steady_now_ms() >= deadline) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

std::optional<GateFrame> GateClient::transact_(const GateFrame& req) {
  const double deadline = steady_now_ms() + cfg_.op_timeout_ms;
  const Bytes wire = req.serialize();
  while (steady_now_ms() < deadline) {
    link_.send(wire);
    pump_(cfg_.resend_after_ms);
    const auto it = inbox_.find(req.request_id);
    if (it == inbox_.end()) continue;  // lost somewhere: resend
    if (it->second.kind == GateKind::kRetryAfter) {
      // Explicit backpressure: honor the hint (capped so a confused
      // hint cannot park the client), then try again.
      u32 wait = 5;
      if (auto ra = RetryAfterWire::parse(it->second.payload)) {
        wait = std::min(ra->retry_after_ms, 200u);
      }
      inbox_.erase(it);
      ++backoffs_;
      std::this_thread::sleep_for(std::chrono::milliseconds(wait));
      continue;
    }
    GateFrame out = std::move(it->second);
    inbox_.erase(it);
    return out;
  }
  return std::nullopt;
}

std::optional<HelloOkWire> GateClient::hello() {
  const auto resp =
      transact_(make_request(GateKind::kHello, cfg_.token, /*request_id=*/1));
  if (!resp || resp->kind != GateKind::kHelloOk) return std::nullopt;
  return HelloOkWire::parse(resp->payload);
}

std::optional<GateFrame> GateClient::submit(u64 request_id,
                                            const JobWire& job, u64 trace_id,
                                            u64 span_id) {
  return transact_(make_request(GateKind::kSubmit, cfg_.token, request_id,
                                job.serialize(), trace_id, span_id));
}

std::optional<ResultWire> GateClient::await_result(u64 request_id) {
  const double deadline = steady_now_ms() + cfg_.op_timeout_ms;
  double next_poll_ms = steady_now_ms() + cfg_.resend_after_ms;
  while (steady_now_ms() < deadline) {
    const auto it = inbox_.find(request_id);
    if (it != inbox_.end() && it->second.kind == GateKind::kResult) {
      const auto r = ResultWire::parse(it->second.payload);
      inbox_.erase(it);
      if (r && r->status != ResultWire::kPending) return r;
      // Still running (a poll answered before completion): keep waiting.
    }
    pump_(2.0);
    const double now = steady_now_ms();
    if (now >= next_poll_ms) {
      // The unsolicited push may have died on the wire; ask directly.
      link_.send(
          make_request(GateKind::kPoll, cfg_.token, request_id).serialize());
      next_poll_ms = now + cfg_.resend_after_ms;
    }
  }
  return std::nullopt;
}

std::optional<std::string> GateClient::stats_json() {
  // Stats requests get a fresh id high above job ids so they never
  // collide with a submit's dedup entry.
  static constexpr u64 kStatsId = ~u64{0} - 7;
  const auto resp =
      transact_(make_request(GateKind::kGateStats, cfg_.token, kStatsId));
  if (!resp || resp->kind != GateKind::kStatsJson) return std::nullopt;
  return std::string(resp->payload.begin(), resp->payload.end());
}

void GateClient::bye() {
  static constexpr u64 kByeId = ~u64{0} - 8;
  transact_(make_request(GateKind::kBye, cfg_.token, kByeId));
}

}  // namespace la::gate
