#include "gate/tenant.hpp"

#include <cmath>
#include <cstdio>

#include "common/hash.hpp"
#include "common/rng.hpp"

namespace la::gate {

bool TokenBucket::try_take(double now_ms) {
  refill_(now_ms);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

u32 TokenBucket::ms_until_token(double now_ms) const {
  TokenBucket copy = *this;
  copy.refill_(now_ms);
  if (copy.tokens_ >= 1.0) return 0;
  if (rate_ == 0) return 1000;  // rate 0: nothing ever refills; cap the hint
  const double need = 1.0 - copy.tokens_;
  return static_cast<u32>(std::ceil(need * 1000.0 / rate_));
}

double TokenBucket::tokens(double now_ms) const {
  TokenBucket copy = *this;
  copy.refill_(now_ms);
  return copy.tokens_;
}

void TokenBucket::refill_(double now_ms) {
  if (now_ms <= last_ms_) return;
  tokens_ += (now_ms - last_ms_) * rate_ / 1000.0;
  if (tokens_ > burst_) tokens_ = burst_;
  last_ms_ = now_ms;
}

void Session::remember_accept(u64 request_id, u64 job_id) {
  if (accepted.emplace(request_id, job_id).second) {
    accepted_order.push_back(request_id);
    if (accepted_order.size() > kDedupWindow) {
      accepted.erase(accepted_order.front());
      accepted_order.pop_front();
    }
  }
}

void Session::remember_done(u64 request_id, ResultWire result) {
  if (done.emplace(request_id, std::move(result)).second) {
    done_order.push_back(request_id);
    if (done_order.size() > kDedupWindow) {
      done.erase(done_order.front());
      done_order.pop_front();
    }
  }
}

const ResultWire* Session::find_done(u64 request_id) const {
  const auto it = done.find(request_id);
  return it == done.end() ? nullptr : &it->second;
}

std::optional<u64> Session::find_accept(u64 request_id) const {
  const auto it = accepted.find(request_id);
  if (it == accepted.end()) return std::nullopt;
  return it->second;
}

TenantDirectory::TenantDirectory(u64 secret_seed, u32 count,
                                 TenantQuota quota)
    : quota_(quota) {
  names_.reserve(count);
  tokens_.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    char name[16];
    std::snprintf(name, sizeof name, "t%04u", i);
    names_.emplace_back(name);
    // fnv over the name folded with the secret, then whitened through
    // splitmix64 so tokens of adjacent tenants share no visible structure.
    u64 sm = fnv1a64(names_.back()) ^ secret_seed;
    const u64 token = splitmix64(sm);
    tokens_.push_back(token);
    by_token_.emplace(token, i);
  }
}

u64 TenantDirectory::token_of(u32 index) const { return tokens_[index]; }

std::optional<u32> TenantDirectory::authenticate(u64 token) const {
  const auto it = by_token_.find(token);
  if (it == by_token_.end()) return std::nullopt;
  return it->second;
}

}  // namespace la::gate
