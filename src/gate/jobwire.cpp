#include "gate/jobwire.hpp"

namespace la::gate {

Bytes JobWire::serialize() const {
  ByteWriter w;
  w.write_u32(config.icache_bytes);
  w.write_u16(static_cast<u16>(config.icache_line));
  w.write_u8(static_cast<u8>(config.icache_ways));
  w.write_u32(config.dcache_bytes);
  w.write_u16(static_cast<u16>(config.dcache_line));
  w.write_u8(static_cast<u8>(config.dcache_ways));
  w.write_u8(static_cast<u8>(config.replacement));
  w.write_u8(static_cast<u8>(config.write_policy));
  w.write_u8(config.has_mul ? 1 : 0);
  w.write_u8(config.has_div ? 1 : 0);
  w.write_u8(static_cast<u8>(config.mul_latency));
  w.write_u8(static_cast<u8>(config.nwindows));
  w.write_u32(program.base);
  w.write_u32(program.entry);
  w.write_u32(static_cast<u32>(program.data.size()));
  w.write_bytes(program.data);
  w.write_u32(result_addr);
  w.write_u16(result_words);
  return w.take();
}

std::optional<JobWire> JobWire::parse(std::span<const u8> payload) {
  constexpr std::size_t kFixed = 4 + 2 + 1 + 4 + 2 + 1 + 1 + 1 + 1 + 1 + 1 +
                                 1 + 4 + 4 + 4 + 4 + 2;  // sans image data
  if (payload.size() < kFixed) return std::nullopt;
  ByteReader r(payload);
  JobWire v;
  v.config.icache_bytes = r.read_u32();
  v.config.icache_line = r.read_u16();
  v.config.icache_ways = r.read_u8();
  v.config.dcache_bytes = r.read_u32();
  v.config.dcache_line = r.read_u16();
  v.config.dcache_ways = r.read_u8();
  const u8 repl = r.read_u8();
  if (repl > static_cast<u8>(cache::Replacement::kRandom)) return std::nullopt;
  v.config.replacement = static_cast<cache::Replacement>(repl);
  const u8 wp = r.read_u8();
  if (wp > static_cast<u8>(cache::WritePolicy::kWriteBackAllocate)) {
    return std::nullopt;
  }
  v.config.write_policy = static_cast<cache::WritePolicy>(wp);
  v.config.has_mul = r.read_u8() != 0;
  v.config.has_div = r.read_u8() != 0;
  v.config.mul_latency = r.read_u8();
  v.config.nwindows = r.read_u8();
  v.program.base = r.read_u32();
  v.program.entry = r.read_u32();
  const u32 image_len = r.read_u32();
  if (image_len > kMaxJobImageBytes) return std::nullopt;
  if (r.remaining() != image_len + 6) return std::nullopt;
  v.program.data = r.read_bytes(image_len);
  v.result_addr = r.read_u32();
  v.result_words = r.read_u16();
  if (v.result_words > 256) return std::nullopt;  // READ_MEMORY's own cap
  return v;
}

}  // namespace la::gate
