// A tenant-side client for the gateway protocol, speaking real datagrams
// through a WanLink (so tests and tools exercise the wire under the same
// seeded impairments as everything else).
//
// The client owns reliability: UDP plus a hostile WAN profile loses,
// duplicates, and mangles frames, so every operation is retried under the
// SAME request id until a response lands — the gateway's dedup tables
// turn those retries into exactly-once execution.  kRetryAfter responses
// are honored by backing off for the hinted interval before resending.
//
// One client = one tenant = one socket.  tools/lload multiplexes
// thousands of tenants over a single socket instead (sessions key on the
// token, not the address) using the frame helpers here.
#pragma once

#include <unordered_map>

#include "gate/frame.hpp"
#include "gate/jobwire.hpp"
#include "gate/udp.hpp"

namespace la::gate {

/// Build a request frame (the one frame constructor the client-side mux
/// in lload shares with GateClient).
GateFrame make_request(GateKind kind, u64 token, u64 request_id,
                       Bytes payload = {}, u64 trace_id = 0,
                       u64 span_id = 0);

struct ClientConfig {
  SockAddr gateway;
  u64 token = 0;
  net::WanProfile wan;  // client-side impairments; default = clean link
  /// Per-attempt wait for a response before resending.
  double resend_after_ms = 30.0;
  /// Total per-operation deadline.
  double op_timeout_ms = 5000.0;
};

class GateClient {
 public:
  explicit GateClient(ClientConfig cfg);

  bool ok() const { return sock_.valid(); }

  /// HELLO until the session opens; nullopt on deadline or terminal
  /// error.
  std::optional<HelloOkWire> hello();

  /// Submit and wait for admission: kAccepted (or a cached kResult if
  /// the job already finished under this request id).  Retries through
  /// loss and honors retry-after backpressure.  Returns the final
  /// response frame; nullopt only on deadline.
  std::optional<GateFrame> submit(u64 request_id, const JobWire& job,
                                  u64 trace_id = 0, u64 span_id = 0);

  /// Wait for the job's completed ResultWire — consuming the unsolicited
  /// push when it survives the wire, polling it back when it doesn't.
  std::optional<ResultWire> await_result(u64 request_id);

  /// Gateway metrics snapshot JSON (kGateStats).
  std::optional<std::string> stats_json();

  /// Best-effort BYE (one confirmed round or deadline).
  void bye();

  /// Retry-after responses absorbed across all operations so far.
  u64 backoffs() const { return backoffs_; }

 private:
  /// Send `req` until a response with its request id arrives; honors
  /// kRetryAfter, stashes unrelated kResult pushes for await_result().
  std::optional<GateFrame> transact_(const GateFrame& req);
  void pump_(double wait_ms);  // poll the link, filing frames

  ClientConfig cfg_;
  UdpSocket sock_;
  WanLink link_;
  std::unordered_map<u64, GateFrame> inbox_;  // request id -> last frame
  u64 backoffs_ = 0;
};

}  // namespace la::gate
