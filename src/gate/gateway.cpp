#include "gate/gateway.hpp"

#include <algorithm>

#include "gate/jobwire.hpp"

namespace la::gate {

namespace {

Bytes u64_payload(u64 v) {
  ByteWriter w;
  w.write_u32(static_cast<u32>(v >> 32));
  w.write_u32(static_cast<u32>(v));
  return w.take();
}

}  // namespace

Gateway::Gateway(farm::LiquidFarm& farm, GateConfig cfg)
    : farm_(farm),
      cfg_(std::move(cfg)),
      dir_(cfg_.secret_seed, cfg_.tenants, cfg_.quota) {}

Gateway::~Gateway() { stop(); }

bool Gateway::start() {
  if (running_) return true;
  if (!sock_.bind(cfg_.bind_ip, cfg_.port)) return false;
  if (!epoll_.valid() || !epoll_.add_read(sock_.fd())) {
    sock_.close();
    return false;
  }
  addr_ = sock_.local_addr();
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { run_(); });
  return true;
}

void Gateway::stop() {
  if (!running_) return;
  stop_ = true;
  thread_.join();
  running_ = false;
  sock_.close();
}

void Gateway::run_() {
  double last_gc_ms = steady_now_ms();
  while (!stop_) {
    // Wake on traffic or every tick — results must flow back even when
    // the socket is silent.
    epoll_.wait_readable(cfg_.tick_ms);
    SockAddr from;
    while (auto dgram = sock_.recv_from(&from)) {
      handle_datagram_(from, *dgram);
    }
    drain_farm_();
    const double now = steady_now_ms();
    if (now - last_gc_ms > 1000.0) {
      gc_sessions_(now);
      last_gc_ms = now;
    }
  }
  drain_farm_();  // deliver what already finished before the stop
  metrics_.gauge("gate.sessions").set(static_cast<double>(sessions_.size()));
}

void Gateway::handle_datagram_(const SockAddr& from, const Bytes& data) {
  metrics_.counter("gate.rx_frames").inc();
  const auto frame = GateFrame::parse(data);
  if (!frame) {
    // Unparseable datagrams get no answer: there is no checksum-verified
    // request id to echo, and answering line noise invites amplification.
    metrics_.counter("gate.rx_bad").inc();
    return;
  }
  const GateFrame& f = *frame;
  switch (f.kind) {
    case GateKind::kHello:
      handle_hello_(from, f);
      return;
    case GateKind::kGateStats:
      handle_stats_(from, f);
      return;
    case GateKind::kSubmit:
    case GateKind::kPoll:
    case GateKind::kBye:
      break;  // session commands, resolved below
    default:
      // A response kind arriving at the gateway is a confused client.
      metrics_.counter("gate.errors").inc();
      send_error_(from, f, err::kUnknownKind);
      return;
  }
  if (!dir_.authenticate(f.token)) {
    metrics_.counter("gate.errors").inc();
    send_error_(from, f, err::kBadToken);
    return;
  }
  const auto it = sessions_.find(f.token);
  if (it == sessions_.end()) {
    metrics_.counter("gate.errors").inc();
    send_error_(from, f, err::kNoSession);
    return;
  }
  Session& s = it->second;
  s.last_addr = from;
  s.last_seen_ms = steady_now_ms();
  switch (f.kind) {
    case GateKind::kSubmit: handle_submit_(from, f, s); return;
    case GateKind::kPoll: handle_poll_(from, f, s); return;
    case GateKind::kBye: handle_bye_(from, f, s); return;
    default: return;  // unreachable
  }
}

void Gateway::handle_hello_(const SockAddr& from, const GateFrame& f) {
  const auto tenant = dir_.authenticate(f.token);
  if (!tenant) {
    metrics_.counter("gate.errors").inc();
    send_error_(from, f, err::kBadToken);
    return;
  }
  const double now = steady_now_ms();
  auto [it, created] = sessions_.try_emplace(f.token);
  Session& s = it->second;
  if (created) {
    // A re-HELLO (retransmit or reconnect) keeps the existing session:
    // dedup tables and quota must survive the client's retry loop.
    s.tenant = dir_.name_of(*tenant);
    s.quota = dir_.quota();
    s.bucket = TokenBucket(s.quota.rate_per_sec, s.quota.burst, now);
    metrics_.counter("gate.sessions_opened").inc();
  }
  s.last_addr = from;
  s.last_seen_ms = now;
  metrics_.counter("gate.hello").inc();
  HelloOkWire ok;
  ok.quota_remaining = s.quota.jobs_total - s.jobs_submitted;
  ok.max_inflight = s.quota.max_inflight;
  ok.rate_per_sec = s.quota.rate_per_sec;
  ok.burst = s.quota.burst;
  send_(from, GateKind::kHelloOk, f, ok.serialize());
}

void Gateway::handle_submit_(const SockAddr& from, const GateFrame& f,
                             Session& s) {
  metrics_.counter("gate.submits").inc();
  // Dedup before everything that has a side effect or spends a token:
  // a retransmitted submit must cost nothing and change nothing.
  if (const ResultWire* done = s.find_done(f.request_id)) {
    metrics_.counter("gate.dup_submits").inc();
    send_(from, GateKind::kResult, f, done->serialize());
    return;
  }
  if (const auto job_id = s.find_accept(f.request_id)) {
    metrics_.counter("gate.dup_submits").inc();
    send_(from, GateKind::kAccepted, f, u64_payload(*job_id));
    return;
  }
  const double now = steady_now_ms();
  if (!s.bucket.try_take(now)) {
    metrics_.counter("gate.retry_after.rate").inc();
    send_retry_(from, f, retry::kRateLimited,
                std::max<u32>(1, s.bucket.ms_until_token(now)));
    return;
  }
  if (s.inflight >= s.quota.max_inflight) {
    metrics_.counter("gate.retry_after.busy").inc();
    send_retry_(from, f, retry::kTenantBusy, cfg_.retry_floor_ms + 5);
    return;
  }
  if (s.jobs_submitted >= s.quota.jobs_total) {
    metrics_.counter("gate.errors").inc();
    send_error_(from, f, err::kQuotaExceeded);
    return;
  }
  const auto wire = JobWire::parse(f.payload);
  if (!wire) {
    metrics_.counter("gate.errors").inc();
    send_error_(from, f, err::kBadPayload);
    return;
  }
  farm::FarmJob job;
  job.owner = s.tenant;
  job.config = wire->config;
  job.program = wire->program;
  job.result_addr = wire->result_addr;
  job.result_words = wire->result_words;
  if (f.trace_id != 0) {
    // The tenant's trace context crosses the wire into the farm's span
    // log: the gateway minted span parents the job's farm-side phases.
    job.trace.trace_id = f.trace_id;
    job.trace.span_id = trace::mix64(++span_counter_);
    job.trace.parent_span_id = f.span_id;
    job.submitted_us = farm_.span_log().now_us();
  }
  auto admitted = farm_.submit(std::move(job));
  if (!admitted) {
    const farm::FarmError& e = admitted.error();
    switch (e.kind) {
      case farm::FarmErrorKind::kSaturated:
        metrics_.counter("gate.retry_after.farm").inc();
        send_retry_(from, f, retry::kFarmSaturated,
                    std::max(cfg_.retry_floor_ms, e.retry_after_hint_ms));
        return;
      case farm::FarmErrorKind::kOwnerSaturated:
        metrics_.counter("gate.retry_after.busy").inc();
        send_retry_(from, f, retry::kTenantBusy,
                    std::max(cfg_.retry_floor_ms, e.retry_after_hint_ms));
        return;
      case farm::FarmErrorKind::kShuttingDown:
        metrics_.counter("gate.errors").inc();
        send_error_(from, f, err::kShuttingDown);
        return;
      case farm::FarmErrorKind::kInvalidConfig:
        metrics_.counter("gate.errors").inc();
        send_error_(from, f, err::kBadPayload);
        return;
    }
    return;
  }
  const u64 job_id = *admitted;
  ++s.jobs_submitted;
  ++s.inflight;
  s.remember_accept(f.request_id, job_id);
  jobs_[job_id] = PendingJob{f.token, f.request_id, f.trace_id, f.span_id,
                             steady_now_ms()};
  metrics_.counter("gate.accepted").inc();
  send_(from, GateKind::kAccepted, f, u64_payload(job_id));
}

void Gateway::handle_poll_(const SockAddr& from, const GateFrame& f,
                           Session& s) {
  metrics_.counter("gate.polls").inc();
  // The poll's request id names the submit being asked about.
  if (const ResultWire* done = s.find_done(f.request_id)) {
    send_(from, GateKind::kResult, f, done->serialize());
    return;
  }
  if (s.find_accept(f.request_id)) {
    ResultWire pending;  // accepted, still running
    send_(from, GateKind::kResult, f, pending.serialize());
    return;
  }
  metrics_.counter("gate.errors").inc();
  send_error_(from, f, err::kUnknownJob);
}

void Gateway::handle_stats_(const SockAddr& from, const GateFrame& f) {
  // Ops-plane: requires a valid token (any tenant may read the gateway's
  // own counters; farm internals stay behind the farm's report path).
  if (!dir_.authenticate(f.token)) {
    metrics_.counter("gate.errors").inc();
    send_error_(from, f, err::kBadToken);
    return;
  }
  metrics_.gauge("gate.sessions").set(static_cast<double>(sessions_.size()));
  const std::string json = metrics_.snapshot().to_json(0);
  Bytes payload(json.begin(), json.end());
  if (payload.size() > kMaxPayload) payload.resize(kMaxPayload);
  send_(from, GateKind::kStatsJson, f, std::move(payload));
}

void Gateway::handle_bye_(const SockAddr& from, const GateFrame& f,
                          Session& s) {
  (void)s;
  metrics_.counter("gate.bye").inc();
  send_(from, GateKind::kByeOk, f, {});
  // Results for jobs still in flight become orphans — the client said
  // goodbye; drain_farm_ counts them when they surface.
  sessions_.erase(f.token);
}

void Gateway::drain_farm_() {
  while (auto outcome = farm_.try_pop_result()) {
    const auto jit = jobs_.find(outcome->id);
    if (jit == jobs_.end()) continue;  // not a gateway job (shared farm)
    const PendingJob origin = jit->second;
    jobs_.erase(jit);
    const auto sit = sessions_.find(origin.token);
    if (sit == sessions_.end()) {
      metrics_.counter("gate.orphan_results").inc();
      continue;
    }
    Session& s = sit->second;
    if (s.inflight > 0) --s.inflight;
    ResultWire r;
    // Completion order is delivery order, which the farm's per-owner
    // FIFO pins to submission order — the dense per-tenant seq is what
    // the end-to-end audit checks.
    r.completion_seq = s.completion_seq++;
    r.attempts = static_cast<u8>(std::min(outcome->attempts, 255u));
    r.node = static_cast<u16>(outcome->node);
    if (outcome->result.ok) {
      r.status = ResultWire::kDone;
      r.words = outcome->result.readback;
    } else {
      r.status = ResultWire::kFailed;
      r.error = outcome->result.error;
      if (r.error.size() > 512) r.error.resize(512);
      metrics_.counter("gate.job_failures").inc();
    }
    metrics_.counter("gate.results_pushed").inc();
    metrics_.histogram("gate.job_ms")
        .observe(steady_now_ms() - origin.accepted_ms);
    s.remember_done(origin.request_id, r);
    // Unsolicited push to wherever the tenant last spoke from; if the
    // wire eats it, a kPoll re-serves it from the done cache.
    GateFrame push;
    push.kind = GateKind::kResult;
    push.token = origin.token;
    push.request_id = origin.request_id;
    push.trace_id = origin.trace_id;
    push.span_id = origin.span_id;
    push.payload = r.serialize();
    metrics_.counter("gate.tx_frames").inc();
    sock_.send_to(s.last_addr, push.serialize());
  }
}

void Gateway::gc_sessions_(double now_ms) {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now_ms - it->second.last_seen_ms > cfg_.session_idle_ms) {
      metrics_.counter("gate.sessions_gced").inc();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void Gateway::send_(const SockAddr& to, GateKind kind, const GateFrame& req,
                    Bytes payload) {
  GateFrame f;
  f.kind = kind;
  // Echo the token: a client that muxes many tenants over one socket
  // (lload) demultiplexes responses by it.  Tokens already travel in
  // cleartext on requests — this is a PSK scheme, not a secrecy one.
  f.token = req.token;
  f.request_id = req.request_id;
  f.trace_id = req.trace_id;
  f.span_id = req.span_id;
  f.payload = std::move(payload);
  metrics_.counter("gate.tx_frames").inc();
  sock_.send_to(to, f.serialize());
}

void Gateway::send_error_(const SockAddr& to, const GateFrame& req, u8 code) {
  send_(to, GateKind::kGateError, req, Bytes{code});
}

void Gateway::send_retry_(const SockAddr& to, const GateFrame& req, u8 reason,
                          u32 after_ms) {
  RetryAfterWire w;
  w.reason = reason;
  w.retry_after_ms = after_ms;
  send_(to, GateKind::kRetryAfter, req, w.serialize());
}

}  // namespace la::gate
