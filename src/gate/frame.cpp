#include "gate/frame.hpp"

#include "common/hash.hpp"

namespace la::gate {

namespace {

constexpr std::size_t kHeaderSize = 38;  // everything before the payload

void write_u64(ByteWriter& w, u64 v) {
  w.write_u32(static_cast<u32>(v >> 32));
  w.write_u32(static_cast<u32>(v));
}

u64 read_u64(ByteReader& r) {
  return (static_cast<u64>(r.read_u32()) << 32) | r.read_u32();
}

bool known_kind(u8 k) {
  switch (static_cast<GateKind>(k)) {
    case GateKind::kHello:
    case GateKind::kSubmit:
    case GateKind::kPoll:
    case GateKind::kGateStats:
    case GateKind::kBye:
    case GateKind::kHelloOk:
    case GateKind::kAccepted:
    case GateKind::kResult:
    case GateKind::kStatsJson:
    case GateKind::kByeOk:
    case GateKind::kRetryAfter:
    case GateKind::kGateError:
      return true;
  }
  return false;
}

}  // namespace

Bytes GateFrame::serialize() const {
  ByteWriter w;
  w.write_u16(kGateMagic);
  w.write_u8(version);
  w.write_u8(static_cast<u8>(kind));
  write_u64(w, token);
  write_u64(w, request_id);
  write_u64(w, trace_id);
  write_u64(w, span_id);
  w.write_u16(static_cast<u16>(payload.size()));
  w.write_bytes(payload);
  w.write_u32(fnv1a32(w.bytes()));
  return w.take();
}

std::optional<GateFrame> GateFrame::parse(std::span<const u8> data) {
  // Every length check happens before the corresponding read: the parser
  // must hold its no-overread guarantee on arbitrary bytes (the fuzz
  // rotation feeds it exactly that).
  if (data.size() < kFrameOverhead) return std::nullopt;
  if (data.size() > kFrameOverhead + kMaxPayload) return std::nullopt;
  ByteReader r(data);
  if (r.read_u16() != kGateMagic) return std::nullopt;
  GateFrame f;
  f.version = r.read_u8();
  if (f.version != kGateVersion) return std::nullopt;
  const u8 kind = r.read_u8();
  if (!known_kind(kind)) return std::nullopt;
  f.kind = static_cast<GateKind>(kind);
  f.token = read_u64(r);
  f.request_id = read_u64(r);
  f.trace_id = read_u64(r);
  f.span_id = read_u64(r);
  const u16 payload_len = r.read_u16();
  // The length prefix must account for the datagram exactly: a short
  // buffer is a truncated frame, a long one is trailing garbage — both
  // are damage, not data.
  if (data.size() != kHeaderSize + payload_len + 4) return std::nullopt;
  const u32 want = fnv1a32(data.subspan(0, kHeaderSize + payload_len));
  f.payload = r.read_bytes(payload_len);
  if (r.read_u32() != want) return std::nullopt;
  return f;
}

Bytes RetryAfterWire::serialize() const {
  ByteWriter w;
  w.write_u8(reason);
  w.write_u32(retry_after_ms);
  return w.take();
}

std::optional<RetryAfterWire> RetryAfterWire::parse(
    std::span<const u8> payload) {
  if (payload.size() != 5) return std::nullopt;
  ByteReader r(payload);
  RetryAfterWire v;
  v.reason = r.read_u8();
  v.retry_after_ms = r.read_u32();
  return v;
}

Bytes HelloOkWire::serialize() const {
  ByteWriter w;
  w.write_u32(quota_remaining);
  w.write_u16(max_inflight);
  w.write_u16(rate_per_sec);
  w.write_u16(burst);
  return w.take();
}

std::optional<HelloOkWire> HelloOkWire::parse(std::span<const u8> payload) {
  if (payload.size() != 10) return std::nullopt;
  ByteReader r(payload);
  HelloOkWire v;
  v.quota_remaining = r.read_u32();
  v.max_inflight = r.read_u16();
  v.rate_per_sec = r.read_u16();
  v.burst = r.read_u16();
  return v;
}

Bytes ResultWire::serialize() const {
  ByteWriter w;
  w.write_u8(status);
  w.write_u32(completion_seq);
  w.write_u8(attempts);
  w.write_u16(node);
  w.write_u16(static_cast<u16>(words.size()));
  for (const u32 word : words) w.write_u32(word);
  w.write_u16(static_cast<u16>(error.size()));
  w.write_bytes(std::span<const u8>(
      reinterpret_cast<const u8*>(error.data()), error.size()));
  return w.take();
}

std::optional<ResultWire> ResultWire::parse(std::span<const u8> payload) {
  if (payload.size() < 12) return std::nullopt;
  ByteReader r(payload);
  ResultWire v;
  v.status = r.read_u8();
  if (v.status > kFailed) return std::nullopt;
  v.completion_seq = r.read_u32();
  v.attempts = r.read_u8();
  v.node = r.read_u16();
  const u16 nwords = r.read_u16();
  if (r.remaining() < static_cast<std::size_t>(nwords) * 4 + 2) {
    return std::nullopt;
  }
  v.words.reserve(nwords);
  for (u16 i = 0; i < nwords; ++i) v.words.push_back(r.read_u32());
  const u16 errlen = r.read_u16();
  if (r.remaining() != errlen) return std::nullopt;
  const Bytes text = r.read_bytes(errlen);
  v.error.assign(text.begin(), text.end());
  return v;
}

const char* to_string(GateKind k) {
  switch (k) {
    case GateKind::kHello: return "HELLO";
    case GateKind::kSubmit: return "SUBMIT";
    case GateKind::kPoll: return "POLL";
    case GateKind::kGateStats: return "GATE_STATS";
    case GateKind::kBye: return "BYE";
    case GateKind::kHelloOk: return "HELLO_OK";
    case GateKind::kAccepted: return "ACCEPTED";
    case GateKind::kResult: return "RESULT";
    case GateKind::kStatsJson: return "STATS_JSON";
    case GateKind::kByeOk: return "BYE_OK";
    case GateKind::kRetryAfter: return "RETRY_AFTER";
    case GateKind::kGateError: return "GATE_ERROR";
  }
  return "?";
}

}  // namespace la::gate
