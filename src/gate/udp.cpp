#include "gate/udp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

namespace la::gate {

namespace {

sockaddr_in to_sockaddr(const SockAddr& a) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(a.port);
  sa.sin_addr.s_addr = htonl(a.ip);
  return sa;
}

SockAddr from_sockaddr(const sockaddr_in& sa) {
  return SockAddr{ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port)};
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Largest datagram we ever expect (frame overhead + max payload, with
/// headroom so an oversized datagram is received whole and then rejected
/// by the codec instead of being silently truncated by the kernel).
constexpr std::size_t kRecvBuf = 64 * 1024;

}  // namespace

std::string SockAddr::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u:%u", (ip >> 24) & 0xff,
                (ip >> 16) & 0xff, (ip >> 8) & 0xff, ip & 0xff, port);
  return buf;
}

UdpSocket::~UdpSocket() { close(); }

UdpSocket::UdpSocket(UdpSocket&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool UdpSocket::open() {
  close();
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) return false;
  if (!set_nonblocking(fd_)) {
    close();
    return false;
  }
  return true;
}

bool UdpSocket::bind(const std::string& ip, u16 port) {
  if (!open()) return false;
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (::inet_pton(AF_INET, ip.c_str(), &sa.sin_addr) != 1) {
    close();
    return false;
  }
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
    close();
    return false;
  }
  return true;
}

SockAddr UdpSocket::local_addr() const {
  sockaddr_in sa{};
  socklen_t len = sizeof sa;
  if (fd_ < 0 ||
      ::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    return {};
  }
  return from_sockaddr(sa);
}

bool UdpSocket::send_to(const SockAddr& dst, std::span<const u8> data) {
  if (fd_ < 0) return false;
  const sockaddr_in sa = to_sockaddr(dst);
  const ssize_t n =
      ::sendto(fd_, data.data(), data.size(), 0,
               reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
  if (n == static_cast<ssize_t>(data.size())) return true;
  // A full socket buffer drops the datagram — UDP semantics, not an
  // error the caller can do anything about beyond its retry loop.
  return errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS;
}

std::optional<Bytes> UdpSocket::recv_from(SockAddr* src) {
  if (fd_ < 0) return std::nullopt;
  Bytes buf(kRecvBuf);
  sockaddr_in sa{};
  socklen_t len = sizeof sa;
  const ssize_t n = ::recvfrom(fd_, buf.data(), buf.size(), 0,
                               reinterpret_cast<sockaddr*>(&sa), &len);
  if (n < 0) return std::nullopt;  // EAGAIN and friends: nothing now
  buf.resize(static_cast<std::size_t>(n));
  if (src != nullptr) *src = from_sockaddr(sa);
  return buf;
}

void UdpSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Epoll::Epoll() : fd_(::epoll_create1(0)) {}

Epoll::~Epoll() {
  if (fd_ >= 0) ::close(fd_);
}

bool Epoll::add_read(int fd) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  return fd_ >= 0 && ::epoll_ctl(fd_, EPOLL_CTL_ADD, fd, &ev) == 0;
}

bool Epoll::wait_readable(int timeout_ms) {
  if (fd_ < 0) return false;
  epoll_event out[8];
  const int n = ::epoll_wait(fd_, out, 8, timeout_ms);
  return n > 0;
}

void WanLink::send(Bytes frame) {
  up_.send(std::move(frame));
  flush_uplink_();
}

std::optional<Bytes> WanLink::poll_recv() {
  drain_socket_();
  flush_uplink_();  // ages the uplink's delayed frames too
  return down_.receive();
}

void WanLink::pump() {
  drain_socket_();
  flush_uplink_();
}

void WanLink::drain_socket_() {
  while (auto dgram = sock_.recv_from()) down_.send(std::move(*dgram));
}

void WanLink::flush_uplink_() {
  while (auto frame = up_.receive()) sock_.send_to(peer_, *frame);
}

double steady_now_ms() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::milli>(now).count();
}

}  // namespace la::gate
