// Multi-tenant control plane state: who may talk to the gateway, and how
// much.
//
// A TenantDirectory derives one auth token per tenant from a pre-shared
// secret seed — the fleet operator hands each tenant its token out of
// band, the gateway recomputes the table at startup, and nothing secret
// crosses the wire.  A Session is everything the gateway remembers about
// one authenticated tenant: a token bucket (rate), an in-flight cap and a
// lifetime quota (admission control), plus the request-id dedup tables
// that make submission exactly-once over a wire that duplicates frames.
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "gate/frame.hpp"
#include "gate/udp.hpp"

namespace la::gate {

/// Admission limits applied to every tenant a directory mints.
struct TenantQuota {
  u32 jobs_total = 1u << 20;  // lifetime submit budget
  u16 max_inflight = 64;      // concurrent unfinished jobs
  u16 rate_per_sec = 200;     // token-bucket refill
  u16 burst = 50;             // token-bucket depth
};

/// Classic token bucket over the host monotonic clock (fractional tokens,
/// so low rates still refill smoothly).
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(u16 rate_per_sec, u16 burst, double now_ms)
      : rate_(rate_per_sec), burst_(burst), tokens_(burst), last_ms_(now_ms) {}

  /// Take one token if available.
  bool try_take(double now_ms);

  /// Milliseconds until the next token exists (0 when one is available
  /// now).  The retry-after hint for rate-limited refusals.
  u32 ms_until_token(double now_ms) const;

  double tokens(double now_ms) const;

 private:
  void refill_(double now_ms);

  u16 rate_ = 0;
  u16 burst_ = 0;
  double tokens_ = 0.0;
  double last_ms_ = 0.0;
};

/// The gateway's memory of one authenticated tenant.
struct Session {
  std::string tenant;  // farm owner name — per-owner FIFO keys on this
  TenantQuota quota;
  TokenBucket bucket;
  u32 jobs_submitted = 0;   // counted against quota.jobs_total
  u32 inflight = 0;         // accepted, result not yet reaped
  u32 completion_seq = 0;   // next per-tenant completion number
  SockAddr last_addr;       // where to push unsolicited results
  double last_seen_ms = 0;  // session GC clock

  /// request id -> farm job id, for every accepted submit.  A duplicated
  /// kSubmit datagram finds its id here and gets the original kAccepted
  /// back instead of a second farm job: exactly-once on a wire that
  /// duplicates.  Bounded FIFO (kDedupWindow).
  std::unordered_map<u64, u64> accepted;
  std::deque<u64> accepted_order;

  /// request id -> finished ResultWire, kept after completion so a client
  /// whose kResult response was lost can kPoll it back.  Bounded FIFO.
  std::unordered_map<u64, ResultWire> done;
  std::deque<u64> done_order;

  static constexpr std::size_t kDedupWindow = 1024;

  void remember_accept(u64 request_id, u64 job_id);
  void remember_done(u64 request_id, ResultWire result);
  const ResultWire* find_done(u64 request_id) const;
  std::optional<u64> find_accept(u64 request_id) const;
};

/// The static tenant table: name <-> token, token derived as
/// fnv1a64("tenant-name" | secret seed).  Secrecy lives entirely in the
/// seed (see common/hash.hpp — FNV is damage detection, not a MAC; the
/// scheme is pre-shared-key auth).
class TenantDirectory {
 public:
  /// Mint `count` tenants named t0000..tNNNN with the given limits.
  TenantDirectory(u64 secret_seed, u32 count, TenantQuota quota);

  /// The token tenant `index` must present (what the operator hands out).
  u64 token_of(u32 index) const;
  const std::string& name_of(u32 index) const { return names_[index]; }
  u32 count() const { return static_cast<u32>(names_.size()); }
  const TenantQuota& quota() const { return quota_; }

  /// Token -> tenant index; nullopt for unknown tokens.
  std::optional<u32> authenticate(u64 token) const;

 private:
  std::vector<std::string> names_;
  std::vector<u64> tokens_;
  std::unordered_map<u64, u32> by_token_;
  TenantQuota quota_;
};

}  // namespace la::gate
