// The gateway datagram frame: the length-prefixed envelope every byte of
// gateway traffic travels in.
//
// The farm's control plane goes onto real UDP sockets here, so the frame
// has to survive the open Internet's contract on its own: a fixed header
// with magic/version, the tenant's auth token, a client-chosen request id
// (retry dedup), a causal trace context, an explicit payload length
// prefix (truncation detection — UDP delivers whole datagrams or garbage,
// and the WAN emulator deliberately produces the garbage), and a trailing
// FNV-1a checksum (bit-flip detection).  The parser is total: any byte
// string either yields a frame or nullopt — it never throws, crashes, or
// reads past the buffer, and the fuzz rotation holds it to that.
//
//   offset  size  field
//        0     2  magic 0x4C51 ("LQ")
//        2     1  version (kGateVersion)
//        3     1  kind (GateKind)
//        4     8  tenant auth token
//       12     8  request id (client-chosen; responses echo it)
//       20     8  trace id   (0 = untraced)
//       28     8  span id
//       36     2  payload length N (length prefix; must match exactly)
//       38     N  payload (kind-specific, see PROTOCOL.md)
//     38+N     4  FNV-1a-32 over bytes [0, 38+N)
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace la::gate {

inline constexpr u16 kGateMagic = 0x4C51;  // "LQ"
inline constexpr u8 kGateVersion = 1;
/// Header + checksum; the smallest parseable frame (empty payload).
inline constexpr std::size_t kFrameOverhead = 42;
/// Hard payload ceiling: a program image plus the job envelope fits with
/// room to spare, and nothing the gateway speaks needs fragmentation.
inline constexpr std::size_t kMaxPayload = 32 * 1024;

/// Frame kinds.  Requests run low, responses have the high bit set and
/// echo the request id they answer.
enum class GateKind : u8 {
  // client -> gateway
  kHello = 0x01,      // open a session (auth handshake)
  kSubmit = 0x02,     // submit a job (payload: JobWire)
  kPoll = 0x03,       // poll a submitted job (payload: request id, 8 B)
  kGateStats = 0x04,  // gateway metrics snapshot (ops)
  kBye = 0x05,        // close the session
  // gateway -> client
  kHelloOk = 0x81,     // session open (payload: session limits)
  kAccepted = 0x82,    // job admitted (payload: farm job id, 8 B)
  kResult = 0x83,      // poll answer (payload: ResultWire)
  kStatsJson = 0x84,   // gateway metrics as UTF-8 JSON
  kByeOk = 0x85,       // session closed
  kRetryAfter = 0x90,  // backpressure: come back later (RetryAfterWire)
  kGateError = 0xff,   // terminal refusal (payload: error code, 1 B)
};

/// Error codes carried in a kGateError payload.
namespace err {
inline constexpr u8 kBadToken = 0x01;      // unknown tenant / wrong token
inline constexpr u8 kNoSession = 0x02;     // command before HELLO
inline constexpr u8 kBadPayload = 0x03;    // payload failed to parse
inline constexpr u8 kUnknownKind = 0x04;   // not a request kind
inline constexpr u8 kUnknownJob = 0x05;    // poll for an id never accepted
inline constexpr u8 kQuotaExceeded = 0x06; // tenant job quota spent
inline constexpr u8 kShuttingDown = 0x07;  // gateway stopping
}  // namespace err

/// Reasons carried in a kRetryAfter payload.  Retry-after is explicit
/// backpressure: the request was understood and refused *for now* —
/// never silently dropped.
namespace retry {
inline constexpr u8 kRateLimited = 0x01;   // token bucket empty
inline constexpr u8 kTenantBusy = 0x02;    // per-tenant in-flight cap
inline constexpr u8 kFarmSaturated = 0x03; // farm queue full (FarmError)
}  // namespace retry

struct GateFrame {
  u8 version = kGateVersion;
  GateKind kind = GateKind::kHello;
  u64 token = 0;
  u64 request_id = 0;
  u64 trace_id = 0;
  u64 span_id = 0;
  Bytes payload;

  /// Wire bytes (header + payload + checksum).
  Bytes serialize() const;

  /// Total parse: a frame, or nullopt on bad magic/version, a length
  /// prefix that disagrees with the datagram, an oversized payload, or a
  /// failed checksum.  Never throws and never reads outside `data`.
  static std::optional<GateFrame> parse(std::span<const u8> data);
};

/// kRetryAfter payload: why, and how long to back off (a hint).
struct RetryAfterWire {
  u8 reason = retry::kFarmSaturated;
  u32 retry_after_ms = 0;

  Bytes serialize() const;
  static std::optional<RetryAfterWire> parse(std::span<const u8> payload);
};

/// kHelloOk payload: the session limits admission control will enforce.
struct HelloOkWire {
  u32 quota_remaining = 0;  // jobs this tenant may still submit
  u16 max_inflight = 0;     // concurrent unfinished jobs allowed
  u16 rate_per_sec = 0;     // token-bucket refill rate
  u16 burst = 0;            // token-bucket depth

  Bytes serialize() const;
  static std::optional<HelloOkWire> parse(std::span<const u8> payload);
};

/// kResult payload: the polled job's state.  `completion_seq` is the
/// gateway's per-tenant completion counter — the per-owner-order audit
/// compares it against submission order end to end.
struct ResultWire {
  enum Status : u8 { kPending = 0, kDone = 1, kFailed = 2 };
  u8 status = kPending;
  u32 completion_seq = 0;  // valid when status != kPending
  u8 attempts = 0;
  u16 node = 0;
  std::vector<u32> words;  // readback (status kDone)
  std::string error;       // failure text (status kFailed)

  Bytes serialize() const;
  static std::optional<ResultWire> parse(std::span<const u8> payload);
};

const char* to_string(GateKind k);

}  // namespace la::gate
