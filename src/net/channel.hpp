// A simulated unreliable IP channel: frames queue up and may be dropped,
// duplicated, or reordered — UDP's contract — driven by a seeded RNG so
// every failure pattern is reproducible.  This is the "Internet" between
// the control software and the FPX (Fig 4).
#pragma once

#include <deque>
#include <optional>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace la::net {

struct ChannelConfig {
  double drop = 0.0;       // probability a frame vanishes
  double duplicate = 0.0;  // probability a frame is delivered twice
  double reorder = 0.0;    // probability a frame jumps the queue
  u64 seed = 1;
};

class Channel {
 public:
  explicit Channel(ChannelConfig cfg = {}) : cfg_(cfg), rng_(cfg.seed) {}

  /// Offer a frame to the channel (loss/duplication/reordering applied).
  void send(Bytes frame);

  /// Take the next deliverable frame, if any.
  std::optional<Bytes> receive();

  bool empty() const { return q_.empty(); }
  std::size_t pending() const { return q_.size(); }

  struct Stats {
    u64 sent = 0;
    u64 dropped = 0;
    u64 duplicated = 0;
    u64 reordered = 0;
    u64 delivered = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  ChannelConfig cfg_;
  Rng rng_;
  std::deque<Bytes> q_;
  Stats stats_;
};

}  // namespace la::net
