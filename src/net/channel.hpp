// A simulated unreliable IP channel: frames queue up and may be dropped,
// duplicated, reordered, corrupted, truncated, or delayed — a hostile
// Internet's contract — driven by a seeded RNG so every failure pattern
// is reproducible.  This is the "Internet" between the control software
// and the FPX (Fig 4).
#pragma once

#include <deque>
#include <optional>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace la::net {

struct ChannelConfig {
  double drop = 0.0;       // probability a frame vanishes
  double duplicate = 0.0;  // probability a frame is delivered twice
  double reorder = 0.0;    // probability a frame jumps the queue
  double corrupt = 0.0;    // probability one random bit of a frame flips
  double truncate = 0.0;   // probability a frame loses a random-length tail
  /// Every frame is held for this many receive attempts before it becomes
  /// deliverable (fixed propagation delay measured in pump rounds, so a
  /// retrying client always makes progress — delays expire, never hang).
  unsigned delay_frames = 0;
  u64 seed = 1;
};

class Channel {
 public:
  explicit Channel(ChannelConfig cfg = {}) : cfg_(cfg), rng_(cfg.seed) {}

  /// Offer a frame to the channel (loss/duplication/reordering/damage
  /// applied).
  void send(Bytes frame);

  /// Take the next deliverable frame, if any.  Each call ages delayed
  /// frames by one round.
  std::optional<Bytes> receive();

  bool empty() const { return q_.empty(); }
  std::size_t pending() const { return q_.size(); }

  /// One-shot deterministic fault hooks (fault-injection engine): the next
  /// frame offered to send() suffers the forced effect regardless of the
  /// configured probabilities.
  void force_corrupt_next() { force_corrupt_ = true; }
  void force_truncate_next() { force_truncate_ = true; }
  void force_delay_next(unsigned rounds) { force_delay_ = rounds; }

  struct Stats {
    u64 sent = 0;
    u64 dropped = 0;
    u64 duplicated = 0;
    u64 reordered = 0;
    u64 corrupted = 0;
    u64 truncated = 0;
    u64 delayed = 0;
    u64 delivered = 0;
  };
  const Stats& stats() const { return stats_; }
  const ChannelConfig& config() const { return cfg_; }

 private:
  struct Entry {
    Bytes frame;
    unsigned delay = 0;  // receive rounds left before deliverable
  };

  void enqueue(Bytes frame, unsigned delay);

  ChannelConfig cfg_;
  Rng rng_;
  std::deque<Entry> q_;
  Stats stats_;
  bool force_corrupt_ = false;
  bool force_truncate_ = false;
  unsigned force_delay_ = 0;
};

}  // namespace la::net
