// WAN emulation presets: the Channel fault knobs, named.
//
// The same seeded impairments the fault-injection engine drives one knob
// at a time (drop / duplicate / reorder / corrupt / truncate / delay)
// also describe whole link regimes.  A WanProfile bundles an uplink and a
// downlink ChannelConfig under a stable name so the in-process emulator
// tests, the gateway tests, and the lload open-traffic harness all mean
// the same thing by "lossy".  See docs/FAULTS.md for the preset table.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "net/channel.hpp"

namespace la::net {

enum class WanProfileKind : u8 {
  kLan = 0,    // clean: loopback-grade, no impairments
  kWan = 1,    // long-haul: mild loss, some delay and reordering
  kLossy = 2,  // hostile: heavy loss/dup/reorder plus frame damage
};

/// A named pair of channel impairment configs (client->node and back).
/// The seeds are split from one profile seed so the two directions fail
/// independently but the whole link is reproducible from one number.
struct WanProfile {
  std::string name;
  ChannelConfig uplink;
  ChannelConfig downlink;

  /// The same profile reseeded (uplink and downlink derive distinct
  /// streams from `seed`); presets default to seed 1.
  WanProfile with_seed(u64 seed) const;
};

/// Preset lookup by kind.
WanProfile wan_profile(WanProfileKind kind);

/// Preset lookup by name ("lan" | "wan" | "lossy"); nullopt otherwise.
std::optional<WanProfile> wan_profile_by_name(std::string_view name);

/// "lan wan lossy" — for usage strings.
const char* wan_profile_names();

}  // namespace la::net
