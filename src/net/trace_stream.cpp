#include "net/trace_stream.hpp"

#include "isa/isa.hpp"

namespace la::net {

TraceRecord TraceRecord::from_step(const cpu::StepResult& r) {
  TraceRecord t;
  t.pc = r.pc;
  t.annulled = r.annulled;
  t.trapped = r.trapped;
  t.mem_access = r.mem_access;
  t.mem_write = r.mem_write;
  t.mem_addr = r.mem_access ? r.mem_addr : 0;
  switch (r.ins.mn) {
    case isa::Mnemonic::kUmul: case isa::Mnemonic::kUmulcc:
    case isa::Mnemonic::kSmul: case isa::Mnemonic::kSmulcc:
      t.is_mul = true;
      break;
    case isa::Mnemonic::kUdiv: case isa::Mnemonic::kUdivcc:
    case isa::Mnemonic::kSdiv: case isa::Mnemonic::kSdivcc:
      t.is_div = true;
      break;
    default:
      break;
  }
  t.is_load = isa::is_load(r.ins.mn);
  return t;
}

void TraceStreamer::on_step(const cpu::StepResult& r) {
  if (in_buf_ == 0) {
    buf_ = ByteWriter{};
    buf_.write_u32(seq_++);
  }
  const TraceRecord t = TraceRecord::from_step(r);
  buf_.write_u32(t.pc);
  buf_.write_u8(t.flags());
  buf_.write_u32(t.mem_addr);
  ++in_buf_;
  ++records_;
  if (in_buf_ >= batch_) flush();
}

void TraceStreamer::flush() {
  if (in_buf_ == 0) return;
  emit_(buf_.take());
  in_buf_ = 0;
  ++datagrams_;
}

std::vector<TraceRecord> TraceReceiver::ingest(std::span<const u8> payload) {
  std::vector<TraceRecord> out;
  if (payload.size() < 4 ||
      (payload.size() - 4) % TraceRecord::kWireBytes != 0) {
    ++malformed_;
    return out;
  }
  ByteReader r(payload);
  const u32 seq = r.read_u32();
  if (last_seq_ && seq > *last_seq_ + 1) lost_ += seq - *last_seq_ - 1;
  last_seq_ = seq;
  ++datagrams_;
  while (r.remaining() >= TraceRecord::kWireBytes) {
    TraceRecord t;
    t.pc = r.read_u32();
    const u8 f = r.read_u8();
    t.annulled = f & 1;
    t.trapped = f & 2;
    t.mem_access = f & 4;
    t.mem_write = f & 8;
    t.is_load = f & 16;
    t.is_mul = f & 32;
    t.is_div = f & 64;
    t.mem_addr = r.read_u32();
    out.push_back(t);
    ++records_;
  }
  return out;
}

}  // namespace la::net
