// Layered protocol wrappers (Fig 3, [Braun/Lockwood/Waldvogel]).
//
// The FPX processes network traffic as a stack of wrappers: the cell layer
// reassembles fixed-size cells into frames, the IP layer parses/validates
// IPv4, and the UDP layer delivers datagrams.  Egress runs the stack in
// reverse.  Each layer keeps drop statistics, because a lossy channel plus
// checksum verification is what makes the control protocol's sequence
// numbers earn their keep.
#pragma once

#include <deque>
#include <optional>

#include "common/snapio.hpp"
#include "net/packet.hpp"

namespace la::net {

struct WrapperStats {
  u64 cells_in = 0;
  u64 cells_out = 0;
  u64 frames_in = 0;
  u64 frames_out = 0;
  u64 ip_bad = 0;         // malformed / bad checksum
  u64 ip_wrong_addr = 0;  // not for this node
  u64 udp_bad = 0;
  u64 datagrams_in = 0;
  u64 datagrams_out = 0;
};

class LayeredWrappers {
 public:
  /// `node_ip` filters ingress traffic; 0 accepts everything.
  explicit LayeredWrappers(Ipv4Addr node_ip = 0) : node_ip_(node_ip) {}

  /// Ingress one cell; a completed, valid UDP datagram pops out when the
  /// cell closes a frame that survives all layers.
  std::optional<UdpDatagram> ingress_cell(const Cell& c);

  /// Ingress a whole frame (convenience for frame-granular channels).
  std::optional<UdpDatagram> ingress_frame(std::span<const u8> frame);

  /// Egress: wrap a datagram into an IP/UDP frame and segment into cells.
  std::vector<Cell> egress(const UdpDatagram& d);

  /// Egress straight to a frame (for frame-granular channels).
  Bytes egress_frame(const UdpDatagram& d);

  Ipv4Addr node_ip() const { return node_ip_; }
  const WrapperStats& stats() const { return stats_; }

  /// Snapshot support: layer counters and the IP identification sequence.
  /// Mid-frame cell-reassembly state is NOT captured — the system snapshots
  /// at datagram granularity (its channels are frame-granular), so there is
  /// never a partially reassembled frame at a capture point.
  void save_state(SnapWriter& w) const {
    w.tag(snap_tag("WRAP"));
    w.u64v(stats_.cells_in);
    w.u64v(stats_.cells_out);
    w.u64v(stats_.frames_in);
    w.u64v(stats_.frames_out);
    w.u64v(stats_.ip_bad);
    w.u64v(stats_.ip_wrong_addr);
    w.u64v(stats_.udp_bad);
    w.u64v(stats_.datagrams_in);
    w.u64v(stats_.datagrams_out);
    w.u16v(next_ip_id_);
  }
  bool load_state(SnapReader& r) {
    if (!r.expect(snap_tag("WRAP"))) return false;
    stats_.cells_in = r.u64v();
    stats_.cells_out = r.u64v();
    stats_.frames_in = r.u64v();
    stats_.frames_out = r.u64v();
    stats_.ip_bad = r.u64v();
    stats_.ip_wrong_addr = r.u64v();
    stats_.udp_bad = r.u64v();
    stats_.datagrams_in = r.u64v();
    stats_.datagrams_out = r.u64v();
    next_ip_id_ = r.u16v();
    return r.ok();
  }

 private:
  Ipv4Addr node_ip_;
  CellReassembler reasm_;
  WrapperStats stats_;
  u16 next_ip_id_ = 1;
};

}  // namespace la::net
