#include "net/wrappers.hpp"

namespace la::net {

std::optional<UdpDatagram> LayeredWrappers::ingress_cell(const Cell& c) {
  ++stats_.cells_in;
  auto frame = reasm_.push(c);
  if (!frame) return std::nullopt;
  return ingress_frame(*frame);
}

std::optional<UdpDatagram> LayeredWrappers::ingress_frame(
    std::span<const u8> frame) {
  ++stats_.frames_in;
  auto d = parse_udp_packet(frame);
  if (!d) {
    ++stats_.ip_bad;
    return std::nullopt;
  }
  if (node_ip_ != 0 && d->dst_ip != node_ip_) {
    ++stats_.ip_wrong_addr;
    return std::nullopt;
  }
  ++stats_.datagrams_in;
  return d;
}

Bytes LayeredWrappers::egress_frame(const UdpDatagram& d) {
  ++stats_.datagrams_out;
  ++stats_.frames_out;
  return build_udp_packet(d, next_ip_id_++);
}

std::vector<Cell> LayeredWrappers::egress(const UdpDatagram& d) {
  const Bytes frame = egress_frame(d);
  auto cells = segment_frame(frame);
  stats_.cells_out += cells.size();
  return cells;
}

}  // namespace la::net
