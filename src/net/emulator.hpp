// Node emulator (Fig 4: "Java Emulator of the H/W (for debugging)").
//
// While the FPGA hardware was being developed, the paper's control
// software was tested against a software emulator speaking the same UDP
// protocol.  This is that emulator: the full network/control path (real
// wrappers, real leon_ctrl, real SRAM image) with the processor replaced
// by a stub that "completes" a run after a configurable number of steps.
// Its observable protocol behaviour must match the real node's — the
// differential test in tests/net/emulator_test.cpp holds it to that.
#pragma once

#include <deque>
#include <memory>
#include <optional>

#include "mem/disconnect.hpp"
#include "mem/memory_map.hpp"
#include "mem/sram.hpp"
#include "mem/boot_rom.hpp"
#include "net/leon_ctrl.hpp"
#include "net/wrappers.hpp"

namespace la::net {

struct EmulatorConfig {
  Ipv4Addr node_ip = make_ip(192, 168, 100, 10);
  u16 node_port = kLeonControlPort;
  u32 sram_size = mem::map::kSramSize;
  /// Emulated steps between Start and the faked return to the polling
  /// loop (the stub "runs" this long).
  u64 run_steps = 50;
};

class NodeEmulator {
 public:
  explicit NodeEmulator(EmulatorConfig cfg = {});

  void ingress_frame(std::span<const u8> frame);
  std::optional<Bytes> egress_frame();

  /// One emulated step (the stand-in for a CPU instruction).
  void step();
  void run(u64 steps) {
    for (u64 i = 0; i < steps; ++i) step();
  }

  LeonController& controller() { return *ctrl_; }
  mem::Sram& sram() { return sram_; }
  const EmulatorConfig& config() const { return cfg_; }

 private:
  EmulatorConfig cfg_;
  Cycles clock_ = 0;
  mem::Sram sram_;
  std::unique_ptr<mem::DisconnectSwitch> switch_;
  LayeredWrappers wrappers_;
  std::unique_ptr<PacketGenerator> pktgen_;
  std::unique_ptr<LeonController> ctrl_;
  std::deque<Bytes> egress_;
  u64 running_for_ = 0;
  bool run_active_ = false;
};

}  // namespace la::net
