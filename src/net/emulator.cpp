#include "net/emulator.hpp"

namespace la::net {

NodeEmulator::NodeEmulator(EmulatorConfig cfg)
    : cfg_(cfg),
      sram_(mem::map::kSramBase, cfg.sram_size),
      wrappers_(cfg.node_ip) {
  switch_ = std::make_unique<mem::DisconnectSwitch>(sram_);
  pktgen_ = std::make_unique<PacketGenerator>(cfg.node_ip, cfg.node_port);
  LeonCtrlConfig lcfg;
  lcfg.mailbox = mem::map::kProgAddrMailbox;
  lcfg.check_ready = mem::map::kRomBase + mem::kCheckReadyOffset;
  lcfg.load_min = mem::map::kSramBase + 4;
  lcfg.load_max = mem::map::kSramBase + cfg.sram_size - 1;
  lcfg.user_code_min = mem::map::kSramBase;
  ctrl_ = std::make_unique<LeonController>(
      lcfg, *switch_, *pktgen_, [this] { run_active_ = false; },
      [this] { return clock_; });
}

void NodeEmulator::ingress_frame(std::span<const u8> frame) {
  auto d = wrappers_.ingress_frame(frame);
  if (!d) return;
  if (d->dst_port == cfg_.node_port) {
    ctrl_->handle(*d);
    // Detect a fresh Start: the stub begins "executing".
    if (ctrl_->state() == LeonState::kRunning && !run_active_) {
      run_active_ = true;
      running_for_ = 0;
    }
  }
  while (auto resp = pktgen_->pop()) {
    egress_.push_back(wrappers_.egress_frame(*resp));
  }
}

std::optional<Bytes> NodeEmulator::egress_frame() {
  if (egress_.empty()) return std::nullopt;
  Bytes f = std::move(egress_.front());
  egress_.pop_front();
  return f;
}

void NodeEmulator::step() {
  ++clock_;
  if (!run_active_) return;
  ++running_for_;
  if (running_for_ == 1) {
    // First emulated instruction: the stub "entered user code".
    ctrl_->on_cpu_pc(mem::map::kSramBase + 0x100);
  }
  if (running_for_ >= cfg_.run_steps) {
    // The stub "returned to the polling loop".
    ctrl_->on_cpu_pc(mem::map::kRomBase + mem::kCheckReadyOffset);
    run_active_ = false;
  }
  while (auto resp = pktgen_->pop()) {
    egress_.push_back(wrappers_.egress_frame(*resp));
  }
}

}  // namespace la::net
