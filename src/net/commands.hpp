// The LEON control protocol carried in UDP payloads (Section 2.6).
//
// Every control packet starts with a one-byte command code; some commands
// carry an additional payload:
//   * Load program: total packet count (1 B), packet sequence number (2 B),
//     memory address (4 B), then the binary chunk.  Multi-packet loads use
//     the sequence number because UDP does not guarantee ordering.
//   * Start LEON: program start address (4 B).
//   * Read memory: address (4 B) + word count (2 B) — the count is our
//     extension (the paper reads one result word).
// Responses from the packet generator echo a response code.
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace la::net {

/// UDP port the control packet processor listens on.
inline constexpr u16 kLeonControlPort = 0x2001;

enum class CommandCode : u8 {
  kStatus = 0x01,         // is LEON up? what state?
  kLoadProgram = 0x02,    // write a program chunk into main memory
  kStart = 0x03,          // begin execution at the given address
  kReadMemory = 0x04,     // return memory contents
  kRestart = 0x05,        // reset the processor and control state machine
  kStatsSnapshot = 0x06,  // poll the node's metrics registry (extension)
  kSetTrace = 0x07,       // attach a causal trace context (extension)
  kStatsStream = 0x08,    // metrics delta window; optional u32 window seq
                          // makes the poll idempotent under dup/reorder
  kFlightDump = 0x09,     // dump the node's flight recorder (extension)
};

enum class ResponseCode : u8 {
  kStatus = 0x81,
  kLoadAck = 0x82,
  kStarted = 0x83,
  kMemoryData = 0x84,
  kStatsData = 0x85,   // metrics snapshot as UTF-8 JSON
  kTraceAck = 0x86,    // trace context accepted
  kStatsDelta = 0x87,  // metrics delta window as UTF-8 JSON
  kFlightData = 0x88,  // flight-recorder dump as UTF-8 JSON
  kError = 0xff,
};

/// Error codes carried as the one-byte payload of a kError response.
namespace err {
inline constexpr u8 kEmptyCommand = 0x01;
inline constexpr u8 kUnknownCommand = 0x02;
inline constexpr u8 kBusy = 0x10;             // load while running
inline constexpr u8 kBadLoad = 0x11;          // malformed load packet
inline constexpr u8 kLoadRange = 0x12;        // load outside SRAM window
inline constexpr u8 kNotStartable = 0x20;     // start while running/loading
inline constexpr u8 kBadStart = 0x21;         // malformed start packet
inline constexpr u8 kRestartRequired = 0x22;  // node in error state
inline constexpr u8 kBadRead = 0x31;          // malformed read packet
inline constexpr u8 kReadRange = 0x32;        // read outside backing memory
inline constexpr u8 kReadParity = 0x33;       // memory parity bad at address
inline constexpr u8 kNoStats = 0x41;          // no metrics registry wired
inline constexpr u8 kNoRecorder = 0x42;       // no flight recorder wired
inline constexpr u8 kBadTrace = 0x43;         // malformed SET_TRACE packet
inline constexpr u8 kBadStreamSeq = 0x44;     // malformed STATS_STREAM seq
inline constexpr u8 kStaleStreamSeq = 0x45;   // seq older than cache window
inline constexpr u8 kWatchdogTrip = 0x50;     // program exceeded cycle budget
}  // namespace err

/// leon_ctrl state reported in status responses.
enum class LeonState : u8 {
  kIdle = 0,
  kLoading = 1,
  kReady = 2,
  kRunning = 3,
  kDone = 4,
  kError = 5,
};

struct LoadProgramCmd {
  u8 total_packets = 1;
  u16 sequence = 0;
  Addr address = 0;
  Bytes data;

  Bytes serialize() const {
    ByteWriter w;
    w.write_u8(static_cast<u8>(CommandCode::kLoadProgram));
    w.write_u8(total_packets);
    w.write_u16(sequence);
    w.write_u32(address);
    w.write_bytes(data);
    return w.take();
  }

  static std::optional<LoadProgramCmd> parse(ByteReader& r) {
    if (r.remaining() < 7) return std::nullopt;
    LoadProgramCmd c;
    c.total_packets = r.read_u8();
    c.sequence = r.read_u16();
    c.address = r.read_u32();
    c.data = r.read_bytes(r.remaining());
    if (c.total_packets == 0 || c.sequence >= c.total_packets ||
        c.data.empty()) {
      return std::nullopt;
    }
    return c;
  }
};

struct StartCmd {
  Addr address = 0;

  Bytes serialize() const {
    ByteWriter w;
    w.write_u8(static_cast<u8>(CommandCode::kStart));
    w.write_u32(address);
    return w.take();
  }

  static std::optional<StartCmd> parse(ByteReader& r) {
    if (r.remaining() < 4) return std::nullopt;
    return StartCmd{r.read_u32()};
  }
};

struct ReadMemoryCmd {
  Addr address = 0;
  u16 words = 1;

  Bytes serialize() const {
    ByteWriter w;
    w.write_u8(static_cast<u8>(CommandCode::kReadMemory));
    w.write_u32(address);
    w.write_u16(words);
    return w.take();
  }

  static std::optional<ReadMemoryCmd> parse(ByteReader& r) {
    if (r.remaining() < 6) return std::nullopt;
    ReadMemoryCmd c;
    c.address = r.read_u32();
    c.words = r.read_u16();
    if (c.words == 0 || c.words > 256) return std::nullopt;
    return c;
  }
};

/// Attach a causal trace context to the node: subsequent leon_ctrl
/// episodes (load, run, error) are attributed to this trace until it is
/// replaced.  A zero trace_id clears the context.  64-bit ids travel as
/// two big-endian u32 halves (the wire format predates 64-bit fields).
struct SetTraceCmd {
  u64 trace_id = 0;
  u64 span_id = 0;

  Bytes serialize() const {
    ByteWriter w;
    w.write_u8(static_cast<u8>(CommandCode::kSetTrace));
    w.write_u32(static_cast<u32>(trace_id >> 32));
    w.write_u32(static_cast<u32>(trace_id));
    w.write_u32(static_cast<u32>(span_id >> 32));
    w.write_u32(static_cast<u32>(span_id));
    return w.take();
  }

  static std::optional<SetTraceCmd> parse(ByteReader& r) {
    if (r.remaining() < 16) return std::nullopt;
    SetTraceCmd c;
    c.trace_id = (static_cast<u64>(r.read_u32()) << 32) | r.read_u32();
    c.span_id = (static_cast<u64>(r.read_u32()) << 32) | r.read_u32();
    return c;
  }
};

inline Bytes simple_command(CommandCode code) {
  return Bytes{static_cast<u8>(code)};
}

}  // namespace la::net
