#include "net/wan_profile.hpp"

#include "common/rng.hpp"

namespace la::net {

WanProfile WanProfile::with_seed(u64 seed) const {
  WanProfile p = *this;
  // Two independent streams from one seed; never 0 (Channel treats the
  // seed as plain RNG state, but 0 would make lan/wan/lossy collide).
  u64 sm = seed;
  p.uplink.seed = splitmix64(sm) | 1;
  p.downlink.seed = splitmix64(sm) | 1;
  return p;
}

WanProfile wan_profile(WanProfileKind kind) {
  WanProfile p;
  switch (kind) {
    case WanProfileKind::kLan:
      // Clean loopback: every frame arrives, once, intact, immediately.
      p.name = "lan";
      break;
    case WanProfileKind::kWan:
      // A long but honest path: a little loss, occasional duplication
      // from retransmitting middleboxes, mild reordering, and a couple
      // of rounds of propagation delay.
      p.name = "wan";
      p.uplink.drop = 0.02;
      p.uplink.duplicate = 0.01;
      p.uplink.reorder = 0.05;
      p.uplink.delay_frames = 2;
      p.downlink = p.uplink;
      break;
    case WanProfileKind::kLossy:
      // The hostile Internet of the paper's threat model: heavy loss and
      // reordering plus in-flight frame damage, so checksums and
      // length prefixes earn their keep, not just retries.
      p.name = "lossy";
      p.uplink.drop = 0.10;
      p.uplink.duplicate = 0.05;
      p.uplink.reorder = 0.15;
      p.uplink.corrupt = 0.02;
      p.uplink.truncate = 0.02;
      p.uplink.delay_frames = 3;
      p.downlink = p.uplink;
      break;
  }
  return p.with_seed(1);
}

std::optional<WanProfile> wan_profile_by_name(std::string_view name) {
  if (name == "lan") return wan_profile(WanProfileKind::kLan);
  if (name == "wan") return wan_profile(WanProfileKind::kWan);
  if (name == "lossy") return wan_profile(WanProfileKind::kLossy);
  return std::nullopt;
}

const char* wan_profile_names() { return "lan wan lossy"; }

}  // namespace la::net
