// The Control Packet Processor and leon_ctrl state machine (Fig 3, §3.1).
//
// The CPP routes UDP traffic arriving on the LEON control port into the
// controller; everything else would flow on to other FPX modules (we count
// it).  The controller is the paper's "external circuitry" (Fig 6): it
// loads programs into SRAM through the user port while the processor is
// disconnected, plants the start address in the mailbox word, watches the
// processor's address bus for the return to the boot ROM's polling loop,
// and answers with response packets via the packet generator.
#pragma once

#include <deque>
#include <functional>
#include <optional>

#include "common/snapio.hpp"
#include "mem/disconnect.hpp"
#include "net/commands.hpp"
#include "net/packet.hpp"

namespace la::net {

/// Response packets waiting to leave through the wrappers.  The queue is
/// bounded (hardware has finite buffer RAM): when a response would exceed
/// `max_queue` the oldest queued response is dropped — it is the one the
/// client has most likely already given up on — and counted.
class PacketGenerator {
 public:
  PacketGenerator(Ipv4Addr node_ip, u16 node_port,
                  std::size_t max_queue = kDefaultMaxQueue)
      : node_ip_(node_ip), node_port_(node_port), max_queue_(max_queue) {}

  static constexpr std::size_t kDefaultMaxQueue = 64;

  /// Queue a response to `dst`.
  void emit(Ipv4Addr dst_ip, u16 dst_port, ResponseCode code,
            Bytes payload = {});

  std::optional<UdpDatagram> pop();
  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::size_t max_queue() const { return max_queue_; }
  u64 emitted() const { return emitted_; }
  u64 responses_dropped() const { return responses_dropped_; }

  /// Snapshot support: queued (not yet popped) responses plus counters.
  /// The node identity (ip/port/max_queue) stays with the restoring
  /// instance, so a snapshot restored onto another node answers from that
  /// node's own address.
  void save_state(SnapWriter& w) const {
    w.tag(snap_tag("PGEN"));
    w.u64v(queue_.size());
    for (const UdpDatagram& d : queue_) {
      w.u32v(d.src_ip);
      w.u32v(d.dst_ip);
      w.u16v(d.src_port);
      w.u16v(d.dst_port);
      w.bytes(d.payload);
    }
    w.u64v(emitted_);
    w.u64v(responses_dropped_);
  }
  bool load_state(SnapReader& r) {
    if (!r.expect(snap_tag("PGEN"))) return false;
    queue_.clear();
    for (u64 i = 0, n = r.u64v(); i < n && r.ok(); ++i) {
      UdpDatagram d;
      d.src_ip = r.u32v();
      d.dst_ip = r.u32v();
      d.src_port = r.u16v();
      d.dst_port = r.u16v();
      d.payload = r.bytes();
      queue_.push_back(std::move(d));
    }
    emitted_ = r.u64v();
    responses_dropped_ = r.u64v();
    return r.ok();
  }

 private:
  Ipv4Addr node_ip_;
  u16 node_port_;
  std::size_t max_queue_;
  std::deque<UdpDatagram> queue_;
  u64 emitted_ = 0;
  u64 responses_dropped_ = 0;
};

struct LeonCtrlConfig {
  Addr mailbox = 0x40000000;       // polled program-address word
  Addr check_ready = 0x40;         // boot ROM polling loop entry
  Addr load_min = 0x40000004;      // loads must stay inside SRAM
  Addr load_max = 0x400fffff;
  /// PCs at or above this are user code; completion detection only arms
  /// after the processor has been observed executing out there (otherwise
  /// the poll loop's own visit to check_ready would read as "returned").
  Addr user_code_min = 0x40000000;
};

class LeonController {
 public:
  using ResetCpu = std::function<void()>;
  using Now = std::function<Cycles()>;

  /// `now` reads the node clock so the controller can time runs (the
  /// hardware cycle-counting state machine of §4); may be null.
  LeonController(const LeonCtrlConfig& cfg, mem::DisconnectSwitch& sw,
                 PacketGenerator& gen, ResetCpu reset_cpu,
                 Now now = nullptr);

  /// Handle one control datagram (already filtered to the control port).
  void handle(const UdpDatagram& d);

  /// Called by the system after every processor step with the PC of the
  /// instruction just executed (the circuit "probes LEON's address bus").
  void on_cpu_pc(Addr pc);

  LeonState state() const { return state_; }

  /// Cycles from the last Start command to the program's return to the
  /// polling loop (valid once state reaches kDone; 0 before any run).
  Cycles last_run_cycles() const { return last_run_cycles_; }

  /// Debug hook of §4.1: force the state machine into an error state; an
  /// error packet is transmitted to the last requester.
  void force_error(u8 code);

  /// Watchdog expiry: the running program blew its cycle budget.  Drives
  /// the §4.1 error path — the processor is unplugged (it may be wedged;
  /// only RESTART revives it), the mailbox is cleared, and an unsolicited
  /// 0xff/kWatchdogTrip packet goes to the last requester.  STATUS and
  /// RESTART keep working throughout: the controller is external circuitry
  /// and never depends on the CPU.
  void watchdog_trip();

  /// Serialized metrics snapshot (UTF-8 JSON) returned for the
  /// STATS_SNAPSHOT command.  Wired by the system that owns the metrics
  /// registry; unset, the command answers with error 0x41.
  using StatsProvider = std::function<Bytes()>;
  void set_stats_provider(StatsProvider p) {
    stats_provider_ = std::move(p);
  }

  /// Serialized metrics *delta* (UTF-8 JSON, the window since the previous
  /// STATS_STREAM poll) for the STATS_STREAM command.  Unset: error 0x41.
  using DeltaProvider = std::function<Bytes()>;
  void set_delta_provider(DeltaProvider p) { delta_provider_ = std::move(p); }

  /// Serialized flight-recorder dump (UTF-8 JSON) for the FLIGHT_DUMP
  /// command.  Unset, the command answers with error 0x42.
  using FlightProvider = std::function<Bytes()>;
  void set_flight_provider(FlightProvider p) {
    flight_provider_ = std::move(p);
  }

  /// Observes every state-machine transition (old, new), after the state
  /// changes but before the response packet is emitted.  The system uses
  /// it to record transitions in the flight recorder and to auto-dump on
  /// entry to kError.
  using StateObserver = std::function<void(LeonState, LeonState)>;
  void set_state_observer(StateObserver o) { state_observer_ = std::move(o); }

  /// Causal trace context attached by the SET_TRACE command (0 = none).
  /// Episodes between Start and Done/Error belong to this trace.
  u64 trace_id() const { return trace_id_; }
  u64 trace_span_id() const { return trace_span_id_; }

  struct Stats {
    u64 commands = 0;
    u64 bad_commands = 0;
    u64 chunks_loaded = 0;
    u64 duplicate_chunks = 0;
    u64 programs_started = 0;
    u64 programs_completed = 0;
    u64 watchdog_trips = 0;
    u64 parity_read_errors = 0;  // READ_MEMORY refused on bad parity
    u64 traces_attached = 0;     // SET_TRACE commands accepted
    u64 stream_polls = 0;        // STATS_STREAM commands answered
    u64 stream_replays = 0;      // of which: cached windows re-served
    u64 flight_dumps = 0;        // FLIGHT_DUMP commands answered
  };
  const Stats& stats() const { return stats_; }

  /// Snapshot support: the full state machine — phase, load tracking,
  /// requester address, run timing, trace binding, counters.  Callbacks and
  /// providers stay with the restoring instance.  Restore sets state_
  /// directly without notifying the state observer (a restore is not a
  /// transition).
  void save_state(SnapWriter& w) const;
  bool load_state(SnapReader& r);

 private:
  void respond(ResponseCode code, Bytes payload = {});
  void respond_status();
  void respond_error(u8 code);
  void handle_load(ByteReader& r);
  void handle_start(ByteReader& r);
  void handle_read(ByteReader& r);
  void handle_restart();
  void handle_stats_snapshot();
  void handle_set_trace(ByteReader& r);
  void handle_stats_stream(ByteReader& r);
  void handle_flight_dump();
  /// The one place state_ changes: notifies the state observer.
  void set_state(LeonState next);

  LeonCtrlConfig cfg_;
  mem::DisconnectSwitch& sw_;
  PacketGenerator& gen_;
  ResetCpu reset_cpu_;
  Now now_;
  Cycles run_started_at_ = 0;
  Cycles last_run_cycles_ = 0;

  LeonState state_ = LeonState::kIdle;
  bool seen_user_code_ = false;  // armed once the CPU leaves the boot ROM
  // Multi-packet load tracking.
  u8 expected_packets_ = 0;
  std::vector<bool> received_;
  u32 received_count_ = 0;
  // Requester of the most recent command (responses go back there).
  Ipv4Addr client_ip_ = 0;
  u16 client_port_ = 0;
  /// Recent sequenced STATS_STREAM windows (seq -> exact response bytes),
  /// newest at the back.  Deep enough that a duplicate of the previous
  /// poll — the common reorder distance — always replays from cache.
  static constexpr std::size_t kStreamCacheWindows = 4;
  std::deque<std::pair<u32, Bytes>> stream_cache_;
  StatsProvider stats_provider_;
  DeltaProvider delta_provider_;
  FlightProvider flight_provider_;
  StateObserver state_observer_;
  u64 trace_id_ = 0;
  u64 trace_span_id_ = 0;
  Stats stats_;
};

/// Routes ingress datagrams: control traffic to the controller, the rest
/// onward (counted; other FPX modules are out of scope).
class ControlPacketProcessor {
 public:
  explicit ControlPacketProcessor(LeonController& ctrl) : ctrl_(ctrl) {}

  void ingress(const UdpDatagram& d) {
    if (d.dst_port == kLeonControlPort) {
      ++control_;
      ctrl_.handle(d);
    } else {
      ++passthrough_;
    }
  }

  u64 control_packets() const { return control_; }
  u64 passthrough_packets() const { return passthrough_; }

  void save_state(SnapWriter& w) const {
    w.tag(snap_tag("CPP "));
    w.u64v(control_);
    w.u64v(passthrough_);
  }
  bool load_state(SnapReader& r) {
    if (!r.expect(snap_tag("CPP "))) return false;
    control_ = r.u64v();
    passthrough_ = r.u64v();
    return r.ok();
  }

 private:
  LeonController& ctrl_;
  u64 control_ = 0;
  u64 passthrough_ = 0;
};

}  // namespace la::net
