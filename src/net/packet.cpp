#include "net/packet.hpp"

#include <algorithm>
#include <cstring>

namespace la::net {

u16 internet_checksum(std::span<const u8> data, u32 initial) {
  u32 sum = initial;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (u32{data[i]} << 8) | data[i + 1];
  }
  if (i < data.size()) sum += u32{data[i]} << 8;  // odd byte, zero-padded
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<u16>(~sum);
}

void Ipv4Header::serialize(ByteWriter& w) const {
  ByteWriter h;
  h.write_u8(static_cast<u8>((version << 4) | ihl));
  h.write_u8(tos);
  h.write_u16(total_length);
  h.write_u16(identification);
  h.write_u16(flags_fragment);
  h.write_u8(ttl);
  h.write_u8(protocol);
  h.write_u16(0);  // checksum placeholder
  h.write_u32(src);
  h.write_u32(dst);
  Bytes bytes = h.take();
  const u16 ck = internet_checksum(bytes);
  bytes[10] = static_cast<u8>(ck >> 8);
  bytes[11] = static_cast<u8>(ck);
  w.write_bytes(bytes);
}

std::optional<Ipv4Header> Ipv4Header::parse(ByteReader& r,
                                            std::size_t total_available) {
  if (r.remaining() < kSize) return std::nullopt;
  const std::size_t start = r.position();
  Ipv4Header h;
  const u8 vi = r.read_u8();
  h.version = vi >> 4;
  h.ihl = vi & 0xf;
  h.tos = r.read_u8();
  h.total_length = r.read_u16();
  h.identification = r.read_u16();
  h.flags_fragment = r.read_u16();
  h.ttl = r.read_u8();
  h.protocol = r.read_u8();
  h.checksum = r.read_u16();
  h.src = r.read_u32();
  h.dst = r.read_u32();
  if (h.version != 4 || h.ihl != 5) return std::nullopt;
  if (h.total_length < kSize || h.total_length > total_available) {
    return std::nullopt;
  }
  // Verify: checksum over the header (with its checksum field in place)
  // must come out zero... equivalently recompute with the field zeroed.
  ByteWriter chk;
  Ipv4Header copy = h;
  copy.serialize(chk);
  const Bytes& fresh = chk.bytes();
  // fresh has the correct checksum; compare against the wire bytes' field.
  const u16 expect = static_cast<u16>((u16{fresh[10]} << 8) | fresh[11]);
  if (expect != h.checksum) return std::nullopt;
  (void)start;
  return h;
}

void UdpHeader::serialize(ByteWriter& w) const {
  w.write_u16(src_port);
  w.write_u16(dst_port);
  w.write_u16(length);
  w.write_u16(checksum);
}

std::optional<UdpHeader> UdpHeader::parse(ByteReader& r) {
  if (r.remaining() < kSize) return std::nullopt;
  UdpHeader h;
  h.src_port = r.read_u16();
  h.dst_port = r.read_u16();
  h.length = r.read_u16();
  h.checksum = r.read_u16();
  if (h.length < kSize) return std::nullopt;
  return h;
}

u16 udp_checksum(Ipv4Addr src, Ipv4Addr dst, const UdpHeader& h,
                 std::span<const u8> payload) {
  ByteWriter w;
  // Pseudo-header.
  w.write_u32(src);
  w.write_u32(dst);
  w.write_u8(0);
  w.write_u8(17);
  w.write_u16(h.length);
  // UDP header with zero checksum.
  w.write_u16(h.src_port);
  w.write_u16(h.dst_port);
  w.write_u16(h.length);
  w.write_u16(0);
  w.write_bytes(payload);
  u16 ck = internet_checksum(w.bytes());
  if (ck == 0) ck = 0xffff;  // RFC 768: transmitted as all-ones
  return ck;
}

Bytes build_udp_packet(const UdpDatagram& d, u16 ip_id) {
  UdpHeader uh;
  uh.src_port = d.src_port;
  uh.dst_port = d.dst_port;
  uh.length = static_cast<u16>(UdpHeader::kSize + d.payload.size());
  uh.checksum = udp_checksum(d.src_ip, d.dst_ip, uh, d.payload);

  Ipv4Header ih;
  ih.total_length =
      static_cast<u16>(Ipv4Header::kSize + UdpHeader::kSize + d.payload.size());
  ih.identification = ip_id;
  ih.src = d.src_ip;
  ih.dst = d.dst_ip;

  ByteWriter w;
  ih.serialize(w);
  uh.serialize(w);
  w.write_bytes(d.payload);
  return w.take();
}

std::optional<UdpDatagram> parse_udp_packet(std::span<const u8> packet) {
  ByteReader r(packet);
  const auto ih = Ipv4Header::parse(r, packet.size());
  if (!ih || ih->protocol != 17) return std::nullopt;
  const auto uh = UdpHeader::parse(r);
  if (!uh) return std::nullopt;
  const std::size_t payload_len = uh->length - UdpHeader::kSize;
  if (r.remaining() < payload_len) return std::nullopt;
  UdpDatagram d;
  d.src_ip = ih->src;
  d.dst_ip = ih->dst;
  d.src_port = uh->src_port;
  d.dst_port = uh->dst_port;
  d.payload = r.read_bytes(payload_len);
  if (uh->checksum != 0) {
    UdpHeader copy = *uh;
    const u16 expect = udp_checksum(ih->src, ih->dst, copy, d.payload);
    if (expect != uh->checksum) return std::nullopt;
  }
  return d;
}

std::vector<Cell> segment_frame(std::span<const u8> frame) {
  std::vector<Cell> cells;
  std::size_t off = 0;
  do {
    Cell c;
    const std::size_t n = std::min(kCellPayload, frame.size() - off);
    std::memcpy(c.payload, frame.data() + off, n);
    c.frame_bytes_valid = static_cast<u16>(n);
    off += n;
    c.last = off >= frame.size();
    cells.push_back(c);
  } while (off < frame.size());
  return cells;
}

std::optional<Bytes> CellReassembler::push(const Cell& c) {
  ++cells_;
  partial_.insert(partial_.end(), c.payload, c.payload + c.frame_bytes_valid);
  if (!c.last) return std::nullopt;
  ++frames_;
  Bytes out = std::move(partial_);
  partial_.clear();
  return out;
}

}  // namespace la::net
