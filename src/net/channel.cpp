#include "net/channel.hpp"

namespace la::net {

void Channel::enqueue(Bytes frame, unsigned delay) {
  if (rng_.chance(cfg_.reorder) && !q_.empty()) {
    // Jump ahead of a random number of queued frames.
    const u32 skip = rng_.below(static_cast<u32>(q_.size())) + 1;
    q_.insert(q_.end() - skip, Entry{std::move(frame), delay});
    ++stats_.reordered;
  } else {
    q_.push_back(Entry{std::move(frame), delay});
  }
}

void Channel::send(Bytes frame) {
  ++stats_.sent;
  if (rng_.chance(cfg_.drop)) {
    ++stats_.dropped;
    force_corrupt_ = false;
    force_truncate_ = false;
    force_delay_ = 0;
    return;
  }

  if (!frame.empty() && (force_corrupt_ || rng_.chance(cfg_.corrupt))) {
    // One random bit of one random byte flips — enough to break an IP or
    // UDP checksum so the wrappers' verification path gets real exercise.
    const u32 byte = rng_.below(static_cast<u32>(frame.size()));
    frame[byte] ^= static_cast<u8>(1u << rng_.below(8));
    ++stats_.corrupted;
    force_corrupt_ = false;
  }
  if (!frame.empty() && (force_truncate_ || rng_.chance(cfg_.truncate))) {
    // Keep a random proper prefix (possibly empty — a fully eaten frame).
    frame.resize(rng_.below(static_cast<u32>(frame.size())));
    ++stats_.truncated;
    force_truncate_ = false;
  }

  unsigned delay = cfg_.delay_frames;
  if (force_delay_ > 0) {
    delay += force_delay_;
    force_delay_ = 0;
  }
  if (delay > 0) ++stats_.delayed;

  const bool dup = rng_.chance(cfg_.duplicate);
  enqueue(frame, delay);
  if (dup) {
    q_.push_back(Entry{frame, delay});
    ++stats_.duplicated;
  }
}

std::optional<Bytes> Channel::receive() {
  if (q_.empty()) return std::nullopt;
  // Age every in-flight frame one round; a head frame still in flight
  // yields nothing this round but will surface on a later attempt.
  for (Entry& e : q_) {
    if (e.delay > 0) --e.delay;
  }
  if (q_.front().delay > 0) return std::nullopt;
  Bytes f = std::move(q_.front().frame);
  q_.pop_front();
  ++stats_.delivered;
  return f;
}

}  // namespace la::net
