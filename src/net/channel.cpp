#include "net/channel.hpp"

namespace la::net {

void Channel::send(Bytes frame) {
  ++stats_.sent;
  if (rng_.chance(cfg_.drop)) {
    ++stats_.dropped;
    return;
  }
  const bool dup = rng_.chance(cfg_.duplicate);
  if (rng_.chance(cfg_.reorder) && !q_.empty()) {
    // Jump ahead of a random number of queued frames.
    const u32 skip = rng_.below(static_cast<u32>(q_.size())) + 1;
    q_.insert(q_.end() - skip, frame);
    ++stats_.reordered;
  } else {
    q_.push_back(frame);
  }
  if (dup) {
    q_.push_back(frame);
    ++stats_.duplicated;
  }
}

std::optional<Bytes> Channel::receive() {
  if (q_.empty()) return std::nullopt;
  Bytes f = std::move(q_.front());
  q_.pop_front();
  ++stats_.delivered;
  return f;
}

}  // namespace la::net
