// Byte-accurate IPv4 and UDP packet handling, plus the cell framing used
// by the FPX's layered protocol wrappers (the FPX carries traffic as
// fixed-size cells; frames are segmented/reassembled AAL5-style).
#pragma once

#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace la::net {

/// IPv4 address as a host-order u32 (10.0.0.1 = 0x0a000001).
using Ipv4Addr = u32;

inline constexpr Ipv4Addr make_ip(u8 a, u8 b, u8 c, u8 d) {
  return (u32{a} << 24) | (u32{b} << 16) | (u32{c} << 8) | u32{d};
}

/// RFC 1071 ones'-complement checksum over a byte span (pad odd length).
u16 internet_checksum(std::span<const u8> data, u32 initial = 0);

struct Ipv4Header {
  u8 version = 4;
  u8 ihl = 5;  // no options
  u8 tos = 0;
  u16 total_length = 0;
  u16 identification = 0;
  u16 flags_fragment = 0;
  u8 ttl = 64;
  u8 protocol = 17;  // UDP
  u16 checksum = 0;
  Ipv4Addr src = 0;
  Ipv4Addr dst = 0;

  static constexpr std::size_t kSize = 20;

  /// Serialize with a freshly computed header checksum.
  void serialize(ByteWriter& w) const;
  /// Parse and verify (version, IHL, checksum, total_length vs buffer).
  /// Returns nullopt on any violation.
  static std::optional<Ipv4Header> parse(ByteReader& r,
                                         std::size_t total_available);
};

struct UdpHeader {
  u16 src_port = 0;
  u16 dst_port = 0;
  u16 length = 0;  // header + payload
  u16 checksum = 0;

  static constexpr std::size_t kSize = 8;

  void serialize(ByteWriter& w) const;
  static std::optional<UdpHeader> parse(ByteReader& r);
};

/// A parsed UDP datagram with addressing metadata.
struct UdpDatagram {
  Ipv4Addr src_ip = 0;
  Ipv4Addr dst_ip = 0;
  u16 src_port = 0;
  u16 dst_port = 0;
  Bytes payload;
};

/// Build a complete IP/UDP packet (with real checksums) from a datagram.
Bytes build_udp_packet(const UdpDatagram& d, u16 ip_id = 0);

/// Parse a complete IP/UDP packet; nullopt on malformed input or failed
/// checksum (UDP checksum 0 means "not computed" per the RFC and passes).
std::optional<UdpDatagram> parse_udp_packet(std::span<const u8> packet);

/// Compute the UDP checksum including the IPv4 pseudo-header.
u16 udp_checksum(Ipv4Addr src, Ipv4Addr dst, const UdpHeader& h,
                 std::span<const u8> payload);

// ---- Cell framing (the lowest wrapper layer) --------------------------------

/// Fixed cell payload size (ATM-like: 48 bytes of payload per cell).
inline constexpr std::size_t kCellPayload = 48;

struct Cell {
  bool last = false;           // end-of-frame marker (AAL5-style)
  u16 frame_bytes_valid = 0;   // valid bytes in this cell
  u8 payload[kCellPayload] = {};
};

/// Segment a frame into cells.
std::vector<Cell> segment_frame(std::span<const u8> frame);

/// Streaming reassembler: feed cells, get complete frames.
class CellReassembler {
 public:
  /// Returns a completed frame when `c.last` closes one.
  std::optional<Bytes> push(const Cell& c);

  u64 cells_seen() const { return cells_; }
  u64 frames_completed() const { return frames_; }

 private:
  Bytes partial_;
  u64 cells_ = 0;
  u64 frames_ = 0;
};

}  // namespace la::net
