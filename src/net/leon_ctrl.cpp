#include "net/leon_ctrl.hpp"

namespace la::net {

void PacketGenerator::emit(Ipv4Addr dst_ip, u16 dst_port, ResponseCode code,
                           Bytes payload) {
  UdpDatagram d;
  d.src_ip = node_ip_;
  d.src_port = node_port_;
  d.dst_ip = dst_ip;
  d.dst_port = dst_port;
  d.payload.reserve(payload.size() + 1);
  d.payload.push_back(static_cast<u8>(code));
  d.payload.insert(d.payload.end(), payload.begin(), payload.end());
  while (max_queue_ > 0 && queue_.size() >= max_queue_) {
    queue_.pop_front();
    ++responses_dropped_;
  }
  queue_.push_back(std::move(d));
  ++emitted_;
}

std::optional<UdpDatagram> PacketGenerator::pop() {
  if (queue_.empty()) return std::nullopt;
  UdpDatagram d = std::move(queue_.front());
  queue_.pop_front();
  return d;
}

LeonController::LeonController(const LeonCtrlConfig& cfg,
                               mem::DisconnectSwitch& sw,
                               PacketGenerator& gen, ResetCpu reset_cpu,
                               Now now)
    : cfg_(cfg),
      sw_(sw),
      gen_(gen),
      reset_cpu_(std::move(reset_cpu)),
      now_(std::move(now)) {
  // At power-on the processor spins in its polling loop on a zero mailbox;
  // it starts connected so the poll actually reads memory.
  sw_.user_port().backdoor_write_word(cfg_.mailbox, 0);
  sw_.set_connected(true);
}

void LeonController::respond(ResponseCode code, Bytes payload) {
  gen_.emit(client_ip_, client_port_, code, std::move(payload));
}

void LeonController::respond_status() {
  ByteWriter w;
  w.write_u8(static_cast<u8>(state_));
  w.write_u8(expected_packets_);
  w.write_u16(static_cast<u16>(received_count_));
  respond(ResponseCode::kStatus, w.take());
}

void LeonController::respond_error(u8 code) {
  respond(ResponseCode::kError, Bytes{code});
}

void LeonController::handle(const UdpDatagram& d) {
  ++stats_.commands;
  client_ip_ = d.src_ip;
  client_port_ = d.src_port;
  ByteReader r(d.payload);
  if (r.empty()) {
    ++stats_.bad_commands;
    respond_error(err::kEmptyCommand);
    return;
  }
  const u8 code = r.read_u8();
  switch (static_cast<CommandCode>(code)) {
    case CommandCode::kStatus:
      respond_status();
      return;
    case CommandCode::kLoadProgram:
      handle_load(r);
      return;
    case CommandCode::kStart:
      handle_start(r);
      return;
    case CommandCode::kReadMemory:
      handle_read(r);
      return;
    case CommandCode::kRestart:
      handle_restart();
      return;
    case CommandCode::kStatsSnapshot:
      handle_stats_snapshot();
      return;
    case CommandCode::kSetTrace:
      handle_set_trace(r);
      return;
    case CommandCode::kStatsStream:
      handle_stats_stream(r);
      return;
    case CommandCode::kFlightDump:
      handle_flight_dump();
      return;
    default:
      ++stats_.bad_commands;
      respond_error(err::kUnknownCommand);
      return;
  }
}

void LeonController::handle_load(ByteReader& r) {
  if (state_ == LeonState::kRunning) {
    ++stats_.bad_commands;
    respond_error(err::kBusy);
    return;
  }
  if (state_ == LeonState::kError) {
    // The processor may be wedged and memory in an unknown state; only a
    // RESTART (which resets both) makes the node loadable again.
    ++stats_.bad_commands;
    respond_error(err::kRestartRequired);
    return;
  }
  const auto cmd = LoadProgramCmd::parse(r);
  if (!cmd) {
    ++stats_.bad_commands;
    respond_error(err::kBadLoad);
    return;
  }
  if (cmd->address < cfg_.load_min ||
      static_cast<u64>(cmd->address) + cmd->data.size() - 1 > cfg_.load_max) {
    ++stats_.bad_commands;
    respond_error(err::kLoadRange);  // out of the loadable SRAM window
    return;
  }

  // A chunk whose (total, sequence) matches an already-received one is a
  // retransmission (lost ack, duplicating channel): rewrite the bytes and
  // re-ack, but never regress a completed load back to kLoading.
  const bool retransmission =
      expected_packets_ == cmd->total_packets &&
      cmd->sequence < received_.size() && received_[cmd->sequence] &&
      (state_ == LeonState::kLoading || state_ == LeonState::kReady);

  if (!retransmission &&
      (state_ != LeonState::kLoading ||
       expected_packets_ != cmd->total_packets)) {
    // First chunk of a new load session.
    set_state(LeonState::kLoading);
    expected_packets_ = cmd->total_packets;
    received_.assign(cmd->total_packets, false);
    received_count_ = 0;
    // The external circuitry unplugs the processor while memory is owned
    // by the user path (§3.1).
    sw_.set_connected(false);
  }

  if (received_[cmd->sequence]) {
    ++stats_.duplicate_chunks;
  } else {
    received_[cmd->sequence] = true;
    ++received_count_;
    ++stats_.chunks_loaded;
  }
  sw_.user_port().backdoor_write(cmd->address, cmd->data);

  if (state_ == LeonState::kLoading &&
      received_count_ == expected_packets_) {
    set_state(LeonState::kReady);
  }
  ByteWriter w;
  w.write_u16(cmd->sequence);
  w.write_u8(static_cast<u8>(state_));
  respond(ResponseCode::kLoadAck, w.take());
}

void LeonController::handle_start(ByteReader& r) {
  const auto cmd = StartCmd::parse(r);
  if (!cmd) {
    ++stats_.bad_commands;
    respond_error(err::kBadStart);
    return;
  }
  if (state_ == LeonState::kError) {
    ++stats_.bad_commands;
    respond_error(err::kRestartRequired);
    return;
  }
  if (state_ == LeonState::kRunning || state_ == LeonState::kLoading) {
    ++stats_.bad_commands;
    respond_error(err::kNotStartable);
    return;
  }
  // Plant the start address in the mailbox and reconnect: the polling
  // loop's next (flushed) read jumps to the user program.
  sw_.user_port().backdoor_write_word(cfg_.mailbox, cmd->address);
  sw_.set_connected(true);
  set_state(LeonState::kRunning);
  seen_user_code_ = false;  // completion arms once the CPU enters user code
  if (now_) run_started_at_ = now_();
  ++stats_.programs_started;
  respond(ResponseCode::kStarted);
}

void LeonController::handle_read(ByteReader& r) {
  const auto cmd = ReadMemoryCmd::parse(r);
  if (!cmd) {
    ++stats_.bad_commands;
    respond_error(err::kBadRead);
    return;
  }
  ByteWriter w;
  w.write_u32(cmd->address);
  for (u16 i = 0; i < cmd->words; ++i) {
    const Addr a = cmd->address + 4u * i;
    if (!sw_.user_port().parity_ok(a, 4)) {
      // The stored word's check bits are bad — returning its bytes would
      // hand the operator silently corrupted data.  Refuse instead.
      ++stats_.parity_read_errors;
      respond_error(err::kReadParity);
      return;
    }
    u8 bytes[4] = {};
    if (!sw_.user_port().backdoor_read(a, bytes)) {
      ++stats_.bad_commands;
      respond_error(err::kReadRange);
      return;
    }
    w.write_bytes(bytes);
  }
  respond(ResponseCode::kMemoryData, w.take());
}

void LeonController::handle_stats_snapshot() {
  if (!stats_provider_) {
    ++stats_.bad_commands;
    respond_error(err::kNoStats);  // node exposes no metrics registry
    return;
  }
  respond(ResponseCode::kStatsData, stats_provider_());
}

void LeonController::handle_set_trace(ByteReader& r) {
  const auto cmd = SetTraceCmd::parse(r);
  if (!cmd) {
    ++stats_.bad_commands;
    respond_error(err::kBadTrace);
    return;
  }
  trace_id_ = cmd->trace_id;
  trace_span_id_ = cmd->span_id;
  ++stats_.traces_attached;
  respond(ResponseCode::kTraceAck);
}

void LeonController::handle_stats_stream(ByteReader& r) {
  if (!delta_provider_) {
    ++stats_.bad_commands;
    respond_error(err::kNoStats);  // node exposes no metrics registry
    return;
  }
  if (r.remaining() == 0) {
    // Legacy form: no window id, every poll advances the stream.  Only
    // safe on a wire that neither duplicates nor reorders.
    ++stats_.stream_polls;
    respond(ResponseCode::kStatsDelta, delta_provider_());
    return;
  }
  if (r.remaining() != 4) {
    ++stats_.bad_commands;
    respond_error(err::kBadStreamSeq);
    return;
  }
  // Sequenced form: the client names the window it wants.  Asking again
  // for a cached window re-serves those exact bytes — the stream does
  // NOT advance — so a duplicated or retried poll can never make a delta
  // window vanish.  A seq below the cache is a reordered ghost of a poll
  // the client has already moved past; answering it with fresh data
  // would burn a window nobody reads, so it gets a typed error instead.
  const u32 seq = r.read_u32();
  for (const auto& [cached_seq, window] : stream_cache_) {
    if (cached_seq == seq) {
      ++stats_.stream_polls;
      ++stats_.stream_replays;
      respond(ResponseCode::kStatsDelta, window);
      return;
    }
  }
  if (!stream_cache_.empty() && seq <= stream_cache_.back().first) {
    ++stats_.bad_commands;
    respond_error(err::kStaleStreamSeq);
    return;
  }
  ++stats_.stream_polls;
  Bytes window = delta_provider_();
  stream_cache_.emplace_back(seq, window);
  if (stream_cache_.size() > kStreamCacheWindows) stream_cache_.pop_front();
  respond(ResponseCode::kStatsDelta, std::move(window));
}

void LeonController::handle_flight_dump() {
  if (!flight_provider_) {
    ++stats_.bad_commands;
    respond_error(err::kNoRecorder);  // node has no flight recorder
    return;
  }
  ++stats_.flight_dumps;
  respond(ResponseCode::kFlightData, flight_provider_());
}

void LeonController::set_state(LeonState next) {
  if (next == state_) return;
  const LeonState prev = state_;
  state_ = next;
  if (state_observer_) state_observer_(prev, next);
}

void LeonController::handle_restart() {
  sw_.set_connected(false);
  sw_.user_port().backdoor_write_word(cfg_.mailbox, 0);
  if (reset_cpu_) reset_cpu_();
  sw_.set_connected(true);
  set_state(LeonState::kIdle);
  expected_packets_ = 0;
  received_.clear();
  received_count_ = 0;
  respond_status();
}

void LeonController::on_cpu_pc(Addr pc) {
  if (state_ != LeonState::kRunning) return;
  if (pc >= cfg_.user_code_min) {
    seen_user_code_ = true;
    return;
  }
  if (seen_user_code_ && pc == cfg_.check_ready) {
    // The program's final jump landed back in the polling loop: detection
    // disconnects the processor and clears the mailbox before the poll can
    // re-read the stale start address.
    sw_.user_port().backdoor_write_word(cfg_.mailbox, 0);
    sw_.set_connected(false);
    set_state(LeonState::kDone);
    if (now_) last_run_cycles_ = now_() - run_started_at_;
    ++stats_.programs_completed;
  }
}

void LeonController::force_error(u8 code) {
  set_state(LeonState::kError);
  respond_error(code);
}

void LeonController::watchdog_trip() {
  if (state_ != LeonState::kRunning) return;
  // Unplug the (possibly wedged) processor and clear the mailbox so a
  // stale start address can never relaunch the dead program; then tell the
  // operator.  The controller itself stays fully responsive.
  sw_.user_port().backdoor_write_word(cfg_.mailbox, 0);
  sw_.set_connected(false);
  ++stats_.watchdog_trips;
  set_state(LeonState::kError);
  respond_error(err::kWatchdogTrip);
}

namespace {
constexpr u32 kCtrlTag = snap_tag("LCTL");
}  // namespace

void LeonController::save_state(SnapWriter& w) const {
  w.tag(kCtrlTag);
  w.u8v(static_cast<u8>(state_));
  w.b(seen_user_code_);
  w.u8v(expected_packets_);
  w.vec_bool(received_);
  w.u32v(received_count_);
  w.u32v(client_ip_);
  w.u16v(client_port_);
  w.u64v(static_cast<u64>(run_started_at_));
  w.u64v(static_cast<u64>(last_run_cycles_));
  w.u64v(trace_id_);
  w.u64v(trace_span_id_);
  w.u64v(stats_.commands);
  w.u64v(stats_.bad_commands);
  w.u64v(stats_.chunks_loaded);
  w.u64v(stats_.duplicate_chunks);
  w.u64v(stats_.programs_started);
  w.u64v(stats_.programs_completed);
  w.u64v(stats_.watchdog_trips);
  w.u64v(stats_.parity_read_errors);
  w.u64v(stats_.traces_attached);
  w.u64v(stats_.stream_polls);
  w.u64v(stats_.stream_replays);
  w.u64v(stats_.flight_dumps);
  // The stream replay cache travels too: a restored node must keep
  // re-serving the windows its predecessor already promised.
  w.u32v(static_cast<u32>(stream_cache_.size()));
  for (const auto& [seq, window] : stream_cache_) {
    w.u32v(seq);
    w.bytes(window);
  }
}

bool LeonController::load_state(SnapReader& r) {
  if (!r.expect(kCtrlTag)) return false;
  state_ = static_cast<LeonState>(r.u8v());
  seen_user_code_ = r.b();
  expected_packets_ = r.u8v();
  received_ = r.vec_bool();
  received_count_ = r.u32v();
  client_ip_ = r.u32v();
  client_port_ = r.u16v();
  run_started_at_ = static_cast<Cycles>(r.u64v());
  last_run_cycles_ = static_cast<Cycles>(r.u64v());
  trace_id_ = r.u64v();
  trace_span_id_ = r.u64v();
  stats_.commands = r.u64v();
  stats_.bad_commands = r.u64v();
  stats_.chunks_loaded = r.u64v();
  stats_.duplicate_chunks = r.u64v();
  stats_.programs_started = r.u64v();
  stats_.programs_completed = r.u64v();
  stats_.watchdog_trips = r.u64v();
  stats_.parity_read_errors = r.u64v();
  stats_.traces_attached = r.u64v();
  stats_.stream_polls = r.u64v();
  stats_.stream_replays = r.u64v();
  stats_.flight_dumps = r.u64v();
  stream_cache_.clear();
  const u32 cached = r.u32v();
  for (u32 i = 0; i < cached && r.ok(); ++i) {
    const u32 seq = r.u32v();
    stream_cache_.emplace_back(seq, r.bytes());
  }
  return r.ok();
}

}  // namespace la::net
