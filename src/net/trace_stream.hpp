// Instrumented execution-trace streaming (Fig 2: "The high-speed network
// facilitates ... the streaming of instrumented traces to the Trace
// Analyzer").
//
// The node-side TraceStreamer rides the pipeline's execution observer,
// packs compact per-instruction records, and emits them as UDP datagrams
// through the packet generator whenever a batch fills.  The host side
// parses datagrams back into records.  The wire format is deliberately
// tolerant of UDP loss: every record is self-contained and datagrams
// carry a sequence number so the receiver can report gaps.
//
// Record wire format (9 bytes, big-endian):
//   u32 pc
//   u8  flags   (bit0 annulled, bit1 trapped, bit2 mem access,
//                bit3 mem write, bit4 load, bit5 multiply, bit6 divide)
//   u32 mem address (0 when bit2 clear)
// Datagram payload: u32 stream sequence number, then N records.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "cpu/integer_unit.hpp"  // StepResult / ExecObserver
#include "net/packet.hpp"

namespace la::net {

/// UDP port trace datagrams are addressed to on the analysis host.
inline constexpr u16 kTracePort = 0x2002;

struct TraceRecord {
  Addr pc = 0;
  bool annulled = false;
  bool trapped = false;
  bool mem_access = false;
  bool mem_write = false;
  bool is_load = false;
  bool is_mul = false;
  bool is_div = false;
  Addr mem_addr = 0;

  static constexpr std::size_t kWireBytes = 9;

  u8 flags() const {
    return static_cast<u8>(u8{annulled} | u8{trapped} << 1 |
                           u8{mem_access} << 2 | u8{mem_write} << 3 |
                           u8{is_load} << 4 | u8{is_mul} << 5 |
                           u8{is_div} << 6);
  }

  static TraceRecord from_step(const cpu::StepResult& r);
};

/// Node side: batches records and emits trace datagrams.
class TraceStreamer final : public cpu::ExecObserver {
 public:
  /// `emit` ships a finished datagram payload (the system wires this to
  /// its packet generator / wrappers).  `batch` = records per datagram.
  using Emit = std::function<void(Bytes payload)>;

  TraceStreamer(Emit emit, std::size_t batch = 100)
      : emit_(std::move(emit)), batch_(batch) {}

  void on_step(const cpu::StepResult& r) override;

  /// Force out a partial batch (end of run).
  void flush();

  u64 records_emitted() const { return records_; }
  u64 datagrams_emitted() const { return datagrams_; }

 private:
  Emit emit_;
  std::size_t batch_;
  ByteWriter buf_;
  std::size_t in_buf_ = 0;
  u32 seq_ = 0;
  u64 records_ = 0;
  u64 datagrams_ = 0;
};

/// Host side: datagram payload -> records (plus gap accounting).
class TraceReceiver {
 public:
  /// Parse one trace payload; malformed data is dropped (counted).
  /// Returns the records, in order.
  std::vector<TraceRecord> ingest(std::span<const u8> payload);

  u64 records() const { return records_; }
  u64 datagrams() const { return datagrams_; }
  u64 lost_datagrams() const { return lost_; }
  u64 malformed() const { return malformed_; }

 private:
  std::optional<u32> last_seq_;
  u64 records_ = 0;
  u64 datagrams_ = 0;
  u64 lost_ = 0;
  u64 malformed_ = 0;
};

}  // namespace la::net
