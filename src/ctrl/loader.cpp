#include "ctrl/loader.hpp"

#include <stdexcept>

#include "common/bits.hpp"

namespace la::ctrl {

std::vector<net::LoadProgramCmd> packetize(const sasm::Image& img,
                                           std::size_t max_chunk) {
  if (max_chunk == 0) throw std::invalid_argument("max_chunk must be > 0");
  if (img.data.empty()) throw std::invalid_argument("empty program image");
  const u64 packets = ceil_div(img.data.size(), max_chunk);
  if (packets > 255) {
    throw std::invalid_argument(
        "program needs " + std::to_string(packets) +
        " packets; the 1-byte packet count allows at most 255 — "
        "increase max_chunk");
  }
  std::vector<net::LoadProgramCmd> out;
  out.reserve(packets);
  for (u64 p = 0; p < packets; ++p) {
    net::LoadProgramCmd c;
    c.total_packets = static_cast<u8>(packets);
    c.sequence = static_cast<u16>(p);
    c.address = img.base + static_cast<Addr>(p * max_chunk);
    const std::size_t off = p * max_chunk;
    const std::size_t n = std::min(max_chunk, img.data.size() - off);
    c.data.assign(img.data.begin() + static_cast<std::ptrdiff_t>(off),
                  img.data.begin() + static_cast<std::ptrdiff_t>(off + n));
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace la::ctrl
