// Program conversion: assembled image -> sequence of "Load program" UDP
// payloads.  This is the paper's binary-to-IP conversion step (Fig 4 step
// 5, done there by a Forth program): the binary is split into chunks, each
// tagged with a sequence number so the FPX can reassemble them in any
// order.
#pragma once

#include <vector>

#include "net/commands.hpp"
#include "sasm/image.hpp"

namespace la::ctrl {

/// Split `img` into Load-program command payloads of at most `max_chunk`
/// data bytes each.  Throws std::invalid_argument if the image needs more
/// than 255 packets (the protocol's 1-byte packet count).
std::vector<net::LoadProgramCmd> packetize(const sasm::Image& img,
                                           std::size_t max_chunk = 1024);

}  // namespace la::ctrl
