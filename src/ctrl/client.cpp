#include "ctrl/client.hpp"

#include "ctrl/loader.hpp"

namespace la::ctrl {

LiquidClient::LiquidClient(sim::LiquidSystem& node, ClientConfig cfg)
    : node_(node), cfg_(cfg), up_(cfg.uplink), down_(cfg.downlink) {}

void LiquidClient::send_command(Bytes payload) {
  net::UdpDatagram d;
  d.src_ip = cfg_.client_ip;
  d.src_port = cfg_.client_port;
  d.dst_ip = node_.config().node_ip;
  d.dst_port = node_.config().node_port;
  d.payload = std::move(payload);
  up_.send(net::build_udp_packet(d));
  ++stats_.commands_sent;
}

void LiquidClient::pump(u64 node_steps) {
  while (auto f = up_.receive()) node_.ingress_frame(*f);
  node_.run(node_steps);
  while (auto f = node_.egress_frame()) down_.send(std::move(*f));
}

std::optional<net::UdpDatagram> LiquidClient::next_client_datagram() {
  while (auto f = down_.receive()) {
    auto d = net::parse_udp_packet(*f);
    if (!d) continue;
    if (d->dst_port != cfg_.client_port) {
      if (extra_handler_) extra_handler_(*d);
      continue;
    }
    return d;
  }
  return std::nullopt;
}

void LiquidClient::drain_downlink() {
  pump(0);
  while (next_client_datagram()) {
    // Stale control responses: nothing waits for them any more.
  }
}

std::optional<Bytes> LiquidClient::await(net::ResponseCode code,
                                         unsigned rounds) {
  for (unsigned r = 0; r < rounds; ++r) {
    pump(cfg_.pump_steps);
    while (auto d = next_client_datagram()) {
      if (d->payload.empty()) continue;
      ++stats_.responses;
      if (d->payload[0] == static_cast<u8>(code)) {
        return Bytes(d->payload.begin() + 1, d->payload.end());
      }
      // A different code: stale duplicate or error — keep draining.
    }
  }
  return std::nullopt;
}

std::optional<StatusReport> LiquidClient::status() {
  for (unsigned attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    send_command(net::simple_command(net::CommandCode::kStatus));
    if (auto body = await(net::ResponseCode::kStatus)) {
      ByteReader r(*body);
      if (r.remaining() < 4) continue;
      StatusReport s;
      s.state = static_cast<net::LeonState>(r.read_u8());
      s.total_packets = r.read_u8();
      s.received_packets = r.read_u16();
      return s;
    }
  }
  ++stats_.gave_up;
  return std::nullopt;
}

bool LiquidClient::load_program(const sasm::Image& img) {
  const auto chunks = packetize(img, cfg_.load_chunk);
  std::vector<bool> acked(chunks.size(), false);
  std::size_t acked_count = 0;

  for (unsigned attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    // (Re)send every unacked chunk.
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      if (!acked[i]) send_command(chunks[i].serialize());
    }
    // Collect acks for a few rounds.
    for (unsigned round = 0; round < 20 && acked_count < chunks.size();
         ++round) {
      pump(cfg_.pump_steps);
      while (auto d = next_client_datagram()) {
        if (d->payload.empty() ||
            d->payload[0] != static_cast<u8>(net::ResponseCode::kLoadAck)) {
          continue;
        }
        ++stats_.responses;
        ByteReader r(std::span<const u8>(d->payload).subspan(1));
        if (r.remaining() < 3) continue;
        const u16 seq = r.read_u16();
        if (seq < acked.size() && !acked[seq]) {
          acked[seq] = true;
          ++acked_count;
        }
      }
    }
    if (acked_count == chunks.size()) {
      // Double-check the controller agrees the image is complete.
      const auto s = status();
      if (s && s->state == net::LeonState::kReady) return true;
    }
  }
  ++stats_.gave_up;
  return false;
}

bool LiquidClient::start(Addr entry) {
  for (unsigned attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    send_command(net::StartCmd{entry}.serialize());
    if (await(net::ResponseCode::kStarted)) return true;
    // The start may have landed even if the ack was lost; status tells.
    const auto s = status();
    if (s && (s->state == net::LeonState::kRunning ||
              s->state == net::LeonState::kDone)) {
      return true;
    }
  }
  ++stats_.gave_up;
  return false;
}

std::optional<std::vector<u32>> LiquidClient::read_memory(Addr addr,
                                                          u16 words) {
  for (unsigned attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    send_command(net::ReadMemoryCmd{addr, words}.serialize());
    if (auto body = await(net::ResponseCode::kMemoryData)) {
      ByteReader r(*body);
      if (r.remaining() < 4u + 4u * words) continue;
      if (r.read_u32() != addr) continue;  // stale response
      std::vector<u32> out;
      out.reserve(words);
      for (u16 i = 0; i < words; ++i) out.push_back(r.read_u32());
      return out;
    }
  }
  ++stats_.gave_up;
  return std::nullopt;
}

std::optional<std::string> LiquidClient::stats_snapshot() {
  for (unsigned attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    send_command(net::simple_command(net::CommandCode::kStatsSnapshot));
    if (auto body = await(net::ResponseCode::kStatsData)) {
      return std::string(body->begin(), body->end());
    }
  }
  ++stats_.gave_up;
  return std::nullopt;
}

bool LiquidClient::restart() {
  for (unsigned attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    send_command(net::simple_command(net::CommandCode::kRestart));
    if (await(net::ResponseCode::kStatus)) return true;
  }
  ++stats_.gave_up;
  return false;
}

bool LiquidClient::run_program(const sasm::Image& img, u64 max_steps) {
  if (!load_program(img)) return false;
  if (!start(img.entry)) return false;
  u64 stepped = 0;
  while (stepped < max_steps) {
    const u64 slice = std::min<u64>(20000, max_steps - stepped);
    pump(slice);
    stepped += slice;
    if (node_.controller().state() == net::LeonState::kDone) return true;
  }
  return node_.controller().state() == net::LeonState::kDone;
}

}  // namespace la::ctrl
