#include "ctrl/client.hpp"

#include <algorithm>

#include "ctrl/loader.hpp"

namespace la::ctrl {

std::string ClientError::to_string() const {
  std::string s;
  switch (kind) {
    case ClientErrorKind::kDeadline:
      s = "deadline expired";
      break;
    case ClientErrorKind::kGaveUp:
      s = "retries exhausted";
      break;
    case ClientErrorKind::kNodeError:
      s = "node error 0x";
      {
        static const char* hex = "0123456789abcdef";
        s += hex[(node_code >> 4) & 0xf];
        s += hex[node_code & 0xf];
      }
      break;
    case ClientErrorKind::kRejected:
      s = "rejected";
      break;
  }
  if (!detail.empty()) {
    s += " (";
    s += detail;
    s += ")";
  }
  return s;
}

LiquidClient::LiquidClient(sim::LiquidSystem& node, ClientConfig cfg)
    : node_(node),
      cfg_(cfg),
      up_(cfg.uplink),
      down_(cfg.downlink),
      jitter_rng_(cfg.jitter_seed) {}

void LiquidClient::send_command(Bytes payload) {
  net::UdpDatagram d;
  d.src_ip = cfg_.client_ip;
  d.src_port = cfg_.client_port;
  d.dst_ip = node_.config().node_ip;
  d.dst_port = node_.config().node_port;
  d.payload = std::move(payload);
  up_.send(net::build_udp_packet(d));
  ++stats_.commands_sent;
}

void LiquidClient::pump(u64 node_steps) {
  while (auto f = up_.receive()) node_.ingress_frame(*f);
  node_.run(node_steps);
  while (auto f = node_.egress_frame()) down_.send(std::move(*f));
  steps_this_command_ += node_steps;
}

std::optional<net::UdpDatagram> LiquidClient::next_client_datagram() {
  while (auto f = down_.receive()) {
    auto d = net::parse_udp_packet(*f);
    if (!d) continue;
    if (d->dst_port != cfg_.client_port) {
      if (extra_handler_) extra_handler_(*d);
      continue;
    }
    return d;
  }
  return std::nullopt;
}

void LiquidClient::drain_downlink() {
  pump(0);
  while (auto d = next_client_datagram()) {
    // Stale control responses: nothing waits for them any more, but a
    // lossy-link debugging session wants to know they existed.
    ++stats_.stale_responses;
    if (!d->payload.empty() &&
        d->payload[0] == static_cast<u8>(net::ResponseCode::kError)) {
      ++stats_.node_errors;
      if (d->payload.size() >= 2) last_node_error_ = d->payload[1];
    }
  }
}

unsigned LiquidClient::rounds_for_attempt(unsigned attempt) {
  const unsigned shift = std::min(attempt, cfg_.backoff_cap);
  const unsigned base = cfg_.await_rounds << shift;
  if (attempt == 0 || cfg_.backoff_jitter <= 0.0) return base;
  // Symmetric jitter around the exponential schedule; deterministic under
  // cfg_.jitter_seed so replays stay bit-identical, but clients with
  // different seeds desynchronize their retry storms.
  const double f = 1.0 + cfg_.backoff_jitter * (2.0 * jitter_rng_.unit() - 1.0);
  return std::max(1u, static_cast<unsigned>(static_cast<double>(base) * f));
}

void LiquidClient::begin_command() {
  steps_this_command_ = 0;
  last_node_error_.reset();
}

ClientError LiquidClient::command_failure(std::string detail) {
  ++stats_.gave_up;
  ClientError e;
  e.detail = std::move(detail);
  if (last_node_error_) {
    e.kind = ClientErrorKind::kNodeError;
    e.node_code = *last_node_error_;
  } else if (deadline_exhausted()) {
    e.kind = ClientErrorKind::kDeadline;
    ++stats_.deadline_expiries;
  } else {
    e.kind = ClientErrorKind::kGaveUp;
  }
  return e;
}

std::optional<Bytes> LiquidClient::await(net::ResponseCode code,
                                         unsigned rounds) {
  for (unsigned r = 0; r < rounds; ++r) {
    if (deadline_exhausted()) return std::nullopt;
    pump(cfg_.pump_steps);
    while (auto d = next_client_datagram()) {
      if (d->payload.empty()) continue;
      ++stats_.responses;
      if (d->payload[0] == static_cast<u8>(code)) {
        return Bytes(d->payload.begin() + 1, d->payload.end());
      }
      if (d->payload[0] == static_cast<u8>(net::ResponseCode::kError)) {
        // The node is telling us *why* things fail; remember the code so
        // the eventual ClientError can carry it, but keep waiting — the
        // wanted response may still arrive (stale errors ride the same
        // queue).
        ++stats_.node_errors;
        if (d->payload.size() >= 2) last_node_error_ = d->payload[1];
        continue;
      }
      // A different code: stale duplicate from an earlier retry.
      ++stats_.stale_responses;
    }
  }
  return std::nullopt;
}

Result<StatusReport> LiquidClient::status() {
  begin_command();
  for (unsigned attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    if (deadline_exhausted()) break;
    send_command(net::simple_command(net::CommandCode::kStatus));
    if (auto body = await(net::ResponseCode::kStatus,
                          rounds_for_attempt(attempt))) {
      ByteReader r(*body);
      if (r.remaining() < 4) continue;
      StatusReport s;
      s.state = static_cast<net::LeonState>(r.read_u8());
      s.total_packets = r.read_u8();
      s.received_packets = r.read_u16();
      return s;
    }
  }
  return command_failure("status");
}

Status LiquidClient::load_program(const sasm::Image& img) {
  begin_command();
  const auto chunks = packetize(img, cfg_.load_chunk);
  std::vector<bool> acked(chunks.size(), false);
  std::size_t acked_count = 0;

  for (unsigned attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    if (deadline_exhausted()) break;
    // (Re)send every unacked chunk.
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      if (!acked[i]) send_command(chunks[i].serialize());
    }
    // Collect acks for a (backoff-scaled) number of rounds.
    const unsigned rounds = rounds_for_attempt(attempt);
    for (unsigned round = 0;
         round < rounds && acked_count < chunks.size(); ++round) {
      if (deadline_exhausted()) break;
      pump(cfg_.pump_steps);
      while (auto d = next_client_datagram()) {
        if (d->payload.empty()) continue;
        ++stats_.responses;
        if (d->payload[0] == static_cast<u8>(net::ResponseCode::kError)) {
          ++stats_.node_errors;
          if (d->payload.size() >= 2) last_node_error_ = d->payload[1];
          continue;
        }
        if (d->payload[0] != static_cast<u8>(net::ResponseCode::kLoadAck)) {
          ++stats_.stale_responses;
          continue;
        }
        ByteReader r(std::span<const u8>(d->payload).subspan(1));
        if (r.remaining() < 3) continue;
        const u16 seq = r.read_u16();
        if (seq < acked.size() && !acked[seq]) {
          acked[seq] = true;
          ++acked_count;
        }
      }
    }
    if (acked_count == chunks.size()) {
      // Double-check the controller agrees the image is complete.
      const auto node_err = last_node_error_;
      const auto s = status();
      last_node_error_ = node_err;
      if (s && s->state == net::LeonState::kReady) return Status{};
      if (s && s->state == net::LeonState::kError) break;
    }
  }
  return command_failure("load_program");
}

Status LiquidClient::start(Addr entry) {
  begin_command();
  for (unsigned attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    if (deadline_exhausted()) break;
    send_command(net::StartCmd{entry}.serialize());
    if (await(net::ResponseCode::kStarted, rounds_for_attempt(attempt))) {
      return Status{};
    }
    // The start may have landed even if the ack was lost; status tells.
    // (status() is its own command — preserve this command's error latch.)
    const auto node_err = last_node_error_;
    const auto s = status();
    last_node_error_ = node_err;
    if (s && (s->state == net::LeonState::kRunning ||
              s->state == net::LeonState::kDone)) {
      return Status{};
    }
    if (s && s->state == net::LeonState::kError) break;  // retrying is futile
  }
  return command_failure("start");
}

Result<std::vector<u32>> LiquidClient::read_memory(Addr addr, u16 words) {
  begin_command();
  for (unsigned attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    if (deadline_exhausted()) break;
    send_command(net::ReadMemoryCmd{addr, words}.serialize());
    if (auto body = await(net::ResponseCode::kMemoryData,
                          rounds_for_attempt(attempt))) {
      ByteReader r(*body);
      if (r.remaining() < 4u + 4u * words) continue;
      if (r.read_u32() != addr) continue;  // stale response
      std::vector<u32> out;
      out.reserve(words);
      for (u16 i = 0; i < words; ++i) out.push_back(r.read_u32());
      return out;
    }
  }
  return command_failure("read_memory");
}

Result<std::string> LiquidClient::stats_snapshot() {
  begin_command();
  for (unsigned attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    if (deadline_exhausted()) break;
    send_command(net::simple_command(net::CommandCode::kStatsSnapshot));
    if (auto body = await(net::ResponseCode::kStatsData,
                          rounds_for_attempt(attempt))) {
      return std::string(body->begin(), body->end());
    }
  }
  return command_failure("stats_snapshot");
}

Result<std::string> LiquidClient::stats_delta() {
  begin_command();
  // Sequenced form: every retry of this one call names the same window,
  // so a duplicated or reordered poll replays the cached bytes instead
  // of advancing the stream — no delta window can vanish into a retry.
  const u32 seq = ++stream_seq_;
  ByteWriter w;
  w.write_u8(static_cast<u8>(net::CommandCode::kStatsStream));
  w.write_u32(seq);
  const Bytes cmd = w.take();
  for (unsigned attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    if (deadline_exhausted()) break;
    send_command(cmd);
    if (auto body = await(net::ResponseCode::kStatsDelta,
                          rounds_for_attempt(attempt))) {
      return std::string(body->begin(), body->end());
    }
  }
  return command_failure("stats_delta");
}

Result<std::string> LiquidClient::flight_dump() {
  begin_command();
  for (unsigned attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    if (deadline_exhausted()) break;
    send_command(net::simple_command(net::CommandCode::kFlightDump));
    if (auto body = await(net::ResponseCode::kFlightData,
                          rounds_for_attempt(attempt))) {
      return std::string(body->begin(), body->end());
    }
  }
  return command_failure("flight_dump");
}

Status LiquidClient::set_trace(u64 trace_id, u64 span_id) {
  begin_command();
  for (unsigned attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    if (deadline_exhausted()) break;
    send_command(net::SetTraceCmd{trace_id, span_id}.serialize());
    if (await(net::ResponseCode::kTraceAck, rounds_for_attempt(attempt))) {
      return Status{};
    }
  }
  return command_failure("set_trace");
}

Status LiquidClient::restart() {
  begin_command();
  for (unsigned attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    if (attempt > 0) ++stats_.retries;
    if (deadline_exhausted()) break;
    send_command(net::simple_command(net::CommandCode::kRestart));
    if (await(net::ResponseCode::kStatus, rounds_for_attempt(attempt))) {
      return Status{};
    }
  }
  return command_failure("restart");
}

Status LiquidClient::run_program(const sasm::Image& img, u64 max_steps) {
  // Propagate the causal context to the node first, so the leon_ctrl
  // episodes of this load/run belong to the job's trace.  Best-effort:
  // a lost ack must not fail the job itself.
  if (job_trace_.active()) {
    (void)set_trace(job_trace_.ctx.trace_id, job_trace_.ctx.span_id);
  }
  const double load_t0 = job_trace_.now_us();
  if (auto loaded = load_program(img); !loaded) return loaded;
  job_trace_.phase("load", load_t0, job_trace_.now_us(), node_.now());
  if (auto started = start(img.entry); !started) return started;
  return await_done(max_steps);
}

Status LiquidClient::await_done(u64 max_steps) {
  const double run_t0 = job_trace_.now_us();
  begin_command();  // the wait-for-completion phase is its own "command"
  u64 stepped = 0;
  while (stepped < max_steps) {
    const u64 slice = std::min<u64>(20000, max_steps - stepped);
    pump(slice);
    stepped += slice;
    // Keep the downlink drained: an unsolicited 0xff (watchdog trip) must
    // reach the error latch, not rot in the queue.
    while (auto d = next_client_datagram()) {
      if (d->payload.empty()) continue;
      if (d->payload[0] == static_cast<u8>(net::ResponseCode::kError)) {
        ++stats_.node_errors;
        if (d->payload.size() >= 2) last_node_error_ = d->payload[1];
      } else {
        ++stats_.stale_responses;
      }
    }
    const net::LeonState st = node_.controller().state();
    if (st == net::LeonState::kDone) {
      job_trace_.phase("run", run_t0, job_trace_.now_us(), node_.now());
      return Status{};
    }
    if (st == net::LeonState::kError) {
      ClientError e;
      e.kind = ClientErrorKind::kNodeError;
      e.node_code = last_node_error_.value_or(0);
      e.detail = "await_done: node entered error state";
      ++stats_.gave_up;
      const double now = job_trace_.now_us();
      job_trace_.phase("run", run_t0, now, node_.now());
      job_trace_.phase("error", now, now, node_.now(), e.to_string());
      return e;
    }
  }
  if (node_.controller().state() == net::LeonState::kDone) {
    job_trace_.phase("run", run_t0, job_trace_.now_us(), node_.now());
    return Status{};
  }
  ClientError e;
  e.kind = ClientErrorKind::kDeadline;
  e.detail = "await_done: program did not complete";
  ++stats_.deadline_expiries;
  ++stats_.gave_up;
  return e;
}

void LiquidClient::bind_metrics(metrics::MetricsRegistry& reg,
                                const std::string& prefix) {
  const auto cnt = [&reg, &prefix](const std::string& name, const u64* v) {
    reg.register_fn(prefix + name,
                    [v]() { return static_cast<double>(*v); });
  };
  cnt("commands_sent", &stats_.commands_sent);
  cnt("retries", &stats_.retries);
  cnt("responses", &stats_.responses);
  cnt("gave_up", &stats_.gave_up);
  cnt("stale_responses", &stats_.stale_responses);
  cnt("node_errors", &stats_.node_errors);
  cnt("deadline_expiries", &stats_.deadline_expiries);
  cnt("uplink.dropped", &up_.stats().dropped);
  cnt("uplink.corrupted", &up_.stats().corrupted);
  cnt("uplink.truncated", &up_.stats().truncated);
  cnt("downlink.dropped", &down_.stats().dropped);
  cnt("downlink.corrupted", &down_.stats().corrupted);
  cnt("downlink.truncated", &down_.stats().truncated);
}

}  // namespace la::ctrl
