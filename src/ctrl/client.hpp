// The web-based control software's network core (Fig 4): builds command
// packets, ships them over an (unreliable) channel to the FPX, collects
// responses, and retries what the channel ate.  The Java servlet / UDP
// client of the paper collapses into this class; the "Java emulator of the
// hardware" role is played by the LiquidSystem itself.
//
// Every command has a hard outcome: a value, or a structured ClientError
// saying *why* it failed (deadline expired, retry budget exhausted, or the
// node itself reported an error such as a watchdog trip).  Retries back
// off exponentially in simulated time so a flaky channel is given longer
// and longer windows rather than being hammered at a fixed cadence.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/span_log.hpp"
#include "net/channel.hpp"
#include "net/commands.hpp"
#include "sasm/image.hpp"
#include "sim/liquid_system.hpp"

namespace la::ctrl {

struct ClientConfig {
  net::Ipv4Addr client_ip = net::make_ip(192, 168, 100, 1);
  u16 client_port = 40000;
  unsigned max_retries = 10;      // resends per command before giving up
  u64 pump_steps = 200;           // node instructions per wait round
  std::size_t load_chunk = 1024;  // bytes per Load-program packet
  /// Wait rounds granted to attempt 0; attempt k gets
  /// `await_rounds << min(k, backoff_cap)` (exponential backoff measured
  /// in simulated rounds, not host time).
  unsigned await_rounds = 20;
  unsigned backoff_cap = 3;
  /// Per-command deadline in node steps; 0 disables.  Backoff stops
  /// growing once the deadline would be exceeded and the command fails
  /// with kDeadline.
  u64 deadline_steps = 4'000'000;
  /// Backoff jitter fraction: retry attempt k > 0 waits
  /// `rounds * (1 ± jitter * u)` with u uniform in [0, 1), drawn from a
  /// per-client RNG seeded by `jitter_seed` — deterministic under the
  /// seed, but many tenants with distinct seeds stop retrying in
  /// lockstep (pure exponential backoff synchronizes).  Attempt 0 is
  /// never jittered.  0 restores pure exponential backoff.
  double backoff_jitter = 0.25;
  u64 jitter_seed = 0x6a177e12;
  net::ChannelConfig uplink;    // client -> FPX
  net::ChannelConfig downlink;  // FPX -> client
};

enum class ClientErrorKind : u8 {
  kDeadline = 0,   // per-command deadline expired with no usable answer
  kGaveUp = 1,     // retry budget exhausted (node silent)
  kNodeError = 2,  // node answered 0xff; node_code says why
  kRejected = 3,   // node answered, but refused or contradicted the request
};

struct ClientError {
  ClientErrorKind kind = ClientErrorKind::kGaveUp;
  u8 node_code = 0;    // err:: payload byte when kind == kNodeError
  std::string detail;  // human-readable context ("start", "read 0x...", ...)

  std::string to_string() const;
};

/// Outcome of a value-returning command.  Mimics std::optional's access
/// surface (has_value / operator bool / * / ->) so existing call sites
/// keep compiling, but a failed Result also carries the ClientError.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(ClientError e) : error_(std::move(e)) {}        // NOLINT(runtime/explicit)

  bool has_value() const { return value_.has_value(); }
  explicit operator bool() const { return has_value(); }
  T& operator*() { return *value_; }
  const T& operator*() const { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }
  T& value() { return *value_; }
  const T& value() const { return *value_; }

  /// Only meaningful when !has_value().
  const ClientError& error() const { return error_; }

 private:
  std::optional<T> value_;
  ClientError error_;
};

/// Outcome of a command with no payload.  Bool-like for old call sites.
class [[nodiscard]] Status {
 public:
  Status() = default;  // success
  Status(ClientError e) : ok_(false), error_(std::move(e)) {}  // NOLINT

  bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }
  const ClientError& error() const { return error_; }

 private:
  bool ok_ = true;
  ClientError error_;
};

struct StatusReport {
  net::LeonState state = net::LeonState::kIdle;
  u8 total_packets = 0;
  u16 received_packets = 0;
};

class LiquidClient {
 public:
  LiquidClient(sim::LiquidSystem& node, ClientConfig cfg = {});

  /// LEON status command (retried).
  Result<StatusReport> status();

  /// Load a program image (multi-packet, per-chunk acks, missing chunks
  /// resent).  Success when the controller reports the load complete.
  Status load_program(const sasm::Image& img);

  /// Start execution at `entry`.
  Status start(Addr entry);

  /// Read back `words` 32-bit words from `addr`.
  Result<std::vector<u32>> read_memory(Addr addr, u16 words);

  /// Reset the node's processor and control state machine.
  Status restart();

  /// Poll the node's metrics registry (STATS_SNAPSHOT command); the
  /// response payload is the snapshot as UTF-8 JSON.
  Result<std::string> stats_snapshot();

  /// Poll the node's metrics *delta* window (STATS_STREAM command): the
  /// change since the previous stream poll, as UTF-8 JSON.  Periodic
  /// calls make a scrape loop.
  Result<std::string> stats_delta();

  /// Pull the node's flight-recorder ring (FLIGHT_DUMP command) as a JSON
  /// dump.  Fails with node code 0x42 when the node has no recorder.
  Result<std::string> flight_dump();

  /// Attach a causal trace context to the node (SET_TRACE command):
  /// subsequent leon_ctrl episodes are attributed to this trace.
  Status set_trace(u64 trace_id, u64 span_id);

  /// Causal tracing: spans for the phases this client drives (load, run,
  /// error) are emitted into the given job trace; run_program() also
  /// propagates the context to the node via SET_TRACE.  An inactive
  /// JobTrace (default) keeps everything a no-op.
  void set_job_trace(trace::JobTrace jt) { job_trace_ = std::move(jt); }
  const trace::JobTrace& job_trace() const { return job_trace_; }

  /// Convenience: load + start + run the node until leon_ctrl reports the
  /// program done (or `max_steps` node instructions pass).  A node that
  /// lands in the error state (e.g. watchdog trip) fails loudly with the
  /// node's error code rather than timing out.
  Status run_program(const sasm::Image& img, u64 max_steps = 10'000'000);

  /// The wait-for-completion tail of run_program(), exposed so callers
  /// that arranged the load themselves (warm-start restore of a post-load
  /// snapshot) can still drive execution: pumps the node until leon_ctrl
  /// reports kDone, failing loudly on kError (watchdog trip) or after
  /// `max_steps`.  Call after a successful start().
  Status await_done(u64 max_steps);

  /// Let simulated time pass: deliver queued frames, step the node, and
  /// collect its responses.
  void pump(u64 node_steps);

  /// Frames addressed to other host ports (e.g. streamed execution traces
  /// on net::kTracePort) are handed to this callback instead of being
  /// discarded.
  using ExtraFrameHandler = std::function<void(const net::UdpDatagram&)>;
  void set_extra_frame_handler(ExtraFrameHandler h) {
    extra_handler_ = std::move(h);
  }

  /// Drain everything currently queued on the downlink, dispatching
  /// non-control frames to the extra handler (stale control responses are
  /// discarded and counted).  Call after a run to collect trailing trace
  /// datagrams.
  void drain_downlink();

  struct Stats {
    u64 commands_sent = 0;
    u64 retries = 0;
    u64 responses = 0;
    u64 gave_up = 0;
    u64 stale_responses = 0;  // control responses nothing was waiting for
    u64 node_errors = 0;      // 0xff packets received
    u64 deadline_expiries = 0;
  };
  const Stats& stats() const { return stats_; }
  const net::Channel& uplink() const { return up_; }
  const net::Channel& downlink() const { return down_; }
  net::Channel& uplink_mut() { return up_; }
  net::Channel& downlink_mut() { return down_; }

  /// Bridge this client's stats into `reg` under `prefix` (e.g.
  /// "client.").  Lossy-link debugging reads them next to the node's own
  /// channel counters.
  void bind_metrics(metrics::MetricsRegistry& reg,
                    const std::string& prefix = "client.");

 private:
  void send_command(Bytes payload);
  /// Next datagram addressed to this client; everything else on the
  /// downlink is dispatched to the extra handler along the way.
  std::optional<net::UdpDatagram> next_client_datagram();
  /// Pump until a response with `code` arrives; nullopt after the round
  /// budget is spent.  Other responses encountered are counted stale; a
  /// 0xff records the node's error code in `last_node_error_`.
  std::optional<Bytes> await(net::ResponseCode code, unsigned rounds);
  /// Rounds granted to retry `attempt` under exponential backoff with
  /// seeded jitter (advances jitter_rng_ for attempts > 0).
  unsigned rounds_for_attempt(unsigned attempt);
  /// Begin a fresh command: reset the deadline budget and error latch.
  void begin_command();
  bool deadline_exhausted() const {
    return cfg_.deadline_steps > 0 && steps_this_command_ >= cfg_.deadline_steps;
  }
  /// Build the failure for a command that ran out of retries/deadline.
  ClientError command_failure(std::string detail);

  sim::LiquidSystem& node_;
  ClientConfig cfg_;
  net::Channel up_;
  net::Channel down_;
  ExtraFrameHandler extra_handler_;
  trace::JobTrace job_trace_;
  Stats stats_;
  /// STATS_STREAM window counter: one id per stats_delta() call, shared
  /// by all of that call's retries (the idempotency key).
  u32 stream_seq_ = 0;
  Rng jitter_rng_;  // backoff jitter; see ClientConfig::backoff_jitter
  u64 steps_this_command_ = 0;
  std::optional<u8> last_node_error_;
};

}  // namespace la::ctrl
