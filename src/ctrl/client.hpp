// The web-based control software's network core (Fig 4): builds command
// packets, ships them over an (unreliable) channel to the FPX, collects
// responses, and retries what the channel ate.  The Java servlet / UDP
// client of the paper collapses into this class; the "Java emulator of the
// hardware" role is played by the LiquidSystem itself.
#pragma once

#include <optional>
#include <vector>

#include "net/channel.hpp"
#include "net/commands.hpp"
#include "sasm/image.hpp"
#include "sim/liquid_system.hpp"

namespace la::ctrl {

struct ClientConfig {
  net::Ipv4Addr client_ip = net::make_ip(192, 168, 100, 1);
  u16 client_port = 40000;
  unsigned max_retries = 10;      // resends per command before giving up
  u64 pump_steps = 200;           // node instructions per wait round
  std::size_t load_chunk = 1024;  // bytes per Load-program packet
  net::ChannelConfig uplink;      // client -> FPX
  net::ChannelConfig downlink;    // FPX -> client
};

struct StatusReport {
  net::LeonState state = net::LeonState::kIdle;
  u8 total_packets = 0;
  u16 received_packets = 0;
};

class LiquidClient {
 public:
  LiquidClient(sim::LiquidSystem& node, ClientConfig cfg = {});

  /// LEON status command (retried).  nullopt if the node never answered.
  std::optional<StatusReport> status();

  /// Load a program image (multi-packet, per-chunk acks, missing chunks
  /// resent).  True when the controller reports the load complete.
  bool load_program(const sasm::Image& img);

  /// Start execution at `entry`.
  bool start(Addr entry);

  /// Read back `words` 32-bit words from `addr`.
  std::optional<std::vector<u32>> read_memory(Addr addr, u16 words);

  /// Reset the node's processor and control state machine.
  bool restart();

  /// Poll the node's metrics registry (STATS_SNAPSHOT command); the
  /// response payload is the snapshot as UTF-8 JSON.
  std::optional<std::string> stats_snapshot();

  /// Convenience: load + start + run the node until leon_ctrl reports the
  /// program done (or `max_steps` node instructions pass).
  bool run_program(const sasm::Image& img, u64 max_steps = 10'000'000);

  /// Let simulated time pass: deliver queued frames, step the node, and
  /// collect its responses.
  void pump(u64 node_steps);

  /// Frames addressed to other host ports (e.g. streamed execution traces
  /// on net::kTracePort) are handed to this callback instead of being
  /// discarded.
  using ExtraFrameHandler = std::function<void(const net::UdpDatagram&)>;
  void set_extra_frame_handler(ExtraFrameHandler h) {
    extra_handler_ = std::move(h);
  }

  /// Drain everything currently queued on the downlink, dispatching
  /// non-control frames to the extra handler (stale control responses are
  /// discarded).  Call after a run to collect trailing trace datagrams.
  void drain_downlink();

  struct Stats {
    u64 commands_sent = 0;
    u64 retries = 0;
    u64 responses = 0;
    u64 gave_up = 0;
  };
  const Stats& stats() const { return stats_; }
  const net::Channel& uplink() const { return up_; }
  const net::Channel& downlink() const { return down_; }

 private:
  void send_command(Bytes payload);
  /// Next datagram addressed to this client; everything else on the
  /// downlink is dispatched to the extra handler along the way.
  std::optional<net::UdpDatagram> next_client_datagram();
  /// Pump until a response with `code` arrives; nullopt after the round
  /// budget is spent.  Other responses encountered are discarded (stale
  /// duplicates from earlier retries).
  std::optional<Bytes> await(net::ResponseCode code, unsigned rounds = 20);

  sim::LiquidSystem& node_;
  ClientConfig cfg_;
  net::Channel up_;
  net::Channel down_;
  ExtraFrameHandler extra_handler_;
  Stats stats_;
};

}  // namespace la::ctrl
