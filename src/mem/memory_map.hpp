// Canonical address map of the Liquid processor system.
//
// Mirrors the paper's layout: boot ROM at 0, FPX SRAM at 0x40000000 (the
// polling location for the program start address is the first SRAM word,
// Section 3.1), SDRAM behind the adapter, and the APB peripherals.
#pragma once

#include "common/types.hpp"

namespace la::mem::map {

inline constexpr Addr kRomBase = 0x00000000;
inline constexpr u32 kRomSize = 0x2000;  // 8 KiB boot ROM

inline constexpr Addr kSramBase = 0x40000000;
inline constexpr u32 kSramSize = 0x100000;  // 1 MiB FPX SRAM

inline constexpr Addr kSdramBase = 0x60000000;
inline constexpr u32 kSdramSize = 0x4000000;  // 64 MiB FPX SDRAM

inline constexpr Addr kApbBase = 0x80000000;
inline constexpr u32 kApbSize = 0x100000;

// APB device offsets (relative to kApbBase).
inline constexpr u32 kUartOffset = 0x100;
inline constexpr u32 kTimerOffset = 0x200;
inline constexpr u32 kIrqOffset = 0x300;
inline constexpr u32 kGpioOffset = 0x400;
inline constexpr u32 kCycleCounterOffset = 0x500;
inline constexpr u32 kWatchdogOffset = 0x600;
inline constexpr u32 kDeviceSize = 0x100;

/// The polled mailbox: leon_ctrl writes the user program's start address
/// here; the boot ROM spins until it reads a non-zero value (Fig 5).
inline constexpr Addr kProgAddrMailbox = kSramBase;

/// Default load address for user programs (leaves the mailbox word and a
/// small scratch region free).
inline constexpr Addr kUserProgramBase = kSramBase + 0x100;

inline constexpr bool in_range(Addr a, Addr base, u64 size) {
  return a >= base && a - base < size;
}

/// Cacheable regions (ROM and the two RAMs); peripherals are never cached.
inline constexpr bool cacheable(Addr a) {
  return in_range(a, kRomBase, kRomSize) ||
         in_range(a, kSramBase, kSramSize) ||
         in_range(a, kSdramBase, kSdramSize);
}

}  // namespace la::mem::map
