// Boot ROM: read-only AHB slave whose contents come from assembled boot
// code, plus the two boot programs of Fig 5 (the original LEON flavour
// that waits for a UART event, and the paper's modified flavour that polls
// the SRAM mailbox for a program start address).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "bus/ahb.hpp"
#include "common/types.hpp"

namespace la::mem {

class BootRom final : public bus::AhbSlave {
 public:
  BootRom(Addr base, u32 size, std::vector<u8> contents,
          Cycles read_wait = 1);

  Cycles transfer(bus::AhbTransfer& t) override;
  std::string_view name() const override { return "bootrom"; }
  bool debug_read(Addr addr, unsigned size, u64& out) override;

  Addr base() const { return base_; }
  u32 size() const { return static_cast<u32>(data_.size()); }

 private:
  Addr base_;
  std::vector<u8> data_;
  Cycles read_wait_;
};

/// Assembly source of the paper's *modified* boot code (Fig 5, right):
/// set up PSR/WIM/TBR, then poll the mailbox word at `mailbox` until it
/// holds a non-zero program start address, flush the caches so the poll
/// sees backdoor writes, and jump.  Returning programs jump back to the
/// polling loop (label `check_ready`, at a fixed, documented offset).
std::string modified_boot_source(Addr rom_base, Addr mailbox);

/// Assembly source of the *original* LEON boot code (Fig 5, left): waits
/// for a UART event before loading.  Provided for the bench comparing the
/// two flavours and for completeness; uses the UART status register.
std::string original_boot_source(Addr rom_base, Addr uart_status);

/// Offset of the polling loop entry within the modified boot ROM — user
/// programs jump to rom_base + this to signal completion (Section 3.1).
inline constexpr u32 kCheckReadyOffset = 0x40;

}  // namespace la::mem
