#include "mem/disconnect.hpp"

namespace la::mem {

Cycles DisconnectSwitch::transfer(bus::AhbTransfer& t) {
  if (connected_) return sram_.transfer(t);

  // Disconnected: drive zeros on reads, swallow writes.  Timing matches a
  // normal SRAM access — the processor cannot tell it is unplugged.
  Cycles cycles = 0;
  for (unsigned b = 0; b < t.beats; ++b) {
    if (t.write) {
      ++stats_.blocked_writes;
      cycles += 1 + sram_.timing().write_wait;
    } else {
      t.data[b] = 0;
      ++stats_.blocked_reads;
      cycles += 1 + sram_.timing().read_wait;
    }
  }
  return cycles;
}

}  // namespace la::mem
