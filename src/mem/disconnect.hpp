// The external disconnect circuitry of Fig 6.
//
// Sits between the LEON processor and main memory (SRAM).  While the
// processor is disconnected its reads see all-zero data ("always drive 0s
// on the LEON processor's data bus") and its writes are dropped; the user
// path (leon_ctrl) meanwhile loads programs through the backdoor and
// plants the start address in the mailbox word.
#pragma once

#include <string_view>

#include "bus/ahb.hpp"
#include "common/snapio.hpp"
#include "common/types.hpp"
#include "mem/sram.hpp"

namespace la::mem {

class DisconnectSwitch final : public bus::AhbSlave {
 public:
  explicit DisconnectSwitch(Sram& sram) : sram_(sram) {}

  /// CPU-side AHB path: forwarded when connected, nulled when not.
  Cycles transfer(bus::AhbTransfer& t) override;
  std::string_view name() const override { return "disconnect-switch"; }

  bool debug_read(Addr addr, unsigned size, u64& out) override {
    if (!connected_) {
      out = 0;  // the switch drives zeros while the CPU is unplugged
      return true;
    }
    return sram_.debug_read(addr, size, out);
  }
  bool debug_write(Addr addr, unsigned size, u64 value) override {
    if (!connected_) return true;  // swallowed
    return sram_.debug_write(addr, size, value);
  }

  void set_connected(bool on) { connected_ = on; }
  bool connected() const { return connected_; }

  /// User-side (leon_ctrl) path — always available, regardless of the
  /// switch position; this is the bus the external circuitry drives.
  Sram& user_port() { return sram_; }
  const Sram& user_port() const { return sram_; }

  struct Stats {
    u64 blocked_reads = 0;
    u64 blocked_writes = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Snapshot support: switch position + blocked-access counters.
  void save_state(SnapWriter& w) const {
    w.tag(snap_tag("DISC"));
    w.b(connected_);
    w.u64v(stats_.blocked_reads);
    w.u64v(stats_.blocked_writes);
  }
  bool load_state(SnapReader& r) {
    if (!r.expect(snap_tag("DISC"))) return false;
    connected_ = r.b();
    stats_.blocked_reads = r.u64v();
    stats_.blocked_writes = r.u64v();
    return r.ok();
  }

 private:
  Sram& sram_;
  bool connected_ = true;
  Stats stats_;
};

}  // namespace la::mem
