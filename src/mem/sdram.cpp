#include "mem/sdram.hpp"

#include <algorithm>

namespace la::mem {

SdramDevice::SdramDevice(u32 size_bytes, SdramTiming timing)
    : timing_(timing),
      data_(size_bytes, 0),
      open_row_(timing.banks, -1),
      parity_bad_(size_bytes / 8, false) {
  assert(is_pow2(size_bytes) && is_pow2(timing.banks) &&
         is_pow2(timing.row_bytes));
}

Cycles SdramDevice::row_cost(Addr addr) {
  const u32 bank = (addr / timing_.row_bytes) & (timing_.banks - 1);
  const i64 row = static_cast<i64>(addr / (timing_.row_bytes * timing_.banks));
  if (open_row_[bank] == row) {
    ++stats_.row_hits;
    return 0;
  }
  if (open_row_[bank] < 0) {
    ++stats_.row_misses;
    open_row_[bank] = row;
    return timing_.trcd;
  }
  ++stats_.row_conflicts;
  open_row_[bank] = row;
  return timing_.trp + timing_.trcd;
}

Cycles SdramDevice::read_burst(Addr addr, std::span<u64> out) {
  assert(is_aligned(addr, 8) && addr + out.size() * 8 <= data_.size());
  Cycles c = row_cost(addr) + timing_.cas;
  for (std::size_t w = 0; w < out.size(); ++w) {
    u64 v = 0;
    const std::size_t o = addr + w * 8;
    if (parity_bad_[o / 8]) {
      parity_pending_ = true;
      ++stats_.parity_errors;
    }
    for (unsigned i = 0; i < 8; ++i) v = (v << 8) | data_[o + i];
    out[w] = v;
    c += 1;  // one word per clock once the pipe is primed
  }
  ++stats_.reads;
  return c;
}

Cycles SdramDevice::write_burst(Addr addr, std::span<const u64> in) {
  assert(is_aligned(addr, 8) && addr + in.size() * 8 <= data_.size());
  Cycles c = row_cost(addr);
  for (std::size_t w = 0; w < in.size(); ++w) {
    const std::size_t o = addr + w * 8;
    for (unsigned i = 0; i < 8; ++i) {
      data_[o + i] = static_cast<u8>(in[w] >> (8 * (7 - i)));
    }
    parity_bad_[o / 8] = false;
    c += 1;
  }
  ++stats_.writes;
  return c;
}

u64 SdramDevice::backdoor_word64(Addr addr) const {
  assert(is_aligned(addr, 8) && addr + 8 <= data_.size());
  u64 v = 0;
  for (unsigned i = 0; i < 8; ++i) v = (v << 8) | data_[addr + i];
  return v;
}

void SdramDevice::backdoor_write_word64(Addr addr, u64 v) {
  assert(is_aligned(addr, 8) && addr + 8 <= data_.size());
  for (unsigned i = 0; i < 8; ++i) {
    data_[addr + i] = static_cast<u8>(v >> (8 * (7 - i)));
  }
  parity_bad_[addr / 8] = false;
}

bool SdramDevice::corrupt_word64(Addr addr, u64 mask) {
  const Addr word = addr & ~Addr{7};
  if (word + 8 > data_.size()) return false;
  for (unsigned i = 0; i < 8; ++i) {
    data_[word + i] ^= static_cast<u8>(mask >> (8 * (7 - i)));
  }
  parity_bad_[word / 8] = true;
  ++stats_.words_corrupted;
  return true;
}

bool SdramDevice::parity_ok(Addr addr, u64 len) const {
  if (len == 0) return true;
  if (addr + len > data_.size()) return true;
  for (Addr a = addr & ~Addr{7}; a < addr + len; a += 8) {
    if (parity_bad_[a / 8]) return false;
  }
  return true;
}

Cycles FpxSdramController::read(SdramPort p, Cycles now, Addr addr,
                                std::span<u64> out) {
  const int pi = static_cast<int>(p);
  Cycles t = now;
  if (busy_until_ > t) {
    stats_.wait_cycles += busy_until_ - t;
    t = busy_until_;
  }
  std::size_t done = 0;
  while (done < out.size()) {
    const std::size_t n = std::min<std::size_t>(max_burst_, out.size() - done);
    ++stats_.handshakes[pi];
    stats_.words[pi] += n;
    t += kHandshakeCycles +
         dev_.read_burst(addr + static_cast<Addr>(done * 8),
                         out.subspan(done, n));
    done += n;
  }
  busy_until_ = t;
  return t - now;
}

Cycles FpxSdramController::write(SdramPort p, Cycles now, Addr addr,
                                 std::span<const u64> in) {
  const int pi = static_cast<int>(p);
  Cycles t = now;
  if (busy_until_ > t) {
    stats_.wait_cycles += busy_until_ - t;
    t = busy_until_;
  }
  std::size_t done = 0;
  while (done < in.size()) {
    const std::size_t n = std::min<std::size_t>(max_burst_, in.size() - done);
    ++stats_.handshakes[pi];
    stats_.words[pi] += n;
    t += kHandshakeCycles +
         dev_.write_burst(addr + static_cast<Addr>(done * 8),
                          in.subspan(done, n));
    done += n;
  }
  busy_until_ = t;
  return t - now;
}

}  // namespace la::mem
