// The AHB <-> FPX-SDRAM-controller adapter of Section 3.2.
//
// Bridges the 32-bit AMBA AHB world to the 64-bit FPX SDRAM controller:
//   * READS always issue a short sequential burst of 4 32-bit words
//     (2 x 64-bit) per handshake — "only a couple of cycles are wasted
//     when the burst length is shorter, but a significant amount of time
//     is gained by avoiding additional handshakes for 4-word bursts".
//     AHB bursts needing more than 4 words take additional handshakes.
//   * WRITES are read-modify-write: the 64-bit word is read, the 32-bit
//     half (or byte/halfword lane) is merged, and the word is written
//     back — "two separate handshakes for each write request,
//     significantly impairing performance".  Write bursts are not used
//     because the AHB does not announce burst length up front.
//
// The two behaviours are configurable so the benches can ablate them
// (bench/ablate_burst, bench/ablate_rmw).
#pragma once

#include <string_view>

#include "bus/ahb.hpp"
#include "common/snapio.hpp"
#include "common/types.hpp"
#include "mem/sdram.hpp"

namespace la::mem {

struct AdapterConfig {
  /// Words-64 fetched per read handshake (paper: 2, i.e. 4 x 32-bit).
  u32 read_burst_words64 = 2;
  /// If false, every read is a single 64-bit handshake (ablation).
  bool always_short_burst = true;
  /// If true (paper behaviour), each 32-bit write performs a read-modify-
  /// write pair of handshakes.  If false, full 64-bit-aligned word pairs
  /// written in one AHB burst are combined and written directly (ablation:
  /// what a smarter adapter could do).
  bool rmw_writes = true;
};

struct AdapterStats {
  u64 read_handshakes = 0;
  u64 write_handshakes = 0;
  u64 rmw_reads = 0;       // extra reads caused by RMW
  u64 wasted_words64 = 0;  // fetched 64-bit words never consumed by AHB
  u64 parity_errors = 0;   // handshakes refused on bad device parity
};

class AhbSdramAdapter final : public bus::AhbSlave {
 public:
  /// `clock` points at the global cycle counter (for controller busy
  /// modelling); `base` is the AHB base address of SDRAM space.
  AhbSdramAdapter(FpxSdramController& ctrl, Addr base, u32 size,
                  const Cycles* clock, AdapterConfig cfg = {},
                  SdramPort port = SdramPort::kLeon)
      : ctrl_(ctrl),
        base_(base),
        size_(size),
        clock_(clock),
        cfg_(cfg),
        port_(port) {}

  Cycles transfer(bus::AhbTransfer& t) override;
  std::string_view name() const override { return "ahb-sdram-adapter"; }
  bool debug_read(Addr addr, unsigned size, u64& out) override;
  bool debug_write(Addr addr, unsigned size, u64 value) override;

  const AdapterStats& stats() const { return stats_; }
  void reset_stats() { stats_ = AdapterStats{}; }
  const AdapterConfig& config() const { return cfg_; }

  /// Snapshot support: the adapter itself is stateless between transfers,
  /// so only the stats are captured.
  void save_state(SnapWriter& w) const {
    w.tag(snap_tag("SADP"));
    w.u64v(stats_.read_handshakes);
    w.u64v(stats_.write_handshakes);
    w.u64v(stats_.rmw_reads);
    w.u64v(stats_.wasted_words64);
    w.u64v(stats_.parity_errors);
  }
  bool load_state(SnapReader& r) {
    if (!r.expect(snap_tag("SADP"))) return false;
    stats_.read_handshakes = r.u64v();
    stats_.write_handshakes = r.u64v();
    stats_.rmw_reads = r.u64v();
    stats_.wasted_words64 = r.u64v();
    stats_.parity_errors = r.u64v();
    return r.ok();
  }

 private:
  Cycles do_read(bus::AhbTransfer& t);
  Cycles do_write(bus::AhbTransfer& t);

  bool contains(Addr a, u64 len) const {
    return a >= base_ && a - base_ + len <= size_;
  }

  FpxSdramController& ctrl_;
  Addr base_;
  u32 size_;
  const Cycles* clock_;
  AdapterConfig cfg_;
  SdramPort port_;
  AdapterStats stats_;
};

}  // namespace la::mem
