// FPX SRAM model: zero-turnaround (ZBT-style) synchronous SRAM on AHB,
// with a backdoor port for the leon_ctrl/user path that loads programs
// while the processor is disconnected (Section 3.1).
//
// The model carries word-granular parity so injected bit flips are
// *detectable*: corrupt_word() damages the stored bytes and marks the
// word's parity bad; any subsequent bus read of that word answers with an
// AHB ERROR (the CPU takes an access trap), and the user-path can probe
// parity_ok() before trusting a backdoor read.  Writing a word scrubs its
// parity (fresh data, fresh check bits).
#pragma once

#include <cassert>
#include <span>
#include <string_view>
#include <vector>

#include "bus/ahb.hpp"
#include "common/snapio.hpp"
#include "common/types.hpp"

namespace la::mem {

struct SramTiming {
  Cycles read_wait = 1;   // wait states per read beat
  Cycles write_wait = 1;  // wait states per write beat
};

class Sram final : public bus::AhbSlave {
 public:
  Sram(Addr base, u32 size, SramTiming timing = {})
      : base_(base),
        timing_(timing),
        data_(size, 0),
        parity_bad_((size + 3) / 4, false) {
    assert(size > 0);
  }

  Cycles transfer(bus::AhbTransfer& t) override;
  std::string_view name() const override { return "sram"; }
  bool debug_read(Addr addr, unsigned size, u64& out) override;
  bool debug_write(Addr addr, unsigned size, u64 value) override;

  Addr base() const { return base_; }
  u32 size() const { return static_cast<u32>(data_.size()); }
  const SramTiming& timing() const { return timing_; }

  // Backdoor (user-path) access: byte-exact, no bus timing.
  bool backdoor_write(Addr addr, std::span<const u8> bytes);
  bool backdoor_read(Addr addr, std::span<u8> out) const;
  u32 backdoor_word(Addr addr) const;
  void backdoor_write_word(Addr addr, u32 value);

  /// Fault injection: XOR `mask` into the 32-bit word holding `addr` and
  /// mark its parity bad.  Returns false when out of range.
  bool corrupt_word(Addr addr, u32 mask);
  /// True when every word overlapping [addr, addr+len) has good parity.
  bool parity_ok(Addr addr, u64 len) const;

  struct Stats {
    u64 words_corrupted = 0;  // corrupt_word() calls that landed
    u64 parity_errors = 0;    // bus reads refused on bad parity
  };
  const Stats& stats() const { return stats_; }

  /// Snapshot support: contents, per-word parity flags, and stats.  The
  /// restoring instance must have the same size.
  void save_state(SnapWriter& w) const {
    w.tag(snap_tag("SRAM"));
    w.bytes(data_);
    w.vec_bool(parity_bad_);
    w.u64v(stats_.words_corrupted);
    w.u64v(stats_.parity_errors);
  }
  bool load_state(SnapReader& r) {
    if (!r.expect(snap_tag("SRAM"))) return false;
    Bytes data = r.bytes();
    auto parity = r.vec_bool();
    if (data.size() != data_.size() || parity.size() != parity_bad_.size()) {
      return false;
    }
    data_ = std::move(data);
    parity_bad_ = std::move(parity);
    stats_.words_corrupted = r.u64v();
    stats_.parity_errors = r.u64v();
    return r.ok();
  }

 private:
  bool contains(Addr addr, u64 len) const {
    return addr >= base_ && addr - base_ + len <= data_.size();
  }
  std::size_t word_index(Addr addr) const { return (addr - base_) / 4; }

  Addr base_;
  SramTiming timing_;
  std::vector<u8> data_;
  std::vector<bool> parity_bad_;  // one flag per 32-bit word
  Stats stats_;
};

}  // namespace la::mem
