#include "mem/ahb_sdram_adapter.hpp"

#include <algorithm>

#include "common/bits.hpp"

namespace la::mem {
namespace {

/// Merge `size` bytes of `value` into the big-endian 64-bit word `w64`
/// that starts at byte address `word_base`; the beat sits at `addr`.
u64 merge_lane(u64 w64, Addr word_base, Addr addr, unsigned size, u32 value) {
  for (unsigned i = 0; i < size; ++i) {
    const unsigned pos = (addr + i) - word_base;      // 0..7, big-endian
    const unsigned shift = 8 * (7 - pos);
    const u64 byte = (value >> (8 * (size - 1 - i))) & 0xffu;
    w64 = (w64 & ~(u64{0xff} << shift)) | (byte << shift);
  }
  return w64;
}

/// Extract `size` bytes at `addr` from the 64-bit word starting at
/// `word_base`.
u32 extract_lane(u64 w64, Addr word_base, Addr addr, unsigned size) {
  u32 v = 0;
  for (unsigned i = 0; i < size; ++i) {
    const unsigned pos = (addr + i) - word_base;
    v = (v << 8) | static_cast<u32>((w64 >> (8 * (7 - pos))) & 0xffu);
  }
  return v;
}

}  // namespace

bool AhbSdramAdapter::debug_read(Addr addr, unsigned size, u64& out) {
  if (!contains(addr, size)) return false;
  const Addr dev = addr - base_;
  const Addr word = static_cast<Addr>(align_down(dev, 8));
  if (size == 8) {
    out = ctrl_.device().backdoor_word64(word);
    return true;
  }
  out = extract_lane(ctrl_.device().backdoor_word64(word), word, dev, size);
  return true;
}

bool AhbSdramAdapter::debug_write(Addr addr, unsigned size, u64 value) {
  if (!contains(addr, size)) return false;
  const Addr dev = addr - base_;
  const Addr word = static_cast<Addr>(align_down(dev, 8));
  if (size == 8) {
    ctrl_.device().backdoor_write_word64(word, value);
    return true;
  }
  u64 w64 = ctrl_.device().backdoor_word64(word);
  w64 = merge_lane(w64, word, dev, size, static_cast<u32>(value));
  ctrl_.device().backdoor_write_word64(word, w64);
  return true;
}

Cycles AhbSdramAdapter::transfer(bus::AhbTransfer& t) {
  const u64 span = static_cast<u64>(t.beats) * t.beat_bytes;
  if (!contains(t.addr, span)) {
    t.error = true;
    return 2;
  }
  return t.write ? do_write(t) : do_read(t);
}

Cycles AhbSdramAdapter::do_read(bus::AhbTransfer& t) {
  Cycles c = 0;
  // Fetched window of 64-bit words.
  std::vector<u64> win;
  Addr win_base = 0;  // device-local byte offset of win[0]
  u32 consumed = 0;   // 64-bit words of the window actually used

  for (unsigned b = 0; b < t.beats; ++b) {
    const Addr abs = t.addr + b * t.beat_bytes;
    const Addr dev = abs - base_;
    const Addr word = static_cast<Addr>(align_down(dev, 8));
    const bool in_window =
        !win.empty() && word >= win_base && word < win_base + win.size() * 8;
    if (!in_window) {
      if (!win.empty()) {
        stats_.wasted_words64 += win.size() - consumed;
      }
      const u32 n = cfg_.always_short_burst ? cfg_.read_burst_words64 : 1;
      win.assign(n, 0);
      win_base = word;
      // Clamp the prefetch to the device end.
      const u32 avail = static_cast<u32>((size_ - word) / 8);
      if (win.size() > avail) win.resize(avail);
      ++stats_.read_handshakes;
      c += ctrl_.read(port_, *clock_ + c, win_base, win);
      if (ctrl_.device().consume_parity_error()) {
        // The controller saw bad check bits on the data it fetched; answer
        // the AHB with ERROR rather than forwarding damaged words.
        ++stats_.parity_errors;
        t.error = true;
        return c + 2;
      }
      consumed = 0;
    }
    const u32 idx = (word - win_base) / 8;
    consumed = std::max(consumed, idx + 1);
    t.data[b] = extract_lane(win[idx], win_base + idx * 8, dev, t.beat_bytes);
  }
  if (!win.empty()) stats_.wasted_words64 += win.size() - consumed;
  return c;
}

Cycles AhbSdramAdapter::do_write(bus::AhbTransfer& t) {
  Cycles c = 0;
  for (unsigned b = 0; b < t.beats; ++b) {
    const Addr abs = t.addr + b * t.beat_bytes;
    const Addr dev = abs - base_;
    const Addr word = static_cast<Addr>(align_down(dev, 8));

    // Combining fast path (ablation config): two consecutive 32-bit beats
    // covering one aligned 64-bit word are written with one handshake and
    // no read.
    if (!cfg_.rmw_writes && t.beat_bytes == 4 && dev == word &&
        b + 1 < t.beats) {
      u64 w64 = (u64{t.data[b]} << 32) | t.data[b + 1];
      ++stats_.write_handshakes;
      c += ctrl_.write(port_, *clock_ + c, word, std::span<const u64>(&w64, 1));
      ++b;  // consumed two beats
      continue;
    }

    // Paper behaviour: read-modify-write, two handshakes per 32-bit store.
    u64 w64 = 0;
    ++stats_.rmw_reads;
    ++stats_.read_handshakes;
    c += ctrl_.read(port_, *clock_ + c, word, std::span<u64>(&w64, 1));
    if (ctrl_.device().consume_parity_error()) {
      // Writing the merged lane back would regenerate the word's check
      // bits while the *untouched* lanes still hold damaged data — turning
      // a detectable fault into a silent one.  Refuse the store instead.
      ++stats_.parity_errors;
      t.error = true;
      return c + 2;
    }
    w64 = merge_lane(w64, word, dev, t.beat_bytes, t.data[b]);
    ++stats_.write_handshakes;
    c += ctrl_.write(port_, *clock_ + c, word, std::span<const u64>(&w64, 1));
  }
  return c;
}

}  // namespace la::mem
