#include "mem/boot_rom.hpp"

#include <cassert>

#include "common/hex.hpp"

namespace la::mem {

BootRom::BootRom(Addr base, u32 size, std::vector<u8> contents,
                 Cycles read_wait)
    : base_(base), data_(std::move(contents)), read_wait_(read_wait) {
  assert(data_.size() <= size);
  data_.resize(size, 0);
}

Cycles BootRom::transfer(bus::AhbTransfer& t) {
  Cycles cycles = 0;
  for (unsigned b = 0; b < t.beats; ++b) {
    const Addr a = t.addr + b * t.beat_bytes;
    if (t.write || a < base_ || a - base_ + t.beat_bytes > data_.size()) {
      t.error = true;  // ROM: writes get an ERROR response
      return cycles + 2;
    }
    const std::size_t o = a - base_;
    u32 v = 0;
    for (unsigned i = 0; i < t.beat_bytes; ++i) v = (v << 8) | data_[o + i];
    t.data[b] = v;
    cycles += 1 + read_wait_;
  }
  return cycles;
}

bool BootRom::debug_read(Addr addr, unsigned size, u64& out) {
  if (addr < base_ || addr - base_ + size > data_.size()) return false;
  const std::size_t o = addr - base_;
  u64 v = 0;
  for (unsigned i = 0; i < size; ++i) v = (v << 8) | data_[o + i];
  out = v;
  return true;
}

std::string modified_boot_source(Addr rom_base, Addr mailbox) {
  // Fig 5 (right): set config registers, set up the dedicated SRAM space,
  // then poll the mailbox until leon_ctrl plants a start address.
  // The flush keeps the poll from spinning on a stale cached line after
  // the external circuitry writes SRAM behind the processor's back.
  std::string s;
  s += "    .org " + hex32(rom_base) + "\n";
  s += "reset:\n";
  s += "    wr %g0, 2, %wim          ! window 1 invalid\n";
  s += "    set " + hex32(rom_base) + ", %g1\n";
  s += "    wr %g1, 0, %tbr          ! trap table at ROM base\n";
  s += "    wr %g0, 0x80, %psr       ! S=1, traps off during boot\n";
  s += "    ba check_ready\n";
  s += "    nop\n";
  s += "    .org " + hex32(rom_base + kCheckReadyOffset) + "\n";
  s += "check_ready:\n";
  s += "    set " + hex32(mailbox) + ", %l0\n";
  s += "    flush %l0                ! see backdoor writes (Fig 5: flush)\n";
  s += "    ld [%l0], %l1            ! ProgAddr\n";
  s += "    cmp %l1, 0\n";
  s += "    be check_ready\n";
  s += "    nop\n";
  // A new program may have been loaded over the previous one: flush both
  // caches through the cache control register before dispatching, or the
  // I-cache would happily run the old program's lines.
  s += "    set 0x00600000, %l2      ! CCR FI|FD\n";
  s += "    sta %l2, [%g0] 2         ! flush I+D caches\n";
  s += "    jmp %l1                  ! begin execution of the user program\n";
  s += "    nop\n";
  return s;
}

std::string original_boot_source(Addr rom_base, Addr uart_status) {
  // Fig 5 (left): the stock LEON boot waits for a UART event before
  // loading anything.
  std::string s;
  s += "    .org " + hex32(rom_base) + "\n";
  s += "reset:\n";
  s += "    wr %g0, 2, %wim\n";
  s += "    set " + hex32(rom_base) + ", %g1\n";
  s += "    wr %g1, 0, %tbr\n";
  s += "    wr %g0, 0x80, %psr\n";
  s += "load_wait:\n";
  s += "    set " + hex32(uart_status) + ", %l0\n";
  s += "    ld [%l0], %l1\n";
  s += "    btst 2, %l1              ! RX data available?\n";
  s += "    be load_wait\n";
  s += "    nop\n";
  s += "halt:\n";
  s += "    ba halt                  ! (UART download not modelled)\n";
  s += "    nop\n";
  return s;
}

}  // namespace la::mem
