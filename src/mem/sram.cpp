#include "mem/sram.hpp"

#include <algorithm>

namespace la::mem {

Cycles Sram::transfer(bus::AhbTransfer& t) {
  Cycles cycles = 0;
  for (unsigned b = 0; b < t.beats; ++b) {
    const Addr a = t.addr + b * t.beat_bytes;
    if (!contains(a, t.beat_bytes)) {
      t.error = true;
      return cycles + 2;
    }
    const std::size_t o = a - base_;
    if (t.write) {
      const u32 v = t.data[b];
      for (unsigned i = 0; i < t.beat_bytes; ++i) {
        data_[o + i] = static_cast<u8>(v >> (8 * (t.beat_bytes - 1 - i)));
      }
      // Fresh data regenerates the word's check bits.  Sub-word writes scrub
      // too: the model treats a write as a read-modify-write of the parity
      // word, which recomputes parity over the (now intentional) contents.
      parity_bad_[word_index(a)] = false;
      cycles += 1 + timing_.write_wait;
    } else {
      if (parity_bad_[word_index(a)]) {
        ++stats_.parity_errors;
        t.error = true;
        return cycles + 2;
      }
      u32 v = 0;
      for (unsigned i = 0; i < t.beat_bytes; ++i) v = (v << 8) | data_[o + i];
      t.data[b] = v;
      cycles += 1 + timing_.read_wait;
    }
  }
  return cycles;
}

bool Sram::debug_read(Addr addr, unsigned size, u64& out) {
  if (!contains(addr, size)) return false;
  const std::size_t o = addr - base_;
  u64 v = 0;
  for (unsigned i = 0; i < size; ++i) v = (v << 8) | data_[o + i];
  out = v;
  return true;
}

bool Sram::debug_write(Addr addr, unsigned size, u64 value) {
  if (!contains(addr, size)) return false;
  const std::size_t o = addr - base_;
  for (unsigned i = 0; i < size; ++i) {
    data_[o + i] = static_cast<u8>(value >> (8 * (size - 1 - i)));
  }
  return true;
}

bool Sram::backdoor_write(Addr addr, std::span<const u8> bytes) {
  if (!contains(addr, bytes.size())) return false;
  std::copy(bytes.begin(), bytes.end(), data_.begin() + (addr - base_));
  // The user path rewrites whole buffers; every word it touches gets fresh
  // parity.
  for (Addr a = addr & ~Addr{3}; a < addr + bytes.size(); a += 4) {
    parity_bad_[word_index(a)] = false;
  }
  return true;
}

bool Sram::backdoor_read(Addr addr, std::span<u8> out) const {
  if (!contains(addr, out.size())) return false;
  std::copy_n(data_.begin() + (addr - base_), out.size(), out.begin());
  return true;
}

u32 Sram::backdoor_word(Addr addr) const {
  u8 b[4] = {};
  const bool ok = backdoor_read(addr, b);
  assert(ok);
  (void)ok;
  return (u32{b[0]} << 24) | (u32{b[1]} << 16) | (u32{b[2]} << 8) | u32{b[3]};
}

void Sram::backdoor_write_word(Addr addr, u32 value) {
  const u8 b[4] = {static_cast<u8>(value >> 24), static_cast<u8>(value >> 16),
                   static_cast<u8>(value >> 8), static_cast<u8>(value)};
  const bool ok = backdoor_write(addr, b);
  assert(ok);
  (void)ok;
}

bool Sram::corrupt_word(Addr addr, u32 mask) {
  if (!contains(addr & ~Addr{3}, 4)) return false;
  const std::size_t o = (addr - base_) & ~std::size_t{3};
  data_[o + 0] ^= static_cast<u8>(mask >> 24);
  data_[o + 1] ^= static_cast<u8>(mask >> 16);
  data_[o + 2] ^= static_cast<u8>(mask >> 8);
  data_[o + 3] ^= static_cast<u8>(mask);
  parity_bad_[o / 4] = true;
  ++stats_.words_corrupted;
  return true;
}

bool Sram::parity_ok(Addr addr, u64 len) const {
  if (len == 0) return true;
  if (!contains(addr, len)) return true;  // out of range: nothing to report
  for (Addr a = addr & ~Addr{3}; a < addr + len; a += 4) {
    if (parity_bad_[word_index(a)]) return false;
  }
  return true;
}

}  // namespace la::mem
