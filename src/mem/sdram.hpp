// FPX SDRAM subsystem: a banked SDRAM device model and the multi-module
// arbitrated controller of [Dharmapurikar & Lockwood, WUCS-01-26] that the
// paper uses instead of LEON's bundled controller (Section 2.4):
//   * 64-bit data path
//   * request/grant/ack handshake per transfer
//   * up to three client modules with round-robin arbitration
//   * sequential read AND write bursts (the AHB adapter chooses not to use
//     write bursts, Section 3.2 — but the controller supports them)
#pragma once

#include <cassert>
#include <span>
#include <string_view>
#include <vector>

#include "common/bits.hpp"
#include "common/snapio.hpp"
#include "common/types.hpp"

namespace la::mem {

struct SdramTiming {
  Cycles trcd = 2;  // RAS-to-CAS (activate -> column command)
  Cycles trp = 2;   // precharge
  Cycles cas = 2;   // CAS latency (read data appears cas cycles after cmd)
  u32 banks = 4;
  u32 row_bytes = 4096;
};

/// Raw SDRAM device: storage plus open-row timing.  Addresses are byte
/// addresses, accesses are whole 64-bit words.
class SdramDevice {
 public:
  SdramDevice(u32 size_bytes, SdramTiming timing = {});

  u32 size() const { return static_cast<u32>(data_.size()); }
  const SdramTiming& timing() const { return timing_; }

  /// Burst-read `out.size()` consecutive 64-bit words starting at the
  /// 8-byte-aligned byte offset `addr`.  Returns device cycles.  A burst
  /// touching a parity-bad word still returns data (the damaged bits) but
  /// latches the parity-error flag — poll consume_parity_error() after the
  /// burst, the way a real controller samples the ECC/parity pin.
  Cycles read_burst(Addr addr, std::span<u64> out);
  /// Burst-write; returns device cycles.  Scrubs parity of written words.
  Cycles write_burst(Addr addr, std::span<const u64> in);

  /// Fault injection: XOR `mask` into the 64-bit word at the 8-byte-aligned
  /// offset holding `addr` and mark its parity bad.  Returns false when out
  /// of range.
  bool corrupt_word64(Addr addr, u64 mask);
  /// Returns the latched read-parity-error flag and clears it.
  bool consume_parity_error() {
    const bool e = parity_pending_;
    parity_pending_ = false;
    return e;
  }
  /// True when every 64-bit word overlapping [addr, addr+len) has good
  /// parity.
  bool parity_ok(Addr addr, u64 len) const;

  struct Stats {
    u64 row_hits = 0;
    u64 row_misses = 0;   // activate on idle bank
    u64 row_conflicts = 0;  // precharge + activate
    u64 reads = 0;
    u64 writes = 0;
    u64 words_corrupted = 0;  // corrupt_word64() calls that landed
    u64 parity_errors = 0;    // read bursts that touched a bad word
  };
  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

  // Backdoor for test setup.
  u64 backdoor_word64(Addr addr) const;
  void backdoor_write_word64(Addr addr, u64 v);

  /// Snapshot support: contents, open-row registers, parity, and stats.
  void save_state(SnapWriter& w) const {
    w.tag(snap_tag("SDRD"));
    w.bytes(data_);
    w.vec_i64(open_row_);
    w.vec_bool(parity_bad_);
    w.b(parity_pending_);
    w.u64v(stats_.row_hits);
    w.u64v(stats_.row_misses);
    w.u64v(stats_.row_conflicts);
    w.u64v(stats_.reads);
    w.u64v(stats_.writes);
    w.u64v(stats_.words_corrupted);
    w.u64v(stats_.parity_errors);
  }
  bool load_state(SnapReader& r) {
    if (!r.expect(snap_tag("SDRD"))) return false;
    Bytes data = r.bytes();
    auto rows = r.vec_i64();
    auto parity = r.vec_bool();
    if (data.size() != data_.size() || rows.size() != open_row_.size() ||
        parity.size() != parity_bad_.size()) {
      return false;
    }
    data_ = std::move(data);
    open_row_ = std::move(rows);
    parity_bad_ = std::move(parity);
    parity_pending_ = r.b();
    stats_.row_hits = r.u64v();
    stats_.row_misses = r.u64v();
    stats_.row_conflicts = r.u64v();
    stats_.reads = r.u64v();
    stats_.writes = r.u64v();
    stats_.words_corrupted = r.u64v();
    stats_.parity_errors = r.u64v();
    return r.ok();
  }

 private:
  /// Open-row bookkeeping: cycles to make the row of `addr` active.
  Cycles row_cost(Addr addr);

  SdramTiming timing_;
  std::vector<u8> data_;
  std::vector<i64> open_row_;  // per bank, -1 = all precharged
  std::vector<bool> parity_bad_;  // one flag per 64-bit word
  bool parity_pending_ = false;
  Stats stats_;
};

/// Client ports of the FPX SDRAM controller.
enum class SdramPort : u8 { kLeon = 0, kNetwork = 1, kAux = 2, kCount };

class FpxSdramController {
 public:
  /// `max_burst_words` — longest sequential burst (in 64-bit words) one
  /// handshake can carry.
  FpxSdramController(SdramDevice& dev, u32 max_burst_words = 8)
      : dev_(dev), max_burst_(max_burst_words) {
    assert(max_burst_words >= 1);
  }

  /// One handshaked transfer: request -> grant -> command -> data -> ack.
  /// `now` is the current global cycle (for modelling port contention);
  /// the return value is the total cycles until completion as seen by the
  /// caller.  Bursts longer than max_burst_words are split into multiple
  /// handshakes internally (and counted as such).
  Cycles read(SdramPort p, Cycles now, Addr addr, std::span<u64> out);
  Cycles write(SdramPort p, Cycles now, Addr addr, std::span<const u64> in);

  struct Stats {
    u64 handshakes[static_cast<int>(SdramPort::kCount)] = {};
    u64 words[static_cast<int>(SdramPort::kCount)] = {};
    Cycles wait_cycles = 0;  // arbitration/busy waiting
    u64 total_handshakes() const {
      u64 n = 0;
      for (u64 h : handshakes) n += h;
      return n;
    }
  };
  const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

  u32 max_burst_words() const { return max_burst_; }
  SdramDevice& device() { return dev_; }

  /// Fixed handshake overhead per transfer (request + grant + ack).
  static constexpr Cycles kHandshakeCycles = 3;

  /// Snapshot support: port-busy horizon and handshake/word counters.
  void save_state(SnapWriter& w) const {
    w.tag(snap_tag("SDRC"));
    w.u64v(static_cast<u64>(busy_until_));
    for (u64 h : stats_.handshakes) w.u64v(h);
    for (u64 n : stats_.words) w.u64v(n);
    w.u64v(static_cast<u64>(stats_.wait_cycles));
  }
  bool load_state(SnapReader& r) {
    if (!r.expect(snap_tag("SDRC"))) return false;
    busy_until_ = static_cast<Cycles>(r.u64v());
    for (u64& h : stats_.handshakes) h = r.u64v();
    for (u64& n : stats_.words) n = r.u64v();
    stats_.wait_cycles = static_cast<Cycles>(r.u64v());
    return r.ok();
  }

 private:
  SdramDevice& dev_;
  u32 max_burst_;
  Cycles busy_until_ = 0;
  Stats stats_;
};

}  // namespace la::mem
