#include "fault/fault_plan.hpp"

#include <cstdio>

namespace la::fault {

const char* site_name(FaultSite s) {
  switch (s) {
    case FaultSite::kSramWord: return "sram_word";
    case FaultSite::kSdramWord: return "sdram_word";
    case FaultSite::kICacheLine: return "icache_line";
    case FaultSite::kDCacheLine: return "dcache_line";
    case FaultSite::kRegister: return "register";
    case FaultSite::kAhbErrorPulse: return "ahb_error_pulse";
    case FaultSite::kCpuWedge: return "cpu_wedge";
    case FaultSite::kChannelCorrupt: return "channel_corrupt";
    case FaultSite::kChannelTruncate: return "channel_truncate";
    case FaultSite::kChannelDelay: return "channel_delay";
  }
  return "?";
}

bool site_has_parity(FaultSite s) {
  switch (s) {
    case FaultSite::kSramWord:
    case FaultSite::kSdramWord:
    case FaultSite::kICacheLine:
    case FaultSite::kDCacheLine:
      return true;
    default:
      return false;
  }
}

std::string FaultPlan::to_string() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof buf, "# fault plan seed=%llu events=%zu\n",
                static_cast<unsigned long long>(seed), events.size());
  out += buf;
  for (const FaultEvent& e : events) {
    const char* trig = e.trigger.kind == TriggerKind::kCycle  ? "cycle"
                       : e.trigger.kind == TriggerKind::kPc   ? "pc"
                                                              : "packet";
    std::snprintf(buf, sizeof buf,
                  "%s %llu: %s addr=0x%llx mask=0x%llx reg=%u arg=%u%s\n",
                  trig, static_cast<unsigned long long>(e.trigger.value),
                  site_name(e.action.site),
                  static_cast<unsigned long long>(e.action.addr),
                  static_cast<unsigned long long>(e.action.mask),
                  e.action.reg, e.action.arg,
                  e.action.on_downlink ? " downlink" : "");
    out += buf;
  }
  return out;
}

}  // namespace la::fault
