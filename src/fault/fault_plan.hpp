// Declarative fault plans for the injection engine.
//
// A FaultPlan is a seeded list of (trigger, action) events: *when* a fault
// fires (a cycle count, a PC match, or an ingress packet count) and *what*
// it damages (a memory word, a cache line, a register, the AHB response,
// the CPU's clock enable, or a channel frame).  Plans are plain data so a
// failing fuzz campaign can print the exact plan next to the program that
// exposed it — the repro is the pair.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace la::fault {

enum class FaultSite : u8 {
  kSramWord = 0,        // XOR mask into an SRAM word (parity marked bad)
  kSdramWord = 1,       // XOR mask into an SDRAM 64-bit word (parity bad)
  kICacheLine = 2,      // flip a bit in a resident icache line (poison)
  kDCacheLine = 3,      // flip a bit in a resident dcache line (poison)
  kRegister = 4,        // XOR mask into a register-file entry (undetectable)
  kAhbErrorPulse = 5,   // next N AHB transfers answer ERROR
  kCpuWedge = 6,        // stall the CPU for N cycles (0 = until reset)
  kChannelCorrupt = 7,  // flip a bit in the next frame on a channel
  kChannelTruncate = 8, // truncate the next frame on a channel
  kChannelDelay = 9,    // hold the next frame for N receive rounds
};

const char* site_name(FaultSite s);

/// True for sites whose damage lands in state the node can check parity
/// on (the detected-or-masked guarantee applies); false for sites that
/// are inherently silent at the hardware level (registers) or that only
/// perturb timing/networking.
bool site_has_parity(FaultSite s);

enum class TriggerKind : u8 {
  kCycle = 0,        // fires once sys.now() >= value
  kPc = 1,           // fires when a step retires at PC == value
  kPacketCount = 2,  // fires once `value` ingress frames have arrived
};

struct FaultTrigger {
  TriggerKind kind = TriggerKind::kCycle;
  u64 value = 0;
};

struct FaultAction {
  FaultSite site = FaultSite::kSramWord;
  Addr addr = 0;    // memory/cache sites: absolute byte address
  u64 mask = 1;     // XOR damage mask (memory, register)
  u8 reg = 1;       // kRegister: register index 1..31 (%g0 is immune)
  u32 arg = 0;      // site-specific: pulse count / wedge cycles / delay rounds
  bool on_downlink = false;  // channel sites: which direction to damage
};

struct FaultEvent {
  FaultTrigger trigger;
  FaultAction action;
};

struct FaultPlan {
  u64 seed = 1;
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  /// One event per line, stable and greppable — written into repro files.
  std::string to_string() const;
};

}  // namespace la::fault
