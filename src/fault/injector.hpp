// The fault-injection engine: walks a FaultPlan against a live
// LiquidSystem via the system's step/ingress hooks, applies each action
// exactly once when its trigger matches, and keeps a ledger of what fired
// and whether it landed (a cache poison misses when the line is not
// resident).  The campaign layer reads the ledger to classify each
// injected fault as masked, detected, or latent — anything else is a
// silent divergence and a bug.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "fault/fault_plan.hpp"
#include "net/channel.hpp"
#include "sim/liquid_system.hpp"

namespace la::fault {

/// One entry per fired event, in firing order.
struct FiredRecord {
  std::size_t event_index = 0;  // index into plan().events
  Cycles at_cycle = 0;          // sys.now() when the action was applied
  bool landed = true;           // false: action had nothing to damage
};

class FaultInjector {
 public:
  /// Installs itself as the system's step and ingress hook.  `uplink` /
  /// `downlink` are the client-side channels the channel sites damage
  /// (either may be null — channel events then fire but do not land).
  FaultInjector(sim::LiquidSystem& sys, FaultPlan plan,
                net::Channel* uplink = nullptr,
                net::Channel* downlink = nullptr);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }
  const std::vector<FiredRecord>& fired() const { return fired_; }
  bool all_fired() const { return fired_.size() == plan_.events.size(); }
  u64 ingress_frames() const { return ingress_count_; }

  /// True when the event's damage is still sitting in memory with bad
  /// parity (injected, never read, never overwritten).  Only meaningful
  /// for kSramWord / kSdramWord; other sites leave no persistent parity
  /// and return false.
  bool parity_still_bad(std::size_t event_index) const;

  struct Stats {
    u64 injected = 0;   // events fired
    u64 landed = 0;     // events that damaged something
    u64 missed = 0;     // events with nothing to damage
  };
  const Stats& stats() const { return stats_; }

 private:
  void on_step(const cpu::StepResult& r);
  void on_ingress();
  void fire_matching(TriggerKind kind, u64 observed, std::optional<Addr> pc);
  bool apply(const FaultAction& a);

  sim::LiquidSystem& sys_;
  FaultPlan plan_;
  net::Channel* up_;
  net::Channel* down_;

  std::vector<bool> done_;
  std::vector<FiredRecord> fired_;
  Stats stats_;
  u64 ingress_count_ = 0;
  /// kCpuWedge with arg > 0: cycle at which the stall releases.
  std::optional<Cycles> unwedge_at_;
};

}  // namespace la::fault
