#include "fault/injector.hpp"

#include <string>

#include "mem/memory_map.hpp"

namespace la::fault {

FaultInjector::FaultInjector(sim::LiquidSystem& sys, FaultPlan plan,
                             net::Channel* uplink, net::Channel* downlink)
    : sys_(sys),
      plan_(std::move(plan)),
      up_(uplink),
      down_(downlink),
      done_(plan_.events.size(), false) {
  sys_.set_step_hook([this](const cpu::StepResult& r) { on_step(r); });
  sys_.set_ingress_hook([this] { on_ingress(); });
  // Cycle-0 triggers should not wait for the first step.
  fire_matching(TriggerKind::kCycle, sys_.now(), std::nullopt);
}

FaultInjector::~FaultInjector() {
  // The hooks capture `this`; leave none behind.
  sys_.set_step_hook({});
  sys_.set_ingress_hook({});
}

void FaultInjector::on_step(const cpu::StepResult& r) {
  if (unwedge_at_ && sys_.now() >= *unwedge_at_) {
    sys_.cpu().set_wedged(false);
    unwedge_at_.reset();
  }
  fire_matching(TriggerKind::kCycle, sys_.now(), std::nullopt);
  fire_matching(TriggerKind::kPc, 0, r.pc);
}

void FaultInjector::on_ingress() {
  ++ingress_count_;
  fire_matching(TriggerKind::kPacketCount, ingress_count_, std::nullopt);
}

void FaultInjector::fire_matching(TriggerKind kind, u64 observed,
                                  std::optional<Addr> pc) {
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    if (done_[i]) continue;
    const FaultEvent& e = plan_.events[i];
    if (e.trigger.kind != kind) continue;
    const bool match = kind == TriggerKind::kPc
                           ? (pc && *pc == e.trigger.value)
                           : observed >= e.trigger.value;
    if (!match) continue;
    done_[i] = true;
    const bool landed = apply(e.action);
    fired_.push_back({i, sys_.now(), landed});
    ++stats_.injected;
    landed ? ++stats_.landed : ++stats_.missed;
    const std::string site = site_name(e.action.site);
    sys_.metrics().counter("fault.injected").inc();
    sys_.metrics().counter("fault.site." + site).inc();
    if (!landed) sys_.metrics().counter("fault.missed").inc();
    if (auto* perf = sys_.perf_tracer()) perf->instant("fault." + site);
    if (auto* fr = sys_.flight_recorder()) {
      fr->record(sys_.now(), sim::FlightEventKind::kFaultFired,
                 static_cast<u64>(e.action.site), e.action.addr);
    }
  }
}

bool FaultInjector::apply(const FaultAction& a) {
  switch (a.site) {
    case FaultSite::kSramWord:
      return sys_.sram().corrupt_word(a.addr, static_cast<u32>(a.mask));
    case FaultSite::kSdramWord: {
      if (a.addr < mem::map::kSdramBase) return false;
      return sys_.sdram_device().corrupt_word64(a.addr - mem::map::kSdramBase,
                                                a.mask);
    }
    case FaultSite::kICacheLine:
      return sys_.cpu().icache().poison_line(a.addr, a.arg,
                                             static_cast<u8>(a.mask & 7));
    case FaultSite::kDCacheLine:
      return sys_.cpu().dcache().poison_line(a.addr, a.arg,
                                             static_cast<u8>(a.mask & 7));
    case FaultSite::kRegister: {
      if (a.reg == 0 || a.reg > 31) return false;
      cpu::CpuState& st = sys_.cpu().state();
      const u32 old = st.regs.get(st.psr.cwp, a.reg);
      st.regs.set(st.psr.cwp, a.reg, old ^ static_cast<u32>(a.mask));
      return true;
    }
    case FaultSite::kAhbErrorPulse:
      sys_.ahb().inject_error_pulse(a.arg ? a.arg : 1);
      return true;
    case FaultSite::kCpuWedge:
      sys_.cpu().set_wedged(true);
      if (a.arg > 0) unwedge_at_ = sys_.now() + a.arg;
      return true;
    case FaultSite::kChannelCorrupt: {
      net::Channel* ch = a.on_downlink ? down_ : up_;
      if (!ch) return false;
      ch->force_corrupt_next();
      return true;
    }
    case FaultSite::kChannelTruncate: {
      net::Channel* ch = a.on_downlink ? down_ : up_;
      if (!ch) return false;
      ch->force_truncate_next();
      return true;
    }
    case FaultSite::kChannelDelay: {
      net::Channel* ch = a.on_downlink ? down_ : up_;
      if (!ch) return false;
      ch->force_delay_next(a.arg ? a.arg : 1);
      return true;
    }
  }
  return false;
}

bool FaultInjector::parity_still_bad(std::size_t event_index) const {
  if (event_index >= plan_.events.size()) return false;
  const FaultAction& a = plan_.events[event_index].action;
  switch (a.site) {
    case FaultSite::kSramWord:
      return !sys_.sram().parity_ok(a.addr & ~Addr{3}, 4);
    case FaultSite::kSdramWord: {
      if (a.addr < mem::map::kSdramBase) return false;
      const Addr local = (a.addr - mem::map::kSdramBase) & ~Addr{7};
      return !sys_.sdram_device().parity_ok(local, 8);
    }
    default:
      return false;
  }
}

}  // namespace la::fault
