// Parameterized set-associative cache model with line data storage.
//
// This is the structure the paper's headline experiment reconfigures: the
// LEON2 data cache (direct-mapped, write-through, no-allocate) swept from
// 1 KB to 16 KB with 32-byte lines.  The model keeps both tags and line
// data, so stale-data effects are faithful: a write performed behind the
// processor's back (the leon_ctrl/user path of Fig 6) stays invisible
// until the line is flushed — which is why the paper's modified boot ROM
// executes a `flush` inside its mailbox polling loop (Fig 5).
//
// Beyond the LEON scheme, write-back/allocate and multi-way LRU/random
// configurations are implemented as liquid-architecture extension points
// (Section 1 lists variable cache schemes as the motivating
// reconfiguration axis).
#pragma once

#include <cassert>
#include <vector>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "common/snapio.hpp"
#include "common/types.hpp"

namespace la::cache {

enum class WritePolicy : u8 {
  kWriteThroughNoAllocate,  // LEON2's scheme
  kWriteBackAllocate,       // extension
};

enum class Replacement : u8 {
  kLru,
  kRandom,
};

struct CacheConfig {
  u32 size_bytes = 1024;
  u32 line_bytes = 32;
  u32 ways = 1;  // LEON2 caches are direct-mapped
  Replacement replacement = Replacement::kLru;
  WritePolicy write_policy = WritePolicy::kWriteThroughNoAllocate;

  bool valid() const {
    return is_pow2(size_bytes) && is_pow2(line_bytes) && is_pow2(ways) &&
           line_bytes >= 4 && ways >= 1 &&
           static_cast<u64>(line_bytes) * ways <= size_bytes;
  }

  u32 num_lines() const { return size_bytes / line_bytes; }
  u32 num_sets() const { return num_lines() / ways; }
  u32 words_per_line() const { return line_bytes / 4; }
};

struct CacheStats {
  u64 read_hits = 0;
  u64 read_misses = 0;
  u64 write_hits = 0;
  u64 write_misses = 0;
  u64 evictions = 0;    // valid lines displaced by fills
  u64 writebacks = 0;   // dirty lines written back (write-back policy only)
  u64 flushes = 0;
  u64 parity_recoveries = 0;  // poisoned clean lines refetched from memory
  u64 parity_discards = 0;    // poisoned dirty lines lost (data gone)

  u64 reads() const { return read_hits + read_misses; }
  u64 writes() const { return write_hits + write_misses; }
  u64 accesses() const { return reads() + writes(); }
  u64 misses() const { return read_misses + write_misses; }
  double miss_ratio() const {
    return accesses() == 0 ? 0.0
                           : static_cast<double>(misses()) /
                                 static_cast<double>(accesses());
  }
};

/// A dirty line expelled by flush or invalidation (write-back policy).
struct DirtyLine {
  Addr addr = 0;
  std::vector<u8> data;
};

/// What the pipeline must do to service one access.
struct AccessOutcome {
  bool hit = false;
  bool fill = false;       // fetch the line from memory into `data`
  bool writeback = false;  // write the dirty victim back first
  /// The access touched a poisoned DIRTY line whose only copy of the data
  /// was lost — the caller must raise a data-access fault (a clean
  /// poisoned line is silently refetched instead and never sets this).
  bool parity_discard = false;
  Addr line_addr = 0;      // line-aligned address of this access
  Addr victim_addr = 0;    // line-aligned victim address when writeback
  /// Storage of the (new) line inside the cache; null only for a
  /// write-through write miss (write-around, nothing allocated).
  /// When `writeback` is set this still holds the VICTIM's bytes — the
  /// caller must save them before filling.
  u8* data = nullptr;
  /// Slot index (set * ways + way) of `data` when non-null.  Callers that
  /// maintain per-slot side structures (the pipeline's predecoded I-line
  /// mirror) key them by this.
  u32 slot = 0;
};

/// Result of the hot-path hit probe (see Cache::lookup_hit).
struct HitRef {
  u8* data = nullptr;  // line storage; null = caller must use access()
  u32 slot = 0;        // slot index of the hit line
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg, u64 seed = 0);

  /// Look up (and update) the cache for an access at `addr`:
  ///   * read miss: a line is allocated (outcome.fill), the victim possibly
  ///     needs writing back first
  ///   * write, write-through: a hit exposes the line for update (the
  ///     caller also writes memory); a miss does not allocate
  ///   * write, write-back: miss allocates; the line is marked dirty
  AccessOutcome access(Addr addr, bool is_write);

  /// Lookup without disturbing replacement state or statistics.
  bool probe(Addr addr) const;
  /// Read-only view of a resident line's bytes (nullptr if absent).
  const u8* peek_line(Addr addr) const;

  /// Invalidate everything.  Dirty lines are appended to `dirty_out` if
  /// provided (write-back policy); null discards them, which is correct
  /// for LEON's write-through caches.
  void flush(std::vector<DirtyLine>* dirty_out = nullptr);

  /// Invalidate one line if present (FLUSH instruction; coherence hook).
  /// A dirty victim is returned through `dirty_out` when given.
  bool invalidate_line(Addr addr, DirtyLine* dirty_out = nullptr);

  /// Fault injection: flip bit `bit` of the byte at `byte_off` inside the
  /// resident line holding `addr` and mark the line's parity bad.  Returns
  /// false when the line is not resident (nothing to poison).
  bool poison_line(Addr addr, u32 byte_off, u8 bit);

  const CacheConfig& config() const { return cfg_; }
  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

  /// Number of currently valid lines (test/diagnostic aid).
  u32 valid_lines() const;

  /// Hot-path probe for an ordinary read hit.  On a non-poisoned hit it
  /// updates LRU and statistics exactly as `access(addr, false)` would and
  /// returns the line storage + slot; in every other case (miss, poisoned
  /// line) it touches NOTHING and returns null data — the caller falls
  /// back to access(), which then observes the same pre-probe state.
  HitRef lookup_hit(Addr addr) {
    const u32 set = (static_cast<u32>(addr) >> line_shift_) & set_mask_;
    const u32 tag = static_cast<u32>(addr) >> tag_shift_;
    Way* base = &ways_[static_cast<std::size_t>(set) * cfg_.ways];
    for (u32 w = 0; w < cfg_.ways; ++w) {
      Way& way = base[w];
      if (way.valid && way.tag == tag) {
        if (way.poisoned) return {};
        way.lru = ++tick_;
        ++stats_.read_hits;
        const u32 slot = set * cfg_.ways + w;
        return {slot_data(slot), slot};
      }
    }
    return {};
  }

  /// Content generation: bumped whenever the cache itself changes a
  /// resident line's identity or contents (fill, flush, invalidate,
  /// poison).  A caller that observed a lookup_hit at generation G may
  /// re-hit the same slot for the same line without re-probing as long as
  /// gen() still equals G — nothing can have replaced, invalidated, or
  /// poisoned the line in between.  Plain hits (LRU/stats updates) do not
  /// bump it, and neither do caller writes through an outcome's data
  /// pointer — the contract is for read-only users (the pipeline's
  /// instruction side, where lines are never written).
  u64 gen() const { return gen_; }

  /// Re-hit a slot previously returned by lookup_hit, valid only under an
  /// unchanged gen(): performs exactly the LRU/statistics update the full
  /// probe would have, skipping the tag compare.
  void touch_read_hit(u32 slot) {
    ways_[slot].lru = ++tick_;
    ++stats_.read_hits;
  }

  /// Snapshot support: full tag/LRU/parity/data/stats/replacement-RNG state.
  /// load_state requires identical geometry (the snapshot carries the
  /// config) and bumps gen() so any cached slot references are invalidated.
  void save_state(SnapWriter& w) const;
  bool load_state(SnapReader& r);

 private:
  struct Way {
    bool valid = false;
    bool dirty = false;
    bool poisoned = false;  // line parity bad (injected fault)
    u32 tag = 0;
    u64 lru = 0;  // higher = more recently used
  };

  u32 set_of(Addr addr) const {
    return (static_cast<u32>(addr) >> line_shift_) & set_mask_;
  }
  u32 tag_of(Addr addr) const { return static_cast<u32>(addr) >> tag_shift_; }
  Addr line_base(u32 set, u32 tag) const {
    return static_cast<Addr>(((tag << set_shift_) | set)) << line_shift_;
  }
  u8* slot_data(std::size_t way_index) {
    return &data_[way_index * cfg_.line_bytes];
  }
  const u8* slot_data(std::size_t way_index) const {
    return &data_[way_index * cfg_.line_bytes];
  }

  Way* find(u32 set, u32 tag);
  const Way* find(u32 set, u32 tag) const;
  std::size_t choose_victim(u32 set);

  CacheConfig cfg_;
  // Geometry is all powers of two; these precomputed shifts/masks replace
  // the divisions in set/tag extraction on the per-access path.
  u32 line_shift_ = 0;  // log2(line_bytes)
  u32 set_shift_ = 0;   // log2(num_sets)
  u32 tag_shift_ = 0;   // line_shift_ + set_shift_
  u32 set_mask_ = 0;    // num_sets - 1
  std::vector<Way> ways_;  // num_sets * ways, set-major
  std::vector<u8> data_;   // line storage, parallel to ways_
  CacheStats stats_;
  Rng rng_;
  u64 tick_ = 0;
  u64 gen_ = 0;  // see gen()
};

}  // namespace la::cache
