#include "cache/cache.hpp"

namespace la::cache {

Cache::Cache(const CacheConfig& cfg, u64 seed)
    : cfg_(cfg),
      line_shift_(ilog2(cfg.line_bytes)),
      set_shift_(ilog2(cfg.num_sets())),
      tag_shift_(ilog2(cfg.line_bytes) + ilog2(cfg.num_sets())),
      set_mask_(cfg.num_sets() - 1),
      ways_(cfg.num_lines()),
      data_(static_cast<std::size_t>(cfg.num_lines()) * cfg.line_bytes, 0),
      rng_(seed) {
  assert(cfg.valid());
}

Cache::Way* Cache::find(u32 set, u32 tag) {
  Way* base = &ways_[static_cast<std::size_t>(set) * cfg_.ways];
  for (u32 w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return &base[w];
  }
  return nullptr;
}

const Cache::Way* Cache::find(u32 set, u32 tag) const {
  const Way* base = &ways_[static_cast<std::size_t>(set) * cfg_.ways];
  for (u32 w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return &base[w];
  }
  return nullptr;
}

std::size_t Cache::choose_victim(u32 set) {
  const std::size_t first = static_cast<std::size_t>(set) * cfg_.ways;
  for (u32 w = 0; w < cfg_.ways; ++w) {
    if (!ways_[first + w].valid) return first + w;
  }
  if (cfg_.replacement == Replacement::kRandom) {
    return first + rng_.below(cfg_.ways);
  }
  std::size_t victim = first;
  for (u32 w = 1; w < cfg_.ways; ++w) {
    if (ways_[first + w].lru < ways_[victim].lru) victim = first + w;
  }
  return victim;
}

AccessOutcome Cache::access(Addr addr, bool is_write) {
  const u32 set = set_of(addr);
  const u32 tag = tag_of(addr);
  AccessOutcome out;
  out.line_addr = static_cast<Addr>(align_down(addr, cfg_.line_bytes));
  ++tick_;

  if (Way* w = find(set, tag)) {
    if (w->poisoned) {
      // Bad parity on the resident copy.  A clean line is recoverable —
      // drop it and refetch from memory via the ordinary miss path below.
      // A dirty line held the only copy of the data; it is lost, and the
      // caller must fault.
      if (w->dirty) {
        ++stats_.parity_discards;
        *w = Way{};
        ++gen_;
        out.parity_discard = true;
        if (is_write) {
          ++stats_.write_misses;
        } else {
          ++stats_.read_misses;
        }
        return out;
      }
      ++stats_.parity_recoveries;
      *w = Way{};
    } else {
      out.hit = true;
      out.slot = static_cast<u32>(w - ways_.data());
      out.data = slot_data(out.slot);
      w->lru = tick_;
      if (is_write) {
        ++stats_.write_hits;
        if (cfg_.write_policy == WritePolicy::kWriteBackAllocate) {
          w->dirty = true;
        }
      } else {
        ++stats_.read_hits;
      }
      return out;
    }
  }

  // Miss.  Everything from here on can change a resident line's identity
  // or contents (fill, victim drop), so the content generation moves; the
  // poisoned-dirty early return above bumped it already.
  ++gen_;
  if (is_write) {
    ++stats_.write_misses;
    if (cfg_.write_policy == WritePolicy::kWriteThroughNoAllocate) {
      return out;  // write-around: no fill, memory updated by caller
    }
  } else {
    ++stats_.read_misses;
  }

  // Fill path (read miss always; write miss only with allocate policy).
  out.fill = true;
  const std::size_t vi = choose_victim(set);
  Way& v = ways_[vi];
  if (v.valid) {
    if (v.dirty && v.poisoned) {
      // The victim's only copy of its data is damaged — it must not be
      // written back, and dropping it silently would lose a store.  Drop
      // the line and promote the parity error to the triggering access
      // (the caller faults); nothing is allocated.
      ++stats_.parity_discards;
      v = Way{};
      out.fill = false;
      out.parity_discard = true;
      return out;
    }
    ++stats_.evictions;
    if (v.dirty) {
      ++stats_.writebacks;
      out.writeback = true;
      out.victim_addr = line_base(set, v.tag);
    }
  }
  v.valid = true;
  v.dirty = is_write && cfg_.write_policy == WritePolicy::kWriteBackAllocate;
  v.poisoned = false;
  v.tag = tag;
  v.lru = tick_;
  out.slot = static_cast<u32>(vi);
  out.data = slot_data(vi);  // still holds the victim's bytes; caller saves
  return out;
}

bool Cache::probe(Addr addr) const {
  return find(set_of(addr), tag_of(addr)) != nullptr;
}

const u8* Cache::peek_line(Addr addr) const {
  const Way* w = find(set_of(addr), tag_of(addr));
  if (w == nullptr) return nullptr;
  return slot_data(static_cast<std::size_t>(w - ways_.data()));
}

void Cache::flush(std::vector<DirtyLine>* dirty_out) {
  ++stats_.flushes;
  ++gen_;
  for (u32 set = 0; set < cfg_.num_sets(); ++set) {
    for (u32 w = 0; w < cfg_.ways; ++w) {
      const std::size_t i = static_cast<std::size_t>(set) * cfg_.ways + w;
      Way& way = ways_[i];
      if (way.valid && way.dirty && way.poisoned) {
        ++stats_.parity_discards;  // damaged data never reaches memory
      } else if (way.valid && way.dirty && dirty_out != nullptr) {
        DirtyLine d;
        d.addr = line_base(set, way.tag);
        d.data.assign(slot_data(i), slot_data(i) + cfg_.line_bytes);
        dirty_out->push_back(std::move(d));
      }
      way = Way{};
    }
  }
}

bool Cache::invalidate_line(Addr addr, DirtyLine* dirty_out) {
  if (Way* w = find(set_of(addr), tag_of(addr))) {
    const std::size_t i = static_cast<std::size_t>(w - ways_.data());
    if (w->dirty && w->poisoned) {
      ++stats_.parity_discards;
    } else if (w->dirty && dirty_out != nullptr) {
      dirty_out->addr = line_base(set_of(addr), w->tag);
      dirty_out->data.assign(slot_data(i), slot_data(i) + cfg_.line_bytes);
    }
    *w = Way{};
    ++gen_;
    return true;
  }
  return false;
}

bool Cache::poison_line(Addr addr, u32 byte_off, u8 bit) {
  Way* w = find(set_of(addr), tag_of(addr));
  if (w == nullptr) return false;
  const std::size_t i = static_cast<std::size_t>(w - ways_.data());
  slot_data(i)[byte_off % cfg_.line_bytes] ^= static_cast<u8>(1u << (bit % 8));
  w->poisoned = true;
  ++gen_;
  return true;
}

u32 Cache::valid_lines() const {
  u32 n = 0;
  for (const Way& w : ways_) n += w.valid ? 1 : 0;
  return n;
}

namespace {
constexpr u32 kCacheTag = snap_tag("CACH");
}  // namespace

void Cache::save_state(SnapWriter& w) const {
  w.tag(kCacheTag);
  w.u32v(cfg_.size_bytes);
  w.u32v(cfg_.line_bytes);
  w.u32v(cfg_.ways);
  w.u8v(static_cast<u8>(cfg_.replacement));
  w.u8v(static_cast<u8>(cfg_.write_policy));
  w.u64v(ways_.size());
  for (const Way& way : ways_) {
    w.b(way.valid);
    w.b(way.dirty);
    w.b(way.poisoned);
    w.u32v(way.tag);
    w.u64v(way.lru);
  }
  w.bytes(data_);
  w.u64v(stats_.read_hits);
  w.u64v(stats_.read_misses);
  w.u64v(stats_.write_hits);
  w.u64v(stats_.write_misses);
  w.u64v(stats_.evictions);
  w.u64v(stats_.writebacks);
  w.u64v(stats_.flushes);
  w.u64v(stats_.parity_recoveries);
  w.u64v(stats_.parity_discards);
  u64 rng_state[4];
  rng_.get_state(rng_state);
  for (u64 s : rng_state) w.u64v(s);
  w.u64v(tick_);
}

bool Cache::load_state(SnapReader& r) {
  if (!r.expect(kCacheTag)) return false;
  const bool geometry_ok =
      r.u32v() == cfg_.size_bytes && r.u32v() == cfg_.line_bytes &&
      r.u32v() == cfg_.ways && r.u8v() == static_cast<u8>(cfg_.replacement) &&
      r.u8v() == static_cast<u8>(cfg_.write_policy) && r.u64v() == ways_.size();
  if (!geometry_ok || !r.ok()) return false;
  for (Way& way : ways_) {
    way.valid = r.b();
    way.dirty = r.b();
    way.poisoned = r.b();
    way.tag = r.u32v();
    way.lru = r.u64v();
  }
  Bytes data = r.bytes();
  if (data.size() != data_.size()) return false;
  data_ = std::move(data);
  stats_.read_hits = r.u64v();
  stats_.read_misses = r.u64v();
  stats_.write_hits = r.u64v();
  stats_.write_misses = r.u64v();
  stats_.evictions = r.u64v();
  stats_.writebacks = r.u64v();
  stats_.flushes = r.u64v();
  stats_.parity_recoveries = r.u64v();
  stats_.parity_discards = r.u64v();
  u64 rng_state[4];
  for (u64& s : rng_state) s = r.u64v();
  rng_.set_state(rng_state);
  tick_ = r.u64v();
  ++gen_;  // anything memoized against the old contents is now stale
  return r.ok();
}

}  // namespace la::cache
