#include "bus/ahb.hpp"

#include <cassert>
#include <stdexcept>

namespace la::bus {

void AhbBus::attach(Addr base, u64 size, AhbSlave* slave) {
  assert(slave != nullptr && size > 0);
  for (const Mapping& m : map_) {
    const bool overlap =
        base < m.base + m.size && m.base < static_cast<u64>(base) + size;
    if (overlap) {
      throw std::logic_error("AHB mapping overlap with " +
                             std::string(m.slave->name()));
    }
  }
  map_.push_back({base, size, slave});
}

AhbSlave* AhbBus::slave_at(Addr addr) const {
  for (const Mapping& m : map_) {
    if (addr >= m.base && addr - m.base < m.size) return m.slave;
  }
  return nullptr;
}

Cycles AhbBus::transfer(Master m, AhbTransfer& t) {
  AhbMasterStats& st = stats_.per_master[static_cast<int>(m)];
  ++st.transfers;
  st.beats += t.beats;

  if (error_pulse_ > 0) {
    --error_pulse_;
    t.error = true;
    ++stats_.injected_errors;
    ++st.errors;
    const Cycles cycles = 1 + 2;
    st.cycles += cycles;
    return cycles;
  }

  AhbSlave* slave = slave_at(t.addr);
  Cycles cycles;
  if (slave == nullptr) {
    // Two-cycle ERROR response per the AHB spec.
    t.error = true;
    ++stats_.unmapped;
    ++st.errors;
    cycles = 1 + 2;
  } else {
    cycles = 1 + slave->transfer(t);  // 1 address-phase cycle
    if (t.error) ++st.errors;
  }
  st.cycles += cycles;
  return cycles;
}

bool AhbBus::debug_read(Addr addr, unsigned size, u64& out) const {
  AhbSlave* s = slave_at(addr);
  return s != nullptr && s->debug_read(addr, size, out);
}

bool AhbBus::debug_write(Addr addr, unsigned size, u64 value) const {
  AhbSlave* s = slave_at(addr);
  return s != nullptr && s->debug_write(addr, size, value);
}

Cycles AhbBus::read32(Master m, Addr addr, u32& value) {
  AhbTransfer t;
  t.addr = addr;
  t.data = &value;
  const Cycles c = transfer(m, t);
  return c;
}

Cycles AhbBus::write32(Master m, Addr addr, u32 value) {
  AhbTransfer t;
  t.addr = addr;
  t.write = true;
  t.data = &value;
  return transfer(m, t);
}

}  // namespace la::bus
