#include "bus/ahb.hpp"

#include <cassert>
#include <stdexcept>

namespace la::bus {

void AhbBus::attach(Addr base, u64 size, AhbSlave* slave) {
  assert(slave != nullptr && size > 0);
  for (const Mapping& m : map_) {
    const bool overlap =
        base < m.base + m.size && m.base < static_cast<u64>(base) + size;
    if (overlap) {
      throw std::logic_error("AHB mapping overlap with " +
                             std::string(m.slave->name()));
    }
  }
  map_.push_back({base, size, slave});
  hot_ = nullptr;  // push_back may reallocate the mapping storage
}

AhbSlave* AhbBus::slave_at(Addr addr) const {
  const Mapping* m = lookup(addr);
  return m != nullptr ? m->slave : nullptr;
}

Cycles AhbBus::transfer(Master m, AhbTransfer& t) {
  AhbMasterStats& st = stats_.per_master[static_cast<int>(m)];
  ++st.transfers;
  st.beats += t.beats;

  if (error_pulse_ > 0) {
    --error_pulse_;
    t.error = true;
    ++stats_.injected_errors;
    ++st.errors;
    const Cycles cycles = 1 + 2;
    st.cycles += cycles;
    return cycles;
  }

  AhbSlave* slave = slave_at(t.addr);
  Cycles cycles;
  if (slave == nullptr) {
    // Two-cycle ERROR response per the AHB spec.
    t.error = true;
    ++stats_.unmapped;
    ++st.errors;
    cycles = 1 + 2;
  } else {
    cycles = 1 + slave->transfer(t);  // 1 address-phase cycle
    if (t.error) ++st.errors;
  }
  st.cycles += cycles;
  return cycles;
}

bool AhbBus::debug_read(Addr addr, unsigned size, u64& out) const {
  AhbSlave* s = slave_at(addr);
  return s != nullptr && s->debug_read(addr, size, out);
}

bool AhbBus::debug_write(Addr addr, unsigned size, u64 value) const {
  AhbSlave* s = slave_at(addr);
  return s != nullptr && s->debug_write(addr, size, value);
}

Cycles AhbBus::read32(Master m, Addr addr, u32& value) {
  AhbTransfer t;
  t.addr = addr;
  t.data = &value;
  const Cycles c = transfer(m, t);
  return c;
}

Cycles AhbBus::write32(Master m, Addr addr, u32 value) {
  AhbTransfer t;
  t.addr = addr;
  t.write = true;
  t.data = &value;
  return transfer(m, t);
}

namespace {
/// Largest line the stack beat buffer covers (256-byte lines); bigger
/// configurations fall back to a heap buffer.
constexpr u32 kMaxStackBeats = 64;
}  // namespace

Cycles AhbBus::fill_line(Master m, Addr addr, u32 line_bytes, u8* line,
                         bool& error) {
  const unsigned beats = line_bytes / 4;
  u32 stack[kMaxStackBeats];
  std::vector<u32> heap;
  u32* buf = stack;
  if (beats > kMaxStackBeats) {
    heap.resize(beats);
    buf = heap.data();
  }
  AhbTransfer t;
  t.addr = addr;
  t.beats = beats;
  t.burst = burst_for_beats(beats);
  t.data = buf;
  const Cycles c = transfer(m, t);
  error = t.error;
  if (!t.error) {
    // Beats are big-endian words; unpack into the line's byte storage.
    for (u32 w = 0; w < beats; ++w) {
      const u32 v = buf[w];
      line[w * 4 + 0] = static_cast<u8>(v >> 24);
      line[w * 4 + 1] = static_cast<u8>(v >> 16);
      line[w * 4 + 2] = static_cast<u8>(v >> 8);
      line[w * 4 + 3] = static_cast<u8>(v);
    }
  }
  return c;
}

Cycles AhbBus::write_line(Master m, Addr addr, u32 line_bytes, const u8* line,
                          bool& error) {
  const unsigned beats = line_bytes / 4;
  u32 stack[kMaxStackBeats];
  std::vector<u32> heap;
  u32* buf = stack;
  if (beats > kMaxStackBeats) {
    heap.resize(beats);
    buf = heap.data();
  }
  for (u32 w = 0; w < beats; ++w) {
    buf[w] = (u32{line[w * 4 + 0]} << 24) | (u32{line[w * 4 + 1]} << 16) |
             (u32{line[w * 4 + 2]} << 8) | u32{line[w * 4 + 3]};
  }
  AhbTransfer t;
  t.addr = addr;
  t.write = true;
  t.beats = beats;
  t.burst = burst_for_beats(beats);
  t.data = buf;
  const Cycles c = transfer(m, t);
  error = t.error;
  return c;
}

}  // namespace la::bus
