// AMBA APB: the low-bandwidth peripheral bus behind the AHB/APB bridge
// (LEON hangs its UART, timers, interrupt controller, and I/O ports here).
#pragma once

#include <functional>
#include <string_view>
#include <vector>

#include "bus/ahb.hpp"
#include "common/types.hpp"

namespace la::bus {

/// APB peripherals are register files: word reads/writes at small offsets.
class ApbSlave {
 public:
  virtual ~ApbSlave() = default;
  /// Read the 32-bit register at byte offset `offset` (within the device).
  virtual u32 read(u32 offset) = 0;
  virtual void write(u32 offset, u32 value) = 0;
  virtual std::string_view name() const = 0;
};

/// The AHB/APB bridge: an AHB slave that forwards single-beat accesses to
/// APB devices.  Every APB access costs the classic two APB cycles (setup
/// + access) on top of the AHB data phase.
class ApbBridge final : public AhbSlave {
 public:
  /// `ahb_base` is where the bridge sits on AHB; device offsets are
  /// relative to it.
  explicit ApbBridge(Addr ahb_base) : base_(ahb_base) {}

  void attach(u32 offset, u32 size, ApbSlave* dev);

  Cycles transfer(AhbTransfer& t) override;
  std::string_view name() const override { return "apb-bridge"; }

  ApbSlave* device_at(u32 offset) const;

  /// Cycles consumed on the APB side (for bus-utilization reporting).
  Cycles apb_cycles() const { return apb_cycles_; }

  /// Invoked at the start of every transfer(), BEFORE the access reaches a
  /// device.  The batched system run loop uses it to catch peripherals up
  /// to the current cycle so a mid-batch program read of (say) the timer
  /// counter observes exactly the state a per-step loop would have
  /// produced.  The armed flag keeps the unarmed cost to one bool test.
  using AccessHook = std::function<void()>;
  void set_access_hook(AccessHook h) {
    access_hook_ = std::move(h);
    hook_armed_ = static_cast<bool>(access_hook_);
  }

 private:
  struct Mapping {
    u32 offset;
    u32 size;
    ApbSlave* dev;
  };

  Addr base_;
  std::vector<Mapping> map_;
  Cycles apb_cycles_ = 0;
  AccessHook access_hook_;
  bool hook_armed_ = false;
};

}  // namespace la::bus
