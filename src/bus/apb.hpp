// AMBA APB: the low-bandwidth peripheral bus behind the AHB/APB bridge
// (LEON hangs its UART, timers, interrupt controller, and I/O ports here).
#pragma once

#include <string_view>
#include <vector>

#include "bus/ahb.hpp"
#include "common/types.hpp"

namespace la::bus {

/// APB peripherals are register files: word reads/writes at small offsets.
class ApbSlave {
 public:
  virtual ~ApbSlave() = default;
  /// Read the 32-bit register at byte offset `offset` (within the device).
  virtual u32 read(u32 offset) = 0;
  virtual void write(u32 offset, u32 value) = 0;
  virtual std::string_view name() const = 0;
};

/// The AHB/APB bridge: an AHB slave that forwards single-beat accesses to
/// APB devices.  Every APB access costs the classic two APB cycles (setup
/// + access) on top of the AHB data phase.
class ApbBridge final : public AhbSlave {
 public:
  /// `ahb_base` is where the bridge sits on AHB; device offsets are
  /// relative to it.
  explicit ApbBridge(Addr ahb_base) : base_(ahb_base) {}

  void attach(u32 offset, u32 size, ApbSlave* dev);

  Cycles transfer(AhbTransfer& t) override;
  std::string_view name() const override { return "apb-bridge"; }

  ApbSlave* device_at(u32 offset) const;

  /// Cycles consumed on the APB side (for bus-utilization reporting).
  Cycles apb_cycles() const { return apb_cycles_; }

 private:
  struct Mapping {
    u32 offset;
    u32 size;
    ApbSlave* dev;
  };

  Addr base_;
  std::vector<Mapping> map_;
  Cycles apb_cycles_ = 0;
};

}  // namespace la::bus
