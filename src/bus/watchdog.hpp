// APB watchdog: the node-side liveness guard behind the Section 4.1 error
// path.  leon_ctrl arms it with a cycle budget when a program starts and
// disarms it on completion; if the budget runs out first — a wedged CPU, an
// infinite loop, a trap into error mode nobody noticed — the watchdog trips
// and fires a callback that drives the controller into its error state.
// Crucially the watchdog lives OUTSIDE the processor: it keeps counting
// (and the control path keeps answering STATUS/RESTART) while the CPU is
// stuck.
#pragma once

#include <functional>
#include <string_view>

#include "bus/apb.hpp"
#include "common/snapio.hpp"
#include "common/types.hpp"

namespace la::bus {

namespace reg {
// Watchdog
inline constexpr u32 kWdogBudget = 0x0;  // cycles per arm (RW)
inline constexpr u32 kWdogCtrl = 0x4;    // write: 1 = arm, 0 = disarm, 2 = kick
inline constexpr u32 kWdogStatus = 0x8;  // bit0 = armed, bit1 = tripped
inline constexpr u32 kWdogTrips = 0xc;   // lifetime trip count (RO)
}  // namespace reg

class Watchdog final : public ApbSlave {
 public:
  using OnTrip = std::function<void()>;

  u32 read(u32 offset) override;
  void write(u32 offset, u32 value) override;
  std::string_view name() const override { return "watchdog"; }

  static constexpr u32 kCtrlDisarm = 0;
  static constexpr u32 kCtrlArm = 1;
  static constexpr u32 kCtrlKick = 2;

  /// Direct (non-bus) control used by leon_ctrl — the watchdog is a
  /// supervisory device, not something the supervised program manages.
  void arm(Cycles budget);
  void disarm();
  /// Rewind the deadline to a full budget without rearming semantics.
  void kick();

  /// Advance simulated time; trips (once) when the armed budget expires.
  void advance(Cycles cycles);

  bool armed() const { return armed_; }
  bool tripped() const { return tripped_; }
  Cycles remaining() const { return remaining_; }
  void set_on_trip(OnTrip cb) { on_trip_ = std::move(cb); }

  struct Stats {
    u64 trips = 0;
    u64 kicks = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Snapshot support: budget/deadline/armed/tripped plus counters.  The
  /// on-trip callback stays with the restoring system.
  void save_state(SnapWriter& w) const {
    w.tag(snap_tag("WDOG"));
    w.u64v(static_cast<u64>(budget_));
    w.u64v(static_cast<u64>(remaining_));
    w.b(armed_);
    w.b(tripped_);
    w.u64v(stats_.trips);
    w.u64v(stats_.kicks);
  }
  bool load_state(SnapReader& r) {
    if (!r.expect(snap_tag("WDOG"))) return false;
    budget_ = static_cast<Cycles>(r.u64v());
    remaining_ = static_cast<Cycles>(r.u64v());
    armed_ = r.b();
    tripped_ = r.b();
    stats_.trips = r.u64v();
    stats_.kicks = r.u64v();
    return r.ok();
  }

 private:
  Cycles budget_ = 0;
  Cycles remaining_ = 0;
  bool armed_ = false;
  bool tripped_ = false;
  OnTrip on_trip_;
  Stats stats_;
};

}  // namespace la::bus
