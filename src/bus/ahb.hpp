// AMBA AHB model (transaction level, handshake-accurate timing).
//
// The LEON core connects its caches and memory controller over AHB (the
// paper's Section 2.4 discusses which corners of the protocol LEON actually
// uses: SINGLE and INCR bursts only, no SPLIT, all data <= 32 bits wide).
// Slaves compute their own wait states per beat; the bus adds the address
// phase and arbitration and keeps per-master statistics so benches can
// show bus-level effects (e.g. burst vs single-beat reads, Section 3.2).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/snapio.hpp"
#include "common/types.hpp"

namespace la::bus {

/// HBURST encodings LEON uses (plus the wrap modes for completeness).
enum class HBurst : u8 {
  kSingle = 0,
  kIncr = 1,
  kWrap4 = 2,
  kIncr4 = 3,
  kWrap8 = 4,
  kIncr8 = 5,
  kWrap16 = 6,
  kIncr16 = 7,
};

/// Bus masters in the Liquid processor system.  The LEON integer unit
/// owns two request streams (instruction fetch and data); the third port
/// exists for diagnostics/DMA-style traffic in tests.
enum class Master : u8 { kCpuInstr = 0, kCpuData = 1, kDma = 2, kCount };

/// One AHB transaction: a burst of `beats` beats of `beat_bytes` each.
/// `data` points at `beats` words; for sub-word beats the value rides in
/// the low bits (big-endian lane placement is handled by the slave).
struct AhbTransfer {
  Addr addr = 0;
  bool write = false;
  unsigned beat_bytes = 4;  // HSIZE: 1, 2, or 4 (LEON never exceeds 32 bits)
  unsigned beats = 1;
  HBurst burst = HBurst::kSingle;
  u32* data = nullptr;
  bool error = false;  // set on ERROR response / unmapped address
};

/// An AHB slave services whole transfers and reports the cycles its data
/// phases consumed (>= beats; wait states add more).
class AhbSlave {
 public:
  virtual ~AhbSlave() = default;
  virtual Cycles transfer(AhbTransfer& t) = 0;
  virtual std::string_view name() const = 0;

  /// Functional (zero-cycle, side-effect-free on timing state) access used
  /// by the cache models for hit data and by diagnostics.  Memory-like
  /// slaves implement it; peripherals (which are never cached) keep the
  /// default refusal.
  virtual bool debug_read(Addr, unsigned /*size*/, u64& /*out*/) {
    return false;
  }
  virtual bool debug_write(Addr, unsigned /*size*/, u64 /*value*/) {
    return false;
  }
};

struct AhbMasterStats {
  u64 transfers = 0;
  u64 beats = 0;
  Cycles cycles = 0;
  u64 errors = 0;
};

struct AhbBusStats {
  AhbMasterStats per_master[static_cast<int>(Master::kCount)];
  u64 unmapped = 0;
  u64 injected_errors = 0;  // transfers failed by inject_error_pulse()

  const AhbMasterStats& of(Master m) const {
    return per_master[static_cast<int>(m)];
  }
  Cycles total_cycles() const {
    Cycles c = 0;
    for (const auto& s : per_master) c += s.cycles;
    return c;
  }
};

/// HBURST for an INCR burst of `beats` word beats (LEON's fill bursts).
inline HBurst burst_for_beats(unsigned beats) {
  switch (beats) {
    case 1: return HBurst::kSingle;
    case 4: return HBurst::kIncr4;
    case 8: return HBurst::kIncr8;
    case 16: return HBurst::kIncr16;
    default: return HBurst::kIncr;
  }
}

/// Single-layer AHB with priority arbitration (fixed: lower Master value
/// wins; with one in-order CPU the arbiter mostly timestamps traffic).
class AhbBus {
 public:
  /// Map [base, base+size) to `slave`.  Ranges must not overlap.
  void attach(Addr base, u64 size, AhbSlave* slave);

  /// Run one transaction.  Returns total bus cycles charged to the master:
  /// 1 address-phase cycle + the slave's data-phase cycles (2 cycles for
  /// the ERROR response on unmapped addresses).
  Cycles transfer(Master m, AhbTransfer& t);

  /// Convenience single-beat helpers.
  Cycles read32(Master m, Addr addr, u32& value);
  Cycles write32(Master m, Addr addr, u32 value);

  /// Bulk line transfer for cache refills and writebacks: one INCR burst
  /// of `line_bytes / 4` word beats starting at line-aligned `addr`,
  /// converted to/from the caches' big-endian byte storage on a stack
  /// buffer.  Timing, statistics, error pulses, and data are exactly what
  /// transfer() produces for the equivalent burst — these exist so the hot
  /// refill path needs neither a heap beat buffer nor caller-side byte
  /// repacking.  `error` reports the transfer's error response.
  Cycles fill_line(Master m, Addr addr, u32 line_bytes, u8* line,
                   bool& error);
  Cycles write_line(Master m, Addr addr, u32 line_bytes, const u8* line,
                    bool& error);

  /// Slave whose range covers `addr`, or nullptr.
  AhbSlave* slave_at(Addr addr) const;

  /// Functional access routed to the owning slave's debug port.
  bool debug_read(Addr addr, unsigned size, u64& out) const;
  bool debug_write(Addr addr, unsigned size, u64 value) const;

  const AhbBusStats& stats() const { return stats_; }
  void reset_stats() { stats_ = AhbBusStats{}; }

  /// Fault injection: the next `n` transfers answer with a two-cycle AHB
  /// ERROR response without reaching any slave (models a glitched HRESP).
  void inject_error_pulse(unsigned n) { error_pulse_ += n; }
  unsigned pending_error_pulses() const { return error_pulse_; }

  /// Snapshot support: pending injected error pulses plus per-master stats.
  /// The address map and the host-only decode cache are rebuilt, not saved.
  void save_state(SnapWriter& w) const {
    w.tag(snap_tag("AHB "));
    w.u32v(error_pulse_);
    for (const auto& s : stats_.per_master) {
      w.u64v(s.transfers);
      w.u64v(s.beats);
      w.u64v(static_cast<u64>(s.cycles));
      w.u64v(s.errors);
    }
    w.u64v(stats_.unmapped);
    w.u64v(stats_.injected_errors);
  }
  bool load_state(SnapReader& r) {
    if (!r.expect(snap_tag("AHB "))) return false;
    error_pulse_ = r.u32v();
    for (auto& s : stats_.per_master) {
      s.transfers = r.u64v();
      s.beats = r.u64v();
      s.cycles = static_cast<Cycles>(r.u64v());
      s.errors = r.u64v();
    }
    stats_.unmapped = r.u64v();
    stats_.injected_errors = r.u64v();
    return r.ok();
  }

 private:
  struct Mapping {
    Addr base;
    u64 size;
    AhbSlave* slave;
  };

  /// Mappings never overlap, so the most recent hit is an exact filter:
  /// if `addr` falls inside `hot_`'s range it IS the decoded slave.  This
  /// turns the per-transfer linear map scan into one range check on the
  /// hot SDRAM/SRAM path.
  const Mapping* lookup(Addr addr) const {
    if (hot_ != nullptr && addr >= hot_->base && addr - hot_->base < hot_->size) {
      return hot_;
    }
    for (const Mapping& m : map_) {
      if (addr >= m.base && addr - m.base < m.size) {
        hot_ = &m;
        return &m;
      }
    }
    return nullptr;
  }

  std::vector<Mapping> map_;
  mutable const Mapping* hot_ = nullptr;  // last-hit decode cache
  unsigned error_pulse_ = 0;
  AhbBusStats stats_;
};

}  // namespace la::bus
