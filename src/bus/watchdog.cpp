#include "bus/watchdog.hpp"

namespace la::bus {

u32 Watchdog::read(u32 offset) {
  switch (offset) {
    case reg::kWdogBudget:
      return static_cast<u32>(budget_);
    case reg::kWdogCtrl:
      return armed_ ? kCtrlArm : kCtrlDisarm;
    case reg::kWdogStatus:
      return (armed_ ? 1u : 0u) | (tripped_ ? 2u : 0u);
    case reg::kWdogTrips:
      return static_cast<u32>(stats_.trips);
    default:
      return 0;
  }
}

void Watchdog::write(u32 offset, u32 value) {
  switch (offset) {
    case reg::kWdogBudget:
      budget_ = value;
      break;
    case reg::kWdogCtrl:
      if (value == kCtrlArm) {
        arm(budget_);
      } else if (value == kCtrlKick) {
        kick();
      } else {
        disarm();
      }
      break;
    default:
      break;
  }
}

void Watchdog::arm(Cycles budget) {
  budget_ = budget;
  remaining_ = budget;
  armed_ = budget > 0;
  tripped_ = false;
}

void Watchdog::disarm() {
  armed_ = false;
  remaining_ = 0;
}

void Watchdog::kick() {
  if (!armed_) return;
  remaining_ = budget_;
  ++stats_.kicks;
}

void Watchdog::advance(Cycles cycles) {
  if (!armed_) return;
  if (cycles < remaining_) {
    remaining_ -= cycles;
    return;
  }
  remaining_ = 0;
  armed_ = false;
  tripped_ = true;
  ++stats_.trips;
  if (on_trip_) on_trip_();
}

}  // namespace la::bus
