#include "bus/apb.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

namespace la::bus {

namespace {
// APB transfers take two bus cycles: SETUP and ENABLE.
constexpr Cycles kApbAccess = 2;
}  // namespace

void ApbBridge::attach(u32 offset, u32 size, ApbSlave* dev) {
  assert(dev != nullptr && size > 0);
  for (const Mapping& m : map_) {
    const bool overlap = offset < m.offset + m.size &&
                         m.offset < offset + size;
    if (overlap) {
      throw std::logic_error("APB mapping overlap with " +
                             std::string(m.dev->name()));
    }
  }
  map_.push_back({offset, size, dev});
}

ApbSlave* ApbBridge::device_at(u32 offset) const {
  for (const Mapping& m : map_) {
    if (offset >= m.offset && offset - m.offset < m.size) return m.dev;
  }
  return nullptr;
}

Cycles ApbBridge::transfer(AhbTransfer& t) {
  // Let the system catch peripherals up to "now" before the access lands
  // (no-op outside batched runs; see set_access_hook).
  if (hook_armed_) access_hook_();
  // APB supports word accesses only; the bridge also rejects bursts, which
  // LEON never issues to peripheral space.
  Cycles total = 0;
  for (unsigned b = 0; b < t.beats; ++b) {
    const Addr abs = t.addr + b * t.beat_bytes;
    const u32 offset = abs - base_;
    ApbSlave* dev = device_at(offset);
    if (dev == nullptr || t.beat_bytes != 4) {
      t.error = true;
      return total + 2;  // ERROR response
    }
    const u32 local = offset - [&] {
      for (const Mapping& m : map_) {
        if (offset >= m.offset && offset - m.offset < m.size) return m.offset;
      }
      return 0u;
    }();
    if (t.write) {
      dev->write(local, t.data[b]);
    } else {
      t.data[b] = dev->read(local);
    }
    apb_cycles_ += kApbAccess;
    total += kApbAccess;
  }
  return total;
}

}  // namespace la::bus
