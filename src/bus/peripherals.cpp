#include "bus/peripherals.hpp"

namespace la::bus {

// ---- UART -----------------------------------------------------------------

u32 Uart::read(u32 offset) {
  switch (offset) {
    case reg::kUartData: {
      if (rx_.empty()) return 0;
      const u8 c = rx_.front();
      rx_.pop_front();
      return c;
    }
    case reg::kUartStatus:
      return 1u | (rx_.empty() ? 0u : 2u);  // TX ready | RX available
    case reg::kUartCtrl:
      return ctrl_;
    default:
      return 0;
  }
}

void Uart::write(u32 offset, u32 value) {
  switch (offset) {
    case reg::kUartData:
      tx_.push_back(static_cast<char>(value & 0xff));
      break;
    case reg::kUartCtrl:
      ctrl_ = value;
      break;
    default:
      break;
  }
}

// ---- Timer ------------------------------------------------------------------

u32 LeonTimer::read(u32 offset) {
  switch (offset) {
    case reg::kTimerCounter: return counter_;
    case reg::kTimerReload: return reload_;
    case reg::kTimerCtrl: return ctrl_;
    default: return 0;
  }
}

void LeonTimer::write(u32 offset, u32 value) {
  switch (offset) {
    case reg::kTimerCounter: counter_ = value; break;
    case reg::kTimerReload: reload_ = value; break;
    case reg::kTimerCtrl: ctrl_ = value; break;
    default: break;
  }
}

void LeonTimer::advance(Cycles cycles) {
  if (!enabled()) return;
  while (cycles > 0) {
    if (counter_ >= cycles) {
      counter_ -= static_cast<u32>(cycles);
      return;
    }
    cycles -= counter_ + 1;  // count down through zero
    ++underflows_;
    if ((ctrl_ & kCtrlIrqEnable) && raise_) raise_(irq_level_);
    if (ctrl_ & kCtrlAutoReload) {
      counter_ = reload_;
    } else {
      counter_ = 0;
      ctrl_ &= ~kCtrlEnable;
      return;
    }
  }
}

// ---- IRQ controller ---------------------------------------------------------

u32 IrqController::read(u32 offset) {
  switch (offset) {
    case reg::kIrqPending: return pending_;
    case reg::kIrqMask: return mask_;
    default: return 0;
  }
}

void IrqController::write(u32 offset, u32 value) {
  switch (offset) {
    case reg::kIrqMask:
      mask_ = value & 0xfffe;
      break;
    case reg::kIrqForce:
      pending_ |= value & 0xfffe;
      break;
    case reg::kIrqClear:
      pending_ &= ~value;
      break;
    default:
      break;
  }
  update();
}

void IrqController::raise(u8 level) {
  if (level == 0 || level > 15) return;
  pending_ |= 1u << level;
  update();
}

void IrqController::clear(u8 level) {
  pending_ &= ~(1u << level);
  update();
}

u8 IrqController::current_level() const {
  const u32 active = pending_ & mask_;
  for (int l = 15; l >= 1; --l) {
    if (active & (1u << l)) return static_cast<u8>(l);
  }
  return 0;
}

void IrqController::update() {
  if (set_) set_(current_level());
}

// ---- GPIO / LED --------------------------------------------------------------

u32 GpioPort::read(u32 offset) {
  switch (offset) {
    case reg::kGpioOut: return out_;
    case reg::kGpioIn: return in_;
    default: return 0;
  }
}

void GpioPort::write(u32 offset, u32 value) {
  if (offset == reg::kGpioOut) {
    out_ = value;
    history_.push_back(value);
  }
}

// ---- Cycle counter -------------------------------------------------------------

Cycles CycleCounter::measured() const {
  return running_ ? accumulated_ + (now_() - started_at_) : accumulated_;
}

u32 CycleCounter::read(u32 offset) {
  switch (offset) {
    case reg::kCycCtrl: return running_ ? 1u : 0u;
    case reg::kCycCount: return static_cast<u32>(measured());
    default: return 0;
  }
}

void CycleCounter::write(u32 offset, u32 value) {
  if (offset != reg::kCycCtrl) return;
  switch (value) {
    case kStart:
      if (!running_) {
        running_ = true;
        started_at_ = now_();
      }
      break;
    case kStop:
      if (running_) {
        accumulated_ += now_() - started_at_;
        running_ = false;
      }
      break;
    case kReset:
      running_ = false;
      accumulated_ = 0;
      break;
    default:
      break;
  }
}

}  // namespace la::bus
