// LEON-style APB peripherals: UART, timer, interrupt controller, LED port,
// and the cycle-counter "hardware state machine" the paper uses to time
// its experiments (Section 4: "A hardware state machine counts and returns
// the number of clock cycles to run this program").
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <string_view>

#include "bus/apb.hpp"
#include "common/snapio.hpp"
#include "common/types.hpp"

namespace la::bus {

/// Register offsets for each device (word registers, byte offsets).
namespace reg {
// UART
inline constexpr u32 kUartData = 0x0;
inline constexpr u32 kUartStatus = 0x4;
inline constexpr u32 kUartCtrl = 0x8;
// Timer
inline constexpr u32 kTimerCounter = 0x0;
inline constexpr u32 kTimerReload = 0x4;
inline constexpr u32 kTimerCtrl = 0x8;
// IRQ controller
inline constexpr u32 kIrqPending = 0x0;
inline constexpr u32 kIrqMask = 0x4;
inline constexpr u32 kIrqForce = 0x8;
inline constexpr u32 kIrqClear = 0xc;
// GPIO / LED
inline constexpr u32 kGpioOut = 0x0;
inline constexpr u32 kGpioIn = 0x4;
// Cycle counter
inline constexpr u32 kCycCtrl = 0x0;
inline constexpr u32 kCycCount = 0x4;
}  // namespace reg

/// Simple UART: transmitted bytes append to a host-visible log; the host
/// can queue receive bytes.  Status bit0 = TX ready (always), bit1 = RX
/// data available.
class Uart final : public ApbSlave {
 public:
  u32 read(u32 offset) override;
  void write(u32 offset, u32 value) override;
  std::string_view name() const override { return "uart"; }

  const std::string& tx_log() const { return tx_; }
  void host_send(std::string_view s) {
    for (char c : s) rx_.push_back(static_cast<u8>(c));
  }

  void save_state(SnapWriter& w) const {
    w.tag(snap_tag("UART"));
    w.str(tx_);
    w.u64v(rx_.size());
    for (u8 c : rx_) w.u8v(c);
    w.u32v(ctrl_);
  }
  bool load_state(SnapReader& r) {
    if (!r.expect(snap_tag("UART"))) return false;
    tx_ = r.str();
    rx_.clear();
    for (u64 i = 0, n = r.u64v(); i < n && r.ok(); ++i) rx_.push_back(r.u8v());
    ctrl_ = r.u32v();
    return r.ok();
  }

 private:
  std::string tx_;
  std::deque<u8> rx_;
  u32 ctrl_ = 0;
};

/// Down-counting timer with auto-reload; raises an interrupt level when it
/// underflows.  `advance()` is called by the system as simulated time
/// passes.
class LeonTimer final : public ApbSlave {
 public:
  using IrqRaise = std::function<void(u8 level)>;

  explicit LeonTimer(u8 irq_level = 8, IrqRaise raise = nullptr)
      : irq_level_(irq_level), raise_(std::move(raise)) {}

  u32 read(u32 offset) override;
  void write(u32 offset, u32 value) override;
  std::string_view name() const override { return "timer"; }

  /// Advance simulated time by `cycles` bus clocks.
  void advance(Cycles cycles);

  bool enabled() const { return (ctrl_ & 1u) != 0; }
  u64 underflows() const { return underflows_; }

  /// Next-event query for batched run loops: when enabled, sets `delta` to
  /// the exact advance() amount at which the next underflow side effect
  /// (IRQ raise / reload / disable) fires — the counter counts down
  /// through zero, so that is counter + 1 — and returns true.  Disabled
  /// timers have no upcoming event.
  bool next_event(Cycles& delta) const {
    if (!enabled()) return false;
    delta = Cycles{counter_} + 1;
    return true;
  }

  static constexpr u32 kCtrlEnable = 1u << 0;
  static constexpr u32 kCtrlAutoReload = 1u << 1;
  static constexpr u32 kCtrlIrqEnable = 1u << 2;

  void save_state(SnapWriter& w) const {
    w.tag(snap_tag("TIMR"));
    w.u32v(counter_);
    w.u32v(reload_);
    w.u32v(ctrl_);
    w.u64v(underflows_);
  }
  bool load_state(SnapReader& r) {
    if (!r.expect(snap_tag("TIMR"))) return false;
    counter_ = r.u32v();
    reload_ = r.u32v();
    ctrl_ = r.u32v();
    underflows_ = r.u64v();
    return r.ok();
  }

 private:
  u32 counter_ = 0;
  u32 reload_ = 0;
  u32 ctrl_ = 0;
  u8 irq_level_;
  IrqRaise raise_;
  u64 underflows_ = 0;
};

/// Interrupt controller: 15 level lines (1..15).  Pending & mask feed the
/// CPU's irq input via a callback so the integer unit sees the highest
/// unmasked pending level.
class IrqController final : public ApbSlave {
 public:
  using CpuIrqSet = std::function<void(u8 level)>;

  explicit IrqController(CpuIrqSet set = nullptr) : set_(std::move(set)) {}

  u32 read(u32 offset) override;
  void write(u32 offset, u32 value) override;
  std::string_view name() const override { return "irqctrl"; }

  /// Hardware line assertion (from timer, UART, network logic).
  void raise(u8 level);
  /// Acknowledge from software usually goes through kIrqClear writes.
  void clear(u8 level);

  u32 pending() const { return pending_; }
  u8 current_level() const;

  /// Snapshot support.  The caller re-runs update() semantics by restoring
  /// the CPU's irq level separately (it lives in the pipeline snapshot).
  void save_state(SnapWriter& w) const {
    w.tag(snap_tag("IRQC"));
    w.u32v(pending_);
    w.u32v(mask_);
  }
  bool load_state(SnapReader& r) {
    if (!r.expect(snap_tag("IRQC"))) return false;
    pending_ = r.u32v();
    mask_ = r.u32v();
    return r.ok();
  }

 private:
  void update();

  u32 pending_ = 0;  // bit n = level n pending (bits 1..15)
  u32 mask_ = 0xfffe;  // all levels enabled by default
  CpuIrqSet set_;
};

/// Output port driving the FPX board LEDs (the paper's Figure 3 shows an
/// LED module on the APB).  Keeps a change history for tests/examples.
class GpioPort final : public ApbSlave {
 public:
  u32 read(u32 offset) override;
  void write(u32 offset, u32 value) override;
  std::string_view name() const override { return "gpio-led"; }

  u32 out() const { return out_; }
  void set_in(u32 v) { in_ = v; }
  const std::vector<u32>& history() const { return history_; }

  void save_state(SnapWriter& w) const {
    w.tag(snap_tag("GPIO"));
    w.u32v(out_);
    w.u32v(in_);
    w.vec_u32(history_);
  }
  bool load_state(SnapReader& r) {
    if (!r.expect(snap_tag("GPIO"))) return false;
    out_ = r.u32v();
    in_ = r.u32v();
    history_ = r.vec_u32();
    return r.ok();
  }

 private:
  u32 out_ = 0;
  u32 in_ = 0;
  std::vector<u32> history_;
};

/// The measurement device: counts bus clock cycles between start and stop.
/// Reads the global cycle counter through a callback so it never drifts
/// from the simulation clock.
class CycleCounter final : public ApbSlave {
 public:
  using Now = std::function<Cycles()>;

  explicit CycleCounter(Now now) : now_(std::move(now)) {}

  u32 read(u32 offset) override;
  void write(u32 offset, u32 value) override;
  std::string_view name() const override { return "cyclecounter"; }

  static constexpr u32 kStart = 1;
  static constexpr u32 kStop = 0;
  static constexpr u32 kReset = 2;

  /// Measured cycles (valid after a stop; live value while running).
  Cycles measured() const;
  bool running() const { return running_; }

  void save_state(SnapWriter& w) const {
    w.tag(snap_tag("CYCC"));
    w.b(running_);
    w.u64v(static_cast<u64>(started_at_));
    w.u64v(static_cast<u64>(accumulated_));
  }
  bool load_state(SnapReader& r) {
    if (!r.expect(snap_tag("CYCC"))) return false;
    running_ = r.b();
    started_at_ = static_cast<Cycles>(r.u64v());
    accumulated_ = static_cast<Cycles>(r.u64v());
    return r.ok();
  }

 private:
  Now now_;
  bool running_ = false;
  Cycles started_at_ = 0;
  Cycles accumulated_ = 0;
};

}  // namespace la::bus
