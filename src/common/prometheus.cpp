#include "common/prometheus.hpp"

#include <cmath>
#include <cstdio>

namespace la::metrics {

namespace {

void append_prom_number(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "NaN";
    return;
  }
  if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

void append_label_value(std::string& out, const std::string& v) {
  out += '"';
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
  out += '"';
}

/// Render `{a="1",b="2"}` with `extra` appended last (for `le`).  Empty
/// label set and no extra renders nothing.
void append_labels(std::string& out, const PromLabels& labels,
                   const std::string& extra_name = "",
                   const std::string& extra_value = "") {
  if (labels.empty() && extra_name.empty()) return;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += prom_name(k);
    out += '=';
    append_label_value(out, v);
  }
  if (!extra_name.empty()) {
    if (!first) out += ',';
    out += extra_name;
    out += '=';
    append_label_value(out, extra_value);
  }
  out += '}';
}

void append_sample(std::string& out, const std::string& name,
                   const PromLabels& labels, double v) {
  out += name;
  append_labels(out, labels);
  out += ' ';
  append_prom_number(out, v);
  out += '\n';
}

void append_snapshot(std::string& out, const Snapshot& snap,
                     const std::string& prefix, const PromLabels& labels) {
  for (const auto& [name, value] : snap.values) {
    append_sample(out, prefix + prom_name(name), labels, value);
  }
  for (const auto& [name, h] : snap.histograms) {
    if (h.count == 0) continue;  // same rule as Snapshot::to_json
    const std::string base = prefix + prom_name(name);
    u64 cumulative = 0;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      cumulative += h.buckets[i];
      const double limit = Histogram::bucket_limit(i);
      std::string le;
      append_prom_number(le, limit);
      out += base;
      out += "_bucket";
      append_labels(out, labels, "le", le);
      out += ' ';
      append_prom_number(out, static_cast<double>(cumulative));
      out += '\n';
    }
    out += base;
    out += "_sum";
    append_labels(out, labels);
    out += ' ';
    append_prom_number(out, h.mean * static_cast<double>(h.count));
    out += '\n';
    out += base;
    out += "_count";
    append_labels(out, labels);
    out += ' ';
    append_prom_number(out, static_cast<double>(h.count));
    out += '\n';
  }
}

}  // namespace

std::string prom_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

std::string to_prometheus(const Snapshot& snap, const std::string& prefix,
                          const PromLabels& labels) {
  std::string out;
  append_snapshot(out, snap, prefix, labels);
  return out;
}

std::string to_prometheus(const std::vector<LabelledSnapshot>& snaps,
                          const std::string& prefix) {
  std::string out;
  for (const LabelledSnapshot& ls : snaps) {
    if (ls.snap == nullptr) continue;
    append_snapshot(out, *ls.snap, prefix, ls.labels);
  }
  return out;
}

}  // namespace la::metrics
