// Deterministic pseudo-random number generation.
//
// Every stochastic element of the simulation (random cache replacement,
// channel loss, fuzzing in the property tests) draws from this generator so
// that a run is fully reproducible from its seed.
#pragma once

#include <cassert>

#include "common/types.hpp"

namespace la {

/// splitmix64 — used to expand a user seed into xoshiro state.
constexpr u64 splitmix64(u64& state) {
  state += 0x9e3779b97f4a7c15ull;
  u64 z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(u64 seed = 0x11901dull) {
    u64 sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  u64 next_u64() {
    const u64 result = rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  u32 next_u32() { return static_cast<u32>(next_u64() >> 32); }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  u32 below(u32 bound) {
    assert(bound != 0);
    u64 m = u64{next_u32()} * bound;
    auto lo = static_cast<u32>(m);
    if (lo < bound) {
      const u32 threshold = (0u - bound) % bound;
      while (lo < threshold) {
        m = u64{next_u32()} * bound;
        lo = static_cast<u32>(m);
      }
    }
    return static_cast<u32>(m >> 32);
  }

  /// Uniform in [lo, hi] inclusive.
  u32 between(u32 lo, u32 hi) {
    assert(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  /// True with probability p (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return to_unit(next_u64()) < p;
  }

  /// Uniform double in [0, 1).
  double unit() { return to_unit(next_u64()); }

  /// Raw generator state, for snapshot/restore.  Restoring the four words
  /// resumes the exact sequence a capture interrupted.
  void get_state(u64 out[4]) const {
    for (int i = 0; i < 4; ++i) out[i] = s_[i];
  }
  void set_state(const u64 in[4]) {
    for (int i = 0; i < 4; ++i) s_[i] = in[i];
  }

 private:
  static constexpr u64 rotl(u64 x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  static double to_unit(u64 v) {
    return static_cast<double>(v >> 11) * 0x1.0p-53;
  }

  u64 s_[4]{};
};

}  // namespace la
