// Big-endian byte buffer.  SPARC V8 and network byte order are both
// big-endian, so one buffer type serves memory images and packets alike.
#pragma once

#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace la {

using Bytes = std::vector<u8>;

/// Read/write big-endian scalars out of a raw byte span.
/// All accessors bounds-check and throw std::out_of_range on overrun —
/// packets come from a (simulated) network, so trust nothing.
class ByteReader {
 public:
  explicit ByteReader(std::span<const u8> data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool empty() const { return remaining() == 0; }

  u8 read_u8() { return data_[take(1)]; }

  u16 read_u16() {
    const std::size_t p = take(2);
    return static_cast<u16>((u16{data_[p]} << 8) | data_[p + 1]);
  }

  u32 read_u32() {
    const std::size_t p = take(4);
    return (u32{data_[p]} << 24) | (u32{data_[p + 1]} << 16) |
           (u32{data_[p + 2]} << 8) | u32{data_[p + 3]};
  }

  Bytes read_bytes(std::size_t n) {
    const std::size_t p = take(n);
    return Bytes(data_.begin() + static_cast<std::ptrdiff_t>(p),
                 data_.begin() + static_cast<std::ptrdiff_t>(p + n));
  }

  void skip(std::size_t n) { take(n); }

 private:
  std::size_t take(std::size_t n) {
    if (remaining() < n) {
      throw std::out_of_range("ByteReader: read past end (want " +
                              std::to_string(n) + ", have " +
                              std::to_string(remaining()) + ")");
    }
    const std::size_t p = pos_;
    pos_ += n;
    return p;
  }

  std::span<const u8> data_;
  std::size_t pos_ = 0;
};

/// Append-only big-endian serializer.
class ByteWriter {
 public:
  const Bytes& bytes() const { return buf_; }
  Bytes take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

  void write_u8(u8 v) { buf_.push_back(v); }

  void write_u16(u16 v) {
    buf_.push_back(static_cast<u8>(v >> 8));
    buf_.push_back(static_cast<u8>(v));
  }

  void write_u32(u32 v) {
    buf_.push_back(static_cast<u8>(v >> 24));
    buf_.push_back(static_cast<u8>(v >> 16));
    buf_.push_back(static_cast<u8>(v >> 8));
    buf_.push_back(static_cast<u8>(v));
  }

  void write_bytes(std::span<const u8> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Patch a previously written big-endian u16 in place (checksums).
  void patch_u16(std::size_t offset, u16 v) {
    buf_.at(offset) = static_cast<u8>(v >> 8);
    buf_.at(offset + 1) = static_cast<u8>(v);
  }

 private:
  Bytes buf_;
};

}  // namespace la
