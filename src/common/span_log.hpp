// Fleet-wide causal job tracing.
//
// The paper observes one node: a hardware cycle counter (§5) and traces
// streamed to the Trace Analyzer (Fig 1).  A farm of nodes needs the same
// story *per job across machines*: a TraceContext (trace_id / span_id /
// parent) is minted where a job enters the system (FarmScheduler::enqueue,
// or LiquidClient::run_program for a lone node), carried through the
// scheduler, over the control network (the SET_TRACE command), and into
// every phase the job passes — queue wait, synthesis, FPGA reprogramming,
// LOAD, the measured run, readback.  Each phase lands here as a Span.
//
// The log merges every node into one timeline: host microseconds since
// the log's epoch (nodes run concurrently on worker threads, so the node
// cycle counters are not comparable; the host clock is).  Exports:
//   * Chrome trace_event JSON — one process lane per node (stable pid),
//     one thread lane per worker (tid), named with metadata records, so
//     an 8-node run opens in ui.perfetto.dev with distinct lanes;
//   * JSONL — one span object per line, the machine-readable stream;
//   * per-phase duration histograms folded into a MetricsRegistry
//     (farm.phase.*), which is how p50/p95/p99 reach the fleet report.
//
// Threading: add()/mint() are safe from any thread (one mutex, append
// only); exports copy the spans out under the lock.
#pragma once

#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/types.hpp"

namespace la::trace {

/// Identity of one causal trace: every span of one job shares `trace_id`;
/// `span_id` names this span; `parent_span_id` links the tree (0 = root).
struct TraceContext {
  u64 trace_id = 0;
  u64 span_id = 0;
  u64 parent_span_id = 0;

  bool valid() const { return trace_id != 0; }
};

/// SplitMix64 finalizer: turns a sequential counter into a well-spread
/// 64-bit id (never 0, so a zero id always means "no trace").
u64 mix64(u64 x);

/// One completed phase of one traced job.
struct Span {
  u64 trace_id = 0;
  u64 span_id = 0;
  u64 parent_span_id = 0;
  std::string name;     // phase: queue_wait, synthesis, load, run, ...
  std::string note;     // free-form detail (config key, error text)
  u32 pid = 1;          // process lane: node index + 1 (0 = scheduler)
  u32 tid = 1;          // thread lane within the process
  double start_us = 0;  // host microseconds since the log's epoch
  double dur_us = 0;
  u64 cycle = 0;        // node cycle at span end, when known
};

class SpanLog {
 public:
  SpanLog();

  /// Mint a fresh root context (unique trace_id, span_id == trace root).
  TraceContext mint();
  /// Mint a child context under `parent` (same trace, new span id).
  TraceContext child(const TraceContext& parent);

  /// Host microseconds since this log was created.
  double now_us() const;

  void add(Span s);

  /// Name a process/thread lane for the Chrome export (metadata records).
  void set_process_name(u32 pid, std::string name);
  void set_thread_name(u32 pid, u32 tid, std::string name);

  std::vector<Span> spans() const;
  std::size_t size() const;

  /// Chrome trace_event JSON: each span a complete ('X') event on its
  /// own pid/tid lane, plus process_name / thread_name metadata records.
  std::string to_chrome_json() const;
  /// One JSON object per line, in append order.
  std::string to_jsonl() const;
  bool write_chrome_json(const std::string& path) const;
  bool write_jsonl(const std::string& path) const;

  /// Fold every span's duration into `reg` as a histogram named
  /// `<prefix><phase>_us`, plus nearest-rank p50/p95/p99 gauges
  /// (`<prefix><phase>.p50_us`, ...).  The caller owns quiescence.
  void observe_phase_latencies(metrics::MetricsRegistry& reg,
                               const std::string& prefix) const;

 private:
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::map<u32, std::string> process_names_;
  std::map<std::pair<u32, u32>, std::string> thread_names_;
  std::chrono::steady_clock::time_point epoch_;
  u64 next_id_ = 1;  // guarded by mu_
};

/// Per-job span emission handle: one job's identity plus where its spans
/// go.  Passed (nullable) down the run path — a null log makes every
/// phase() a no-op so call sites stay branch-light.  Single-threaded use
/// by whoever runs the job.
struct JobTrace {
  SpanLog* log = nullptr;
  TraceContext ctx;  // the job's root context
  u32 pid = 1;
  u32 tid = 1;

  bool active() const { return log != nullptr && ctx.valid(); }
  /// Emit one completed child phase of the job's root span.
  void phase(const std::string& name, double start_us, double end_us,
             u64 cycle = 0, const std::string& note = "") const;
  double now_us() const { return log ? log->now_us() : 0.0; }
};

}  // namespace la::trace
