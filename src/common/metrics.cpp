#include "common/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace la::metrics {

// ---- Histogram -----------------------------------------------------------

void Histogram::observe(double x) {
  stats_.add(x);
  std::size_t idx = 0;
  if (x >= 1.0) {
    const double l = std::log2(x);
    idx = 1 + static_cast<std::size_t>(l);
    if (idx >= kBuckets) idx = kBuckets - 1;
  }
  ++buckets_[idx];
}

void Histogram::merge(const Histogram& o) {
  stats_.merge(o.stats_);
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
}

double Histogram::bucket_limit(std::size_t i) {
  if (i == 0) return 1.0;
  if (i >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, static_cast<int>(i));
}

// ---- JSON helpers --------------------------------------------------------

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_json_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) <= 9007199254740992.0) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

// ---- Snapshot ------------------------------------------------------------

double Snapshot::value_or(const std::string& name, double fallback) const {
  const auto it = values.find(name);
  return it == values.end() ? fallback : it->second;
}

u64 Snapshot::value_u64(const std::string& name) const {
  const double v = value_or(name, 0.0);
  return v <= 0.0 ? 0 : static_cast<u64>(v + 0.5);
}

Snapshot Snapshot::diff_since(const Snapshot& older) const {
  Snapshot d;
  d.cycle = cycle - older.cycle;
  for (const auto& [name, v] : values) {
    d.values[name] = v - older.value_or(name, 0.0);
  }
  for (const auto& [name, h] : histograms) {
    HistogramSnapshot hd;
    const auto it = older.histograms.find(name);
    if (it == older.histograms.end()) {
      hd = h;
    } else {
      const HistogramSnapshot& o = it->second;
      hd.count = h.count - o.count;
      for (std::size_t i = 0; i < h.buckets.size(); ++i) {
        hd.buckets[i] = h.buckets[i] - o.buckets[i];
      }
      // Moments of the delta window: the mean follows from the sums; the
      // spread and extrema of a window are not recoverable from endpoint
      // summaries, so they read as unknown.
      const double dsum =
          h.mean * static_cast<double>(h.count) -
          o.mean * static_cast<double>(o.count);
      const double nan = std::numeric_limits<double>::quiet_NaN();
      hd.mean = hd.count ? dsum / static_cast<double>(hd.count) : 0.0;
      hd.stddev = nan;
      hd.min = nan;
      hd.max = nan;
    }
    d.histograms[name] = hd;
  }
  return d;
}

namespace {

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

void append_histogram(std::string& out, const HistogramSnapshot& h,
                      int indent, int depth) {
  out += '{';
  newline_indent(out, indent, depth + 1);
  out += "\"count\":";
  append_json_number(out, static_cast<double>(h.count));
  out += ',';
  newline_indent(out, indent, depth + 1);
  out += "\"mean\":";
  append_json_number(out, h.mean);
  out += ',';
  newline_indent(out, indent, depth + 1);
  out += "\"stddev\":";
  append_json_number(out, h.stddev);
  out += ',';
  newline_indent(out, indent, depth + 1);
  out += "\"min\":";
  append_json_number(out, h.min);
  out += ',';
  newline_indent(out, indent, depth + 1);
  out += "\"max\":";
  append_json_number(out, h.max);
  out += ',';
  newline_indent(out, indent, depth + 1);
  out += "\"buckets\":[";
  // Trailing zero buckets carry no information; trim them.
  std::size_t last = h.buckets.size();
  while (last > 0 && h.buckets[last - 1] == 0) --last;
  for (std::size_t i = 0; i < last; ++i) {
    if (i) out += ',';
    append_json_number(out, static_cast<double>(h.buckets[i]));
  }
  out += ']';
  newline_indent(out, indent, depth);
  out += '}';
}

}  // namespace

std::string Snapshot::to_json(int indent) const {
  std::string out;
  out += '{';
  newline_indent(out, indent, 1);
  out += "\"cycle\":";
  append_json_number(out, static_cast<double>(cycle));
  out += ',';
  newline_indent(out, indent, 1);
  out += "\"metrics\":{";
  bool first = true;
  for (const auto& [name, v] : values) {
    if (!first) out += ',';
    first = false;
    newline_indent(out, indent, 2);
    append_json_string(out, name);
    out += ':';
    append_json_number(out, v);
  }
  newline_indent(out, indent, 1);
  out += '}';

  bool any_hist = false;
  for (const auto& [name, h] : histograms) {
    if (h.count != 0) any_hist = true;
  }
  if (any_hist) {
    out += ',';
    newline_indent(out, indent, 1);
    out += "\"histograms\":{";
    first = true;
    for (const auto& [name, h] : histograms) {
      if (h.count == 0) continue;  // empty stats are omitted, not nulled
      if (!first) out += ',';
      first = false;
      newline_indent(out, indent, 2);
      append_json_string(out, name);
      out += ':';
      append_histogram(out, h, indent, 2);
    }
    newline_indent(out, indent, 1);
    out += '}';
  }
  newline_indent(out, indent, 0);
  out += '}';
  if (indent > 0) out += '\n';
  return out;
}

// ---- MetricsRegistry -----------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& name) {
  Entry& e = entries_[name];
  if (e.counter) return *e.counter;
  if (e.gauge || e.histogram || e.fn) {
    throw std::logic_error("metric '" + name +
                           "' already registered with a different kind");
  }
  e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  Entry& e = entries_[name];
  if (e.gauge) return *e.gauge;
  if (e.counter || e.histogram || e.fn) {
    throw std::logic_error("metric '" + name +
                           "' already registered with a different kind");
  }
  e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  Entry& e = entries_[name];
  if (e.histogram) return *e.histogram;
  if (e.counter || e.gauge || e.fn) {
    throw std::logic_error("metric '" + name +
                           "' already registered with a different kind");
  }
  e.histogram = std::make_unique<Histogram>();
  return *e.histogram;
}

void MetricsRegistry::register_fn(const std::string& name, SampleFn fn) {
  Entry& e = entries_[name];
  if (e.counter || e.gauge || e.histogram) {
    throw std::logic_error("metric '" + name +
                           "' already registered with a different kind");
  }
  e.fn = std::move(fn);
}

bool MetricsRegistry::unregister(const std::string& name) {
  return entries_.erase(name) != 0;
}

std::size_t MetricsRegistry::unregister_prefix(const std::string& prefix) {
  std::size_t n = 0;
  for (auto it = entries_.lower_bound(prefix);
       it != entries_.end() && it->first.compare(0, prefix.size(), prefix) == 0;) {
    it = entries_.erase(it);
    ++n;
  }
  return n;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, e] : other.entries_) {
    if (e.counter) {
      counter(name).inc(e.counter->value());
    } else if (e.gauge) {
      gauge(name).add(e.gauge->value());
    } else if (e.fn) {
      gauge(name).add(e.fn());
    } else if (e.histogram) {
      histogram(name).merge(*e.histogram);
    }
  }
}

Snapshot MetricsRegistry::snapshot(u64 cycle) const {
  Snapshot s;
  s.cycle = cycle;
  for (const auto& [name, e] : entries_) {
    if (e.counter) {
      s.values[name] = static_cast<double>(e.counter->value());
    } else if (e.gauge) {
      s.values[name] = e.gauge->value();
    } else if (e.fn) {
      s.values[name] = e.fn();
    } else if (e.histogram) {
      HistogramSnapshot h;
      h.count = e.histogram->count();
      h.mean = e.histogram->stats().mean();
      h.stddev = e.histogram->stats().stddev();
      h.min = e.histogram->stats().min();
      h.max = e.histogram->stats().max();
      h.buckets = e.histogram->buckets();
      s.histograms[name] = h;
    }
  }
  return s;
}

}  // namespace la::metrics
