// Prometheus text exposition over metrics snapshots.
//
// The registry's JSON form is for files and the control wire; a scraping
// stack wants the text exposition format instead.  This writer renders a
// frozen Snapshot — names mangled to Prometheus rules (dots and dashes
// become underscores), scalars as untyped samples, histograms as the
// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.  Every
// sample can carry a fixed label set (e.g. node="3") so per-node snapshots
// from one farm land in one exposition without name collisions.
//
// No HTTP server lives here — tools write the exposition to a file (the
// node_exporter textfile-collector convention) or stdout.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/metrics.hpp"

namespace la::metrics {

/// `{name, value}` pairs rendered into every sample: {"node","3"} becomes
/// `{node="3"}`.  Values are escaped per the exposition format.
using PromLabels = std::vector<std::pair<std::string, std::string>>;

/// Mangle a dotted metric path into a legal Prometheus metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, everything else mapped to '_', with a
/// leading-digit guard.  `farm.jobs.ok` -> `farm_jobs_ok`.
std::string prom_name(const std::string& name);

/// Render one snapshot.  `prefix` is prepended to every mangled name
/// (conventionally ending in '_', e.g. "liquid_").
std::string to_prometheus(const Snapshot& snap, const std::string& prefix = "",
                          const PromLabels& labels = {});

/// Render several labelled snapshots into one exposition (one farm: the
/// fleet snapshot plus each node's, distinguished by labels).
struct LabelledSnapshot {
  const Snapshot* snap = nullptr;
  PromLabels labels;
};
std::string to_prometheus(const std::vector<LabelledSnapshot>& snaps,
                          const std::string& prefix = "");

}  // namespace la::metrics
