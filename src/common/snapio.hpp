// Binary snapshot serialization helpers.
//
// SnapWriter/SnapReader implement a tiny little-endian tagged stream used by
// sim::SystemSnapshot.  Every component that participates in snapshotting
// implements
//
//   void save_state(SnapWriter& w) const;
//   bool load_state(SnapReader& r);
//
// and begins its section with a fourcc tag so a mismatched stream fails fast
// with a clear position instead of silently misaligning.  The reader is
// sticky-failing: any short read or tag mismatch latches ok() == false and
// all further reads return zeroes, so load paths can check once at the end.
#pragma once

#include <bit>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace la {

/// Fourcc section tag, e.g. snap_tag("CPU ").
constexpr u32 snap_tag(const char (&s)[5]) {
  return (u32{static_cast<u8>(s[0])} << 24) | (u32{static_cast<u8>(s[1])} << 16) |
         (u32{static_cast<u8>(s[2])} << 8) | u32{static_cast<u8>(s[3])};
}

class SnapWriter {
 public:
  void u8v(u8 v) { out_.push_back(v); }
  void b(bool v) { u8v(v ? 1 : 0); }
  void u16v(u16 v) {
    u8v(static_cast<u8>(v));
    u8v(static_cast<u8>(v >> 8));
  }
  void u32v(u32 v) {
    u16v(static_cast<u16>(v));
    u16v(static_cast<u16>(v >> 16));
  }
  void u64v(u64 v) {
    u32v(static_cast<u32>(v));
    u32v(static_cast<u32>(v >> 32));
  }
  void i64v(i64 v) { u64v(static_cast<u64>(v)); }
  void f64v(double v) { u64v(std::bit_cast<u64>(v)); }
  void tag(u32 t) { u32v(t); }

  void bytes(const Bytes& v) {
    u64v(v.size());
    out_.insert(out_.end(), v.begin(), v.end());
  }
  void str(const std::string& s) {
    u64v(s.size());
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void vec_u32(const std::vector<u32>& v) {
    u64v(v.size());
    for (u32 x : v) u32v(x);
  }
  void vec_u64(const std::vector<u64>& v) {
    u64v(v.size());
    for (u64 x : v) u64v(x);
  }
  void vec_i64(const std::vector<i64>& v) {
    u64v(v.size());
    for (i64 x : v) i64v(x);
  }
  void vec_bool(const std::vector<bool>& v) {
    u64v(v.size());
    for (bool x : v) b(x);
  }

  const Bytes& data() const { return out_; }
  Bytes take() { return std::move(out_); }

 private:
  Bytes out_;
};

class SnapReader {
 public:
  explicit SnapReader(const Bytes& data) : data_(&data) {}

  u8 u8v() {
    if (pos_ >= data_->size()) {
      ok_ = false;
      return 0;
    }
    return (*data_)[pos_++];
  }
  bool b() { return u8v() != 0; }
  u16 u16v() {
    const u16 lo = u8v();
    return static_cast<u16>(lo | (u16{u8v()} << 8));
  }
  u32 u32v() {
    const u32 lo = u16v();
    return lo | (u32{u16v()} << 16);
  }
  u64 u64v() {
    const u64 lo = u32v();
    return lo | (u64{u32v()} << 32);
  }
  i64 i64v() { return static_cast<i64>(u64v()); }
  double f64v() { return std::bit_cast<double>(u64v()); }

  /// Reads a tag and fails the stream if it is not the expected one.
  bool expect(u32 t) {
    if (u32v() != t) ok_ = false;
    return ok_;
  }

  Bytes bytes() {
    const u64 n = len(1);
    Bytes v;
    v.reserve(n);
    for (u64 i = 0; i < n; ++i) v.push_back(u8v());
    return v;
  }
  std::string str() {
    const u64 n = len(1);
    std::string s;
    s.reserve(n);
    for (u64 i = 0; i < n; ++i) s.push_back(static_cast<char>(u8v()));
    return s;
  }
  std::vector<u32> vec_u32() {
    const u64 n = len(4);
    std::vector<u32> v(n);
    for (auto& x : v) x = u32v();
    return v;
  }
  std::vector<u64> vec_u64() {
    const u64 n = len(8);
    std::vector<u64> v(n);
    for (auto& x : v) x = u64v();
    return v;
  }
  std::vector<i64> vec_i64() {
    const u64 n = len(8);
    std::vector<i64> v(n);
    for (auto& x : v) x = i64v();
    return v;
  }
  std::vector<bool> vec_bool() {
    const u64 n = len(1);
    std::vector<bool> v(n);
    for (u64 i = 0; i < n; ++i) v[i] = b();
    return v;
  }

  bool ok() const { return ok_; }
  std::size_t pos() const { return pos_; }
  bool at_end() const { return pos_ == data_->size(); }

 private:
  // Length prefix, clamped against the remaining bytes so a corrupt stream
  // cannot drive a multi-gigabyte allocation.
  u64 len(u64 elem_size) {
    const u64 n = u64v();
    if (!ok_ || n > (data_->size() - pos_ + elem_size - 1) / elem_size) {
      ok_ = false;
      return 0;
    }
    return n;
  }

  const Bytes* data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// FNV-1a 64 over a byte range; used as the snapshot stream checksum and for
/// warm-start pool program digests.
inline u64 snap_fnv1a(const u8* p, std::size_t n, u64 h = 0xcbf29ce484222325ull) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace la
