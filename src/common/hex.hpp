// Small formatting helpers (hex dumps, fixed-width hex) used by the
// disassembler, packet tracing, and test diagnostics.
#pragma once

#include <span>
#include <string>

#include "common/types.hpp"

namespace la {

/// "0xDEADBEEF"-style fixed-width hex.
inline std::string hex32(u32 v) {
  static constexpr char digits[] = "0123456789abcdef";
  std::string s = "0x";
  for (int shift = 28; shift >= 0; shift -= 4) {
    s.push_back(digits[(v >> shift) & 0xf]);
  }
  return s;
}

inline std::string hex16(u16 v) {
  static constexpr char digits[] = "0123456789abcdef";
  std::string s = "0x";
  for (int shift = 12; shift >= 0; shift -= 4) {
    s.push_back(digits[(v >> shift) & 0xf]);
  }
  return s;
}

inline std::string hex8(u8 v) {
  static constexpr char digits[] = "0123456789abcdef";
  return std::string{"0x"} + digits[v >> 4] + digits[v & 0xf];
}

/// Classic 16-bytes-per-line hex dump, for packet/memory diagnostics.
inline std::string hex_dump(std::span<const u8> data) {
  static constexpr char digits[] = "0123456789abcdef";
  std::string out;
  for (std::size_t i = 0; i < data.size(); i += 16) {
    const u32 off = static_cast<u32>(i);
    for (int shift = 12; shift >= 0; shift -= 4) {
      out.push_back(digits[(off >> shift) & 0xf]);
    }
    out += ": ";
    for (std::size_t j = i; j < i + 16 && j < data.size(); ++j) {
      out.push_back(digits[data[j] >> 4]);
      out.push_back(digits[data[j] & 0xf]);
      out.push_back(' ');
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace la
