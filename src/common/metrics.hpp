// Node-wide metrics registry (the observability core).
//
// The paper's methodology is built on *observing* the node: a hardware
// cycle counter (§5), instrumented traces streamed to the Trace Analyzer
// (Fig 1), and error-state packets (§4.1).  Every subsystem of this
// reproduction keeps counters; this registry gives them one hierarchical
// namespace (`cache.d.read_misses`, `sdram.wait_cycles`, ...), one
// snapshot operation stamped with the node clock, and one machine-readable
// JSON form — so reports, benches, the STATS_SNAPSHOT control command, and
// the perf tracer all read the same numbers.
//
// Two ways to put a metric in the registry:
//   * owned primitives — counter()/gauge()/histogram() return references
//     the caller bumps directly;
//   * bridged samples  — register_fn() wires an existing counter (the
//     components' own stats structs) in by callback, read at snapshot
//     time.  Zero cost on the hot path, no component rewrites.
//
// Threading: a registry is **single-writer** by contract.  All mutation —
// metric registration, counter bumps, histogram observations, and the
// component state a bridged SampleFn reads — must come from the one thread
// that owns the registry (in the farm: the worker that owns the node).
// There is no internal locking; snapshot() and merge_from() may be called
// from another thread only after synchronizing with the owner (e.g. the
// farm reads node registries under its mutex once no job is in flight).
// Fleet-level aggregation copies data *out* with merge_from() rather than
// sharing primitives across threads.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace la::metrics {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(u64 n = 1) { v_ += n; }
  u64 value() const { return v_; }
  void reset() { v_ = 0; }

 private:
  u64 v_ = 0;
};

/// A value that goes up and down (queue depth, current config, ...).
class Gauge {
 public:
  void set(double v) { v_ = v; }
  void add(double d) { v_ += d; }
  double value() const { return v_; }

 private:
  double v_ = 0.0;
};

/// Log-scale distribution: power-of-two buckets plus streaming moments
/// (OnlineStats).  Bucket 0 holds [0,1); bucket i>0 holds [2^(i-1), 2^i);
/// the last bucket absorbs everything larger.  Negative observations
/// clamp into bucket 0 (durations and sizes are non-negative by nature).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 33;

  void observe(double x);

  /// Fold another histogram in: buckets add, moments merge exactly
  /// (OnlineStats::merge).
  void merge(const Histogram& o);

  const OnlineStats& stats() const { return stats_; }
  u64 count() const { return stats_.count(); }
  const std::array<u64, kBuckets>& buckets() const { return buckets_; }

  /// Inclusive upper bound of bucket `i` (last bucket: +inf).
  static double bucket_limit(std::size_t i);

 private:
  OnlineStats stats_;
  std::array<u64, kBuckets> buckets_{};
};

/// Frozen histogram state inside a snapshot.
struct HistogramSnapshot {
  u64 count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;  // NaN when count == 0
  double max = 0.0;  // NaN when count == 0
  std::array<u64, Histogram::kBuckets> buckets{};
};

/// Point-in-time view of every registered metric, stamped with the node
/// clock.  Scalar values (counters, gauges, bridged samples) live in one
/// sorted map so iteration — and therefore the JSON — is deterministic.
struct Snapshot {
  u64 cycle = 0;
  std::map<std::string, double> values;
  std::map<std::string, HistogramSnapshot> histograms;

  bool has(const std::string& name) const { return values.count(name) != 0; }
  double value_or(const std::string& name, double fallback = 0.0) const;
  u64 value_u64(const std::string& name) const;

  /// `*this - older`: scalar deltas (gauges subtract too — callers pick
  /// which names are rate-like), histogram count/bucket deltas with the
  /// delta mean derived from the sums.  The result's cycle is the delta
  /// between the two stamps.  Names present only in `*this` pass through.
  Snapshot diff_since(const Snapshot& older) const;

  /// JSON object {"cycle": N, "metrics": {...}, "histograms": {...}}.
  /// `indent` 0 emits one line (wire form); histograms with count 0 are
  /// omitted entirely (empty stats are noise, see OnlineStats::min()).
  /// Non-finite scalars (NaN/inf) serialize as null.
  std::string to_json(int indent = 2) const;
};

/// Hierarchical, name-keyed registry.  Names are dotted paths; the
/// registry itself is flat — hierarchy is a naming convention, which keeps
/// lookup and serialization trivial.
class MetricsRegistry {
 public:
  using SampleFn = std::function<double()>;

  /// Get-or-create.  Requesting an existing name with a different kind
  /// throws std::logic_error (one name, one meaning).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Bridge an external counter in by callback; re-registering a name
  /// replaces the previous callback (idempotent component setup).
  void register_fn(const std::string& name, SampleFn fn);

  /// Drop one metric / every metric whose name starts with `prefix`.
  /// Components with a shorter lifetime than the registry (e.g. a
  /// ReconfigurationServer attached to a node) must unregister on death.
  bool unregister(const std::string& name);
  std::size_t unregister_prefix(const std::string& prefix);

  std::size_t size() const { return entries_.size(); }
  bool contains(const std::string& name) const {
    return entries_.count(name) != 0;
  }

  /// Sample everything.  `cycle` stamps the snapshot with the node clock.
  Snapshot snapshot(u64 cycle = 0) const;

  /// Fold another registry's current values into this one, name by name:
  /// counters add, gauges add, histograms merge, and bridged SampleFns are
  /// sampled now and accumulated into a gauge of the same name (a fleet
  /// aggregate has no live component to re-sample).  Kinds must agree with
  /// whatever the name already is here (fn -> gauge), or std::logic_error
  /// is thrown — merging identically-constructed per-node registries is
  /// always safe.  The caller must hold both sides quiescent (see the
  /// single-writer contract above).
  void merge_from(const MetricsRegistry& other);

 private:
  struct Entry {
    // Exactly one of these is set.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    SampleFn fn;
  };

  std::map<std::string, Entry> entries_;
};

/// Append a JSON-escaped copy of `s` (quotes included) to `out`.
void append_json_string(std::string& out, const std::string& s);

/// Append a JSON number: integral doubles in [0, 2^53] print without a
/// decimal point (counters stay exact and diff-able by eye); non-finite
/// values print as null.
void append_json_number(std::string& out, double v);

}  // namespace la::metrics
