// Lightweight statistics accumulators used by caches, buses, and benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/types.hpp"

namespace la {

/// Streaming mean/variance/min/max (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Fold another accumulator in (Chan et al.'s parallel update): the
  /// result is exactly what add()-ing both streams into one accumulator
  /// would have produced.  Used when per-thread stats are combined after
  /// the threads quiesce (e.g. per-node registries into a fleet report).
  void merge(const OnlineStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const u64 n = n_ + o.n_;
    const double delta = o.mean_ - mean_;
    mean_ += delta * static_cast<double>(o.n_) / static_cast<double>(n);
    m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                       static_cast<double>(o.n_) / static_cast<double>(n);
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    n_ = n;
  }

  u64 count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  /// NaN when nothing was accumulated: an empty extremum is unknown, and
  /// a fabricated 0.0 reads as a real observation in reports.  JSON
  /// emitters render the NaN as null / omit the stat.
  double min() const {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  double max() const {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  u64 n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Ratio helper that reads as 0 when the denominator is 0.
inline double safe_ratio(u64 num, u64 den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace la
