// Fixed-width integer aliases and a few ubiquitous vocabulary types.
#pragma once

#include <cstddef>
#include <cstdint>

namespace la {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// A clock-cycle count.  Everything that charges time in the simulator
/// speaks in Cycles so that a misplaced nanosecond can't sneak in.
using Cycles = u64;

/// A 32-bit physical address on the LEON/AHB address space.
using Addr = u32;

}  // namespace la
