// FNV-1a — the repo's one non-cryptographic hash, shared by the snapshot
// checksums, the gateway frame codec, and tenant token derivation.  Not a
// MAC: it detects line damage (bit flips, truncation), it does not resist
// an adversary.  Token auth built on it is a pre-shared-key scheme whose
// secrecy lives in the seed, not the hash.
#pragma once

#include <span>
#include <string_view>

#include "common/types.hpp"

namespace la {

inline constexpr u32 kFnv32Offset = 0x811c9dc5u;
inline constexpr u32 kFnv32Prime = 0x01000193u;
inline constexpr u64 kFnv64Offset = 0xcbf29ce484222325ull;
inline constexpr u64 kFnv64Prime = 0x100000001b3ull;

constexpr u32 fnv1a32(std::span<const u8> data, u32 h = kFnv32Offset) {
  for (const u8 b : data) {
    h ^= b;
    h *= kFnv32Prime;
  }
  return h;
}

constexpr u64 fnv1a64(std::string_view data, u64 h = kFnv64Offset) {
  for (const char c : data) {
    h ^= static_cast<u8>(c);
    h *= kFnv64Prime;
  }
  return h;
}

}  // namespace la
