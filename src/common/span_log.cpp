#include "common/span_log.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace la::trace {

u64 mix64(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x = x ^ (x >> 31);
  return x == 0 ? 1 : x;  // 0 is the "no trace" sentinel
}

SpanLog::SpanLog() : epoch_(std::chrono::steady_clock::now()) {}

TraceContext SpanLog::mint() {
  const std::lock_guard<std::mutex> lk(mu_);
  TraceContext c;
  c.trace_id = mix64(next_id_++);
  c.span_id = c.trace_id;
  c.parent_span_id = 0;
  return c;
}

TraceContext SpanLog::child(const TraceContext& parent) {
  const std::lock_guard<std::mutex> lk(mu_);
  TraceContext c;
  c.trace_id = parent.trace_id;
  c.span_id = mix64(next_id_++);
  c.parent_span_id = parent.span_id;
  return c;
}

double SpanLog::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void SpanLog::add(Span s) {
  const std::lock_guard<std::mutex> lk(mu_);
  spans_.push_back(std::move(s));
}

void SpanLog::set_process_name(u32 pid, std::string name) {
  const std::lock_guard<std::mutex> lk(mu_);
  process_names_[pid] = std::move(name);
}

void SpanLog::set_thread_name(u32 pid, u32 tid, std::string name) {
  const std::lock_guard<std::mutex> lk(mu_);
  thread_names_[{pid, tid}] = std::move(name);
}

std::vector<Span> SpanLog::spans() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return spans_;
}

std::size_t SpanLog::size() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return spans_.size();
}

namespace {

void append_span_fields(std::string& out, const Span& s) {
  out += "\"trace_id\":\"";
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(s.trace_id));
  out += buf;
  out += "\",\"span_id\":\"";
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(s.span_id));
  out += buf;
  out += "\",\"parent_span_id\":\"";
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(s.parent_span_id));
  out += buf;
  out += '"';
}

bool write_text(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

std::string SpanLog::to_chrome_json() const {
  std::vector<Span> spans;
  std::map<u32, std::string> procs;
  std::map<std::pair<u32, u32>, std::string> threads;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    spans = spans_;
    procs = process_names_;
    threads = thread_names_;
  }
  // Chrome sorts complete events itself, but a time-ordered file diffs
  // and greps better.
  std::stable_sort(spans.begin(), spans.end(),
                   [](const Span& a, const Span& b) {
                     return a.start_us < b.start_us;
                   });

  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& [pid, name] : procs) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":0,\"args\":{\"name\":";
    metrics::append_json_string(out, name);
    out += "}}";
  }
  for (const auto& [key, name] : threads) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(key.first);
    out += ",\"tid\":";
    out += std::to_string(key.second);
    out += ",\"args\":{\"name\":";
    metrics::append_json_string(out, name);
    out += "}}";
  }
  for (const Span& s : spans) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":";
    metrics::append_json_string(out, s.name);
    out += ",\"cat\":\"liquid\",\"ph\":\"X\",\"ts\":";
    metrics::append_json_number(out, s.start_us);
    out += ",\"dur\":";
    metrics::append_json_number(out, s.dur_us);
    out += ",\"pid\":";
    out += std::to_string(s.pid);
    out += ",\"tid\":";
    out += std::to_string(s.tid);
    out += ",\"args\":{";
    append_span_fields(out, s);
    if (!s.note.empty()) {
      out += ",\"note\":";
      metrics::append_json_string(out, s.note);
    }
    if (s.cycle != 0) {
      out += ",\"cycle\":";
      metrics::append_json_number(out, static_cast<double>(s.cycle));
    }
    out += "}}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string SpanLog::to_jsonl() const {
  const std::vector<Span> spans = this->spans();
  std::string out;
  for (const Span& s : spans) {
    out += '{';
    append_span_fields(out, s);
    out += ",\"name\":";
    metrics::append_json_string(out, s.name);
    out += ",\"pid\":";
    out += std::to_string(s.pid);
    out += ",\"tid\":";
    out += std::to_string(s.tid);
    out += ",\"start_us\":";
    metrics::append_json_number(out, s.start_us);
    out += ",\"dur_us\":";
    metrics::append_json_number(out, s.dur_us);
    if (s.cycle != 0) {
      out += ",\"cycle\":";
      metrics::append_json_number(out, static_cast<double>(s.cycle));
    }
    if (!s.note.empty()) {
      out += ",\"note\":";
      metrics::append_json_string(out, s.note);
    }
    out += "}\n";
  }
  return out;
}

bool SpanLog::write_chrome_json(const std::string& path) const {
  return write_text(path, to_chrome_json());
}

bool SpanLog::write_jsonl(const std::string& path) const {
  return write_text(path, to_jsonl());
}

void SpanLog::observe_phase_latencies(metrics::MetricsRegistry& reg,
                                      const std::string& prefix) const {
  const std::vector<Span> spans = this->spans();
  std::map<std::string, std::vector<double>> by_phase;
  for (const Span& s : spans) by_phase[s.name].push_back(s.dur_us);
  for (auto& [phase, durs] : by_phase) {
    metrics::Histogram& h = reg.histogram(prefix + phase + "_us");
    for (const double d : durs) h.observe(d);
    std::sort(durs.begin(), durs.end());
    const auto pct = [&](double q) {
      std::size_t i =
          static_cast<std::size_t>(std::ceil(q * static_cast<double>(durs.size())));
      if (i > 0) --i;
      if (i >= durs.size()) i = durs.size() - 1;
      return durs[i];
    };
    reg.gauge(prefix + phase + ".p50_us").set(pct(0.50));
    reg.gauge(prefix + phase + ".p95_us").set(pct(0.95));
    reg.gauge(prefix + phase + ".p99_us").set(pct(0.99));
  }
}

void JobTrace::phase(const std::string& name, double start_us, double end_us,
                     u64 cycle, const std::string& note) const {
  if (!active()) return;
  Span s;
  s.trace_id = ctx.trace_id;
  s.span_id = log->child(ctx).span_id;
  s.parent_span_id = ctx.span_id;
  s.name = name;
  s.note = note;
  s.pid = pid;
  s.tid = tid;
  s.start_us = start_us;
  s.dur_us = end_us > start_us ? end_us - start_us : 0.0;
  s.cycle = cycle;
  log->add(s);
}

}  // namespace la::trace
