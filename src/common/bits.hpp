// Bit-manipulation helpers shared by the decoder, caches, and bus models.
#pragma once

#include <bit>
#include <cassert>

#include "common/types.hpp"

namespace la {

/// Extract bits [lo, hi] (inclusive, hi >= lo) of `v`, shifted down to bit 0.
constexpr u32 bits(u32 v, unsigned hi, unsigned lo) {
  assert(hi >= lo && hi < 32);
  const u32 width = hi - lo + 1;
  const u32 mask = (width >= 32) ? ~0u : ((1u << width) - 1u);
  return (v >> lo) & mask;
}

/// Single bit `n` of `v` as 0/1.
constexpr u32 bit(u32 v, unsigned n) {
  assert(n < 32);
  return (v >> n) & 1u;
}

/// Sign-extend the low `width` bits of `v` to a full 32-bit signed value.
constexpr i32 sign_extend(u32 v, unsigned width) {
  assert(width >= 1 && width <= 32);
  if (width == 32) return static_cast<i32>(v);
  const u32 sign = 1u << (width - 1);
  const u32 mask = (1u << width) - 1u;
  v &= mask;
  return static_cast<i32>((v ^ sign) - sign);
}

constexpr bool is_pow2(u64 v) { return v != 0 && (v & (v - 1)) == 0; }

/// floor(log2(v)) for v > 0.
constexpr unsigned ilog2(u64 v) {
  assert(v != 0);
  return 63u - static_cast<unsigned>(std::countl_zero(v));
}

constexpr u64 align_down(u64 v, u64 a) {
  assert(is_pow2(a));
  return v & ~(a - 1);
}

constexpr u64 align_up(u64 v, u64 a) {
  assert(is_pow2(a));
  return (v + a - 1) & ~(a - 1);
}

constexpr bool is_aligned(u64 v, u64 a) { return align_down(v, a) == v; }

/// ceil(n / d) for positive integers.
constexpr u64 ceil_div(u64 n, u64 d) {
  assert(d != 0);
  return (n + d - 1) / d;
}

}  // namespace la
