// The liquid architecture configuration space.
//
// Section 1 of the paper: "the instruction set, the coprocessors, and the
// supporting structures such as cache, pipelines, and memory controllers
// can be dynamically reconfigured".  ArchConfig captures the axes our
// LEON-on-FPX system exposes; ConfigSpace enumerates the pre-generated
// points (the paper pre-synthesizes an FPGA image per point and swaps
// between them at runtime).
#pragma once

#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "cpu/leon_pipeline.hpp"

namespace la::liquid {

struct ArchConfig {
  // Cache geometry (the paper's demonstrated axis).
  u32 icache_bytes = 1024;
  u32 icache_line = 32;
  u32 icache_ways = 1;
  u32 dcache_bytes = 1024;
  u32 dcache_line = 32;
  u32 dcache_ways = 1;
  cache::Replacement replacement = cache::Replacement::kLru;
  cache::WritePolicy write_policy =
      cache::WritePolicy::kWriteThroughNoAllocate;

  // Functional-unit axes (paper: "specialized hardware to accelerate
  // frequently used instructions").
  bool has_mul = true;
  bool has_div = true;
  Cycles mul_latency = 5;  // LEON2 multiplier variants: 1/2/4/5 cycles

  unsigned nwindows = 8;

  bool valid() const;

  /// Stable identity string, e.g. "i1k32x1-d4k32x1-lru-wt-m5-dv-w8";
  /// used as the reconfiguration-cache key.
  std::string key() const;

  /// Lower the liquid description onto the simulator's pipeline config.
  cpu::PipelineConfig to_pipeline() const;

  /// The configuration the paper shipped (Fig 10's utilization row):
  /// 1 KB I-cache, 1 KB D-cache, 32 B lines, direct-mapped, write-through.
  static ArchConfig paper_baseline();

  bool operator==(const ArchConfig&) const = default;
};

/// The enumerable space of pre-generated images.  The default mirrors the
/// paper's experiment: D-cache 1..16 KB with everything else fixed.
struct ConfigSpace {
  std::vector<u32> dcache_sizes = {1024, 2048, 4096, 8192, 16384};
  std::vector<u32> icache_sizes = {1024};
  std::vector<u32> line_sizes = {32};
  std::vector<u32> way_counts = {1};
  std::vector<Cycles> mul_latencies = {5};

  /// All combinations (invalid ones skipped).
  std::vector<ArchConfig> enumerate() const;

  /// Number of valid points.
  std::size_t size() const { return enumerate().size(); }
};

}  // namespace la::liquid
