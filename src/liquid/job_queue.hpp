// Batch job scheduling for the Reconfiguration Server.
//
// "The Reconfiguration Server controls access to the FPX Platform,
// sequencing the loading and execution of applications."  Multiple users
// submit (architecture, program) jobs; reprogramming the FPGA between
// jobs costs real time, so the scheduler may reorder the batch to group
// jobs by configuration — classic setup-time minimization — while FIFO
// order stays available for fairness.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "liquid/reconfig_server.hpp"

namespace la::liquid {

struct Job {
  std::string owner;       // who submitted it (reporting only)
  ArchConfig config;
  sasm::Image program;
  Addr result_addr = 0;
  u16 result_words = 0;
};

enum class SchedulePolicy : u8 {
  kFifo,           // strict submission order
  kGroupByConfig,  // minimize reconfigurations, stable within groups
};

struct BatchReport {
  struct Item {
    std::string owner;
    std::string config_key;
    JobResult result;
  };
  std::vector<Item> items;
  u64 reconfigurations = 0;
  double total_reprogram_seconds = 0.0;
  double total_synthesis_seconds = 0.0;
  Cycles total_cycles = 0;
  u64 failures = 0;
};

class JobQueue {
 public:
  explicit JobQueue(ReconfigurationServer& server) : server_(server) {}

  void submit(Job job) { pending_.push_back(std::move(job)); }
  std::size_t pending() const { return pending_.size(); }

  /// Run every pending job and drain the queue.
  BatchReport run_all(SchedulePolicy policy = SchedulePolicy::kGroupByConfig);

  /// The execution order `policy` would choose (indices into the current
  /// queue) — exposed for tests and for showing users their position.
  std::vector<std::size_t> plan(SchedulePolicy policy) const;

 private:
  ReconfigurationServer& server_;
  std::deque<Job> pending_;
};

}  // namespace la::liquid
