#include "liquid/reconfig_server.hpp"

namespace la::liquid {

ReconfigurationServer::ReconfigurationServer(sim::LiquidSystem& node,
                                             ReconfigurationCache& cache,
                                             const SynthesisModel& syn,
                                             ServerConfig cfg)
    : node_(node), cache_(cache), syn_(syn), cfg_(cfg) {}

JobResult ReconfigurationServer::run_job(const ArchConfig& arch,
                                         const sasm::Image& program,
                                         Addr result_addr, u16 result_words,
                                         TraceAnalyzer* analyzer) {
  JobResult r;
  r.config = arch;
  ++stats_.jobs;

  if (!arch.valid()) {
    ++stats_.failures;
    r.error = "invalid architecture configuration";
    return r;
  }

  // 1. Obtain the bitfile (cache hit or ~1 h synthesis).
  const auto got = cache_.get_or_synthesize(arch, syn_);
  r.bitfile_cache_hit = got.hit;
  r.synthesis_seconds = got.seconds;
  if (got.bitfile == nullptr) {
    ++stats_.failures;
    r.error = "configuration does not fit the device";
    return r;
  }

  // 2. Reprogram the FPGA if the loaded image differs.
  if (!(current_ == arch)) {
    node_.reconfigure(arch.to_pipeline());
    r.reconfigured = true;
    r.reprogram_seconds = static_cast<double>(got.bitfile->size_bytes) /
                          cfg_.reprogram_bytes_per_second;
    stats_.reprogram_seconds += r.reprogram_seconds;
    ++stats_.reconfigurations;
    current_ = arch;
    node_.run(100);  // let the fresh boot reach its polling loop
  }

  // 3. Load and execute over the control network.
  ctrl::LiquidClient client(node_, cfg_.client);
  net::TraceReceiver trace_rx;
  if (analyzer != nullptr) {
    // Profile the application, not the boot ROM's polling spin.
    analyzer->set_focus(mem::map::kSramBase,
                        mem::map::kSramBase + node_.config().sram_size - 1);
    if (cfg_.stream_traces) {
      // The node instruments itself and streams trace datagrams to us.
      node_.enable_trace_stream(cfg_.client.client_ip, net::kTracePort);
      client.set_extra_frame_handler([&](const net::UdpDatagram& d) {
        if (d.dst_port != net::kTracePort) return;
        for (const auto& t : trace_rx.ingest(d.payload)) {
          analyzer->ingest(t);
        }
      });
    } else {
      node_.cpu().set_observer(analyzer);
    }
  }
  node_.cpu().reset_stats();
  const bool ran = client.run_program(program);
  if (analyzer != nullptr) {
    if (cfg_.stream_traces) {
      node_.flush_trace_stream();
      client.drain_downlink();
      node_.disable_trace_stream();
    } else {
      node_.cpu().set_observer(nullptr);
    }
  }
  if (!ran) {
    ++stats_.failures;
    r.error = "program did not complete";
    return r;
  }
  // Timed exactly as the paper does it: the hardware state machine counts
  // cycles from Start to the return into the polling loop.
  r.cycles = node_.controller().last_run_cycles();

  // 4. Read the results back.
  if (result_words > 0) {
    const auto mem = client.read_memory(result_addr, result_words);
    if (!mem) {
      ++stats_.failures;
      r.error = "readback failed";
      return r;
    }
    r.readback = *mem;
  }
  r.ok = true;
  return r;
}

}  // namespace la::liquid
