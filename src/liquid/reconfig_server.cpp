#include "liquid/reconfig_server.hpp"

#include <cstdio>

#include "common/snapio.hpp"

namespace la::liquid {
namespace {

/// Content digest for the program-level warm-start pool key: two jobs share
/// a post-LOAD snapshot only when bytes, base and entry all agree.
std::string program_digest(const sasm::Image& img) {
  u64 h = snap_fnv1a(img.data.data(), img.data.size());
  const u64 mix[2] = {static_cast<u64>(img.base), static_cast<u64>(img.entry)};
  h = snap_fnv1a(reinterpret_cast<const u8*>(mix), sizeof mix, h);
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

ReconfigurationServer::ReconfigurationServer(sim::LiquidSystem& node,
                                             ReconfigurationCache& cache,
                                             const SynthesisModel& syn,
                                             ServerConfig cfg)
    : node_(node), cache_(cache), syn_(syn), cfg_(cfg) {
  // Bridge the off-node reconfiguration subsystem into the node's metrics
  // registry: one snapshot then covers the whole Fig 1 loop.
  auto& m = node_.metrics();
  if (cfg_.bridge_cache_metrics) {
    m.register_fn("reconfig_cache.hits", [this] {
      return static_cast<double>(cache_.stats().hits);
    });
    m.register_fn("reconfig_cache.misses", [this] {
      return static_cast<double>(cache_.stats().misses);
    });
    m.register_fn("reconfig_cache.evictions", [this] {
      return static_cast<double>(cache_.stats().evictions);
    });
    m.register_fn("reconfig_cache.failed_synth", [this] {
      return static_cast<double>(cache_.stats().failed_synth);
    });
    m.register_fn("reconfig_cache.synth_seconds",
                  [this] { return cache_.stats().synth_seconds; });
    m.register_fn("reconfig_cache.size", [this] {
      return static_cast<double>(cache_.size());
    });
  }
  m.register_fn("reconfig_server.jobs", [this] {
    return static_cast<double>(stats_.jobs);
  });
  m.register_fn("reconfig_server.failures", [this] {
    return static_cast<double>(stats_.failures);
  });
  m.register_fn("reconfig_server.reconfigurations", [this] {
    return static_cast<double>(stats_.reconfigurations);
  });
  m.register_fn("reconfig_server.reprogram_seconds",
                [this] { return stats_.reprogram_seconds; });
  m.register_fn("reconfig_server.warm_starts", [this] {
    return static_cast<double>(stats_.warm_starts);
  });
}

ReconfigurationServer::~ReconfigurationServer() {
  node_.metrics().unregister_prefix("reconfig_cache.");
  node_.metrics().unregister_prefix("reconfig_server.");
}

JobResult ReconfigurationServer::run_job(const ArchConfig& arch,
                                         const sasm::Image& program,
                                         Addr result_addr, u16 result_words,
                                         TraceAnalyzer* analyzer,
                                         trace::JobTrace jt) {
  JobResult r;
  r.config = arch;
  ++stats_.jobs;
  const sim::PerfTracer::Span span(node_.perf_tracer(),
                                   "job " + arch.key());

  if (!arch.valid()) {
    ++stats_.failures;
    r.error = "invalid architecture configuration";
    const double now = jt.now_us();
    jt.phase("error", now, now, node_.now(), r.error);
    return r;
  }

  // 1. Obtain the bitfile (cache hit or ~1 h synthesis).
  const double syn_t0 = jt.now_us();
  const auto got = cache_.get_or_synthesize(arch, syn_);
  r.bitfile_cache_hit = got.hit;
  r.synthesis_seconds = got.seconds;
  jt.phase("synthesis", syn_t0, jt.now_us(), node_.now(),
           got.hit ? "cache_hit" : "synthesized " + arch.key());
  if (!got.bitfile.has_value()) {
    ++stats_.failures;
    r.error = "configuration does not fit the device";
    const double now = jt.now_us();
    jt.phase("error", now, now, node_.now(), r.error);
    return r;
  }
  // Honest per-config latency: the node clocks at this image's fmax.
  if (got.bitfile->utilization.fmax_mhz > 0.0) {
    r.clock_mhz = got.bitfile->utilization.fmax_mhz;
  }

  // 2. Reprogram the FPGA if the loaded image differs.  The download time
  //    is always charged — the FPGA really is rewritten — but with a
  //    warm-start pool attached the simulated post-reprogram boot is
  //    skipped whenever a sibling already captured a post-boot snapshot of
  //    this architecture.
  if (!(current_ == arch)) {
    const double cfg_t0 = jt.now_us();
    const std::string boot_key = "boot|" + arch.key();
    bool warm_boot = false;
    if (warm_pool_ != nullptr) {
      if (auto snap = warm_pool_->get(boot_key)) {
        // The snapshot carries its capture moment; this node's local time
        // must stay monotonic across the adoption.
        const Cycles wall = node_.now();
        warm_boot = node_.restore(*snap);
        node_.warp_clock_forward(wall);
      }
    }
    if (warm_boot) {
      r.warm_start = true;
      ++stats_.warm_starts;
    } else {
      node_.reconfigure(arch.to_pipeline());
      node_.run(100);  // let the fresh boot reach its polling loop
      // Donate the post-boot state — but never a poisoned one: a snapshot
      // of a wedged CPU restored fleet-wide would spread the fault to
      // every node with an affinity miss.
      if (warm_pool_ != nullptr && !node_.cpu().wedged()) {
        warm_pool_->put(boot_key, node_.snapshot());
      }
    }
    r.reconfigured = true;
    r.reprogram_seconds = static_cast<double>(got.bitfile->size_bytes) /
                          cfg_.reprogram_bytes_per_second;
    stats_.reprogram_seconds += r.reprogram_seconds;
    ++stats_.reconfigurations;
    current_ = arch;
    jt.phase("reconfigure", cfg_t0, jt.now_us(), node_.now(),
             warm_boot ? arch.key() + " warm_start" : arch.key());
  }

  // 3. Load and execute over the control network.
  ctrl::LiquidClient client(node_, cfg_.client);
  client.set_job_trace(jt);
  net::TraceReceiver trace_rx;
  if (analyzer != nullptr) {
    // Profile the application, not the boot ROM's polling spin.
    analyzer->set_focus(mem::map::kSramBase,
                        mem::map::kSramBase + node_.config().sram_size - 1);
    if (cfg_.stream_traces) {
      // The node instruments itself and streams trace datagrams to us.
      node_.enable_trace_stream(cfg_.client.client_ip, net::kTracePort);
      client.set_extra_frame_handler([&](const net::UdpDatagram& d) {
        if (d.dst_port != net::kTracePort) return;
        for (const auto& t : trace_rx.ingest(d.payload)) {
          analyzer->ingest(t);
        }
      });
    } else {
      node_.cpu().set_observer(analyzer);
    }
  }
  // With a pool attached the load/start/await sequence is decomposed so the
  // pool can be consulted — and fed — between the phases: a post-LOAD
  // snapshot of this exact (architecture, program) pair replaces the whole
  // chunked network load with one restore.
  const ctrl::Status ran = [&]() -> ctrl::Status {
    if (warm_pool_ == nullptr) {
      node_.cpu().reset_stats();
      return client.run_program(program);
    }
    const std::string prog_key =
        "prog|" + arch.key() + "|" + program_digest(program);
    if (jt.active()) {
      (void)client.set_trace(jt.ctx.trace_id, jt.ctx.span_id);
    }
    const double load_t0 = jt.now_us();
    bool warm_loaded = false;
    if (auto snap = warm_pool_->get(prog_key)) {
      const Cycles wall = node_.now();  // monotonic time, as above
      warm_loaded = node_.restore(*snap);
      node_.warp_clock_forward(wall);
    }
    if (warm_loaded) {
      r.warm_start = true;
      ++stats_.warm_starts;
      // The restored snapshot carries the capture job's trace binding;
      // rebind to this job's context.
      if (jt.active()) {
        (void)client.set_trace(jt.ctx.trace_id, jt.ctx.span_id);
      }
      node_.cpu().reset_stats();
      jt.phase("load", load_t0, jt.now_us(), node_.now(), "warm_start");
    } else {
      node_.cpu().reset_stats();
      if (auto loaded = client.load_program(program); !loaded) return loaded;
      jt.phase("load", load_t0, jt.now_us(), node_.now());
      // Same poison guard as the boot pool: a wedge that landed during
      // the load must not become every sibling's starting state.
      if (!node_.cpu().wedged()) {
        warm_pool_->put(prog_key, node_.snapshot());
      }
    }
    if (auto started = client.start(program.entry); !started) return started;
    return client.await_done(10'000'000);
  }();
  if (analyzer != nullptr) {
    if (cfg_.stream_traces) {
      node_.flush_trace_stream();
      client.drain_downlink();
      node_.disable_trace_stream();
    } else {
      node_.cpu().set_observer(nullptr);
    }
  }
  if (!ran) {
    ++stats_.failures;
    r.node_fault = true;
    r.error = "program did not complete: " + ran.error().to_string();
    return r;
  }
  // Timed exactly as the paper does it: the hardware state machine counts
  // cycles from Start to the return into the polling loop.
  r.cycles = node_.controller().last_run_cycles();

  // 4. Read the results back.
  if (result_words > 0) {
    const double rb_t0 = jt.now_us();
    const auto mem = client.read_memory(result_addr, result_words);
    if (!mem) {
      ++stats_.failures;
      r.node_fault = true;
      r.error = "readback failed";
      const double now = jt.now_us();
      jt.phase("error", now, now, node_.now(), r.error);
      return r;
    }
    r.readback = *mem;
    jt.phase("readback", rb_t0, jt.now_us(), node_.now());
  }
  r.ok = true;
  return r;
}

}  // namespace la::liquid
