#include "liquid/job_queue.hpp"

#include <algorithm>
#include <map>

namespace la::liquid {

std::vector<std::size_t> JobQueue::plan(SchedulePolicy policy) const {
  std::vector<std::size_t> order(pending_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (policy == SchedulePolicy::kFifo) return order;

  // Group by configuration key; groups run in order of their first
  // submission, jobs stay FIFO inside a group.  The currently loaded
  // configuration's group goes first — its jobs need no reprogramming.
  std::map<std::string, std::size_t> first_seen;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const std::string key = pending_[i].config.key();
    if (!first_seen.count(key)) first_seen[key] = i;
  }
  const std::string loaded = server_.current().key();
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const std::string ka = pending_[a].config.key();
                     const std::string kb = pending_[b].config.key();
                     if (ka == kb) return a < b;
                     const bool la = ka == loaded;
                     const bool lb = kb == loaded;
                     if (la != lb) return la;
                     return first_seen.at(ka) < first_seen.at(kb);
                   });
  return order;
}

BatchReport JobQueue::run_all(SchedulePolicy policy) {
  BatchReport report;
  const std::vector<std::size_t> order = plan(policy);
  for (const std::size_t i : order) {
    const Job& job = pending_[i];
    JobResult r = server_.run_job(job.config, job.program, job.result_addr,
                                  job.result_words);
    BatchReport::Item item;
    item.owner = job.owner;
    item.config_key = job.config.key();
    if (r.reconfigured) ++report.reconfigurations;
    report.total_reprogram_seconds += r.reprogram_seconds;
    report.total_synthesis_seconds += r.synthesis_seconds;
    report.total_cycles += r.cycles;
    if (!r.ok) ++report.failures;
    item.result = std::move(r);
    report.items.push_back(std::move(item));
  }
  pending_.clear();
  return report;
}

}  // namespace la::liquid
