#include "liquid/adaptation.hpp"

namespace la::liquid {

AdaptationOutcome AdaptationEngine::adapt(const sasm::Image& program,
                                          Addr result_addr, u16 result_words,
                                          unsigned max_rounds) {
  AdaptationOutcome out;
  ArchConfig current = server_.current();

  for (unsigned round = 0; round < max_rounds; ++round) {
    TraceAnalyzer analyzer;
    const JobResult job = server_.run_job(current, program, result_addr,
                                          result_words, &analyzer);
    AdaptationStep step;
    step.config = current;
    step.cycles = job.cycles;
    step.reconfigured = job.reconfigured;
    step.cache_hit = job.bitfile_cache_hit;
    step.overhead_seconds = job.synthesis_seconds + job.reprogram_seconds;
    step.trace = analyzer.report();
    out.steps.push_back(step);
    if (!job.ok) break;

    const ArchConfig next = analyzer.recommend(space_);
    if (next == current) break;  // converged
    current = next;
  }
  return out;
}

}  // namespace la::liquid
