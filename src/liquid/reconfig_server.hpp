// The Reconfiguration Server (Fig 1): controls access to the FPX platform
// and sequences the loading and execution of applications — including the
// FPGA reprogramming step when a job asks for a different architecture
// than the one currently loaded.
#pragma once

#include <optional>
#include <vector>

#include "ctrl/client.hpp"
#include "liquid/reconfig_cache.hpp"
#include "liquid/trace.hpp"
#include "sim/liquid_system.hpp"
#include "sim/snapshot.hpp"

namespace la::liquid {

struct ServerConfig {
  /// Bitstream download rate over the network/SelectMap path — sets the
  /// reconfiguration latency (XCV2000E ~1.27 MB at ~5 MB/s: ~0.25 s).
  double reprogram_bytes_per_second = 5e6;
  /// When true, profiled runs collect their trace over the network (the
  /// node streams instrumented-trace datagrams to the analysis host, the
  /// paper's Fig 2 path) instead of probing the pipeline directly.
  bool stream_traces = false;
  /// Bridge the reconfiguration cache's stats into the node's registry.
  /// A farm shares one cache across many nodes and bridges it once at
  /// fleet level instead — per-node bridging would multiply-count the
  /// shared stats when the registries are merged.
  bool bridge_cache_metrics = true;
  ctrl::ClientConfig client;
};

/// Outcome of one job: load + (re)configure + execute + read back.
struct JobResult {
  bool ok = false;
  std::string error;

  ArchConfig config;
  bool reconfigured = false;
  bool bitfile_cache_hit = false;

  Cycles cycles = 0;             // execution cycles on the node
  double synthesis_seconds = 0;  // charged only on a bitfile-cache miss
  double reprogram_seconds = 0;  // FPGA download time when reconfigured
  std::vector<u32> readback;     // result words

  /// Node state came out of the warm-start snapshot pool (post-boot and/or
  /// post-load restore) instead of a simulated boot / chunked network load.
  bool warm_start = false;
  /// The failure (when !ok) looks like a node or transport fault — watchdog
  /// trip, silent node, lost channel — rather than a deterministic property
  /// of the job itself.  The farm's cue that a retry elsewhere may succeed.
  bool node_fault = false;

  /// Clock the node ran at under this job's configuration — the synthesis
  /// model's post-place-and-route fmax for the job's ArchConfig (a 16 KB
  /// cache closes timing slower than the paper's 30 MHz baseline), filled
  /// in by the server from the synthesized bitfile.
  double clock_mhz = 30.0;

  /// Total wall-clock the user waited (synthesis dominates on a miss —
  /// the whole point of the reconfiguration cache).  Cycles convert at
  /// the configuration's own clock, not a hardcoded 30 MHz.
  double wall_seconds() const {
    return synthesis_seconds + reprogram_seconds +
           static_cast<double>(cycles) / (clock_mhz * 1e6);
  }
};

class ReconfigurationServer {
 public:
  ReconfigurationServer(sim::LiquidSystem& node, ReconfigurationCache& cache,
                        const SynthesisModel& syn, ServerConfig cfg = {});
  /// Unregisters the `reconfig_cache.*` / `reconfig_server.*` metrics the
  /// constructor bridged into the node's registry (the server may die
  /// before the node does).
  ~ReconfigurationServer();

  /// Run `program` under `arch`, reading `result_words` words back from
  /// `result_addr` afterwards.  An optional analyzer traces the run; an
  /// active JobTrace gets a span per phase (synthesis, reconfigure, and —
  /// via the control client — load, run, readback).
  JobResult run_job(const ArchConfig& arch, const sasm::Image& program,
                    Addr result_addr, u16 result_words,
                    TraceAnalyzer* analyzer = nullptr,
                    trace::JobTrace jt = {});

  /// The architecture currently loaded in the FPGA.
  const ArchConfig& current() const { return current_; }

  /// Attach a (typically farm-shared) warm-start snapshot pool.  With a
  /// pool attached, run_job consults "boot|<arch>" before simulating a
  /// post-reconfigure boot and "prog|<arch>|<digest>" before the chunked
  /// network load — an affinity hit restores node state in O(memcpy)
  /// instead.  First execution of each pair feeds the pool.  Pass nullptr
  /// to detach.  The pool must outlive the server.
  void set_warm_pool(sim::SnapshotPool* pool) { warm_pool_ = pool; }

  struct Stats {
    u64 jobs = 0;
    u64 failures = 0;
    u64 reconfigurations = 0;
    u64 warm_starts = 0;  // pool restores performed (boot- or load-level)
    double reprogram_seconds = 0.0;
  };
  const Stats& stats() const { return stats_; }

 private:
  sim::LiquidSystem& node_;
  ReconfigurationCache& cache_;
  const SynthesisModel& syn_;
  ServerConfig cfg_;
  ArchConfig current_ = ArchConfig::paper_baseline();
  sim::SnapshotPool* warm_pool_ = nullptr;
  Stats stats_;
};

}  // namespace la::liquid
