// The reconfiguration cache (Fig 1, right).
//
// "As features are identified for reconfiguration, instances of those
// features are pre-generated in the user- or application-defined parameter
// space.  Each such instance requires ~1 hour to synthesize, and the
// results are captured in the reconfiguration cache.  At runtime, an
// application can switch between these pre-generated modules."
//
// The cache maps configuration keys to synthesized bitfiles, charges the
// synthesis model's wall-clock on misses, and evicts LRU when its capacity
// (disk budget of stored bitstreams) is exceeded.
//
// Threading: the cache is internally mutex-guarded, because in the farm it
// is *shared* — one bitfile store serves every node, so an image
// synthesized for one node is a hit fleet-wide (the paper's central
// amortization, scaled out).  A lookup that misses synthesizes while
// holding the lock: a second node asking for the same configuration blocks
// and then hits, instead of burning a duplicate synthesis hour.  Result
// carries the Bitfile *by value* so a concurrent LRU eviction can never
// dangle a caller's pointer.
#pragma once

#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "liquid/arch_config.hpp"
#include "liquid/synthesis.hpp"

namespace la::liquid {

/// A synthesized FPGA image for one configuration point.
struct Bitfile {
  ArchConfig config;
  std::string key;
  u64 size_bytes = 0;
  Utilization utilization;
  double synthesis_seconds = 0.0;
  u64 id = 0;  // monotonically increasing build number
};

class ReconfigurationCache {
 public:
  /// `capacity` = maximum number of stored bitfiles (0 = unlimited).
  explicit ReconfigurationCache(std::size_t capacity = 0)
      : capacity_(capacity) {}

  struct Result {
    std::optional<Bitfile> bitfile;  // empty only if synthesis failed
    bool hit = false;
    double seconds = 0.0;  // wall-clock charged (0 on a hit)
  };

  /// Return the bitfile for `cfg`, synthesizing (and charging ~1 h) on a
  /// miss.  Configurations that do not fit the device return an empty
  /// bitfile (the synthesis attempt is still charged — you find out the
  /// hard way, just like with real tools).
  Result get_or_synthesize(const ArchConfig& cfg, const SynthesisModel& syn);

  /// Pre-populate the cache for every point of a configuration space
  /// (the paper's offline pre-generation pass).  Returns total seconds.
  double pregenerate(const ConfigSpace& space, const SynthesisModel& syn);

  bool contains(const ArchConfig& cfg) const {
    const std::lock_guard<std::mutex> lock(mu_);
    return entries_.count(cfg.key()) != 0;
  }
  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }
  std::size_t capacity() const { return capacity_; }

  struct Stats {
    u64 hits = 0;
    u64 misses = 0;
    u64 evictions = 0;
    u64 failed_synth = 0;
    double synth_seconds = 0.0;
  };
  /// By value: a reference into concurrently-updated state would race.
  Stats stats() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  // All unlocked; callers hold mu_.
  Result lookup_or_synthesize(const ArchConfig& cfg,
                              const SynthesisModel& syn);
  void touch(const std::string& key);
  void evict_if_needed();

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::map<std::string, Bitfile> entries_;
  std::list<std::string> lru_;  // front = most recent
  Stats stats_;
  u64 next_id_ = 1;
};

}  // namespace la::liquid
