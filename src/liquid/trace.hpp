// Trace analyzer (Fig 1, left loop).
//
// "Execution traces are analyzed to identify candidate portions of an
// application whose performance could be improved through
// reconfigurability."  The analyzer rides the pipeline's execution
// observer, accumulates an instruction/memory profile, and recommends a
// configuration from the pre-generated space: data working set drives the
// D-cache size, code footprint the I-cache, and multiply density the
// multiplier variant.
#pragma once

#include <map>
#include <unordered_set>
#include <vector>

#include "cpu/integer_unit.hpp"  // StepResult / ExecObserver
#include "liquid/arch_config.hpp"
#include "net/trace_stream.hpp"

namespace la::liquid {

struct TraceReport {
  u64 instructions = 0;
  u64 annulled = 0;
  u64 loads = 0;
  u64 stores = 0;
  u64 multiplies = 0;
  u64 divides = 0;
  u64 traps = 0;

  /// Unique 32-byte-granule footprints.
  u64 data_working_set_bytes = 0;
  u64 code_footprint_bytes = 0;

  /// Most common load/store stride (bytes between successive accesses
  /// from the same PC); 0 if no repeated-PC accesses were seen.
  i64 dominant_stride = 0;

  /// Hottest program counters (descending by execution count).
  std::vector<std::pair<Addr, u64>> hot_pcs;

  double load_fraction() const {
    return instructions ? static_cast<double>(loads) / instructions : 0.0;
  }
};

class TraceAnalyzer final : public cpu::ExecObserver {
 public:
  TraceAnalyzer() = default;

  /// Direct observation (analyzer attached to the pipeline).
  void on_step(const cpu::StepResult& r) override;

  /// Network-streamed observation: one wire record (the paper streams
  /// instrumented traces over the network to the Trace Analyzer).
  void ingest(const net::TraceRecord& t);

  /// Restrict profiling to PCs in [lo, hi] — the application, not the boot
  /// ROM's polling spin.  Default: everything.
  void set_focus(Addr lo, Addr hi) {
    focus_lo_ = lo;
    focus_hi_ = hi;
  }

  void reset();
  TraceReport report(std::size_t top_pcs = 8) const;

  /// Pick the best configuration from `space` for the observed behaviour.
  /// The D-cache choice replays the recorded line set against each
  /// candidate geometry and counts per-set conflicts — capacity alone is
  /// not enough: the paper's own kernel touches only 1 KB of distinct
  /// lines but needs a 4 KB direct-mapped cache because the lines are
  /// spread 128 B apart and alias in anything smaller.
  ArchConfig recommend(const ConfigSpace& space) const;

  /// Lines that cannot co-reside for a candidate config (approximate
  /// conflict count when replaying the trace's unique line set).
  u64 conflict_pressure(const ArchConfig& c) const;

 private:
  static constexpr u32 kGranule = 32;

  Addr focus_lo_ = 0;
  Addr focus_hi_ = 0xffffffff;
  u64 instructions_ = 0;
  u64 annulled_ = 0;
  u64 loads_ = 0;
  u64 stores_ = 0;
  u64 multiplies_ = 0;
  u64 divides_ = 0;
  u64 traps_ = 0;
  std::unordered_set<Addr> data_lines_;
  std::unordered_set<Addr> code_lines_;
  std::map<Addr, Addr> last_addr_by_pc_;
  std::map<i64, u64> stride_histogram_;
  std::map<Addr, u64> pc_counts_;
};

}  // namespace la::liquid
