#include "liquid/synthesis.hpp"

#include <algorithm>
#include <cmath>

#include "common/bits.hpp"
#include "common/hex.hpp"

namespace la::liquid {
namespace {

/// 4 Kbit BlockRAMs needed for `bits` of storage.
u32 brams_for_bits(u64 bits) {
  return bits == 0 ? 0 : static_cast<u32>(ceil_div(bits, 4096));
}

/// Cache cost: data array + tag array + controller logic.
ComponentCost cache_cost(const std::string& name, u32 size_bytes, u32 line,
                         u32 ways, cache::WritePolicy wp) {
  ComponentCost c;
  c.name = name;
  const u32 lines = size_bytes / line;
  const u32 tag_bits_per_line =
      (32 - ilog2(size_bytes / ways)) + 2;  // tag + valid + dirty
  c.brams = brams_for_bits(u64{size_bytes} * 8) +
            brams_for_bits(u64{lines} * tag_bits_per_line);
  c.slices = 150 + 40 * (ways - 1) +
             (wp == cache::WritePolicy::kWriteBackAllocate ? 120 : 0);
  return c;
}

double mul_fmax(const ArchConfig& cfg) {
  if (!cfg.has_mul) return 45.0;
  switch (cfg.mul_latency) {
    case 5: return 40.0;
    case 4: return 34.0;
    case 2: return 30.5;
    default: return 26.0;  // single-cycle array multiplier: long path
  }
}

u32 mul_slices(const ArchConfig& cfg) {
  if (!cfg.has_mul) return 0;
  switch (cfg.mul_latency) {
    case 5: return 350;   // iterative, smallest (the shipped variant)
    case 4: return 600;
    case 2: return 900;
    default: return 1400;  // full array multiplier
  }
}

}  // namespace

Utilization SynthesisModel::estimate(const ArchConfig& cfg) const {
  Utilization u;
  auto add = [&u](std::string name, u32 slices, u32 brams) {
    u.breakdown.push_back({std::move(name), slices, brams});
    u.slices += slices;
    u.brams += brams;
  };

  // Register file: dual-ported BRAM storage (one extra block for the
  // second read port).
  const u32 regfile_words = 8 + 16 * cfg.nwindows;
  const u32 regfile_brams = brams_for_bits(u64{regfile_words} * 32) + 1;

  add("leon-integer-unit", 3200, 7);
  add("register-file", 0, regfile_brams);
  add("multiplier", mul_slices(cfg), 0);
  add("divider", cfg.has_div ? 300 : 0, 0);

  const ComponentCost ic = cache_cost("icache", cfg.icache_bytes,
                                      cfg.icache_line, cfg.icache_ways,
                                      cache::WritePolicy::kWriteThroughNoAllocate);
  const ComponentCost dc = cache_cost("dcache", cfg.dcache_bytes,
                                      cfg.dcache_line, cfg.dcache_ways,
                                      cfg.write_policy);
  add(ic.name, ic.slices, ic.brams);
  add(dc.name, dc.slices, dc.brams);

  add("amba-ahb-apb", 450, 0);
  add("peripherals", 520, 1);
  add("boot-rom", 0, 16);
  add("sdram-ctrl+adapter", 680, 12);
  add("protocol-wrappers", 1150, 24);
  add("cpp+leon_ctrl+pktgen", 850, 16);
  add("cycle-counter", 100, 0);
  add("uart-buffers", 0, 1);

  // Board pinout is fixed regardless of the internal configuration.
  u.iobs = 309;

  // Critical path: the slowest of the competing structural paths.
  const u32 max_cache = std::max(cfg.icache_bytes, cfg.dcache_bytes);
  const u32 max_ways = std::max(cfg.icache_ways, cfg.dcache_ways);
  const double cache_path =
      34.0 - 1.5 * std::log2(static_cast<double>(max_cache) / 1024.0) -
      1.0 * (max_ways - 1);
  const double iu_path = 33.0;
  const double mem_path = 30.0;
  u.fmax_mhz = std::min({iu_path, cache_path, mul_fmax(cfg), mem_path});

  u.fits = u.slices <= device_.slices && u.brams <= device_.brams &&
           u.iobs <= device_.iobs;
  return u;
}

double SynthesisModel::synthesis_seconds(const ArchConfig& cfg) const {
  const Utilization u = estimate(cfg);
  return 3600.0 * (0.7 + 0.6 * u.slices / device_.slices +
                   0.25 * static_cast<double>(u.brams) / device_.brams);
}

std::string format_utilization(const Utilization& u, const Device& d) {
  char buf[160];
  std::string s;
  s += "Resources        Device Utilization   Utilization %\n";
  std::snprintf(buf, sizeof(buf), "Logic Slices     %5u of %5u       %5.1f%%\n",
                u.slices, d.slices, u.slice_pct(d));
  s += buf;
  std::snprintf(buf, sizeof(buf), "BlockRAMs        %5u of %5u       %5.1f%%\n",
                u.brams, d.brams, u.bram_pct(d));
  s += buf;
  std::snprintf(buf, sizeof(buf), "External IOBs    %5u of %5u       %5.1f%%\n",
                u.iobs, d.iobs, u.iob_pct(d));
  s += buf;
  std::snprintf(buf, sizeof(buf), "Frequency        %.0f MHz%s\n", u.fmax_mhz,
                u.fits ? "" : "   (DOES NOT FIT)");
  s += buf;
  return s;
}

}  // namespace la::liquid
