// Synthesis / place-and-route model for the Xilinx Virtex XCV2000E.
//
// The paper's Fig 10 reports the shipped system's device utilization:
// 7900 of 19200 logic slices (41%), 54% of the BlockRAMs, 309 external
// IOBs, synthesized at 30 MHz — and notes that each configuration-space
// instance costs ~1 hour of synthesis (Section 1, reconfiguration cache).
// This analytical model produces those numbers for the baseline and
// extrapolates resource/frequency trends across the configuration space,
// which is what the reconfiguration cache needs to reason about.
#pragma once

#include <string>
#include <vector>

#include "liquid/arch_config.hpp"

namespace la::liquid {

/// Target FPGA description.
struct Device {
  std::string name = "XCV2000E";
  u32 slices = 19200;
  u32 brams = 160;     // 4 Kbit BlockRAMs
  u32 iobs = 404;      // user I/O in the FG680 package
};

struct ComponentCost {
  std::string name;
  u32 slices = 0;
  u32 brams = 0;
};

struct Utilization {
  u32 slices = 0;
  u32 brams = 0;
  u32 iobs = 0;
  double fmax_mhz = 0.0;
  bool fits = true;  // false when the design exceeds the device
  std::vector<ComponentCost> breakdown;

  double slice_pct(const Device& d) const {
    return 100.0 * slices / d.slices;
  }
  double bram_pct(const Device& d) const { return 100.0 * brams / d.brams; }
  double iob_pct(const Device& d) const { return 100.0 * iobs / d.iobs; }
};

class SynthesisModel {
 public:
  explicit SynthesisModel(Device device = {}) : device_(device) {}

  /// Estimate post-place-and-route utilization for one configuration.
  Utilization estimate(const ArchConfig& cfg) const;

  /// Wall-clock cost of synthesizing this configuration, in seconds
  /// (~1 hour per instance, growing with design size).
  double synthesis_seconds(const ArchConfig& cfg) const;

  /// Configuration bitstream size for the device (full-device image).
  u64 bitstream_bytes() const { return 1271512; }  // XCV2000E bitstream

  const Device& device() const { return device_; }

 private:
  Device device_;
};

/// Render a Fig 10-style utilization table.
std::string format_utilization(const Utilization& u, const Device& d);

}  // namespace la::liquid
