#include "liquid/reconfig_cache.hpp"

#include <algorithm>

namespace la::liquid {

void ReconfigurationCache::touch(const std::string& key) {
  lru_.remove(key);
  lru_.push_front(key);
}

void ReconfigurationCache::evict_if_needed() {
  while (capacity_ != 0 && entries_.size() > capacity_) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++stats_.evictions;
  }
}

ReconfigurationCache::Result ReconfigurationCache::lookup_or_synthesize(
    const ArchConfig& cfg, const SynthesisModel& syn) {
  Result r;
  const std::string key = cfg.key();
  if (const auto it = entries_.find(key); it != entries_.end()) {
    ++stats_.hits;
    touch(key);
    r.bitfile = it->second;
    r.hit = true;
    return r;
  }

  ++stats_.misses;
  r.seconds = syn.synthesis_seconds(cfg);
  stats_.synth_seconds += r.seconds;

  const Utilization u = syn.estimate(cfg);
  if (!u.fits) {
    ++stats_.failed_synth;
    return r;  // the hour is spent; the tools report overmapping
  }

  Bitfile b;
  b.config = cfg;
  b.key = key;
  b.size_bytes = syn.bitstream_bytes();
  b.utilization = u;
  b.synthesis_seconds = r.seconds;
  b.id = next_id_++;
  r.bitfile = b;
  entries_.emplace(key, std::move(b));
  touch(key);
  evict_if_needed();
  return r;
}

ReconfigurationCache::Result ReconfigurationCache::get_or_synthesize(
    const ArchConfig& cfg, const SynthesisModel& syn) {
  const std::lock_guard<std::mutex> lock(mu_);
  return lookup_or_synthesize(cfg, syn);
}

double ReconfigurationCache::pregenerate(const ConfigSpace& space,
                                         const SynthesisModel& syn) {
  const std::lock_guard<std::mutex> lock(mu_);
  double total = 0.0;
  for (const ArchConfig& cfg : space.enumerate()) {
    if (entries_.count(cfg.key()) == 0) {
      total += lookup_or_synthesize(cfg, syn).seconds;
    }
  }
  return total;
}

}  // namespace la::liquid
