// Dynamic adaptation (Fig 1, right loop).
//
// "At runtime, an application can be dynamically optimized by
// reconfiguring the FPGA to use a different precompiled image."
// The engine closes the loop: run the application while tracing, let the
// trace analyzer recommend a configuration from the pre-generated space,
// swap the image if it differs, and measure the improvement.
#pragma once

#include <vector>

#include "liquid/reconfig_server.hpp"
#include "liquid/trace.hpp"

namespace la::liquid {

struct AdaptationStep {
  ArchConfig config;          // configuration the phase ran under
  Cycles cycles = 0;          // measured execution time
  bool reconfigured = false;  // did this step swap the image?
  bool cache_hit = false;     // was the new image pre-generated?
  double overhead_seconds = 0.0;  // synthesis + reprogramming paid
  TraceReport trace;
};

struct AdaptationOutcome {
  std::vector<AdaptationStep> steps;
  /// cycles(first) / cycles(last): > 1 means adaptation helped.
  double speedup() const {
    if (steps.size() < 2 || steps.back().cycles == 0) return 1.0;
    return static_cast<double>(steps.front().cycles) /
           static_cast<double>(steps.back().cycles);
  }
};

class AdaptationEngine {
 public:
  AdaptationEngine(ReconfigurationServer& server, ConfigSpace space)
      : server_(server), space_(std::move(space)) {}

  /// Run `program` under the server's current configuration while tracing,
  /// ask the analyzer for a better point, reconfigure if it differs, and
  /// re-run.  Iterates until the recommendation is stable or `max_rounds`
  /// is hit.  `result_addr/words` are passed through for readback.
  AdaptationOutcome adapt(const sasm::Image& program, Addr result_addr,
                          u16 result_words, unsigned max_rounds = 3);

 private:
  ReconfigurationServer& server_;
  ConfigSpace space_;
};

}  // namespace la::liquid
