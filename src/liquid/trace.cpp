#include "liquid/trace.hpp"

#include <algorithm>

#include "common/bits.hpp"

namespace la::liquid {

void TraceAnalyzer::on_step(const cpu::StepResult& r) {
  ingest(net::TraceRecord::from_step(r));
}

void TraceAnalyzer::ingest(const net::TraceRecord& t) {
  if (t.pc < focus_lo_ || t.pc > focus_hi_) return;
  if (t.annulled) {
    ++annulled_;
    return;
  }
  if (t.trapped) {
    ++traps_;
    return;
  }
  ++instructions_;
  code_lines_.insert(static_cast<Addr>(align_down(t.pc, kGranule)));
  ++pc_counts_[t.pc];

  if (t.is_mul) ++multiplies_;
  if (t.is_div) ++divides_;

  if (t.mem_access) {
    if (t.mem_write) ++stores_;
    if (t.is_load) ++loads_;
    data_lines_.insert(static_cast<Addr>(align_down(t.mem_addr, kGranule)));
    const auto it = last_addr_by_pc_.find(t.pc);
    if (it != last_addr_by_pc_.end()) {
      const i64 stride =
          static_cast<i64>(t.mem_addr) - static_cast<i64>(it->second);
      if (stride != 0) ++stride_histogram_[stride];
    }
    last_addr_by_pc_[t.pc] = t.mem_addr;
  }
}

void TraceAnalyzer::reset() {
  const Addr lo = focus_lo_, hi = focus_hi_;
  *this = TraceAnalyzer();
  focus_lo_ = lo;
  focus_hi_ = hi;
}

TraceReport TraceAnalyzer::report(std::size_t top_pcs) const {
  TraceReport t;
  t.instructions = instructions_;
  t.annulled = annulled_;
  t.loads = loads_;
  t.stores = stores_;
  t.multiplies = multiplies_;
  t.divides = divides_;
  t.traps = traps_;
  t.data_working_set_bytes = data_lines_.size() * kGranule;
  t.code_footprint_bytes = code_lines_.size() * kGranule;

  if (!stride_histogram_.empty()) {
    const auto best = std::max_element(
        stride_histogram_.begin(), stride_histogram_.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    t.dominant_stride = best->first;
  }

  std::vector<std::pair<Addr, u64>> pcs(pc_counts_.begin(),
                                        pc_counts_.end());
  // Tie-break equal counts on the address so the ranking (and everything
  // downstream: reports, goldens, truncation at top_pcs) is deterministic.
  std::sort(pcs.begin(), pcs.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (pcs.size() > top_pcs) pcs.resize(top_pcs);
  t.hot_pcs = std::move(pcs);
  return t;
}

u64 TraceAnalyzer::conflict_pressure(const ArchConfig& c) const {
  // Re-map the recorded 32-byte granules onto the candidate's sets.  The
  // granule floor slightly under-counts for lines narrower than 32 B,
  // which only makes the analyzer conservative.
  const u32 line = std::max(c.dcache_line, kGranule);
  const u32 sets =
      std::max<u32>(1, c.dcache_bytes / line / c.dcache_ways);
  std::map<u64, u32> per_set;
  std::unordered_set<u64> lines;
  for (const Addr a : data_lines_) lines.insert(a / line);
  for (const u64 l : lines) ++per_set[l % sets];
  u64 over = 0;
  for (const auto& [set, count] : per_set) {
    if (count > c.dcache_ways) over += count - c.dcache_ways;
  }
  return over;
}

ArchConfig TraceAnalyzer::recommend(const ConfigSpace& space) const {
  const TraceReport t = report();
  const auto points = space.enumerate();
  if (points.empty()) return ArchConfig::paper_baseline();

  // Score: zero conflicts first, then the smallest area (smaller caches
  // synthesize faster and clock higher).
  const auto score = [&](const ArchConfig& c) -> double {
    double s = 1e6 * static_cast<double>(conflict_pressure(c));
    if (c.icache_bytes < t.code_footprint_bytes) {
      s += 1e5 * (1.0 - static_cast<double>(c.icache_bytes) /
                            static_cast<double>(t.code_footprint_bytes));
    }
    s += c.dcache_bytes / 64.0 + c.icache_bytes / 256.0;  // area pressure
    // Multiplier choice: dense multiply streams want a faster unit.
    const double mul_density =
        instructions_ ? static_cast<double>(multiplies_) / instructions_
                      : 0.0;
    if (mul_density > 0.05) {
      s += static_cast<double>(c.mul_latency) * mul_density * 5000.0;
    }
    return s;
  };

  const ArchConfig* best = &points.front();
  double best_score = score(*best);
  for (const ArchConfig& c : points) {
    const double sc = score(c);
    if (sc < best_score) {
      best = &c;
      best_score = sc;
    }
  }
  return *best;
}

}  // namespace la::liquid
