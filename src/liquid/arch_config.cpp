#include "liquid/arch_config.hpp"

#include "common/bits.hpp"

namespace la::liquid {
namespace {

std::string size_tag(u32 bytes) {
  if (bytes >= 1024 && bytes % 1024 == 0) {
    return std::to_string(bytes / 1024) + "k";
  }
  return std::to_string(bytes);
}

cache::CacheConfig cache_cfg(u32 bytes, u32 line, u32 ways,
                             cache::Replacement repl,
                             cache::WritePolicy wp) {
  cache::CacheConfig c;
  c.size_bytes = bytes;
  c.line_bytes = line;
  c.ways = ways;
  c.replacement = repl;
  c.write_policy = wp;
  return c;
}

}  // namespace

bool ArchConfig::valid() const {
  const cache::CacheConfig ic = cache_cfg(
      icache_bytes, icache_line, icache_ways, replacement,
      cache::WritePolicy::kWriteThroughNoAllocate);
  const cache::CacheConfig dc =
      cache_cfg(dcache_bytes, dcache_line, dcache_ways, replacement,
                write_policy);
  const bool mul_ok =
      !has_mul || mul_latency == 1 || mul_latency == 2 || mul_latency == 4 ||
      mul_latency == 5;
  return ic.valid() && dc.valid() && icache_line >= 8 && dcache_line >= 8 &&
         nwindows >= 2 && nwindows <= 32 && mul_ok;
}

std::string ArchConfig::key() const {
  std::string k = "i" + size_tag(icache_bytes) +
                  std::to_string(icache_line) + "x" +
                  std::to_string(icache_ways);
  k += "-d" + size_tag(dcache_bytes) + std::to_string(dcache_line) + "x" +
       std::to_string(dcache_ways);
  k += replacement == cache::Replacement::kLru ? "-lru" : "-rnd";
  k += write_policy == cache::WritePolicy::kWriteThroughNoAllocate ? "-wt"
                                                                   : "-wb";
  k += has_mul ? ("-m" + std::to_string(mul_latency)) : "-m0";
  k += has_div ? "-dv" : "-d0";
  k += "-w" + std::to_string(nwindows);
  return k;
}

cpu::PipelineConfig ArchConfig::to_pipeline() const {
  cpu::PipelineConfig p;
  p.icache = cache_cfg(icache_bytes, icache_line, icache_ways, replacement,
                       cache::WritePolicy::kWriteThroughNoAllocate);
  p.dcache = cache_cfg(dcache_bytes, dcache_line, dcache_ways, replacement,
                       write_policy);
  p.cpu.has_mul = has_mul;
  p.cpu.has_div = has_div;
  p.cpu.mul_latency = mul_latency;
  p.cpu.nwindows = nwindows;
  return p;
}

ArchConfig ArchConfig::paper_baseline() { return ArchConfig{}; }

std::vector<ArchConfig> ConfigSpace::enumerate() const {
  std::vector<ArchConfig> out;
  for (const u32 ic : icache_sizes) {
    for (const u32 dc : dcache_sizes) {
      for (const u32 line : line_sizes) {
        for (const u32 ways : way_counts) {
          for (const Cycles ml : mul_latencies) {
            ArchConfig c;
            c.icache_bytes = ic;
            c.dcache_bytes = dc;
            c.icache_line = c.dcache_line = line;
            c.icache_ways = c.dcache_ways = ways;
            c.mul_latency = ml;
            if (c.valid()) out.push_back(c);
          }
        }
      }
    }
  }
  return out;
}

}  // namespace la::liquid
