#include "isa/handler_table.hpp"

namespace la::isa {

HandlerInfo handler_info(Mnemonic mn) {
  HandlerInfo hi;
  hi.ends_block = is_cti(mn);
  switch (mn) {
    case Mnemonic::kAnd: hi.kind = HandlerKind::kAnd; break;
    case Mnemonic::kAndn: hi.kind = HandlerKind::kAndn; break;
    case Mnemonic::kOr: hi.kind = HandlerKind::kOr; break;
    case Mnemonic::kXor: hi.kind = HandlerKind::kXor; break;
    case Mnemonic::kXnor: hi.kind = HandlerKind::kXnor; break;
    case Mnemonic::kSll: hi.kind = HandlerKind::kSll; break;
    case Mnemonic::kSrl: hi.kind = HandlerKind::kSrl; break;
    case Mnemonic::kSra: hi.kind = HandlerKind::kSra; break;
    case Mnemonic::kSethi: hi.kind = HandlerKind::kSethi; break;
    case Mnemonic::kAdd: hi.kind = HandlerKind::kAdd; break;
    case Mnemonic::kAddx: hi.kind = HandlerKind::kAddx; break;
    case Mnemonic::kSub: hi.kind = HandlerKind::kSub; break;
    case Mnemonic::kSubx: hi.kind = HandlerKind::kSubx; break;
    case Mnemonic::kAndcc: hi.kind = HandlerKind::kAndcc; break;
    case Mnemonic::kOrcc: hi.kind = HandlerKind::kOrcc; break;
    case Mnemonic::kXorcc: hi.kind = HandlerKind::kXorcc; break;
    case Mnemonic::kAddcc: hi.kind = HandlerKind::kAddcc; break;
    case Mnemonic::kAddxcc: hi.kind = HandlerKind::kAddxcc; break;
    case Mnemonic::kSubcc: hi.kind = HandlerKind::kSubcc; break;
    case Mnemonic::kSubxcc: hi.kind = HandlerKind::kSubxcc; break;
    default: hi.kind = HandlerKind::kGeneric; break;
  }
  return hi;
}

const char* handler_kind_name(HandlerKind k) {
  switch (k) {
    case HandlerKind::kAnd: return "and";
    case HandlerKind::kAndn: return "andn";
    case HandlerKind::kOr: return "or";
    case HandlerKind::kXor: return "xor";
    case HandlerKind::kXnor: return "xnor";
    case HandlerKind::kSll: return "sll";
    case HandlerKind::kSrl: return "srl";
    case HandlerKind::kSra: return "sra";
    case HandlerKind::kSethi: return "sethi";
    case HandlerKind::kAdd: return "add";
    case HandlerKind::kAddx: return "addx";
    case HandlerKind::kSub: return "sub";
    case HandlerKind::kSubx: return "subx";
    case HandlerKind::kAndcc: return "andcc";
    case HandlerKind::kOrcc: return "orcc";
    case HandlerKind::kXorcc: return "xorcc";
    case HandlerKind::kAddcc: return "addcc";
    case HandlerKind::kAddxcc: return "addxcc";
    case HandlerKind::kSubcc: return "subcc";
    case HandlerKind::kSubxcc: return "subxcc";
    case HandlerKind::kGeneric: return "generic";
    case HandlerKind::kCount: break;
  }
  return "?";
}

}  // namespace la::isa
