// SPARC V8 instruction word -> decoded Instruction.
#pragma once

#include "isa/isa.hpp"

namespace la::isa {

/// Decode one 32-bit instruction word.  Unrecognized encodings return an
/// Instruction with mn == Mnemonic::kInvalid (the executor raises
/// illegal_instruction for those); the decoder itself never fails.
Instruction decode(u32 word);

}  // namespace la::isa
