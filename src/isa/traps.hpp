// SPARC V8 trap types (tt values placed into TBR.tt when a trap is taken).
#pragma once

#include <string_view>

#include "common/types.hpp"

namespace la::isa {

enum class Trap : u8 {
  kNone = 0xff,  // sentinel: no trap pending (0xff is an unused tt here)

  kReset = 0x00,
  kInstructionAccess = 0x01,
  kIllegalInstruction = 0x02,
  kPrivilegedInstruction = 0x03,
  kFpDisabled = 0x04,
  kWindowOverflow = 0x05,
  kWindowUnderflow = 0x06,
  kMemAddressNotAligned = 0x07,
  kFpException = 0x08,
  kDataAccess = 0x09,
  kTagOverflow = 0x0a,
  kCpDisabled = 0x24,
  kDivisionByZero = 0x2a,
  // Ticc traps occupy 0x80 + (operand & 0x7f); interrupts 0x11-0x1f.
  kTrapInstructionBase = 0x80,
  kInterruptBase = 0x10,
};

/// Priority per the V8 manual: lower number = higher priority.
/// Used when multiple exceptional conditions coincide.
constexpr int trap_priority(u8 tt) {
  switch (tt) {
    case 0x00: return 1;   // reset
    case 0x01: return 5;   // instruction access
    case 0x03: return 6;   // privileged instruction
    case 0x02: return 7;   // illegal instruction
    case 0x04: return 8;   // fp disabled
    case 0x24: return 8;   // cp disabled
    case 0x05: return 9;   // window overflow
    case 0x06: return 9;   // window underflow
    case 0x07: return 10;  // mem address not aligned
    case 0x08: return 11;  // fp exception
    case 0x09: return 13;  // data access
    case 0x0a: return 14;  // tag overflow
    case 0x2a: return 15;  // division by zero
    default:
      if (tt >= 0x80) return 16;            // trap instruction
      if (tt >= 0x11 && tt <= 0x1f) return 32 - (tt - 0x10);  // interrupts
      return 20;
  }
}

constexpr std::string_view trap_name(u8 tt) {
  switch (tt) {
    case 0x00: return "reset";
    case 0x01: return "instruction_access_exception";
    case 0x02: return "illegal_instruction";
    case 0x03: return "privileged_instruction";
    case 0x04: return "fp_disabled";
    case 0x05: return "window_overflow";
    case 0x06: return "window_underflow";
    case 0x07: return "mem_address_not_aligned";
    case 0x08: return "fp_exception";
    case 0x09: return "data_access_exception";
    case 0x0a: return "tag_overflow";
    case 0x24: return "cp_disabled";
    case 0x2a: return "division_by_zero";
    default:
      if (tt >= 0x80) return "trap_instruction";
      if (tt >= 0x11 && tt <= 0x1f) return "interrupt";
      return "unknown_trap";
  }
}

}  // namespace la::isa
