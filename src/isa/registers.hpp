// Integer register naming: the flat 0..31 window-relative numbering used in
// encodings, plus the textual names the assembler and disassembler share.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace la::isa {

// Window-relative register groups.
inline constexpr u8 kGlobal0 = 0;   // %g0..%g7 = r0..r7
inline constexpr u8 kOut0 = 8;      // %o0..%o7 = r8..r15
inline constexpr u8 kLocal0 = 16;   // %l0..%l7 = r16..r23
inline constexpr u8 kIn0 = 24;      // %i0..%i7 = r24..r31

inline constexpr u8 kSp = 14;       // %sp = %o6
inline constexpr u8 kFp = 30;       // %fp = %i6
inline constexpr u8 kLink = 15;     // %o7 (call return address)

/// "%g0".."%i7" for a register number 0..31 (%sp/%fp for their aliases,
/// matching what gas prints).
inline std::string reg_name(u8 r) {
  if (r == kSp) return "%sp";
  if (r == kFp) return "%fp";
  static constexpr char group[] = {'g', 'o', 'l', 'i'};
  std::string s = "%";
  s.push_back(group[(r >> 3) & 3]);
  s.push_back(static_cast<char>('0' + (r & 7)));
  return s;
}

/// Parse "%g0".."%i7" plus aliases "%sp", "%fp", "%r0".."%r31".
/// Returns nullopt on anything else.
inline std::optional<u8> parse_reg(std::string_view s) {
  if (s.size() < 3 || s[0] != '%') return std::nullopt;
  s.remove_prefix(1);
  if (s == "sp") return kSp;
  if (s == "fp") return kFp;
  if (s[0] == 'r') {
    // %r0..%r31
    u32 n = 0;
    if (s.size() < 2 || s.size() > 3) return std::nullopt;
    for (std::size_t i = 1; i < s.size(); ++i) {
      if (s[i] < '0' || s[i] > '9') return std::nullopt;
      n = n * 10 + static_cast<u32>(s[i] - '0');
    }
    if (n > 31) return std::nullopt;
    return static_cast<u8>(n);
  }
  if (s.size() != 2 || s[1] < '0' || s[1] > '7') return std::nullopt;
  const u8 idx = static_cast<u8>(s[1] - '0');
  switch (s[0]) {
    case 'g': return static_cast<u8>(kGlobal0 + idx);
    case 'o': return static_cast<u8>(kOut0 + idx);
    case 'l': return static_cast<u8>(kLocal0 + idx);
    case 'i': return static_cast<u8>(kIn0 + idx);
    default: return std::nullopt;
  }
}

}  // namespace la::isa
