// SPARC V8 instruction-set definitions shared by the decoder, encoder,
// disassembler, assembler, and both CPU models.
//
// Field layouts follow The SPARC Architecture Manual, Version 8 (the
// document the LEON2 core the paper uses is built against).
#pragma once

#include <string_view>

#include "common/types.hpp"

namespace la::isa {

/// The three top-level instruction formats (op field, bits 31:30).
enum class Format : u8 {
  kCall = 1,     // op = 1: CALL with 30-bit displacement
  kBranch = 0,   // op = 0: SETHI / Bicc / FBfcc / CBccc / UNIMP
  kArith = 2,    // op = 2: arithmetic / logical / control (op3-coded)
  kMemory = 3,   // op = 3: loads / stores (op3-coded)
};

/// Fully decoded operation.  Condition-code-setting variants are distinct
/// mnemonics so the executor is a single flat switch.
enum class Mnemonic : u16 {
  kInvalid = 0,

  // Format 1
  kCall,

  // Format 0
  kUnimp,
  kSethi,
  kBicc,   // integer conditional branch (cond + annul live in fields)
  kFbfcc,  // floating-point branch (decoded; traps fp_disabled at execute)
  kCbccc,  // coprocessor branch (decoded; traps cp_disabled at execute)

  // Format 2 — logical
  kAnd, kAndcc, kAndn, kAndncc,
  kOr, kOrcc, kOrn, kOrncc,
  kXor, kXorcc, kXnor, kXnorcc,

  // Format 2 — shifts
  kSll, kSrl, kSra,

  // Format 2 — add/sub
  kAdd, kAddcc, kAddx, kAddxcc,
  kSub, kSubcc, kSubx, kSubxcc,

  // Format 2 — tagged add/sub
  kTaddcc, kTaddcctv, kTsubcc, kTsubcctv,

  // Format 2 — multiply / divide
  kMulscc,
  kUmul, kUmulcc, kSmul, kSmulcc,
  kUdiv, kUdivcc, kSdiv, kSdivcc,

  // Format 2 — state register access
  kRdy, kRdasr, kRdpsr, kRdwim, kRdtbr,
  kWry, kWrasr, kWrpsr, kWrwim, kWrtbr,

  // Format 2 — control transfer & windows
  kJmpl, kRett, kTicc, kFlush, kSave, kRestore,

  // Format 2 — FP / coprocessor op spaces (trap at execute)
  kFpop1, kFpop2, kCpop1, kCpop2,

  // Format 3 — integer loads
  kLd, kLdub, kLduh, kLdd, kLdsb, kLdsh,
  kLda, kLduba, kLduha, kLdda, kLdsba, kLdsha,

  // Format 3 — integer stores
  kSt, kStb, kSth, kStd,
  kSta, kStba, kStha, kStda,

  // Format 3 — atomics
  kLdstub, kLdstuba, kSwap, kSwapa,

  // Format 3 — FP / coprocessor loads & stores (trap at execute)
  kLdf, kLdfsr, kLddf, kStf, kStfsr, kStdfq, kStdf,
  kLdc, kLdcsr, kLddc, kStc, kStcsr, kStdcq, kStdc,

  kCount,
};

/// Integer condition codes (the 4-bit `cond` field of Bicc / Ticc).
enum class Cond : u8 {
  kN = 0,    // never
  kE = 1,    // equal (Z)
  kLe = 2,   // less or equal
  kL = 3,    // less
  kLeu = 4,  // less or equal unsigned
  kCs = 5,   // carry set (unsigned less)
  kNeg = 6,  // negative
  kVs = 7,   // overflow set
  kA = 8,    // always
  kNe = 9,   // not equal
  kG = 10,   // greater
  kGe = 11,  // greater or equal
  kGu = 12,  // greater unsigned
  kCc = 13,  // carry clear (unsigned greater-or-equal)
  kPos = 14, // positive
  kVc = 15,  // overflow clear
};

/// Evaluate an integer condition against the four icc flags.
constexpr bool eval_cond(Cond c, bool n, bool z, bool v, bool cflag) {
  switch (c) {
    case Cond::kN: return false;
    case Cond::kE: return z;
    case Cond::kLe: return z || (n != v);
    case Cond::kL: return n != v;
    case Cond::kLeu: return cflag || z;
    case Cond::kCs: return cflag;
    case Cond::kNeg: return n;
    case Cond::kVs: return v;
    case Cond::kA: return true;
    case Cond::kNe: return !z;
    case Cond::kG: return !(z || (n != v));
    case Cond::kGe: return n == v;
    case Cond::kGu: return !(cflag || z);
    case Cond::kCc: return !cflag;
    case Cond::kPos: return !n;
    case Cond::kVc: return !v;
  }
  return false;
}

/// One decoded instruction.  Fields not relevant to a mnemonic are zero.
struct Instruction {
  Mnemonic mn = Mnemonic::kInvalid;
  u8 rd = 0;        // destination register (or cond for branches' raw rd)
  u8 rs1 = 0;
  u8 rs2 = 0;
  bool imm = false; // i bit: rs2 vs simm13
  i32 simm13 = 0;   // sign-extended 13-bit immediate
  u8 asi = 0;       // alternate space identifier (op=3 with i=0)
  u32 imm22 = 0;    // SETHI / UNIMP constant
  Cond cond = Cond::kN;
  bool annul = false;
  i32 disp = 0;     // sign-extended branch disp22 or call disp30 (in words)
  u16 opf = 0;      // FPop/CPop sub-opcode
  u32 raw = 0;      // original encoding (kept for diagnostics)

  bool valid() const { return mn != Mnemonic::kInvalid; }
};

/// True if the mnemonic reads memory (any integer/atomic/fp load).
bool is_load(Mnemonic m);
/// True if the mnemonic writes memory (stores; atomics count as both).
bool is_store(Mnemonic m);
/// True for the alternate-space (privileged) memory ops.
bool is_alternate_space(Mnemonic m);
/// Number of bytes moved by a memory mnemonic (1, 2, 4, or 8).
unsigned access_size(Mnemonic m);
/// True for control-transfer instructions (have a delay slot).
bool is_cti(Mnemonic m);
/// Lower-case mnemonic text, e.g. "addcc".
std::string_view mnemonic_name(Mnemonic m);
/// Branch-condition suffix, e.g. "ne" for Cond::kNe ("b" + "ne" = "bne").
std::string_view cond_name(Cond c);

}  // namespace la::isa
