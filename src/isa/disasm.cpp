#include "isa/disasm.hpp"

#include <string>

#include "common/hex.hpp"
#include "isa/decode.hpp"
#include "isa/registers.hpp"

namespace la::isa {
namespace {

std::string imm_str(i32 v) {
  if (v >= -64 && v <= 64) return std::to_string(v);
  if (v < 0) return "-" + hex32(static_cast<u32>(-static_cast<i64>(v)));
  return hex32(static_cast<u32>(v));
}

/// "[%rs1 + %rs2]" / "[%rs1 + imm]" / "[%rs1]" address syntax.
std::string addr_str(const Instruction& ins) {
  std::string s = "[" + reg_name(ins.rs1);
  if (ins.imm) {
    if (ins.simm13 > 0) {
      s += " + " + imm_str(ins.simm13);
    } else if (ins.simm13 < 0) {
      s += " - " + imm_str(-ins.simm13);
    }
  } else if (ins.rs2 != 0) {
    s += " + " + reg_name(ins.rs2);
  }
  s += "]";
  return s;
}

std::string operand2(const Instruction& ins) {
  return ins.imm ? imm_str(ins.simm13) : reg_name(ins.rs2);
}

std::string three_op(const Instruction& ins) {
  return std::string(mnemonic_name(ins.mn)) + " " + reg_name(ins.rs1) +
         ", " + operand2(ins) + ", " + reg_name(ins.rd);
}

}  // namespace

std::string disassemble(const Instruction& ins, Addr pc) {
  using M = Mnemonic;
  switch (ins.mn) {
    case M::kInvalid:
      return ".word " + hex32(ins.raw) + "  ! <invalid>";
    case M::kCall: {
      const Addr target = pc + (static_cast<u32>(ins.disp) << 2);
      return "call " + hex32(target);
    }
    case M::kUnimp:
      return "unimp " + hex32(ins.imm22);
    case M::kSethi:
      if (ins.rd == 0 && ins.imm22 == 0) return "nop";
      return "sethi %hi(" + hex32(ins.imm22 << 10) + "), " +
             reg_name(ins.rd);
    case M::kBicc:
    case M::kFbfcc:
    case M::kCbccc: {
      std::string s{mnemonic_name(ins.mn)};
      s += cond_name(ins.cond);
      if (ins.annul) s += ",a";
      const Addr target = pc + (static_cast<u32>(ins.disp) << 2);
      s += " " + hex32(target);
      return s;
    }
    case M::kJmpl:
      if (ins.rd == 0) {
        // jmpl with rd=%g0 is the synthetic `jmp`; %o7+8 is `ret`.
        if (ins.imm && ins.simm13 == 8 && ins.rs1 == 31) return "ret";
        if (ins.imm && ins.simm13 == 8 && ins.rs1 == 15) return "retl";
      }
      return "jmpl " + reg_name(ins.rs1) + " + " + operand2(ins) + ", " +
             reg_name(ins.rd);
    case M::kRett:
      return "rett " + reg_name(ins.rs1) + " + " + operand2(ins);
    case M::kTicc: {
      std::string s = "t" + std::string(cond_name(ins.cond)) + " ";
      if (ins.rs1 != 0) s += reg_name(ins.rs1) + " + ";
      s += operand2(ins);
      return s;
    }
    case M::kFlush:
      return "flush " + addr_str(ins);
    case M::kSave:
    case M::kRestore:
      return three_op(ins);
    case M::kRdy:
      return "rd %y, " + reg_name(ins.rd);
    case M::kRdasr:
      return "rd %asr" + std::to_string(ins.rs1) + ", " + reg_name(ins.rd);
    case M::kRdpsr:
      return "rd %psr, " + reg_name(ins.rd);
    case M::kRdwim:
      return "rd %wim, " + reg_name(ins.rd);
    case M::kRdtbr:
      return "rd %tbr, " + reg_name(ins.rd);
    case M::kWry:
      return "wr " + reg_name(ins.rs1) + ", " + operand2(ins) + ", %y";
    case M::kWrasr:
      return "wr " + reg_name(ins.rs1) + ", " + operand2(ins) + ", %asr" +
             std::to_string(ins.rd);
    case M::kWrpsr:
      return "wr " + reg_name(ins.rs1) + ", " + operand2(ins) + ", %psr";
    case M::kWrwim:
      return "wr " + reg_name(ins.rs1) + ", " + operand2(ins) + ", %wim";
    case M::kWrtbr:
      return "wr " + reg_name(ins.rs1) + ", " + operand2(ins) + ", %tbr";
    case M::kFpop1:
    case M::kFpop2:
    case M::kCpop1:
    case M::kCpop2:
      return std::string(mnemonic_name(ins.mn)) + " opf=" +
             hex16(ins.opf);
    default:
      break;
  }
  if (is_load(ins.mn) && !is_store(ins.mn)) {
    std::string s{mnemonic_name(ins.mn)};
    s += " " + addr_str(ins);
    if (is_alternate_space(ins.mn)) s += " " + std::to_string(ins.asi);
    s += ", " + reg_name(ins.rd);
    return s;
  }
  if (is_store(ins.mn) && !is_load(ins.mn)) {
    std::string s{mnemonic_name(ins.mn)};
    s += " " + reg_name(ins.rd) + ", " + addr_str(ins);
    if (is_alternate_space(ins.mn)) s += " " + std::to_string(ins.asi);
    return s;
  }
  if (is_load(ins.mn) && is_store(ins.mn)) {
    // Atomics: ldstub/swap read and write.
    std::string s{mnemonic_name(ins.mn)};
    s += " " + addr_str(ins);
    if (is_alternate_space(ins.mn)) s += " " + std::to_string(ins.asi);
    s += ", " + reg_name(ins.rd);
    return s;
  }
  return three_op(ins);
}

std::string disassemble_word(u32 word, Addr pc) {
  return disassemble(decode(word), pc);
}

}  // namespace la::isa
