#include "isa/decode.hpp"

#include "common/bits.hpp"

namespace la::isa {
namespace {

/// op=2 op3 field -> mnemonic (kInvalid where the manual leaves a hole).
constexpr Mnemonic kArithOp3[64] = {
    /*0x00*/ Mnemonic::kAdd,      Mnemonic::kAnd,     Mnemonic::kOr,
    /*0x03*/ Mnemonic::kXor,      Mnemonic::kSub,     Mnemonic::kAndn,
    /*0x06*/ Mnemonic::kOrn,      Mnemonic::kXnor,    Mnemonic::kAddx,
    /*0x09*/ Mnemonic::kInvalid,  Mnemonic::kUmul,    Mnemonic::kSmul,
    /*0x0c*/ Mnemonic::kSubx,     Mnemonic::kInvalid, Mnemonic::kUdiv,
    /*0x0f*/ Mnemonic::kSdiv,
    /*0x10*/ Mnemonic::kAddcc,    Mnemonic::kAndcc,   Mnemonic::kOrcc,
    /*0x13*/ Mnemonic::kXorcc,    Mnemonic::kSubcc,   Mnemonic::kAndncc,
    /*0x16*/ Mnemonic::kOrncc,    Mnemonic::kXnorcc,  Mnemonic::kAddxcc,
    /*0x19*/ Mnemonic::kInvalid,  Mnemonic::kUmulcc,  Mnemonic::kSmulcc,
    /*0x1c*/ Mnemonic::kSubxcc,   Mnemonic::kInvalid, Mnemonic::kUdivcc,
    /*0x1f*/ Mnemonic::kSdivcc,
    /*0x20*/ Mnemonic::kTaddcc,   Mnemonic::kTsubcc,  Mnemonic::kTaddcctv,
    /*0x23*/ Mnemonic::kTsubcctv, Mnemonic::kMulscc,  Mnemonic::kSll,
    /*0x26*/ Mnemonic::kSrl,      Mnemonic::kSra,     Mnemonic::kRdy,
    /*0x29*/ Mnemonic::kRdpsr,    Mnemonic::kRdwim,   Mnemonic::kRdtbr,
    /*0x2c*/ Mnemonic::kInvalid,  Mnemonic::kInvalid, Mnemonic::kInvalid,
    /*0x2f*/ Mnemonic::kInvalid,
    /*0x30*/ Mnemonic::kWry,      Mnemonic::kWrpsr,   Mnemonic::kWrwim,
    /*0x33*/ Mnemonic::kWrtbr,    Mnemonic::kFpop1,   Mnemonic::kFpop2,
    /*0x36*/ Mnemonic::kCpop1,    Mnemonic::kCpop2,   Mnemonic::kJmpl,
    /*0x39*/ Mnemonic::kRett,     Mnemonic::kTicc,    Mnemonic::kFlush,
    /*0x3c*/ Mnemonic::kSave,     Mnemonic::kRestore, Mnemonic::kInvalid,
    /*0x3f*/ Mnemonic::kInvalid,
};

/// op=3 op3 field -> mnemonic.
constexpr Mnemonic kMemOp3[64] = {
    /*0x00*/ Mnemonic::kLd,      Mnemonic::kLdub,    Mnemonic::kLduh,
    /*0x03*/ Mnemonic::kLdd,     Mnemonic::kSt,      Mnemonic::kStb,
    /*0x06*/ Mnemonic::kSth,     Mnemonic::kStd,     Mnemonic::kInvalid,
    /*0x09*/ Mnemonic::kLdsb,    Mnemonic::kLdsh,    Mnemonic::kInvalid,
    /*0x0c*/ Mnemonic::kInvalid, Mnemonic::kLdstub,  Mnemonic::kInvalid,
    /*0x0f*/ Mnemonic::kSwap,
    /*0x10*/ Mnemonic::kLda,     Mnemonic::kLduba,   Mnemonic::kLduha,
    /*0x13*/ Mnemonic::kLdda,    Mnemonic::kSta,     Mnemonic::kStba,
    /*0x16*/ Mnemonic::kStha,    Mnemonic::kStda,    Mnemonic::kInvalid,
    /*0x19*/ Mnemonic::kLdsba,   Mnemonic::kLdsha,   Mnemonic::kInvalid,
    /*0x1c*/ Mnemonic::kInvalid, Mnemonic::kLdstuba, Mnemonic::kInvalid,
    /*0x1f*/ Mnemonic::kSwapa,
    /*0x20*/ Mnemonic::kLdf,     Mnemonic::kLdfsr,   Mnemonic::kInvalid,
    /*0x23*/ Mnemonic::kLddf,    Mnemonic::kStf,     Mnemonic::kStfsr,
    /*0x26*/ Mnemonic::kStdfq,   Mnemonic::kStdf,    Mnemonic::kInvalid,
    /*0x29*/ Mnemonic::kInvalid, Mnemonic::kInvalid, Mnemonic::kInvalid,
    /*0x2c*/ Mnemonic::kInvalid, Mnemonic::kInvalid, Mnemonic::kInvalid,
    /*0x2f*/ Mnemonic::kInvalid,
    /*0x30*/ Mnemonic::kLdc,     Mnemonic::kLdcsr,   Mnemonic::kInvalid,
    /*0x33*/ Mnemonic::kLddc,    Mnemonic::kStc,     Mnemonic::kStcsr,
    /*0x36*/ Mnemonic::kStdcq,   Mnemonic::kStdc,    Mnemonic::kInvalid,
    /*0x39*/ Mnemonic::kInvalid, Mnemonic::kInvalid, Mnemonic::kInvalid,
    /*0x3c*/ Mnemonic::kInvalid, Mnemonic::kInvalid, Mnemonic::kInvalid,
    /*0x3f*/ Mnemonic::kInvalid,
};

Instruction decode_format0(u32 w) {
  Instruction ins;
  ins.raw = w;
  const u32 op2 = bits(w, 24, 22);
  switch (op2) {
    case 0:  // UNIMP
      ins.mn = Mnemonic::kUnimp;
      ins.imm22 = bits(w, 21, 0);
      return ins;
    case 4:  // SETHI
      ins.mn = Mnemonic::kSethi;
      ins.rd = static_cast<u8>(bits(w, 29, 25));
      ins.imm22 = bits(w, 21, 0);
      // SETHI with rd=0, imm=0 is the canonical NOP; it needs no special
      // mnemonic — writing %g0 is architecturally a no-op anyway.
      return ins;
    case 2:  // Bicc
    case 6:  // FBfcc
    case 7:  // CBccc
      ins.mn = (op2 == 2)   ? Mnemonic::kBicc
               : (op2 == 6) ? Mnemonic::kFbfcc
                            : Mnemonic::kCbccc;
      ins.cond = static_cast<Cond>(bits(w, 28, 25));
      ins.annul = bit(w, 29) != 0;
      ins.disp = sign_extend(bits(w, 21, 0), 22);
      return ins;
    default:
      return ins;  // invalid
  }
}

Instruction decode_format23(u32 w) {
  Instruction ins;
  ins.raw = w;
  const u32 op = bits(w, 31, 30);
  const u32 op3 = bits(w, 24, 19);
  ins.mn = (op == 2) ? kArithOp3[op3] : kMemOp3[op3];
  ins.rd = static_cast<u8>(bits(w, 29, 25));
  ins.rs1 = static_cast<u8>(bits(w, 18, 14));
  ins.imm = bit(w, 13) != 0;
  if (ins.imm) {
    ins.simm13 = sign_extend(bits(w, 12, 0), 13);
  } else {
    ins.rs2 = static_cast<u8>(bits(w, 4, 0));
    // The asi field only exists on format-3 (memory) encodings; for
    // format 2 the bits are reserved don't-cares.
    if (op == 3) ins.asi = static_cast<u8>(bits(w, 12, 5));
  }
  switch (ins.mn) {
    case Mnemonic::kRdy:
      // RDY is RDASR with rs1 == 0; other rs1 values read ancillary state.
      if (ins.rs1 != 0) ins.mn = Mnemonic::kRdasr;
      // Remaining source fields are don't-cares for RDY and RDASR alike.
      ins.rs2 = 0;
      ins.imm = false;
      ins.simm13 = 0;
      break;
    case Mnemonic::kWry:
      if (ins.rd != 0) ins.mn = Mnemonic::kWrasr;
      break;
    case Mnemonic::kFlush:
    case Mnemonic::kRett:
      ins.rd = 0;  // rd is a reserved don't-care for these
      break;
    case Mnemonic::kWrpsr:
    case Mnemonic::kWrwim:
    case Mnemonic::kWrtbr:
      ins.rd = 0;  // reserved (rd only selects WRASR on the WRY opcode)
      break;
    case Mnemonic::kRdpsr:
    case Mnemonic::kRdwim:
    case Mnemonic::kRdtbr:
      // Source-operand fields are don't-cares on the state-register reads.
      ins.rs1 = 0;
      ins.rs2 = 0;
      ins.imm = false;
      ins.simm13 = 0;
      break;
    case Mnemonic::kTicc:
      // Ticc reuses the branch cond field in rd's position (bits 28:25);
      // bit 29 and the asi field are reserved — canonicalize them away so
      // decode/encode round-trips.  The trap number is (rs1 + operand2)
      // mod 128, so an immediate only matters through its low 7 bits.
      ins.cond = static_cast<Cond>(bits(w, 28, 25));
      ins.rd = static_cast<u8>(bits(w, 28, 25));
      ins.asi = 0;
      if (ins.imm) ins.simm13 &= 0x7f;
      break;
    case Mnemonic::kFpop1:
    case Mnemonic::kFpop2:
    case Mnemonic::kCpop1:
    case Mnemonic::kCpop2:
      ins.opf = static_cast<u16>(bits(w, 13, 5));
      ins.rs2 = static_cast<u8>(bits(w, 4, 0));
      ins.imm = false;
      break;
    default:
      break;
  }
  // Alternate-space ops require i == 0 per the manual; with i == 1 the
  // encoding is undefined, which we surface as an illegal instruction.
  if (is_alternate_space(ins.mn) && ins.imm) ins.mn = Mnemonic::kInvalid;
  // Non-alternate memory ops carry an implicit ASI; the field bits are
  // don't-cares and are canonicalized away.
  if (!is_alternate_space(ins.mn)) ins.asi = 0;
  return ins;
}

}  // namespace

Instruction decode(u32 w) {
  switch (bits(w, 31, 30)) {
    case 0:
      return decode_format0(w);
    case 1: {
      Instruction ins;
      ins.raw = w;
      ins.mn = Mnemonic::kCall;
      ins.disp = sign_extend(bits(w, 29, 0), 30);
      return ins;
    }
    default:
      return decode_format23(w);
  }
}

}  // namespace la::isa
