// Handler-table emission for the basic-block translation engine.
//
// The block engine (src/cpu/block_engine.*) executes predecoded traces of
// {handler, operands} entries via threaded dispatch; this table is where
// each mnemonic's trace entry is emitted from.  It lives next to decode.*
// because it is pure ISA policy, shared by every consumer of translated
// code: which operations get a dedicated inline handler in the dispatcher
// (the hot ALU core of every workload), which terminate a basic block
// (delayed control transfers), and which fall back to the interpreter's
// flat switch — the single source of semantic truth for everything that
// touches memory, traps, windows, or state registers.
#pragma once

#include "isa/isa.hpp"

namespace la::isa {

/// Dispatch class of one mnemonic inside a translated block.  Every
/// mnemonic not named here executes through IntegerUnit::execute()
/// (kGeneric), so the block engine never re-implements trap-raising or
/// memory semantics; the inline classes are the pure register-to-register
/// operations whose one-line bodies the conformance corpus and the
/// three-way equivalence grid pin against the interpreter.
enum class HandlerKind : u8 {
  kAnd, kAndn, kOr, kXor, kXnor,
  kSll, kSrl, kSra,
  kSethi,
  kAdd, kAddx, kSub, kSubx,
  kAndcc, kOrcc, kXorcc,
  kAddcc, kAddxcc, kSubcc, kSubxcc,
  kGeneric,  // interpreter switch (loads, stores, muldiv, privileged, ...)
  kCount,
};

/// Emission-table entry: dispatch class plus block-boundary structure.
struct HandlerInfo {
  HandlerKind kind = HandlerKind::kGeneric;
  bool ends_block = false;  // CTI: terminates the block (delay slot follows)
};

/// Emitted entry for one mnemonic (total over the Mnemonic enum).
HandlerInfo handler_info(Mnemonic mn);

/// Stable lower-case name for a handler kind ("add", "generic", ...).
const char* handler_kind_name(HandlerKind k);

}  // namespace la::isa
