// Disassembler: decoded Instruction -> assembler-compatible text.
//
// Output uses the same syntax the sasm assembler accepts, so
// assemble(disassemble(x)) round-trips (property-tested).
#pragma once

#include <string>

#include "isa/isa.hpp"

namespace la::isa {

/// Render one instruction.  `pc` is used to print absolute branch/call
/// targets as comments; pass 0 if unknown.
std::string disassemble(const Instruction& ins, Addr pc = 0);

/// Decode + render a raw word.
std::string disassemble_word(u32 word, Addr pc = 0);

}  // namespace la::isa
