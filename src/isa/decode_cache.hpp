// Host-performance predecode cache: word -> decoded Instruction.
//
// isa::decode() is a pure function of the 32-bit instruction word, so a
// cache keyed by the word itself can NEVER go stale — self-modifying code,
// program reloads, and cache flushes all change *which* word is fetched,
// never what a given word means.  That makes this the one layer of the
// fast path that needs no invalidation hooks at all; the LeonPipeline's
// per-I-cache-line predecoded mirror (which IS address-keyed) layers its
// invalidation rules on top (see docs/PERFORMANCE.md).
//
// Direct-mapped, value-verified: a lookup hashes the word to a slot and
// re-checks the stored word before trusting the entry, so collisions cost
// one real decode and nothing else.
#pragma once

#include <array>

#include "isa/decode.hpp"
#include "isa/isa.hpp"

namespace la::isa {

class DecodeCache {
 public:
  DecodeCache() {
    // Seed every slot with a real decode of word 0 so the table never
    // holds an entry whose stored word disagrees with its Instruction —
    // a fetched 0x00000000 (UNIMP) hits slot 0 correctly from the start.
    const Instruction zero = decode(0);
    for (Entry& e : entries_) e = Entry{0, zero};
  }

  /// Decode `word`, consulting the cache.  Always returns the same
  /// Instruction decode(word) would.
  const Instruction& lookup(u32 word) {
    Entry& e = entries_[index(word)];
    if (e.word != word) [[unlikely]] {
      e.word = word;
      e.ins = decode(word);
    }
    return e.ins;
  }

 private:
  struct Entry {
    u32 word;
    Instruction ins;
  };

  static constexpr u32 kSlots = 2048;  // ~72 KiB; L2-resident

  static u32 index(u32 word) {
    // Opcode bits live at both ends of the word; fold the halves so
    // immediate-heavy code doesn't collide entire op groups into one slot.
    return (word ^ (word >> 17)) & (kSlots - 1);
  }

  std::array<Entry, kSlots> entries_;
};

}  // namespace la::isa
