#include "isa/isa.hpp"

namespace la::isa {

bool is_load(Mnemonic m) {
  switch (m) {
    case Mnemonic::kLd: case Mnemonic::kLdub: case Mnemonic::kLduh:
    case Mnemonic::kLdd: case Mnemonic::kLdsb: case Mnemonic::kLdsh:
    case Mnemonic::kLda: case Mnemonic::kLduba: case Mnemonic::kLduha:
    case Mnemonic::kLdda: case Mnemonic::kLdsba: case Mnemonic::kLdsha:
    case Mnemonic::kLdstub: case Mnemonic::kLdstuba:
    case Mnemonic::kSwap: case Mnemonic::kSwapa:
    case Mnemonic::kLdf: case Mnemonic::kLdfsr: case Mnemonic::kLddf:
    case Mnemonic::kLdc: case Mnemonic::kLdcsr: case Mnemonic::kLddc:
      return true;
    default:
      return false;
  }
}

bool is_store(Mnemonic m) {
  switch (m) {
    case Mnemonic::kSt: case Mnemonic::kStb: case Mnemonic::kSth:
    case Mnemonic::kStd:
    case Mnemonic::kSta: case Mnemonic::kStba: case Mnemonic::kStha:
    case Mnemonic::kStda:
    case Mnemonic::kLdstub: case Mnemonic::kLdstuba:
    case Mnemonic::kSwap: case Mnemonic::kSwapa:
    case Mnemonic::kStf: case Mnemonic::kStfsr: case Mnemonic::kStdfq:
    case Mnemonic::kStdf:
    case Mnemonic::kStc: case Mnemonic::kStcsr: case Mnemonic::kStdcq:
    case Mnemonic::kStdc:
      return true;
    default:
      return false;
  }
}

bool is_alternate_space(Mnemonic m) {
  switch (m) {
    case Mnemonic::kLda: case Mnemonic::kLduba: case Mnemonic::kLduha:
    case Mnemonic::kLdda: case Mnemonic::kLdsba: case Mnemonic::kLdsha:
    case Mnemonic::kSta: case Mnemonic::kStba: case Mnemonic::kStha:
    case Mnemonic::kStda: case Mnemonic::kLdstuba: case Mnemonic::kSwapa:
      return true;
    default:
      return false;
  }
}

unsigned access_size(Mnemonic m) {
  switch (m) {
    case Mnemonic::kLdub: case Mnemonic::kLdsb: case Mnemonic::kStb:
    case Mnemonic::kLduba: case Mnemonic::kLdsba: case Mnemonic::kStba:
    case Mnemonic::kLdstub: case Mnemonic::kLdstuba:
      return 1;
    case Mnemonic::kLduh: case Mnemonic::kLdsh: case Mnemonic::kSth:
    case Mnemonic::kLduha: case Mnemonic::kLdsha: case Mnemonic::kStha:
      return 2;
    case Mnemonic::kLdd: case Mnemonic::kStd:
    case Mnemonic::kLdda: case Mnemonic::kStda:
    case Mnemonic::kLddf: case Mnemonic::kStdf:
    case Mnemonic::kLddc: case Mnemonic::kStdc:
    case Mnemonic::kStdfq: case Mnemonic::kStdcq:
      return 8;
    default:
      return 4;
  }
}

bool is_cti(Mnemonic m) {
  switch (m) {
    case Mnemonic::kCall: case Mnemonic::kBicc: case Mnemonic::kFbfcc:
    case Mnemonic::kCbccc: case Mnemonic::kJmpl: case Mnemonic::kRett:
      return true;
    default:
      return false;
  }
}

std::string_view mnemonic_name(Mnemonic m) {
  switch (m) {
    case Mnemonic::kInvalid: return "<invalid>";
    case Mnemonic::kCall: return "call";
    case Mnemonic::kUnimp: return "unimp";
    case Mnemonic::kSethi: return "sethi";
    case Mnemonic::kBicc: return "b";
    case Mnemonic::kFbfcc: return "fb";
    case Mnemonic::kCbccc: return "cb";
    case Mnemonic::kAnd: return "and";
    case Mnemonic::kAndcc: return "andcc";
    case Mnemonic::kAndn: return "andn";
    case Mnemonic::kAndncc: return "andncc";
    case Mnemonic::kOr: return "or";
    case Mnemonic::kOrcc: return "orcc";
    case Mnemonic::kOrn: return "orn";
    case Mnemonic::kOrncc: return "orncc";
    case Mnemonic::kXor: return "xor";
    case Mnemonic::kXorcc: return "xorcc";
    case Mnemonic::kXnor: return "xnor";
    case Mnemonic::kXnorcc: return "xnorcc";
    case Mnemonic::kSll: return "sll";
    case Mnemonic::kSrl: return "srl";
    case Mnemonic::kSra: return "sra";
    case Mnemonic::kAdd: return "add";
    case Mnemonic::kAddcc: return "addcc";
    case Mnemonic::kAddx: return "addx";
    case Mnemonic::kAddxcc: return "addxcc";
    case Mnemonic::kSub: return "sub";
    case Mnemonic::kSubcc: return "subcc";
    case Mnemonic::kSubx: return "subx";
    case Mnemonic::kSubxcc: return "subxcc";
    case Mnemonic::kTaddcc: return "taddcc";
    case Mnemonic::kTaddcctv: return "taddcctv";
    case Mnemonic::kTsubcc: return "tsubcc";
    case Mnemonic::kTsubcctv: return "tsubcctv";
    case Mnemonic::kMulscc: return "mulscc";
    case Mnemonic::kUmul: return "umul";
    case Mnemonic::kUmulcc: return "umulcc";
    case Mnemonic::kSmul: return "smul";
    case Mnemonic::kSmulcc: return "smulcc";
    case Mnemonic::kUdiv: return "udiv";
    case Mnemonic::kUdivcc: return "udivcc";
    case Mnemonic::kSdiv: return "sdiv";
    case Mnemonic::kSdivcc: return "sdivcc";
    case Mnemonic::kRdy: return "rd";
    case Mnemonic::kRdasr: return "rd";
    case Mnemonic::kRdpsr: return "rd";
    case Mnemonic::kRdwim: return "rd";
    case Mnemonic::kRdtbr: return "rd";
    case Mnemonic::kWry: return "wr";
    case Mnemonic::kWrasr: return "wr";
    case Mnemonic::kWrpsr: return "wr";
    case Mnemonic::kWrwim: return "wr";
    case Mnemonic::kWrtbr: return "wr";
    case Mnemonic::kJmpl: return "jmpl";
    case Mnemonic::kRett: return "rett";
    case Mnemonic::kTicc: return "t";
    case Mnemonic::kFlush: return "flush";
    case Mnemonic::kSave: return "save";
    case Mnemonic::kRestore: return "restore";
    case Mnemonic::kFpop1: return "fpop1";
    case Mnemonic::kFpop2: return "fpop2";
    case Mnemonic::kCpop1: return "cpop1";
    case Mnemonic::kCpop2: return "cpop2";
    case Mnemonic::kLd: return "ld";
    case Mnemonic::kLdub: return "ldub";
    case Mnemonic::kLduh: return "lduh";
    case Mnemonic::kLdd: return "ldd";
    case Mnemonic::kLdsb: return "ldsb";
    case Mnemonic::kLdsh: return "ldsh";
    case Mnemonic::kLda: return "lda";
    case Mnemonic::kLduba: return "lduba";
    case Mnemonic::kLduha: return "lduha";
    case Mnemonic::kLdda: return "ldda";
    case Mnemonic::kLdsba: return "ldsba";
    case Mnemonic::kLdsha: return "ldsha";
    case Mnemonic::kSt: return "st";
    case Mnemonic::kStb: return "stb";
    case Mnemonic::kSth: return "sth";
    case Mnemonic::kStd: return "std";
    case Mnemonic::kSta: return "sta";
    case Mnemonic::kStba: return "stba";
    case Mnemonic::kStha: return "stha";
    case Mnemonic::kStda: return "stda";
    case Mnemonic::kLdstub: return "ldstub";
    case Mnemonic::kLdstuba: return "ldstuba";
    case Mnemonic::kSwap: return "swap";
    case Mnemonic::kSwapa: return "swapa";
    case Mnemonic::kLdf: return "ldf";
    case Mnemonic::kLdfsr: return "ldfsr";
    case Mnemonic::kLddf: return "lddf";
    case Mnemonic::kStf: return "stf";
    case Mnemonic::kStfsr: return "stfsr";
    case Mnemonic::kStdfq: return "stdfq";
    case Mnemonic::kStdf: return "stdf";
    case Mnemonic::kLdc: return "ldc";
    case Mnemonic::kLdcsr: return "ldcsr";
    case Mnemonic::kLddc: return "lddc";
    case Mnemonic::kStc: return "stc";
    case Mnemonic::kStcsr: return "stcsr";
    case Mnemonic::kStdcq: return "stdcq";
    case Mnemonic::kStdc: return "stdc";
    case Mnemonic::kCount: break;
  }
  return "<?>";
}

std::string_view cond_name(Cond c) {
  switch (c) {
    case Cond::kN: return "n";
    case Cond::kE: return "e";
    case Cond::kLe: return "le";
    case Cond::kL: return "l";
    case Cond::kLeu: return "leu";
    case Cond::kCs: return "cs";
    case Cond::kNeg: return "neg";
    case Cond::kVs: return "vs";
    case Cond::kA: return "a";
    case Cond::kNe: return "ne";
    case Cond::kG: return "g";
    case Cond::kGe: return "ge";
    case Cond::kGu: return "gu";
    case Cond::kCc: return "cc";
    case Cond::kPos: return "pos";
    case Cond::kVc: return "vc";
  }
  return "?";
}

}  // namespace la::isa
