// Instruction -> 32-bit SPARC V8 word.  Inverse of decode() for all valid
// instructions (property-tested both directions).
#pragma once

#include "isa/isa.hpp"

namespace la::isa {

/// Encode a decoded instruction back into its 32-bit word.
/// Precondition: ins.valid().  Field values out of range (e.g. simm13 that
/// does not fit 13 bits) trigger an assertion in debug builds and are
/// masked in release builds.
u32 encode(const Instruction& ins);

// Convenience builders used by the assembler and by tests. ---------------

u32 encode_call(i32 disp30_words);
u32 encode_sethi(u8 rd, u32 imm22);
u32 encode_branch(Cond c, bool annul, i32 disp22_words);
u32 encode_arith_rr(Mnemonic m, u8 rd, u8 rs1, u8 rs2);
u32 encode_arith_ri(Mnemonic m, u8 rd, u8 rs1, i32 simm13);
u32 encode_mem_rr(Mnemonic m, u8 rd, u8 rs1, u8 rs2, u8 asi = 0);
u32 encode_mem_ri(Mnemonic m, u8 rd, u8 rs1, i32 simm13);
u32 encode_ticc(Cond c, u8 rs1, i32 simm7);
u32 encode_nop();

/// op3 value for a format-2/3 mnemonic (asserts if not applicable).
u32 op3_of(Mnemonic m);

}  // namespace la::isa
