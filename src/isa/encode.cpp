#include "isa/encode.hpp"

#include <cassert>

#include "common/bits.hpp"

namespace la::isa {
namespace {

struct Op3Entry {
  Mnemonic mn;
  u32 op;   // 2 or 3
  u32 op3;
};

constexpr Op3Entry kOp3Table[] = {
    {Mnemonic::kAdd, 2, 0x00},      {Mnemonic::kAnd, 2, 0x01},
    {Mnemonic::kOr, 2, 0x02},       {Mnemonic::kXor, 2, 0x03},
    {Mnemonic::kSub, 2, 0x04},      {Mnemonic::kAndn, 2, 0x05},
    {Mnemonic::kOrn, 2, 0x06},      {Mnemonic::kXnor, 2, 0x07},
    {Mnemonic::kAddx, 2, 0x08},     {Mnemonic::kUmul, 2, 0x0a},
    {Mnemonic::kSmul, 2, 0x0b},     {Mnemonic::kSubx, 2, 0x0c},
    {Mnemonic::kUdiv, 2, 0x0e},     {Mnemonic::kSdiv, 2, 0x0f},
    {Mnemonic::kAddcc, 2, 0x10},    {Mnemonic::kAndcc, 2, 0x11},
    {Mnemonic::kOrcc, 2, 0x12},     {Mnemonic::kXorcc, 2, 0x13},
    {Mnemonic::kSubcc, 2, 0x14},    {Mnemonic::kAndncc, 2, 0x15},
    {Mnemonic::kOrncc, 2, 0x16},    {Mnemonic::kXnorcc, 2, 0x17},
    {Mnemonic::kAddxcc, 2, 0x18},   {Mnemonic::kUmulcc, 2, 0x1a},
    {Mnemonic::kSmulcc, 2, 0x1b},   {Mnemonic::kSubxcc, 2, 0x1c},
    {Mnemonic::kUdivcc, 2, 0x1e},   {Mnemonic::kSdivcc, 2, 0x1f},
    {Mnemonic::kTaddcc, 2, 0x20},   {Mnemonic::kTsubcc, 2, 0x21},
    {Mnemonic::kTaddcctv, 2, 0x22}, {Mnemonic::kTsubcctv, 2, 0x23},
    {Mnemonic::kMulscc, 2, 0x24},   {Mnemonic::kSll, 2, 0x25},
    {Mnemonic::kSrl, 2, 0x26},      {Mnemonic::kSra, 2, 0x27},
    {Mnemonic::kRdy, 2, 0x28},      {Mnemonic::kRdasr, 2, 0x28},
    {Mnemonic::kRdpsr, 2, 0x29},    {Mnemonic::kRdwim, 2, 0x2a},
    {Mnemonic::kRdtbr, 2, 0x2b},    {Mnemonic::kWry, 2, 0x30},
    {Mnemonic::kWrasr, 2, 0x30},    {Mnemonic::kWrpsr, 2, 0x31},
    {Mnemonic::kWrwim, 2, 0x32},    {Mnemonic::kWrtbr, 2, 0x33},
    {Mnemonic::kFpop1, 2, 0x34},    {Mnemonic::kFpop2, 2, 0x35},
    {Mnemonic::kCpop1, 2, 0x36},    {Mnemonic::kCpop2, 2, 0x37},
    {Mnemonic::kJmpl, 2, 0x38},     {Mnemonic::kRett, 2, 0x39},
    {Mnemonic::kTicc, 2, 0x3a},     {Mnemonic::kFlush, 2, 0x3b},
    {Mnemonic::kSave, 2, 0x3c},     {Mnemonic::kRestore, 2, 0x3d},
    {Mnemonic::kLd, 3, 0x00},       {Mnemonic::kLdub, 3, 0x01},
    {Mnemonic::kLduh, 3, 0x02},     {Mnemonic::kLdd, 3, 0x03},
    {Mnemonic::kSt, 3, 0x04},       {Mnemonic::kStb, 3, 0x05},
    {Mnemonic::kSth, 3, 0x06},      {Mnemonic::kStd, 3, 0x07},
    {Mnemonic::kLdsb, 3, 0x09},     {Mnemonic::kLdsh, 3, 0x0a},
    {Mnemonic::kLdstub, 3, 0x0d},   {Mnemonic::kSwap, 3, 0x0f},
    {Mnemonic::kLda, 3, 0x10},      {Mnemonic::kLduba, 3, 0x11},
    {Mnemonic::kLduha, 3, 0x12},    {Mnemonic::kLdda, 3, 0x13},
    {Mnemonic::kSta, 3, 0x14},      {Mnemonic::kStba, 3, 0x15},
    {Mnemonic::kStha, 3, 0x16},     {Mnemonic::kStda, 3, 0x17},
    {Mnemonic::kLdsba, 3, 0x19},    {Mnemonic::kLdsha, 3, 0x1a},
    {Mnemonic::kLdstuba, 3, 0x1d},  {Mnemonic::kSwapa, 3, 0x1f},
    {Mnemonic::kLdf, 3, 0x20},      {Mnemonic::kLdfsr, 3, 0x21},
    {Mnemonic::kLddf, 3, 0x23},     {Mnemonic::kStf, 3, 0x24},
    {Mnemonic::kStfsr, 3, 0x25},    {Mnemonic::kStdfq, 3, 0x26},
    {Mnemonic::kStdf, 3, 0x27},     {Mnemonic::kLdc, 3, 0x30},
    {Mnemonic::kLdcsr, 3, 0x31},    {Mnemonic::kLddc, 3, 0x33},
    {Mnemonic::kStc, 3, 0x34},      {Mnemonic::kStcsr, 3, 0x35},
    {Mnemonic::kStdcq, 3, 0x36},    {Mnemonic::kStdc, 3, 0x37},
};

const Op3Entry* lookup(Mnemonic m) {
  for (const auto& e : kOp3Table) {
    if (e.mn == m) return &e;
  }
  return nullptr;
}

u32 fmt23(u32 op, u32 op3, u8 rd, u8 rs1, bool imm, i32 simm13, u8 rs2,
          u8 asi) {
  u32 w = (op << 30) | ((u32{rd} & 0x1fu) << 25) | (op3 << 19) |
          ((u32{rs1} & 0x1fu) << 14);
  if (imm) {
    w |= (1u << 13) | (static_cast<u32>(simm13) & 0x1fff);
  } else {
    w |= (u32{asi} << 5) | (u32{rs2} & 0x1fu);
  }
  return w;
}

}  // namespace

u32 op3_of(Mnemonic m) {
  const Op3Entry* e = lookup(m);
  assert(e != nullptr);
  return e->op3;
}

u32 encode_call(i32 disp30) {
  return (1u << 30) | (static_cast<u32>(disp30) & 0x3fffffffu);
}

u32 encode_sethi(u8 rd, u32 imm22) {
  return ((u32{rd} & 0x1fu) << 25) | (4u << 22) | (imm22 & 0x3fffffu);
}

u32 encode_branch(Cond c, bool annul, i32 disp22) {
  return (annul ? (1u << 29) : 0u) | (static_cast<u32>(c) << 25) |
         (2u << 22) | (static_cast<u32>(disp22) & 0x3fffffu);
}

u32 encode_arith_rr(Mnemonic m, u8 rd, u8 rs1, u8 rs2) {
  const Op3Entry* e = lookup(m);
  assert(e != nullptr && e->op == 2);
  return fmt23(2, e->op3, rd, rs1, false, 0, rs2, 0);
}

u32 encode_arith_ri(Mnemonic m, u8 rd, u8 rs1, i32 simm13) {
  const Op3Entry* e = lookup(m);
  assert(e != nullptr && e->op == 2);
  assert(simm13 >= -4096 && simm13 <= 4095);
  return fmt23(2, e->op3, rd, rs1, true, simm13, 0, 0);
}

u32 encode_mem_rr(Mnemonic m, u8 rd, u8 rs1, u8 rs2, u8 asi) {
  const Op3Entry* e = lookup(m);
  assert(e != nullptr && e->op == 3);
  return fmt23(3, e->op3, rd, rs1, false, 0, rs2, asi);
}

u32 encode_mem_ri(Mnemonic m, u8 rd, u8 rs1, i32 simm13) {
  const Op3Entry* e = lookup(m);
  assert(e != nullptr && e->op == 3);
  assert(simm13 >= -4096 && simm13 <= 4095);
  return fmt23(3, e->op3, rd, rs1, true, simm13, 0, 0);
}

u32 encode_ticc(Cond c, u8 rs1, i32 simm7) {
  return fmt23(2, 0x3a, static_cast<u8>(c), rs1, true, simm7 & 0x7f, 0, 0);
}

u32 encode_nop() { return encode_sethi(0, 0); }

u32 encode(const Instruction& ins) {
  assert(ins.valid());
  switch (ins.mn) {
    case Mnemonic::kCall:
      return encode_call(ins.disp);
    case Mnemonic::kUnimp:
      return ins.imm22 & 0x3fffffu;
    case Mnemonic::kSethi:
      return encode_sethi(ins.rd, ins.imm22);
    case Mnemonic::kBicc:
      return encode_branch(ins.cond, ins.annul, ins.disp);
    case Mnemonic::kFbfcc:
      return (ins.annul ? (1u << 29) : 0u) |
             (static_cast<u32>(ins.cond) << 25) | (6u << 22) |
             (static_cast<u32>(ins.disp) & 0x3fffffu);
    case Mnemonic::kCbccc:
      return (ins.annul ? (1u << 29) : 0u) |
             (static_cast<u32>(ins.cond) << 25) | (7u << 22) |
             (static_cast<u32>(ins.disp) & 0x3fffffu);
    case Mnemonic::kTicc: {
      u32 w = fmt23(2, 0x3a, static_cast<u8>(ins.cond), ins.rs1, ins.imm,
                    ins.simm13, ins.rs2, 0);
      return w;
    }
    case Mnemonic::kFpop1:
    case Mnemonic::kFpop2:
    case Mnemonic::kCpop1:
    case Mnemonic::kCpop2: {
      const Op3Entry* e = lookup(ins.mn);
      return (2u << 30) | (u32{ins.rd} << 25) | (e->op3 << 19) |
             (u32{ins.rs1} << 14) | ((u32{ins.opf} & 0x1ffu) << 5) |
             u32{ins.rs2};
    }
    default: {
      const Op3Entry* e = lookup(ins.mn);
      assert(e != nullptr);
      return fmt23(e->op, e->op3, ins.rd, ins.rs1, ins.imm, ins.simm13,
                   ins.rs2, ins.asi);
    }
  }
}

}  // namespace la::isa
