// Deterministic conformance-vector generation.
//
// For every mnemonic the ISS implements, generate_corpus() emits seeded
// random cases plus a hand-written edge-case table (trap boundaries,
// overflow clamps, the fuzzer-minimized PR repros, deliberate-fault config
// twins).  Generation is pure in (mnemonic, seed, cases): regenerating with
// the committed parameters must reproduce the committed corpus byte for
// byte — that is the drift gate `lvec verify` enforces.
//
// The reference executor is cpu::IntegerUnit on a FlatMemory wrapped in a
// recording port, so a vector's memory set is exactly the data words the
// instruction touched (instruction fetches are not recorded; the code
// words travel in the vector's `code` list instead).
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "conform/vector.hpp"

namespace la::conform {

// Memory geometry shared by the generator and every replay leg.  One
// megabyte of RAM at the FPX SRAM base; code, data, and the trap table
// live in disjoint regions so no vector self-modifies its code and no
// trap handler is ever fetched (handler words are zero == UNIMP, and all
// trap vectors end after the trapping step).
inline constexpr Addr kVecMemBase = 0x40000000;
inline constexpr u32 kVecMemSize = 1u << 20;
inline constexpr Addr kVecCodeBase = kVecMemBase + 0x100;
inline constexpr Addr kVecDataBase = kVecMemBase + 0x800;
inline constexpr Addr kVecTrapBase = kVecMemBase + 0x10000;

/// Default generator parameters (recorded in each corpus file header).
inline constexpr u64 kDefaultSeed = 0x11901d;
inline constexpr int kDefaultCases = 10;

/// Every mnemonic the ISS implements (== everything decode() can produce
/// except kInvalid).  This is the coverage universe `lvec coverage`
/// checks the committed corpus against.
std::vector<isa::Mnemonic> corpus_mnemonics();

/// Unique lower-case corpus key for a mnemonic (mnemonic_name() collides
/// for the rd/wr state-register group and the branch/trap families, so
/// those get their full names: "rdy", "wrpsr", "bicc", "ticc", ...).
std::string corpus_key(isa::Mnemonic mn);

/// Inverse of corpus_key(); kInvalid for an unknown key.
isa::Mnemonic mnemonic_from_key(const std::string& key);

/// Flat serialization index for window-relative register `r` (0..31) seen
/// from window `cwp` — the generator's bridge between "set %o3 of the
/// current window" and the vector's flat register map.
u32 flat_index(unsigned nwindows, unsigned cwp, u8 r);

/// Generate the full corpus file for one mnemonic: `cases` seeded random
/// vectors named "<key>/r<i>" plus the mnemonic's fixed edge cases named
/// "<key>/edge_<what>".
CorpusFile generate_corpus(isa::Mnemonic mn, u64 seed = kDefaultSeed,
                           int cases = kDefaultCases);

}  // namespace la::conform
