// Harte-style single-step SPARC V8 conformance test vectors.
//
// A TestVector is one self-contained architectural experiment: a full
// pre-state (registers, PSR/WIM/Y/TBR, the touched memory words), the
// instruction word(s) under test, and the post-state the reference model
// (cpu::IntegerUnit) produced.  Vectors serialize to JSON — one case per
// line, one file per mnemonic — so a behaviour change in any CPU model
// fails with a *named* minimal case instead of a fuzzer timeout.
//
// Register file encoding: the windowed file is flattened to indices
//   0..7                 globals (%g0 never serialized — hardwired zero)
//   8 + w*16 + k         window w: k 0..7 = outs %o0-%o7,
//                                  k 8..15 = locals %l0-%l7
// (the ins of window w alias the outs of window w+1, so outs + locals of
// every window cover the whole file).  Pre and post register lists are
// sparse: absent index == zero.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "cpu/config.hpp"
#include "cpu/state.hpp"
#include "isa/isa.hpp"

namespace la::conform {

/// The CPU configuration axes a vector pins (everything else is the
/// default CpuConfig).  quirk_subx is the deliberate SUBX fault knob:
/// quirk-on vectors prove the corpus distinguishes the config axes.
struct VecConfig {
  unsigned nwindows = 8;
  bool has_mul = true;
  bool has_div = true;
  bool quirk_subx = false;

  cpu::CpuConfig cpu_config(bool host_decode_cache,
                            bool host_block_engine = false) const {
    cpu::CpuConfig c;
    c.nwindows = nwindows;
    c.has_mul = has_mul;
    c.has_div = has_div;
    c.quirk_subx_no_carry = quirk_subx;
    c.host_decode_cache = host_decode_cache;
    c.host_block_engine = host_block_engine;
    return c;
  }
};

/// Serializable architectural state (sparse registers / ASRs / memory).
struct ArchState {
  u32 pc = 0;
  u32 npc = 0;
  u32 psr = 0;  // packed form (cpu::Psr::pack / unpack)
  u32 y = 0;
  u32 wim = 0;
  u32 tbr = 0;
  bool error_mode = false;
  std::map<u32, u32> regs;  // flat index -> value, nonzero only
  std::map<u32, u32> asr;   // asr index (1..31) -> value, nonzero only
  std::map<u32, u32> mem;   // word address -> word value
};

/// Reference-model observations (informational for the pipeline legs;
/// enforced on the IntegerUnit legs, whose nominal timing is part of the
/// architectural contract the corpus pins).
struct RefInfo {
  bool trapped = false;
  u8 tt = 0;       // last trap taken, if any
  u64 cycles = 0;  // total nominal cycles over all steps
};

struct TestVector {
  std::string name;  // "<mnemonic>/<case>", unique within the corpus
  VecConfig cfg;
  int steps = 1;  // 1, or 2 for delayed control transfers (CTI + slot)
  std::vector<std::pair<u32, u32>> code;  // (address, instruction word)
  ArchState pre;
  ArchState post;
  RefInfo ref;
};

/// One per-mnemonic corpus file: the cases plus the generator parameters
/// that reproduce them (the drift gate regenerates with these).
struct CorpusFile {
  std::string mnemonic;
  u64 seed = 0;
  int cases = 0;  // seeded case count requested (edges come on top)
  std::vector<TestVector> vectors;
};

// --- register-file flattening ------------------------------------------

inline u32 flat_reg_count(unsigned nwindows) { return 8 + 16 * nwindows; }

/// CpuState accessors for a flat index (see file comment for the scheme).
u32 flat_reg_get(const cpu::CpuState& st, u32 idx);
void flat_reg_set(cpu::CpuState& st, u32 idx, u32 value);
/// Human name for a flat index, e.g. "g3" or "w2.l5".
std::string flat_reg_name(u32 idx);

/// Overwrite `st` (freshly constructed from the vector's config) with the
/// sparse ArchState.  Unlisted registers/ASRs become zero.
void apply_state(const ArchState& a, cpu::CpuState& st);

/// Capture the scalar state + nonzero registers/ASRs of `st`.  Memory is
/// the caller's concern (only the generator knows the touched set).
ArchState capture_state(const cpu::CpuState& st);

// --- JSON --------------------------------------------------------------

/// One vector as a single-line JSON object.
std::string to_json(const TestVector& v);
/// Whole corpus file (header + one case per line).
std::string to_json(const CorpusFile& f);

/// Parse a corpus file.  Returns false and fills `err` on malformed input.
bool parse_corpus_file(const std::string& text, CorpusFile& out,
                       std::string& err);

/// First difference between two ArchStates ("" when identical), reported
/// as "field: <a> vs <b>" — the replay harness passes (got, want).
std::string diff_states(const ArchState& a, const ArchState& b);

/// First difference between two vectors ("" when identical) — drives
/// `lvec diff` and the round-trip tests.
std::string diff_vectors(const TestVector& a, const TestVector& b);

}  // namespace la::conform
