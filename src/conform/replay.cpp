#include "conform/replay.hpp"

#include "bus/ahb.hpp"
#include "common/hex.hpp"
#include "conform/generator.hpp"
#include "cpu/flat_memory.hpp"
#include "cpu/integer_unit.hpp"
#include "cpu/leon_pipeline.hpp"
#include "mem/sram.hpp"

namespace la::conform {

const char* leg_name(Leg leg) {
  switch (leg) {
    case Leg::kIuSlow: return "iu-slow";
    case Leg::kIuFast: return "iu-fast";
    case Leg::kIuBlock: return "iu-block";
    case Leg::kPipeSlow: return "pipe-slow";
    case Leg::kPipeFast: return "pipe-fast";
  }
  return "?";
}

bool leg_from_name(const std::string& name, Leg& out) {
  for (const Leg l : kAllLegs) {
    if (name == leg_name(l)) {
      out = l;
      return true;
    }
  }
  return false;
}

namespace {

bool all_cacheable(Addr) { return true; }

/// What a leg produced; compared field-by-field against the vector.
struct RunOutcome {
  ArchState got;
  bool trapped = false;
  u8 tt = 0;
  u64 cycles = 0;
};

void note_trap(RunOutcome& o, const cpu::StepResult& r) {
  if (r.trapped) {
    o.trapped = true;
    o.tt = r.tt;
  }
}

RunOutcome run_iu(const TestVector& v, bool fast) {
  cpu::FlatMemory flat(kVecMemSize, kVecMemBase);
  for (const auto& [a, w] : v.pre.mem) flat.write(a, 4, w);
  for (const auto& [a, w] : v.code) flat.write(a, 4, w);

  cpu::IntegerUnit iu(v.cfg.cpu_config(fast), flat);
  iu.reset(v.pre.pc);
  apply_state(v.pre, iu.state());

  RunOutcome o;
  for (int i = 0; i < v.steps; ++i) note_trap(o, iu.step());
  o.cycles = iu.cycle_count();
  o.got = capture_state(iu.state());
  for (const auto& [a, want] : v.post.mem) {
    (void)want;
    o.got.mem[a] = flat.word_at(a);
  }
  return o;
}

// The block leg drives the observerless run() loop — the only entry point
// that engages the translation engine — and reads the trap outcome from
// the IntegerUnit's own bookkeeping (take_trap counts every trap and
// latches the most recent tt, matching note_trap's last-trap-wins rule).
RunOutcome run_iu_block(const TestVector& v) {
  cpu::FlatMemory flat(kVecMemSize, kVecMemBase);
  for (const auto& [a, w] : v.pre.mem) flat.write(a, 4, w);
  for (const auto& [a, w] : v.code) flat.write(a, 4, w);

  cpu::IntegerUnit iu(v.cfg.cpu_config(true, /*host_block_engine=*/true),
                      flat);
  iu.reset(v.pre.pc);
  apply_state(v.pre, iu.state());

  RunOutcome o;
  iu.run(static_cast<u64>(v.steps));
  o.trapped = iu.trap_count() != 0;
  if (o.trapped) o.tt = iu.last_trap_tt();
  o.cycles = iu.cycle_count();
  o.got = capture_state(iu.state());
  for (const auto& [a, want] : v.post.mem) {
    (void)want;
    o.got.mem[a] = flat.word_at(a);
  }
  return o;
}

RunOutcome run_pipe(const TestVector& v, bool fast) {
  mem::Sram sram(kVecMemBase, kVecMemSize);
  bus::AhbBus bus;
  bus.attach(kVecMemBase, kVecMemSize, &sram);
  Cycles clock = 0;

  cpu::PipelineConfig pcfg;
  pcfg.cpu = v.cfg.cpu_config(fast);
  pcfg.host_fast_paths = fast;
  cpu::LeonPipeline pipe(pcfg, bus, &clock, &all_cacheable);
  pipe.reset(v.pre.pc);
  apply_state(v.pre, pipe.state());
  for (const auto& [a, w] : v.pre.mem) sram.backdoor_write_word(a, w);
  for (const auto& [a, w] : v.code) sram.backdoor_write_word(a, w);

  RunOutcome o;
  for (int i = 0; i < v.steps; ++i) note_trap(o, pipe.step());
  pipe.flush_caches();  // write-back configs: memory = architectural view
  o.cycles = pipe.stats().cycles;
  o.got = capture_state(pipe.state());
  for (const auto& [a, want] : v.post.mem) {
    (void)want;
    o.got.mem[a] = sram.backdoor_word(a);
  }
  return o;
}

}  // namespace

std::string replay_vector(const TestVector& v, Leg leg) {
  const bool iu = leg == Leg::kIuSlow || leg == Leg::kIuFast ||
                  leg == Leg::kIuBlock;
  const bool fast = leg == Leg::kIuFast || leg == Leg::kPipeFast;
  const RunOutcome o = leg == Leg::kIuBlock ? run_iu_block(v)
                       : iu                 ? run_iu(v, fast)
                                            : run_pipe(v, fast);

  const std::string tag = v.name + " [" + leg_name(leg) + "] ";
  if (auto d = diff_states(o.got, v.post); !d.empty()) return tag + d;
  if (o.trapped != v.ref.trapped) {
    return tag + "trapped: " + (o.trapped ? "1" : "0") + " vs " +
           (v.ref.trapped ? "1" : "0");
  }
  if (o.trapped && o.tt != v.ref.tt) {
    return tag + "tt: " + hex8(o.tt) + " vs " + hex8(v.ref.tt);
  }
  if (iu && o.cycles != v.ref.cycles) {
    return tag + "cycles: " + std::to_string(o.cycles) + " vs " +
           std::to_string(v.ref.cycles);
  }
  return "";
}

std::string replay_vector_all(const TestVector& v) {
  for (const Leg leg : kAllLegs) {  // all five legs
    if (auto d = replay_vector(v, leg); !d.empty()) return d;
  }
  return "";
}

}  // namespace la::conform
