#include "conform/vector.hpp"

#include <cassert>
#include <cctype>
#include <cstdlib>

#include "common/hex.hpp"

namespace la::conform {

// --- register-file flattening ------------------------------------------

namespace {

/// Map a flat index to (window, architectural register number).
void flat_to_wr(u32 idx, u32& w, u8& r) {
  assert(idx >= 8);
  const u32 slot = idx - 8;
  w = slot / 16;
  const u32 k = slot % 16;
  r = static_cast<u8>(k < 8 ? 8 + k : 16 + (k - 8));
}

}  // namespace

u32 flat_reg_get(const cpu::CpuState& st, u32 idx) {
  if (idx < 8) return st.regs.get(0, static_cast<u8>(idx));
  u32 w = 0;
  u8 r = 0;
  flat_to_wr(idx, w, r);
  return st.regs.get(w, r);
}

void flat_reg_set(cpu::CpuState& st, u32 idx, u32 value) {
  if (idx < 8) {
    st.regs.set(0, static_cast<u8>(idx), value);
    return;
  }
  u32 w = 0;
  u8 r = 0;
  flat_to_wr(idx, w, r);
  st.regs.set(w, r, value);
}

std::string flat_reg_name(u32 idx) {
  if (idx < 8) return "g" + std::to_string(idx);
  const u32 slot = idx - 8;
  const u32 w = slot / 16;
  const u32 k = slot % 16;
  const char kind = k < 8 ? 'o' : 'l';
  return "w" + std::to_string(w) + "." + kind + std::to_string(k % 8);
}

void apply_state(const ArchState& a, cpu::CpuState& st) {
  st.pc = a.pc;
  st.npc = a.npc;
  st.psr.unpack(a.psr);
  st.y = a.y;
  st.wim = a.wim;
  st.tbr = a.tbr;
  st.error_mode = a.error_mode;
  for (const auto& [idx, v] : a.regs) flat_reg_set(st, idx, v);
  for (const auto& [idx, v] : a.asr) {
    if (idx < 32) st.asr[idx] = v;
  }
}

ArchState capture_state(const cpu::CpuState& st) {
  ArchState a;
  a.pc = st.pc;
  a.npc = st.npc;
  a.psr = st.psr.pack();
  a.y = st.y;
  a.wim = st.wim;
  a.tbr = st.tbr;
  a.error_mode = st.error_mode;
  const u32 n = flat_reg_count(st.nwindows);
  for (u32 i = 1; i < n; ++i) {
    if (const u32 v = flat_reg_get(st, i); v != 0) a.regs[i] = v;
  }
  for (u32 i = 1; i < 32; ++i) {
    if (st.asr[i] != 0) a.asr[i] = st.asr[i];
  }
  return a;
}

// --- JSON writer --------------------------------------------------------

namespace {

void append_pairs(std::string& s, const char* key,
                  const std::map<u32, u32>& m, bool hex_key) {
  s += '"';
  s += key;
  s += "\":[";
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) s += ',';
    first = false;
    s += '[';
    s += hex_key ? ('"' + hex32(k) + '"') : std::to_string(k);
    s += ",\"" + hex32(v) + "\"]";
  }
  s += ']';
}

void append_state(std::string& s, const char* key, const ArchState& a) {
  s += '"';
  s += key;
  s += "\":{\"pc\":\"" + hex32(a.pc) + "\",\"npc\":\"" + hex32(a.npc) +
       "\",\"psr\":\"" + hex32(a.psr) + "\",\"y\":\"" + hex32(a.y) +
       "\",\"wim\":\"" + hex32(a.wim) + "\",\"tbr\":\"" + hex32(a.tbr) +
       "\",\"err\":" + (a.error_mode ? "1" : "0") + ",";
  append_pairs(s, "regs", a.regs, false);
  s += ',';
  append_pairs(s, "asr", a.asr, false);
  s += ',';
  append_pairs(s, "mem", a.mem, true);
  s += '}';
}

}  // namespace

std::string to_json(const TestVector& v) {
  std::string s;
  s.reserve(1024);
  s += "{\"name\":\"" + v.name + "\",";
  s += "\"cfg\":{\"nw\":" + std::to_string(v.cfg.nwindows) +
       ",\"mul\":" + (v.cfg.has_mul ? "1" : "0") +
       ",\"div\":" + (v.cfg.has_div ? "1" : "0") +
       ",\"quirk\":" + (v.cfg.quirk_subx ? "1" : "0") + "},";
  s += "\"steps\":" + std::to_string(v.steps) + ",";
  s += "\"code\":[";
  for (std::size_t i = 0; i < v.code.size(); ++i) {
    if (i) s += ',';
    s += "[\"" + hex32(v.code[i].first) + "\",\"" + hex32(v.code[i].second) +
         "\"]";
  }
  s += "],";
  append_state(s, "pre", v.pre);
  s += ',';
  append_state(s, "post", v.post);
  s += ",\"ref\":{\"trap\":" + std::string(v.ref.trapped ? "1" : "0") +
       ",\"tt\":\"" + hex8(v.ref.tt) + "\",\"cycles\":" +
       std::to_string(v.ref.cycles) + "}}";
  return s;
}

std::string to_json(const CorpusFile& f) {
  std::string s;
  s.reserve(f.vectors.size() * 1024 + 256);
  s += "{\"mnemonic\":\"" + f.mnemonic + "\",\"seed\":" +
       std::to_string(f.seed) + ",\"cases\":" + std::to_string(f.cases) +
       ",\n\"vectors\":[\n";
  for (std::size_t i = 0; i < f.vectors.size(); ++i) {
    s += to_json(f.vectors[i]);
    if (i + 1 < f.vectors.size()) s += ',';
    s += '\n';
  }
  s += "]}\n";
  return s;
}

// --- JSON parser --------------------------------------------------------
//
// Minimal recursive-descent parser for the subset this module emits
// (objects, arrays, strings, unsigned integers).  Strict enough to reject
// hand-mangled files with a positioned error message.

namespace {

struct Json {
  enum class Kind { kNull, kNumber, kString, kArray, kObject } kind =
      Kind::kNull;
  u64 number = 0;
  std::string str;
  std::vector<Json> items;
  std::vector<std::pair<std::string, Json>> fields;

  const Json* find(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  bool parse(Json& out, std::string& err) {
    if (!value(out)) {
      err = err_ + " at offset " + std::to_string(pos_);
      return false;
    }
    skip_ws();
    if (pos_ != s_.size()) {
      err = "trailing garbage at offset " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool fail(const std::string& what) {
    if (err_.empty()) err_ = what;
    return false;
  }

  bool value(Json& out) {
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') return string_val(out);
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      return number_val(out);
    }
    return fail(std::string("unexpected character '") + c + "'");
  }

  bool object(Json& out) {
    out.kind = Json::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      Json key;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != '"') return fail("expected key");
      if (!string_val(key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      Json val;
      if (!value(val)) return false;
      out.fields.emplace_back(key.str, std::move(val));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated object");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(Json& out) {
    out.kind = Json::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Json val;
      if (!value(val)) return false;
      out.items.push_back(std::move(val));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated array");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool string_val(Json& out) {
    out.kind = Json::Kind::kString;
    ++pos_;  // '"'
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') return fail("escapes not supported");
      out.str.push_back(s_[pos_++]);
    }
    if (pos_ >= s_.size()) return fail("unterminated string");
    ++pos_;
    return true;
  }

  bool number_val(Json& out) {
    out.kind = Json::Kind::kNumber;
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return fail("malformed number");
    out.number = std::strtoull(s_.substr(start, pos_ - start).c_str(),
                               nullptr, 10);
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string err_;
};

/// "0x..."-string or plain number -> u32.
bool get_u32(const Json& v, u32& out) {
  if (v.kind == Json::Kind::kNumber) {
    out = static_cast<u32>(v.number);
    return true;
  }
  if (v.kind == Json::Kind::kString && v.str.size() > 2 &&
      v.str[0] == '0' && v.str[1] == 'x') {
    out = static_cast<u32>(std::strtoull(v.str.c_str() + 2, nullptr, 16));
    return true;
  }
  return false;
}

bool get_field_u32(const Json& obj, const char* key, u32& out,
                   std::string& err) {
  const Json* f = obj.find(key);
  if (f == nullptr || !get_u32(*f, out)) {
    err = std::string("missing or malformed field '") + key + "'";
    return false;
  }
  return true;
}

bool parse_pairs(const Json& obj, const char* key, std::map<u32, u32>& out,
                 std::string& err) {
  const Json* arr = obj.find(key);
  if (arr == nullptr || arr->kind != Json::Kind::kArray) {
    err = std::string("missing array '") + key + "'";
    return false;
  }
  for (const Json& e : arr->items) {
    u32 k = 0;
    u32 v = 0;
    if (e.kind != Json::Kind::kArray || e.items.size() != 2 ||
        !get_u32(e.items[0], k) || !get_u32(e.items[1], v)) {
      err = std::string("malformed pair in '") + key + "'";
      return false;
    }
    out[k] = v;
  }
  return true;
}

bool parse_state(const Json& obj, const char* key, ArchState& out,
                 std::string& err) {
  const Json* st = obj.find(key);
  if (st == nullptr || st->kind != Json::Kind::kObject) {
    err = std::string("missing state '") + key + "'";
    return false;
  }
  u32 errflag = 0;
  if (!get_field_u32(*st, "pc", out.pc, err) ||
      !get_field_u32(*st, "npc", out.npc, err) ||
      !get_field_u32(*st, "psr", out.psr, err) ||
      !get_field_u32(*st, "y", out.y, err) ||
      !get_field_u32(*st, "wim", out.wim, err) ||
      !get_field_u32(*st, "tbr", out.tbr, err) ||
      !get_field_u32(*st, "err", errflag, err)) {
    return false;
  }
  out.error_mode = errflag != 0;
  return parse_pairs(*st, "regs", out.regs, err) &&
         parse_pairs(*st, "asr", out.asr, err) &&
         parse_pairs(*st, "mem", out.mem, err);
}

bool parse_vector(const Json& obj, TestVector& out, std::string& err) {
  const Json* name = obj.find("name");
  if (name == nullptr || name->kind != Json::Kind::kString) {
    err = "vector without a name";
    return false;
  }
  out.name = name->str;
  const Json* cfg = obj.find("cfg");
  if (cfg == nullptr || cfg->kind != Json::Kind::kObject) {
    err = out.name + ": missing cfg";
    return false;
  }
  u32 nw = 8;
  u32 mul = 1;
  u32 divi = 1;
  u32 quirk = 0;
  if (!get_field_u32(*cfg, "nw", nw, err) ||
      !get_field_u32(*cfg, "mul", mul, err) ||
      !get_field_u32(*cfg, "div", divi, err) ||
      !get_field_u32(*cfg, "quirk", quirk, err)) {
    err = out.name + ": " + err;
    return false;
  }
  out.cfg.nwindows = nw;
  out.cfg.has_mul = mul != 0;
  out.cfg.has_div = divi != 0;
  out.cfg.quirk_subx = quirk != 0;

  u32 steps = 1;
  if (!get_field_u32(obj, "steps", steps, err)) {
    err = out.name + ": " + err;
    return false;
  }
  out.steps = static_cast<int>(steps);

  const Json* code = obj.find("code");
  if (code == nullptr || code->kind != Json::Kind::kArray) {
    err = out.name + ": missing code";
    return false;
  }
  for (const Json& e : code->items) {
    u32 a = 0;
    u32 w = 0;
    if (e.kind != Json::Kind::kArray || e.items.size() != 2 ||
        !get_u32(e.items[0], a) || !get_u32(e.items[1], w)) {
      err = out.name + ": malformed code entry";
      return false;
    }
    out.code.emplace_back(a, w);
  }

  if (!parse_state(obj, "pre", out.pre, err) ||
      !parse_state(obj, "post", out.post, err)) {
    err = out.name + ": " + err;
    return false;
  }

  const Json* ref = obj.find("ref");
  if (ref == nullptr || ref->kind != Json::Kind::kObject) {
    err = out.name + ": missing ref";
    return false;
  }
  u32 trap = 0;
  u32 tt = 0;
  if (!get_field_u32(*ref, "trap", trap, err) ||
      !get_field_u32(*ref, "tt", tt, err)) {
    err = out.name + ": " + err;
    return false;
  }
  const Json* cyc = ref->find("cycles");
  if (cyc == nullptr || cyc->kind != Json::Kind::kNumber) {
    err = out.name + ": missing ref.cycles";
    return false;
  }
  out.ref.trapped = trap != 0;
  out.ref.tt = static_cast<u8>(tt);
  out.ref.cycles = cyc->number;
  return true;
}

}  // namespace

bool parse_corpus_file(const std::string& text, CorpusFile& out,
                       std::string& err) {
  Json root;
  Parser p(text);
  if (!p.parse(root, err)) return false;
  if (root.kind != Json::Kind::kObject) {
    err = "corpus file is not a JSON object";
    return false;
  }
  const Json* mn = root.find("mnemonic");
  if (mn == nullptr || mn->kind != Json::Kind::kString) {
    err = "missing 'mnemonic'";
    return false;
  }
  out.mnemonic = mn->str;
  const Json* seed = root.find("seed");
  const Json* cases = root.find("cases");
  if (seed == nullptr || seed->kind != Json::Kind::kNumber ||
      cases == nullptr || cases->kind != Json::Kind::kNumber) {
    err = "missing 'seed'/'cases'";
    return false;
  }
  out.seed = seed->number;
  out.cases = static_cast<int>(cases->number);
  const Json* vecs = root.find("vectors");
  if (vecs == nullptr || vecs->kind != Json::Kind::kArray) {
    err = "missing 'vectors'";
    return false;
  }
  for (const Json& v : vecs->items) {
    TestVector tv;
    if (v.kind != Json::Kind::kObject || !parse_vector(v, tv, err)) {
      return false;
    }
    out.vectors.push_back(std::move(tv));
  }
  return true;
}

// --- vector diff --------------------------------------------------------

namespace {

std::string diff_maps(const char* what, const std::map<u32, u32>& a,
                      const std::map<u32, u32>& b, bool hex_key) {
  for (const auto& [k, v] : a) {
    const auto it = b.find(k);
    const u32 bv = it == b.end() ? 0 : it->second;
    if (v != bv) {
      return std::string(what) + "[" +
             (hex_key ? hex32(k) : std::to_string(k)) + "]: " + hex32(v) +
             " vs " + hex32(bv);
    }
  }
  for (const auto& [k, v] : b) {
    if (v != 0 && a.find(k) == a.end()) {
      return std::string(what) + "[" +
             (hex_key ? hex32(k) : std::to_string(k)) + "]: " + hex32(0) +
             " vs " + hex32(v);
    }
  }
  return "";
}

}  // namespace

std::string diff_states(const ArchState& a, const ArchState& b) {
  if (a.pc != b.pc) return "pc: " + hex32(a.pc) + " vs " + hex32(b.pc);
  if (a.npc != b.npc) return "npc: " + hex32(a.npc) + " vs " + hex32(b.npc);
  if (a.psr != b.psr) return "psr: " + hex32(a.psr) + " vs " + hex32(b.psr);
  if (a.y != b.y) return "y: " + hex32(a.y) + " vs " + hex32(b.y);
  if (a.wim != b.wim) return "wim: " + hex32(a.wim) + " vs " + hex32(b.wim);
  if (a.tbr != b.tbr) return "tbr: " + hex32(a.tbr) + " vs " + hex32(b.tbr);
  if (a.error_mode != b.error_mode) {
    return std::string("error_mode: ") + (a.error_mode ? "1" : "0") +
           " vs " + (b.error_mode ? "1" : "0");
  }
  if (auto d = diff_maps("regs", a.regs, b.regs, false); !d.empty()) {
    return d;
  }
  if (auto d = diff_maps("asr", a.asr, b.asr, false); !d.empty()) return d;
  if (auto d = diff_maps("mem", a.mem, b.mem, true); !d.empty()) return d;
  return "";
}

std::string diff_vectors(const TestVector& a, const TestVector& b) {
  if (a.name != b.name) return "name: " + a.name + " vs " + b.name;
  if (a.cfg.nwindows != b.cfg.nwindows || a.cfg.has_mul != b.cfg.has_mul ||
      a.cfg.has_div != b.cfg.has_div || a.cfg.quirk_subx != b.cfg.quirk_subx) {
    return a.name + ": cfg differs";
  }
  if (a.steps != b.steps) return a.name + ": steps differs";
  if (a.code != b.code) return a.name + ": code differs";
  if (auto d = diff_states(a.pre, b.pre); !d.empty()) {
    return a.name + ": pre." + d;
  }
  if (auto d = diff_states(a.post, b.post); !d.empty()) {
    return a.name + ": post." + d;
  }
  if (a.ref.trapped != b.ref.trapped || a.ref.tt != b.ref.tt ||
      a.ref.cycles != b.ref.cycles) {
    return a.name + ": ref differs";
  }
  return "";
}

}  // namespace la::conform
