// Five-leg conformance replay.
//
// Every vector is run against both CPU models with the host fast paths on
// and off, plus the block translation engine:
//
//   iu-slow    cpu::IntegerUnit, host_decode_cache off  (the reference)
//   iu-fast    cpu::IntegerUnit, host_decode_cache on
//   iu-block   cpu::IntegerUnit via run() with host_block_engine on
//   pipe-slow  cpu::LeonPipeline, host_fast_paths off
//   pipe-fast  cpu::LeonPipeline, host_fast_paths on
//
// A leg passes when the full architectural post-state (pc/npc, PSR, Y,
// WIM, TBR, error mode, every register and ASR, the touched memory words)
// and the trap outcome match the vector.  The IntegerUnit legs must also
// reproduce the reference's nominal cycle count — the functional model's
// timing is part of the contract the corpus pins; the pipeline's cycles
// depend on caches and the bus and are deliberately not checked.
#pragma once

#include <string>

#include "conform/vector.hpp"

namespace la::conform {

enum class Leg : u8 { kIuSlow = 0, kIuFast, kPipeSlow, kPipeFast, kIuBlock };

inline constexpr Leg kAllLegs[] = {Leg::kIuSlow, Leg::kIuFast,
                                   Leg::kIuBlock, Leg::kPipeSlow,
                                   Leg::kPipeFast};

/// Stable leg name ("iu-slow", ...), used in reports and `lvec --leg`.
const char* leg_name(Leg leg);

/// Parse a leg name; false on unknown.
bool leg_from_name(const std::string& name, Leg& out);

/// Replay one vector on one leg.  "" on success, else the first
/// divergence: "<case> [<leg>] <field>: <got> vs <want>".
std::string replay_vector(const TestVector& v, Leg leg);

/// Replay on all five legs; first failing leg's report wins.
std::string replay_vector_all(const TestVector& v);

}  // namespace la::conform
