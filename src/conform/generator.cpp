#include "conform/generator.hpp"

#include <cassert>

#include "cpu/flat_memory.hpp"
#include "cpu/integer_unit.hpp"
#include "isa/encode.hpp"

namespace la::conform {

using isa::Cond;
using isa::Instruction;
using isa::Mnemonic;

std::vector<Mnemonic> corpus_mnemonics() {
  std::vector<Mnemonic> v;
  for (u16 i = 1; i < static_cast<u16>(Mnemonic::kCount); ++i) {
    v.push_back(static_cast<Mnemonic>(i));
  }
  return v;
}

std::string corpus_key(Mnemonic mn) {
  switch (mn) {
    case Mnemonic::kRdy: return "rdy";
    case Mnemonic::kRdasr: return "rdasr";
    case Mnemonic::kRdpsr: return "rdpsr";
    case Mnemonic::kRdwim: return "rdwim";
    case Mnemonic::kRdtbr: return "rdtbr";
    case Mnemonic::kWry: return "wry";
    case Mnemonic::kWrasr: return "wrasr";
    case Mnemonic::kWrpsr: return "wrpsr";
    case Mnemonic::kWrwim: return "wrwim";
    case Mnemonic::kWrtbr: return "wrtbr";
    case Mnemonic::kBicc: return "bicc";
    case Mnemonic::kTicc: return "ticc";
    case Mnemonic::kFbfcc: return "fbfcc";
    case Mnemonic::kCbccc: return "cbccc";
    default: return std::string(isa::mnemonic_name(mn));
  }
}

Mnemonic mnemonic_from_key(const std::string& key) {
  for (const Mnemonic mn : corpus_mnemonics()) {
    if (corpus_key(mn) == key) return mn;
  }
  return Mnemonic::kInvalid;
}

u32 flat_index(unsigned nwindows, unsigned cwp, u8 r) {
  assert(r < 32 && cwp < nwindows);
  if (r < 8) return r;
  if (r < 16) return 8 + cwp * 16 + (r - 8u);
  if (r < 24) return 8 + cwp * 16 + 8 + (r - 16u);
  const unsigned next = cwp + 1u == nwindows ? 0u : cwp + 1u;
  return 8 + next * 16 + (r - 24u);
}

namespace {

/// Everything a vector needs before the reference run: the pre-state
/// pieces, the memory prefill, and the code words.  set_reg() resolves
/// window-relative register numbers against the scenario's own CWP.
struct Scenario {
  VecConfig cfg;
  cpu::Psr psr;
  u32 pc = kVecCodeBase;
  u32 npc = kVecCodeBase + 4;
  u32 y = 0;
  u32 wim = 0;
  u32 tbr = kVecTrapBase;
  std::map<u32, u32> regs;  // flat index -> value
  std::map<u32, u32> asr;
  std::map<u32, u32> mem;  // word prefill
  std::vector<std::pair<u32, u32>> code;
  int steps = 1;

  Scenario() {
    psr.s = true;
    psr.et = true;
  }

  void set_reg(u8 r, u32 v) {
    if (r == 0) return;
    regs[flat_index(cfg.nwindows, psr.cwp, r)] = v;
  }

  void emit(u32 word) {
    code.emplace_back(pc + 4 * static_cast<u32>(code.size()), word);
  }
};

/// MemoryPort wrapper that remembers the pre-image of every data word the
/// reference run touches.  Instruction fetches pass through unrecorded —
/// the code words are listed in the vector explicitly.
class RecordingMemory final : public cpu::MemoryPort {
 public:
  explicit RecordingMemory(cpu::FlatMemory& inner) : inner_(inner) {}

  bool read(Addr addr, unsigned size, u64& out) override {
    record(addr, size);
    return inner_.read(addr, size, out);
  }

  bool write(Addr addr, unsigned size, u64 value) override {
    record(addr, size);
    return inner_.write(addr, size, value);
  }

  bool fetch(Addr addr, u32& insn) override {
    return inner_.fetch(addr, insn);
  }

  const std::map<u32, u32>& preimages() const { return preimages_; }

 private:
  void record(Addr addr, unsigned size) {
    for (Addr w = addr & ~Addr{3}; w < addr + size; w += 4) {
      if (preimages_.count(static_cast<u32>(w)) != 0) continue;
      u64 v = 0;
      if (inner_.read(w, 4, v)) {
        preimages_.emplace(static_cast<u32>(w), static_cast<u32>(v));
      }
    }
  }

  cpu::FlatMemory& inner_;
  std::map<u32, u32> preimages_;
};

/// Run the scenario on the IntegerUnit reference and freeze the result.
TestVector build_vector(std::string name, const Scenario& sc) {
  TestVector v;
  v.name = std::move(name);
  v.cfg = sc.cfg;
  v.steps = sc.steps;
  v.code = sc.code;
  v.pre.pc = sc.pc;
  v.pre.npc = sc.npc;
  v.pre.psr = sc.psr.pack();
  v.pre.y = sc.y;
  v.pre.wim = sc.wim;
  v.pre.tbr = sc.tbr;
  for (const auto& [i, val] : sc.regs) {
    if (val != 0) v.pre.regs[i] = val;
  }
  for (const auto& [i, val] : sc.asr) {
    if (val != 0) v.pre.asr[i] = val;
  }

  cpu::FlatMemory flat(kVecMemSize, kVecMemBase);
  for (const auto& [a, w] : sc.mem) flat.write(a, 4, w);
  for (const auto& [a, w] : sc.code) flat.write(a, 4, w);
  RecordingMemory rec(flat);

  cpu::IntegerUnit iu(sc.cfg.cpu_config(false), rec);
  iu.reset(sc.pc);
  apply_state(v.pre, iu.state());
  for (int i = 0; i < sc.steps; ++i) {
    const cpu::StepResult r = iu.step();
    if (r.trapped) {
      v.ref.trapped = true;
      v.ref.tt = r.tt;
    }
  }
  v.ref.cycles = iu.cycle_count();
  v.post = capture_state(iu.state());
  v.pre.mem = rec.preimages();
  for (const auto& [w, unused] : rec.preimages()) {
    (void)unused;
    v.post.mem[w] = flat.word_at(w);
  }
  return v;
}

// --- seeded random scenarios --------------------------------------------

/// Random-but-safe starting point: supervisor, traps enabled, random icc
/// flags / CWP / Y, trap table in place, a few noise registers.
Scenario random_base(Rng& rng) {
  Scenario sc;
  sc.psr.n = rng.chance(0.5);
  sc.psr.z = rng.chance(0.5);
  sc.psr.v = rng.chance(0.5);
  sc.psr.c = rng.chance(0.5);
  sc.psr.ps = rng.chance(0.5);
  sc.psr.pil = static_cast<u8>(rng.below(16));
  sc.psr.cwp = static_cast<u8>(rng.below(sc.cfg.nwindows));
  sc.y = rng.next_u32();
  sc.tbr = kVecTrapBase | (rng.below(256) << 4);
  for (int i = 0; i < 3; ++i) {
    sc.set_reg(static_cast<u8>(rng.below(32)), rng.next_u32());
  }
  return sc;
}

/// Benign delay-slot filler (xor never traps); marks the scenario 2-step.
void emit_slot(Scenario& sc, Rng& rng) {
  const u8 rd = static_cast<u8>(rng.between(1, 7));
  const u8 rs1 = static_cast<u8>(rng.below(8));
  const i32 imm = static_cast<i32>(rng.between(0, 4095)) - 2048;
  sc.emit(isa::encode_arith_ri(Mnemonic::kXor, rd, rs1, imm));
  sc.steps = 2;
}

/// Generic two-operand format-2 case: random rd/rs1 and a random second
/// operand (register or immediate), with the source registers seeded.
void alu_case(Scenario& sc, Rng& rng, Mnemonic mn) {
  Instruction ins;
  ins.mn = mn;
  ins.rd = static_cast<u8>(rng.below(32));
  ins.rs1 = static_cast<u8>(rng.below(32));
  if (rng.chance(0.5)) {
    ins.imm = true;
    ins.simm13 = static_cast<i32>(rng.between(0, 8191)) - 4096;
  } else {
    ins.rs2 = static_cast<u8>(rng.below(32));
    sc.set_reg(ins.rs2, rng.next_u32());
  }
  sc.set_reg(ins.rs1, rng.next_u32());
  sc.emit(isa::encode(ins));
}

constexpr u8 kSafeAsis[] = {0x08, 0x09, 0x0a, 0x0b, 0x1c};  // never 2

/// Integer/atomic memory case: the effective address is constructed into
/// the data region with the access's natural alignment (misalignment and
/// privilege violations are edge cases, not random ones).
void mem_case(Scenario& sc, Rng& rng, Mnemonic mn) {
  const unsigned size = isa::access_size(mn);
  const bool dbl = size == 8;
  const unsigned align = size;

  Instruction ins;
  ins.mn = mn;
  ins.rd = dbl ? static_cast<u8>(rng.below(16) * 2)
               : static_cast<u8>(rng.below(32));
  ins.rs1 = static_cast<u8>(rng.between(1, 31));

  // Stores read rd (and rd|1); seed them before the address registers so
  // an rd == rs1 collision resolves in favour of the address.
  if (isa::is_store(mn)) {
    sc.set_reg(ins.rd, rng.next_u32());
    if (dbl) sc.set_reg(static_cast<u8>(ins.rd | 1), rng.next_u32());
  }

  const u32 span = 0x380;
  const Addr ea = kVecDataBase + rng.below(span / align) * align;

  const bool alt = isa::is_alternate_space(mn);
  if (!alt && rng.chance(0.5)) {
    ins.imm = true;
    const i32 m = static_cast<i32>(4000 / align);
    const i32 off = static_cast<i32>(align) *
                    (static_cast<i32>(rng.between(0, 2 * m)) - m);
    ins.simm13 = off;
    sc.set_reg(ins.rs1, static_cast<u32>(ea) - static_cast<u32>(off));
  } else {
    // Alternate-space ops must use the register form (i=1 decodes as
    // illegal) and an ASI other than 2 (the pipeline's cache-control ASI).
    ins.rs2 = static_cast<u8>(rng.between(1, 31));
    if (ins.rs2 == ins.rs1) ins.rs2 = static_cast<u8>(ins.rs1 % 31 + 1);
    if (alt) ins.asi = kSafeAsis[rng.below(5)];
    const u32 off = rng.next_u32();
    sc.set_reg(ins.rs2, off);
    sc.set_reg(ins.rs1, static_cast<u32>(ea) - off);
  }

  for (Addr w = ea & ~Addr{3}; w < ea + size; w += 4) {
    sc.mem[static_cast<u32>(w)] = rng.next_u32();
  }
  sc.emit(isa::encode(ins));
}

Scenario random_scenario(Mnemonic mn, Rng& rng) {
  Scenario sc = random_base(rng);
  Instruction ins;
  ins.mn = mn;

  switch (mn) {
    case Mnemonic::kCall:
      ins.disp = static_cast<i32>(rng.between(0, 1u << 20)) - (1 << 19);
      sc.emit(isa::encode(ins));
      emit_slot(sc, rng);
      break;

    case Mnemonic::kBicc:
      ins.cond = static_cast<Cond>(rng.below(16));
      ins.annul = rng.chance(0.5);
      ins.disp = static_cast<i32>(rng.between(0, 2047)) - 1024;
      sc.emit(isa::encode(ins));
      emit_slot(sc, rng);
      break;

    case Mnemonic::kFbfcc:
    case Mnemonic::kCbccc:
      // Decoded but trap fp/cp_disabled at execute; no delay slot runs.
      ins.cond = static_cast<Cond>(rng.below(16));
      ins.annul = rng.chance(0.5);
      ins.disp = static_cast<i32>(rng.between(0, 2047)) - 1024;
      sc.emit(isa::encode(ins));
      break;

    case Mnemonic::kUnimp:
      ins.imm22 = rng.next_u32() & 0x3fffffu;
      sc.emit(isa::encode(ins));
      break;

    case Mnemonic::kSethi:
      ins.rd = static_cast<u8>(rng.below(32));
      ins.imm22 = rng.next_u32() & 0x3fffffu;
      sc.emit(isa::encode(ins));
      break;

    case Mnemonic::kJmpl: {
      ins.rd = static_cast<u8>(rng.below(32));
      ins.rs1 = static_cast<u8>(rng.between(1, 31));
      const Addr target = kVecMemBase + rng.below(kVecMemSize / 4) * 4;
      if (rng.chance(0.5)) {
        ins.imm = true;
        ins.simm13 = static_cast<i32>(rng.between(0, 8188)) - 4096;
        ins.simm13 &= ~3;
        sc.set_reg(ins.rs1,
                   static_cast<u32>(target) - static_cast<u32>(ins.simm13));
      } else {
        ins.rs2 = static_cast<u8>(rng.between(1, 31));
        if (ins.rs2 == ins.rs1) ins.rs2 = static_cast<u8>(ins.rs1 % 31 + 1);
        const u32 off = rng.next_u32() & ~3u;
        sc.set_reg(ins.rs2, off);
        sc.set_reg(ins.rs1, static_cast<u32>(target) - off);
      }
      sc.emit(isa::encode(ins));
      emit_slot(sc, rng);
      break;
    }

    case Mnemonic::kRett: {
      // The return-from-trap path: ET must be 0, the next window free.
      sc.psr.et = false;
      sc.psr.ps = rng.chance(0.5);
      sc.wim = 0;
      ins.rs1 = static_cast<u8>(rng.between(1, 31));
      ins.imm = true;
      ins.simm13 = static_cast<i32>(rng.between(0, 2044)) & ~3;
      const Addr target = kVecMemBase + rng.below(kVecMemSize / 4) * 4;
      sc.set_reg(ins.rs1,
                 static_cast<u32>(target) - static_cast<u32>(ins.simm13));
      sc.emit(isa::encode(ins));
      emit_slot(sc, rng);
      break;
    }

    case Mnemonic::kTicc:
      ins.cond = static_cast<Cond>(rng.below(16));
      ins.rs1 = static_cast<u8>(rng.below(32));
      ins.imm = true;
      ins.simm13 = static_cast<i32>(rng.below(128));
      sc.set_reg(ins.rs1, rng.below(64));
      sc.emit(isa::encode(ins));
      break;

    case Mnemonic::kFlush:
      ins.rs1 = static_cast<u8>(rng.below(32));
      ins.imm = true;
      ins.simm13 = static_cast<i32>(rng.between(0, 8191)) - 4096;
      sc.set_reg(ins.rs1, rng.next_u32());
      sc.emit(isa::encode(ins));
      break;

    case Mnemonic::kRdy:
      ins.rd = static_cast<u8>(rng.below(32));
      ins.rs1 = 0;  // rs1 != 0 would be RDASR
      sc.emit(isa::encode(ins));
      break;

    case Mnemonic::kRdasr:
      ins.rd = static_cast<u8>(rng.below(32));
      ins.rs1 = static_cast<u8>(rng.between(1, 31));
      sc.asr[ins.rs1] = rng.next_u32();
      sc.emit(isa::encode(ins));
      break;

    case Mnemonic::kRdpsr:
    case Mnemonic::kRdtbr:
      ins.rd = static_cast<u8>(rng.below(32));
      sc.emit(isa::encode(ins));
      break;

    case Mnemonic::kRdwim:
      ins.rd = static_cast<u8>(rng.below(32));
      sc.wim = rng.next_u32() & 0xffu;  // nwindows=8 mask
      sc.emit(isa::encode(ins));
      break;

    case Mnemonic::kWry:
      ins.rd = 0;  // rd != 0 would be WRASR
      ins.rs1 = static_cast<u8>(rng.below(32));
      ins.imm = rng.chance(0.5);
      if (ins.imm) {
        ins.simm13 = static_cast<i32>(rng.between(0, 8191)) - 4096;
      } else {
        ins.rs2 = static_cast<u8>(rng.below(32));
        sc.set_reg(ins.rs2, rng.next_u32());
      }
      sc.set_reg(ins.rs1, rng.next_u32());
      sc.emit(isa::encode(ins));
      break;

    case Mnemonic::kWrasr:
      ins.rd = static_cast<u8>(rng.between(1, 31));
      ins.rs1 = static_cast<u8>(rng.below(32));
      ins.imm = true;
      ins.simm13 = static_cast<i32>(rng.between(0, 8191)) - 4096;
      sc.set_reg(ins.rs1, rng.next_u32());
      sc.emit(isa::encode(ins));
      break;

    case Mnemonic::kWrpsr: {
      // Operand is rs1 ^ operand2; use b = 0 so the written value is
      // exactly the constructed PSR (CWP kept legal — the illegal-CWP
      // trap is an edge case).
      cpu::Psr p;
      p.n = rng.chance(0.5);
      p.z = rng.chance(0.5);
      p.v = rng.chance(0.5);
      p.c = rng.chance(0.5);
      p.s = rng.chance(0.8);
      p.ps = rng.chance(0.5);
      p.et = rng.chance(0.8);
      p.pil = static_cast<u8>(rng.below(16));
      p.cwp = static_cast<u8>(rng.below(sc.cfg.nwindows));
      ins.rs1 = static_cast<u8>(rng.between(1, 31));
      ins.imm = true;
      ins.simm13 = 0;
      sc.set_reg(ins.rs1, p.pack());
      sc.emit(isa::encode(ins));
      break;
    }

    case Mnemonic::kWrwim:
    case Mnemonic::kWrtbr:
      ins.rs1 = static_cast<u8>(rng.below(32));
      ins.imm = true;
      ins.simm13 = static_cast<i32>(rng.between(0, 8191)) - 4096;
      sc.set_reg(ins.rs1, rng.next_u32());
      sc.emit(isa::encode(ins));
      break;

    case Mnemonic::kSave:
    case Mnemonic::kRestore:
      ins.rd = static_cast<u8>(rng.below(32));
      ins.rs1 = static_cast<u8>(rng.below(32));
      ins.imm = rng.chance(0.5);
      if (ins.imm) {
        ins.simm13 = static_cast<i32>(rng.between(0, 8191)) - 4096;
      } else {
        ins.rs2 = static_cast<u8>(rng.below(32));
        sc.set_reg(ins.rs2, rng.next_u32());
      }
      sc.set_reg(ins.rs1, rng.next_u32());
      // Mostly window-trap-free; a blocked window about 1 time in 4.
      sc.wim = rng.chance(0.25) ? (rng.next_u32() & 0xffu) : 0;
      sc.emit(isa::encode(ins));
      break;

    case Mnemonic::kFpop1:
    case Mnemonic::kFpop2:
    case Mnemonic::kCpop1:
    case Mnemonic::kCpop2:
      ins.rd = static_cast<u8>(rng.below(32));
      ins.rs1 = static_cast<u8>(rng.below(32));
      ins.rs2 = static_cast<u8>(rng.below(32));
      ins.opf = static_cast<u16>(rng.below(512));
      sc.emit(isa::encode(ins));
      break;

    // FP / coprocessor memory ops trap before the address is even formed.
    case Mnemonic::kLdf: case Mnemonic::kLdfsr: case Mnemonic::kLddf:
    case Mnemonic::kStf: case Mnemonic::kStfsr: case Mnemonic::kStdfq:
    case Mnemonic::kStdf:
    case Mnemonic::kLdc: case Mnemonic::kLdcsr: case Mnemonic::kLddc:
    case Mnemonic::kStc: case Mnemonic::kStcsr: case Mnemonic::kStdcq:
    case Mnemonic::kStdc:
      ins.rd = static_cast<u8>(rng.below(32));
      ins.rs1 = static_cast<u8>(rng.below(32));
      ins.imm = true;
      ins.simm13 = static_cast<i32>(rng.between(0, 8191)) - 4096;
      sc.emit(isa::encode(ins));
      break;

    default:
      if (isa::is_load(mn) || isa::is_store(mn)) {
        mem_case(sc, rng, mn);
      } else {
        alu_case(sc, rng, mn);  // the whole format-2 ALU family
      }
      break;
  }
  return sc;
}

// --- edge cases ----------------------------------------------------------

/// Deterministic starting point for the hand-written edges.
Scenario fixed_base() {
  Scenario sc;
  sc.psr.cwp = 3;
  return sc;
}

/// rr-form ALU with operands preloaded into %g1/%g2, result to %g3.
void rr(Scenario& sc, Mnemonic mn, u32 a, u32 b) {
  sc.set_reg(1, a);
  sc.set_reg(2, b);
  sc.emit(isa::encode_arith_rr(mn, 3, 1, 2));
}

/// ri-form ALU with the operand preloaded into %g1.
void ri(Scenario& sc, Mnemonic mn, u32 a, i32 simm) {
  sc.set_reg(1, a);
  sc.emit(isa::encode_arith_ri(mn, 3, 1, simm));
}

/// Memory op with the effective address in %g1 (immediate offset 0).
void memop(Scenario& sc, Mnemonic mn, Addr ea, u8 rd = 6) {
  sc.set_reg(1, static_cast<u32>(ea));
  if (isa::is_alternate_space(mn)) {
    // rs2 = %g0 so the address is %g1 alone; ASI 0x0b (user data).
    sc.emit(isa::encode_mem_rr(mn, rd, 1, 0, 0x0b));
  } else {
    sc.emit(isa::encode_mem_ri(mn, rd, 1, 0));
  }
}

void add_edges(Mnemonic mn, std::vector<TestVector>& out) {
  const std::string k = corpus_key(mn);
  auto add = [&](const char* what, const Scenario& sc) {
    out.push_back(build_vector(k + "/edge_" + what, sc));
  };

  switch (mn) {
    case Mnemonic::kAddcc: {
      Scenario sc = fixed_base();
      rr(sc, mn, 0x7fffffffu, 1);
      add("ovf", sc);
      sc = fixed_base();
      rr(sc, mn, 0xffffffffu, 1);
      add("carry", sc);
      sc = fixed_base();
      rr(sc, mn, 0, 0);
      add("zero", sc);
      break;
    }
    case Mnemonic::kSubcc: {
      Scenario sc = fixed_base();
      rr(sc, mn, 0, 1);
      add("borrow", sc);
      sc = fixed_base();
      rr(sc, mn, 0x80000000u, 1);
      add("ovf", sc);
      break;
    }
    case Mnemonic::kAddx:
    case Mnemonic::kAddxcc: {
      Scenario sc = fixed_base();
      sc.psr.c = true;
      rr(sc, mn, 0xffffffffu, 0);
      add("carry_in", sc);
      break;
    }
    case Mnemonic::kSubx: {
      // The deliberate-fault config axis: the same pre-state with the
      // quirk on must produce a different (carry-dropping) result, and
      // the replay legs must honour the vector's own config.
      Scenario sc = fixed_base();
      sc.psr.c = true;
      rr(sc, mn, 10, 3);
      add("carry_in", sc);
      sc = fixed_base();
      sc.psr.c = true;
      sc.cfg.quirk_subx = true;
      rr(sc, mn, 10, 3);
      add("carry_in_quirk", sc);
      break;
    }
    case Mnemonic::kSubxcc: {
      Scenario sc = fixed_base();
      sc.psr.c = true;
      rr(sc, mn, 0, 0);
      add("carry_in", sc);
      break;
    }
    case Mnemonic::kSll:
    case Mnemonic::kSrl:
    case Mnemonic::kSra: {
      Scenario sc = fixed_base();
      ri(sc, mn, 0x80000001u, 0);
      add("count0", sc);
      sc = fixed_base();
      ri(sc, mn, 0x80000001u, 31);
      add("count31", sc);
      break;
    }
    case Mnemonic::kMulscc: {
      Scenario sc = fixed_base();
      sc.psr.n = true;  // N xor V feeds the shifted-in bit
      sc.y = 0x80000001u;
      rr(sc, mn, 0x12345679u, 0x1000u);
      add("step", sc);
      break;
    }
    case Mnemonic::kUmul:
    case Mnemonic::kUmulcc: {
      Scenario sc = fixed_base();
      rr(sc, mn, 0xffffffffu, 0xffffffffu);
      add("allones", sc);
      sc = fixed_base();
      sc.cfg.has_mul = false;
      rr(sc, mn, 2, 3);
      add("nomul", sc);
      break;
    }
    case Mnemonic::kSmul:
    case Mnemonic::kSmulcc: {
      Scenario sc = fixed_base();
      rr(sc, mn, 0x80000000u, 0x80000000u);
      add("minxmin", sc);
      sc = fixed_base();
      sc.cfg.has_mul = false;
      rr(sc, mn, 2, 3);
      add("nomul", sc);
      break;
    }
    case Mnemonic::kUdiv:
    case Mnemonic::kUdivcc: {
      Scenario sc = fixed_base();
      sc.y = 1;  // dividend 2^32, divisor 1 -> quotient clamps to all-ones
      rr(sc, mn, 0, 1);
      add("clamp", sc);
      sc = fixed_base();
      rr(sc, mn, 5, 0);
      add("dbz", sc);
      sc = fixed_base();
      sc.cfg.has_div = false;
      rr(sc, mn, 6, 3);
      add("nodiv", sc);
      break;
    }
    case Mnemonic::kSdiv:
    case Mnemonic::kSdivcc: {
      // The fuzzer-minimized PR 2 repro: 64-bit dividend INT64_MIN with
      // divisor -1 SIGFPEs a naive host idiv; architecturally the
      // quotient overflows and clamps to 0x7fffffff.
      Scenario sc = fixed_base();
      sc.y = 0x80000000u;
      ri(sc, mn, 0, -1);
      add("int64min_repro", sc);
      sc = fixed_base();
      sc.y = 0xffffffffu;  // dividend -2^32 / 1 clamps negative
      ri(sc, mn, 0, 1);
      add("negclamp", sc);
      sc = fixed_base();
      rr(sc, mn, 5, 0);
      add("dbz", sc);
      sc = fixed_base();
      sc.cfg.has_div = false;
      rr(sc, mn, 6, 3);
      add("nodiv", sc);
      break;
    }
    case Mnemonic::kTaddcc:
    case Mnemonic::kTsubcc: {
      Scenario sc = fixed_base();
      rr(sc, mn, 0x101u, 0x4u);  // tag bits set -> V, no trap
      add("tagged", sc);
      break;
    }
    case Mnemonic::kTaddcctv:
    case Mnemonic::kTsubcctv: {
      Scenario sc = fixed_base();
      rr(sc, mn, 0x101u, 0x4u);  // tag bits set -> tag_overflow trap
      add("trap", sc);
      sc = fixed_base();
      rr(sc, mn, 0x100u, 0x4u);  // clean tags -> executes
      add("clean", sc);
      break;
    }
    case Mnemonic::kUnimp: {
      Scenario sc = fixed_base();
      sc.psr.et = false;  // trap with ET=0 -> error mode
      Instruction ins;
      ins.mn = mn;
      ins.imm22 = 0xbad;
      sc.emit(isa::encode(ins));
      add("et0_error_mode", sc);
      sc = fixed_base();
      sc.psr.cwp = 0;  // trap CWP decrement wraps to nwindows-1
      Instruction ins2;
      ins2.mn = mn;
      ins2.imm22 = 1;
      sc.emit(isa::encode(ins2));
      add("cwp_wrap", sc);
      break;
    }
    case Mnemonic::kSethi: {
      Scenario sc = fixed_base();
      sc.emit(isa::encode_sethi(0, 0));  // canonical NOP
      add("nop", sc);
      break;
    }
    case Mnemonic::kCall: {
      Scenario sc = fixed_base();
      Instruction ins;
      ins.mn = mn;
      ins.disp = -16;
      sc.emit(isa::encode(ins));
      sc.emit(isa::encode_arith_ri(Mnemonic::kXor, 4, 1, 0x155));
      sc.steps = 2;
      add("back", sc);
      break;
    }
    case Mnemonic::kBicc: {
      struct BEdge {
        const char* what;
        Cond cond;
        bool annul;
        bool z;
      };
      const BEdge edges[] = {
          {"ba_annul", Cond::kA, true, false},   // slot annulled
          {"bn_annul", Cond::kN, true, false},   // untaken + annul
          {"taken", Cond::kE, false, true},      // conditional taken
          {"untaken", Cond::kE, false, false},   // falls through
      };
      for (const BEdge& e : edges) {
        Scenario sc = fixed_base();
        sc.psr.z = e.z;
        Instruction ins;
        ins.mn = mn;
        ins.cond = e.cond;
        ins.annul = e.annul;
        ins.disp = 8;
        sc.emit(isa::encode(ins));
        sc.set_reg(1, 0x1111u);
        sc.emit(isa::encode_arith_ri(Mnemonic::kXor, 4, 1, 0x155));
        sc.steps = 2;
        add(e.what, sc);
      }
      break;
    }
    case Mnemonic::kTicc: {
      Scenario sc = fixed_base();
      sc.emit(isa::encode_ticc(Cond::kA, 0, 0x2a));
      add("ta", sc);
      sc = fixed_base();
      sc.emit(isa::encode_ticc(Cond::kN, 0, 0x2a));
      add("tn", sc);
      sc = fixed_base();
      sc.psr.et = false;
      sc.emit(isa::encode_ticc(Cond::kA, 0, 1));
      add("et0_error_mode", sc);
      break;
    }
    case Mnemonic::kJmpl: {
      Scenario sc = fixed_base();
      sc.set_reg(1, kVecDataBase + 2);  // misaligned target
      sc.emit(isa::encode_arith_ri(mn, 15, 1, 0));
      add("misaligned", sc);
      break;
    }
    case Mnemonic::kRett: {
      Scenario sc = fixed_base();  // ET=1 -> illegal trap (vectored)
      sc.set_reg(1, kVecDataBase);
      sc.emit(isa::encode_arith_ri(mn, 0, 1, 0));
      add("et1_illegal", sc);

      sc = fixed_base();  // blocked next window, ET=0 -> error mode
      sc.psr.et = false;
      sc.wim = 1u << ((sc.psr.cwp + 1) % 8);
      sc.set_reg(1, kVecDataBase);
      sc.emit(isa::encode_arith_ri(mn, 0, 1, 0));
      add("underflow_error_mode", sc);

      sc = fixed_base();  // misaligned target, ET=0 -> error mode
      sc.psr.et = false;
      sc.set_reg(1, kVecDataBase + 2);
      sc.emit(isa::encode_arith_ri(mn, 0, 1, 0));
      add("misaligned_error_mode", sc);

      sc = fixed_base();  // return to user mode (PS=0)
      sc.psr.et = false;
      sc.psr.ps = false;
      sc.set_reg(1, kVecDataBase + 0x40);
      sc.emit(isa::encode_arith_ri(mn, 0, 1, 0));
      sc.emit(isa::encode_arith_ri(Mnemonic::kXor, 4, 1, 0x155));
      sc.steps = 2;
      add("to_user", sc);
      break;
    }
    case Mnemonic::kSave: {
      Scenario sc = fixed_base();
      sc.wim = 1u << ((sc.psr.cwp + 8 - 1) % 8);
      rr(sc, mn, 0x100u, 0x20u);
      add("overflow", sc);
      sc = fixed_base();
      sc.cfg.nwindows = 4;
      sc.psr.cwp = 0;  // decrement wraps to window 3
      rr(sc, mn, 0x100u, 0x20u);
      add("nw4_wrap", sc);
      break;
    }
    case Mnemonic::kRestore: {
      Scenario sc = fixed_base();
      sc.wim = 1u << ((sc.psr.cwp + 1) % 8);
      rr(sc, mn, 0x100u, 0x20u);
      add("underflow", sc);
      sc = fixed_base();
      sc.psr.cwp = 7;  // increment wraps to window 0
      rr(sc, mn, 0x100u, 0x20u);
      add("wrap", sc);
      break;
    }
    case Mnemonic::kWrpsr: {
      Scenario sc = fixed_base();
      cpu::Psr bad;
      bad.cwp = 0x1f;  // >= nwindows -> illegal instruction
      sc.set_reg(1, bad.pack());
      sc.emit(isa::encode_arith_ri(mn, 0, 1, 0));
      add("bad_cwp", sc);
      break;
    }
    case Mnemonic::kRdasr: {
      Scenario sc = fixed_base();
      sc.asr[15] = 0xdeadbeefu;
      sc.emit(isa::encode_arith_rr(mn, 0, 15, 0));  // STBAR form
      add("stbar", sc);
      break;
    }
    case Mnemonic::kRdwim: {
      Scenario sc = fixed_base();
      sc.wim = 0xaau;
      sc.emit(isa::encode_arith_rr(mn, 5, 0, 0));
      add("pattern", sc);
      break;
    }
    case Mnemonic::kLd: {
      Scenario sc = fixed_base();
      memop(sc, mn, kVecDataBase + 2);  // misaligned word
      add("misaligned", sc);
      sc = fixed_base();
      sc.psr.et = false;
      memop(sc, mn, kVecDataBase + 2);
      add("misaligned_et0", sc);
      break;
    }
    case Mnemonic::kLduh:
    case Mnemonic::kLdsh:
    case Mnemonic::kSth: {
      Scenario sc = fixed_base();
      sc.set_reg(6, 0xcafe1234u);
      memop(sc, mn, kVecDataBase + 1);  // misaligned half
      add("misaligned", sc);
      break;
    }
    case Mnemonic::kSt: {
      Scenario sc = fixed_base();
      sc.set_reg(6, 0xcafe1234u);
      memop(sc, mn, kVecDataBase + 2);
      add("misaligned", sc);
      break;
    }
    case Mnemonic::kLdd:
    case Mnemonic::kStd: {
      Scenario sc = fixed_base();
      sc.set_reg(6, 0x11111111u);
      sc.set_reg(7, 0x22222222u);
      memop(sc, mn, kVecDataBase + 8, /*rd=*/7);  // odd rd -> illegal
      add("odd_rd", sc);
      sc = fixed_base();
      sc.set_reg(6, 0x11111111u);
      sc.set_reg(7, 0x22222222u);
      memop(sc, mn, kVecDataBase + 4);  // 4-aligned but not 8
      add("misaligned8", sc);
      break;
    }
    case Mnemonic::kSwap: {
      Scenario sc = fixed_base();
      sc.set_reg(6, 0x55aa55aau);
      memop(sc, mn, kVecDataBase + 1);
      add("misaligned", sc);
      break;
    }
    case Mnemonic::kLdstub: {
      Scenario sc = fixed_base();
      sc.mem[kVecDataBase + 0x40] = 0xab000000u;  // old byte 0xab
      memop(sc, mn, kVecDataBase + 0x40);
      add("sets_ff", sc);
      break;
    }
    case Mnemonic::kLda: case Mnemonic::kLduba: case Mnemonic::kLduha:
    case Mnemonic::kLdda: case Mnemonic::kLdsba: case Mnemonic::kLdsha:
    case Mnemonic::kSta: case Mnemonic::kStba: case Mnemonic::kStha:
    case Mnemonic::kStda: case Mnemonic::kLdstuba: case Mnemonic::kSwapa: {
      Scenario sc = fixed_base();
      sc.psr.s = false;  // alternate space from user mode -> privileged
      sc.set_reg(6, 0x12345678u);
      if (isa::access_size(mn) == 8) sc.set_reg(7, 0x9abcdef0u);
      memop(sc, mn, kVecDataBase + 0x10, /*rd=*/6);
      add("user_privileged", sc);
      break;
    }
    case Mnemonic::kFpop1: {
      Scenario sc = fixed_base();
      sc.psr.et = false;
      Instruction ins;
      ins.mn = mn;
      ins.opf = 0x41;
      sc.emit(isa::encode(ins));
      add("et0_error_mode", sc);
      break;
    }
    default:
      break;
  }
}

}  // namespace

CorpusFile generate_corpus(Mnemonic mn, u64 seed, int cases) {
  CorpusFile f;
  f.mnemonic = corpus_key(mn);
  f.seed = seed;
  f.cases = cases;
  // One stream per mnemonic so adding a mnemonic never disturbs the
  // others' cases (file-level determinism, not corpus-level ordering).
  u64 sm = seed ^ (0x9e37u + static_cast<u64>(mn) * 0x10001ull);
  Rng rng(splitmix64(sm));
  for (int i = 0; i < cases; ++i) {
    const Scenario sc = random_scenario(mn, rng);
    f.vectors.push_back(
        build_vector(f.mnemonic + "/r" + std::to_string(i), sc));
  }
  add_edges(mn, f.vectors);
  return f;
}

}  // namespace la::conform
