#include "sasm/srec.hpp"

#include <algorithm>
#include <map>

namespace la::sasm {
namespace {

constexpr char kHex[] = "0123456789ABCDEF";

void put_byte(std::string& s, u8 b, u8& sum) {
  s.push_back(kHex[b >> 4]);
  s.push_back(kHex[b & 0xf]);
  sum = static_cast<u8>(sum + b);
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

}  // namespace

std::string to_srec(const Image& img, std::string_view header,
                    unsigned bytes_per_record) {
  bytes_per_record = std::clamp(bytes_per_record, 1u, 250u);
  std::string out;

  // S0: header record at address 0.
  {
    std::string line = "S0";
    u8 sum = 0;
    const u8 count = static_cast<u8>(2 + 1 + header.size());
    put_byte(line, count, sum);
    put_byte(line, 0, sum);
    put_byte(line, 0, sum);
    for (const char c : header) put_byte(line, static_cast<u8>(c), sum);
    put_byte(line, static_cast<u8>(~sum), sum);
    out += line;
    out += '\n';
  }

  // S3 data records: 4-byte addresses.
  for (std::size_t off = 0; off < img.data.size();
       off += bytes_per_record) {
    const std::size_t n =
        std::min<std::size_t>(bytes_per_record, img.data.size() - off);
    const u32 addr = img.base + static_cast<u32>(off);
    std::string line = "S3";
    u8 sum = 0;
    put_byte(line, static_cast<u8>(4 + n + 1), sum);
    put_byte(line, static_cast<u8>(addr >> 24), sum);
    put_byte(line, static_cast<u8>(addr >> 16), sum);
    put_byte(line, static_cast<u8>(addr >> 8), sum);
    put_byte(line, static_cast<u8>(addr), sum);
    for (std::size_t i = 0; i < n; ++i) put_byte(line, img.data[off + i], sum);
    put_byte(line, static_cast<u8>(~sum), sum);
    out += line;
    out += '\n';
  }

  // S7: 32-bit entry point, terminates the block.
  {
    std::string line = "S7";
    u8 sum = 0;
    put_byte(line, 5, sum);
    put_byte(line, static_cast<u8>(img.entry >> 24), sum);
    put_byte(line, static_cast<u8>(img.entry >> 16), sum);
    put_byte(line, static_cast<u8>(img.entry >> 8), sum);
    put_byte(line, static_cast<u8>(img.entry), sum);
    put_byte(line, static_cast<u8>(~sum), sum);
    out += line;
    out += '\n';
  }
  return out;
}

SrecResult from_srec(std::string_view text) {
  SrecResult res;
  std::map<u32, Bytes> chunks;
  bool have_entry = false;
  u32 entry = 0;
  unsigned line_no = 0;

  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos
                                          : nl - pos);
    ++line_no;
    pos = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.remove_suffix(1);
    }
    if (line.empty()) continue;

    const auto fail = [&](const std::string& what) {
      res.error = "line " + std::to_string(line_no) + ": " + what;
    };

    if (line.size() < 4 || (line[0] != 'S' && line[0] != 's')) {
      fail("not an S-record");
      return res;
    }
    const char type = line[1];
    // Decode hex payload.
    Bytes raw;
    u32 sum = 0;
    if ((line.size() - 2) % 2 != 0) {
      fail("odd hex length");
      return res;
    }
    for (std::size_t i = 2; i + 1 < line.size(); i += 2) {
      const int hi = hex_digit(line[i]);
      const int lo = hex_digit(line[i + 1]);
      if (hi < 0 || lo < 0) {
        fail("bad hex digit");
        return res;
      }
      raw.push_back(static_cast<u8>((hi << 4) | lo));
    }
    if (raw.size() < 3 || raw[0] != raw.size() - 1) {
      fail("byte count mismatch");
      return res;
    }
    for (std::size_t i = 0; i + 1 < raw.size(); ++i) sum += raw[i];
    if (static_cast<u8>(~sum) != raw.back()) {
      fail("checksum mismatch");
      return res;
    }

    unsigned addr_bytes = 0;
    switch (type) {
      case '0': continue;  // header: ignored
      case '1': addr_bytes = 2; break;
      case '2': addr_bytes = 3; break;
      case '3': addr_bytes = 4; break;
      case '5': case '6': continue;  // record counts: ignored
      case '7': addr_bytes = 4; break;
      case '8': addr_bytes = 3; break;
      case '9': addr_bytes = 2; break;
      default:
        fail(std::string("unsupported record type S") + type);
        return res;
    }
    if (raw.size() < 1 + addr_bytes + 1) {
      fail("record too short");
      return res;
    }
    u32 addr = 0;
    for (unsigned i = 0; i < addr_bytes; ++i) addr = (addr << 8) | raw[1 + i];

    if (type == '7' || type == '8' || type == '9') {
      have_entry = true;
      entry = addr;
      continue;
    }
    Bytes data(raw.begin() + 1 + addr_bytes, raw.end() - 1);
    if (!data.empty()) chunks[addr] = std::move(data);
  }

  if (chunks.empty()) {
    res.error = "no data records";
    return res;
  }
  const u32 base = chunks.begin()->first;
  u64 end = base;
  for (const auto& [addr, data] : chunks) {
    end = std::max<u64>(end, u64{addr} + data.size());
  }
  if (end - base > (64u << 20)) {
    res.error = "image span exceeds 64 MiB";
    return res;
  }
  res.image.base = base;
  res.image.data.assign(end - base, 0);
  for (const auto& [addr, data] : chunks) {
    std::copy(data.begin(), data.end(),
              res.image.data.begin() + (addr - base));
  }
  res.image.entry = have_entry ? entry : base;
  res.ok = true;
  return res;
}

}  // namespace la::sasm
