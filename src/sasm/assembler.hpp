// Two-pass SPARC V8 assembler.
//
// Dialect: a practical subset of GNU as SPARC syntax —
//   * labels (`loop:`), `name = expr`, and `.equ name, expr`
//   * directives: .org .align .word .half .byte .ascii .asciz .skip
//     .global (no-op) .text/.data/.section (no-op) .set/.equ
//   * full integer instruction set with `%hi(...)`/`%lo(...)` operands
//   * synthetic instructions: nop set mov cmp tst clr inc dec not neg
//     btst bset bclr btog jmp ret retl plus bare save/restore
//   * `!` and `#` comments, `;` statement separators
//
// Programs (the paper's kernels, trap handlers, boot code) are written in
// this dialect; the assembler emits the big-endian image the control
// software ships to the FPX in "Load program" UDP packets.
#pragma once

#include <string_view>

#include "sasm/image.hpp"

namespace la::sasm {

class Assembler {
 public:
  /// Assemble a complete source text.  Never throws; syntax and semantic
  /// problems are returned as diagnostics with line numbers.
  AsmResult assemble(std::string_view source);
};

/// Convenience wrapper that throws std::runtime_error with the collected
/// diagnostics on failure — for tests and examples where the source is
/// known-good.
Image assemble_or_throw(std::string_view source);

}  // namespace la::sasm
