#include "sasm/assembler.hpp"

#include <cassert>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bits.hpp"
#include "isa/encode.hpp"
#include "isa/isa.hpp"
#include "sasm/lexer.hpp"

namespace la::sasm {

using isa::Cond;
using isa::Mnemonic;

namespace {

/// A parse/encode failure inside one statement.
struct StmtError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] void fail(const std::string& what) { throw StmtError(what); }

std::optional<Cond> cond_from_suffix(std::string_view s) {
  if (s.empty() || s == "a") return Cond::kA;  // "b" and "ba"
  if (s == "n") return Cond::kN;
  if (s == "ne" || s == "nz") return Cond::kNe;
  if (s == "e" || s == "z" || s == "eq") return Cond::kE;
  if (s == "g" || s == "gt") return Cond::kG;
  if (s == "le") return Cond::kLe;
  if (s == "ge") return Cond::kGe;
  if (s == "l" || s == "lt") return Cond::kL;
  if (s == "gu") return Cond::kGu;
  if (s == "leu") return Cond::kLeu;
  if (s == "cc" || s == "geu") return Cond::kCc;
  if (s == "cs" || s == "lu") return Cond::kCs;
  if (s == "pos") return Cond::kPos;
  if (s == "neg") return Cond::kNeg;
  if (s == "vc") return Cond::kVc;
  if (s == "vs") return Cond::kVs;
  return std::nullopt;
}

/// Three-operand register/imm instructions: name -> mnemonic.
const std::map<std::string_view, Mnemonic> kArith3 = {
    {"add", Mnemonic::kAdd},         {"addcc", Mnemonic::kAddcc},
    {"addx", Mnemonic::kAddx},       {"addxcc", Mnemonic::kAddxcc},
    {"sub", Mnemonic::kSub},         {"subcc", Mnemonic::kSubcc},
    {"subx", Mnemonic::kSubx},       {"subxcc", Mnemonic::kSubxcc},
    {"and", Mnemonic::kAnd},         {"andcc", Mnemonic::kAndcc},
    {"andn", Mnemonic::kAndn},       {"andncc", Mnemonic::kAndncc},
    {"or", Mnemonic::kOr},           {"orcc", Mnemonic::kOrcc},
    {"orn", Mnemonic::kOrn},         {"orncc", Mnemonic::kOrncc},
    {"xor", Mnemonic::kXor},         {"xorcc", Mnemonic::kXorcc},
    {"xnor", Mnemonic::kXnor},       {"xnorcc", Mnemonic::kXnorcc},
    {"sll", Mnemonic::kSll},         {"srl", Mnemonic::kSrl},
    {"sra", Mnemonic::kSra},         {"taddcc", Mnemonic::kTaddcc},
    {"taddcctv", Mnemonic::kTaddcctv}, {"tsubcc", Mnemonic::kTsubcc},
    {"tsubcctv", Mnemonic::kTsubcctv}, {"mulscc", Mnemonic::kMulscc},
    {"umul", Mnemonic::kUmul},       {"umulcc", Mnemonic::kUmulcc},
    {"smul", Mnemonic::kSmul},       {"smulcc", Mnemonic::kSmulcc},
    {"udiv", Mnemonic::kUdiv},       {"udivcc", Mnemonic::kUdivcc},
    {"sdiv", Mnemonic::kSdiv},       {"sdivcc", Mnemonic::kSdivcc},
    {"save", Mnemonic::kSave},       {"restore", Mnemonic::kRestore},
};

const std::map<std::string_view, Mnemonic> kLoads = {
    {"ld", Mnemonic::kLd},       {"ldub", Mnemonic::kLdub},
    {"lduh", Mnemonic::kLduh},   {"ldd", Mnemonic::kLdd},
    {"ldsb", Mnemonic::kLdsb},   {"ldsh", Mnemonic::kLdsh},
    {"lda", Mnemonic::kLda},     {"lduba", Mnemonic::kLduba},
    {"lduha", Mnemonic::kLduha}, {"ldda", Mnemonic::kLdda},
    {"ldsba", Mnemonic::kLdsba}, {"ldsha", Mnemonic::kLdsha},
    {"ldstub", Mnemonic::kLdstub}, {"ldstuba", Mnemonic::kLdstuba},
    {"swap", Mnemonic::kSwap},   {"swapa", Mnemonic::kSwapa},
};

const std::map<std::string_view, Mnemonic> kStores = {
    {"st", Mnemonic::kSt},   {"stb", Mnemonic::kStb},
    {"sth", Mnemonic::kSth}, {"std", Mnemonic::kStd},
    {"sta", Mnemonic::kSta}, {"stba", Mnemonic::kStba},
    {"stha", Mnemonic::kStha}, {"stda", Mnemonic::kStda},
};

}  // namespace

/// Assembler implementation: pass 1 sizes statements and collects labels;
/// pass 2 re-parses each statement with the full symbol table and emits.
class AssemblerImpl {
 public:
  AsmResult run(std::string_view source) {
    split_statements(source);

    // ---- Pass 1: sizes & labels ----
    pass_ = 1;
    Addr loc = 0;
    bool org_seen = false;
    for (auto& st : stmts_) {
      loc_ = loc;
      try {
        st.addr = loc;
        st.size = statement_size(st);
        if (st.is_org) {
          loc = st.org_value;
          if (!org_seen || loc < base_) base_ = loc;
          org_seen = true;
          st.addr = loc;
        } else {
          if (!org_seen && st.size > 0) {
            base_ = loc;
            org_seen = true;
          }
          st.addr = loc;
          define_pending_labels(st, loc);
          loc += st.size;
        }
        if (st.is_org) define_pending_labels(st, loc);
      } catch (const StmtError& e) {
        error(st.line, e.what());
        st.broken = true;
      }
    }
    if (!org_seen) base_ = 0;

    // ---- Pass 2: encode & emit ----
    if (errors_.empty()) {
      pass_ = 2;
      for (auto& st : stmts_) {
        if (st.broken) continue;
        loc_ = st.addr;
        try {
          emit_statement(st);
        } catch (const StmtError& e) {
          error(st.line, e.what());
        }
      }
    }

    AsmResult res;
    res.errors = std::move(errors_);
    res.ok = res.errors.empty();
    if (res.ok) {
      res.image.base = base_;
      res.image.data = std::move(out_);
      res.image.symbols.insert(symbols_.begin(), symbols_.end());
      const auto it = symbols_.find("_start");
      res.image.entry = (it != symbols_.end()) ? it->second : base_;
    }
    return res;
  }

 private:
  struct Stmt {
    unsigned line = 1;
    std::vector<Token> toks;
    std::vector<std::string> labels;  // labels defined at this statement
    Addr addr = 0;
    u32 size = 0;
    bool is_org = false;
    u32 org_value = 0;
    bool broken = false;
  };

  // ---- Statement splitting -----------------------------------------------

  void split_statements(std::string_view source) {
    unsigned line_no = 1;
    std::size_t pos = 0;
    while (pos <= source.size()) {
      const std::size_t nl = source.find('\n', pos);
      std::string_view line = source.substr(
          pos, nl == std::string_view::npos ? std::string_view::npos
                                            : nl - pos);
      // Split on ';' outside comments/strings (good enough: stop at ! / #).
      std::size_t start = 0;
      bool in_str = false;
      bool in_comment = false;
      for (std::size_t i = 0; i <= line.size(); ++i) {
        const bool end = i == line.size();
        if (!end) {
          const char c = line[i];
          if (c == '"' && !in_comment) in_str = !in_str;
          if ((c == '!' || c == '#') && !in_str) in_comment = true;
        }
        if (end || (line[i] == ';' && !in_str && !in_comment)) {
          add_statement(line.substr(start, i - start), line_no);
          start = i + 1;
        }
      }
      if (nl == std::string_view::npos) break;
      pos = nl + 1;
      ++line_no;
    }
  }

  void add_statement(std::string_view text, unsigned line_no) {
    Stmt st;
    st.line = line_no;
    try {
      st.toks = tokenize(text);
    } catch (const std::exception& e) {
      error(line_no, e.what());
      return;
    }
    // Peel leading labels: IDENT ':'
    std::size_t k = 0;
    while (k + 1 < st.toks.size() && st.toks[k].kind == TokKind::kIdent &&
           st.toks[k + 1].kind == TokKind::kPunct &&
           st.toks[k + 1].text == ":") {
      st.labels.push_back(st.toks[k].text);
      k += 2;
    }
    st.toks.erase(st.toks.begin(),
                  st.toks.begin() + static_cast<std::ptrdiff_t>(k));
    if (st.toks.size() == 1 && st.labels.empty()) return;  // blank
    stmts_.push_back(std::move(st));
  }

  void define_pending_labels(const Stmt& st, Addr at) {
    for (const auto& l : st.labels) {
      if (symbols_.count(l)) {
        fail("label '" + l + "' redefined");
      }
      symbols_[l] = at;
    }
  }

  // ---- Token cursor -------------------------------------------------------

  const Token& peek() const { return cur_->toks[ti_]; }
  const Token& next() { return cur_->toks[ti_++]; }
  bool at_end() const { return peek().kind == TokKind::kEnd; }

  bool accept_punct(char c) {
    if (peek().kind == TokKind::kPunct && peek().text[0] == c) {
      ++ti_;
      return true;
    }
    return false;
  }
  void expect_punct(char c) {
    if (!accept_punct(c)) {
      fail(std::string("expected '") + c + "', got '" + peek().text + "'");
    }
  }
  void expect_end() {
    if (!at_end()) fail("trailing tokens: '" + peek().text + "'");
  }
  u8 expect_reg() {
    if (peek().kind != TokKind::kReg) {
      fail("expected register, got '" + peek().text + "'");
    }
    return static_cast<u8>(next().value);
  }
  std::string expect_ident() {
    if (peek().kind != TokKind::kIdent) {
      fail("expected identifier, got '" + peek().text + "'");
    }
    return next().text;
  }

  // ---- Expressions --------------------------------------------------------

  u32 sym_value(const std::string& name) {
    if (name == ".") return loc_;
    const auto it = symbols_.find(name);
    if (it == symbols_.end()) {
      if (pass_ == 1) {
        fail("symbol '" + name +
             "' must be defined before use in this context");
      }
      fail("undefined symbol '" + name + "'");
    }
    return it->second;
  }

  u32 parse_expr() { return parse_sum(); }

  u32 parse_sum() {
    u32 v = parse_term();
    while (true) {
      if (accept_punct('+')) v += parse_term();
      else if (accept_punct('-')) v -= parse_term();
      else return v;
    }
  }

  u32 parse_term() {
    u32 v = parse_factor();
    while (true) {
      if (accept_punct('*')) v *= parse_factor();
      else if (accept_punct('/')) {
        const u32 d = parse_factor();
        if (d == 0) fail("division by zero in expression");
        v /= d;
      } else {
        return v;
      }
    }
  }

  u32 parse_factor() {
    if (accept_punct('-')) return 0u - parse_factor();
    if (accept_punct('+')) return parse_factor();
    if (accept_punct('(')) {
      const u32 v = parse_sum();
      expect_punct(')');
      return v;
    }
    if (peek().kind == TokKind::kInt) return next().value;
    if (peek().kind == TokKind::kHiLo) {
      const bool hi = next().text == "hi";
      expect_punct('(');
      const u32 v = parse_sum();
      expect_punct(')');
      return hi ? (v >> 10) : (v & 0x3ffu);
    }
    if (peek().kind == TokKind::kIdent) return sym_value(next().text);
    fail("expected expression, got '" + peek().text + "'");
  }

  // Lookahead: does an expression start here (vs a register)?
  bool expr_ahead() const {
    switch (peek().kind) {
      case TokKind::kInt:
      case TokKind::kIdent:
      case TokKind::kHiLo:
        return true;
      case TokKind::kPunct: {
        const char c = peek().text[0];
        return c == '-' || c == '+' || c == '(';
      }
      default:
        return false;
    }
  }

  i32 parse_simm13() {
    const u32 v = parse_expr();
    const i32 s = static_cast<i32>(v);
    if (s < -4096 || s > 4095) {
      // %hi/%lo produce small positives; anything else must fit simm13.
      fail("immediate " + std::to_string(s) + " does not fit in simm13");
    }
    return s;
  }

  // reg_or_imm: either a register (imm=false) or simm13 expression.
  struct Op2 {
    bool imm = false;
    u8 rs2 = 0;
    i32 simm13 = 0;
  };

  Op2 parse_op2() {
    Op2 o;
    if (peek().kind == TokKind::kReg) {
      o.rs2 = expect_reg();
    } else {
      o.imm = true;
      o.simm13 = parse_simm13();
    }
    return o;
  }

  // Address operand without brackets: `reg`, `reg + reg`, `reg +/- imm`,
  // or a bare expression (encoded as %g0 + simm13).
  struct AddrOp {
    u8 rs1 = 0;
    Op2 op2;
  };

  AddrOp parse_addr_body() {
    AddrOp a;
    if (peek().kind == TokKind::kReg) {
      a.rs1 = expect_reg();
      if (accept_punct('+')) {
        if (peek().kind == TokKind::kReg) {
          a.op2.rs2 = expect_reg();
        } else {
          a.op2.imm = true;
          a.op2.simm13 = parse_simm13();
        }
      } else if (accept_punct('-')) {
        a.op2.imm = true;
        const i32 v = parse_simm13();
        if (-v < -4096) fail("negated offset does not fit in simm13");
        a.op2.simm13 = -v;
      } else {
        // Bare register: encode as reg + %g0 (not imm 0) — both are
        // architecturally identical; pick the register form like gas.
        a.op2.imm = false;
        a.op2.rs2 = 0;
      }
    } else {
      a.rs1 = 0;  // %g0
      a.op2.imm = true;
      a.op2.simm13 = parse_simm13();
    }
    return a;
  }

  AddrOp parse_bracket_addr() {
    expect_punct('[');
    AddrOp a = parse_addr_body();
    expect_punct(']');
    return a;
  }

  // ---- Emission -----------------------------------------------------------

  // A runaway .org/.skip would otherwise materialize a multi-gigabyte
  // gap-filled image; 64 MiB comfortably covers every real target.
  static constexpr u64 kMaxImageBytes = 64u << 20;

  void put_byte_at(Addr addr, u8 v) {
    if (addr < base_) fail("emission below image base (internal)");
    const std::size_t off = addr - base_;
    if (off >= kMaxImageBytes) {
      fail("image span exceeds " + std::to_string(kMaxImageBytes >> 20) +
           " MiB (runaway .org/.skip?)");
    }
    if (off >= out_.size()) out_.resize(off + 1, 0);
    out_[off] = v;
  }

  void emit_word(u32 w) {
    put_byte_at(loc_, static_cast<u8>(w >> 24));
    put_byte_at(loc_ + 1, static_cast<u8>(w >> 16));
    put_byte_at(loc_ + 2, static_cast<u8>(w >> 8));
    put_byte_at(loc_ + 3, static_cast<u8>(w));
    loc_ += 4;
  }

  void emit_half(u16 h) {
    put_byte_at(loc_, static_cast<u8>(h >> 8));
    put_byte_at(loc_ + 1, static_cast<u8>(h));
    loc_ += 2;
  }

  void emit_byte(u8 b) {
    put_byte_at(loc_, b);
    loc_ += 1;
  }

  /// Bulk fill for .skip/.align (a byte-at-a-time loop is quadratic-ish
  /// for large regions).
  void emit_fill(u32 n, u8 fill) {
    if (n == 0) return;
    put_byte_at(loc_ + n - 1, fill);  // bounds-check + single resize
    std::fill(out_.begin() + static_cast<std::ptrdiff_t>(loc_ - base_),
              out_.begin() + static_cast<std::ptrdiff_t>(loc_ - base_ + n),
              fill);
    loc_ += n;
  }

  // ---- Pass 1: statement size --------------------------------------------

  u32 statement_size(Stmt& st) {
    cur_ = &st;
    ti_ = 0;
    if (at_end()) return 0;

    if (peek().kind != TokKind::kIdent) {
      fail("expected directive or mnemonic, got '" + peek().text + "'");
    }
    const std::string head = peek().text;

    // name = expr
    if (cur_->toks.size() > 1 && cur_->toks[1].kind == TokKind::kPunct &&
        cur_->toks[1].text == "=") {
      next();  // name
      next();  // '='
      const u32 v = parse_expr();
      expect_end();
      if (symbols_.count(head)) fail("symbol '" + head + "' redefined");
      symbols_[head] = v;
      return 0;
    }

    if (head[0] == '.') {
      next();
      return directive_size(head);
    }

    next();
    // `set` expands to sethi + or: always 8 bytes for deterministic sizing.
    if (head == "set") return 8;
    return 4;  // every real instruction is one word
  }

  u32 directive_size(const std::string& d) {
    if (d == ".org") {
      cur_->is_org = true;
      cur_->org_value = parse_expr();
      expect_end();
      return 0;
    }
    if (d == ".align") {
      const u32 a = parse_expr();
      expect_end();
      if (!is_pow2(a)) fail(".align requires a power of two");
      const Addr aligned = static_cast<Addr>(align_up(loc_, a));
      return aligned - loc_;
    }
    if (d == ".word") return 4 * count_expr_list();
    if (d == ".half" || d == ".short") return 2 * count_expr_list();
    if (d == ".byte") return count_expr_list();
    if (d == ".ascii" || d == ".asciz") {
      if (peek().kind != TokKind::kString) fail(d + " expects a string");
      const u32 n = static_cast<u32>(next().text.size());
      expect_end();
      return n + (d == ".asciz" ? 1 : 0);
    }
    if (d == ".skip" || d == ".space") {
      const u32 n = parse_expr();
      if (accept_punct(',')) parse_expr();
      expect_end();
      return n;
    }
    if (d == ".equ" || d == ".set") {
      const std::string name = expect_ident();
      expect_punct(',');
      const u32 v = parse_expr();
      expect_end();
      if (symbols_.count(name)) fail("symbol '" + name + "' redefined");
      symbols_[name] = v;
      return 0;
    }
    if (d == ".global" || d == ".globl") {
      expect_ident();
      expect_end();
      return 0;
    }
    if (d == ".text" || d == ".data" || d == ".section") {
      // Single flat image: section switching is accepted and ignored.
      while (!at_end()) next();
      return 0;
    }
    fail("unknown directive '" + d + "'");
  }

  /// Count a comma-separated expression list without evaluating symbols
  /// (forward references are fine for data words).
  u32 count_expr_list() {
    u32 n = 1;
    int depth = 0;
    while (!at_end()) {
      const Token& t = next();
      if (t.kind == TokKind::kPunct) {
        if (t.text == "(") ++depth;
        else if (t.text == ")") --depth;
        else if (t.text == "," && depth == 0) ++n;
      }
    }
    return n;
  }

  // ---- Pass 2: emit -------------------------------------------------------

  void emit_statement(Stmt& st) {
    cur_ = &st;
    ti_ = 0;
    loc_ = st.addr;
    if (at_end()) return;

    const std::string head = peek().text;

    if (cur_->toks.size() > 1 && cur_->toks[1].kind == TokKind::kPunct &&
        cur_->toks[1].text == "=") {
      return;  // handled in pass 1
    }
    if (head[0] == '.') {
      next();
      emit_directive(head, st);
      return;
    }
    next();
    emit_instruction(head, st);
    expect_end();
  }

  void emit_directive(const std::string& d, const Stmt& st) {
    if (d == ".org" || d == ".equ" || d == ".set" || d == ".global" ||
        d == ".globl" || d == ".text" || d == ".data" || d == ".section") {
      return;  // no bytes
    }
    if (d == ".align") {
      emit_fill(st.size, 0);
      return;
    }
    if (d == ".word") {
      do { emit_word(parse_expr()); } while (accept_punct(','));
      expect_end();
      return;
    }
    if (d == ".half" || d == ".short") {
      do {
        const u32 v = parse_expr();
        if (v > 0xffff && v < 0xffff8000u) fail(".half value out of range");
        emit_half(static_cast<u16>(v));
      } while (accept_punct(','));
      expect_end();
      return;
    }
    if (d == ".byte") {
      do {
        const u32 v = parse_expr();
        if (v > 0xff && v < 0xffffff80u) fail(".byte value out of range");
        emit_byte(static_cast<u8>(v));
      } while (accept_punct(','));
      expect_end();
      return;
    }
    if (d == ".ascii" || d == ".asciz") {
      const std::string s = next().text;
      for (char c : s) emit_byte(static_cast<u8>(c));
      if (d == ".asciz") emit_byte(0);
      expect_end();
      return;
    }
    if (d == ".skip" || d == ".space") {
      const u32 n = parse_expr();
      u32 fill = 0;
      if (accept_punct(',')) fill = parse_expr();
      emit_fill(n, static_cast<u8>(fill));
      expect_end();
      return;
    }
    fail("unknown directive '" + d + "'");
  }

  // Branch / call target -> word displacement from the current statement.
  // Displacements are PC-relative modulo 2^32 (the hardware adds disp*4
  // with wraparound), so a 30-bit call reaches every word in the address
  // space; only the 22-bit branch forms can be out of range.
  i32 branch_disp(u32 target, unsigned bits_avail) {
    if (target & 3u) fail("branch target is not word-aligned");
    const i32 words = static_cast<i32>(target - loc_) >> 2;
    if (bits_avail < 30) {
      const i32 lim = i32{1} << (bits_avail - 1);
      if (words < -lim || words >= lim) fail("branch target out of range");
    }
    return words;
  }

  u32 enc_arith(Mnemonic m, u8 rd, u8 rs1, const Op2& o) {
    return o.imm ? isa::encode_arith_ri(m, rd, rs1, o.simm13)
                 : isa::encode_arith_rr(m, rd, rs1, o.rs2);
  }

  void emit_instruction(const std::string& name, const Stmt&) {
    // --- three-operand ALU group ---
    if (const auto it = kArith3.find(name); it != kArith3.end()) {
      // Bare `save` / `restore` (no operands).
      if ((it->second == Mnemonic::kSave ||
           it->second == Mnemonic::kRestore) &&
          at_end()) {
        emit_word(isa::encode_arith_rr(it->second, 0, 0, 0));
        return;
      }
      const u8 rs1 = expect_reg();
      expect_punct(',');
      const Op2 o = parse_op2();
      expect_punct(',');
      const u8 rd = expect_reg();
      emit_word(enc_arith(it->second, rd, rs1, o));
      return;
    }

    // --- loads & atomics ---
    if (const auto it = kLoads.find(name); it != kLoads.end()) {
      const AddrOp a = parse_bracket_addr();
      u8 asi = 0;
      if (isa::is_alternate_space(it->second)) {
        if (a.op2.imm) fail("alternate-space ops need register+register");
        asi = static_cast<u8>(parse_expr());
      }
      expect_punct(',');
      const u8 rd = expect_reg();
      if (a.op2.imm) {
        emit_word(isa::encode_mem_ri(it->second, rd, a.rs1, a.op2.simm13));
      } else {
        emit_word(isa::encode_mem_rr(it->second, rd, a.rs1, a.op2.rs2, asi));
      }
      return;
    }

    // --- stores ---
    if (const auto it = kStores.find(name); it != kStores.end()) {
      const u8 rd = expect_reg();
      expect_punct(',');
      const AddrOp a = parse_bracket_addr();
      u8 asi = 0;
      if (isa::is_alternate_space(it->second)) {
        if (a.op2.imm) fail("alternate-space ops need register+register");
        asi = static_cast<u8>(parse_expr());
      }
      if (a.op2.imm) {
        emit_word(isa::encode_mem_ri(it->second, rd, a.rs1, a.op2.simm13));
      } else {
        emit_word(isa::encode_mem_rr(it->second, rd, a.rs1, a.op2.rs2, asi));
      }
      return;
    }

    // --- branches: b<cond>[,a] target ---
    if (name.size() >= 1 && name[0] == 'b') {
      if (const auto c = cond_from_suffix(std::string_view(name).substr(1))) {
        bool annul = false;
        if (accept_punct(',')) {
          const std::string a = expect_ident();
          if (a != "a") fail("expected ',a' annul suffix");
          annul = true;
        }
        const u32 target = parse_expr();
        emit_word(isa::encode_branch(*c, annul, branch_disp(target, 22)));
        return;
      }
    }

    // --- trap-on-condition: t<cond> number | reg | reg + operand ---
    if (name.size() >= 2 && name[0] == 't') {
      if (const auto c = cond_from_suffix(std::string_view(name).substr(1))) {
        const AddrOp a = parse_addr_body();
        if (a.op2.imm && a.rs1 == 0 &&
            (a.op2.simm13 < 0 || a.op2.simm13 > 127)) {
          fail("software trap number must be 0..127");
        }
        isa::Instruction ins;
        ins.mn = Mnemonic::kTicc;
        ins.cond = *c;
        ins.rs1 = a.rs1;
        ins.imm = a.op2.imm;
        ins.simm13 = a.op2.simm13 & 0x7f;
        ins.rs2 = a.op2.rs2;
        emit_word(isa::encode(ins));
        return;
      }
    }

    // --- everything else ---
    if (name == "call") {
      const u32 target = parse_expr();
      emit_word(isa::encode_call(branch_disp(target, 30)));
      return;
    }
    if (name == "jmp") {
      const AddrOp a = parse_addr_body();
      emit_word(a.op2.imm
                    ? isa::encode_arith_ri(Mnemonic::kJmpl, 0, a.rs1,
                                           a.op2.simm13)
                    : isa::encode_arith_rr(Mnemonic::kJmpl, 0, a.rs1,
                                           a.op2.rs2));
      return;
    }
    if (name == "jmpl") {
      const AddrOp a = parse_addr_body();
      expect_punct(',');
      const u8 rd = expect_reg();
      emit_word(a.op2.imm
                    ? isa::encode_arith_ri(Mnemonic::kJmpl, rd, a.rs1,
                                           a.op2.simm13)
                    : isa::encode_arith_rr(Mnemonic::kJmpl, rd, a.rs1,
                                           a.op2.rs2));
      return;
    }
    if (name == "ret") {  // jmpl %i7 + 8, %g0
      emit_word(isa::encode_arith_ri(Mnemonic::kJmpl, 0, 31, 8));
      return;
    }
    if (name == "retl") {  // jmpl %o7 + 8, %g0
      emit_word(isa::encode_arith_ri(Mnemonic::kJmpl, 0, 15, 8));
      return;
    }
    if (name == "rett") {
      const AddrOp a = parse_addr_body();
      emit_word(a.op2.imm
                    ? isa::encode_arith_ri(Mnemonic::kRett, 0, a.rs1,
                                           a.op2.simm13)
                    : isa::encode_arith_rr(Mnemonic::kRett, 0, a.rs1,
                                           a.op2.rs2));
      return;
    }
    if (name == "flush") {
      const AddrOp a = (peek().kind == TokKind::kPunct &&
                        peek().text == "[")
                           ? parse_bracket_addr()
                           : parse_addr_body();
      emit_word(a.op2.imm
                    ? isa::encode_arith_ri(Mnemonic::kFlush, 0, a.rs1,
                                           a.op2.simm13)
                    : isa::encode_arith_rr(Mnemonic::kFlush, 0, a.rs1,
                                           a.op2.rs2));
      return;
    }
    if (name == "sethi") {
      u32 imm22;
      if (peek().kind == TokKind::kHiLo) {
        if (peek().text != "hi") fail("sethi expects %hi(...)");
        next();
        expect_punct('(');
        imm22 = parse_sum() >> 10;
        expect_punct(')');
      } else {
        imm22 = parse_expr();
        if (imm22 > 0x3fffff) fail("sethi constant exceeds 22 bits");
      }
      expect_punct(',');
      const u8 rd = expect_reg();
      emit_word(isa::encode_sethi(rd, imm22));
      return;
    }
    if (name == "rd") {
      if (peek().kind != TokKind::kSpecial) {
        fail("rd expects %y/%psr/%wim/%tbr/%asrN");
      }
      const Token sp = next();
      expect_punct(',');
      const u8 rd = expect_reg();
      if (sp.text == "y") {
        emit_word(isa::encode_arith_rr(Mnemonic::kRdy, rd, 0, 0));
      } else if (sp.text == "psr") {
        emit_word(isa::encode_arith_rr(Mnemonic::kRdpsr, rd, 0, 0));
      } else if (sp.text == "wim") {
        emit_word(isa::encode_arith_rr(Mnemonic::kRdwim, rd, 0, 0));
      } else if (sp.text == "tbr") {
        emit_word(isa::encode_arith_rr(Mnemonic::kRdtbr, rd, 0, 0));
      } else if (sp.text == "asr") {
        emit_word(isa::encode_arith_rr(Mnemonic::kRdasr, rd,
                                       static_cast<u8>(sp.value), 0));
      } else {
        fail("cannot rd from %" + sp.text);
      }
      return;
    }
    if (name == "wr") {
      const u8 rs1 = expect_reg();
      expect_punct(',');
      // Either `wr rs1, %y` or `wr rs1, op2, %y`.
      Op2 o;
      if (peek().kind != TokKind::kSpecial) {
        o = parse_op2();
        expect_punct(',');
      }
      if (peek().kind != TokKind::kSpecial) {
        fail("wr expects a special register destination");
      }
      const Token sp = next();
      Mnemonic m;
      u8 rd = 0;
      if (sp.text == "y") m = Mnemonic::kWry;
      else if (sp.text == "psr") m = Mnemonic::kWrpsr;
      else if (sp.text == "wim") m = Mnemonic::kWrwim;
      else if (sp.text == "tbr") m = Mnemonic::kWrtbr;
      else if (sp.text == "asr") { m = Mnemonic::kWrasr; rd = static_cast<u8>(sp.value); }
      else fail("cannot wr to %" + sp.text);
      emit_word(o.imm ? isa::encode_arith_ri(m, rd, rs1, o.simm13)
                      : isa::encode_arith_rr(m, rd, rs1, o.rs2));
      return;
    }
    if (name == "unimp") {
      u32 v = 0;
      if (!at_end()) v = parse_expr();
      if (v > 0x3fffff) fail("unimp constant exceeds 22 bits");
      emit_word(v);
      return;
    }

    // --- synthetic instructions ---
    if (name == "nop") {
      emit_word(isa::encode_nop());
      return;
    }
    if (name == "set") {
      const u32 v = parse_expr();
      expect_punct(',');
      const u8 rd = expect_reg();
      // Deterministic two-word expansion: sethi %hi(v) ; or rd, %lo(v).
      emit_word(isa::encode_sethi(rd, v >> 10));
      emit_word(isa::encode_arith_ri(Mnemonic::kOr, rd, rd,
                                     static_cast<i32>(v & 0x3ffu)));
      return;
    }
    if (name == "mov") {
      // mov reg_or_imm, rd  ->  or %g0, op2, rd
      const Op2 o = parse_op2();
      expect_punct(',');
      const u8 rd = expect_reg();
      emit_word(enc_arith(Mnemonic::kOr, rd, 0, o));
      return;
    }
    if (name == "cmp") {  // subcc rs1, op2, %g0
      const u8 rs1 = expect_reg();
      expect_punct(',');
      const Op2 o = parse_op2();
      emit_word(enc_arith(Mnemonic::kSubcc, 0, rs1, o));
      return;
    }
    if (name == "tst") {  // orcc %g0, rs1, %g0
      const u8 rs1 = expect_reg();
      emit_word(isa::encode_arith_rr(Mnemonic::kOrcc, 0, 0, rs1));
      return;
    }
    if (name == "clr") {  // or %g0, %g0, rd
      const u8 rd = expect_reg();
      emit_word(isa::encode_arith_rr(Mnemonic::kOr, rd, 0, 0));
      return;
    }
    if (name == "inc" || name == "dec") {
      // inc rd | inc imm, rd
      i32 amount = 1;
      if (peek().kind != TokKind::kReg) {
        amount = parse_simm13();
        expect_punct(',');
      }
      const u8 rd = expect_reg();
      const Mnemonic m = (name == "inc") ? Mnemonic::kAdd : Mnemonic::kSub;
      emit_word(isa::encode_arith_ri(m, rd, rd, amount));
      return;
    }
    if (name == "not") {
      // not rs1, rd | not rd   ->  xnor rs1, %g0, rd
      const u8 r1 = expect_reg();
      u8 rd = r1;
      if (accept_punct(',')) rd = expect_reg();
      emit_word(isa::encode_arith_rr(Mnemonic::kXnor, rd, r1, 0));
      return;
    }
    if (name == "neg") {
      // neg rs2, rd | neg rd  ->  sub %g0, rs2, rd
      const u8 r1 = expect_reg();
      u8 rd = r1;
      if (accept_punct(',')) rd = expect_reg();
      emit_word(isa::encode_arith_rr(Mnemonic::kSub, rd, 0, r1));
      return;
    }
    if (name == "btst") {  // btst op2, rs1  ->  andcc rs1, op2, %g0
      const Op2 o = parse_op2();
      expect_punct(',');
      const u8 rs1 = expect_reg();
      emit_word(enc_arith(Mnemonic::kAndcc, 0, rs1, o));
      return;
    }
    if (name == "bset" || name == "bclr" || name == "btog") {
      const Op2 o = parse_op2();
      expect_punct(',');
      const u8 rd = expect_reg();
      const Mnemonic m = (name == "bset")   ? Mnemonic::kOr
                         : (name == "bclr") ? Mnemonic::kAndn
                                            : Mnemonic::kXor;
      emit_word(enc_arith(m, rd, rd, o));
      return;
    }

    fail("unknown mnemonic '" + name + "'");
  }

  void error(unsigned line, const std::string& msg) {
    errors_.push_back({line, msg});
  }

  // State ------------------------------------------------------------------
  std::vector<Stmt> stmts_;
  std::map<std::string, u32, std::less<>> symbols_;
  std::vector<Diagnostic> errors_;
  Bytes out_;
  Addr base_ = 0xffffffff;
  Addr loc_ = 0;
  int pass_ = 1;
  Stmt* cur_ = nullptr;
  std::size_t ti_ = 0;
};

AsmResult Assembler::assemble(std::string_view source) {
  AssemblerImpl impl;
  return impl.run(source);
}

Image assemble_or_throw(std::string_view source) {
  Assembler as;
  AsmResult r = as.assemble(source);
  if (!r.ok) {
    throw std::runtime_error("assembly failed:\n" + r.error_text());
  }
  return std::move(r.image);
}

}  // namespace la::sasm
