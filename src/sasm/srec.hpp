// Motorola S-record (SREC) serialization of program images.
//
// The paper's build flow converts the linked binary with OBJCOPY before
// packetizing it (Fig 4, steps 4-5); S-records are the classic interchange
// format for exactly this hop, and give the repository a stable on-disk
// program format: `lsim --srec` emits it, images round-trip through it,
// and external SPARC toolchains can produce it.
//
// We emit S0 (header), S3 (32-bit address data), S7 (entry) records with
// standard per-record checksums, and accept S1/S2/S3 plus S7/S8/S9 on
// input.
#pragma once

#include <string>
#include <string_view>

#include "sasm/image.hpp"

namespace la::sasm {

/// Render `img` as S-records.  `bytes_per_record` data bytes per line
/// (max 250).  The image's symbols are not representable in SREC and are
/// dropped (only `entry` survives, in the S7 record).
std::string to_srec(const Image& img, std::string_view header = "lsim",
                    unsigned bytes_per_record = 32);

struct SrecResult {
  bool ok = false;
  Image image;
  std::string error;  // first problem found (line number included)
};

/// Parse S-records back into an image.  Verifies every record checksum;
/// rejects overlapping or non-contiguous-unfriendly data gracefully (gaps
/// are zero-filled, like the assembler's .org).
SrecResult from_srec(std::string_view text);

}  // namespace la::sasm
