#include "sasm/lexer.hpp"

#include <cctype>
#include <stdexcept>

#include "isa/registers.hpp"

namespace la::sasm {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == '$';
}

[[noreturn]] void fail(unsigned col, const std::string& what) {
  throw std::runtime_error("col " + std::to_string(col) + ": " + what);
}

u64 parse_int(std::string_view s, unsigned col) {
  u64 v = 0;
  std::size_t i = 0;
  unsigned base = 10;
  if (s.size() >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    i = 2;
  } else if (s.size() >= 2 && s[0] == '0' && (s[1] == 'b' || s[1] == 'B')) {
    base = 2;
    i = 2;
  } else if (s.size() >= 2 && s[0] == '0') {
    base = 8;
    i = 1;
  }
  if (i >= s.size()) {
    if (s == "0") return 0;
    fail(col, "malformed integer literal '" + std::string(s) + "'");
  }
  for (; i < s.size(); ++i) {
    const char c = s[i];
    unsigned digit;
    if (c >= '0' && c <= '9') digit = static_cast<unsigned>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<unsigned>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') digit = static_cast<unsigned>(c - 'A' + 10);
    else fail(col, "bad digit in integer literal '" + std::string(s) + "'");
    if (digit >= base) {
      fail(col, "digit out of range for base in '" + std::string(s) + "'");
    }
    v = v * base + digit;
    if (v > 0xffffffffull) {
      fail(col, "integer literal overflows 32 bits: '" + std::string(s) + "'");
    }
  }
  return v;
}

}  // namespace

std::vector<Token> tokenize(std::string_view line) {
  std::vector<Token> out;
  std::size_t i = 0;
  const auto col = [&] { return static_cast<unsigned>(i + 1); };

  while (i < line.size()) {
    const char c = line[i];
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '!' || c == '#') break;  // comment

    Token t;
    t.col = col();

    if (c == '%') {
      std::size_t j = i + 1;
      while (j < line.size() && ident_char(line[j])) ++j;
      const std::string_view name = line.substr(i, j - i);
      if (auto r = isa::parse_reg(name)) {
        t.kind = TokKind::kReg;
        t.value = *r;
        t.text = std::string(name);
      } else {
        const std::string_view bare = name.substr(1);
        if (bare == "hi" || bare == "lo") {
          t.kind = TokKind::kHiLo;
          t.text = std::string(bare);
        } else if (bare == "y" || bare == "psr" || bare == "wim" ||
                   bare == "tbr" || bare == "fsr") {
          t.kind = TokKind::kSpecial;
          t.text = std::string(bare);
        } else if (bare.size() > 3 && bare.substr(0, 3) == "asr") {
          u32 n = 0;
          for (char d : bare.substr(3)) {
            if (d < '0' || d > '9') fail(t.col, "bad ASR name");
            n = n * 10 + static_cast<u32>(d - '0');
          }
          if (n > 31) fail(t.col, "ASR index out of range");
          t.kind = TokKind::kSpecial;
          t.text = "asr";
          t.value = n;
        } else {
          fail(t.col, "unknown register or %-name '" + std::string(name) +
                          "'");
        }
      }
      i = j;
      out.push_back(std::move(t));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < line.size() &&
             (std::isalnum(static_cast<unsigned char>(line[j])))) {
        ++j;
      }
      t.kind = TokKind::kInt;
      t.text = std::string(line.substr(i, j - i));
      t.value = static_cast<u32>(parse_int(t.text, t.col));
      i = j;
      out.push_back(std::move(t));
      continue;
    }

    if (ident_start(c)) {
      std::size_t j = i;
      while (j < line.size() && ident_char(line[j])) ++j;
      t.kind = TokKind::kIdent;
      t.text = std::string(line.substr(i, j - i));
      i = j;
      out.push_back(std::move(t));
      continue;
    }

    if (c == '"') {
      std::string s;
      std::size_t j = i + 1;
      bool closed = false;
      while (j < line.size()) {
        if (line[j] == '"') {
          closed = true;
          ++j;
          break;
        }
        if (line[j] == '\\' && j + 1 < line.size()) {
          ++j;
          switch (line[j]) {
            case 'n': s.push_back('\n'); break;
            case 't': s.push_back('\t'); break;
            case '0': s.push_back('\0'); break;
            case '\\': s.push_back('\\'); break;
            case '"': s.push_back('"'); break;
            default: s.push_back(line[j]); break;
          }
          ++j;
        } else {
          s.push_back(line[j]);
          ++j;
        }
      }
      if (!closed) fail(t.col, "unterminated string literal");
      t.kind = TokKind::kString;
      t.text = std::move(s);
      i = j;
      out.push_back(std::move(t));
      continue;
    }

    switch (c) {
      case ',': case '[': case ']': case '+': case '-': case '*':
      case '/': case '(': case ')': case ':': case '=':
        t.kind = TokKind::kPunct;
        t.text = std::string(1, c);
        ++i;
        out.push_back(std::move(t));
        continue;
      default:
        fail(t.col, std::string("unexpected character '") + c + "'");
    }
  }

  Token end;
  end.kind = TokKind::kEnd;
  end.col = col();
  out.push_back(std::move(end));
  return out;
}

}  // namespace la::sasm
