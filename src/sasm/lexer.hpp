// Line-oriented tokenizer for the SPARC assembly dialect sasm accepts.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace la::sasm {

enum class TokKind : u8 {
  kEnd,      // end of line
  kIdent,    // bare identifier or directive (".word" comes as ident ".word")
  kReg,      // %g0..%i7 / %sp / %fp / %rN  (value = register number)
  kSpecial,  // %y %psr %wim %tbr %fsr, or %asrN (value = N)
  kHiLo,     // %hi / %lo  (text distinguishes)
  kInt,      // integer literal (value)
  kString,   // quoted string (text is the unescaped contents)
  kPunct,    // single punctuation char in text[0]: , [ ] + - * / ( ) : =
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // raw or processed text
  u32 value = 0;      // integer value / register number / asr index
  unsigned col = 0;   // 1-based column, for diagnostics
};

/// Tokenize one statement (the driver has already split lines on ';').
/// Comments start with '!' or '#' and run to the end of the line.
/// Throws std::runtime_error with a message on malformed input
/// (bad number, unterminated string, unknown % name).
std::vector<Token> tokenize(std::string_view line);

}  // namespace la::sasm
