#include "sasm/runtime.hpp"

#include <cassert>

#include "common/bits.hpp"
#include "common/hex.hpp"

namespace la::sasm::rt {

std::string runtime_source(const RuntimeOptions& opt) {
  assert(is_aligned(opt.trap_table_base, 0x1000));
  assert(opt.nwindows >= 4 && opt.nwindows <= 32);
  const unsigned nw = opt.nwindows;
  std::string s;
  s.reserve(24000);

  // --- trap table: 256 entries x 16 bytes --------------------------------
  s += "! ---- runtime: trap table + window handlers + rt_init ----\n";
  s += "    .org " + hex32(opt.trap_table_base) + "\n";
  s += "trap_table:\n";
  for (unsigned tt = 0; tt < 256; ++tt) {
    s += "    .org " + hex32(opt.trap_table_base + tt * 16) + "\n";
    if (const auto it = opt.custom_handlers.find(static_cast<u8>(tt));
        it != opt.custom_handlers.end()) {
      s += "    ba " + it->second + "\n    nop\n";
    } else if (tt == 0x05) {
      s += "    ba rt_window_overflow\n    nop\n";
    } else if (tt == 0x06) {
      s += "    ba rt_window_underflow\n    nop\n";
    } else {
      s += "    ba rt_unexpected\n    nop\n";
    }
  }
  s += "    .org " + hex32(opt.trap_table_base + 0x1000) + "\n";

  // --- window overflow: spill the oldest frame ---------------------------
  // Entered (ET=0) in the invalid window W-1 after a save from W trapped.
  // One more save lands in W-2, the oldest frame; its %sp points at its
  // 64-byte register save area (SPARC ABI).  WIM rotates right.
  s += "rt_window_overflow:\n";
  s += "    mov %g1, %l7           ! preserve the global we scratch\n";
  s += "    rd %wim, %g1\n";
  s += "    srl %g1, 1, %l6\n";
  s += "    sll %g1, " + std::to_string(nw - 1) + ", %l5\n";
  s += "    or %l5, %l6, %g1       ! WIM rotated right by one\n";
  s += "    save                   ! into the window being spilled\n";
  s += "    wr %g1, %g0, %wim      ! it becomes the new invalid window\n";
  s += "    std %l0, [%sp]\n";
  s += "    std %l2, [%sp + 8]\n";
  s += "    std %l4, [%sp + 16]\n";
  s += "    std %l6, [%sp + 24]\n";
  s += "    std %i0, [%sp + 32]\n";
  s += "    std %i2, [%sp + 40]\n";
  s += "    std %i4, [%sp + 48]\n";
  s += "    std %i6, [%sp + 56]\n";
  s += "    restore                ! back to the trap window\n";
  s += "    mov %l7, %g1\n";
  s += "    jmp %l1                ! retry the trapped save\n";
  s += "    rett %l2\n";

  // --- window underflow: refill the frame being restored into ------------
  // Entered (ET=0) in W-1 after a restore from W into invalid W+1 trapped.
  // WIM rotates left first so the two restores pass; W+1's %sp aliases
  // the app window's %fp, which is exactly the frame's spill area.
  s += "rt_window_underflow:\n";
  s += "    rd %wim, %l3\n";
  s += "    sll %l3, 1, %l4\n";
  s += "    srl %l3, " + std::to_string(nw - 1) + ", %l5\n";
  s += "    or %l4, %l5, %l3       ! WIM rotated left by one\n";
  s += "    wr %l3, %g0, %wim\n";
  s += "    restore                ! to the app window\n";
  s += "    restore                ! to the window being refilled\n";
  s += "    ldd [%sp], %l0\n";
  s += "    ldd [%sp + 8], %l2\n";
  s += "    ldd [%sp + 16], %l4\n";
  s += "    ldd [%sp + 24], %l6\n";
  s += "    ldd [%sp + 32], %i0\n";
  s += "    ldd [%sp + 40], %i2\n";
  s += "    ldd [%sp + 48], %i4\n";
  s += "    ldd [%sp + 56], %i6\n";
  s += "    save\n";
  s += "    save                   ! back to the trap window\n";
  s += "    jmp %l1                ! retry the trapped restore\n";
  s += "    rett %l2\n";

  // --- unexpected traps: record tt and spin -------------------------------
  s += "rt_unexpected:\n";
  s += "    rd %tbr, %l3\n";
  s += "    srl %l3, 4, %l3\n";
  s += "    and %l3, 0xff, %l3\n";
  s += "    set " + hex32(opt.fault_word) + ", %l4\n";
  s += "    st %l3, [%l4]\n";
  s += "rt_spin:\n";
  s += "    ba rt_spin\n";
  s += "    nop\n";

  // --- rt_umul: software unsigned multiply via MULScc ----------------------
  // For configurations without the hardware multiplier (has_mul = false):
  // %o0 * %o1 -> %o0 (low 32 bits), the canonical 33-step sequence.
  s += "rt_umul:\n";
  s += "    wr %g0, %o0, %y        ! multiplier into Y\n";
  s += "    andcc %g0, %g0, %o4    ! clear partial product and icc\n";
  for (int i = 0; i < 32; ++i) s += "    mulscc %o4, %o1, %o4\n";
  s += "    mulscc %o4, %g0, %o4   ! final shift step\n";
  s += "    retl\n";
  s += "    rd %y, %o0\n";

  // --- rt_init: call once before anything that saves ----------------------
  const u32 psr = 0x80u | 0x20u | ((u32{opt.pil} & 0xfu) << 8);  // S ET PIL
  s += "rt_init:\n";
  s += "    set trap_table, %g1\n";
  s += "    wr %g1, 0, %tbr\n";
  s += "    wr %g0, 2, %wim        ! window 1 is the guard (CWP starts 0)\n";
  s += "    set " + hex32(opt.stack_top) + ", %sp\n";
  s += "    set " + hex32(psr) + ", %g1\n";
  s += "    wr %g1, 0, %psr        ! S=1 ET=1, traps live from here on\n";
  s += "    nop\n";
  s += "    retl\n";
  s += "    nop\n";

  return s;
}

}  // namespace la::sasm::rt
