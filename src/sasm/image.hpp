// Output of the assembler: a contiguous big-endian memory image plus the
// symbol table.  This is what gets packed into UDP "Load program" packets.
#pragma once

#include <map>
#include <string>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace la::sasm {

struct Image {
  Addr base = 0;     // address of data[0]
  Bytes data;        // gap-filled with zero bytes between .org regions
  Addr entry = 0;    // `_start` symbol if defined, else base
  std::map<std::string, u32, std::less<>> symbols;

  Addr end() const { return base + static_cast<Addr>(data.size()); }

  /// Word at an absolute address (asserts range; test convenience).
  u32 word_at(Addr addr) const {
    const std::size_t o = addr - base;
    return (u32{data.at(o)} << 24) | (u32{data.at(o + 1)} << 16) |
           (u32{data.at(o + 2)} << 8) | u32{data.at(o + 3)};
  }

  /// Symbol lookup; throws std::out_of_range if missing.
  u32 symbol(std::string_view name) const {
    const auto it = symbols.find(name);
    if (it == symbols.end()) {
      throw std::out_of_range("no such symbol: " + std::string(name));
    }
    return it->second;
  }
};

/// One assembly diagnostic.
struct Diagnostic {
  unsigned line = 0;  // 1-based source line
  std::string message;
};

struct AsmResult {
  bool ok = false;
  Image image;
  std::vector<Diagnostic> errors;

  /// All error messages joined, for test failure output.
  std::string error_text() const {
    std::string s;
    for (const auto& e : errors) {
      s += "line " + std::to_string(e.line) + ": " + e.message + "\n";
    }
    return s;
  }
};

}  // namespace la::sasm
