// SPARC V8 runtime support in assembly: a trap table, the canonical
// register-window overflow/underflow handlers, and a crt0-style init —
// everything a call-heavy program needs to run on the Liquid processor.
//
// LEON programs (the paper compiles C with LECCS/gcc) rely on exactly
// this machinery: the compiler emits save/restore per function and the
// runtime spills/fills windows through traps.  Appending
// `runtime_source()` to a program and calling `rt_init` first gives it a
// working stack discipline with any number of hardware windows.
#pragma once

#include <map>
#include <string>

#include "common/types.hpp"

namespace la::sasm::rt {

struct RuntimeOptions {
  /// Base of the trap table; must be 4 KiB aligned (TBR format) and lie
  /// in loadable SRAM.
  Addr trap_table_base = 0x40020000;
  /// Initial stack pointer (grows down; keep it inside SRAM).
  Addr stack_top = 0x400ff000;
  /// Hardware window count the WIM rotation is built for.  The classic
  /// two-restore/two-save underflow handler needs the rotated guard to
  /// stay clear of the trap window, so at least 4 windows are required.
  unsigned nwindows = 8;
  /// Processor interrupt level installed by rt_init (0 = all enabled).
  u8 pil = 0;
  /// Unhandled traps store their tt here before spinning (diagnosable
  /// from the host via Read Memory).
  Addr fault_word = 0x40000020;
  /// Route specific trap types to program-defined labels (e.g. interrupt
  /// service routines: tt 0x10+level).  The label must exist in the
  /// program the blob is appended to.
  std::map<u8, std::string> custom_handlers;
};

/// Assembly blob providing:
///   * `trap_table`   — 256-entry table at `trap_table_base`
///   * `rt_init`      — call once: installs TBR/WIM/PSR and the stack,
///                      enables traps, returns via retl
///   * window overflow/underflow handlers (full spill/fill)
///   * `rt_unexpected`— default handler: records tt, spins
/// Append it to a program's source (it .org's itself out of the way).
std::string runtime_source(const RuntimeOptions& opt = {});

}  // namespace la::sasm::rt
