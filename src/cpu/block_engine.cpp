#include "cpu/block_engine.hpp"

#include <algorithm>

#include "cpu/integer_unit.hpp"
#include "isa/decode.hpp"
#include "isa/traps.hpp"

namespace la::cpu {

using isa::HandlerKind;

namespace {
constexpr u8 kNoTrap = static_cast<u8>(isa::Trap::kNone);
}  // namespace

// -- Block cache ------------------------------------------------------------

BlockEngine::Block* BlockEngine::lookup(Addr pc) {
  Block* b = l1_[l1_index(pc)];
  if (b != nullptr && b->start == pc) return b;
  auto it = blocks_.find(pc);
  if (it == blocks_.end()) return nullptr;
  b = it->second.get();
  l1_[l1_index(pc)] = b;
  return b;
}

BlockEngine::Block* BlockEngine::translate(IntegerUnit& iu, Addr pc,
                                           Addr halt_pc) {
  // Refuse blocks that could wrap the 32-bit address space mid-trace; the
  // per-step interpreter handles the top few words of memory, if any.
  if (pc >= 0xfffffc00u) return nullptr;
  u32 word = 0;
  if (!iu.mem_.fetch(pc, word)) return nullptr;  // per-step raises the trap

  auto owned = std::make_unique<Block>();
  Block* blk = owned.get();
  blk->start = pc;
  Addr cur = pc;
  // Predigest one op into its 8-byte trace entry (see BlockOp's field
  // contract): inline ALU forms resolve the i-bit into the token choice so
  // the dispatcher never tests it (sethi always carries its shifted
  // immediate); Bicc folds cond/annul/displacement; generic and CTI ops
  // park the full decoded instruction in the block's side table.
  const auto digest = [blk](BlockOp& o, const isa::Instruction& i) {
    if (o.kind == kOpBicc) {
      o.a = static_cast<u8>(i.cond);
      o.b = i.annul ? 1 : 0;
      o.bimm = static_cast<u32>(i.disp) << 2;
      return;
    }
    if (o.kind >= kOpGeneric) {
      o.bimm = static_cast<u32>(blk->insns.size());
      blk->insns.push_back(i);
      return;
    }
    o.a = i.rs1;
    o.b = i.rs2;
    o.d = i.rd;
    if (o.kind == static_cast<u8>(isa::HandlerKind::kSethi)) {
      o.kind = static_cast<u8>(kOpAluImmBase + o.kind);
      o.bimm = i.imm22 << 10;
    } else if (i.imm) {
      o.kind = static_cast<u8>(kOpAluImmBase + o.kind);
      o.bimm = static_cast<u32>(i.simm13);
    }
  };
  for (;;) {
    const isa::Instruction ins = iu.cfg_.host_decode_cache
                                     ? iu.predecode_.lookup(word)
                                     : isa::decode(word);
    const isa::HandlerInfo hi = isa::handler_info(ins.mn);
    BlockOp op;
    cur += 4;
    if (hi.ends_block) {
      op.kind = ins.mn == isa::Mnemonic::kBicc ? u8{kOpBicc} : u8{kOpCti};
      digest(op, ins);
      blk->ops.push_back(op);
      // Append the delay slot when it is an ordinary fetchable non-CTI
      // word; otherwise end at the CTI alone and let the sentinel's
      // regularity checks push the odd case (DCTI couple, unfetchable
      // slot) back to the per-step interpreter.
      u32 slot_word = 0;
      if (cur != halt_pc && iu.mem_.fetch(cur, slot_word)) {
        const isa::Instruction slot = iu.cfg_.host_decode_cache
                                          ? iu.predecode_.lookup(slot_word)
                                          : isa::decode(slot_word);
        const isa::HandlerInfo shi = isa::handler_info(slot.mn);
        if (!shi.ends_block) {
          // The slot instruction runs through its own (often inline-ALU)
          // handler: a non-CTI slot retires exactly like a straight-line
          // op — pc=npc, npc+=4 — because cti_taken_ is false during the
          // slot step.  An annulment gate is emitted ahead of it only
          // when this CTI can actually annul — a Bicc with the a-bit set;
          // no other trace op ever sets annul_next_, and blocks are never
          // entered with an annulment pending.
          if (ins.mn == isa::Mnemonic::kBicc && ins.annul) {
            BlockOp gate;
            gate.kind = kOpSlotGate;
            blk->ops.push_back(gate);
          }
          BlockOp body;
          body.kind = static_cast<u8>(shi.kind);
          digest(body, slot);
          blk->ops.push_back(body);
          cur += 4;
        }
      }
      break;
    }
    op.kind = static_cast<u8>(hi.kind);
    digest(op, ins);
    blk->ops.push_back(op);
    if (blk->ops.size() >= kMaxBlockOps) break;
    if (cur == halt_pc) break;  // never translate the halt instruction
    if (!iu.mem_.fetch(cur, word)) break;  // next word would fault
  }
  blk->end = cur;
  BlockOp end;
  end.kind = kOpEnd;
  blk->ops.push_back(end);

  blocks_[pc] = std::move(owned);
  l1_[l1_index(pc)] = blk;
  for (u32 page = pc >> kPageShift; page <= (cur - 1) >> kPageShift; ++page) {
    pages_[page].push_back(blk);
  }
  code_lo_ = std::min(code_lo_, pc);
  code_hi_ = std::max(code_hi_, cur);
  ++stat_translated_;
  return blk;
}

void BlockEngine::erase_block(Block* b) {
  for (u32 page = b->start >> kPageShift; page <= (b->end - 1) >> kPageShift;
       ++page) {
    auto it = pages_.find(page);
    if (it == pages_.end()) continue;
    auto& v = it->second;
    v.erase(std::remove(v.begin(), v.end(), b), v.end());
    if (v.empty()) pages_.erase(it);
  }
  Block*& l1 = l1_[l1_index(b->start)];
  if (l1 == b) l1 = nullptr;
  auto it = blocks_.find(b->start);
  if (it != blocks_.end()) {
    // The dispatcher may still be inside this very block when the store
    // that killed it executes; park it until the trace unwinds.
    graveyard_.push_back(std::move(it->second));
    blocks_.erase(it);
  }
}

void BlockEngine::invalidate_store(Addr addr, unsigned size) {
  const u32 first = addr >> kPageShift;
  const u32 last = (addr + size - 1) >> kPageShift;
  for (u32 page = first; page <= last; ++page) {
    auto it = pages_.find(page);
    if (it == pages_.end()) continue;
    const std::vector<Block*> victims = std::move(it->second);
    pages_.erase(it);
    for (Block* b : victims) erase_block(b);
  }
  ++stat_invalidations_;
  ++gen_;  // sever every chain link; survivors re-link on next exit
}

void BlockEngine::flush() {
  blocks_.clear();
  pages_.clear();
  l1_.fill(nullptr);
  graveyard_.clear();
  code_lo_ = ~0u;
  code_hi_ = 0;
  ++gen_;
}

// -- Outer loop -------------------------------------------------------------

u64 BlockEngine::run(IntegerUnit& iu, u64 max_steps, Addr halt_pc) {
  // Translations never outlive one run() call: between calls the harness
  // may rewrite memory behind the core's back (program load, snapshot
  // restore), and only stores the core itself executes are observable to
  // the invalidation hooks.  At run()'s kChunk-style granularity a full
  // retranslation is noise; correctness is unconditional.
  flush();
  u64 n = 0;
  StepResult res;
  CpuState& st = iu.st_;
  while (n < max_steps && !st.error_mode && st.pc != halt_pc) {
    graveyard_.clear();  // safe: the dispatcher has unwound
    if (iu.annul_next_ || st.npc != st.pc + 4 ||
        (iu.irq_level_ != 0 && iu.irq_pending())) {
      // Delay-slot entry, pending annulment, or deliverable interrupt:
      // exactly the per-step interpreter's job.
      iu.step_into(res);
      ++n;
      continue;
    }
    Block* blk = lookup(st.pc);
    if (blk == nullptr) blk = translate(iu, st.pc, halt_pc);
    if (blk == nullptr) {
      iu.step_into(res);  // unfetchable first word: raise the trap there
      ++n;
      continue;
    }
    n += exec(iu, blk, max_steps - n, halt_pc, res);
  }
  return n;
}

// -- Threaded dispatcher ----------------------------------------------------

u64 BlockEngine::exec(IntegerUnit& iu, Block* blk, u64 steps_left,
                      Addr halt_pc, StepResult& res) {
  u64 n = 0;
  CpuState& st = iu.st_;
  const BlockOp* op = blk->ops.data();
  // Architectural pc/npc and the retire counters live in locals across the
  // trace; `st`/`iu` are re-synced only around execute()/take_trap() (which
  // read and may rewrite them) and at every exit.  irq_level_ can only
  // change from outside the core, never mid-trace, so its zero test hoists.
  Addr pc = st.pc;
  Addr npc = st.npc;
  // Retire accounting: the common case (one cycle, one retired
  // instruction per op) rides on `n` alone; the rare paths accumulate
  // deviations — extra cycles for CTIs/generics/traps, missed retires for
  // annulled slots and trap entries — folded back in at exit.
  u64 cyc_extra = 0;
  u64 ret_miss = 0;
  const bool irq_watch = iu.irq_level_ != 0;

  // Branch-free register maps for the inline ALU handlers: rp[r]/wp[r]
  // point straight into the register file's backing store for the current
  // window, with %g0 redirected to a constant-zero source and a write
  // sink.  Rebuilt whenever an execute()-backed op changes CWP (save,
  // restore, wrpsr, rett); trap exits leave the trace, so take_trap's CWP
  // decrement never needs one.
  u32 zero_src = 0;
  u32 g0_sink = 0;
  u32* rp[32];
  u32* wp[32];
  unsigned cached_cwp = st.psr.cwp;
  const auto rebuild_regmap = [&](unsigned cwp) {
    u32* base = st.regs.data();
    rp[0] = &zero_src;
    wp[0] = &g0_sink;
    for (unsigned r = 1; r < 32; ++r) {
      u32* p = base + st.regs.slot(cwp, static_cast<u8>(r));
      rp[r] = p;
      wp[r] = p;
    }
  };
  rebuild_regmap(cached_cwp);

// X-macro over the inline ALU handlers: (label stem, HandlerKind, body).
// Each body mirrors the corresponding one-line case of
// IntegerUnit::execute() verbatim (A/B are its `a`/`b` operands) and is
// instantiated twice — a register form (B = rs2) and an immediate form
// (B = simm13), selected by the translator via the i-bit.
#define LA_BE_ALU_LIST(M)                                                  \
  M(and, kAnd, LA_BE_RD(A & B))                                            \
  M(andn, kAndn, LA_BE_RD(A & ~B))                                         \
  M(or, kOr, LA_BE_RD(A | B))                                              \
  M(xor, kXor, LA_BE_RD(A ^ B))                                            \
  M(xnor, kXnor, LA_BE_RD(A ^ ~B))                                         \
  M(sll, kSll, LA_BE_RD(A << (B & 31)))                                    \
  M(srl, kSrl, LA_BE_RD(A >> (B & 31)))                                    \
  M(sra, kSra,                                                             \
    LA_BE_RD(static_cast<u32>(static_cast<i32>(A) >> (B & 31))))           \
  M(sethi, kSethi, LA_BE_RD(B))                                            \
  M(add, kAdd, LA_BE_RD(A + B))                                            \
  M(addx, kAddx, LA_BE_RD(A + B + (st.psr.c ? 1 : 0)))                     \
  M(sub, kSub, LA_BE_RD(A - B))                                            \
  M(subx, kSubx,                                                           \
    LA_BE_RD(A - B - (!iu.cfg_.quirk_subx_no_carry && st.psr.c ? 1 : 0)))  \
  M(andcc, kAndcc, const u32 r = A & B; iu.set_icc_logic(r); LA_BE_RD(r))  \
  M(orcc, kOrcc, const u32 r = A | B; iu.set_icc_logic(r); LA_BE_RD(r))    \
  M(xorcc, kXorcc, const u32 r = A ^ B; iu.set_icc_logic(r); LA_BE_RD(r))  \
  M(addcc, kAddcc, const u32 r = A + B; iu.set_icc_add(A, B, r, false);    \
    LA_BE_RD(r))                                                           \
  M(addxcc, kAddxcc, const bool cin = st.psr.c;                            \
    const u32 r = A + B + (cin ? 1 : 0); iu.set_icc_add(A, B, r, cin);     \
    LA_BE_RD(r))                                                           \
  M(subcc, kSubcc, const u32 r = A - B; iu.set_icc_sub(A, B, r, false);    \
    LA_BE_RD(r))                                                           \
  M(subxcc, kSubxcc, const bool cin = st.psr.c;                            \
    const u32 r = A - B - (cin ? 1 : 0); iu.set_icc_sub(A, B, r, cin);     \
    LA_BE_RD(r))

#if defined(__GNUC__) || defined(__clang__)
  // Token-threaded dispatch: one indirect jump per op, no central loop.
  // Table order must match the token numbering: the HandlerKind ALU range,
  // the structural tokens, then the immediate ALU twins at kOpAluImmBase.
#define LA_BE_LABEL_REG(name, kind, ...) &&lab_##name,
#define LA_BE_LABEL_IMM(name, kind, ...) &&lab_##name##_i,
  static const void* const kLabels[] = {
      LA_BE_ALU_LIST(LA_BE_LABEL_REG)
      &&lab_generic, &&lab_bicc, &&lab_cti, &&lab_slot_gate, &&lab_end,
      LA_BE_ALU_LIST(LA_BE_LABEL_IMM)
  };
#undef LA_BE_LABEL_IMM
#undef LA_BE_LABEL_REG
  static_assert(sizeof(kLabels) / sizeof(kLabels[0]) == kOpKinds);
#define LA_BE_JUMP() goto* kLabels[op->kind]
#else
  // Portable fallback: a jump-table switch reached by every handler.
#define LA_BE_JUMP() goto dispatch
#endif

// Per-op prologue: exactly the conditions the per-step run loop checks
// between instructions.  Exiting BEFORE executing means the outer loop's
// step_into() reproduces interrupts / budget exhaustion / halt exactly.
// The halt test lives at block boundaries only: the translator never emits
// the op at halt_pc, callers never enter a block that starts there, and
// every path that sets pc to a non-sequential address runs through the
// kOpEnd sentinel — so mid-trace pc can never equal halt_pc.
#define LA_BE_PROLOGUE()                                      \
  do {                                                        \
    if (n >= steps_left) goto out_sync;                       \
    if (irq_watch && iu.irq_pending()) goto out_sync;         \
  } while (0)

#define LA_BE_NEXT() \
  do {               \
    ++op;            \
    LA_BE_JUMP();    \
  } while (0)

// Inline ALU handler: body mirrors the corresponding one-line case of
// IntegerUnit::execute() verbatim (A/B are its `a`/`b` operands), then
// retires with the straight-line next-PC form — the translator guarantees
// npc == pc + 4 on every body op.
#define LA_BE_RD(v) (*wp[op->d] = (v))

#define LA_BE_ALU(label, BEXPR, ...)                                      \
  label : {                                                               \
    LA_BE_PROLOGUE();                                                     \
    const u32 A = *rp[op->a];                                             \
    const u32 B = (BEXPR);                                                \
    (void)A;                                                              \
    (void)B;                                                              \
    __VA_ARGS__;                                                          \
    pc = npc;                                                             \
    npc += 4;                                                             \
    ++n;                                                                  \
    LA_BE_NEXT();                                                         \
  }

#define LA_BE_ALU_REG(name, kind, ...) \
  LA_BE_ALU(lab_##name, *rp[op->b], __VA_ARGS__)
#define LA_BE_ALU_IMM(name, kind, ...) \
  LA_BE_ALU(lab_##name##_i, op->bimm, __VA_ARGS__)

  LA_BE_JUMP();

#if !(defined(__GNUC__) || defined(__clang__))
#define LA_BE_CASE_REG(name, kind, ...) \
  case static_cast<u8>(HandlerKind::kind): goto lab_##name;
#define LA_BE_CASE_IMM(name, kind, ...)                     \
  case kOpAluImmBase + static_cast<u8>(HandlerKind::kind):  \
    goto lab_##name##_i;
dispatch:
  switch (op->kind) {
    LA_BE_ALU_LIST(LA_BE_CASE_REG)
    LA_BE_ALU_LIST(LA_BE_CASE_IMM)
    case kOpGeneric: goto lab_generic;
    case kOpBicc: goto lab_bicc;
    case kOpCti: goto lab_cti;
    case kOpSlotGate: goto lab_slot_gate;
    default: goto lab_end;
  }
#undef LA_BE_CASE_IMM
#undef LA_BE_CASE_REG
#endif

  LA_BE_ALU_LIST(LA_BE_ALU_REG)
  LA_BE_ALU_LIST(LA_BE_ALU_IMM)

lab_generic : {
  // Everything stateful (memory, muldiv, windows, state registers, Ticc)
  // runs through the interpreter's switch — the single semantic truth.
  LA_BE_PROLOGUE();
  res.cycles = 1;
  res.mem_access = false;
  res.mem_write = false;
  iu.cti_taken_ = false;
  st.pc = pc;  // execute()/take_trap() read the architectural pair
  st.npc = npc;
  const u8 tt = iu.execute(blk->insns[op->bimm], res);
  if (tt != kNoTrap) {
    iu.take_trap(tt);
    cyc_extra += iu.cfg_.trap_latency - 1;
    ++ret_miss;  // a trapped step does not retire
    ++n;
    goto out;  // take_trap redirected st.pc/npc (or entered error mode)
  }
  pc = npc;
  npc = iu.cti_taken_ ? iu.cti_target_ : npc + 4;
  cyc_extra += res.cycles - 1;
  ++n;
  if (st.psr.cwp != cached_cwp) {  // save/restore/wrpsr moved the window
    cached_cwp = st.psr.cwp;
    rebuild_regmap(cached_cwp);
  }
  if (res.mem_write && store_hits_code(res.mem_addr, res.mem_size)) {
    invalidate_store(res.mem_addr, res.mem_size);
    goto out_sync;  // this trace may be gone; re-enter from the outer loop
  }
  LA_BE_NEXT();
}

lab_bicc : {
  // Inline integer conditional branch: mirrors execute()'s kBicc case.
  // Predigested: a = cond, b = annul bit, bimm = displacement << 2.
  LA_BE_PROLOGUE();
  const auto cond = static_cast<isa::Cond>(op->a);
  const bool taken =
      isa::eval_cond(cond, st.psr.n, st.psr.z, st.psr.v, st.psr.c);
  Cycles bcyc = 1;
  bool ct = false;
  Addr tgt = 0;
  if (cond == isa::Cond::kA) {
    ct = true;
    tgt = pc + op->bimm;
    if (op->b != 0) iu.annul_next_ = true;
    bcyc = 1 + iu.cfg_.cti_extra;
  } else if (taken) {
    ct = true;
    tgt = pc + op->bimm;
    bcyc = 1 + iu.cfg_.cti_extra;
  } else if (op->b != 0) {
    iu.annul_next_ = true;
  }
  pc = npc;
  npc = ct ? tgt : npc + 4;
  cyc_extra += bcyc - 1;
  ++n;
  LA_BE_NEXT();
}

lab_cti : {
  // call / jmpl / rett / fbfcc / cbccc via execute(); none write memory.
  LA_BE_PROLOGUE();
  res.cycles = 1;
  iu.cti_taken_ = false;
  st.pc = pc;  // call/jmpl read pc; rett and trap entry read both
  st.npc = npc;
  const u8 tt = iu.execute(blk->insns[op->bimm], res);
  if (tt != kNoTrap) {
    iu.take_trap(tt);
    cyc_extra += iu.cfg_.trap_latency - 1;
    ++ret_miss;
    ++n;
    goto out;
  }
  pc = npc;
  npc = iu.cti_taken_ ? iu.cti_target_ : npc + 4;
  cyc_extra += res.cycles - 1;
  ++n;
  if (st.psr.cwp != cached_cwp) {  // rett moved the window
    cached_cwp = st.psr.cwp;
    rebuild_regmap(cached_cwp);
  }
  LA_BE_NEXT();
}

lab_slot_gate : {
  // Annulment gate ahead of the delay-slot entry.  An annulled slot
  // retires without executing (and without counting as an instruction) —
  // same bookkeeping as step_into()'s annul path; its fetch outcome
  // cannot have changed since translation because stores into the
  // block's pages invalidate it.  Un-annulled slots fall through to the
  // next trace entry: the slot instruction under its own handler.
  LA_BE_PROLOGUE();
  if (iu.annul_next_) {
    iu.annul_next_ = false;
    pc = npc;
    npc += 4;
    ++ret_miss;  // annulled slots charge a cycle but do not retire
    ++n;
    op += 2;  // skip the slot body; land on the kOpEnd sentinel
    LA_BE_JUMP();
  }
  LA_BE_NEXT();
}

lab_end : {
  // Chain into the successor only from a regular boundary; anything odd
  // (pending annulment, mid-transfer npc) goes back to the outer loop.
  if (iu.annul_next_ || npc != pc + 4 || pc == halt_pc) goto out_sync;
  const Addr target = pc;
  if (target == blk->start) {  // tight loop: this very block, still valid
    op = blk->ops.data();
    LA_BE_JUMP();
  }
  Block* next = nullptr;
  if (blk->chain_addr[0] == target && blk->chain_gen[0] == gen_) {
    next = blk->chain_blk[0];
  } else if (blk->chain_addr[1] == target && blk->chain_gen[1] == gen_) {
    next = blk->chain_blk[1];
  } else {
    next = lookup(target);
    if (next == nullptr) next = translate(iu, target, halt_pc);
    if (next != nullptr) {
      const u8 s = blk->chain_victim;
      blk->chain_addr[s] = target;
      blk->chain_blk[s] = next;
      blk->chain_gen[s] = gen_;
      blk->chain_victim = s ^ 1;
      ++stat_chains_;
    }
  }
  if (next == nullptr) goto out_sync;
  blk = next;
  op = blk->ops.data();
  LA_BE_JUMP();
}

out_sync:
  // Regular exits: the locals are ahead of the architectural pair.  Trap
  // exits skip this — take_trap() already rewrote st.pc/npc (or error mode
  // latched them), and the locals are stale by design.
  st.pc = pc;
  st.npc = npc;
out:
  iu.cycles_ += n + cyc_extra;
  iu.instret_ += n - ret_miss;
  stat_instructions_ += n;
  return n;

#undef LA_BE_ALU_IMM
#undef LA_BE_ALU_REG
#undef LA_BE_ALU
#undef LA_BE_ALU_LIST
#undef LA_BE_RD
#undef LA_BE_NEXT
#undef LA_BE_PROLOGUE
#undef LA_BE_JUMP
}

}  // namespace la::cpu
