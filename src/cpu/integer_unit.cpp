#include "cpu/integer_unit.hpp"

#include <cassert>
#include <limits>

#include "common/bits.hpp"
#include "cpu/block_engine.hpp"

namespace la::cpu {

using isa::Cond;
using isa::Instruction;
using isa::Mnemonic;
using isa::Trap;

namespace {
constexpr u8 kNoTrap = static_cast<u8>(Trap::kNone);
constexpr u8 tt_of(Trap t) { return static_cast<u8>(t); }
}  // namespace

IntegerUnit::IntegerUnit(const CpuConfig& cfg, MemoryPort& mem)
    : cfg_(cfg), mem_(mem), st_(cfg) {
  assert(cfg.valid());
}

IntegerUnit::~IntegerUnit() = default;

void IntegerUnit::reset(Addr entry) {
  st_ = CpuState(cfg_);
  st_.pc = entry;
  st_.npc = entry + 4;
  st_.psr.s = true;
  st_.psr.et = false;  // traps disabled until boot code enables them
  annul_next_ = false;
  irq_level_ = 0;
  instret_ = 0;
  cycles_ = 0;
  trap_count_ = 0;
  last_tt_ = 0;
}

void IntegerUnit::take_trap(u8 tt) {
  ++trap_count_;
  last_tt_ = tt;
  if (!st_.psr.et && tt != tt_of(Trap::kReset)) {
    // Trap with traps disabled: the processor enters error mode and halts
    // (a real LEON asserts its error output; the FPX circuitry reports it).
    // The tt is still latched into TBR so the cause can be read out.
    st_.set_tbr_tt(tt);
    st_.error_mode = true;
    return;
  }
  st_.psr.et = false;
  st_.psr.ps = st_.psr.s;
  st_.psr.s = true;
  st_.psr.cwp = static_cast<u8>((st_.psr.cwp + st_.nwindows - 1) %
                                st_.nwindows);
  // Saved into the *new* window's locals l1/l2 (r17/r18).
  st_.set_reg(17, st_.pc);
  st_.set_reg(18, st_.npc);
  st_.set_tbr_tt(tt);
  const Addr base = st_.tbr & 0xfffff000u;
  st_.pc = base + (u32{tt} << 4);
  st_.npc = st_.pc + 4;
  annul_next_ = false;
}

void IntegerUnit::set_icc_logic(u32 res) {
  st_.psr.n = (res >> 31) != 0;
  st_.psr.z = res == 0;
  st_.psr.v = false;
  st_.psr.c = false;
}

void IntegerUnit::set_icc_add(u32 a, u32 b, u32 res, bool carry_in) {
  st_.psr.n = (res >> 31) != 0;
  st_.psr.z = res == 0;
  st_.psr.v = (((a & b & ~res) | (~a & ~b & res)) >> 31) != 0;
  const u64 wide = u64{a} + u64{b} + (carry_in ? 1 : 0);
  st_.psr.c = (wide >> 32) != 0;
}

void IntegerUnit::set_icc_sub(u32 a, u32 b, u32 res, bool carry_in) {
  st_.psr.n = (res >> 31) != 0;
  st_.psr.z = res == 0;
  st_.psr.v = (((a & ~b & ~res) | (~a & b & res)) >> 31) != 0;
  st_.psr.c = u64{a} < u64{b} + (carry_in ? 1 : 0);
}

u8 IntegerUnit::execute(const Instruction& ins, StepResult& res) {
  auto& st = st_;
  const Addr pc = st.pc;

  // Shared helpers -------------------------------------------------------
  const auto effective_addr = [&]() -> Addr {
    return st.reg(ins.rs1) +
           (ins.imm ? static_cast<u32>(ins.simm13) : st.reg(ins.rs2));
  };

  const auto do_load = [&](unsigned size, bool sign, bool dbl) -> u8 {
    if (dbl && (ins.rd & 1)) return tt_of(Trap::kIllegalInstruction);
    if (isa::is_alternate_space(ins.mn) && !st.psr.s) {
      return tt_of(Trap::kPrivilegedInstruction);
    }
    const Addr ea = effective_addr();
    const unsigned align = dbl ? 8 : size;
    if (!is_aligned(ea, align)) return tt_of(Trap::kMemAddressNotAligned);
    u64 v = 0;
    if (!mem_.read(ea, dbl ? 8 : size, v)) return tt_of(Trap::kDataAccess);
    res.mem_access = true;
    res.mem_addr = ea;
    res.mem_size = static_cast<u8>(dbl ? 8 : size);
    if (dbl) {
      st.set_reg(ins.rd, static_cast<u32>(v >> 32));
      st.set_reg(static_cast<u8>(ins.rd | 1), static_cast<u32>(v));
      res.cycles = 1 + cfg_.load_double_extra;
      return kNoTrap;
    }
    u32 w = static_cast<u32>(v);
    if (sign) w = static_cast<u32>(sign_extend(w, size * 8));
    st.set_reg(ins.rd, w);
    res.cycles = 1 + cfg_.load_extra;
    return kNoTrap;
  };

  const auto do_store = [&](unsigned size, bool dbl) -> u8 {
    if (dbl && (ins.rd & 1)) return tt_of(Trap::kIllegalInstruction);
    if (isa::is_alternate_space(ins.mn) && !st.psr.s) {
      return tt_of(Trap::kPrivilegedInstruction);
    }
    const Addr ea = effective_addr();
    const unsigned align = dbl ? 8 : size;
    if (!is_aligned(ea, align)) return tt_of(Trap::kMemAddressNotAligned);
    u64 v;
    if (dbl) {
      v = (u64{st.reg(ins.rd)} << 32) |
          st.reg(static_cast<u8>(ins.rd | 1));
    } else {
      v = st.reg(ins.rd);
    }
    if (!mem_.write(ea, dbl ? 8 : size, v)) return tt_of(Trap::kDataAccess);
    res.mem_access = true;
    res.mem_write = true;
    res.mem_addr = ea;
    res.mem_size = static_cast<u8>(dbl ? 8 : size);
    res.cycles = 1 + (dbl ? cfg_.store_double_extra : cfg_.store_extra);
    return kNoTrap;
  };

  const u32 a = st.reg(ins.rs1);
  const u32 b = op2_of(ins);

  switch (ins.mn) {
    case Mnemonic::kInvalid:
    case Mnemonic::kUnimp:
      return tt_of(Trap::kIllegalInstruction);

    // -- Control transfer -------------------------------------------------
    case Mnemonic::kCall:
      st.set_reg(15, pc);
      cti_taken_ = true;
      cti_target_ = pc + (static_cast<u32>(ins.disp) << 2);
      res.cycles = 1 + cfg_.cti_extra;
      return kNoTrap;

    case Mnemonic::kBicc: {
      const bool taken = isa::eval_cond(ins.cond, st.psr.n, st.psr.z,
                                        st.psr.v, st.psr.c);
      if (ins.cond == Cond::kA) {
        cti_taken_ = true;
        cti_target_ = pc + (static_cast<u32>(ins.disp) << 2);
        if (ins.annul) annul_next_ = true;
        res.cycles = 1 + cfg_.cti_extra;
      } else if (taken) {
        cti_taken_ = true;
        cti_target_ = pc + (static_cast<u32>(ins.disp) << 2);
        res.cycles = 1 + cfg_.cti_extra;
      } else {
        if (ins.annul) annul_next_ = true;
      }
      return kNoTrap;
    }

    case Mnemonic::kFbfcc:
      return tt_of(Trap::kFpDisabled);  // no FPU configured
    case Mnemonic::kCbccc:
      return tt_of(Trap::kCpDisabled);

    case Mnemonic::kJmpl: {
      const Addr target = a + (ins.imm ? static_cast<u32>(ins.simm13)
                                       : st.reg(ins.rs2));
      if (!is_aligned(target, 4)) return tt_of(Trap::kMemAddressNotAligned);
      st.set_reg(ins.rd, pc);
      cti_taken_ = true;
      cti_target_ = target;
      res.cycles = 1 + cfg_.cti_extra;
      return kNoTrap;
    }

    case Mnemonic::kRett: {
      if (st.psr.et) {
        return st.psr.s ? tt_of(Trap::kIllegalInstruction)
                        : tt_of(Trap::kPrivilegedInstruction);
      }
      if (!st.psr.s) return tt_of(Trap::kPrivilegedInstruction);
      const unsigned new_cwp = (st.psr.cwp + 1) % st.nwindows;
      if ((st.wim >> new_cwp) & 1u) return tt_of(Trap::kWindowUnderflow);
      const Addr target = a + (ins.imm ? static_cast<u32>(ins.simm13)
                                       : st.reg(ins.rs2));
      if (!is_aligned(target, 4)) return tt_of(Trap::kMemAddressNotAligned);
      st.psr.cwp = static_cast<u8>(new_cwp);
      st.psr.s = st.psr.ps;
      st.psr.et = true;
      cti_taken_ = true;
      cti_target_ = target;
      res.cycles = 1 + cfg_.cti_extra;
      return kNoTrap;
    }

    case Mnemonic::kTicc: {
      const bool taken = isa::eval_cond(ins.cond, st.psr.n, st.psr.z,
                                        st.psr.v, st.psr.c);
      if (!taken) return kNoTrap;
      const u32 num = a + b;
      return static_cast<u8>(0x80u + (num & 0x7fu));
    }

    case Mnemonic::kFlush:
      // Functionally a no-op (the timed model invalidates the I-cache line).
      return kNoTrap;

    // -- SETHI ------------------------------------------------------------
    case Mnemonic::kSethi:
      st.set_reg(ins.rd, ins.imm22 << 10);
      return kNoTrap;

    // -- Logical ----------------------------------------------------------
    case Mnemonic::kAnd: st.set_reg(ins.rd, a & b); return kNoTrap;
    case Mnemonic::kAndcc: { const u32 r = a & b; set_icc_logic(r); st.set_reg(ins.rd, r); return kNoTrap; }
    case Mnemonic::kAndn: st.set_reg(ins.rd, a & ~b); return kNoTrap;
    case Mnemonic::kAndncc: { const u32 r = a & ~b; set_icc_logic(r); st.set_reg(ins.rd, r); return kNoTrap; }
    case Mnemonic::kOr: st.set_reg(ins.rd, a | b); return kNoTrap;
    case Mnemonic::kOrcc: { const u32 r = a | b; set_icc_logic(r); st.set_reg(ins.rd, r); return kNoTrap; }
    case Mnemonic::kOrn: st.set_reg(ins.rd, a | ~b); return kNoTrap;
    case Mnemonic::kOrncc: { const u32 r = a | ~b; set_icc_logic(r); st.set_reg(ins.rd, r); return kNoTrap; }
    case Mnemonic::kXor: st.set_reg(ins.rd, a ^ b); return kNoTrap;
    case Mnemonic::kXorcc: { const u32 r = a ^ b; set_icc_logic(r); st.set_reg(ins.rd, r); return kNoTrap; }
    case Mnemonic::kXnor: st.set_reg(ins.rd, a ^ ~b); return kNoTrap;
    case Mnemonic::kXnorcc: { const u32 r = a ^ ~b; set_icc_logic(r); st.set_reg(ins.rd, r); return kNoTrap; }

    // -- Shifts (count is the low 5 bits of operand2) ----------------------
    case Mnemonic::kSll: st.set_reg(ins.rd, a << (b & 31)); return kNoTrap;
    case Mnemonic::kSrl: st.set_reg(ins.rd, a >> (b & 31)); return kNoTrap;
    case Mnemonic::kSra:
      st.set_reg(ins.rd,
                 static_cast<u32>(static_cast<i32>(a) >> (b & 31)));
      return kNoTrap;

    // -- Add / subtract ----------------------------------------------------
    case Mnemonic::kAdd: st.set_reg(ins.rd, a + b); return kNoTrap;
    case Mnemonic::kAddcc: { const u32 r = a + b; set_icc_add(a, b, r, false); st.set_reg(ins.rd, r); return kNoTrap; }
    case Mnemonic::kAddx: st.set_reg(ins.rd, a + b + (st.psr.c ? 1 : 0)); return kNoTrap;
    case Mnemonic::kAddxcc: {
      const bool cin = st.psr.c;
      const u32 r = a + b + (cin ? 1 : 0);
      set_icc_add(a, b, r, cin);
      st.set_reg(ins.rd, r);
      return kNoTrap;
    }
    case Mnemonic::kSub: st.set_reg(ins.rd, a - b); return kNoTrap;
    case Mnemonic::kSubcc: { const u32 r = a - b; set_icc_sub(a, b, r, false); st.set_reg(ins.rd, r); return kNoTrap; }
    case Mnemonic::kSubx:
      st.set_reg(ins.rd, a - b - (!cfg_.quirk_subx_no_carry && st.psr.c ? 1 : 0));
      return kNoTrap;
    case Mnemonic::kSubxcc: {
      const bool cin = st.psr.c;
      const u32 r = a - b - (cin ? 1 : 0);
      set_icc_sub(a, b, r, cin);
      st.set_reg(ins.rd, r);
      return kNoTrap;
    }

    // -- Tagged arithmetic -------------------------------------------------
    case Mnemonic::kTaddcc:
    case Mnemonic::kTaddcctv: {
      const u32 r = a + b;
      const bool tag_v = (((a & b & ~r) | (~a & ~b & r)) >> 31) != 0 ||
                         ((a | b) & 3u) != 0;
      if (ins.mn == Mnemonic::kTaddcctv && tag_v) {
        return tt_of(Trap::kTagOverflow);
      }
      st.psr.n = (r >> 31) != 0;
      st.psr.z = r == 0;
      st.psr.v = tag_v;
      st.psr.c = (u64{a} + u64{b}) >> 32;
      st.set_reg(ins.rd, r);
      return kNoTrap;
    }
    case Mnemonic::kTsubcc:
    case Mnemonic::kTsubcctv: {
      const u32 r = a - b;
      const bool tag_v = (((a & ~b & ~r) | (~a & b & r)) >> 31) != 0 ||
                         ((a | b) & 3u) != 0;
      if (ins.mn == Mnemonic::kTsubcctv && tag_v) {
        return tt_of(Trap::kTagOverflow);
      }
      st.psr.n = (r >> 31) != 0;
      st.psr.z = r == 0;
      st.psr.v = tag_v;
      st.psr.c = u64{a} < u64{b};
      st.set_reg(ins.rd, r);
      return kNoTrap;
    }

    // -- Multiply / divide -------------------------------------------------
    case Mnemonic::kMulscc: {
      // One step of the iterative multiply: see V8 manual B.18.
      const u32 v1 = ((st.psr.n != st.psr.v) ? 0x80000000u : 0u) | (a >> 1);
      const u32 v2 = (st.y & 1u) ? b : 0u;
      const u32 r = v1 + v2;
      set_icc_add(v1, v2, r, false);
      st.y = (st.y >> 1) | ((a & 1u) << 31);
      st.set_reg(ins.rd, r);
      return kNoTrap;
    }
    case Mnemonic::kUmul:
    case Mnemonic::kUmulcc: {
      if (!cfg_.has_mul) return tt_of(Trap::kIllegalInstruction);
      const u64 p = u64{a} * u64{b};
      st.y = static_cast<u32>(p >> 32);
      const u32 r = static_cast<u32>(p);
      if (ins.mn == Mnemonic::kUmulcc) set_icc_logic(r);
      st.set_reg(ins.rd, r);
      res.cycles = cfg_.mul_latency;
      return kNoTrap;
    }
    case Mnemonic::kSmul:
    case Mnemonic::kSmulcc: {
      if (!cfg_.has_mul) return tt_of(Trap::kIllegalInstruction);
      const i64 p = i64{static_cast<i32>(a)} * i64{static_cast<i32>(b)};
      st.y = static_cast<u32>(static_cast<u64>(p) >> 32);
      const u32 r = static_cast<u32>(static_cast<u64>(p));
      if (ins.mn == Mnemonic::kSmulcc) set_icc_logic(r);
      st.set_reg(ins.rd, r);
      res.cycles = cfg_.mul_latency;
      return kNoTrap;
    }
    case Mnemonic::kUdiv:
    case Mnemonic::kUdivcc: {
      if (!cfg_.has_div) return tt_of(Trap::kIllegalInstruction);
      if (b == 0) return tt_of(Trap::kDivisionByZero);
      const u64 dividend = (u64{st.y} << 32) | a;
      u64 q = dividend / b;
      const bool ovf = q > 0xffffffffull;
      if (ovf) q = 0xffffffffull;
      const u32 r = static_cast<u32>(q);
      if (ins.mn == Mnemonic::kUdivcc) {
        st.psr.n = (r >> 31) != 0;
        st.psr.z = r == 0;
        st.psr.v = ovf;
        st.psr.c = false;
      }
      st.set_reg(ins.rd, r);
      res.cycles = cfg_.div_latency;
      return kNoTrap;
    }
    case Mnemonic::kSdiv:
    case Mnemonic::kSdivcc: {
      if (!cfg_.has_div) return tt_of(Trap::kIllegalInstruction);
      if (b == 0) return tt_of(Trap::kDivisionByZero);
      const i64 dividend =
          static_cast<i64>((u64{st.y} << 32) | a);
      const i64 divisor = static_cast<i32>(b);
      // INT64_MIN / -1 overflows the host idiv (SIGFPE); the architectural
      // quotient 2^63 overflows the 32-bit result anyway.
      i64 q = (dividend == std::numeric_limits<i64>::min() && divisor == -1)
                  ? std::numeric_limits<i64>::max()
                  : dividend / divisor;
      bool ovf = false;
      if (q > 0x7fffffffll) { q = 0x7fffffffll; ovf = true; }
      if (q < -0x80000000ll) { q = -0x80000000ll; ovf = true; }
      const u32 r = static_cast<u32>(static_cast<u64>(q));
      if (ins.mn == Mnemonic::kSdivcc) {
        st.psr.n = (r >> 31) != 0;
        st.psr.z = r == 0;
        st.psr.v = ovf;
        st.psr.c = false;
      }
      st.set_reg(ins.rd, r);
      res.cycles = cfg_.div_latency;
      return kNoTrap;
    }

    // -- State registers ---------------------------------------------------
    case Mnemonic::kRdy: st.set_reg(ins.rd, st.y); return kNoTrap;
    case Mnemonic::kRdasr:
      // RDASR rs1=15 rd=0 is STBAR: a store barrier, no-op here.
      st.set_reg(ins.rd, st.asr[ins.rs1]);
      return kNoTrap;
    case Mnemonic::kRdpsr:
      if (!st.psr.s) return tt_of(Trap::kPrivilegedInstruction);
      st.set_reg(ins.rd, st.psr.pack());
      return kNoTrap;
    case Mnemonic::kRdwim:
      if (!st.psr.s) return tt_of(Trap::kPrivilegedInstruction);
      // Bits for non-existent windows read as zero.
      st.set_reg(ins.rd, st.wim & window_mask());
      return kNoTrap;
    case Mnemonic::kRdtbr:
      if (!st.psr.s) return tt_of(Trap::kPrivilegedInstruction);
      st.set_reg(ins.rd, st.tbr);
      return kNoTrap;
    case Mnemonic::kWry: st.y = a ^ b; return kNoTrap;
    case Mnemonic::kWrasr: st.asr[ins.rd] = a ^ b; return kNoTrap;
    case Mnemonic::kWrpsr: {
      if (!st.psr.s) return tt_of(Trap::kPrivilegedInstruction);
      const u32 v = a ^ b;
      if (bits(v, 4, 0) >= st.nwindows) {
        return tt_of(Trap::kIllegalInstruction);
      }
      st.psr.unpack(v);
      return kNoTrap;
    }
    case Mnemonic::kWrwim:
      if (!st.psr.s) return tt_of(Trap::kPrivilegedInstruction);
      st.wim = (a ^ b) & window_mask();
      return kNoTrap;
    case Mnemonic::kWrtbr:
      if (!st.psr.s) return tt_of(Trap::kPrivilegedInstruction);
      // Only the trap base address field (31:12) is writable.
      st.tbr = (st.tbr & 0x00000ff0u) | ((a ^ b) & 0xfffff000u);
      return kNoTrap;

    // -- Register windows --------------------------------------------------
    case Mnemonic::kSave: {
      const unsigned new_cwp = (st.psr.cwp + st.nwindows - 1) % st.nwindows;
      if ((st.wim >> new_cwp) & 1u) return tt_of(Trap::kWindowOverflow);
      const u32 r = a + b;  // computed with the OLD window
      st.psr.cwp = static_cast<u8>(new_cwp);
      st.set_reg(ins.rd, r);  // written into the NEW window
      return kNoTrap;
    }
    case Mnemonic::kRestore: {
      const unsigned new_cwp = (st.psr.cwp + 1) % st.nwindows;
      if ((st.wim >> new_cwp) & 1u) return tt_of(Trap::kWindowUnderflow);
      const u32 r = a + b;
      st.psr.cwp = static_cast<u8>(new_cwp);
      st.set_reg(ins.rd, r);
      return kNoTrap;
    }

    // -- FP / coprocessor op spaces ---------------------------------------
    case Mnemonic::kFpop1:
    case Mnemonic::kFpop2:
      return tt_of(Trap::kFpDisabled);
    case Mnemonic::kCpop1:
    case Mnemonic::kCpop2:
      return tt_of(Trap::kCpDisabled);

    // -- Loads -------------------------------------------------------------
    case Mnemonic::kLd: case Mnemonic::kLda: return do_load(4, false, false);
    case Mnemonic::kLdub: case Mnemonic::kLduba: return do_load(1, false, false);
    case Mnemonic::kLduh: case Mnemonic::kLduha: return do_load(2, false, false);
    case Mnemonic::kLdsb: case Mnemonic::kLdsba: return do_load(1, true, false);
    case Mnemonic::kLdsh: case Mnemonic::kLdsha: return do_load(2, true, false);
    case Mnemonic::kLdd: case Mnemonic::kLdda: return do_load(4, false, true);

    // -- Stores ------------------------------------------------------------
    case Mnemonic::kSt: case Mnemonic::kSta: return do_store(4, false);
    case Mnemonic::kStb: case Mnemonic::kStba: return do_store(1, false);
    case Mnemonic::kSth: case Mnemonic::kStha: return do_store(2, false);
    case Mnemonic::kStd: case Mnemonic::kStda: return do_store(4, true);

    // -- Atomics -----------------------------------------------------------
    case Mnemonic::kLdstub:
    case Mnemonic::kLdstuba: {
      if (isa::is_alternate_space(ins.mn) && !st.psr.s) {
        return tt_of(Trap::kPrivilegedInstruction);
      }
      const Addr ea = effective_addr();
      u64 old = 0;
      if (!mem_.read(ea, 1, old)) return tt_of(Trap::kDataAccess);
      if (!mem_.write(ea, 1, 0xff)) return tt_of(Trap::kDataAccess);
      st.set_reg(ins.rd, static_cast<u32>(old));
      res.mem_access = true;
      res.mem_write = true;
      res.mem_addr = ea;
      res.mem_size = 1;
      res.cycles = 1 + cfg_.load_extra + cfg_.store_extra;
      return kNoTrap;
    }
    case Mnemonic::kSwap:
    case Mnemonic::kSwapa: {
      if (isa::is_alternate_space(ins.mn) && !st.psr.s) {
        return tt_of(Trap::kPrivilegedInstruction);
      }
      const Addr ea = effective_addr();
      if (!is_aligned(ea, 4)) return tt_of(Trap::kMemAddressNotAligned);
      u64 old = 0;
      if (!mem_.read(ea, 4, old)) return tt_of(Trap::kDataAccess);
      if (!mem_.write(ea, 4, st.reg(ins.rd))) {
        return tt_of(Trap::kDataAccess);
      }
      st.set_reg(ins.rd, static_cast<u32>(old));
      res.mem_access = true;
      res.mem_write = true;
      res.mem_addr = ea;
      res.mem_size = 4;
      res.cycles = 1 + cfg_.load_extra + cfg_.store_extra;
      return kNoTrap;
    }

    // -- FP / coprocessor memory ops ---------------------------------------
    case Mnemonic::kLdf: case Mnemonic::kLdfsr: case Mnemonic::kLddf:
    case Mnemonic::kStf: case Mnemonic::kStfsr: case Mnemonic::kStdfq:
    case Mnemonic::kStdf:
      return tt_of(Trap::kFpDisabled);
    case Mnemonic::kLdc: case Mnemonic::kLdcsr: case Mnemonic::kLddc:
    case Mnemonic::kStc: case Mnemonic::kStcsr: case Mnemonic::kStdcq:
    case Mnemonic::kStdc:
      return tt_of(Trap::kCpDisabled);

    case Mnemonic::kCount:
      break;
  }
  return tt_of(Trap::kIllegalInstruction);
}

StepResult IntegerUnit::step() {
  StepResult res;
  step_into(res);
  return res;
}

void IntegerUnit::step_into(StepResult& res) {
  res.pc = st_.pc;
  res.raw = 0;
  res.annulled = false;
  res.trapped = false;
  res.tt = 0;
  res.cycles = 1;
  res.mem_access = false;
  res.mem_write = false;
  res.mem_addr = 0;
  res.mem_size = 0;
  if (st_.error_mode) return;

  // External interrupt check (between instructions, before fetch).
  if (irq_pending()) {
    const u8 tt = static_cast<u8>(0x10 + (irq_level_ & 0xf));
    take_trap(tt);
    res.trapped = true;
    res.tt = tt;
    res.cycles = cfg_.trap_latency;
    cycles_ += res.cycles;
    if (obs_) obs_->on_step(res);
    return;
  }

  u32 word = 0;
  if (!mem_.fetch(st_.pc, word)) {
    take_trap(tt_of(Trap::kInstructionAccess));
    res.trapped = true;
    res.tt = tt_of(Trap::kInstructionAccess);
    res.cycles = cfg_.trap_latency;
    cycles_ += res.cycles;
    if (obs_) obs_->on_step(res);
    return;
  }
  res.raw = word;
  res.ins = cfg_.host_decode_cache ? predecode_.lookup(word)
                                   : isa::decode(word);

  if (annul_next_) {
    annul_next_ = false;
    res.annulled = true;
    st_.pc = st_.npc;
    st_.npc += 4;
    res.cycles = 1;
    cycles_ += 1;
    if (obs_) obs_->on_step(res);
    return;
  }

  cti_taken_ = false;
  const u8 tt = execute(res.ins, res);
  if (tt != kNoTrap) {
    take_trap(tt);
    res.trapped = true;
    res.tt = tt;
    res.cycles = cfg_.trap_latency;
  } else {
    const Addr new_pc = st_.npc;
    const Addr new_npc = cti_taken_ ? cti_target_ : st_.npc + 4;
    st_.pc = new_pc;
    st_.npc = new_npc;
    ++instret_;
  }
  cycles_ += res.cycles;
  if (obs_) obs_->on_step(res);
}

u64 IntegerUnit::run(u64 max_steps, Addr halt_pc) {
  u64 n = 0;
  if (obs_ == nullptr && cfg_.host_block_engine) {
    // Basic-block translation tier: decode each block once, execute via
    // threaded dispatch.  Bit-identical to the loops below (the engine
    // re-checks the same between-instruction conditions and routes every
    // irregular case back through step_into); engages only observerless,
    // so tracing and single-stepping always see the per-step path.
    if (!block_) block_ = std::make_unique<BlockEngine>();
    return block_->run(*this, max_steps, halt_pc);
  }
  if (obs_ == nullptr && cfg_.host_decode_cache) {
    // Hot loop: one StepResult reused across iterations; nothing outside
    // this frame observes it, so skipping the per-step materialization is
    // invisible (the same instructions execute with the same state).
    // host_decode_cache doubles as the functional model's "host fast
    // paths" knob: with it off, run() is the plain per-step path.
    StepResult res;
    while (n < max_steps && !st_.error_mode && st_.pc != halt_pc) {
      step_into(res);
      ++n;
    }
    return n;
  }
  while (n < max_steps && !st_.error_mode && st_.pc != halt_pc) {
    step();
    ++n;
  }
  return n;
}

}  // namespace la::cpu
