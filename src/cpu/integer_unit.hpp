// Functional SPARC V8 integer unit — the architectural reference model.
//
// Executes one instruction per step() with full V8 semantics: register
// windows, delayed control transfer with annulment, the complete trap
// model (including error mode), multiply/divide with the Y register,
// tagged arithmetic, and the atomic memory operations.
//
// Timing is nominal (config latencies, no memory stalls); the LeonPipeline
// model layers real cache/bus/memory timing on an independently written
// datapath and is property-tested against this class.
#pragma once

#include <memory>

#include "common/types.hpp"
#include "cpu/config.hpp"
#include "cpu/memory_port.hpp"
#include "cpu/state.hpp"
#include "isa/decode.hpp"
#include "isa/decode_cache.hpp"
#include "isa/isa.hpp"
#include "isa/traps.hpp"

namespace la::cpu {

/// What happened during one step() — consumed by tracing and tests.
struct StepResult {
  Addr pc = 0;            // address of the (attempted) instruction
  u32 raw = 0;            // fetched word (0 if the fetch itself faulted)
  isa::Instruction ins;   // decoded form
  bool annulled = false;  // instruction was in an annulled delay slot
  bool trapped = false;   // a trap was taken this step
  u8 tt = 0;              // trap type when trapped
  Cycles cycles = 1;      // nominal cycles charged by the functional model
  // Memory side effects (at most one data access per V8 instruction,
  // except LDD/STD/SWAP/LDSTUB which we report as their primary access).
  bool mem_access = false;
  bool mem_write = false;
  Addr mem_addr = 0;
  u8 mem_size = 0;
};

/// Observer for execution tracing (drives liquid::TraceAnalyzer).
class ExecObserver {
 public:
  virtual ~ExecObserver() = default;
  virtual void on_step(const StepResult& r) = 0;
};

class BlockEngine;

class IntegerUnit {
 public:
  IntegerUnit(const CpuConfig& cfg, MemoryPort& mem);
  ~IntegerUnit();  // out of line: BlockEngine is incomplete here

  CpuState& state() { return st_; }
  const CpuState& state() const { return st_; }
  const CpuConfig& config() const { return cfg_; }

  /// Reset: supervisor mode, traps disabled, PC at `entry`.
  void reset(Addr entry = 0);

  /// Execute one instruction (or take one trap).  No-op in error mode.
  StepResult step();

  /// Hot-path form of step(): writes the result into `res` instead of
  /// materializing a fresh StepResult.  All fields the step produces are
  /// overwritten; on early-out paths (error mode, traps, annulled slots)
  /// `res.ins` keeps its previous contents — callers that reuse one
  /// StepResult across steps (the run loop) must not read it on those
  /// paths.  step() wraps this with a default-constructed result, so its
  /// observable behaviour is unchanged.
  void step_into(StepResult& res);

  /// Run until `steps` instructions retired, error mode, or the PC hits
  /// `halt_pc` (use the address of a self-branch / final instruction).
  /// Returns the number of steps actually executed.
  u64 run(u64 max_steps, Addr halt_pc = 0xffffffff);

  /// Assert an external interrupt at `level` (1..15); 0 clears.
  void set_irq(u8 level) { irq_level_ = level; }

  u64 instret() const { return instret_; }
  Cycles cycle_count() const { return cycles_; }

  /// Trap bookkeeping, identical in every execution mode (maintained by
  /// take_trap itself): how many traps were taken since reset and the tt
  /// of the most recent one.  Lets run()-driven harnesses (the iu-block
  /// conformance leg, the SMC tests) observe traps without an observer.
  u64 trap_count() const { return trap_count_; }
  u8 last_trap_tt() const { return last_tt_; }

  void set_observer(ExecObserver* obs) { obs_ = obs; }

  /// The block translation engine, if any run() call has engaged it
  /// (nullptr otherwise).  Host-side statistics only.
  const BlockEngine* block_engine() const { return block_.get(); }

 private:
  friend class BlockEngine;  // drives execute()/take_trap() on our state
  // Trap entry per V8 §7: decrement CWP (unchecked), save pc/npc into the
  // new window's l1/l2, vector through TBR.  Trap with ET=0 => error mode.
  void take_trap(u8 tt);

  // Execute the decoded instruction; returns a pending trap or kNone.
  // On success fills the next-pc pair.
  u8 execute(const isa::Instruction& ins, StepResult& res);

  // Operand fetch helpers.
  u32 op2_of(const isa::Instruction& ins) const {
    return ins.imm ? static_cast<u32>(ins.simm13) : st_.reg(ins.rs2);
  }

  /// Valid-bit mask for WIM given the configured window count.
  u32 window_mask() const {
    return cfg_.nwindows == 32 ? ~0u : ((1u << cfg_.nwindows) - 1u);
  }

  void set_icc_logic(u32 res);
  void set_icc_add(u32 a, u32 b, u32 res, bool carry_in);
  void set_icc_sub(u32 a, u32 b, u32 res, bool carry_in);

  /// Deliverable external interrupt (the exact between-instructions test
  /// step_into performs; the block dispatcher re-checks it before every
  /// translated op).
  bool irq_pending() const {
    return st_.psr.et && irq_level_ != 0 &&
           (irq_level_ == 15 || irq_level_ > st_.psr.pil);
  }

  CpuConfig cfg_;
  MemoryPort& mem_;
  CpuState st_;
  isa::DecodeCache predecode_;  // host perf only; see CpuConfig knob

  bool annul_next_ = false;
  u8 irq_level_ = 0;
  u64 instret_ = 0;
  Cycles cycles_ = 0;
  u64 trap_count_ = 0;
  u8 last_tt_ = 0;
  ExecObserver* obs_ = nullptr;

  // Basic-block translation tier (host perf only; see CpuConfig knob).
  // Created lazily by the first observerless run() with the knob on.
  std::unique_ptr<BlockEngine> block_;

  // Set by execute() for control transfers: next npc after the delay slot.
  bool cti_taken_ = false;
  Addr cti_target_ = 0;
};

}  // namespace la::cpu
