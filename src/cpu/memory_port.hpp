// The memory interface the integer unit executes against.
//
// The functional model plugs a FlatMemory in here; the timed pipeline plugs
// the whole cache/AHB/SDRAM stack in.  Access failure (bus error, unmapped
// address) becomes a data/instruction access exception in the CPU.
#pragma once

#include "common/types.hpp"

namespace la::cpu {

class MemoryPort {
 public:
  virtual ~MemoryPort() = default;

  /// Read `size` bytes (1, 2, 4, or 8) at an already-aligned address.
  /// Returns false on access error (unmapped / bus error).
  virtual bool read(Addr addr, unsigned size, u64& out) = 0;

  /// Write `size` bytes at an already-aligned address.
  virtual bool write(Addr addr, unsigned size, u64 value) = 0;

  /// Instruction fetch (word-aligned).  Split from read() so caches can
  /// route it to the I-side.
  virtual bool fetch(Addr addr, u32& insn) {
    u64 v = 0;
    if (!read(addr, 4, v)) return false;
    insn = static_cast<u32>(v);
    return true;
  }
};

}  // namespace la::cpu
