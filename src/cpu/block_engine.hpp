// Basic-block translation engine for the functional integer unit.
//
// IntegerUnit::run() decodes each basic block once into a trace of
// predecoded {handler, operands} entries keyed by start PC, then executes
// the trace through a threaded dispatcher (computed goto under GCC/Clang,
// a jump-table switch elsewhere) with hot-block chaining, so straight-line
// and loop-heavy code never re-touches the decoder or the per-step
// dispatch path.  See docs/PERFORMANCE.md ("Block engine").
//
// Equivalence contract (enforced by the iu-block conformance leg, the
// slow/fast/block property grid, and the fuzzer's iu-block differential
// leg): executing through the engine is bit-identical to the per-step
// interpreter across registers, memory, traps, and cycle counts.  The
// engine only ever re-implements the per-step loop's *sequencing*; every
// instruction either runs through a one-line inline handler mirroring
// IntegerUnit::execute() or through execute() itself.  Before each entry
// the dispatcher re-checks exactly what the per-step loop would check
// (budget, halt PC, pending interrupt) and bails to the interpreter for
// every irregular situation: delay-slot entry, annulment, pending traps,
// unfetchable code.
//
// Self-modifying code: any store the core executes into a translated page
// (1 KiB granules) discards that page's blocks and severs all chain links
// (generation counter), and the whole cache is dropped at every run()
// entry so memory rewritten between calls — loaders, test harnesses, DMA
// — is always re-read.  Invalidated blocks are parked in a graveyard
// until the trace that triggered the invalidation has fully unwound.
#pragma once

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "isa/handler_table.hpp"
#include "isa/isa.hpp"

namespace la::cpu {

class IntegerUnit;
struct StepResult;

class BlockEngine {
 public:
  /// Drive `iu` exactly like IntegerUnit::run()'s per-step loop: until
  /// `max_steps` steps, error mode, or PC == `halt_pc`.  Returns the
  /// number of steps executed.  Only called observerless (the run() gate
  /// in IntegerUnit checks); the per-step interpreter remains the slow
  /// path for everything irregular.
  u64 run(IntegerUnit& iu, u64 max_steps, Addr halt_pc);

  // Engine counters, for tests and reports (host-side only; never part
  // of architectural state).
  u64 blocks_translated() const { return stat_translated_; }
  u64 block_instructions() const { return stat_instructions_; }
  u64 invalidations() const { return stat_invalidations_; }
  u64 chain_links() const { return stat_chains_; }

 private:
  // Dispatch token of one trace entry.  The first HandlerKind::kCount
  // values mirror isa::HandlerKind; the tail tokens are structural,
  // emitted by the translator rather than per-mnemonic.
  enum : u8 {
    kOpGeneric = static_cast<u8>(isa::HandlerKind::kGeneric),
    kOpBicc = static_cast<u8>(isa::HandlerKind::kCount),
    kOpCti,       // call/jmpl/rett/fbfcc/cbccc via execute()
    kOpSlotGate,  // annul check ahead of the delay-slot entry
    kOpEnd,       // sentinel: try to chain into the successor block
    // Immediate-operand twins of the inline ALU handlers: the translator
    // resolves the i-bit once, so the dispatcher's imm handlers read
    // simm13 directly instead of selecting between it and rs2 per op.
    kOpAluImmBase,
    kOpKinds = kOpAluImmBase + static_cast<u8>(isa::HandlerKind::kGeneric),
  };

  // One 8-byte trace entry.  The operand fields are predigested per token:
  //  - inline ALU: a/b/d are register-map indices, bimm the resolved
  //    immediate (simm13 sign-extended, or sethi's imm22 pre-shifted);
  //  - kOpBicc: a = cond, b = annul bit, bimm = word displacement << 2;
  //  - kOpGeneric/kOpCti: bimm indexes the block's `insns` side table
  //    holding the full decoded instruction for execute().
  struct BlockOp {
    u8 kind = kOpGeneric;
    u8 a = 0;
    u8 b = 0;
    u8 d = 0;
    u32 bimm = 0;
  };
  static_assert(sizeof(BlockOp) == 8);

  struct Block {
    Addr start = 0;
    Addr end = 0;  // one past the last translated word
    std::vector<BlockOp> ops;  // real ops followed by one kOpEnd sentinel
    std::vector<isa::Instruction> insns;  // kOpGeneric/kOpCti operands
    // Hot-block chaining: the last two successors, validated against the
    // engine generation so invalidation severs stale links before any
    // pointer is dereferenced.
    std::array<Addr, 2> chain_addr{{~0u, ~0u}};
    std::array<Block*, 2> chain_blk{{nullptr, nullptr}};
    std::array<u64, 2> chain_gen{{0, 0}};
    u8 chain_victim = 0;  // round-robin replacement cursor
  };

  static constexpr unsigned kMaxBlockOps = 64;  // body cap per block
  static constexpr unsigned kPageShift = 10;    // invalidation granule
  static constexpr std::size_t kL1Size = 512;   // direct-mapped front cache

  static std::size_t l1_index(Addr pc) { return (pc >> 2) & (kL1Size - 1); }

  Block* lookup(Addr pc);
  // `halt_pc` is constant for the cache's lifetime (the cache is flushed
  // at every run() entry), so the translator simply never emits the op at
  // halt_pc; the dispatcher then only needs to test halt at block
  // boundaries instead of before every op.
  Block* translate(IntegerUnit& iu, Addr pc, Addr halt_pc);
  u64 exec(IntegerUnit& iu, Block* blk, u64 steps_left, Addr halt_pc,
           StepResult& res);

  bool store_hits_code(Addr addr, unsigned size) const {
    return addr < code_hi_ && addr + size > code_lo_;
  }
  void invalidate_store(Addr addr, unsigned size);
  void erase_block(Block* b);
  void flush();

  std::unordered_map<Addr, std::unique_ptr<Block>> blocks_;
  std::array<Block*, kL1Size> l1_{};
  std::unordered_map<u32, std::vector<Block*>> pages_;  // page -> blocks
  Addr code_lo_ = ~0u;  // [code_lo_, code_hi_): union of translated spans
  Addr code_hi_ = 0;
  u64 gen_ = 1;  // bumped on every invalidation/flush; chains re-validate
  std::vector<std::unique_ptr<Block>> graveyard_;  // deferred frees

  u64 stat_translated_ = 0;
  u64 stat_instructions_ = 0;
  u64 stat_invalidations_ = 0;
  u64 stat_chains_ = 0;
};

}  // namespace la::cpu
