// LEON2-style timed processor model.
//
// This is the CPU the Liquid system actually runs: a single-issue in-order
// integer pipeline with LEON2 instruction latencies, configurable I/D
// caches, a write-through store path with a small write buffer, and all
// memory traffic routed over the AMBA AHB (so SDRAM handshakes, burst
// behaviour, and peripheral access costs all land in the cycle count the
// paper's hardware counter measures).
//
// The architectural semantics here are implemented independently of
// cpu::IntegerUnit; tests/property/cpu_equivalence_test.cpp runs random
// programs through both and requires identical architectural state.
#pragma once

#include <vector>

#include "bus/ahb.hpp"
#include "cache/cache.hpp"
#include "common/types.hpp"
#include "cpu/config.hpp"
#include "cpu/integer_unit.hpp"  // StepResult + ExecObserver
#include "cpu/state.hpp"

namespace la::cpu {

struct PipelineConfig {
  CpuConfig cpu;
  cache::CacheConfig icache{.size_bytes = 1024, .line_bytes = 32, .ways = 1};
  cache::CacheConfig dcache{.size_bytes = 1024, .line_bytes = 32, .ways = 1};
  bool icache_enabled = true;
  bool dcache_enabled = true;
  /// Write buffer entries for the write-through store path; 0 makes every
  /// store wait for its bus write synchronously.
  unsigned write_buffer_depth = 1;
};

struct PipelineStats {
  u64 instructions = 0;
  u64 annulled = 0;
  u64 traps = 0;
  Cycles cycles = 0;
  Cycles icache_stall = 0;   // cycles waiting on instruction line fills
  Cycles dcache_stall = 0;   // cycles waiting on data fills / uncached data
  Cycles store_stall = 0;    // cycles waiting on the write buffer

  // Instruction mix (retired instructions only).
  u64 loads = 0;
  u64 stores = 0;
  u64 branches = 0;        // Bicc (+FB/CB) encountered
  u64 taken_branches = 0;  // control actually transferred
  u64 calls = 0;           // call + jmpl
  u64 muldiv = 0;
};

/// Cacheability decision for an address (the system wires this to its
/// memory map; tests can cache everything).
using CacheableFn = bool (*)(Addr);

class LeonPipeline {
 public:
  /// `clock` is the global cycle counter the pipeline advances; sharing it
  /// with the SDRAM adapter and peripherals keeps one timebase.
  LeonPipeline(const PipelineConfig& cfg, bus::AhbBus& bus, Cycles* clock,
               CacheableFn cacheable);

  void reset(Addr entry);
  StepResult step();
  u64 run(u64 max_steps, Addr halt_pc = 0xffffffff);

  CpuState& state() { return st_; }
  const CpuState& state() const { return st_; }

  cache::Cache& icache() { return icache_; }
  cache::Cache& dcache() { return dcache_; }
  const PipelineStats& stats() const { return stats_; }
  void reset_stats() { stats_ = PipelineStats{}; }

  void set_irq(u8 level) { irq_level_ = level; }
  void set_observer(ExecObserver* obs) { obs_ = obs; }

  /// Fault injection: a wedged CPU burns cycles without fetching or
  /// retiring anything (clock-gating glitch / livelock).  The wedge holds
  /// until cleared or the pipeline is reset; only an external watchdog can
  /// notice.
  void set_wedged(bool wedged) { wedged_ = wedged; }
  bool wedged() const { return wedged_; }

  /// Invalidate both caches (reconfiguration, leon_ctrl restart).
  void flush_caches();

  Cycles now() const { return *clock_; }

  /// LEON cache control register (ASI 2 at address 0).
  u32 cache_control() const;

 private:
  // --- timed memory paths ---------------------------------------------------
  struct MemResult {
    bool ok = true;
    Cycles cycles = 0;  // stall cycles beyond the base instruction cost
    u64 value = 0;
  };

  MemResult ifetch(Addr pc, u32& word);
  MemResult data_read(Addr addr, unsigned size);
  MemResult data_write(Addr addr, unsigned size, u64 value);
  Cycles line_fill(bus::Master m, Addr line_addr, u32 line_bytes);
  /// Timed burst write of a full line's bytes (dirty victim eviction).
  Cycles writeback_line(Addr addr, const u8* bytes);

  // --- architectural execution ----------------------------------------------
  u8 execute(const isa::Instruction& ins, StepResult& res);
  void take_trap(u8 tt);
  u32 op2val(const isa::Instruction& ins) const;
  u32 window_mask() const {
    return cfg_.cpu.nwindows == 32 ? ~0u : ((1u << cfg_.cpu.nwindows) - 1u);
  }
  void icc_from(u32 res, bool v, bool c);

  // ASI-mediated cache control (lda/sta with asi 2).
  bool asi_access(const isa::Instruction& ins, StepResult& res, u8& tt);

  PipelineConfig cfg_;
  bus::AhbBus& bus_;
  Cycles* clock_;
  CacheableFn cacheable_;

  cache::Cache icache_;
  cache::Cache dcache_;
  CpuState st_;
  PipelineStats stats_;

  bool annul_next_ = false;
  bool wedged_ = false;
  u8 irq_level_ = 0;
  bool cti_taken_ = false;
  Addr cti_target_ = 0;
  Cycles wb_free_at_ = 0;  // when the write buffer can accept a new store
  ExecObserver* obs_ = nullptr;
};

}  // namespace la::cpu
