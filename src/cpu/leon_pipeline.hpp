// LEON2-style timed processor model.
//
// This is the CPU the Liquid system actually runs: a single-issue in-order
// integer pipeline with LEON2 instruction latencies, configurable I/D
// caches, a write-through store path with a small write buffer, and all
// memory traffic routed over the AMBA AHB (so SDRAM handshakes, burst
// behaviour, and peripheral access costs all land in the cycle count the
// paper's hardware counter measures).
//
// The architectural semantics here are implemented independently of
// cpu::IntegerUnit; tests/property/cpu_equivalence_test.cpp runs random
// programs through both and requires identical architectural state.
#pragma once

#include <vector>

#include "bus/ahb.hpp"
#include "cache/cache.hpp"
#include "common/types.hpp"
#include "cpu/config.hpp"
#include "cpu/integer_unit.hpp"  // StepResult + ExecObserver
#include "cpu/state.hpp"
#include "isa/decode_cache.hpp"

namespace la::cpu {

struct PipelineConfig {
  CpuConfig cpu;
  cache::CacheConfig icache{.size_bytes = 1024, .line_bytes = 32, .ways = 1};
  cache::CacheConfig dcache{.size_bytes = 1024, .line_bytes = 32, .ways = 1};
  bool icache_enabled = true;
  bool dcache_enabled = true;
  /// Write buffer entries for the write-through store path; 0 makes every
  /// store wait for its bus write synchronously.
  unsigned write_buffer_depth = 1;
  /// Host-performance knob (no effect on simulated cycles or state):
  /// enables the predecoded I-cache-line mirror and the cache-hit fast
  /// paths that skip AccessOutcome materialization.  The timed behaviour
  /// is bit-identical either way — tests/property/fastpath_equivalence
  /// and the differential fuzzer run both settings against each other.
  bool host_fast_paths = true;
};

struct PipelineStats {
  u64 instructions = 0;
  u64 annulled = 0;
  u64 traps = 0;
  Cycles cycles = 0;
  Cycles icache_stall = 0;   // cycles waiting on instruction line fills
  Cycles dcache_stall = 0;   // cycles waiting on data fills / uncached data
  Cycles store_stall = 0;    // cycles waiting on the write buffer

  // Instruction mix (retired instructions only).
  u64 loads = 0;
  u64 stores = 0;
  u64 branches = 0;        // Bicc (+FB/CB) encountered
  u64 taken_branches = 0;  // control actually transferred
  u64 calls = 0;           // call + jmpl
  u64 muldiv = 0;
};

/// Cacheability decision for an address (the system wires this to its
/// memory map; tests can cache everything).  The decision must be uniform
/// within a cache line: cacheability comes from the memory map per AHB
/// slave, and device ranges are vastly larger than a line.  The fill path
/// relies on this (a whole line is filled by one access), and so does the
/// hot fetch path (a resident line implies its addresses are cacheable).
using CacheableFn = bool (*)(Addr);

class LeonPipeline {
 public:
  /// `clock` is the global cycle counter the pipeline advances; sharing it
  /// with the SDRAM adapter and peripherals keeps one timebase.
  LeonPipeline(const PipelineConfig& cfg, bus::AhbBus& bus, Cycles* clock,
               CacheableFn cacheable);

  void reset(Addr entry);
  StepResult step();
  /// Hot-path form of step(): see IntegerUnit::step_into for the reuse
  /// contract (early-out paths leave `res.ins` untouched).
  void step_into(StepResult& res);
  /// Hottest form: additionally skips filling `res.ins` when no observer
  /// is attached (the observer contract still gets a full result).  Only
  /// for run loops whose callers never read `res.ins`.
  void step_into_hot(StepResult& res);
  u64 run(u64 max_steps, Addr halt_pc = 0xffffffff);

  CpuState& state() { return st_; }

 private:
  /// The per-step half of run(): used when an observer is attached or the
  /// host fast paths are off (the reference configuration).
  u64 run_slow(u64 max_steps, Addr halt_pc);

 public:
  const CpuState& state() const { return st_; }

  cache::Cache& icache() { return icache_; }
  cache::Cache& dcache() { return dcache_; }
  const PipelineStats& stats() const { return stats_; }
  void reset_stats() { stats_ = PipelineStats{}; }

  void set_irq(u8 level) { irq_level_ = level; }
  void set_observer(ExecObserver* obs) { obs_ = obs; }

  /// Fault injection: a wedged CPU burns cycles without fetching or
  /// retiring anything (clock-gating glitch / livelock).  The wedge holds
  /// until cleared or the pipeline is reset; only an external watchdog can
  /// notice.
  void set_wedged(bool wedged) { wedged_ = wedged; }
  bool wedged() const { return wedged_; }

  /// Invalidate both caches (reconfiguration, leon_ctrl restart).
  void flush_caches();

  Cycles now() const { return *clock_; }

  /// LEON cache control register (ASI 2 at address 0).
  u32 cache_control() const;

  const PipelineConfig& config() const { return cfg_; }

  /// Snapshot support: full architectural state (all windows, PSR/WIM/Y,
  /// ASRs, error/wedge flags), the inter-step pipeline latches, both caches,
  /// and the stats.  load_state requires the same architectural
  /// configuration (window count, cache geometry) and invalidates every
  /// host-side fast-path memo; host knobs may differ freely between the
  /// capturing and restoring pipeline.
  void save_state(SnapWriter& w) const;
  bool load_state(SnapReader& r);

 private:
  // --- timed memory paths ---------------------------------------------------
  struct MemResult {
    bool ok = true;
    Cycles cycles = 0;  // stall cycles beyond the base instruction cost
    u64 value = 0;
  };

  /// Fetch the word at `pc`.  When the predecoded mirror has the decoded
  /// form, `predecoded` is pointed at it (valid until the next I-cache
  /// fill); otherwise it is left untouched (caller pre-nulls it).
  /// ifetch_hot() below handles the hit paths; this handles the rest.
  MemResult ifetch(Addr pc, u32& word, const isa::Instruction*& predecoded);

  /// Header-inline zero-stall fetch: ordinary I-cache hit, served from the
  /// predecoded mirror (or the resident bytes when the mirror is stale).
  /// Returns false without touching anything observable when the fetch
  /// needs the full ifetch() path — fast paths off, uncacheable address,
  /// or a miss/poisoned line (lookup_hit touches nothing on those).
  /// No cacheable_() call here: a hit means the line was filled, which
  /// required a cacheable address, and cacheability is line-uniform (see
  /// CacheableFn) — an uncacheable pc can never hit, so the probe itself
  /// is the cacheability check.
  ///
  /// The streak memo (last_iline_/last_islot_/last_igen_) skips even the
  /// tag probe while fetching within one line: it is valid exactly while
  /// the I-cache's content generation is unchanged (no fill, flush,
  /// invalidate, or poison since the memoized hit — see Cache::gen()),
  /// and touch_read_hit applies the identical LRU/stats update the full
  /// probe would have.
  bool ifetch_hot(Addr pc, u32& word, const isa::Instruction*& predecoded) {
    if (!hot_ifetch_) return false;
    const Addr line = pc & ~static_cast<Addr>(iline_mask_);
    if (line == last_iline_ && icache_.gen() == last_igen_) [[likely]] {
      icache_.touch_read_hit(last_islot_);
      predecoded = last_imirror_ + ((pc & iline_mask_) >> 2);
      word = predecoded->raw;
      return true;
    }
    const cache::HitRef h = icache_.lookup_hit(pc);
    if (h.data == nullptr) return false;
    if (imirror_addr_[h.slot] == line) [[likely]] {
      last_iline_ = line;
      last_islot_ = h.slot;
      last_igen_ = icache_.gen();
      last_imirror_ = &imirror_ins_[static_cast<std::size_t>(h.slot)
                                    << iline_words_shift_];
      predecoded = last_imirror_ + ((pc & iline_mask_) >> 2);
      word = predecoded->raw;
      return true;
    }
    // Mirror stale (line filled behind our back): big-endian word from the
    // resident bytes; the access() stats/LRU effects already happened in
    // lookup_hit, so we must not fall back to ifetch().
    const u8* p = h.data + (pc & iline_mask_);
    word = (u32{p[0]} << 24) | (u32{p[1]} << 16) | (u32{p[2]} << 8) | p[3];
    return true;
  }
  MemResult data_read(Addr addr, unsigned size);
  MemResult data_write(Addr addr, unsigned size, u64 value);
  /// Timed burst write of a full line's bytes (dirty victim eviction).
  Cycles writeback_line(Addr addr, const u8* bytes);
  /// Decode the freshly filled I-cache line into the mirror slot.
  void predecode_line(u32 slot, Addr line_addr, const u8* line);

  // --- architectural execution ----------------------------------------------
  /// Shared step body; kCopyIns=false skips the `res.ins` copy (run loops
  /// with no consumer of the decoded form).
  template <bool kCopyIns>
  void step_impl(StepResult& res);
  u8 execute(const isa::Instruction& ins, StepResult& res);
  void take_trap(u8 tt);
  u32 op2val(const isa::Instruction& ins) const;
  u32 window_mask() const {
    return cfg_.cpu.nwindows == 32 ? ~0u : ((1u << cfg_.cpu.nwindows) - 1u);
  }
  void icc_from(u32 res, bool v, bool c);

  // ASI-mediated cache control (lda/sta with asi 2).
  bool asi_access(const isa::Instruction& ins, StepResult& res, u8& tt);

  PipelineConfig cfg_;
  bus::AhbBus& bus_;
  Cycles* clock_;
  CacheableFn cacheable_;

  cache::Cache icache_;
  cache::Cache dcache_;
  CpuState st_;
  PipelineStats stats_;

  // --- host fast-path state (never affects simulated time/state) ------------
  isa::DecodeCache predecode_;  // word-keyed; see CpuConfig::host_decode_cache
  /// Per-I-cache-slot mirror of the resident line's decoded instructions,
  /// (re)built whenever a line is filled.  `imirror_addr_[slot]` is the
  /// line address the mirror content belongs to (kNoMirrorLine = none);
  /// a fast-path fetch uses it only when the slot's resident line address
  /// matches, so replacement/flush/reload invalidation is implicit: any
  /// event that changes the bytes a fetch can hit goes through a fill,
  /// and the fill refreshes the mirror.
  static constexpr Addr kNoMirrorLine = ~Addr{0};
  std::vector<Addr> imirror_addr_;
  std::vector<isa::Instruction> imirror_ins_;  // num_lines * words_per_line
  /// Fetch-streak memo: the line/slot of the last mirror-served hit and
  /// the I-cache generation it was observed at (see ifetch_hot).
  /// kNoMirrorLine can never be a real line base (pc is word-aligned and
  /// lines are >= 8 bytes), so no separate valid flag is needed.
  Addr last_iline_ = kNoMirrorLine;
  u32 last_islot_ = 0;
  u64 last_igen_ = 0;
  /// Mirror base of the memoized slot (imirror_ins_ never reallocates
  /// after construction, so the pointer stays valid for the object's
  /// lifetime; the gen check governs whether its *contents* are current).
  const isa::Instruction* last_imirror_ = nullptr;
  u32 iline_mask_ = 0;    // icache line_bytes - 1
  u32 iline_words_ = 0;   // icache line_bytes / 4
  u32 iline_words_shift_ = 0;  // log2(iline_words_): mirror slot stride
  u32 dline_mask_ = 0;    // dcache line_bytes - 1
  bool fast_ = false;     // cfg_.host_fast_paths (hoisted)
  bool hot_ifetch_ = false;  // fast_ && icache_enabled (hoisted)

  bool annul_next_ = false;
  bool wedged_ = false;
  u8 irq_level_ = 0;
  bool cti_taken_ = false;
  Addr cti_target_ = 0;
  Cycles wb_free_at_ = 0;  // when the write buffer can accept a new store
  ExecObserver* obs_ = nullptr;
};

}  // namespace la::cpu
