// A simple flat big-endian RAM implementing MemoryPort — the substrate for
// the functional reference model and for unit tests.
#pragma once

#include <cassert>
#include <span>
#include <vector>

#include "common/bits.hpp"
#include "common/types.hpp"
#include "cpu/memory_port.hpp"

namespace la::cpu {

class FlatMemory final : public MemoryPort {
 public:
  /// `base` is the address of byte 0; accesses outside [base, base+size)
  /// fail, which the CPU turns into access exceptions.
  explicit FlatMemory(std::size_t size, Addr base = 0)
      : base_(base), data_(size, 0) {}

  Addr base() const { return base_; }
  std::size_t size() const { return data_.size(); }

  bool read(Addr addr, unsigned size, u64& out) override {
    if (!contains(addr, size)) return false;
    const std::size_t o = addr - base_;
    u64 v = 0;
    for (unsigned i = 0; i < size; ++i) v = (v << 8) | data_[o + i];
    out = v;
    return true;
  }

  bool write(Addr addr, unsigned size, u64 value) override {
    if (!contains(addr, size)) return false;
    const std::size_t o = addr - base_;
    for (unsigned i = 0; i < size; ++i) {
      data_[o + i] = static_cast<u8>(value >> (8 * (size - 1 - i)));
    }
    return true;
  }

  /// Bulk image load (program loading in tests).
  void load(Addr addr, std::span<const u8> bytes) {
    assert(contains(addr, bytes.size()));
    std::copy(bytes.begin(), bytes.end(), data_.begin() + (addr - base_));
  }

  /// Direct word access helpers for test assertions.
  u32 word_at(Addr addr) const {
    u64 v = 0;
    [[maybe_unused]] const bool ok =
        const_cast<FlatMemory*>(this)->read(addr, 4, v);
    assert(ok);
    return static_cast<u32>(v);
  }

  std::span<const u8> raw() const { return data_; }

 private:
  bool contains(Addr addr, std::size_t size) const {
    return addr >= base_ && addr - base_ + size <= data_.size();
  }

  Addr base_;
  std::vector<u8> data_;
};

}  // namespace la::cpu
