#include "cpu/leon_pipeline.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <vector>

#include "common/bits.hpp"
#include "isa/decode.hpp"
#include "isa/traps.hpp"

namespace la::cpu {

using isa::Cond;
using isa::Instruction;
using isa::Mnemonic;
using isa::Trap;

namespace {
constexpr u8 kNoTrap = static_cast<u8>(Trap::kNone);
constexpr u8 tt_of(Trap t) { return static_cast<u8>(t); }

/// Big-endian scalar access into a cache line's byte storage.
u64 line_read(const u8* line, u32 off, unsigned size) {
  u64 v = 0;
  for (unsigned i = 0; i < size; ++i) v = (v << 8) | line[off + i];
  return v;
}

void line_write(u8* line, u32 off, unsigned size, u64 v) {
  for (unsigned i = 0; i < size; ++i) {
    line[off + i] = static_cast<u8>(v >> (8 * (size - 1 - i)));
  }
}

}  // namespace

LeonPipeline::LeonPipeline(const PipelineConfig& cfg, bus::AhbBus& bus,
                           Cycles* clock, CacheableFn cacheable)
    : cfg_(cfg),
      bus_(bus),
      clock_(clock),
      cacheable_(cacheable),
      icache_(cfg.icache, /*seed=*/1),
      dcache_(cfg.dcache, /*seed=*/2),
      st_(cfg.cpu),
      imirror_addr_(cfg.icache.num_lines(), kNoMirrorLine),
      imirror_ins_(static_cast<std::size_t>(cfg.icache.num_lines()) *
                   cfg.icache.words_per_line()),
      iline_mask_(cfg.icache.line_bytes - 1),
      iline_words_(cfg.icache.words_per_line()),
      iline_words_shift_(
          static_cast<u32>(std::countr_zero(cfg.icache.words_per_line()))),
      dline_mask_(cfg.dcache.line_bytes - 1),
      fast_(cfg.host_fast_paths),
      hot_ifetch_(cfg.host_fast_paths && cfg.icache_enabled) {
  assert(cfg.cpu.valid() && cfg.icache.valid() && cfg.dcache.valid());
  assert(clock != nullptr && cacheable != nullptr);
  // Doubleword accesses must never straddle a line.
  assert(cfg.icache.line_bytes >= 8 && cfg.dcache.line_bytes >= 8);
}

void LeonPipeline::reset(Addr entry) {
  st_ = CpuState(cfg_.cpu);
  st_.pc = entry;
  st_.npc = entry + 4;
  st_.psr.s = true;
  st_.psr.et = false;
  annul_next_ = false;
  wedged_ = false;
  irq_level_ = 0;
  wb_free_at_ = 0;
  flush_caches();
}

void LeonPipeline::flush_caches() {
  icache_.flush();
  // The mirror self-invalidates via the line-address check (nothing can
  // hit a flushed line without a refill, and the refill refreshes the
  // mirror); clearing it here is belt-and-braces hygiene off the hot path.
  std::fill(imirror_addr_.begin(), imirror_addr_.end(), kNoMirrorLine);
  // LEON's caches are write-through: dirty data cannot exist, so a plain
  // invalidate is a correct flush for the default policy.  For the
  // write-back extension the victims are pushed out over the bus.
  std::vector<cache::DirtyLine> dirty;
  dcache_.flush(&dirty);
  for (const cache::DirtyLine& d : dirty) {
    *clock_ += writeback_line(d.addr, d.data.data());
  }
}

Cycles LeonPipeline::writeback_line(Addr addr, const u8* bytes) {
  bool error = false;  // memory writeback errors are ignored, as before
  return bus_.write_line(bus::Master::kCpuData, addr, cfg_.dcache.line_bytes,
                         bytes, error);
}

u32 LeonPipeline::cache_control() const {
  u32 ccr = 0;
  if (cfg_.icache_enabled) ccr |= 0x3;        // ICS = enabled
  if (cfg_.dcache_enabled) ccr |= 0x3 << 2;   // DCS = enabled
  return ccr;
}

// ---------------------------------------------------------------------------
// Timed memory paths
// ---------------------------------------------------------------------------

void LeonPipeline::predecode_line(u32 slot, Addr line_addr, const u8* line) {
  imirror_addr_[slot] = line_addr;
  isa::Instruction* dst =
      &imirror_ins_[static_cast<std::size_t>(slot) * iline_words_];
  for (u32 w = 0; w < iline_words_; ++w) {
    const u32 word = static_cast<u32>(line_read(line, w * 4, 4));
    dst[w] = predecode_.lookup(word);
  }
}

LeonPipeline::MemResult LeonPipeline::ifetch(
    Addr pc, u32& word, const isa::Instruction*& /*predecoded*/) {
  // The predecoded pointer is never set here: a fill refreshes the mirror
  // and the *next* fetch of this pc hits ifetch_hot's mirror path, which
  // keeps this (cold) function free of the mirror-indexing arithmetic.
  MemResult r;
  const bool cached = cfg_.icache_enabled && cacheable_(pc);
  if (!cached) {
    u32 v = 0;
    bus::AhbTransfer t;
    t.addr = pc;
    t.data = &v;
    r.cycles = bus_.transfer(bus::Master::kCpuInstr, t);
    r.ok = !t.error;
    word = v;
    return r;
  }
  // The hit paths (ordinary hit + fresh/stale mirror) live in ifetch_hot();
  // callers try that first, so by the time we are here the probe already
  // missed (and touched nothing) or the fast paths are off.
  const auto out = icache_.access(pc, /*is_write=*/false);
  if (!out.hit) {
    bool error = false;
    r.cycles = bus_.fill_line(bus::Master::kCpuInstr, out.line_addr,
                              cfg_.icache.line_bytes, out.data, error);
    stats_.icache_stall += r.cycles;
    if (error) {
      icache_.invalidate_line(pc);
      imirror_addr_[out.slot] = kNoMirrorLine;
      r.ok = false;
      return r;
    }
    if (fast_) predecode_line(out.slot, out.line_addr, out.data);
    word = static_cast<u32>(line_read(out.data, pc - out.line_addr, 4));
    return r;
  }
  word = static_cast<u32>(line_read(out.data, pc - out.line_addr, 4));
  return r;
}

LeonPipeline::MemResult LeonPipeline::data_read(Addr addr, unsigned size) {
  MemResult r;
  const bool cached = cfg_.dcache_enabled && cacheable_(addr);
  if (!cached) {
    if (size == 8) {
      u32 buf[2] = {};
      bus::AhbTransfer t;
      t.addr = addr;
      t.beats = 2;
      t.burst = bus::HBurst::kIncr;
      t.data = buf;
      r.cycles = bus_.transfer(bus::Master::kCpuData, t);
      r.ok = !t.error;
      r.value = (u64{buf[0]} << 32) | buf[1];
    } else {
      u32 v = 0;
      bus::AhbTransfer t;
      t.addr = addr;
      t.beat_bytes = size;
      t.data = &v;
      r.cycles = bus_.transfer(bus::Master::kCpuData, t);
      r.ok = !t.error;
      r.value = v;
    }
    stats_.dcache_stall += r.cycles;
    return r;
  }

  if (fast_) {
    // Hot path: ordinary read hit (LRU/stats updated inside, identically
    // to the access() hit path below).
    const cache::HitRef h = dcache_.lookup_hit(addr);
    if (h.data != nullptr) {
      r.value = line_read(h.data, addr & dline_mask_, size);
      return r;
    }
  }
  const auto out = dcache_.access(addr, /*is_write=*/false);
  if (out.parity_discard) {
    // A poisoned dirty line lost the only copy of its data; fault.
    r.ok = false;
    return r;
  }
  if (out.writeback) {
    // Dirty victim (write-back extension): push its bytes out before the
    // fill overwrites the slot.
    r.cycles += writeback_line(out.victim_addr, out.data);
  }
  if (out.fill) {
    bool error = false;
    r.cycles += bus_.fill_line(bus::Master::kCpuData, out.line_addr,
                               cfg_.dcache.line_bytes, out.data, error);
    stats_.dcache_stall += r.cycles;
    if (error) {
      dcache_.invalidate_line(addr);
      r.ok = false;
      return r;
    }
  }
  r.value = line_read(out.data, addr - out.line_addr, size);
  return r;
}

LeonPipeline::MemResult LeonPipeline::data_write(Addr addr, unsigned size,
                                                 u64 value) {
  MemResult r;
  const bool cached = cfg_.dcache_enabled && cacheable_(addr);
  const bool write_back =
      cfg_.dcache.write_policy == cache::WritePolicy::kWriteBackAllocate;

  if (cached && write_back) {
    const auto out = dcache_.access(addr, /*is_write=*/true);
    if (out.parity_discard) {
      r.ok = false;
      return r;
    }
    if (out.writeback) {
      r.cycles += writeback_line(out.victim_addr, out.data);
    }
    if (out.fill) {
      // Write-allocate: fetch the line, then merge the store into it.
      bool error = false;
      r.cycles += bus_.fill_line(bus::Master::kCpuData, out.line_addr,
                                 cfg_.dcache.line_bytes, out.data, error);
      if (error) {
        dcache_.invalidate_line(addr);
        r.ok = false;
        return r;
      }
    }
    line_write(out.data, addr - out.line_addr, size, value);
    stats_.dcache_stall += r.cycles;
    return r;
  }

  // Write-through (or uncached): the store goes on the bus.
  if (cached) {
    const auto out = dcache_.access(addr, /*is_write=*/true);
    if (out.hit) {
      // Keep the resident line coherent with the memory write below.
      line_write(out.data, addr - out.line_addr, size, value);
    }
  }

  Cycles bus_cost = 0;
  bool error = false;
  if (size == 8) {
    u32 buf[2] = {static_cast<u32>(value >> 32), static_cast<u32>(value)};
    bus::AhbTransfer t;
    t.addr = addr;
    t.write = true;
    t.beats = 2;
    t.burst = bus::HBurst::kIncr;
    t.data = buf;
    bus_cost = bus_.transfer(bus::Master::kCpuData, t);
    error = t.error;
  } else {
    u32 v = static_cast<u32>(value);
    bus::AhbTransfer t;
    t.addr = addr;
    t.write = true;
    t.beat_bytes = size;
    t.data = &v;
    bus_cost = bus_.transfer(bus::Master::kCpuData, t);
    error = t.error;
  }
  if (error) {
    r.ok = false;
    r.cycles = bus_cost;
    return r;
  }

  const bool buffered = cached && cfg_.write_buffer_depth > 0;
  if (!buffered) {
    r.cycles = bus_cost;
    stats_.dcache_stall += bus_cost;
    return r;
  }
  // Write buffer: the store retires immediately unless the buffer is still
  // draining a previous store (single-entry drain model).
  const Cycles now = *clock_;
  const Cycles start = std::max(now, wb_free_at_);
  const Cycles stall = start - now;
  wb_free_at_ = start + bus_cost;
  r.cycles = stall;
  stats_.store_stall += stall;
  return r;
}

// ---------------------------------------------------------------------------
// Trap machinery (independent implementation; see integer_unit.cpp for the
// reference model)
// ---------------------------------------------------------------------------

void LeonPipeline::take_trap(u8 tt) {
  ++stats_.traps;
  if (!st_.psr.et && tt != tt_of(Trap::kReset)) {
    st_.set_tbr_tt(tt);
    st_.error_mode = true;
    return;
  }
  st_.psr.et = false;
  st_.psr.ps = st_.psr.s;
  st_.psr.s = true;
  st_.psr.cwp =
      static_cast<u8>((st_.psr.cwp + st_.nwindows - 1) % st_.nwindows);
  st_.set_reg(17, st_.pc);
  st_.set_reg(18, st_.npc);
  st_.set_tbr_tt(tt);
  st_.pc = (st_.tbr & 0xfffff000u) + (u32{tt} << 4);
  st_.npc = st_.pc + 4;
  annul_next_ = false;
}

void LeonPipeline::icc_from(u32 res, bool v, bool c) {
  st_.psr.n = (res >> 31) != 0;
  st_.psr.z = res == 0;
  st_.psr.v = v;
  st_.psr.c = c;
}

u32 LeonPipeline::op2val(const Instruction& ins) const {
  return ins.imm ? static_cast<u32>(ins.simm13) : st_.reg(ins.rs2);
}

bool LeonPipeline::asi_access(const Instruction& ins, StepResult& res,
                              u8& tt) {
  // LEON ASI 2: system control registers — address 0 is the cache control
  // register.  Flush bits FI (21) and FD (22) invalidate the caches.
  if (ins.asi != 2) return false;
  const Addr ea = st_.reg(ins.rs1) + st_.reg(ins.rs2);
  if (ea != 0) return false;
  tt = kNoTrap;
  if (ins.mn == Mnemonic::kLda) {
    st_.set_reg(ins.rd, cache_control());
    res.cycles += cfg_.cpu.load_extra;
    return true;
  }
  if (ins.mn == Mnemonic::kSta) {
    const u32 v = st_.reg(ins.rd);
    if (v & (1u << 21)) icache_.flush();
    if (v & (1u << 22)) {
      std::vector<cache::DirtyLine> dirty;
      dcache_.flush(&dirty);
      for (const cache::DirtyLine& d : dirty) {
        res.cycles += writeback_line(d.addr, d.data.data());
      }
    }
    res.cycles += cfg_.cpu.store_extra;
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

u8 LeonPipeline::execute(const Instruction& ins, StepResult& res) {
  auto& st = st_;
  const Addr pc = st.pc;
  const u32 ra = st.reg(ins.rs1);
  const u32 rb = op2val(ins);

  const auto branch_target = [&] {
    return pc + (static_cast<u32>(ins.disp) << 2);
  };

  switch (ins.mn) {
    case Mnemonic::kInvalid:
    case Mnemonic::kUnimp:
      return tt_of(Trap::kIllegalInstruction);

    case Mnemonic::kCall:
      st.set_reg(15, pc);
      cti_taken_ = true;
      cti_target_ = branch_target();
      res.cycles += cfg_.cpu.cti_extra;
      ++stats_.calls;
      return kNoTrap;

    case Mnemonic::kBicc: {
      // Instruction-mix accounting happens inline on the no-trap paths
      // (here and in every case below): it is exactly the retired-only
      // bookkeeping step_impl used to do in a second mnemonic switch,
      // folded in so the hot path dispatches once.
      ++stats_.branches;
      const bool taken =
          isa::eval_cond(ins.cond, st.psr.n, st.psr.z, st.psr.v, st.psr.c);
      if (ins.cond == Cond::kA) {
        cti_taken_ = true;
        cti_target_ = branch_target();
        annul_next_ = ins.annul;
        res.cycles += cfg_.cpu.cti_extra;
        ++stats_.taken_branches;
      } else if (taken) {
        cti_taken_ = true;
        cti_target_ = branch_target();
        res.cycles += cfg_.cpu.cti_extra;
        ++stats_.taken_branches;
      } else if (ins.annul) {
        annul_next_ = true;
      }
      return kNoTrap;
    }

    case Mnemonic::kFbfcc:
      return tt_of(Trap::kFpDisabled);
    case Mnemonic::kCbccc:
      return tt_of(Trap::kCpDisabled);

    case Mnemonic::kJmpl: {
      const Addr target = ra + rb;
      if ((target & 3u) != 0) return tt_of(Trap::kMemAddressNotAligned);
      st.set_reg(ins.rd, pc);
      cti_taken_ = true;
      cti_target_ = target;
      res.cycles += cfg_.cpu.cti_extra;
      ++stats_.calls;
      return kNoTrap;
    }

    case Mnemonic::kRett: {
      if (st.psr.et) {
        return st.psr.s ? tt_of(Trap::kIllegalInstruction)
                        : tt_of(Trap::kPrivilegedInstruction);
      }
      if (!st.psr.s) return tt_of(Trap::kPrivilegedInstruction);
      const unsigned ncwp = (st.psr.cwp + 1) % st.nwindows;
      if ((st.wim >> ncwp) & 1u) return tt_of(Trap::kWindowUnderflow);
      const Addr target = ra + rb;
      if ((target & 3u) != 0) return tt_of(Trap::kMemAddressNotAligned);
      st.psr.cwp = static_cast<u8>(ncwp);
      st.psr.s = st.psr.ps;
      st.psr.et = true;
      cti_taken_ = true;
      cti_target_ = target;
      res.cycles += cfg_.cpu.cti_extra;
      return kNoTrap;
    }

    case Mnemonic::kTicc: {
      if (!isa::eval_cond(ins.cond, st.psr.n, st.psr.z, st.psr.v, st.psr.c)) {
        return kNoTrap;
      }
      return static_cast<u8>(0x80u + ((ra + rb) & 0x7fu));
    }

    case Mnemonic::kFlush: {
      // LEON flush: invalidate the I- and D-cache lines holding the
      // effective address (this is what makes the boot ROM's mailbox poll
      // see writes performed behind the processor's back, Fig 5).
      const Addr ea = ra + rb;
      icache_.invalidate_line(ea);
      cache::DirtyLine d;
      if (dcache_.invalidate_line(ea, &d) && !d.data.empty()) {
        res.cycles += writeback_line(d.addr, d.data.data());
      }
      return kNoTrap;
    }

    case Mnemonic::kSethi:
      st.set_reg(ins.rd, ins.imm22 << 10);
      return kNoTrap;

    // Logical ---------------------------------------------------------------
    case Mnemonic::kAnd: st.set_reg(ins.rd, ra & rb); return kNoTrap;
    case Mnemonic::kOr: st.set_reg(ins.rd, ra | rb); return kNoTrap;
    case Mnemonic::kXor: st.set_reg(ins.rd, ra ^ rb); return kNoTrap;
    case Mnemonic::kAndn: st.set_reg(ins.rd, ra & ~rb); return kNoTrap;
    case Mnemonic::kOrn: st.set_reg(ins.rd, ra | ~rb); return kNoTrap;
    case Mnemonic::kXnor: st.set_reg(ins.rd, ~(ra ^ rb)); return kNoTrap;
    case Mnemonic::kAndcc: case Mnemonic::kOrcc: case Mnemonic::kXorcc:
    case Mnemonic::kAndncc: case Mnemonic::kOrncc: case Mnemonic::kXnorcc: {
      u32 v = 0;
      switch (ins.mn) {
        case Mnemonic::kAndcc: v = ra & rb; break;
        case Mnemonic::kOrcc: v = ra | rb; break;
        case Mnemonic::kXorcc: v = ra ^ rb; break;
        case Mnemonic::kAndncc: v = ra & ~rb; break;
        case Mnemonic::kOrncc: v = ra | ~rb; break;
        default: v = ~(ra ^ rb); break;
      }
      icc_from(v, false, false);
      st.set_reg(ins.rd, v);
      return kNoTrap;
    }

    // Shifts ------------------------------------------------------------------
    case Mnemonic::kSll: st.set_reg(ins.rd, ra << (rb & 31u)); return kNoTrap;
    case Mnemonic::kSrl: st.set_reg(ins.rd, ra >> (rb & 31u)); return kNoTrap;
    case Mnemonic::kSra:
      st.set_reg(ins.rd, static_cast<u32>(static_cast<i32>(ra) >> (rb & 31u)));
      return kNoTrap;

    // Add / subtract ------------------------------------------------------------
    case Mnemonic::kAdd: st.set_reg(ins.rd, ra + rb); return kNoTrap;
    case Mnemonic::kSub: st.set_reg(ins.rd, ra - rb); return kNoTrap;
    case Mnemonic::kAddx:
      st.set_reg(ins.rd, ra + rb + (st.psr.c ? 1u : 0u));
      return kNoTrap;
    case Mnemonic::kSubx:
      st.set_reg(ins.rd,
                 ra - rb -
                     (!cfg_.cpu.quirk_subx_no_carry && st.psr.c ? 1u : 0u));
      return kNoTrap;
    case Mnemonic::kAddcc:
    case Mnemonic::kAddxcc: {
      const u32 cin =
          (ins.mn == Mnemonic::kAddxcc && st.psr.c) ? 1u : 0u;
      const u64 wide = u64{ra} + rb + cin;
      const u32 v = static_cast<u32>(wide);
      const bool ovf = ((~(ra ^ rb) & (ra ^ v)) >> 31) != 0;
      icc_from(v, ovf, (wide >> 32) != 0);
      st.set_reg(ins.rd, v);
      return kNoTrap;
    }
    case Mnemonic::kSubcc:
    case Mnemonic::kSubxcc: {
      const u32 cin =
          (ins.mn == Mnemonic::kSubxcc && st.psr.c) ? 1u : 0u;
      const u32 v = ra - rb - cin;
      const bool ovf = (((ra ^ rb) & (ra ^ v)) >> 31) != 0;
      const bool borrow = u64{ra} < u64{rb} + cin;
      icc_from(v, ovf, borrow);
      st.set_reg(ins.rd, v);
      return kNoTrap;
    }

    // Tagged ---------------------------------------------------------------------
    case Mnemonic::kTaddcc:
    case Mnemonic::kTaddcctv: {
      const u64 wide = u64{ra} + rb;
      const u32 v = static_cast<u32>(wide);
      const bool ovf = ((~(ra ^ rb) & (ra ^ v)) >> 31) != 0 ||
                       ((ra | rb) & 3u) != 0;
      if (ovf && ins.mn == Mnemonic::kTaddcctv) {
        return tt_of(Trap::kTagOverflow);
      }
      icc_from(v, ovf, (wide >> 32) != 0);
      st.set_reg(ins.rd, v);
      return kNoTrap;
    }
    case Mnemonic::kTsubcc:
    case Mnemonic::kTsubcctv: {
      const u32 v = ra - rb;
      const bool ovf = (((ra ^ rb) & (ra ^ v)) >> 31) != 0 ||
                       ((ra | rb) & 3u) != 0;
      if (ovf && ins.mn == Mnemonic::kTsubcctv) {
        return tt_of(Trap::kTagOverflow);
      }
      icc_from(v, ovf, u64{ra} < u64{rb});
      st.set_reg(ins.rd, v);
      return kNoTrap;
    }

    // Multiply / divide -------------------------------------------------------------
    case Mnemonic::kMulscc: {
      const u32 v1 = ((st.psr.n != st.psr.v) ? 0x80000000u : 0u) | (ra >> 1);
      const u32 v2 = (st.y & 1u) ? rb : 0u;
      const u64 wide = u64{v1} + v2;
      const u32 v = static_cast<u32>(wide);
      const bool ovf = ((~(v1 ^ v2) & (v1 ^ v)) >> 31) != 0;
      icc_from(v, ovf, (wide >> 32) != 0);
      st.y = (st.y >> 1) | ((ra & 1u) << 31);
      st.set_reg(ins.rd, v);
      return kNoTrap;
    }
    case Mnemonic::kUmul:
    case Mnemonic::kUmulcc:
    case Mnemonic::kSmul:
    case Mnemonic::kSmulcc: {
      if (!cfg_.cpu.has_mul) return tt_of(Trap::kIllegalInstruction);
      const bool sign =
          ins.mn == Mnemonic::kSmul || ins.mn == Mnemonic::kSmulcc;
      const u64 p = sign ? static_cast<u64>(i64{static_cast<i32>(ra)} *
                                            i64{static_cast<i32>(rb)})
                         : u64{ra} * u64{rb};
      st.y = static_cast<u32>(p >> 32);
      const u32 v = static_cast<u32>(p);
      if (ins.mn == Mnemonic::kUmulcc || ins.mn == Mnemonic::kSmulcc) {
        icc_from(v, false, false);
      }
      st.set_reg(ins.rd, v);
      res.cycles = cfg_.cpu.mul_latency;
      ++stats_.muldiv;
      return kNoTrap;
    }
    case Mnemonic::kUdiv:
    case Mnemonic::kUdivcc: {
      if (!cfg_.cpu.has_div) return tt_of(Trap::kIllegalInstruction);
      if (rb == 0) return tt_of(Trap::kDivisionByZero);
      const u64 dividend = (u64{st.y} << 32) | ra;
      u64 q = dividend / rb;
      const bool ovf = q > 0xffffffffull;
      if (ovf) q = 0xffffffffull;
      const u32 v = static_cast<u32>(q);
      if (ins.mn == Mnemonic::kUdivcc) icc_from(v, ovf, false);
      st.set_reg(ins.rd, v);
      res.cycles = cfg_.cpu.div_latency;
      ++stats_.muldiv;
      return kNoTrap;
    }
    case Mnemonic::kSdiv:
    case Mnemonic::kSdivcc: {
      if (!cfg_.cpu.has_div) return tt_of(Trap::kIllegalInstruction);
      if (rb == 0) return tt_of(Trap::kDivisionByZero);
      const i64 dividend = static_cast<i64>((u64{st.y} << 32) | ra);
      const i64 divisor = static_cast<i32>(rb);
      // INT64_MIN / -1 overflows the host idiv (SIGFPE); the architectural
      // quotient 2^63 overflows the 32-bit result anyway.
      i64 q = (dividend == std::numeric_limits<i64>::min() && divisor == -1)
                  ? std::numeric_limits<i64>::max()
                  : dividend / divisor;
      bool ovf = false;
      if (q > 0x7fffffffll) { q = 0x7fffffffll; ovf = true; }
      if (q < -0x80000000ll) { q = -0x80000000ll; ovf = true; }
      const u32 v = static_cast<u32>(static_cast<u64>(q));
      if (ins.mn == Mnemonic::kSdivcc) icc_from(v, ovf, false);
      st.set_reg(ins.rd, v);
      res.cycles = cfg_.cpu.div_latency;
      ++stats_.muldiv;
      return kNoTrap;
    }

    // State registers ------------------------------------------------------------------
    case Mnemonic::kRdy: st.set_reg(ins.rd, st.y); return kNoTrap;
    case Mnemonic::kRdasr:
      st.set_reg(ins.rd, st.asr[ins.rs1]);
      return kNoTrap;
    case Mnemonic::kRdpsr:
      if (!st.psr.s) return tt_of(Trap::kPrivilegedInstruction);
      st.set_reg(ins.rd, st.psr.pack());
      return kNoTrap;
    case Mnemonic::kRdwim:
      if (!st.psr.s) return tt_of(Trap::kPrivilegedInstruction);
      st.set_reg(ins.rd, st.wim & window_mask());
      return kNoTrap;
    case Mnemonic::kRdtbr:
      if (!st.psr.s) return tt_of(Trap::kPrivilegedInstruction);
      st.set_reg(ins.rd, st.tbr);
      return kNoTrap;
    case Mnemonic::kWry: st.y = ra ^ rb; return kNoTrap;
    case Mnemonic::kWrasr: st.asr[ins.rd] = ra ^ rb; return kNoTrap;
    case Mnemonic::kWrpsr: {
      if (!st.psr.s) return tt_of(Trap::kPrivilegedInstruction);
      const u32 v = ra ^ rb;
      if ((v & 0x1fu) >= st.nwindows) return tt_of(Trap::kIllegalInstruction);
      st.psr.unpack(v);
      return kNoTrap;
    }
    case Mnemonic::kWrwim:
      if (!st.psr.s) return tt_of(Trap::kPrivilegedInstruction);
      st.wim = (ra ^ rb) & window_mask();
      return kNoTrap;
    case Mnemonic::kWrtbr:
      if (!st.psr.s) return tt_of(Trap::kPrivilegedInstruction);
      st.tbr = (st.tbr & 0x00000ff0u) | ((ra ^ rb) & 0xfffff000u);
      return kNoTrap;

    // Windows ----------------------------------------------------------------------------
    case Mnemonic::kSave:
    case Mnemonic::kRestore: {
      const unsigned ncwp =
          ins.mn == Mnemonic::kSave
              ? (st.psr.cwp + st.nwindows - 1) % st.nwindows
              : (st.psr.cwp + 1) % st.nwindows;
      if ((st.wim >> ncwp) & 1u) {
        return ins.mn == Mnemonic::kSave ? tt_of(Trap::kWindowOverflow)
                                         : tt_of(Trap::kWindowUnderflow);
      }
      const u32 v = ra + rb;
      st.psr.cwp = static_cast<u8>(ncwp);
      st.set_reg(ins.rd, v);
      return kNoTrap;
    }

    case Mnemonic::kFpop1: case Mnemonic::kFpop2:
      return tt_of(Trap::kFpDisabled);
    case Mnemonic::kCpop1: case Mnemonic::kCpop2:
      return tt_of(Trap::kCpDisabled);

    // Memory -----------------------------------------------------------------------------
    default:
      break;
  }

  // Loads, stores, atomics.
  const bool alt = isa::is_alternate_space(ins.mn);
  if (alt && !st.psr.s) return tt_of(Trap::kPrivilegedInstruction);

  if (alt) {
    u8 tt = kNoTrap;
    if (asi_access(ins, res, tt)) return tt;
  }

  // FP/CP memory ops trap *-disabled before any address or rd legality
  // check (SPARC V8 trap priority: fp/cp_disabled outranks
  // mem_address_not_aligned), matching the IntegerUnit reference.
  switch (ins.mn) {
    case Mnemonic::kLdf: case Mnemonic::kLdfsr: case Mnemonic::kLddf:
    case Mnemonic::kStf: case Mnemonic::kStfsr: case Mnemonic::kStdfq:
    case Mnemonic::kStdf:
      return tt_of(Trap::kFpDisabled);
    case Mnemonic::kLdc: case Mnemonic::kLdcsr: case Mnemonic::kLddc:
    case Mnemonic::kStc: case Mnemonic::kStcsr: case Mnemonic::kStdcq:
    case Mnemonic::kStdc:
      return tt_of(Trap::kCpDisabled);
    default: break;
  }

  const bool ld = isa::is_load(ins.mn);
  const bool stq = isa::is_store(ins.mn);
  const unsigned size = isa::access_size(ins.mn);
  const bool dbl = size == 8;
  const Addr ea = ra + (ins.imm ? static_cast<u32>(ins.simm13)
                                : st.reg(ins.rs2));

  if (dbl && (ins.rd & 1u)) return tt_of(Trap::kIllegalInstruction);
  const unsigned align = size;
  if ((ea & (align - 1)) != 0 && size > 1) {
    return tt_of(Trap::kMemAddressNotAligned);
  }

  if (ld && stq) {
    // Atomics: ldstub / swap.
    const unsigned asz = (ins.mn == Mnemonic::kLdstub ||
                          ins.mn == Mnemonic::kLdstuba)
                             ? 1
                             : 4;
    MemResult rr = data_read(ea, asz);
    if (!rr.ok) return tt_of(Trap::kDataAccess);
    const u64 newv =
        (asz == 1) ? 0xffull : u64{st.reg(ins.rd)};
    MemResult wr = data_write(ea, asz, newv);
    if (!wr.ok) return tt_of(Trap::kDataAccess);
    st.set_reg(ins.rd, static_cast<u32>(rr.value));
    res.cycles =
        1 + cfg_.cpu.load_extra + cfg_.cpu.store_extra + rr.cycles + wr.cycles;
    res.mem_access = true;
    res.mem_write = true;
    res.mem_addr = ea;
    res.mem_size = static_cast<u8>(asz);
    ++stats_.loads;  // atomics count as both (isa::is_load / is_store)
    ++stats_.stores;
    return kNoTrap;
  }

  if (ld) {
    MemResult rr = data_read(ea, size);
    if (!rr.ok) return tt_of(Trap::kDataAccess);
    if (dbl) {
      st.set_reg(ins.rd, static_cast<u32>(rr.value >> 32));
      st.set_reg(static_cast<u8>(ins.rd | 1u), static_cast<u32>(rr.value));
      res.cycles = 1 + cfg_.cpu.load_double_extra + rr.cycles;
    } else {
      u32 v = static_cast<u32>(rr.value);
      const bool sign = ins.mn == Mnemonic::kLdsb ||
                        ins.mn == Mnemonic::kLdsh ||
                        ins.mn == Mnemonic::kLdsba ||
                        ins.mn == Mnemonic::kLdsha;
      if (sign && size < 4) v = static_cast<u32>(sign_extend(v, size * 8));
      st.set_reg(ins.rd, v);
      res.cycles = 1 + cfg_.cpu.load_extra + rr.cycles;
    }
    res.mem_access = true;
    res.mem_addr = ea;
    res.mem_size = static_cast<u8>(size);
    ++stats_.loads;
    return kNoTrap;
  }

  if (stq) {
    u64 v;
    if (dbl) {
      v = (u64{st.reg(ins.rd)} << 32) | st.reg(static_cast<u8>(ins.rd | 1u));
    } else {
      v = st.reg(ins.rd);
    }
    MemResult wr = data_write(ea, size, v);
    if (!wr.ok) return tt_of(Trap::kDataAccess);
    res.cycles = 1 +
                 (dbl ? cfg_.cpu.store_double_extra : cfg_.cpu.store_extra) +
                 wr.cycles;
    res.mem_access = true;
    res.mem_write = true;
    res.mem_addr = ea;
    res.mem_size = static_cast<u8>(size);
    ++stats_.stores;
    return kNoTrap;
  }

  return tt_of(Trap::kIllegalInstruction);
}

StepResult LeonPipeline::step() {
  StepResult res;
  step_into(res);
  return res;
}

void LeonPipeline::step_into(StepResult& res) { step_impl<true>(res); }

void LeonPipeline::step_into_hot(StepResult& res) {
  // The observer contract always gets a fully-populated result; without
  // one nothing can read `res.ins`, so the 32-byte copy is skipped.
  if (obs_ != nullptr) {
    step_impl<true>(res);
  } else {
    step_impl<false>(res);
  }
}

template <bool kCopyIns>
void LeonPipeline::step_impl(StepResult& res) {
  // kCopyIns=false is the observerless run-loop body: nothing outside this
  // call reads `res` (the caller reuses one instance and never looks at
  // it), so the per-step result materialization and the observer dispatch
  // are compiled out.  kCopyIns=true keeps the full step()/step_into()
  // contract: a completely populated result, observer notified.
  if constexpr (kCopyIns) {
    res.pc = st_.pc;
    res.raw = 0;
    res.annulled = false;
    res.trapped = false;
    res.tt = 0;
    res.mem_access = false;
    res.mem_write = false;
    res.mem_addr = 0;
    res.mem_size = 0;
  }
  res.cycles = 1;
  if (st_.error_mode) return;

  if (wedged_) {
    // A wedged CPU holds its architectural state and burns a cycle: the
    // clock (and everything hanging off it — timers, the watchdog) keeps
    // running while no instruction retires.
    res.cycles = 1;
    *clock_ += 1;
    stats_.cycles += 1;
    return;
  }

  if (st_.psr.et && irq_level_ != 0 &&
      (irq_level_ == 15 || irq_level_ > st_.psr.pil)) {
    const u8 tt = static_cast<u8>(0x10 + (irq_level_ & 0xf));
    take_trap(tt);
    res.trapped = true;
    res.tt = tt;
    res.cycles = cfg_.cpu.trap_latency;
    *clock_ += res.cycles;
    stats_.cycles += res.cycles;
    if constexpr (kCopyIns) {
      if (obs_) obs_->on_step(res);
    }
    return;
  }

  u32 word = 0;
  const isa::Instruction* pins = nullptr;
  Cycles fetch_stall = 0;  // stall cycles beyond the base instruction cost
  if (!ifetch_hot(st_.pc, word, pins)) [[unlikely]] {
    const MemResult f = ifetch(st_.pc, word, pins);
    if (!f.ok) {
      take_trap(tt_of(Trap::kInstructionAccess));
      res.trapped = true;
      res.tt = tt_of(Trap::kInstructionAccess);
      res.cycles = cfg_.cpu.trap_latency + f.cycles;
      *clock_ += res.cycles;
      stats_.cycles += res.cycles;
      if constexpr (kCopyIns) {
        if (obs_) obs_->on_step(res);
      }
      return;
    }
    fetch_stall = f.cycles;
  }
  if constexpr (kCopyIns) res.raw = word;
  isa::Instruction local;
  if (pins == nullptr) {
    if (cfg_.cpu.host_decode_cache) {
      pins = &predecode_.lookup(word);
    } else {
      local = isa::decode(word);
      pins = &local;
    }
  }
  if constexpr (kCopyIns) res.ins = *pins;

  if (annul_next_) {
    annul_next_ = false;
    res.annulled = true;
    st_.pc = st_.npc;
    st_.npc += 4;
    res.cycles = 1 + fetch_stall;
    ++stats_.annulled;
    *clock_ += res.cycles;
    stats_.cycles += res.cycles;
    if constexpr (kCopyIns) {
      if (obs_) obs_->on_step(res);
    }
    return;
  }

  cti_taken_ = false;
  res.cycles = 1;
  // Instruction-mix accounting (branches/calls/muldiv/loads/stores) lives
  // inside execute's no-trap paths — same retired-only counts, one switch.
  const u8 tt = execute(*pins, res);
  if (tt != kNoTrap) [[unlikely]] {
    take_trap(tt);
    res.trapped = true;
    res.tt = tt;
    res.cycles = cfg_.cpu.trap_latency + fetch_stall;
  } else {
    res.cycles += fetch_stall;
    const Addr new_pc = st_.npc;
    const Addr new_npc = cti_taken_ ? cti_target_ : st_.npc + 4;
    st_.pc = new_pc;
    st_.npc = new_npc;
    ++stats_.instructions;
  }
  *clock_ += res.cycles;
  stats_.cycles += res.cycles;
  if constexpr (kCopyIns) {
    if (obs_) obs_->on_step(res);
  }
}

// noinline: the per-step reference loop must keep the code generation the
// plain step() path always had — run()'s flatten below must not reach it.
__attribute__((noinline)) u64 LeonPipeline::run_slow(u64 max_steps,
                                                     Addr halt_pc) {
  u64 n = 0;
  while (n < max_steps && !st_.error_mode && st_.pc != halt_pc) {
    step();
    ++n;
  }
  return n;
}

// flatten: inline the whole step body (execute included) into the run
// loop so the reused StepResult never escapes and can live in registers.
__attribute__((flatten)) u64 LeonPipeline::run(u64 max_steps, Addr halt_pc) {
  if (obs_ == nullptr && fast_) {
    // Hot loop: one StepResult reused across iterations and never read
    // (see step_impl's kCopyIns contract); with no observer attached
    // nothing outside this frame can see the per-step results, so the
    // behaviour is identical.  Gated by host_fast_paths so the knob-off
    // configuration exercises the plain per-step path end to end.
    StepResult res;
    u64 n = 0;
    while (n < max_steps && !st_.error_mode && st_.pc != halt_pc) {
      step_impl<false>(res);
      ++n;
    }
    return n;
  }
  return run_slow(max_steps, halt_pc);
}

namespace {
constexpr u32 kPipeTag = snap_tag("PIPE");
}  // namespace

void LeonPipeline::save_state(SnapWriter& w) const {
  w.tag(kPipeTag);
  // Architectural CPU state.
  w.vec_u32(st_.regs.raw());
  w.u64v(st_.pc);
  w.u64v(st_.npc);
  w.u32v(st_.psr.pack());
  w.u32v(st_.wim);
  w.u32v(st_.tbr);
  w.u32v(st_.y);
  for (u32 a : st_.asr) w.u32v(a);
  w.b(st_.error_mode);
  // Inter-step pipeline latches.
  w.b(annul_next_);
  w.b(wedged_);
  w.u8v(irq_level_);
  w.b(cti_taken_);
  w.u64v(cti_target_);
  w.u64v(static_cast<u64>(wb_free_at_));
  // Stats.
  w.u64v(stats_.instructions);
  w.u64v(stats_.annulled);
  w.u64v(stats_.traps);
  w.u64v(static_cast<u64>(stats_.cycles));
  w.u64v(static_cast<u64>(stats_.icache_stall));
  w.u64v(static_cast<u64>(stats_.dcache_stall));
  w.u64v(static_cast<u64>(stats_.store_stall));
  w.u64v(stats_.loads);
  w.u64v(stats_.stores);
  w.u64v(stats_.branches);
  w.u64v(stats_.taken_branches);
  w.u64v(stats_.calls);
  w.u64v(stats_.muldiv);
  // Caches (tags, LRU, parity, line data, replacement RNG).
  icache_.save_state(w);
  dcache_.save_state(w);
}

bool LeonPipeline::load_state(SnapReader& r) {
  if (!r.expect(kPipeTag)) return false;
  if (!st_.regs.set_raw(r.vec_u32())) return false;
  st_.pc = r.u64v();
  st_.npc = r.u64v();
  st_.psr.unpack(r.u32v());
  st_.wim = r.u32v();
  st_.tbr = r.u32v();
  st_.y = r.u32v();
  for (u32& a : st_.asr) a = r.u32v();
  st_.error_mode = r.b();
  annul_next_ = r.b();
  wedged_ = r.b();
  irq_level_ = r.u8v();
  cti_taken_ = r.b();
  cti_target_ = r.u64v();
  wb_free_at_ = static_cast<Cycles>(r.u64v());
  stats_.instructions = r.u64v();
  stats_.annulled = r.u64v();
  stats_.traps = r.u64v();
  stats_.cycles = static_cast<Cycles>(r.u64v());
  stats_.icache_stall = static_cast<Cycles>(r.u64v());
  stats_.dcache_stall = static_cast<Cycles>(r.u64v());
  stats_.store_stall = static_cast<Cycles>(r.u64v());
  stats_.loads = r.u64v();
  stats_.stores = r.u64v();
  stats_.branches = r.u64v();
  stats_.taken_branches = r.u64v();
  stats_.calls = r.u64v();
  stats_.muldiv = r.u64v();
  if (!icache_.load_state(r) || !dcache_.load_state(r)) return false;
  // Every host-side memo is now stale: the mirror's decoded lines belong to
  // the pre-restore contents.  Invalidate; fills rebuild them on demand.
  std::fill(imirror_addr_.begin(), imirror_addr_.end(), kNoMirrorLine);
  last_iline_ = kNoMirrorLine;
  return r.ok();
}

}  // namespace la::cpu
