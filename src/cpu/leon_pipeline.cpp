#include "cpu/leon_pipeline.hpp"

#include <cassert>
#include <limits>
#include <vector>

#include "common/bits.hpp"
#include "isa/decode.hpp"
#include "isa/traps.hpp"

namespace la::cpu {

using isa::Cond;
using isa::Instruction;
using isa::Mnemonic;
using isa::Trap;

namespace {
constexpr u8 kNoTrap = static_cast<u8>(Trap::kNone);
constexpr u8 tt_of(Trap t) { return static_cast<u8>(t); }

bus::HBurst burst_for(unsigned beats) {
  switch (beats) {
    case 4: return bus::HBurst::kIncr4;
    case 8: return bus::HBurst::kIncr8;
    case 16: return bus::HBurst::kIncr16;
    default: return beats == 1 ? bus::HBurst::kSingle : bus::HBurst::kIncr;
  }
}

/// Big-endian scalar access into a cache line's byte storage.
u64 line_read(const u8* line, u32 off, unsigned size) {
  u64 v = 0;
  for (unsigned i = 0; i < size; ++i) v = (v << 8) | line[off + i];
  return v;
}

void line_write(u8* line, u32 off, unsigned size, u64 v) {
  for (unsigned i = 0; i < size; ++i) {
    line[off + i] = static_cast<u8>(v >> (8 * (size - 1 - i)));
  }
}

/// Pack a line's bytes into 32-bit AHB beats (big-endian words).
void line_to_beats(const u8* line, u32 line_bytes, u32* beats) {
  for (u32 w = 0; w < line_bytes / 4; ++w) {
    beats[w] = static_cast<u32>(line_read(line, w * 4, 4));
  }
}

void beats_to_line(const u32* beats, u32 line_bytes, u8* line) {
  for (u32 w = 0; w < line_bytes / 4; ++w) {
    line_write(line, w * 4, 4, beats[w]);
  }
}
}  // namespace

LeonPipeline::LeonPipeline(const PipelineConfig& cfg, bus::AhbBus& bus,
                           Cycles* clock, CacheableFn cacheable)
    : cfg_(cfg),
      bus_(bus),
      clock_(clock),
      cacheable_(cacheable),
      icache_(cfg.icache, /*seed=*/1),
      dcache_(cfg.dcache, /*seed=*/2),
      st_(cfg.cpu) {
  assert(cfg.cpu.valid() && cfg.icache.valid() && cfg.dcache.valid());
  assert(clock != nullptr && cacheable != nullptr);
  // Doubleword accesses must never straddle a line.
  assert(cfg.icache.line_bytes >= 8 && cfg.dcache.line_bytes >= 8);
}

void LeonPipeline::reset(Addr entry) {
  st_ = CpuState(cfg_.cpu);
  st_.pc = entry;
  st_.npc = entry + 4;
  st_.psr.s = true;
  st_.psr.et = false;
  annul_next_ = false;
  wedged_ = false;
  irq_level_ = 0;
  wb_free_at_ = 0;
  flush_caches();
}

void LeonPipeline::flush_caches() {
  icache_.flush();
  // LEON's caches are write-through: dirty data cannot exist, so a plain
  // invalidate is a correct flush for the default policy.  For the
  // write-back extension the victims are pushed out over the bus.
  std::vector<cache::DirtyLine> dirty;
  dcache_.flush(&dirty);
  for (const cache::DirtyLine& d : dirty) {
    *clock_ += writeback_line(d.addr, d.data.data());
  }
}

Cycles LeonPipeline::writeback_line(Addr addr, const u8* bytes) {
  const unsigned beats = cfg_.dcache.line_bytes / 4;
  std::vector<u32> buf(beats);
  line_to_beats(bytes, cfg_.dcache.line_bytes, buf.data());
  bus::AhbTransfer t;
  t.addr = addr;
  t.write = true;
  t.beats = beats;
  t.burst = burst_for(beats);
  t.data = buf.data();
  return bus_.transfer(bus::Master::kCpuData, t);
}

u32 LeonPipeline::cache_control() const {
  u32 ccr = 0;
  if (cfg_.icache_enabled) ccr |= 0x3;        // ICS = enabled
  if (cfg_.dcache_enabled) ccr |= 0x3 << 2;   // DCS = enabled
  return ccr;
}

// ---------------------------------------------------------------------------
// Timed memory paths
// ---------------------------------------------------------------------------

Cycles LeonPipeline::line_fill(bus::Master m, Addr line_addr, u32 line_bytes) {
  const unsigned beats = line_bytes / 4;
  std::vector<u32> buf(beats);
  bus::AhbTransfer t;
  t.addr = line_addr;
  t.beats = beats;
  t.burst = burst_for(beats);
  t.data = buf.data();
  return bus_.transfer(m, t);
}

LeonPipeline::MemResult LeonPipeline::ifetch(Addr pc, u32& word) {
  MemResult r;
  const bool cached = cfg_.icache_enabled && cacheable_(pc);
  if (!cached) {
    u32 v = 0;
    bus::AhbTransfer t;
    t.addr = pc;
    t.data = &v;
    r.cycles = bus_.transfer(bus::Master::kCpuInstr, t);
    r.ok = !t.error;
    word = v;
    return r;
  }
  const auto out = icache_.access(pc, /*is_write=*/false);
  if (!out.hit) {
    bus::AhbTransfer t;
    const unsigned beats = cfg_.icache.line_bytes / 4;
    std::vector<u32> buf(beats);
    t.addr = out.line_addr;
    t.beats = beats;
    t.burst = burst_for(beats);
    t.data = buf.data();
    r.cycles = bus_.transfer(bus::Master::kCpuInstr, t);
    stats_.icache_stall += r.cycles;
    if (t.error) {
      icache_.invalidate_line(pc);
      r.ok = false;
      return r;
    }
    beats_to_line(buf.data(), cfg_.icache.line_bytes, out.data);
    word = buf[(pc - out.line_addr) / 4];
    return r;
  }
  word = static_cast<u32>(line_read(out.data, pc - out.line_addr, 4));
  return r;
}

LeonPipeline::MemResult LeonPipeline::data_read(Addr addr, unsigned size) {
  MemResult r;
  const bool cached = cfg_.dcache_enabled && cacheable_(addr);
  if (!cached) {
    if (size == 8) {
      u32 buf[2] = {};
      bus::AhbTransfer t;
      t.addr = addr;
      t.beats = 2;
      t.burst = bus::HBurst::kIncr;
      t.data = buf;
      r.cycles = bus_.transfer(bus::Master::kCpuData, t);
      r.ok = !t.error;
      r.value = (u64{buf[0]} << 32) | buf[1];
    } else {
      u32 v = 0;
      bus::AhbTransfer t;
      t.addr = addr;
      t.beat_bytes = size;
      t.data = &v;
      r.cycles = bus_.transfer(bus::Master::kCpuData, t);
      r.ok = !t.error;
      r.value = v;
    }
    stats_.dcache_stall += r.cycles;
    return r;
  }

  const auto out = dcache_.access(addr, /*is_write=*/false);
  if (out.parity_discard) {
    // A poisoned dirty line lost the only copy of its data; fault.
    r.ok = false;
    return r;
  }
  if (out.writeback) {
    // Dirty victim (write-back extension): push its bytes out before the
    // fill overwrites the slot.
    r.cycles += writeback_line(out.victim_addr, out.data);
  }
  if (out.fill) {
    bus::AhbTransfer t;
    const unsigned beats = cfg_.dcache.line_bytes / 4;
    std::vector<u32> buf(beats);
    t.addr = out.line_addr;
    t.beats = beats;
    t.burst = burst_for(beats);
    t.data = buf.data();
    r.cycles += bus_.transfer(bus::Master::kCpuData, t);
    stats_.dcache_stall += r.cycles;
    if (t.error) {
      dcache_.invalidate_line(addr);
      r.ok = false;
      return r;
    }
    beats_to_line(buf.data(), cfg_.dcache.line_bytes, out.data);
  }
  r.value = line_read(out.data, addr - out.line_addr, size);
  return r;
}

LeonPipeline::MemResult LeonPipeline::data_write(Addr addr, unsigned size,
                                                 u64 value) {
  MemResult r;
  const bool cached = cfg_.dcache_enabled && cacheable_(addr);
  const bool write_back =
      cfg_.dcache.write_policy == cache::WritePolicy::kWriteBackAllocate;

  if (cached && write_back) {
    const auto out = dcache_.access(addr, /*is_write=*/true);
    if (out.parity_discard) {
      r.ok = false;
      return r;
    }
    if (out.writeback) {
      r.cycles += writeback_line(out.victim_addr, out.data);
    }
    if (out.fill) {
      // Write-allocate: fetch the line, then merge the store into it.
      bus::AhbTransfer t;
      const unsigned beats = cfg_.dcache.line_bytes / 4;
      std::vector<u32> buf(beats);
      t.addr = out.line_addr;
      t.beats = beats;
      t.burst = burst_for(beats);
      t.data = buf.data();
      r.cycles += bus_.transfer(bus::Master::kCpuData, t);
      if (t.error) {
        dcache_.invalidate_line(addr);
        r.ok = false;
        return r;
      }
      beats_to_line(buf.data(), cfg_.dcache.line_bytes, out.data);
    }
    line_write(out.data, addr - out.line_addr, size, value);
    stats_.dcache_stall += r.cycles;
    return r;
  }

  // Write-through (or uncached): the store goes on the bus.
  if (cached) {
    const auto out = dcache_.access(addr, /*is_write=*/true);
    if (out.hit) {
      // Keep the resident line coherent with the memory write below.
      line_write(out.data, addr - out.line_addr, size, value);
    }
  }

  Cycles bus_cost = 0;
  bool error = false;
  if (size == 8) {
    u32 buf[2] = {static_cast<u32>(value >> 32), static_cast<u32>(value)};
    bus::AhbTransfer t;
    t.addr = addr;
    t.write = true;
    t.beats = 2;
    t.burst = bus::HBurst::kIncr;
    t.data = buf;
    bus_cost = bus_.transfer(bus::Master::kCpuData, t);
    error = t.error;
  } else {
    u32 v = static_cast<u32>(value);
    bus::AhbTransfer t;
    t.addr = addr;
    t.write = true;
    t.beat_bytes = size;
    t.data = &v;
    bus_cost = bus_.transfer(bus::Master::kCpuData, t);
    error = t.error;
  }
  if (error) {
    r.ok = false;
    r.cycles = bus_cost;
    return r;
  }

  const bool buffered = cached && cfg_.write_buffer_depth > 0;
  if (!buffered) {
    r.cycles = bus_cost;
    stats_.dcache_stall += bus_cost;
    return r;
  }
  // Write buffer: the store retires immediately unless the buffer is still
  // draining a previous store (single-entry drain model).
  const Cycles now = *clock_;
  const Cycles start = std::max(now, wb_free_at_);
  const Cycles stall = start - now;
  wb_free_at_ = start + bus_cost;
  r.cycles = stall;
  stats_.store_stall += stall;
  return r;
}

// ---------------------------------------------------------------------------
// Trap machinery (independent implementation; see integer_unit.cpp for the
// reference model)
// ---------------------------------------------------------------------------

void LeonPipeline::take_trap(u8 tt) {
  ++stats_.traps;
  if (!st_.psr.et && tt != tt_of(Trap::kReset)) {
    st_.set_tbr_tt(tt);
    st_.error_mode = true;
    return;
  }
  st_.psr.et = false;
  st_.psr.ps = st_.psr.s;
  st_.psr.s = true;
  st_.psr.cwp =
      static_cast<u8>((st_.psr.cwp + st_.nwindows - 1) % st_.nwindows);
  st_.set_reg(17, st_.pc);
  st_.set_reg(18, st_.npc);
  st_.set_tbr_tt(tt);
  st_.pc = (st_.tbr & 0xfffff000u) + (u32{tt} << 4);
  st_.npc = st_.pc + 4;
  annul_next_ = false;
}

void LeonPipeline::icc_from(u32 res, bool v, bool c) {
  st_.psr.n = (res >> 31) != 0;
  st_.psr.z = res == 0;
  st_.psr.v = v;
  st_.psr.c = c;
}

u32 LeonPipeline::op2val(const Instruction& ins) const {
  return ins.imm ? static_cast<u32>(ins.simm13) : st_.reg(ins.rs2);
}

bool LeonPipeline::asi_access(const Instruction& ins, StepResult& res,
                              u8& tt) {
  // LEON ASI 2: system control registers — address 0 is the cache control
  // register.  Flush bits FI (21) and FD (22) invalidate the caches.
  if (ins.asi != 2) return false;
  const Addr ea = st_.reg(ins.rs1) + st_.reg(ins.rs2);
  if (ea != 0) return false;
  tt = kNoTrap;
  if (ins.mn == Mnemonic::kLda) {
    st_.set_reg(ins.rd, cache_control());
    res.cycles += cfg_.cpu.load_extra;
    return true;
  }
  if (ins.mn == Mnemonic::kSta) {
    const u32 v = st_.reg(ins.rd);
    if (v & (1u << 21)) icache_.flush();
    if (v & (1u << 22)) {
      std::vector<cache::DirtyLine> dirty;
      dcache_.flush(&dirty);
      for (const cache::DirtyLine& d : dirty) {
        res.cycles += writeback_line(d.addr, d.data.data());
      }
    }
    res.cycles += cfg_.cpu.store_extra;
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

u8 LeonPipeline::execute(const Instruction& ins, StepResult& res) {
  auto& st = st_;
  const Addr pc = st.pc;
  const u32 ra = st.reg(ins.rs1);
  const u32 rb = op2val(ins);

  const auto branch_target = [&] {
    return pc + (static_cast<u32>(ins.disp) << 2);
  };

  switch (ins.mn) {
    case Mnemonic::kInvalid:
    case Mnemonic::kUnimp:
      return tt_of(Trap::kIllegalInstruction);

    case Mnemonic::kCall:
      st.set_reg(15, pc);
      cti_taken_ = true;
      cti_target_ = branch_target();
      res.cycles += cfg_.cpu.cti_extra;
      return kNoTrap;

    case Mnemonic::kBicc: {
      const bool taken =
          isa::eval_cond(ins.cond, st.psr.n, st.psr.z, st.psr.v, st.psr.c);
      if (ins.cond == Cond::kA) {
        cti_taken_ = true;
        cti_target_ = branch_target();
        annul_next_ = ins.annul;
        res.cycles += cfg_.cpu.cti_extra;
      } else if (taken) {
        cti_taken_ = true;
        cti_target_ = branch_target();
        res.cycles += cfg_.cpu.cti_extra;
      } else if (ins.annul) {
        annul_next_ = true;
      }
      return kNoTrap;
    }

    case Mnemonic::kFbfcc:
      return tt_of(Trap::kFpDisabled);
    case Mnemonic::kCbccc:
      return tt_of(Trap::kCpDisabled);

    case Mnemonic::kJmpl: {
      const Addr target = ra + rb;
      if ((target & 3u) != 0) return tt_of(Trap::kMemAddressNotAligned);
      st.set_reg(ins.rd, pc);
      cti_taken_ = true;
      cti_target_ = target;
      res.cycles += cfg_.cpu.cti_extra;
      return kNoTrap;
    }

    case Mnemonic::kRett: {
      if (st.psr.et) {
        return st.psr.s ? tt_of(Trap::kIllegalInstruction)
                        : tt_of(Trap::kPrivilegedInstruction);
      }
      if (!st.psr.s) return tt_of(Trap::kPrivilegedInstruction);
      const unsigned ncwp = (st.psr.cwp + 1) % st.nwindows;
      if ((st.wim >> ncwp) & 1u) return tt_of(Trap::kWindowUnderflow);
      const Addr target = ra + rb;
      if ((target & 3u) != 0) return tt_of(Trap::kMemAddressNotAligned);
      st.psr.cwp = static_cast<u8>(ncwp);
      st.psr.s = st.psr.ps;
      st.psr.et = true;
      cti_taken_ = true;
      cti_target_ = target;
      res.cycles += cfg_.cpu.cti_extra;
      return kNoTrap;
    }

    case Mnemonic::kTicc: {
      if (!isa::eval_cond(ins.cond, st.psr.n, st.psr.z, st.psr.v, st.psr.c)) {
        return kNoTrap;
      }
      return static_cast<u8>(0x80u + ((ra + rb) & 0x7fu));
    }

    case Mnemonic::kFlush: {
      // LEON flush: invalidate the I- and D-cache lines holding the
      // effective address (this is what makes the boot ROM's mailbox poll
      // see writes performed behind the processor's back, Fig 5).
      const Addr ea = ra + rb;
      icache_.invalidate_line(ea);
      cache::DirtyLine d;
      if (dcache_.invalidate_line(ea, &d) && !d.data.empty()) {
        res.cycles += writeback_line(d.addr, d.data.data());
      }
      return kNoTrap;
    }

    case Mnemonic::kSethi:
      st.set_reg(ins.rd, ins.imm22 << 10);
      return kNoTrap;

    // Logical ---------------------------------------------------------------
    case Mnemonic::kAnd: st.set_reg(ins.rd, ra & rb); return kNoTrap;
    case Mnemonic::kOr: st.set_reg(ins.rd, ra | rb); return kNoTrap;
    case Mnemonic::kXor: st.set_reg(ins.rd, ra ^ rb); return kNoTrap;
    case Mnemonic::kAndn: st.set_reg(ins.rd, ra & ~rb); return kNoTrap;
    case Mnemonic::kOrn: st.set_reg(ins.rd, ra | ~rb); return kNoTrap;
    case Mnemonic::kXnor: st.set_reg(ins.rd, ~(ra ^ rb)); return kNoTrap;
    case Mnemonic::kAndcc: case Mnemonic::kOrcc: case Mnemonic::kXorcc:
    case Mnemonic::kAndncc: case Mnemonic::kOrncc: case Mnemonic::kXnorcc: {
      u32 v = 0;
      switch (ins.mn) {
        case Mnemonic::kAndcc: v = ra & rb; break;
        case Mnemonic::kOrcc: v = ra | rb; break;
        case Mnemonic::kXorcc: v = ra ^ rb; break;
        case Mnemonic::kAndncc: v = ra & ~rb; break;
        case Mnemonic::kOrncc: v = ra | ~rb; break;
        default: v = ~(ra ^ rb); break;
      }
      icc_from(v, false, false);
      st.set_reg(ins.rd, v);
      return kNoTrap;
    }

    // Shifts ------------------------------------------------------------------
    case Mnemonic::kSll: st.set_reg(ins.rd, ra << (rb & 31u)); return kNoTrap;
    case Mnemonic::kSrl: st.set_reg(ins.rd, ra >> (rb & 31u)); return kNoTrap;
    case Mnemonic::kSra:
      st.set_reg(ins.rd, static_cast<u32>(static_cast<i32>(ra) >> (rb & 31u)));
      return kNoTrap;

    // Add / subtract ------------------------------------------------------------
    case Mnemonic::kAdd: st.set_reg(ins.rd, ra + rb); return kNoTrap;
    case Mnemonic::kSub: st.set_reg(ins.rd, ra - rb); return kNoTrap;
    case Mnemonic::kAddx:
      st.set_reg(ins.rd, ra + rb + (st.psr.c ? 1u : 0u));
      return kNoTrap;
    case Mnemonic::kSubx:
      st.set_reg(ins.rd, ra - rb - (st.psr.c ? 1u : 0u));
      return kNoTrap;
    case Mnemonic::kAddcc:
    case Mnemonic::kAddxcc: {
      const u32 cin =
          (ins.mn == Mnemonic::kAddxcc && st.psr.c) ? 1u : 0u;
      const u64 wide = u64{ra} + rb + cin;
      const u32 v = static_cast<u32>(wide);
      const bool ovf = ((~(ra ^ rb) & (ra ^ v)) >> 31) != 0;
      icc_from(v, ovf, (wide >> 32) != 0);
      st.set_reg(ins.rd, v);
      return kNoTrap;
    }
    case Mnemonic::kSubcc:
    case Mnemonic::kSubxcc: {
      const u32 cin =
          (ins.mn == Mnemonic::kSubxcc && st.psr.c) ? 1u : 0u;
      const u32 v = ra - rb - cin;
      const bool ovf = (((ra ^ rb) & (ra ^ v)) >> 31) != 0;
      const bool borrow = u64{ra} < u64{rb} + cin;
      icc_from(v, ovf, borrow);
      st.set_reg(ins.rd, v);
      return kNoTrap;
    }

    // Tagged ---------------------------------------------------------------------
    case Mnemonic::kTaddcc:
    case Mnemonic::kTaddcctv: {
      const u64 wide = u64{ra} + rb;
      const u32 v = static_cast<u32>(wide);
      const bool ovf = ((~(ra ^ rb) & (ra ^ v)) >> 31) != 0 ||
                       ((ra | rb) & 3u) != 0;
      if (ovf && ins.mn == Mnemonic::kTaddcctv) {
        return tt_of(Trap::kTagOverflow);
      }
      icc_from(v, ovf, (wide >> 32) != 0);
      st.set_reg(ins.rd, v);
      return kNoTrap;
    }
    case Mnemonic::kTsubcc:
    case Mnemonic::kTsubcctv: {
      const u32 v = ra - rb;
      const bool ovf = (((ra ^ rb) & (ra ^ v)) >> 31) != 0 ||
                       ((ra | rb) & 3u) != 0;
      if (ovf && ins.mn == Mnemonic::kTsubcctv) {
        return tt_of(Trap::kTagOverflow);
      }
      icc_from(v, ovf, u64{ra} < u64{rb});
      st.set_reg(ins.rd, v);
      return kNoTrap;
    }

    // Multiply / divide -------------------------------------------------------------
    case Mnemonic::kMulscc: {
      const u32 v1 = ((st.psr.n != st.psr.v) ? 0x80000000u : 0u) | (ra >> 1);
      const u32 v2 = (st.y & 1u) ? rb : 0u;
      const u64 wide = u64{v1} + v2;
      const u32 v = static_cast<u32>(wide);
      const bool ovf = ((~(v1 ^ v2) & (v1 ^ v)) >> 31) != 0;
      icc_from(v, ovf, (wide >> 32) != 0);
      st.y = (st.y >> 1) | ((ra & 1u) << 31);
      st.set_reg(ins.rd, v);
      return kNoTrap;
    }
    case Mnemonic::kUmul:
    case Mnemonic::kUmulcc:
    case Mnemonic::kSmul:
    case Mnemonic::kSmulcc: {
      if (!cfg_.cpu.has_mul) return tt_of(Trap::kIllegalInstruction);
      const bool sign =
          ins.mn == Mnemonic::kSmul || ins.mn == Mnemonic::kSmulcc;
      const u64 p = sign ? static_cast<u64>(i64{static_cast<i32>(ra)} *
                                            i64{static_cast<i32>(rb)})
                         : u64{ra} * u64{rb};
      st.y = static_cast<u32>(p >> 32);
      const u32 v = static_cast<u32>(p);
      if (ins.mn == Mnemonic::kUmulcc || ins.mn == Mnemonic::kSmulcc) {
        icc_from(v, false, false);
      }
      st.set_reg(ins.rd, v);
      res.cycles = cfg_.cpu.mul_latency;
      return kNoTrap;
    }
    case Mnemonic::kUdiv:
    case Mnemonic::kUdivcc: {
      if (!cfg_.cpu.has_div) return tt_of(Trap::kIllegalInstruction);
      if (rb == 0) return tt_of(Trap::kDivisionByZero);
      const u64 dividend = (u64{st.y} << 32) | ra;
      u64 q = dividend / rb;
      const bool ovf = q > 0xffffffffull;
      if (ovf) q = 0xffffffffull;
      const u32 v = static_cast<u32>(q);
      if (ins.mn == Mnemonic::kUdivcc) icc_from(v, ovf, false);
      st.set_reg(ins.rd, v);
      res.cycles = cfg_.cpu.div_latency;
      return kNoTrap;
    }
    case Mnemonic::kSdiv:
    case Mnemonic::kSdivcc: {
      if (!cfg_.cpu.has_div) return tt_of(Trap::kIllegalInstruction);
      if (rb == 0) return tt_of(Trap::kDivisionByZero);
      const i64 dividend = static_cast<i64>((u64{st.y} << 32) | ra);
      const i64 divisor = static_cast<i32>(rb);
      // INT64_MIN / -1 overflows the host idiv (SIGFPE); the architectural
      // quotient 2^63 overflows the 32-bit result anyway.
      i64 q = (dividend == std::numeric_limits<i64>::min() && divisor == -1)
                  ? std::numeric_limits<i64>::max()
                  : dividend / divisor;
      bool ovf = false;
      if (q > 0x7fffffffll) { q = 0x7fffffffll; ovf = true; }
      if (q < -0x80000000ll) { q = -0x80000000ll; ovf = true; }
      const u32 v = static_cast<u32>(static_cast<u64>(q));
      if (ins.mn == Mnemonic::kSdivcc) icc_from(v, ovf, false);
      st.set_reg(ins.rd, v);
      res.cycles = cfg_.cpu.div_latency;
      return kNoTrap;
    }

    // State registers ------------------------------------------------------------------
    case Mnemonic::kRdy: st.set_reg(ins.rd, st.y); return kNoTrap;
    case Mnemonic::kRdasr:
      st.set_reg(ins.rd, st.asr[ins.rs1]);
      return kNoTrap;
    case Mnemonic::kRdpsr:
      if (!st.psr.s) return tt_of(Trap::kPrivilegedInstruction);
      st.set_reg(ins.rd, st.psr.pack());
      return kNoTrap;
    case Mnemonic::kRdwim:
      if (!st.psr.s) return tt_of(Trap::kPrivilegedInstruction);
      st.set_reg(ins.rd, st.wim & window_mask());
      return kNoTrap;
    case Mnemonic::kRdtbr:
      if (!st.psr.s) return tt_of(Trap::kPrivilegedInstruction);
      st.set_reg(ins.rd, st.tbr);
      return kNoTrap;
    case Mnemonic::kWry: st.y = ra ^ rb; return kNoTrap;
    case Mnemonic::kWrasr: st.asr[ins.rd] = ra ^ rb; return kNoTrap;
    case Mnemonic::kWrpsr: {
      if (!st.psr.s) return tt_of(Trap::kPrivilegedInstruction);
      const u32 v = ra ^ rb;
      if ((v & 0x1fu) >= st.nwindows) return tt_of(Trap::kIllegalInstruction);
      st.psr.unpack(v);
      return kNoTrap;
    }
    case Mnemonic::kWrwim:
      if (!st.psr.s) return tt_of(Trap::kPrivilegedInstruction);
      st.wim = (ra ^ rb) & window_mask();
      return kNoTrap;
    case Mnemonic::kWrtbr:
      if (!st.psr.s) return tt_of(Trap::kPrivilegedInstruction);
      st.tbr = (st.tbr & 0x00000ff0u) | ((ra ^ rb) & 0xfffff000u);
      return kNoTrap;

    // Windows ----------------------------------------------------------------------------
    case Mnemonic::kSave:
    case Mnemonic::kRestore: {
      const unsigned ncwp =
          ins.mn == Mnemonic::kSave
              ? (st.psr.cwp + st.nwindows - 1) % st.nwindows
              : (st.psr.cwp + 1) % st.nwindows;
      if ((st.wim >> ncwp) & 1u) {
        return ins.mn == Mnemonic::kSave ? tt_of(Trap::kWindowOverflow)
                                         : tt_of(Trap::kWindowUnderflow);
      }
      const u32 v = ra + rb;
      st.psr.cwp = static_cast<u8>(ncwp);
      st.set_reg(ins.rd, v);
      return kNoTrap;
    }

    case Mnemonic::kFpop1: case Mnemonic::kFpop2:
      return tt_of(Trap::kFpDisabled);
    case Mnemonic::kCpop1: case Mnemonic::kCpop2:
      return tt_of(Trap::kCpDisabled);

    // Memory -----------------------------------------------------------------------------
    default:
      break;
  }

  // Loads, stores, atomics.
  const bool alt = isa::is_alternate_space(ins.mn);
  if (alt && !st.psr.s) return tt_of(Trap::kPrivilegedInstruction);

  if (alt) {
    u8 tt = kNoTrap;
    if (asi_access(ins, res, tt)) return tt;
  }

  const bool ld = isa::is_load(ins.mn);
  const bool stq = isa::is_store(ins.mn);
  const unsigned size = isa::access_size(ins.mn);
  const bool dbl = size == 8;
  const Addr ea = ra + (ins.imm ? static_cast<u32>(ins.simm13)
                                : st.reg(ins.rs2));

  if (dbl && (ins.rd & 1u)) return tt_of(Trap::kIllegalInstruction);
  const unsigned align = size;
  if ((ea & (align - 1)) != 0 && size > 1) {
    return tt_of(Trap::kMemAddressNotAligned);
  }

  if (ld && stq) {
    // Atomics: ldstub / swap.
    const unsigned asz = (ins.mn == Mnemonic::kLdstub ||
                          ins.mn == Mnemonic::kLdstuba)
                             ? 1
                             : 4;
    MemResult rr = data_read(ea, asz);
    if (!rr.ok) return tt_of(Trap::kDataAccess);
    const u64 newv =
        (asz == 1) ? 0xffull : u64{st.reg(ins.rd)};
    MemResult wr = data_write(ea, asz, newv);
    if (!wr.ok) return tt_of(Trap::kDataAccess);
    st.set_reg(ins.rd, static_cast<u32>(rr.value));
    res.cycles =
        1 + cfg_.cpu.load_extra + cfg_.cpu.store_extra + rr.cycles + wr.cycles;
    res.mem_access = true;
    res.mem_write = true;
    res.mem_addr = ea;
    res.mem_size = static_cast<u8>(asz);
    return kNoTrap;
  }

  if (ld) {
    // FP/CP loads were already dispatched to traps via is_load? No — they
    // reach here; reject them first.
    switch (ins.mn) {
      case Mnemonic::kLdf: case Mnemonic::kLdfsr: case Mnemonic::kLddf:
        return tt_of(Trap::kFpDisabled);
      case Mnemonic::kLdc: case Mnemonic::kLdcsr: case Mnemonic::kLddc:
        return tt_of(Trap::kCpDisabled);
      default: break;
    }
    MemResult rr = data_read(ea, size);
    if (!rr.ok) return tt_of(Trap::kDataAccess);
    if (dbl) {
      st.set_reg(ins.rd, static_cast<u32>(rr.value >> 32));
      st.set_reg(static_cast<u8>(ins.rd | 1u), static_cast<u32>(rr.value));
      res.cycles = 1 + cfg_.cpu.load_double_extra + rr.cycles;
    } else {
      u32 v = static_cast<u32>(rr.value);
      const bool sign = ins.mn == Mnemonic::kLdsb ||
                        ins.mn == Mnemonic::kLdsh ||
                        ins.mn == Mnemonic::kLdsba ||
                        ins.mn == Mnemonic::kLdsha;
      if (sign && size < 4) v = static_cast<u32>(sign_extend(v, size * 8));
      st.set_reg(ins.rd, v);
      res.cycles = 1 + cfg_.cpu.load_extra + rr.cycles;
    }
    res.mem_access = true;
    res.mem_addr = ea;
    res.mem_size = static_cast<u8>(size);
    return kNoTrap;
  }

  if (stq) {
    switch (ins.mn) {
      case Mnemonic::kStf: case Mnemonic::kStfsr: case Mnemonic::kStdfq:
      case Mnemonic::kStdf:
        return tt_of(Trap::kFpDisabled);
      case Mnemonic::kStc: case Mnemonic::kStcsr: case Mnemonic::kStdcq:
      case Mnemonic::kStdc:
        return tt_of(Trap::kCpDisabled);
      default: break;
    }
    u64 v;
    if (dbl) {
      v = (u64{st.reg(ins.rd)} << 32) | st.reg(static_cast<u8>(ins.rd | 1u));
    } else {
      v = st.reg(ins.rd);
    }
    MemResult wr = data_write(ea, size, v);
    if (!wr.ok) return tt_of(Trap::kDataAccess);
    res.cycles = 1 +
                 (dbl ? cfg_.cpu.store_double_extra : cfg_.cpu.store_extra) +
                 wr.cycles;
    res.mem_access = true;
    res.mem_write = true;
    res.mem_addr = ea;
    res.mem_size = static_cast<u8>(size);
    return kNoTrap;
  }

  return tt_of(Trap::kIllegalInstruction);
}

StepResult LeonPipeline::step() {
  StepResult res;
  res.pc = st_.pc;
  if (st_.error_mode) return res;

  if (wedged_) {
    // A wedged CPU holds its architectural state and burns a cycle: the
    // clock (and everything hanging off it — timers, the watchdog) keeps
    // running while no instruction retires.
    res.cycles = 1;
    *clock_ += 1;
    stats_.cycles += 1;
    return res;
  }

  if (st_.psr.et && irq_level_ != 0 &&
      (irq_level_ == 15 || irq_level_ > st_.psr.pil)) {
    const u8 tt = static_cast<u8>(0x10 + (irq_level_ & 0xf));
    take_trap(tt);
    res.trapped = true;
    res.tt = tt;
    res.cycles = cfg_.cpu.trap_latency;
    *clock_ += res.cycles;
    stats_.cycles += res.cycles;
    if (obs_) obs_->on_step(res);
    return res;
  }

  u32 word = 0;
  const MemResult f = ifetch(st_.pc, word);
  if (!f.ok) {
    take_trap(tt_of(Trap::kInstructionAccess));
    res.trapped = true;
    res.tt = tt_of(Trap::kInstructionAccess);
    res.cycles = cfg_.cpu.trap_latency + f.cycles;
    *clock_ += res.cycles;
    stats_.cycles += res.cycles;
    if (obs_) obs_->on_step(res);
    return res;
  }
  res.raw = word;
  res.ins = isa::decode(word);

  if (annul_next_) {
    annul_next_ = false;
    res.annulled = true;
    st_.pc = st_.npc;
    st_.npc += 4;
    res.cycles = 1 + f.cycles;
    ++stats_.annulled;
    *clock_ += res.cycles;
    stats_.cycles += res.cycles;
    if (obs_) obs_->on_step(res);
    return res;
  }

  cti_taken_ = false;
  res.cycles = 1;
  const u8 tt = execute(res.ins, res);
  if (tt != kNoTrap) {
    take_trap(tt);
    res.trapped = true;
    res.tt = tt;
    res.cycles = cfg_.cpu.trap_latency + f.cycles;
  } else {
    res.cycles += f.cycles;
    const Addr new_pc = st_.npc;
    const Addr new_npc = cti_taken_ ? cti_target_ : st_.npc + 4;
    st_.pc = new_pc;
    st_.npc = new_npc;
    ++stats_.instructions;
    // Instruction-mix accounting (retired instructions only).
    switch (res.ins.mn) {
      case Mnemonic::kBicc:
        ++stats_.branches;
        if (cti_taken_) ++stats_.taken_branches;
        break;
      case Mnemonic::kCall:
      case Mnemonic::kJmpl:
        ++stats_.calls;
        break;
      case Mnemonic::kUmul: case Mnemonic::kUmulcc:
      case Mnemonic::kSmul: case Mnemonic::kSmulcc:
      case Mnemonic::kUdiv: case Mnemonic::kUdivcc:
      case Mnemonic::kSdiv: case Mnemonic::kSdivcc:
        ++stats_.muldiv;
        break;
      default:
        break;
    }
    if (res.mem_access) {
      if (res.mem_write) ++stats_.stores;
      if (isa::is_load(res.ins.mn)) ++stats_.loads;
    }
  }
  *clock_ += res.cycles;
  stats_.cycles += res.cycles;
  if (obs_) obs_->on_step(res);
  return res;
}

u64 LeonPipeline::run(u64 max_steps, Addr halt_pc) {
  u64 n = 0;
  while (n < max_steps && !st_.error_mode && st_.pc != halt_pc) {
    step();
    ++n;
  }
  return n;
}

}  // namespace la::cpu
