// Configuration knobs of the LEON-style integer unit.
//
// These are exactly the "liquid" degrees of freedom the paper proposes to
// reconfigure (Section 1: modifiable pipeline depth, hardware for frequent
// instructions, new instructions) restricted to the ones that change
// observable cycle counts in our model.
#pragma once

#include <cassert>

#include "common/types.hpp"

namespace la::cpu {

struct CpuConfig {
  /// Number of register windows (SPARC V8 allows 2..32; LEON2 default 8).
  unsigned nwindows = 8;

  /// Hardware multiplier present?  Without it UMUL/SMUL raise
  /// illegal_instruction (software must emulate), as on a minimal LEON.
  bool has_mul = true;
  /// Hardware divider present?
  bool has_div = true;

  /// Latency of a hardware multiply in cycles (LEON2 offers 1/2/4/5-cycle
  /// multiplier variants; 5 is the smallest-area iterative one).
  Cycles mul_latency = 5;
  /// Latency of the iterative divider (LEON2: 35 cycles).
  Cycles div_latency = 35;

  /// Load / store extra cycles beyond the 1-cycle base (LEON2 pipeline:
  /// ld 2 total, ldd 3, st 3, std 4 when everything hits).
  Cycles load_extra = 1;
  Cycles load_double_extra = 2;
  Cycles store_extra = 2;
  Cycles store_double_extra = 3;

  /// Taken control transfers spend one extra cycle refilling fetch.
  Cycles cti_extra = 1;

  /// Cycles from trap detection to the first instruction of the handler
  /// (LEON2 trap latency is 4-5 cycles).
  Cycles trap_latency = 4;

  /// Host-performance knob (no effect on simulated cycles or state): cache
  /// decode() results keyed by instruction word, so hot fetch loops skip
  /// the full decoder.  Word-keyed, hence never stale; off reverts to
  /// calling isa::decode() on every fetch.
  bool host_decode_cache = true;

  /// Host-performance knob (no effect on simulated cycles or state):
  /// translate basic blocks once into predecoded handler traces and run
  /// them through the threaded dispatcher (src/cpu/block_engine.*).
  /// Engages only on observerless run() calls — attaching an ExecObserver
  /// or single-stepping always uses the per-step interpreter.  Any store
  /// the core executes into a translated page invalidates that page's
  /// blocks, and translations never outlive one run() call (so memory
  /// rewritten between calls is always re-read).  Off reverts run() to
  /// the per-step loops exactly as before.
  bool host_block_engine = true;

  /// Deliberate semantic fault: SUBX ignores the carry-in.  Exists solely
  /// so the differential fuzzer can prove, end to end, that it detects and
  /// minimizes a real divergence (lfuzz --inject-bug; see docs/TESTING.md).
  /// Never set in production configurations.
  bool quirk_subx_no_carry = false;

  bool valid() const { return nwindows >= 2 && nwindows <= 32; }
};

}  // namespace la::cpu
