// Architectural state of the SPARC V8 integer unit: PSR, windowed register
// file, and the auxiliary state registers.
#pragma once

#include <cassert>
#include <vector>

#include "common/bits.hpp"
#include "common/types.hpp"
#include "cpu/config.hpp"

namespace la::cpu {

/// Processor State Register, kept unpacked for fast access.
struct Psr {
  // Integer condition codes.
  bool n = false, z = false, v = false, c = false;
  bool ec = false;   // coprocessor enable
  bool ef = false;   // FPU enable (LEON built without FPU -> keep false)
  u8 pil = 0;        // processor interrupt level (0..15)
  bool s = true;     // supervisor
  bool ps = false;   // previous supervisor
  bool et = false;   // enable traps
  u8 cwp = 0;        // current window pointer

  static constexpr u32 kImpl = 0xf;  // impl/ver fields read as constants
  static constexpr u32 kVer = 0x3;

  u32 pack() const {
    return (kImpl << 28) | (kVer << 24) | (u32{n} << 23) | (u32{z} << 22) |
           (u32{v} << 21) | (u32{c} << 20) | (u32{ec} << 13) |
           (u32{ef} << 12) | ((u32{pil} & 0xfu) << 8) | (u32{s} << 7) |
           (u32{ps} << 6) | (u32{et} << 5) | (u32{cwp} & 0x1fu);
  }

  /// Unpack a WRPSR value (impl/ver are read-only and ignored).
  void unpack(u32 w) {
    n = bit(w, 23);
    z = bit(w, 22);
    v = bit(w, 21);
    c = bit(w, 20);
    ec = bit(w, 13);
    ef = bit(w, 12);
    pil = static_cast<u8>(bits(w, 11, 8));
    s = bit(w, 7);
    ps = bit(w, 6);
    et = bit(w, 5);
    cwp = static_cast<u8>(bits(w, 4, 0));
  }
};

/// Windowed integer register file.
///
/// Registers 0..7 are globals; each window contributes 16 registers
/// (8 outs + 8 locals); the ins of window w alias the outs of window
/// (w + 1) mod NWINDOWS.
class RegisterFile {
 public:
  explicit RegisterFile(unsigned nwindows = 8)
      : nwin_(nwindows), store_(8 + 16 * nwindows, 0) {
    assert(nwindows >= 2 && nwindows <= 32);
  }

  unsigned nwindows() const { return nwin_; }

  u32 get(unsigned cwp, u8 r) const {
    if (r == 0) return 0;
    return store_[index(cwp, r)];
  }

  void set(unsigned cwp, u8 r, u32 v) {
    if (r == 0) return;  // %g0 is hardwired to zero
    store_[index(cwp, r)] = v;
  }

  /// Raw backing store (globals + all windows), for snapshot/restore.
  const std::vector<u32>& raw() const { return store_; }
  /// Mutable view of the backing store plus the slot computation, for the
  /// block engine's branch-free per-window register maps (host perf only;
  /// aliasing rules are RegisterFile's — %g0 must still be special-cased).
  u32* data() { return store_.data(); }
  std::size_t slot(unsigned cwp, u8 r) const { return index(cwp, r); }
  bool set_raw(std::vector<u32> v) {
    if (v.size() != store_.size()) return false;
    store_ = std::move(v);
    return true;
  }

 private:
  std::size_t index(unsigned cwp, u8 r) const {
    assert(r < 32 && cwp < nwin_);
    if (r < 8) return r;  // globals
    const unsigned wslot = [&] {
      if (r < 16) return cwp * 16u + (r - 8u);                 // outs
      if (r < 24) return cwp * 16u + 8u + (r - 16u);           // locals
      // ins alias the next window's outs; nwin_ is not a compile-time
      // power of two, so a compare beats the integer division of `%`.
      const unsigned next = cwp + 1u == nwin_ ? 0u : cwp + 1u;
      return next * 16u + (r - 24u);
    }();
    return 8u + wslot;
  }

  unsigned nwin_;
  std::vector<u32> store_;
};

/// Full architectural state.  Both CPU models operate on this struct so the
/// property tests can compare them field-for-field.
struct CpuState {
  explicit CpuState(const CpuConfig& cfg = {})
      : regs(cfg.nwindows), nwindows(cfg.nwindows) {}

  RegisterFile regs;
  unsigned nwindows;

  Addr pc = 0;
  Addr npc = 4;
  Psr psr;
  u32 wim = 0;
  u32 tbr = 0;  // bits 31:12 trap base address, 11:4 tt, 3:0 zero
  u32 y = 0;
  u32 asr[32] = {};  // ancillary state registers (ASR 1..31 usable)

  /// True once the CPU entered error mode (trap while ET = 0).  A real
  /// SPARC halts and asserts an error pin; the FPX circuitry would report
  /// it — we latch the flag and stop executing.
  bool error_mode = false;

  u32 reg(u8 r) const { return regs.get(psr.cwp, r); }
  void set_reg(u8 r, u32 v) { regs.set(psr.cwp, r, v); }

  /// tt field of TBR.
  u8 tbr_tt() const { return static_cast<u8>(bits(tbr, 11, 4)); }
  void set_tbr_tt(u8 tt) {
    tbr = (tbr & 0xfffff00fu) | (u32{tt} << 4);
  }
};

}  // namespace la::cpu
