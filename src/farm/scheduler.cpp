#include "farm/scheduler.hpp"

#include <limits>

namespace la::farm {

namespace {
constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();
}  // namespace

Result<u64> FarmScheduler::enqueue(FarmJob job) {
  if (!job.config.valid()) {
    ++stats_.rejected;
    return FarmError{FarmErrorKind::kInvalidConfig, job.config.key()};
  }
  if (cfg_.queue_capacity != 0 && pending_.size() >= cfg_.queue_capacity) {
    ++stats_.rejected;
    // Retry-after hint: a deeper backlog takes longer to drain.  The
    // caller (the gateway) forwards this as explicit backpressure.
    const u32 hint =
        5 + static_cast<u32>(pending_.size() / 8);
    return FarmError{FarmErrorKind::kSaturated,
                     std::to_string(pending_.size()) + " queued", hint};
  }
  if (cfg_.per_owner_cap != 0) {
    const auto it = owner_outstanding_.find(job.owner);
    const std::size_t outstanding =
        it == owner_outstanding_.end() ? 0 : it->second;
    if (outstanding >= cfg_.per_owner_cap) {
      ++stats_.rejected;
      const u32 hint = 5 + static_cast<u32>(outstanding);
      return FarmError{FarmErrorKind::kOwnerSaturated,
                       job.owner + " has " + std::to_string(outstanding) +
                           " outstanding",
                       hint};
    }
  }
  ++owner_outstanding_[job.owner];
  job.id = next_id_++;
  const u64 id = job.id;
  pending_.push_back(Pending{std::move(job), 0});
  ++stats_.submitted;
  return id;
}

std::size_t FarmScheduler::choose(const SchedulerConfig& cfg,
                                  std::deque<Pending>& pending,
                                  const std::set<std::string>& busy,
                                  const std::string& node_key,
                                  std::size_t self_node,
                                  bool others_available, bool* aged) {
  // Runnable = the *oldest* pending job of an owner with nothing in
  // flight.  An owner's younger jobs are never candidates — even a
  // perfect affinity match behind a sibling would break per-owner FIFO.
  std::set<std::string> seen;
  std::vector<std::size_t> runnable;
  std::size_t match = kNpos;
  *aged = false;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const std::string& owner = pending[i].job.owner;
    if (!seen.insert(owner).second) continue;  // an older sibling is ahead
    if (busy.count(owner) != 0) continue;
    // Retry avoidance: don't hand a job back to the node it just failed
    // on while a different node could take it.  Invisible — no skip
    // accounting — so aging can never force the retry back onto the
    // faulty node.
    if (others_available && self_node != kNoNode &&
        !pending[i].job.node_history.empty() &&
        pending[i].job.node_history.back() == self_node) {
      continue;
    }
    const bool is_match = cfg.policy == FarmPolicy::kAffinity &&
                          pending[i].job.config.key() == node_key;
    if (runnable.empty()) {
      if (is_match) return i;  // oldest runnable already matches: done
      if (pending[i].skips >= cfg.max_skips) {
        *aged = true;
        return i;  // starving: must go next, stop looking for matches
      }
    } else if (is_match) {
      match = i;
      break;
    }
    runnable.push_back(i);
    if (runnable.size() >= cfg.affinity_window) break;
  }
  if (runnable.empty()) return kNpos;
  if (match == kNpos) return runnable.front();
  // A younger match jumps the queue: every runnable job it passed records
  // the skip, feeding the aging rule.
  for (const std::size_t i : runnable) ++pending[i].skips;
  return match;
}

std::optional<FarmJob> FarmScheduler::pick(const std::string& node_key,
                                           std::size_t self_node,
                                           bool others_available) {
  bool aged = false;
  const std::size_t i = choose(cfg_, pending_, busy_owners_, node_key,
                               self_node, others_available, &aged);
  if (i == kNpos) return std::nullopt;
  FarmJob job = std::move(pending_[i].job);
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
  busy_owners_.insert(job.owner);
  ++in_flight_;
  ++stats_.picks;
  if (job.config.key() == node_key) ++stats_.affinity_hits;
  if (aged) ++stats_.aged_picks;
  return job;
}

void FarmScheduler::complete(const std::string& owner) {
  busy_owners_.erase(owner);
  if (in_flight_ > 0) --in_flight_;
  const auto it = owner_outstanding_.find(owner);
  if (it != owner_outstanding_.end() && --it->second == 0) {
    owner_outstanding_.erase(it);
  }
}

void FarmScheduler::requeue(FarmJob job) {
  busy_owners_.erase(job.owner);
  if (in_flight_ > 0) --in_flight_;
  // Fresh skip counter: the retry is a new head-of-queue job, and an aged
  // counter carried over would defeat affinity on its next dispatch.
  pending_.push_front(Pending{std::move(job), 0});
  ++stats_.requeues;
}

std::vector<u64> FarmScheduler::plan(const std::string& node_key) const {
  std::deque<Pending> pending = pending_;
  std::set<std::string> busy = busy_owners_;
  std::string key = node_key;
  std::vector<u64> order;
  order.reserve(pending.size());
  // Serial replay: each job completes (freeing its owner and leaving its
  // configuration loaded) before the next pick.
  while (!pending.empty()) {
    bool aged = false;
    const std::size_t i =
        choose(cfg_, pending, busy, key, kNoNode, false, &aged);
    if (i == kNpos) break;  // every remaining owner is busy for real
    order.push_back(pending[i].job.id);
    key = pending[i].job.config.key();
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
  }
  return order;
}

}  // namespace la::farm
