// Liquid Farm: a fleet of LiquidSystem nodes behind one thread-safe
// front end.
//
// Fig 1 shows the Reconfiguration Server brokering multiple remote users
// onto FPX hardware; this subsystem scales that picture out.  N fully
// independent simulated nodes (each its own LEON pipeline, memories,
// control network, ReconfigurationServer, and MetricsRegistry) run on N
// worker threads.  One shared, mutex-guarded ReconfigurationCache holds
// the fleet's synthesized bitfiles, so an image synthesized for any node
// is a hit everywhere.  The FarmScheduler routes submissions with
// bitstream affinity (prefer the node already configured for the job) and
// bounded queues (typed backpressure), and FarmReport folds the per-node
// registries into one fleet-level snapshot.
//
// Time has two axes here.  *Host* time is how long your machine takes to
// simulate the fleet — it scales with host cores and is reported only as
// context.  *Simulated* wall-clock is the paper's economics: synthesis
// hours, bitstream downloads, and cycles at each image's own fmax.  Nodes
// are independent machines, so the fleet's simulated makespan is the
// busiest node's total, and throughput = jobs / makespan.  That is the
// number affinity routing and the shared cache actually improve.
//
// Threading contract: each worker thread is the single writer of its
// node, server, and node registry (see common/metrics.hpp).  All shared
// state — scheduler, result queue, per-node accumulators, current
// configuration keys — is guarded by one farm mutex.  report() waits for
// the fleet to go idle before it touches node registries, which the
// mutex then orders after every worker write.  Runs clean under TSan.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "common/span_log.hpp"
#include "farm/scheduler.hpp"
#include "liquid/reconfig_server.hpp"

namespace la::farm {

struct FarmConfig {
  std::size_t nodes = 4;
  SchedulerConfig scheduler;
  /// Per-node server template.  bridge_cache_metrics is forced off: the
  /// shared cache is bridged once at fleet level, not once per node.
  liquid::ServerConfig server;
  /// Per-node system template; node_ip is bumped per node so frames in a
  /// debug dump say which machine they belong to.
  sim::SystemConfig node_template;
  /// Shared bitfile store capacity (count; 0 = unlimited).
  std::size_t cache_capacity = 0;
  /// When false, workers hold at a gate until start() — lets tests and
  /// benches submit a whole batch first so execution order is the plan.
  bool autostart = true;
  /// Fleet-wide causal tracing: submit() mints a TraceContext per job and
  /// every phase (queue-wait, synthesis, reconfigure, load, run, readback,
  /// error) lands in span_log() — one merged timeline, one process lane
  /// per node.  report() folds per-phase latency histograms into the
  /// fleet registry as farm.phase.*.
  bool tracing = false;
  /// Give each node a perf tracer on its own pid/tid lane so
  /// merged_perf_trace() yields one multi-process Chrome trace.  Forces
  /// the nodes onto the per-step run path (observability is not free).
  bool perf_trace = false;
  /// Self-healing: a job whose failure smells like a node fault
  /// (JobResult::node_fault — watchdog trip, silent node) is requeued at
  /// the head of the queue and retried — on any healthy node — up to this
  /// many extra times before its failure is delivered.  The faulting node
  /// is quarantined and must pass a RESTART probe before taking work
  /// again.  0 disables retries (quarantine still happens).
  unsigned max_job_retries = 2;
  /// Simulated seconds charged to the faulting node per retry, doubling
  /// with each attempt (capped at 16x) — the operator's pause before
  /// kicking hardware that just misbehaved.
  double retry_backoff_seconds = 0.05;
  /// Share one warm-start snapshot pool across the fleet's servers: the
  /// first node to boot an architecture (or load a program under it)
  /// donates a snapshot, and every later affinity miss restores it instead
  /// of simulating the boot / chunked network load.
  bool warm_start = true;
};

/// Worker-node health in the self-healing loop.  Healthy nodes take work;
/// a node whose job died of a node fault is quarantined, then must pass a
/// RESTART probe (recovering) before rejoining the fleet.
enum class NodeHealth : u8 { kHealthy = 0, kQuarantined = 1, kRecovering = 2 };

const char* to_string(NodeHealth h);

/// A completed job, as delivered back to whoever submitted it.
struct FarmJobOutcome {
  u64 id = 0;
  std::string owner;
  std::string config_key;
  std::size_t node = 0;  // which node ran it
  liquid::JobResult result;
  /// Causal trace id (0 when fleet tracing was off at submission).
  u64 trace_id = 0;
  /// Post-mortem JSON from the node's flight recorder, captured when the
  /// job failed on a recorder-armed node; empty otherwise.
  std::string flight_dump;
  /// Executions this job took (1 = no retries) and the node that ran each
  /// of them; `node` above is the last entry.  An audit can assert
  /// exactly-once delivery and trace a job's path through the fleet.
  unsigned attempts = 1;
  std::vector<std::size_t> node_history;
};

/// Fleet-level rollup; built by LiquidFarm::report() once the fleet is
/// idle.  `fleet` carries every per-node metric merged name-by-name plus
/// the farm.* and reconfig_cache.* families, so the JSON path is the same
/// one snapshot/report JSON has used since PR 1.
struct FarmReport {
  u64 jobs = 0;
  u64 failures = 0;
  u64 reconfigurations = 0;
  u64 bitfile_hits = 0;
  u64 rejected = 0;       // submissions bounced by admission control
  u64 affinity_hits = 0;  // dispatches that needed no reprogramming
  u64 retries = 0;        // failed executions requeued for another try
  u64 migrations = 0;     // retries that landed on a different node
  u64 warm_starts = 0;    // snapshot-pool restores instead of boot/load
  double makespan_seconds = 0.0;    // busiest node's simulated busy time
  double total_busy_seconds = 0.0;  // sum over nodes
  double jobs_per_second = 0.0;     // jobs / makespan (simulated)
  double p50_wall_seconds = 0.0;    // per-job latency percentiles
  double p95_wall_seconds = 0.0;
  double p99_wall_seconds = 0.0;
  double host_seconds = 0.0;  // context only: host time spent running

  struct Node {
    std::size_t index = 0;
    u64 jobs = 0;
    u64 failures = 0;
    u64 reconfigurations = 0;
    u64 quarantines = 0;  // times this node was benched for a fault
    NodeHealth health = NodeHealth::kHealthy;
    double busy_seconds = 0.0;
    std::string config_key;  // image loaded when the fleet went idle
  };
  std::vector<Node> nodes;

  metrics::Snapshot fleet;

  std::string to_json(int indent = 2) const { return fleet.to_json(indent); }
  /// Human-readable summary (what lfarm prints).
  std::string text() const;
};

class LiquidFarm {
 public:
  explicit LiquidFarm(FarmConfig cfg = {});
  /// Joins the workers.  Pending jobs that never dispatched are abandoned
  /// — drain() first for a clean finish.
  ~LiquidFarm();

  /// Release the workers (no-op when autostart, or already started).
  void start();

  /// Thread-safe submission; returns the job id or a typed rejection.
  Result<u64> submit(FarmJob job);

  /// Pop one completed job if any is ready.
  std::optional<FarmJobOutcome> try_pop_result();
  /// Pop one completed job, waiting if work is still in the pipe;
  /// nullopt once the farm is idle with nothing left to deliver.
  std::optional<FarmJobOutcome> pop_result();

  /// Block until every admitted job has executed (results may still be
  /// queued for popping).
  void drain();
  /// Stop accepting work and park the workers (drain first to finish
  /// outstanding jobs).  Idempotent; the destructor calls it.
  void shutdown();

  /// Pre-synthesize a configuration space into the shared cache (the
  /// paper's offline pass).  Returns simulated seconds spent.
  double pregenerate(const liquid::ConfigSpace& space);

  /// The order node `node` would run the current queue in, were it alone
  /// (see FarmScheduler::plan — exact for a single-node farm).
  std::vector<u64> plan(std::size_t node) const;

  /// Fleet rollup; waits for the fleet to go idle first.
  FarmReport report();

  std::size_t nodes() const { return workers_.size(); }
  liquid::ReconfigurationCache& cache() { return cache_; }
  FarmScheduler::Stats scheduler_stats() const;

  /// The fleet's span log (every traced job's phases, all nodes on one
  /// timeline).  Reading/exporting while jobs are in flight is safe (the
  /// log locks internally) but a coherent file wants drain() first.
  trace::SpanLog& span_log() { return span_log_; }
  const trace::SpanLog& span_log() const { return span_log_; }

  /// Direct node access for pre-start setup (arming fault injectors,
  /// flight recorders, perf tracers).  Only safe on an autostart=false
  /// farm before start() — the workers hold at their gate and have not
  /// touched their nodes yet — or after drain() with no new submissions.
  sim::LiquidSystem& node_for_setup(std::size_t i) {
    return *workers_.at(i)->node;
  }

  /// One Chrome trace merging every node's perf tracer (requires
  /// FarmConfig::perf_trace); waits for the fleet to go idle first.
  std::string merged_perf_trace();

 private:
  struct Worker {
    std::size_t index = 0;
    std::unique_ptr<sim::LiquidSystem> node;
    std::unique_ptr<liquid::ReconfigurationServer> server;
    std::thread thread;
    // Shared-state mirror of this worker, guarded by mu_: the scheduler
    // and report() read these instead of poking the node cross-thread.
    std::string current_key;
    bool ready = false;  // booted to the polling loop
    NodeHealth health = NodeHealth::kHealthy;
    u64 jobs = 0;
    u64 failures = 0;
    u64 reconfigurations = 0;
    u64 bitfile_hits = 0;
    u64 quarantines = 0;
    double busy_seconds = 0.0;
  };

  void worker_loop(Worker& w);
  /// RESTART-probe a quarantined node until the control state machine
  /// answers idle again (the §4.1 recovery path).  Runs on the worker's
  /// own thread; only the health flips take the farm mutex.
  void recover_node(Worker& w);
  bool fleet_idle_locked() const;

  FarmConfig cfg_;
  liquid::SynthesisModel syn_;
  liquid::ReconfigurationCache cache_;
  sim::SnapshotPool warm_pool_;  // internally locked; shared by all servers

  mutable std::mutex mu_;
  std::condition_variable cv_work_;     // workers: job available / shutdown
  std::condition_variable cv_results_;  // consumers: result ready / idle
  FarmScheduler sched_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::deque<FarmJobOutcome> results_;
  trace::SpanLog span_log_;  // internally locked; written by all workers
  std::vector<double> wall_samples_;  // per-job wall_seconds, for p50/95/99
  bool started_ = false;
  bool shutdown_ = false;
  double host_seconds_ = 0.0;
  u64 retries_ = 0;     // requeued executions (guarded by mu_)
  u64 migrations_ = 0;  // retry picked up by a different node (mu_)
};

}  // namespace la::farm
