#include "farm/workload.hpp"

#include <cmath>

#include "sasm/assembler.hpp"

namespace la::farm {

namespace {

/// Template 1: store a literal (the cheapest job the fleet sees).
std::string store_value_src(u32 value) {
  return R"(
      .org 0x40000100
  _start:
      set )" + std::to_string(value) + R"(, %g1
      set result, %g2
      st %g1, [%g2]
      jmp 0x40
      nop
      .align 4
  result:
      .skip 4
  )";
}

/// Template 2: an n-round xor/rotate checksum from `seed`.
std::string checksum_src(u32 seed, u32 rounds) {
  return R"(
      .org 0x40000100
  _start:
      set )" + std::to_string(seed) + R"(, %g1
      set )" + std::to_string(rounds) + R"(, %g2
  loop:
      xor %g1, %g2, %g1
      sll %g1, 1, %g3
      srl %g1, 31, %g4
      or %g3, %g4, %g1
      subcc %g2, 1, %g2
      bne loop
      nop
      set result, %g5
      st %g1, [%g5]
      jmp 0x40
      nop
      .align 4
  result:
      .skip 4
  )";
}

u32 checksum_expected(u32 seed, u32 rounds) {
  u32 g1 = seed;
  for (u32 g2 = rounds; g2 != 0; --g2) {
    g1 ^= g2;
    g1 = (g1 << 1) | (g1 >> 31);
  }
  return g1;
}

/// Template 3: the Fig 7-shaped strided walk over a 4 KB array — the
/// template whose cycle count actually depends on the D-cache geometry.
/// Stores the final induction value (first multiple of 32 >= bound).
std::string walk_src(u32 bound) {
  return R"(
      .org 0x40000100
  _start:
      set count, %o0
      mov 0, %o1
      set )" + std::to_string(bound) + R"(, %o2
  loop:
      and %o1, 1023, %o3
      sll %o3, 2, %o3
      ld [%o0 + %o3], %o4
      add %o1, 32, %o1
      cmp %o1, %o2
      bl loop
      nop
      set result, %o5
      st %o1, [%o5]
      jmp 0x40
      nop
      .align 4
  result:
      .skip 4
      .align 32
  count:
      .skip 4096
  )";
}

u32 walk_expected(u32 bound) {
  u32 i = 0;
  do {
    i += 32;
  } while (i < bound);
  return i;
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(WorkloadConfig cfg)
    : cfg_(cfg), rng_(cfg.seed) {
  // Catalog: the paper's D-cache sweep crossed with two multiplier
  // variants, most popular first.
  const u32 dsizes[] = {4096, 1024, 8192, 2048, 16384};
  const Cycles muls[] = {5, 2};
  for (const Cycles m : muls) {
    for (const u32 d : dsizes) {
      liquid::ArchConfig c;
      c.dcache_bytes = d;
      c.mul_latency = m;
      if (c.valid()) catalog_.push_back(c);
    }
  }
  if (cfg_.configs != 0 && catalog_.size() > cfg_.configs) {
    catalog_.resize(cfg_.configs);
  }
  double total = 0.0;
  for (std::size_t r = 0; r < catalog_.size(); ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), cfg_.zipf_s);
    cumulative_.push_back(total);
  }
  for (double& c : cumulative_) c /= total;
}

GeneratedJob WorkloadGenerator::next() {
  GeneratedJob g;
  g.job.owner = "user" + std::to_string(rng_.below(cfg_.owners));

  const double u = rng_.unit();
  std::size_t rank = 0;
  while (rank + 1 < cumulative_.size() && u > cumulative_[rank]) ++rank;
  g.job.config = catalog_[rank];

  const u32 work = rng_.between(cfg_.min_work, cfg_.max_work);
  std::string src;
  switch (rng_.below(10)) {
    case 0:
    case 1:
    case 2: {  // 30% trivial store
      const u32 value = rng_.next_u32();
      src = store_value_src(value);
      g.expected = value;
      break;
    }
    case 3:
    case 4:
    case 5:
    case 6: {  // 40% checksum
      const u32 seed = rng_.next_u32() | 1;
      src = checksum_src(seed, work);
      g.expected = checksum_expected(seed, work);
      break;
    }
    default: {  // 30% cache-sensitive walk
      const u32 bound = 32 * work;
      src = walk_src(bound);
      g.expected = walk_expected(bound);
      break;
    }
  }
  g.job.program = sasm::assemble_or_throw(src);
  g.job.result_addr = g.job.program.symbol("result");
  g.job.result_words = 1;
  return g;
}

}  // namespace la::farm
