// The farm's job scheduler: a concurrent submission queue with
// bitstream-affinity routing.
//
// The paper's Reconfiguration Server brokers *multiple remote users* onto
// FPX hardware (Fig 1); reprogramming the FPGA between jobs costs a
// bitstream download, and synthesizing a missing image costs ~1 hour.  A
// fleet of nodes turns that into a placement problem: a job routed to a
// node that already holds its configuration runs immediately, so the
// scheduler prefers configuration matches (affinity) and falls back to
// letting an idle node steal the oldest runnable job (work conservation).
//
// Invariants the policies never break:
//   * per-owner FIFO — jobs from one owner dispatch in submission order,
//     and at most one of an owner's jobs is in flight at a time, so an
//     owner's results arrive in the order they asked;
//   * bounded skipping — affinity may jump a job ahead of older work only
//     within `affinity_window` runnable jobs, and a job passed over
//     `max_skips` times must be dispatched next (no starvation);
//   * admission control — the queue holds at most `queue_capacity` jobs;
//     beyond that submissions are rejected with a typed FarmError
//     (backpressure), never silently dropped.
//
// The scheduler itself is a single-threaded core; LiquidFarm serializes
// access to it under one mutex.  Keeping the policy logic lock-free makes
// plan() possible: a preview replays the exact pick logic on a copy of
// the queue state.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/span_log.hpp"
#include "farm/farm_error.hpp"
#include "liquid/arch_config.hpp"
#include "sasm/image.hpp"

namespace la::farm {

/// One unit of fleet work: who wants it, under which architecture, what
/// to run, and what to read back.  `id` is assigned at submission.
struct FarmJob {
  u64 id = 0;
  std::string owner;
  liquid::ArchConfig config;
  sasm::Image program;
  Addr result_addr = 0;
  u16 result_words = 0;
  /// Causal trace identity, minted by LiquidFarm::submit() when fleet
  /// tracing is on (zero otherwise), and the submission timestamp on the
  /// farm's span-log timeline — queue-wait spans measure from here.
  trace::TraceContext trace;
  double submitted_us = 0.0;
  /// Self-healing bookkeeping, maintained by the farm: executions so far
  /// and which node ran each of them (a requeued job carries its scars).
  unsigned attempts = 0;
  std::vector<std::size_t> node_history;
};

enum class FarmPolicy : u8 {
  kFifo,      // oldest runnable job, always (the baseline)
  kAffinity,  // prefer a configuration match within the window
};

struct SchedulerConfig {
  FarmPolicy policy = FarmPolicy::kAffinity;
  /// Maximum queued (not yet dispatched) jobs; submissions beyond this
  /// are rejected with kSaturated.  0 = unbounded.
  std::size_t queue_capacity = 256;
  /// Runnable jobs an affinity pick may scan past the oldest one.
  std::size_t affinity_window = 16;
  /// A job passed over this many times is dispatched next, regardless of
  /// affinity (anti-starvation aging).
  u32 max_skips = 8;
  /// Maximum outstanding (queued + in-flight) jobs any single owner may
  /// hold; submissions beyond it are rejected with kOwnerSaturated so one
  /// tenant cannot fill the shared queue.  0 = unlimited.
  std::size_t per_owner_cap = 0;
};

class FarmScheduler {
 public:
  explicit FarmScheduler(SchedulerConfig cfg = {}) : cfg_(cfg) {}

  /// Admit a job (assigns and returns its id) or reject it with a typed
  /// error (saturated queue, invalid configuration).
  Result<u64> enqueue(FarmJob job);

  /// Sentinel for pick()'s `self_node`: the caller has no node identity
  /// (or wants retry avoidance off).
  static constexpr std::size_t kNoNode = static_cast<std::size_t>(-1);

  /// Next job for an idle node whose loaded configuration key is
  /// `node_key`; nullopt when nothing is runnable (queue empty or every
  /// queued owner already has a job in flight).  Only an owner's oldest
  /// pending job is ever a candidate — per-owner FIFO binds affinity
  /// too.  The job's owner is marked busy until complete().
  ///
  /// Retry avoidance: when `others_available` is true, a job whose last
  /// execution ran on `self_node` (it failed there — only requeued jobs
  /// carry history) is invisible to this pick, steering the retry onto a
  /// different node.  The avoided job blocks its owner's younger siblings
  /// exactly as a busy owner would, so per-owner FIFO holds; liveness
  /// holds because the callers pass `others_available` only while another
  /// healthy node exists to take it.
  std::optional<FarmJob> pick(const std::string& node_key,
                              std::size_t self_node = kNoNode,
                              bool others_available = false);

  /// A dispatched job finished; its owner may run again.
  void complete(const std::string& owner);

  /// Put a dispatched job back at the *front* of the queue (fault retry).
  /// Per-owner FIFO is preserved: the job was its owner's oldest pending
  /// when picked and the owner has been busy since, so no younger sibling
  /// can have dispatched — re-inserting at the front keeps it the owner's
  /// oldest.  The owner is freed so any healthy node may take it next.
  void requeue(FarmJob job);

  /// The order a single idle node at `node_key` would execute the current
  /// queue in, as job ids — pick() replayed to exhaustion on a copy of
  /// the queue, assuming each job loads successfully and completes before
  /// the next pick.  With one node this *is* the execution order.
  std::vector<u64> plan(const std::string& node_key) const;

  std::size_t pending() const { return pending_.size(); }
  std::size_t in_flight() const { return in_flight_; }
  bool idle() const { return pending_.empty() && in_flight_ == 0; }

  struct Stats {
    u64 submitted = 0;
    u64 rejected = 0;
    u64 picks = 0;
    u64 affinity_hits = 0;  // dispatched to a node already configured
    u64 aged_picks = 0;     // forced by the max_skips rule
    u64 requeues = 0;       // fault retries put back at the queue front
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Pending {
    FarmJob job;
    u32 skips = 0;  // times a younger job was dispatched over this one
  };

  /// The one pick implementation pick() and plan() share: choose an index
  /// into `pending` for a node at `node_key` and bump the skip counters
  /// of runnable jobs that were passed over.  npos when nothing runnable.
  static std::size_t choose(const SchedulerConfig& cfg,
                            std::deque<Pending>& pending,
                            const std::set<std::string>& busy,
                            const std::string& node_key,
                            std::size_t self_node, bool others_available,
                            bool* aged);

  SchedulerConfig cfg_;
  std::deque<Pending> pending_;
  std::set<std::string> busy_owners_;
  /// Outstanding (queued + in-flight) jobs per owner, for per_owner_cap.
  /// Entries drop to zero and are erased on complete() — the map stays
  /// proportional to *active* owners, not every owner ever seen.
  std::map<std::string, std::size_t> owner_outstanding_;
  std::size_t in_flight_ = 0;
  u64 next_id_ = 1;
  Stats stats_;
};

}  // namespace la::farm
